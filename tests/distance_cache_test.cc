#include "engine/distance_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"

namespace fannr {
namespace {

std::vector<Weight> Vec(Weight v) { return std::vector<Weight>{v, v + 1}; }

TEST(SourceDistanceCacheTest, MissThenHit) {
  SourceDistanceCache cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_EQ(cache.Lookup(3), nullptr);
  auto inserted = cache.Insert(3, Vec(30));
  ASSERT_NE(inserted, nullptr);
  auto hit = cache.Lookup(3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 30.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SourceDistanceCacheTest, FirstWriterWins) {
  SourceDistanceCache cache(4, 1);
  auto first = cache.Insert(7, Vec(1));
  auto second = cache.Insert(7, Vec(2));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ((*second)[0], 1.0);
}

TEST(SourceDistanceCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard of capacity 2: inserting a third source evicts the LRU.
  SourceDistanceCache cache(2, 1);
  cache.Insert(0, Vec(0));
  cache.Insert(1, Vec(10));
  ASSERT_NE(cache.Lookup(0), nullptr);  // refresh 0; LRU is now 1
  cache.Insert(2, Vec(20));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(0), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SourceDistanceCacheTest, CapacityBoundsResidentEntries) {
  SourceDistanceCache cache(10, 4);
  for (VertexId v = 0; v < 100; ++v) cache.Insert(v, Vec(v));
  size_t resident = 0;
  for (VertexId v = 0; v < 100; ++v) {
    if (cache.Lookup(v) != nullptr) ++resident;
  }
  EXPECT_LE(resident, 10u);
  EXPECT_GT(resident, 0u);
}

TEST(SourceDistanceCacheTest, ShardCountClampedToCapacity) {
  SourceDistanceCache cache(3, 64);
  EXPECT_EQ(cache.num_shards(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
}

TEST(SourceDistanceCacheTest, ClearDropsEntries) {
  SourceDistanceCache cache(8, 2);
  cache.Insert(1, Vec(1));
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(SourceDistanceCacheTest, EntriesSurviveEvictionWhileHeld) {
  SourceDistanceCache cache(1, 1);
  auto held = cache.Insert(0, Vec(5));
  cache.Insert(1, Vec(6));  // evicts source 0
  EXPECT_EQ(cache.Lookup(0), nullptr);
  EXPECT_EQ((*held)[0], 5.0);  // the shared_ptr keeps the vector alive
}

TEST(SourceDistanceCacheTest, ConcurrentMixedAccess) {
  // Hammer a small cache from several threads; exercised further under
  // TSan in CI. Correctness here: no crash, and every lookup that
  // returns an entry returns the right distances.
  SourceDistanceCache cache(16, 4);
  ThreadPool pool(4);
  pool.ParallelFor(4000, [&](size_t index, size_t) {
    const VertexId source = static_cast<VertexId>(index % 32);
    auto entry = cache.Lookup(source);
    if (entry == nullptr) {
      entry = cache.Insert(source, Vec(source));
    }
    ASSERT_EQ((*entry)[0], static_cast<Weight>(source));
  });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
}

}  // namespace
}  // namespace fannr
