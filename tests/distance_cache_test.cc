#include "engine/distance_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"

namespace fannr {
namespace {

std::vector<Weight> Vec(Weight v) { return std::vector<Weight>{v, v + 1}; }

TEST(SourceDistanceCacheTest, MissThenHit) {
  SourceDistanceCache cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_EQ(cache.Lookup(3, /*epoch=*/0), nullptr);
  auto inserted = cache.Insert(3, /*epoch=*/0, Vec(30));
  ASSERT_NE(inserted, nullptr);
  auto hit = cache.Lookup(3, /*epoch=*/0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 30.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.epoch_evictions, 0u);
}

TEST(SourceDistanceCacheTest, FirstWriterWinsWithinEpoch) {
  SourceDistanceCache cache(4, 1);
  auto first = cache.Insert(7, 0, Vec(1));
  auto second = cache.Insert(7, 0, Vec(2));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ((*second)[0], 1.0);
}

TEST(SourceDistanceCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard of capacity 2: inserting a third source evicts the LRU.
  SourceDistanceCache cache(2, 1);
  cache.Insert(0, 0, Vec(0));
  cache.Insert(1, 0, Vec(10));
  ASSERT_NE(cache.Lookup(0, 0), nullptr);  // refresh 0; LRU is now 1
  cache.Insert(2, 0, Vec(20));
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(0, 0), nullptr);
  EXPECT_NE(cache.Lookup(2, 0), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SourceDistanceCacheTest, CapacityBoundsResidentEntries) {
  SourceDistanceCache cache(10, 4);
  for (VertexId v = 0; v < 100; ++v) cache.Insert(v, 0, Vec(v));
  size_t resident = 0;
  for (VertexId v = 0; v < 100; ++v) {
    if (cache.Lookup(v, 0) != nullptr) ++resident;
  }
  EXPECT_LE(resident, 10u);
  EXPECT_GT(resident, 0u);
}

TEST(SourceDistanceCacheTest, ShardCountClampedToCapacity) {
  SourceDistanceCache cache(3, 64);
  EXPECT_EQ(cache.num_shards(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
}

TEST(SourceDistanceCacheTest, ClearDropsEntries) {
  SourceDistanceCache cache(8, 2);
  cache.Insert(1, 0, Vec(1));
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
}

TEST(SourceDistanceCacheTest, EntriesSurviveEvictionWhileHeld) {
  SourceDistanceCache cache(1, 1);
  auto held = cache.Insert(0, 0, Vec(5));
  cache.Insert(1, 0, Vec(6));  // evicts source 0
  EXPECT_EQ(cache.Lookup(0, 0), nullptr);
  EXPECT_EQ((*held)[0], 5.0);  // the shared_ptr keeps the vector alive
}

TEST(SourceDistanceCacheTest, StaleEpochLookupMissesAndReclaims) {
  SourceDistanceCache cache(8, 2);
  cache.Insert(3, /*epoch=*/1, Vec(30));
  // A lookup at a newer epoch must never see the old vector; the stale
  // entry is reclaimed on the spot.
  bool stale_evicted = false;
  EXPECT_EQ(cache.Lookup(3, /*epoch=*/2, &stale_evicted), nullptr);
  EXPECT_TRUE(stale_evicted);
  EXPECT_EQ(cache.stats().epoch_evictions, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // A repeat lookup is a plain miss, not another epoch eviction.
  EXPECT_EQ(cache.Lookup(3, 2, &stale_evicted), nullptr);
  EXPECT_FALSE(stale_evicted);
  EXPECT_EQ(cache.stats().epoch_evictions, 1u);
}

TEST(SourceDistanceCacheTest, OlderEpochLookupAlsoMisses) {
  // Epoch mismatch in either direction is a reject: an engine holding a
  // stale graph snapshot must not be served a newer vector.
  SourceDistanceCache cache(8, 2);
  cache.Insert(5, /*epoch=*/4, Vec(50));
  EXPECT_EQ(cache.Lookup(5, /*epoch=*/3), nullptr);
  EXPECT_EQ(cache.stats().epoch_evictions, 1u);
}

TEST(SourceDistanceCacheTest, NewerEpochInsertReplacesStaleEntry) {
  SourceDistanceCache cache(8, 1);
  auto old_entry = cache.Insert(9, /*epoch=*/1, Vec(10));
  auto new_entry = cache.Insert(9, /*epoch=*/2, Vec(20));
  EXPECT_NE(old_entry.get(), new_entry.get());
  EXPECT_EQ((*new_entry)[0], 20.0);
  auto hit = cache.Lookup(9, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 20.0);
  EXPECT_EQ(cache.stats().epoch_evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SourceDistanceCacheTest, ConcurrentMixedAccess) {
  // Hammer a small cache from several threads; exercised further under
  // TSan in CI. Correctness here: no crash, and every lookup that
  // returns an entry returns the right distances.
  SourceDistanceCache cache(16, 4);
  ThreadPool pool(4);
  pool.ParallelFor(4000, [&](size_t index, size_t) {
    const VertexId source = static_cast<VertexId>(index % 32);
    auto entry = cache.Lookup(source, 0);
    if (entry == nullptr) {
      entry = cache.Insert(source, 0, Vec(source));
    }
    ASSERT_EQ((*entry)[0], static_cast<Weight>(source));
  });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
}

}  // namespace
}  // namespace fannr
