#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/vertex_set.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(GraphBuilderTest, BuildsSimpleTriangle) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(0, 2, 4.0);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_FALSE(g.HasCoordinates());
}

TEST(GraphBuilderTest, ArcsAreSymmetricWithEqualWeights) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.5);
  builder.AddEdge(1, 2, 2.5);
  builder.AddEdge(2, 3, 3.5);
  builder.AddEdge(3, 0, 4.5);
  Graph g = builder.Build();
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      bool found_reverse = false;
      for (const Arc& back : g.Neighbors(a.to)) {
        if (back.to == u && back.weight == a.weight) {
          found_reverse = true;
          break;
        }
      }
      EXPECT_TRUE(found_reverse) << "edge " << u << "->" << a.to;
    }
  }
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0, 1.0);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphBuilderTest, KeepsMinimumWeightAmongParallelEdges) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 5.0);
  builder.AddEdge(1, 0, 2.0);
  builder.AddEdge(0, 1, 9.0);
  Graph g = builder.Build();
  ASSERT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.Neighbors(0)[0].weight, 2.0);
}

TEST(GraphBuilderTest, CoordinatesRoundTrip) {
  GraphBuilder builder;
  VertexId a = builder.AddVertex(Point{1.0, 2.0});
  VertexId b = builder.AddVertex(Point{4.0, 6.0});
  builder.AddEdge(a, b, 5.0);
  Graph g = builder.Build();
  ASSERT_TRUE(g.HasCoordinates());
  EXPECT_DOUBLE_EQ(g.Coord(a).x, 1.0);
  EXPECT_DOUBLE_EQ(g.Coord(b).y, 6.0);
  EXPECT_DOUBLE_EQ(g.EuclideanDistance(a, b), 5.0);
}

TEST(GraphTest, EuclideanConsistencyDetection) {
  GraphBuilder builder;
  VertexId a = builder.AddVertex(Point{0.0, 0.0});
  VertexId b = builder.AddVertex(Point{3.0, 4.0});
  builder.AddEdge(a, b, 5.0);  // weight == Euclidean distance
  Graph ok = builder.Build();
  EXPECT_TRUE(ok.EuclideanConsistent());

  GraphBuilder bad_builder;
  a = bad_builder.AddVertex(Point{0.0, 0.0});
  b = bad_builder.AddVertex(Point{3.0, 4.0});
  bad_builder.AddEdge(a, b, 4.0);  // weight < Euclidean distance
  Graph bad = bad_builder.Build();
  EXPECT_FALSE(bad.EuclideanConsistent());

  bad.MakeEuclideanConsistent();
  EXPECT_TRUE(bad.EuclideanConsistent());
}

TEST(GraphTest, GraphWithoutCoordinatesIsNotEuclideanConsistent) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build();
  EXPECT_FALSE(g.EuclideanConsistent());
}

TEST(GraphTest, LineGraphStructure) {
  Graph g = testing::MakeLineGraph(5, 2.0);
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_TRUE(g.EuclideanConsistent());
}

TEST(IndexedVertexSetTest, MembershipAndIndexing) {
  IndexedVertexSet set(10, {3, 7, 1});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(7));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(9));
  EXPECT_EQ(set.IndexOf(3), 0u);
  EXPECT_EQ(set.IndexOf(7), 1u);
  EXPECT_EQ(set.IndexOf(1), 2u);
  EXPECT_EQ(set.IndexOf(5), IndexedVertexSet::kNotMember);
  EXPECT_EQ(set[1], 7u);
}

TEST(IndexedVertexSetTest, EmptySet) {
  IndexedVertexSet set(4, {});
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(0));
}

TEST(GraphBuilderTest, FromGraphRoundTripsAndAllowsUpdates) {
  Graph original = testing::MakeSmallGrid(6, 6);
  // Plain round trip.
  Graph copy = GraphBuilder::FromGraph(original).Build();
  EXPECT_EQ(copy.NumVertices(), original.NumVertices());
  EXPECT_EQ(copy.NumEdges(), original.NumEdges());
  ASSERT_TRUE(copy.HasCoordinates());
  EXPECT_DOUBLE_EQ(copy.Coord(5).x, original.Coord(5).x);

  // Apply an update: add a shortcut edge cheaper than any existing path.
  GraphBuilder updated_builder = GraphBuilder::FromGraph(original);
  updated_builder.AddEdge(0, static_cast<VertexId>(original.NumVertices() - 1),
                          0.5);
  Graph updated = updated_builder.Build();
  EXPECT_EQ(updated.NumEdges(), original.NumEdges() + 1);
}

TEST(GraphTest, MemoryBytesIsPositive) {
  Graph g = testing::MakeLineGraph(10);
  EXPECT_GT(g.MemoryBytes(), 0u);
}

// --- VertexId-space bounds (32-bit truncation regressions) ---------------
// Ids are uint32_t with kInvalidVertex reserved as a sentinel. A count
// past that range used to narrow silently in AddVertex's cast, aliasing
// distinct vertices; the builder now aborts at the point of overflow.
// Resize does not allocate, so declaring the full id space is cheap and
// these death tests run in microseconds.

TEST(GraphBuilderDeathTest, ResizeRejectsCountsPastVertexIdSpace) {
  GraphBuilder builder;
  EXPECT_DEATH(builder.Resize(static_cast<size_t>(kInvalidVertex) + 1), "");
}

TEST(GraphBuilderDeathTest, AddVertexRejectsMintingTheSentinelId) {
  GraphBuilder builder;
  builder.Resize(static_cast<size_t>(kInvalidVertex));
  // The next vertex would receive id kInvalidVertex ("no vertex").
  EXPECT_DEATH(builder.AddVertex(), "");
}

}  // namespace
}  // namespace fannr
