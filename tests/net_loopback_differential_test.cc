// Loopback differential: a seeded scenario answered in-process by
// BatchQueryEngine and through a FannServer over real loopback sockets
// must produce bitwise-identical wire results — same (distance bits,
// vertex id, subset, work counters, error text) — at every engine
// thread count, before and after a concurrent UPDATE_WEIGHTS wave.
// Queries admitted before the wave executes must be rejected with the
// engine's canonical mid-batch reason (MidBatchEpochError), i.e. the
// exact string an in-process caller would see.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/update.h"
#include "engine/batch_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

namespace fannr::net {
namespace {

/// Same rendezvous gate as net_server_test.cc: the executor dequeues an
/// item and parks here while held, so tests can order queue states.
class ExecutorGate {
 public:
  void Hold() {
    std::lock_guard<std::mutex> lock(mu_);
    held_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      held_ = false;
    }
    cv_.notify_all();
  }
  void AwaitEntered(size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= count; });
  }
  std::function<void()> AsHook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return !held_; });
    };
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool held_ = false;
  size_t entered_ = 0;
};

void AwaitQueueDepth(const FannServer& server, double depth) {
  for (int spin = 0; spin < 1000; ++spin) {
    if (server.metrics().Snapshot().gauge("server.queue_depth") >= depth) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "queue depth never reached " << depth;
}

constexpr uint64_t kGraphSeed = 1234;
constexpr size_t kGraphVertices = 300;

/// The seeded scenario: a diverse batch spanning every solver and both
/// aggregates, plus one unsupported (algorithm, aggregate) pairing so
/// the engine's rejection text is also compared across the wire.
std::vector<WireQuery> BuildWireJobs(const Graph& graph) {
  const FannAlgorithm algorithms[] = {
      FannAlgorithm::kNaive,    FannAlgorithm::kGd, FannAlgorithm::kRList,
      FannAlgorithm::kExactMax, FannAlgorithm::kApxSum,
  };
  const double phis[] = {0.3, 0.5, 1.0};
  std::vector<WireQuery> jobs;
  for (size_t i = 0; i < 10; ++i) {
    const FannAlgorithm algorithm = algorithms[i % 5];
    Aggregate aggregate = (i % 2 == 0) ? Aggregate::kMax : Aggregate::kSum;
    if (algorithm == FannAlgorithm::kExactMax) aggregate = Aggregate::kMax;
    if (algorithm == FannAlgorithm::kApxSum) aggregate = Aggregate::kSum;

    Rng rng(7000 + i);
    const std::vector<VertexId> p = testing::SampleVertices(graph, 15, rng);
    const std::vector<VertexId> q = testing::SampleVertices(graph, 8, rng);
    WireQuery job;
    job.algorithm = static_cast<uint8_t>(algorithm);
    job.aggregate = static_cast<uint8_t>(aggregate);
    job.phi = phis[i % 3];
    job.p = std::vector<uint32_t>(p.begin(), p.end());
    job.q = std::vector<uint32_t>(q.begin(), q.end());
    jobs.push_back(std::move(job));
  }
  // An unsupported pairing: both sides must reject with the engine's
  // reason, verbatim.
  jobs[9].algorithm = static_cast<uint8_t>(FannAlgorithm::kApxSum);
  jobs[9].aggregate = static_cast<uint8_t>(Aggregate::kMax);
  return jobs;
}

/// Answers the wire jobs in-process and converts through the same
/// lossless ToWire mapping the server uses.
std::vector<WireResult> RunReference(BatchQueryEngine& engine,
                                     const Graph& graph,
                                     const std::vector<WireQuery>& jobs) {
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> batch;
  for (const WireQuery& wire : jobs) {
    auto p = std::make_unique<IndexedVertexSet>(
        graph.NumVertices(), std::vector<VertexId>(wire.p.begin(),
                                                   wire.p.end()));
    auto q = std::make_unique<IndexedVertexSet>(
        graph.NumVertices(), std::vector<VertexId>(wire.q.begin(),
                                                   wire.q.end()));
    FannrQuery job;
    job.query.graph = &graph;
    job.query.data_points = p.get();
    job.query.query_points = q.get();
    job.query.phi = wire.phi;
    job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
    job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
    sets.push_back(std::move(p));
    sets.push_back(std::move(q));
    batch.push_back(job);
  }
  const std::vector<FannResult> results = engine.Run(batch);
  std::vector<WireResult> wire_results;
  wire_results.reserve(results.size());
  for (const FannResult& r : results) wire_results.push_back(ToWire(r));
  return wire_results;
}

uint64_t DistanceBits(double distance) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(distance));
  std::memcpy(&bits, &distance, sizeof(bits));
  return bits;
}

void ExpectBitwiseEqual(const WireResult& server, const WireResult& reference,
                        const std::string& label) {
  EXPECT_EQ(server.status, reference.status) << label;
  EXPECT_EQ(server.best, reference.best) << label;
  EXPECT_EQ(DistanceBits(server.distance), DistanceBits(reference.distance))
      << label << ": server distance " << server.distance << " vs reference "
      << reference.distance;
  EXPECT_EQ(server.gphi_evaluations, reference.gphi_evaluations) << label;
  EXPECT_EQ(server.subset, reference.subset) << label;
  EXPECT_EQ(server.error, reference.error) << label;
}

void ExpectAllBitwiseEqual(const std::vector<WireResult>& server,
                           const std::vector<WireResult>& reference,
                           const std::string& label) {
  ASSERT_EQ(server.size(), reference.size()) << label;
  for (size_t i = 0; i < server.size(); ++i) {
    ExpectBitwiseEqual(server[i], reference[i],
                       label + " job " + std::to_string(i));
  }
}

TEST(NetLoopbackDifferential, BitwiseIdenticalAcrossThreadsAndUpdates) {
  // Baselines from the first thread count; every other thread count must
  // reproduce them bitwise (the engine's determinism invariant, observed
  // through the wire).
  std::vector<WireResult> steady_baseline;
  std::vector<WireResult> updated_baseline;

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("engine threads = " + std::to_string(threads));

    // The same seed materializes the scenario twice: Graph is move-only,
    // so the server's (mutable) copy and the reference copy are rebuilt
    // deterministically rather than shared.
    Graph ref_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
    Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
    const std::vector<WireQuery> jobs = BuildWireJobs(ref_graph);

    GphiResources ref_resources;
    ref_resources.graph = &ref_graph;
    BatchOptions ref_options;
    ref_options.num_threads = threads;
    BatchQueryEngine reference(ref_resources, ref_options);

    ExecutorGate gate;
    GphiResources srv_resources;
    srv_resources.graph = &srv_graph;
    ServerConfig config;
    config.engine_options.num_threads = threads;
    config.test_execution_gate = gate.AsHook();
    FannServer server(&srv_graph, srv_resources, std::move(config));
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    FannClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()))
        << client.last_error();

    // --- steady state: epoch 0, no updates ---------------------------
    BatchRequest request;
    request.jobs = jobs;
    BatchResponse steady;
    ASSERT_TRUE(client.Batch(request, steady)) << client.last_error();
    EXPECT_EQ(steady.graph_epoch, 0u);
    const std::vector<WireResult> steady_reference =
        RunReference(reference, ref_graph, jobs);
    ExpectAllBitwiseEqual(steady.results, steady_reference, "steady");
    if (steady_baseline.empty()) {
      steady_baseline = steady.results;
    } else {
      ExpectAllBitwiseEqual(steady.results, steady_baseline,
                            "steady vs thread baseline");
    }

    // --- concurrent UPDATE_WEIGHTS wave ------------------------------
    // The wave is generated from the pre-update graph (both copies are
    // identical), sent to the server, and applied to the reference.
    Rng wave_rng(99);
    const dynamic::UpdateBatch wave =
        dynamic::MakeCongestionWave(ref_graph, 0.05, 0.5, 3.0, wave_rng);
    ASSERT_FALSE(wave.empty());

    // Order deterministically with the gate: the update is dequeued and
    // held, then the batch is admitted at epoch 0 behind it. FIFO makes
    // the update apply first, so the batch must be rejected stale.
    gate.Hold();
    std::thread updater([&] {
      FannClient update_client;
      ASSERT_TRUE(update_client.Connect("127.0.0.1", server.port()))
          << update_client.last_error();
      UpdateWeightsRequest update;
      for (const EdgeWeightUpdate& u : wave.updates()) {
        update.entries.push_back({u.u, u.v, u.new_weight});
      }
      UpdateWeightsResponse response;
      ASSERT_TRUE(update_client.UpdateWeights(update, response))
          << update_client.last_error();
      EXPECT_EQ(response.status, 0);
      EXPECT_GT(response.applied, 0u);
      EXPECT_EQ(response.new_epoch, 1u);
    });
    gate.AwaitEntered(2);  // steady batch was 1; the update is now held

    BatchResponse stale;
    std::thread querier([&] {
      FannClient stale_client;
      ASSERT_TRUE(stale_client.Connect("127.0.0.1", server.port()))
          << stale_client.last_error();
      ASSERT_TRUE(stale_client.Batch(request, stale))
          << stale_client.last_error();
    });
    AwaitQueueDepth(server, 1.0);
    gate.Release();
    updater.join();
    querier.join();

    // Every job admitted at epoch 0 is rejected with the engine's
    // canonical mid-batch reason — the identical string an in-process
    // Run() straddling the epoch change reports.
    EXPECT_EQ(stale.graph_epoch, 1u);
    ASSERT_EQ(stale.results.size(), jobs.size());
    const std::string canonical = MidBatchEpochError(0, 1);
    for (size_t i = 0; i < stale.results.size(); ++i) {
      EXPECT_EQ(stale.results[i].status,
                static_cast<uint8_t>(QueryStatus::kRejected))
          << "stale job " << i;
      EXPECT_EQ(stale.results[i].error, canonical) << "stale job " << i;
    }
    EXPECT_EQ(
        server.metrics().Snapshot().counter("server.rejected_stale_admission"),
        1u);

    // --- re-submit under the new epoch -------------------------------
    BatchResponse updated;
    ASSERT_TRUE(client.Batch(request, updated)) << client.last_error();
    EXPECT_EQ(updated.graph_epoch, 1u);

    const dynamic::ApplyResult applied = wave.Apply(ref_graph);
    EXPECT_GT(applied.applied, 0u);
    EXPECT_EQ(applied.new_epoch, 1u);
    const std::vector<WireResult> updated_reference =
        RunReference(reference, ref_graph, jobs);
    ExpectAllBitwiseEqual(updated.results, updated_reference, "updated");
    if (updated_baseline.empty()) {
      updated_baseline = updated.results;
    } else {
      ExpectAllBitwiseEqual(updated.results, updated_baseline,
                            "updated vs thread baseline");
    }

    server.RequestShutdown();
    const DrainStats stats = server.Wait();
    EXPECT_TRUE(stats.within_deadline);
  }
}

/// Reads one whole response frame off a raw socket (blocking).
bool ReadFrame(const Socket& sock, FrameHeader& header,
               std::vector<uint8_t>& payload) {
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!sock.ReadFull(header_bytes, sizeof(header_bytes))) return false;
  DecodeFrameHeader(header_bytes, header);
  payload.resize(header.payload_length);
  if (header.payload_length > 0 &&
      !sock.ReadFull(payload.data(), payload.size())) {
    return false;
  }
  return true;
}

TEST(NetLoopbackDifferential, PipelinedShuffledIdsBitwiseIdentical) {
  // The steady scenario again, but pushed through the pipelined path:
  // three connections each write all ten jobs as individual QUERY
  // frames — with shuffled, colliding-across-connections request ids —
  // before reading a single response. Answers correlated by id must be
  // bitwise-identical to one in-process Run of the same jobs, which
  // also proves the server's burst merging (whatever run of queries it
  // groups into one engine Run) cannot change an answer. Repeated after
  // a weight wave so the post-update epoch is covered too.
  Graph ref_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  const std::vector<WireQuery> jobs = BuildWireJobs(ref_graph);

  GphiResources ref_resources;
  ref_resources.graph = &ref_graph;
  BatchOptions ref_options;
  ref_options.num_threads = 2;
  BatchQueryEngine reference(ref_resources, ref_options);

  GphiResources srv_resources;
  srv_resources.graph = &srv_graph;
  ServerConfig config;
  config.engine_options.num_threads = 2;
  FannServer server(&srv_graph, srv_resources, std::move(config));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr size_t kConnections = 3;
  auto run_pipelined_wave = [&](uint64_t id_salt, GraphEpoch expected_epoch,
                                const std::vector<WireResult>& expected) {
    std::vector<Socket> conns;
    // Per connection: a shuffled job order under ids that deliberately
    // repeat across connections (ids are per-connection namespace).
    std::vector<std::vector<std::pair<uint64_t, size_t>>> sent(kConnections);
    for (size_t c = 0; c < kConnections; ++c) {
      std::string connect_error;
      Socket sock = TcpConnect("127.0.0.1", server.port(), &connect_error);
      ASSERT_TRUE(sock.valid()) << connect_error;

      std::vector<size_t> order(jobs.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      Rng rng(id_salt * 100 + c);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
      for (size_t i = 0; i < order.size(); ++i) {
        // Sparse, shuffled, connection-independent ids.
        const uint64_t id = id_salt + order[i] * 7919 + 13;
        QueryRequest request;
        request.query = jobs[order[i]];
        const std::vector<uint8_t> frame =
            EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), id,
                        EncodeQueryRequest(request));
        ASSERT_TRUE(sock.WriteFull(frame.data(), frame.size()));
        sent[c].push_back({id, order[i]});
      }
      conns.push_back(std::move(sock));
    }

    // Only now read anything: every connection has its full window in
    // flight. Responses may arrive in any order; correlate by id.
    for (size_t c = 0; c < kConnections; ++c) {
      std::map<uint64_t, WireResult> by_id;
      for (size_t i = 0; i < jobs.size(); ++i) {
        FrameHeader header;
        std::vector<uint8_t> payload;
        ASSERT_TRUE(ReadFrame(conns[c], header, payload))
            << "connection " << c << " response " << i;
        ASSERT_EQ(header.opcode,
                  static_cast<uint16_t>(Opcode::kQueryResult));
        QueryResponse response;
        ASSERT_TRUE(DecodeQueryResponse(payload, response));
        EXPECT_EQ(response.graph_epoch, expected_epoch);
        ASSERT_TRUE(by_id.emplace(header.request_id,
                                  response.result).second)
            << "duplicate response id " << header.request_id;
      }
      for (const auto& [id, job_index] : sent[c]) {
        auto it = by_id.find(id);
        ASSERT_NE(it, by_id.end()) << "id " << id << " unanswered";
        ExpectBitwiseEqual(it->second, expected[job_index],
                           "conn " + std::to_string(c) + " job " +
                               std::to_string(job_index));
      }
    }
  };

  run_pipelined_wave(1000, 0, RunReference(reference, ref_graph, jobs));

  // Weight wave: server applies over the wire, reference in-process.
  Rng wave_rng(99);
  const dynamic::UpdateBatch wave =
      dynamic::MakeCongestionWave(ref_graph, 0.05, 0.5, 3.0, wave_rng);
  ASSERT_FALSE(wave.empty());
  {
    FannClient update_client;
    ASSERT_TRUE(update_client.Connect("127.0.0.1", server.port()))
        << update_client.last_error();
    UpdateWeightsRequest update;
    for (const EdgeWeightUpdate& u : wave.updates()) {
      update.entries.push_back({u.u, u.v, u.new_weight});
    }
    UpdateWeightsResponse response;
    ASSERT_TRUE(update_client.UpdateWeights(update, response))
        << update_client.last_error();
    EXPECT_EQ(response.status, 0);
  }
  const dynamic::ApplyResult applied = wave.Apply(ref_graph);
  EXPECT_EQ(applied.new_epoch, 1u);

  run_pipelined_wave(5000, 1, RunReference(reference, ref_graph, jobs));

  server.RequestShutdown();
  const DrainStats stats = server.Wait();
  EXPECT_TRUE(stats.within_deadline);
}

TEST(NetLoopbackDifferential, PipelinedDrainMidLoadAnswersBitwise) {
  // Mid-load drain: a connection with six pipelined queries in flight
  // (one held at the executor gate, five queued) receives the drain.
  // All six must still be answered — bitwise equal to in-process — as
  // *drained* work, then the connection closes cleanly.
  Graph ref_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  std::vector<WireQuery> jobs = BuildWireJobs(ref_graph);
  jobs.resize(6);

  GphiResources ref_resources;
  ref_resources.graph = &ref_graph;
  BatchQueryEngine reference(ref_resources, BatchOptions{});

  ExecutorGate gate;
  gate.Hold();
  GphiResources srv_resources;
  srv_resources.graph = &srv_graph;
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  FannServer server(&srv_graph, srv_resources, std::move(config));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  FannClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()))
      << client.last_error();
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < jobs.size(); ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendQuery(jobs[i], &id)) << client.last_error();
    ids.push_back(id);
  }
  gate.AwaitEntered(1);  // first query held; five queued behind it

  uint64_t shutdown_id = 0;
  ASSERT_TRUE(client.SendShutdown(&shutdown_id));
  for (int spin = 0; spin < 200 && !server.draining(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(server.draining());

  // Let Wait() arm the drain while the executor is still parked, so all
  // six items are accounted as drained work.
  DrainStats stats;
  std::thread wait_thread([&] { stats = server.Wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Release();

  // Collect everything in flight: the shutdown ack plus six results.
  std::map<uint64_t, WireResult> by_id;
  bool acked = false;
  for (size_t i = 0; i < jobs.size() + 1; ++i) {
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(client.ReadAny(header, payload)) << client.last_error();
    if (header.opcode == static_cast<uint16_t>(Opcode::kShutdownAck)) {
      EXPECT_EQ(header.request_id, shutdown_id);
      acked = true;
      continue;
    }
    ASSERT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kQueryResult));
    QueryResponse response;
    ASSERT_TRUE(DecodeQueryResponse(payload, response));
    EXPECT_TRUE(by_id.emplace(header.request_id, response.result).second);
  }
  EXPECT_TRUE(acked);
  wait_thread.join();

  const std::vector<WireResult> expected =
      RunReference(reference, ref_graph, jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    auto it = by_id.find(ids[i]);
    ASSERT_NE(it, by_id.end()) << "query " << i << " unanswered in drain";
    ExpectBitwiseEqual(it->second, expected[i],
                       "drained job " + std::to_string(i));
  }
  EXPECT_EQ(stats.drained_items, jobs.size());
  EXPECT_EQ(stats.aborted_items, 0u);
  EXPECT_TRUE(stats.within_deadline);
}

}  // namespace
}  // namespace fannr::net
