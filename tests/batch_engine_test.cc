// BatchQueryEngine correctness: batch execution must return exactly what
// the sequential per-query solvers return, for every algorithm and both
// oracle modes, and the shared distance cache must actually be shared.

#include "engine/batch_engine.h"

#include <bit>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cached_sssp.h"
#include "fann/fannr.h"
#include "fann_world.h"
#include "test_util.h"

namespace fannr {
namespace {

// Bitwise result equality: value fields compared through their bit
// patterns (so +0.0 vs -0.0 or differing NaNs would fail, which is the
// guarantee the engine documents).
void ExpectBitwiseEqual(const FannResult& a, const FannResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.best, b.best) << label;
  EXPECT_EQ(std::bit_cast<uint64_t>(a.distance),
            std::bit_cast<uint64_t>(b.distance))
      << label << " dist " << a.distance << " vs " << b.distance;
  EXPECT_EQ(a.subset, b.subset) << label;
  EXPECT_EQ(a.gphi_evaluations, b.gphi_evaluations) << label;
}

// A batch over one world: several (P, Q) instances crossed with every
// algorithm that supports the chosen aggregate.
struct Batch {
  std::deque<IndexedVertexSet> sets;  // stable addresses for the queries
  std::vector<FannrQuery> jobs;

  Batch(const Graph& graph, Aggregate aggregate, uint64_t seed,
        size_t instances = 3) {
    Rng rng(seed);
    for (size_t i = 0; i < instances; ++i) {
      const auto& p = sets.emplace_back(
          graph.NumVertices(), testing::SampleVertices(graph, 30, rng));
      const auto& q = sets.emplace_back(
          graph.NumVertices(), testing::SampleVertices(graph, 8, rng));
      for (FannAlgorithm algorithm : kAllFannAlgorithms) {
        if (!FannAlgorithmSupports(algorithm, aggregate)) continue;
        FannrQuery job;
        job.query = FannQuery{&graph, &p, &q, 0.5, aggregate};
        job.algorithm = algorithm;
        jobs.push_back(job);
      }
    }
  }
};

// Sequential reference: one uncached Cached-SSSP engine, one query at a
// time — the execution model this PR replaces.
std::vector<FannResult> SequentialReference(
    const Graph& graph, const std::vector<FannrQuery>& jobs) {
  auto engine = MakeCachedSsspEngine(graph, nullptr);
  std::vector<FannResult> results;
  results.reserve(jobs.size());
  std::map<const IndexedVertexSet*, RTree> p_trees;
  for (const FannrQuery& job : jobs) {
    const RTree* p_tree = nullptr;
    if (job.algorithm == FannAlgorithm::kIer) {
      auto it = p_trees.find(job.query.data_points);
      if (it == p_trees.end()) {
        it = p_trees
                 .emplace(job.query.data_points,
                          BuildDataPointRTree(graph, *job.query.data_points))
                 .first;
      }
      p_tree = &it->second;
    }
    results.push_back(SolveWith(job.algorithm, job.query, *engine, p_tree));
  }
  return results;
}

TEST(BatchEngineTest, MatchesSequentialExecutionBothAggregates) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
    Batch batch(graph, aggregate, 0xBA7C4 + static_cast<int>(aggregate));
    const auto expected = SequentialReference(graph, batch.jobs);

    BatchOptions options;
    options.num_threads = 4;
    BatchQueryEngine engine(world.Resources(), options);
    const auto got = engine.Run(batch.jobs);

    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectBitwiseEqual(got[i], expected[i],
                         "job " + std::to_string(i) + " agg " +
                             std::string(AggregateName(aggregate)));
    }
  }
}

TEST(BatchEngineTest, GphiKindOracleMatchesDirectEngine) {
  // gphi_kind mode: every worker owns a Table I engine; results must
  // equal the same engine run sequentially.
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Batch batch(graph, Aggregate::kMax, 0x5EeD);

  for (GphiKind kind : {GphiKind::kPhl, GphiKind::kGTree}) {
    auto reference_engine = MakeGphiEngine(kind, world.Resources());
    std::vector<FannResult> expected;
    std::map<const IndexedVertexSet*, RTree> p_trees;
    for (const FannrQuery& job : batch.jobs) {
      const RTree* p_tree = nullptr;
      if (job.algorithm == FannAlgorithm::kIer) {
        auto it = p_trees.find(job.query.data_points);
        if (it == p_trees.end()) {
          it = p_trees
                   .emplace(job.query.data_points,
                            BuildDataPointRTree(graph,
                                                *job.query.data_points))
                   .first;
        }
        p_tree = &it->second;
      }
      expected.push_back(
          SolveWith(job.algorithm, job.query, *reference_engine, p_tree));
    }

    BatchOptions options;
    options.num_threads = 2;
    options.gphi_kind = kind;
    BatchQueryEngine engine(world.Resources(), options);
    const auto got = engine.Run(batch.jobs);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectBitwiseEqual(got[i], expected[i],
                         std::string(GphiKindName(kind)) + " job " +
                             std::to_string(i));
    }
  }
}

TEST(BatchEngineTest, SharedCacheGetsHitsAcrossQueries) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();

  // Eight GD queries over the same P evaluate each candidate eight
  // times; with a shared cache only the first evaluation of a candidate
  // misses.
  Rng rng(77);
  IndexedVertexSet p(graph.NumVertices(),
                     testing::SampleVertices(graph, 25, rng));
  std::deque<IndexedVertexSet> qs;
  std::vector<FannrQuery> jobs;
  for (int i = 0; i < 8; ++i) {
    const auto& q = qs.emplace_back(graph.NumVertices(),
                                    testing::SampleVertices(graph, 10, rng));
    FannrQuery job;
    job.query = FannQuery{&graph, &p, &q, 0.5, Aggregate::kSum};
    job.algorithm = FannAlgorithm::kGd;
    jobs.push_back(job);
  }

  BatchOptions options;
  options.num_threads = 2;
  options.cache_capacity = 256;
  BatchQueryEngine engine(world.Resources(), options);
  engine.Run(jobs);

  const auto stats = engine.cache_stats();
  // 8 queries x 25 candidates = 200 evaluations; at most 25 distinct
  // sources can miss (races may duplicate a handful of SSSPs, but hits
  // must dominate).
  EXPECT_EQ(stats.hits + stats.misses, 200u);
  EXPECT_GE(stats.hits, 150u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(BatchEngineTest, CacheDisabledStillCorrect) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Batch batch(graph, Aggregate::kSum, 0xD15AB1E);
  const auto expected = SequentialReference(graph, batch.jobs);

  BatchOptions options;
  options.num_threads = 2;
  options.share_distance_cache = false;
  BatchQueryEngine engine(world.Resources(), options);
  const auto got = engine.Run(batch.jobs);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectBitwiseEqual(got[i], expected[i], "uncached job " +
                                                std::to_string(i));
  }
  EXPECT_EQ(engine.cache_stats().hits + engine.cache_stats().misses, 0u);
}

TEST(BatchEngineTest, EmptyBatch) {
  const auto& world = testing::FannWorld::Get();
  BatchQueryEngine engine(world.Resources(), BatchOptions{});
  EXPECT_TRUE(engine.Run({}).empty());
}

TEST(BatchEngineTest, PerJobDeadlineTimesOutWithoutAffectingBatchMates) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Batch batch(graph, Aggregate::kSum, 0xD3AD);

  BatchOptions options;
  options.num_threads = 4;
  BatchQueryEngine engine(world.Resources(), options);
  const auto no_deadline = engine.Run(batch.jobs);

  // The slow job: its budget is already spent when the batch starts
  // (values <= 0 time out immediately by contract) — the deterministic
  // stand-in for a solve that cannot finish in time. Batch-mates carry
  // no deadline and must return exactly what they returned before.
  const size_t slow = batch.jobs.size() / 2;
  batch.jobs[slow].deadline_ms = 0.0;
  const auto got = engine.Run(batch.jobs);

  ASSERT_EQ(got.size(), no_deadline.size());
  for (size_t i = 0; i < got.size(); ++i) {
    if (i == slow) {
      EXPECT_EQ(got[i].status, QueryStatus::kTimedOut);
      EXPECT_EQ(got[i].best, kInvalidVertex);
      EXPECT_EQ(std::bit_cast<uint64_t>(got[i].distance),
                std::bit_cast<uint64_t>(kInfWeight));
      EXPECT_TRUE(got[i].subset.empty());
      EXPECT_NE(got[i].error.find("deadline"), std::string::npos)
          << got[i].error;
    } else {
      EXPECT_EQ(got[i].status, QueryStatus::kOk) << got[i].error;
      ExpectBitwiseEqual(got[i], no_deadline[i],
                         "batch-mate " + std::to_string(i));
    }
  }
}

TEST(BatchEngineTest, PerJobDeadlineOverridesBatchDefault) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Batch batch(graph, Aggregate::kMax, 0xD3AE, /*instances=*/1);

  // Batch default already expired; one job overrides with a generous
  // budget and must be the only one that solves.
  BatchOptions options;
  options.num_threads = 2;
  options.deadline_ms = 0.0;
  batch.jobs[0].deadline_ms = 60000.0;
  BatchQueryEngine engine(world.Resources(), options);
  const auto got = engine.Run(batch.jobs);

  ASSERT_EQ(got.size(), batch.jobs.size());
  EXPECT_EQ(got[0].status, QueryStatus::kOk) << got[0].error;
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, QueryStatus::kTimedOut);
    EXPECT_NE(got[i].error.find("deadline"), std::string::npos)
        << got[i].error;
  }
}

TEST(DispatchTest, NamesAndSupport) {
  EXPECT_EQ(FannAlgorithmName(FannAlgorithm::kGd), "GD");
  EXPECT_EQ(FannAlgorithmName(FannAlgorithm::kExactMax), "Exact-max");
  EXPECT_TRUE(FannAlgorithmSupports(FannAlgorithm::kGd, Aggregate::kSum));
  EXPECT_TRUE(
      FannAlgorithmSupports(FannAlgorithm::kExactMax, Aggregate::kMax));
  EXPECT_FALSE(
      FannAlgorithmSupports(FannAlgorithm::kExactMax, Aggregate::kSum));
  EXPECT_FALSE(
      FannAlgorithmSupports(FannAlgorithm::kApxSum, Aggregate::kMax));
}

}  // namespace
}  // namespace fannr
