// Unit tests for cont::SubscriptionTable — the executor-owned registry
// behind continuous queries (src/cont/subscription.h): registration
// ordering, per-connection and global limits (capacity judged before
// duplicate ids so an over-limit client always gets the retryable
// outcome), reaping dead owners, and push accounting that survives
// removals.

#include <gtest/gtest.h>

#include <memory>

#include "cont/subscription.h"

namespace fannr::cont {
namespace {

std::shared_ptr<void> MakeOwner() { return std::make_shared<int>(0); }

Subscription Make(std::shared_ptr<void> owner, uint64_t id) {
  Subscription sub;
  sub.id = id;
  sub.owner = std::move(owner);
  return sub;
}

TEST(SubscriptionTable, AddFindRemovePreserveRegistrationOrder) {
  SubscriptionTable table(/*max_per_connection=*/0, /*max_total=*/0);
  const auto a = MakeOwner();
  const auto b = MakeOwner();

  EXPECT_EQ(table.Add(Make(a, 1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(b, 1)), SubscribeOutcome::kOk);  // ids are per-owner
  EXPECT_EQ(table.Add(Make(a, 2)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.OwnerCount(a.get()), 2u);
  EXPECT_EQ(table.OwnerCount(b.get()), 1u);

  // Iteration is registration order — the re-evaluation sweep (and so
  // push order) depends on it.
  ASSERT_EQ(table.subscriptions().size(), 3u);
  EXPECT_EQ(table.subscriptions()[0].owner.get(), a.get());
  EXPECT_EQ(table.subscriptions()[1].owner.get(), b.get());
  EXPECT_EQ(table.subscriptions()[2].id, 2u);

  EXPECT_NE(table.Find(a.get(), 1), nullptr);
  EXPECT_EQ(table.Find(a.get(), 3), nullptr);
  EXPECT_EQ(table.Find(b.get(), 2), nullptr);

  Subscription removed;
  EXPECT_TRUE(table.Remove(a.get(), 1, &removed));
  EXPECT_EQ(removed.id, 1u);
  EXPECT_FALSE(table.Remove(a.get(), 1));  // already gone
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Find(a.get(), 1), nullptr);
  EXPECT_NE(table.Find(a.get(), 2), nullptr);
}

TEST(SubscriptionTable, DuplicateIdRefusedPerOwner) {
  SubscriptionTable table(0, 0);
  const auto a = MakeOwner();
  EXPECT_EQ(table.Add(Make(a, 7)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(a, 7)), SubscribeOutcome::kDuplicateId);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SubscriptionTable, LimitsTripAndCapacityOutranksDuplicate) {
  SubscriptionTable table(/*max_per_connection=*/2, /*max_total=*/3);
  const auto a = MakeOwner();
  const auto b = MakeOwner();
  const auto c = MakeOwner();

  EXPECT_EQ(table.Add(Make(a, 1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(a, 2)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(a, 3)), SubscribeOutcome::kPerConnectionLimit);
  // Per-connection capacity is judged before the duplicate check: a
  // full connection reusing an id still gets the retryable outcome.
  EXPECT_EQ(table.Add(Make(a, 1)), SubscribeOutcome::kPerConnectionLimit);

  EXPECT_EQ(table.Add(Make(b, 1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(c, 1)), SubscribeOutcome::kGlobalLimit);

  // Freeing a slot makes both limits recoverable.
  EXPECT_TRUE(table.Remove(a.get(), 1));
  EXPECT_EQ(table.Add(Make(c, 1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SubscriptionTable, ZeroMeansUnlimited) {
  SubscriptionTable table(0, 0);
  const auto a = MakeOwner();
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(table.Add(Make(a, id)), SubscribeOutcome::kOk);
  }
  EXPECT_EQ(table.size(), 100u);
}

TEST(SubscriptionTable, ReapDropsDeadOwnersOnly) {
  SubscriptionTable table(0, 0);
  const auto alive = MakeOwner();
  const auto dead = MakeOwner();
  EXPECT_EQ(table.Add(Make(alive, 1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(dead, 1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(Make(dead, 2)), SubscribeOutcome::kOk);

  const size_t reaped = table.Reap(
      [&](const std::shared_ptr<void>& owner) { return owner == alive; });
  EXPECT_EQ(reaped, 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.Find(alive.get(), 1), nullptr);
  EXPECT_EQ(table.OwnerCount(dead.get()), 0u);
}

TEST(SubscriptionTable, TotalPushesSentSurvivesRemovalAndReap) {
  SubscriptionTable table(0, 0);
  const auto a = MakeOwner();
  const auto b = MakeOwner();

  Subscription s1 = Make(a, 1);
  s1.pushes_sent = 5;
  Subscription s2 = Make(b, 1);
  s2.pushes_sent = 7;
  Subscription s3 = Make(b, 2);
  s3.pushes_sent = 11;
  EXPECT_EQ(table.Add(std::move(s1)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(std::move(s2)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.Add(std::move(s3)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.total_pushes_sent(), 23u);

  // An unsubscribe reports the final count AND keeps it in the total:
  // stats must not shrink when clients leave.
  Subscription removed;
  EXPECT_TRUE(table.Remove(a.get(), 1, &removed));
  EXPECT_EQ(removed.pushes_sent, 5u);
  EXPECT_EQ(table.total_pushes_sent(), 23u);

  table.Reap([](const std::shared_ptr<void>&) { return false; });
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.total_pushes_sent(), 23u);

  // Live deliveries keep accruing on top of the retired total.
  Subscription s4 = Make(a, 9);
  s4.pushes_sent = 2;
  EXPECT_EQ(table.Add(std::move(s4)), SubscribeOutcome::kOk);
  EXPECT_EQ(table.total_pushes_sent(), 25u);
}

}  // namespace
}  // namespace fannr::cont
