#include "sp/astar.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "sp/bidirectional.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(AStarTest, MatchesDijkstraOnRandomNetworks) {
  for (uint64_t seed : {11u, 12u}) {
    Graph g = testing::MakeRandomNetwork(400, seed);
    ASSERT_TRUE(g.EuclideanConsistent());
    AStarSearch astar(g);
    DijkstraSearch dijkstra(g);
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      VertexId s = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      VertexId t = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      EXPECT_NEAR(astar.Distance(s, t), dijkstra.Distance(s, t), 1e-6)
          << "seed " << seed << " pair " << s << "->" << t;
    }
  }
}

TEST(AStarTest, SelfDistanceZero) {
  Graph g = testing::MakeSmallGrid(5, 5);
  AStarSearch astar(g);
  EXPECT_DOUBLE_EQ(astar.Distance(3, 3), 0.0);
}

TEST(AStarTest, SettlesNoMoreThanDijkstraTypically) {
  Graph g = testing::MakeRandomNetwork(900, 21);
  AStarSearch astar(g);
  Rng rng(22);
  size_t total_settled = 0;
  int trials = 20;
  for (int i = 0; i < trials; ++i) {
    VertexId s = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    astar.Distance(s, t);
    total_settled += astar.last_settled_count();
  }
  // The goal-directed search should on average settle well under the whole
  // graph per query.
  EXPECT_LT(total_settled, trials * g.NumVertices());
}

TEST(BidirectionalTest, MatchesDijkstraOnRandomNetworks) {
  for (uint64_t seed : {31u, 32u}) {
    Graph g = testing::MakeRandomNetwork(400, seed);
    BidirectionalSearch bidir(g);
    DijkstraSearch dijkstra(g);
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      VertexId s = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      VertexId t = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      EXPECT_NEAR(bidir.Distance(s, t), dijkstra.Distance(s, t), 1e-6)
          << "seed " << seed << " pair " << s << "->" << t;
    }
  }
}

TEST(BidirectionalTest, DisconnectedReturnsInfinity) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  BidirectionalSearch bidir(g);
  EXPECT_EQ(bidir.Distance(0, 3), kInfWeight);
  EXPECT_DOUBLE_EQ(bidir.Distance(2, 3), 1.0);
}

TEST(BidirectionalTest, SelfDistanceZero) {
  Graph g = testing::MakeLineGraph(3);
  BidirectionalSearch bidir(g);
  EXPECT_DOUBLE_EQ(bidir.Distance(2, 2), 0.0);
}

}  // namespace
}  // namespace fannr
