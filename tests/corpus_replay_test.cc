// Replays every committed fuzzer reproducer in tests/corpus/ through the
// full differential + invariant checker. Each file is a minimized,
// self-contained scenario for a bug the fuzzer once found (see
// tools/fuzz_fannr.cc); keeping them green keeps those bugs fixed.

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/differential.h"
#include "testing/scenario.h"

namespace fannr {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(FANNR_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, CorpusIsNonEmpty) {
  ASSERT_TRUE(std::filesystem::exists(FANNR_CORPUS_DIR));
  EXPECT_GE(CorpusFiles().size(), 10u);
}

TEST(CorpusReplayTest, EveryReproducerIsClean) {
  for (const std::string& path : CorpusFiles()) {
    std::string error;
    const auto scenario = testing::ReadScenarioFile(path, &error);
    ASSERT_TRUE(scenario.has_value()) << path << ": " << error;
    const auto violations =
        testing::RunDifferentialChecks(*scenario, testing::DifferentialOptions{});
    EXPECT_TRUE(violations.empty())
        << path << " (" << testing::DescribeScenario(*scenario) << "):\n  "
        << (violations.empty() ? "" : violations.front());
  }
}

TEST(CorpusReplayTest, ReproducersRoundTripBitwise) {
  // A reproducer must survive write -> read -> write unchanged, or the
  // corpus silently drifts away from the bug it pins down.
  for (const std::string& path : CorpusFiles()) {
    std::string error;
    const auto scenario = testing::ReadScenarioFile(path, &error);
    ASSERT_TRUE(scenario.has_value()) << path << ": " << error;
    std::ostringstream first;
    ASSERT_TRUE(testing::WriteScenario(*scenario, first));
    std::istringstream in(first.str());
    const auto reparsed = testing::ReadScenario(in, &error);
    ASSERT_TRUE(reparsed.has_value()) << path << ": " << error;
    std::ostringstream second;
    ASSERT_TRUE(testing::WriteScenario(*reparsed, second));
    EXPECT_EQ(first.str(), second.str()) << path;
  }
}

}  // namespace
}  // namespace fannr
