#include "engine/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fannr {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> seen(kCount);
  pool.ParallelFor(kCount, [&](size_t index, size_t worker) {
    EXPECT_LT(worker, 4u);
    seen[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleWorkerProcessesAll) {
  ThreadPool pool(1);
  size_t sum = 0;  // single worker: no synchronization needed
  pool.ParallelFor(100, [&](size_t index, size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += index;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, ReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(round * 7 + 1, [&](size_t, size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), static_cast<size_t>(round * 7 + 1));
  }
}

TEST(ThreadPoolTest, MoreWorkersThanIndices) {
  ThreadPool pool(8);
  std::atomic<size_t> count{0};
  pool.ParallelFor(2, [&](size_t, size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 2u);
}

TEST(ThreadPoolTest, PerWorkerScratchIsUnshared) {
  // Each worker accumulates into its own slot; slots must add up with no
  // lost updates, proving worker ids never collide concurrently.
  ThreadPool pool(4);
  std::vector<size_t> per_worker(pool.num_workers(), 0);
  pool.ParallelFor(5000, [&](size_t, size_t worker) {
    ++per_worker[worker];
  });
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(), size_t{0}),
            5000u);
}

TEST(ThreadPoolTest, BodyExceptionPropagatesToCaller) {
  // Pre-fix, an exception escaping the body crossed the worker thread's
  // noexcept boundary and called std::terminate. It must instead surface
  // on the calling thread.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t index, size_t) {
                         if (index == 37) throw std::runtime_error("boom 37");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndCarriesItsMessage) {
  ThreadPool pool(2);
  std::string message;
  try {
    pool.ParallelFor(50, [&](size_t index, size_t) {
      throw std::runtime_error("fail at " + std::to_string(index));
    });
    FAIL() << "ParallelFor should have thrown";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message.rfind("fail at ", 0), 0u) << message;
}

TEST(ThreadPoolTest, ExceptionSkipsUnclaimedIndices) {
  // A throw drains the remaining work: indices claimed after the failure
  // are skipped, so a poisoned batch doesn't keep running to completion.
  ThreadPool pool(1);  // deterministic claim order: 0, 1, 2, ...
  std::atomic<size_t> executed{0};
  EXPECT_THROW(pool.ParallelFor(1000,
                                [&](size_t index, size_t) {
                                  if (index == 5) throw std::logic_error("x");
                                  executed.fetch_add(
                                      1, std::memory_order_relaxed);
                                }),
               std::logic_error);
  EXPECT_EQ(executed.load(), 5u);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  // The pool must neither deadlock nor stay poisoned: the next
  // ParallelFor runs normally and a second failure is reported again.
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   10, [](size_t, size_t) { throw std::runtime_error("a"); }),
               std::runtime_error);

  std::atomic<size_t> count{0};
  pool.ParallelFor(500, [&](size_t, size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 500u);

  EXPECT_THROW(pool.ParallelFor(
                   10, [](size_t, size_t) { throw std::runtime_error("b"); }),
               std::runtime_error);
  count.store(0);
  pool.ParallelFor(77, [&](size_t, size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 77u);
}

TEST(ThreadPoolTest, StatsCountCallsAndExecutedIndices) {
  ThreadPool pool(2);
  pool.ParallelFor(10, [](size_t, size_t) {});
  pool.ParallelFor(7, [](size_t, size_t) {});
  const auto stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 2u);
  EXPECT_EQ(stats.indices_executed, 17u);
}

}  // namespace
}  // namespace fannr
