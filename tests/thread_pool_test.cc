#include "engine/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fannr {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> seen(kCount);
  pool.ParallelFor(kCount, [&](size_t index, size_t worker) {
    EXPECT_LT(worker, 4u);
    seen[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleWorkerProcessesAll) {
  ThreadPool pool(1);
  size_t sum = 0;  // single worker: no synchronization needed
  pool.ParallelFor(100, [&](size_t index, size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += index;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, ReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(round * 7 + 1, [&](size_t, size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), static_cast<size_t>(round * 7 + 1));
  }
}

TEST(ThreadPoolTest, MoreWorkersThanIndices) {
  ThreadPool pool(8);
  std::atomic<size_t> count{0};
  pool.ParallelFor(2, [&](size_t, size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 2u);
}

TEST(ThreadPoolTest, PerWorkerScratchIsUnshared) {
  // Each worker accumulates into its own slot; slots must add up with no
  // lost updates, proving worker ids never collide concurrently.
  ThreadPool pool(4);
  std::vector<size_t> per_worker(pool.num_workers(), 0);
  pool.ParallelFor(5000, [&](size_t, size_t worker) {
    ++per_worker[worker];
  });
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(), size_t{0}),
            5000u);
}

}  // namespace
}  // namespace fannr
