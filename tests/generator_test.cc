#include "graph/generator.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/presets.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(GeneratorTest, GridNetworkIsConnectedAndConsistent) {
  GridNetworkOptions options;
  options.rows = 30;
  options.cols = 40;
  Rng rng(123);
  Graph g = GenerateGridNetwork(options, rng);
  EXPECT_GT(g.NumVertices(), 1000u);
  EXPECT_LE(g.NumVertices(), 1200u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_TRUE(g.HasCoordinates());
  EXPECT_TRUE(g.EuclideanConsistent());
}

TEST(GeneratorTest, GridNetworkDeterministicPerSeed) {
  GridNetworkOptions options;
  options.rows = 10;
  options.cols = 10;
  Rng rng1(5), rng2(5), rng3(6);
  Graph a = GenerateGridNetwork(options, rng1);
  Graph b = GenerateGridNetwork(options, rng2);
  Graph c = GenerateGridNetwork(options, rng3);
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  // Different seed should (overwhelmingly) differ in structure or size.
  EXPECT_TRUE(a.NumEdges() != c.NumEdges() ||
              a.NumVertices() != c.NumVertices() ||
              a.Coord(0).x != c.Coord(0).x);
}

TEST(GeneratorTest, GridNetworkAverageDegreeIsRoadLike) {
  GridNetworkOptions options;
  options.rows = 50;
  options.cols = 50;
  Rng rng(99);
  Graph g = GenerateGridNetwork(options, rng);
  const double avg_degree =
      2.0 * static_cast<double>(g.NumEdges()) / g.NumVertices();
  // Real road networks: ~2.2-2.7 edges per vertex each direction counted
  // once (the paper's Table III gives |E|/|V| ~ 2.4).
  EXPECT_GT(avg_degree, 2.0);
  EXPECT_LT(avg_degree, 4.5);
}

TEST(GeneratorTest, GeometricNetworkIsConnectedAndConsistent) {
  GeometricNetworkOptions options;
  options.num_vertices = 2000;
  options.extent = 10000.0;
  options.radius = 450.0;
  Rng rng(321);
  Graph g = GenerateGeometricNetwork(options, rng);
  EXPECT_GT(g.NumVertices(), 500u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_TRUE(g.EuclideanConsistent());
}

TEST(GeneratorTest, FullLatticeKeepsAllVertices) {
  GridNetworkOptions options;
  options.rows = 8;
  options.cols = 9;
  options.keep_probability = 1.0;
  Rng rng(1);
  Graph g = GenerateGridNetwork(options, rng);
  EXPECT_EQ(g.NumVertices(), 72u);
}

// Lattice dimensions whose product exceeds the VertexId range used to
// overflow the id() lambda's uint32_t cast, silently folding far-apart
// lattice points onto the same vertex. Both generators now abort before
// allocating anything, so these death tests are cheap.
TEST(GeneratorDeathTest, GridRejectsLatticesPastVertexIdSpace) {
  GridNetworkOptions options;
  options.rows = size_t{1} << 16;
  options.cols = (size_t{1} << 16) + 1;  // rows * cols = 2^32 + 2^16
  Rng rng(1);
  EXPECT_DEATH(GenerateGridNetwork(options, rng), "");
}

TEST(GeneratorDeathTest, GeometricRejectsCountsPastVertexIdSpace) {
  GeometricNetworkOptions options;
  options.num_vertices = size_t{1} << 32;
  Rng rng(1);
  EXPECT_DEATH(GenerateGeometricNetwork(options, rng), "");
}

TEST(PresetTest, TestPresetBuildsDeterministically) {
  ASSERT_TRUE(IsPresetName("TEST"));
  Graph a = BuildPreset("TEST");
  Graph b = BuildPreset("TEST");
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_TRUE(IsConnected(a));
  // Within 2% of the 2,500 vertex target.
  EXPECT_NEAR(static_cast<double>(a.NumVertices()), 2500.0, 50.0);
}

TEST(PresetTest, PresetLadderIsOrdered) {
  auto presets = AllPresets();
  ASSERT_GE(presets.size(), 5u);
  for (size_t i = 1; i < presets.size(); ++i) {
    EXPECT_LT(presets[i - 1].target_vertices, presets[i].target_vertices);
  }
  EXPECT_FALSE(IsPresetName("USA"));
  EXPECT_FALSE(IsPresetName(""));
}

}  // namespace
}  // namespace fannr
