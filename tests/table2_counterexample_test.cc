// The paper's Table II argument, as an executable test: the Exact-max
// counting scheme (first data point reached by phi|Q| sources) answers
// max-FANN_R exactly but would be WRONG for sum-FANN_R — on this instance
// the first point to saturate its counter is not the sum-optimum, which
// is why SolveExactMax refuses the sum aggregate and sum queries go
// through the universal algorithms or APX-sum.

#include <gtest/gtest.h>

#include "fann/exact_max.h"
#include "fann/gd.h"
#include "fann/rlist.h"
#include "graph/builder.h"
#include "test_util.h"

namespace fannr {
namespace {

// P = {a, b}; Q = {q1..q4}; phi = 0.5 (k = 2).
//   a: arrivals at 1 (q1) and 10 (q2)  -> max 10, sum 11
//   b: arrivals at 6 (q3) and 7 (q4)   -> max  7, sum 13
// Counting saturates b first (events 1, 6, 7): correct for max (7 < 10),
// wrong for sum (13 > 11).
struct Table2Instance {
  Graph graph;
  VertexId a, b;
  std::vector<VertexId> q;

  static Table2Instance Build() {
    GraphBuilder builder(6);
    const VertexId a = 0, b = 1;
    const VertexId q1 = 2, q2 = 3, q3 = 4, q4 = 5;
    builder.AddEdge(a, q1, 1.0);
    builder.AddEdge(a, q2, 10.0);
    builder.AddEdge(b, q3, 6.0);
    builder.AddEdge(b, q4, 7.0);
    builder.AddEdge(a, b, 100.0);  // keep the two sides far apart
    return {builder.Build(), a, b, {q1, q2, q3, q4}};
  }
};

TEST(Table2Test, CountingIsExactForMax) {
  Table2Instance inst = Table2Instance::Build();
  IndexedVertexSet p(inst.graph.NumVertices(), {inst.a, inst.b});
  IndexedVertexSet q(inst.graph.NumVertices(), inst.q);
  FannQuery query{&inst.graph, &p, &q, 0.5, Aggregate::kMax};
  FannResult result = SolveExactMax(query);
  EXPECT_EQ(result.best, inst.b);
  EXPECT_DOUBLE_EQ(result.distance, 7.0);
}

TEST(Table2Test, SumOptimumDiffersFromTheCountingWinner) {
  Table2Instance inst = Table2Instance::Build();
  // Brute force: the sum optimum is a (11), NOT the counting winner b.
  const auto brute = testing::BruteForceFann(
      inst.graph, {inst.a, inst.b}, inst.q, 0.5, Aggregate::kSum);
  EXPECT_EQ(brute.best, inst.a);
  EXPECT_DOUBLE_EQ(brute.distance, 11.0);

  // The universal algorithms get sum right.
  IndexedVertexSet p(inst.graph.NumVertices(), {inst.a, inst.b});
  IndexedVertexSet q(inst.graph.NumVertices(), inst.q);
  FannQuery query{&inst.graph, &p, &q, 0.5, Aggregate::kSum};
  GphiResources resources;
  resources.graph = &inst.graph;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  EXPECT_EQ(SolveGd(query, *engine).best, inst.a);
  EXPECT_EQ(SolveRList(query, *engine).best, inst.a);
}

TEST(Table2Test, ExactMaxRefusesSum) {
  Table2Instance inst = Table2Instance::Build();
  IndexedVertexSet p(inst.graph.NumVertices(), {inst.a, inst.b});
  IndexedVertexSet q(inst.graph.NumVertices(), inst.q);
  FannQuery query{&inst.graph, &p, &q, 0.5, Aggregate::kSum};
  EXPECT_DEATH(SolveExactMax(query), "max");
}

}  // namespace
}  // namespace fannr
