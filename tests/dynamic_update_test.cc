// Live edge-weight updates (src/dynamic/update.h) and everything keyed
// off the graph epoch: the UpdateBatch apply semantics, the
// cache-poisoning regression (epoch-stale distance vectors must never be
// served), the stale-index fallback in the batch engine, cross-thread
// agreement after updates, and mid-batch update rejection.

#include "dynamic/update.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "engine/batch_engine.h"
#include "engine/cached_sssp.h"
#include "engine/distance_cache.h"
#include "fann/fannr.h"
#include "graph/builder.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"
#include "test_util.h"

namespace fannr {
namespace {

using dynamic::ApplyResult;
using dynamic::MakeCongestionWave;
using dynamic::UpdateBatch;

// ---- UpdateBatch / Graph::ApplyWeightUpdates semantics -----------------

TEST(DynamicUpdateTest, SetWeightUpdatesBothArcDirections) {
  Graph g = testing::MakeLineGraph(4, 1.0);
  EXPECT_EQ(g.epoch(), 0u);

  UpdateBatch batch;
  batch.SetWeight(2, 1, 5.0);  // endpoint order must not matter
  const ApplyResult result = batch.Apply(g);

  EXPECT_EQ(result.applied, 1u);
  EXPECT_EQ(result.missing, 0u);
  EXPECT_EQ(result.old_epoch, 0u);
  EXPECT_EQ(result.new_epoch, 1u);
  EXPECT_EQ(g.epoch(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2).value(), 5.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 1).value(), 5.0);
  // Untouched edges keep their weight.
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1).value(), 1.0);
}

TEST(DynamicUpdateTest, EpochBumpsOncePerBatch) {
  Graph g = testing::MakeLineGraph(5, 1.0);
  UpdateBatch batch;
  batch.SetWeight(0, 1, 2.0);
  batch.SetWeight(1, 2, 3.0);
  batch.SetWeight(2, 3, 4.0);
  const ApplyResult result = batch.Apply(g);
  EXPECT_EQ(result.applied, 3u);
  EXPECT_EQ(g.epoch(), 1u);  // one bump for the whole batch
}

TEST(DynamicUpdateTest, MissingEdgeBatchDoesNotBumpEpoch) {
  Graph g = testing::MakeLineGraph(4, 1.0);
  UpdateBatch batch;
  batch.SetWeight(0, 3, 2.0);  // no such edge in a path graph
  const ApplyResult result = batch.Apply(g);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.missing, 1u);
  EXPECT_EQ(result.new_epoch, 0u);
  EXPECT_EQ(g.epoch(), 0u);
}

TEST(DynamicUpdateTest, DuplicateEdgeEntriesLastWriterWins) {
  Graph g = testing::MakeLineGraph(3, 1.0);
  UpdateBatch batch;
  batch.SetWeight(0, 1, 5.0);
  batch.SetWeight(1, 0, 7.0);  // same undirected edge, later entry
  const ApplyResult result = batch.Apply(g);
  EXPECT_EQ(result.applied, 1u);  // deduplicated before applying
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1).value(), 7.0);
}

TEST(DynamicUpdateTest, ScaleWeightReadsCurrentWeight) {
  Graph g = testing::MakeLineGraph(3, 2.0);
  UpdateBatch first;
  first.ScaleWeight(g, 0, 1, 3.0);
  first.Apply(g);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1).value(), 6.0);

  // A second scale compounds on the post-update weight.
  UpdateBatch second;
  second.ScaleWeight(g, 0, 1, 0.5);
  second.Apply(g);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1).value(), 3.0);
  EXPECT_EQ(g.epoch(), 2u);
}

TEST(DynamicUpdateTest, ValidationCatchesMalformedEntries) {
  Graph g = testing::MakeLineGraph(3, 1.0);
  {
    UpdateBatch batch;
    batch.SetWeight(0, 99, 1.0);  // endpoint out of range
    EXPECT_FALSE(batch.ValidationError(g).empty());
  }
  {
    UpdateBatch batch;
    batch.SetWeight(1, 1, 1.0);  // self-loop
    EXPECT_FALSE(batch.ValidationError(g).empty());
  }
  {
    UpdateBatch batch;
    batch.SetWeight(0, 1, 0.0);  // weights must stay strictly positive
    EXPECT_FALSE(batch.ValidationError(g).empty());
  }
  {
    UpdateBatch batch;
    batch.SetWeight(0, 1, -2.0);
    EXPECT_FALSE(batch.ValidationError(g).empty());
  }
  {
    UpdateBatch batch;
    batch.SetWeight(0, 1, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(batch.ValidationError(g).empty());
  }
  {
    UpdateBatch batch;
    batch.SetWeight(0, 1, 2.0);  // well-formed; missing edges are not
    batch.SetWeight(0, 2, 2.0);  // a validation error (reported by Apply)
    EXPECT_TRUE(batch.ValidationError(g).empty());
  }
}

TEST(DynamicUpdateTest, FingerprintTracksWeightChangesAndRestores) {
  Graph g = testing::MakeLineGraph(4, 1.0);
  const GraphFingerprint before = g.Fingerprint();

  UpdateBatch change;
  change.SetWeight(1, 2, 9.0);
  change.Apply(g);
  EXPECT_NE(g.Fingerprint(), before);

  // The checksum is an order-independent sum over arcs, so restoring the
  // weight restores the fingerprint (the epoch still advances).
  UpdateBatch restore;
  restore.SetWeight(1, 2, 1.0);
  restore.Apply(g);
  EXPECT_EQ(g.Fingerprint(), before);
  EXPECT_EQ(g.epoch(), 2u);
}

TEST(DynamicUpdateTest, CongestionWaveIsDeterministicInRngState) {
  Graph g = testing::MakeRandomNetwork(200, 11);
  Rng rng_a(42), rng_b(42);
  UpdateBatch a = MakeCongestionWave(g, 0.3, 0.5, 2.0, rng_a);
  UpdateBatch b = MakeCongestionWave(g, 0.3, 0.5, 2.0, rng_b);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.updates()[i].u, b.updates()[i].u);
    EXPECT_EQ(a.updates()[i].v, b.updates()[i].v);
    EXPECT_DOUBLE_EQ(a.updates()[i].new_weight, b.updates()[i].new_weight);
  }
}

TEST(DynamicUpdateTest, ShortestPathsReflectUpdatedWeights) {
  // 0-1-2-3 path, all weight 1. Making the middle edge expensive must
  // show up in a fresh Dijkstra immediately (no rebuild of anything).
  Graph g = testing::MakeLineGraph(4, 1.0);
  EXPECT_DOUBLE_EQ(DijkstraSssp(g, 0)[3], 3.0);
  UpdateBatch batch;
  batch.SetWeight(1, 2, 10.0);
  batch.Apply(g);
  EXPECT_DOUBLE_EQ(DijkstraSssp(g, 0)[3], 12.0);
}

// ---- Cache poisoning regression ----------------------------------------

// An SSSP vector cached before an update must never be served after it:
// the probe carries the current epoch and the stale entry is reclaimed.
TEST(DynamicUpdateTest, CachedSsspNeverServesPreUpdateDistances) {
  Graph g = testing::MakeLineGraph(5, 1.0);
  auto cache = std::make_shared<SourceDistanceCache>(/*capacity=*/8,
                                                     /*num_shards=*/1);
  CachedSsspEngine engine(g, cache);

  std::vector<VertexId> q_members = {4};
  IndexedVertexSet q(g.NumVertices(), q_members);
  engine.Prepare(q);

  // Populate the cache: g_1(0, {4}) = d(0, 4) = 4.
  GphiResult before = engine.Evaluate(0, 1, Aggregate::kMax);
  EXPECT_DOUBLE_EQ(before.distance, 4.0);
  EXPECT_EQ(engine.probe_counters().misses, 1u);

  // Same candidate again: served from the cache.
  engine.Evaluate(0, 1, Aggregate::kMax);
  EXPECT_EQ(engine.probe_counters().hits, 1u);

  UpdateBatch batch;
  batch.SetWeight(2, 3, 10.0);
  batch.Apply(g);

  // Post-update evaluation: the epoch-stale vector must be reclaimed and
  // the answer recomputed on the new weights.
  GphiResult after = engine.Evaluate(0, 1, Aggregate::kMax);
  EXPECT_DOUBLE_EQ(after.distance, 13.0);
  EXPECT_EQ(engine.probe_counters().epoch_evictions, 1u);
  EXPECT_EQ(cache->stats().epoch_evictions, 1u);

  // And the recomputed vector is cached at the new epoch.
  GphiResult again = engine.Evaluate(0, 1, Aggregate::kMax);
  EXPECT_DOUBLE_EQ(again.distance, 13.0);
  EXPECT_EQ(engine.probe_counters().hits, 2u);
  EXPECT_EQ(engine.probe_counters().epoch_evictions, 1u);
}

// ---- Index epoch tagging and the stale-index fallback ------------------

TEST(DynamicUpdateTest, IndexesReportStalenessAfterUpdate) {
  Graph g = testing::MakeRandomNetwork(150, 17);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());
  GTree::Options gtree_options;
  gtree_options.leaf_capacity = 16;
  GTree gtree = GTree::Build(g, gtree_options);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);

  EXPECT_TRUE(labels->FreshFor(g));
  EXPECT_TRUE(gtree.FreshFor(g));
  EXPECT_TRUE(ch.FreshFor(g));

  Rng rng(3);
  UpdateBatch wave = MakeCongestionWave(g, 0.2, 0.5, 2.0, rng);
  ASSERT_GT(wave.size(), 0u);
  wave.Apply(g);

  EXPECT_FALSE(labels->FreshFor(g));
  EXPECT_FALSE(gtree.FreshFor(g));
  EXPECT_FALSE(ch.FreshFor(g));

  GphiResources resources;
  resources.graph = &g;
  resources.labels = &*labels;
  resources.gtree = &gtree;
  resources.ch = &ch;
  EXPECT_FALSE(StaleIndexReason(GphiKind::kPhl, resources).empty());
  EXPECT_FALSE(StaleIndexReason(GphiKind::kGTree, resources).empty());
  EXPECT_FALSE(StaleIndexReason(GphiKind::kCh, resources).empty());
  // Index-free kinds are never stale.
  EXPECT_TRUE(StaleIndexReason(GphiKind::kIne, resources).empty());
  EXPECT_TRUE(StaleIndexReason(GphiKind::kAStar, resources).empty());
}

TEST(DynamicUpdateTest, BatchEngineFallsBackOnStaleIndexAndStaysCorrect) {
  Graph g = testing::MakeRandomNetwork(250, 23);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());

  GphiResources resources;
  resources.graph = &g;
  resources.labels = &*labels;
  BatchOptions options;
  options.num_threads = 2;
  options.gphi_kind = GphiKind::kPhl;
  options.enable_metrics = true;
  BatchQueryEngine engine(resources, options);

  Rng rng(5);
  std::vector<VertexId> p_members = testing::SampleVertices(g, 20, rng);
  std::vector<VertexId> q_members = testing::SampleVertices(g, 8, rng);
  IndexedVertexSet p(g.NumVertices(), p_members);
  IndexedVertexSet q(g.NumVertices(), q_members);
  FannrQuery job;
  job.query = FannQuery{&g, &p, &q, 0.5, Aggregate::kMax};
  job.algorithm = FannAlgorithm::kGd;
  const std::vector<FannrQuery> batch(4, job);

  // Fresh index: no fallback.
  std::vector<FannResult> fresh = engine.Run(batch);
  ASSERT_EQ(fresh.size(), batch.size());
  EXPECT_EQ(engine.last_report().stale_index_fallbacks, 0u);
  for (const auto& trace : engine.last_traces()) {
    EXPECT_FALSE(trace.stale_index_fallback);
  }

  UpdateBatch wave;
  wave.ScaleWeight(g, p_members[0],
                   g.Neighbors(p_members[0]).front().to, 4.0);
  wave.Apply(g);

  // Stale index: every job is answered by the index-free fallback, the
  // traces say so, and the answers match a brute-force oracle on the
  // CURRENT weights (a stale PHL answer would not).
  std::vector<FannResult> after = engine.Run(batch);
  ASSERT_EQ(after.size(), batch.size());
  EXPECT_EQ(engine.last_report().stale_index_fallbacks, batch.size());
  const auto brute = testing::BruteForceFann(g, p_members, q_members, 0.5,
                                             Aggregate::kMax);
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].status, QueryStatus::kOk);
    EXPECT_NEAR(after[i].distance, brute.distance, 1e-9);
    EXPECT_TRUE(engine.last_traces()[i].stale_index_fallback);
    EXPECT_FALSE(engine.last_traces()[i].fallback_reason.empty());
  }
}

// ---- Post-update agreement across thread counts ------------------------

TEST(DynamicUpdateTest, ThreadCountsAgreeBitwiseAfterUpdates) {
  Graph g = testing::MakeRandomNetwork(300, 29);
  Rng rng(7);
  std::vector<VertexId> p_members = testing::SampleVertices(g, 30, rng);
  std::vector<VertexId> q_members = testing::SampleVertices(g, 10, rng);
  IndexedVertexSet p(g.NumVertices(), p_members);
  IndexedVertexSet q(g.NumVertices(), q_members);

  std::vector<FannrQuery> batch;
  for (FannAlgorithm algorithm :
       {FannAlgorithm::kGd, FannAlgorithm::kRList}) {
    FannrQuery job;
    job.query = FannQuery{&g, &p, &q, 0.5, Aggregate::kSum};
    job.algorithm = algorithm;
    batch.push_back(job);
  }

  GphiResources resources;
  resources.graph = &g;
  std::vector<std::unique_ptr<BatchQueryEngine>> engines;
  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions options;
    options.num_threads = threads;
    options.cache_capacity = 64;
    engines.push_back(std::make_unique<BatchQueryEngine>(resources, options));
  }

  for (int wave_idx = 0; wave_idx < 3; ++wave_idx) {
    UpdateBatch wave = MakeCongestionWave(g, 0.25, 0.5, 2.5, rng);
    if (wave.empty()) wave.ScaleWeight(g, 0, g.Neighbors(0).front().to, 1.5);
    wave.Apply(g);

    const auto brute = testing::BruteForceFann(g, p_members, q_members, 0.5,
                                               Aggregate::kSum);
    std::vector<FannResult> reference = engines[0]->Run(batch);
    for (const FannResult& result : reference) {
      EXPECT_EQ(result.status, QueryStatus::kOk);
      EXPECT_NEAR(result.distance, brute.distance, 1e-9)
          << "wave " << wave_idx;
    }
    for (size_t e = 1; e < engines.size(); ++e) {
      std::vector<FannResult> results = engines[e]->Run(batch);
      ASSERT_EQ(results.size(), reference.size());
      for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].best, reference[i].best);
        EXPECT_EQ(results[i].distance, reference[i].distance);  // bitwise
        EXPECT_EQ(results[i].subset, reference[i].subset);
        EXPECT_EQ(results[i].gphi_evaluations,
                  reference[i].gphi_evaluations);
      }
    }
  }
}

// ---- Mid-batch update rejection ----------------------------------------

// Two disconnected components: queries touch only component A while a
// concurrent updater rescales an edge in component B. Workers therefore
// never read a mutating weight (the epoch counter is atomic), keeping
// the test exact under TSan, yet the epoch still advances mid-batch and
// the engine must reject the straddled jobs rather than return results
// computed across the boundary.
TEST(DynamicUpdateTest, MidBatchUpdateRejectsInFlightJobs) {
  GraphBuilder builder;
  const size_t side = 14;  // component A: side x side grid
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      builder.AddVertex(Point{static_cast<double>(c),
                              static_cast<double>(r)});
    }
  }
  auto grid_id = [&](size_t r, size_t c) {
    return static_cast<VertexId>(r * side + c);
  };
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      if (c + 1 < side) builder.AddEdge(grid_id(r, c), grid_id(r, c + 1), 1.0);
      if (r + 1 < side) builder.AddEdge(grid_id(r, c), grid_id(r + 1, c), 1.0);
    }
  }
  // Component B: one isolated edge the updater hammers.
  const VertexId b0 = builder.AddVertex(Point{100.0, 100.0});
  const VertexId b1 = builder.AddVertex(Point{101.0, 100.0});
  builder.AddEdge(b0, b1, 1.0);
  Graph g = builder.Build();

  Rng rng(13);
  std::vector<VertexId> p_members;
  std::vector<VertexId> q_members;
  for (size_t i = 0; i < 24; ++i) {
    p_members.push_back(grid_id(rng.NextIndex(side), rng.NextIndex(side)));
  }
  std::sort(p_members.begin(), p_members.end());
  p_members.erase(std::unique(p_members.begin(), p_members.end()),
                  p_members.end());
  for (size_t i = 0; i < 40; ++i) {
    const VertexId v = grid_id(rng.NextIndex(side), rng.NextIndex(side));
    if (std::find(q_members.begin(), q_members.end(), v) == q_members.end()) {
      q_members.push_back(v);
    }
  }
  IndexedVertexSet p(g.NumVertices(), p_members);
  IndexedVertexSet q(g.NumVertices(), q_members);
  FannrQuery job;
  job.query = FannQuery{&g, &p, &q, 0.5, Aggregate::kSum};
  job.algorithm = FannAlgorithm::kGd;
  const std::vector<FannrQuery> batch(64, job);

  GphiResources resources;
  resources.graph = &g;
  BatchOptions options;
  options.num_threads = 2;
  options.cache_capacity = 64;
  BatchQueryEngine engine(resources, options);
  const auto brute = testing::BruteForceFann(g, p_members, q_members, 0.5,
                                             Aggregate::kSum);

  size_t rejected_total = 0;
  for (int attempt = 0; attempt < 20 && rejected_total == 0; ++attempt) {
    std::atomic<bool> stop{false};
    std::thread updater([&] {
      double weight = 2.0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EdgeWeightUpdate update{b0, b1, weight};
        g.ApplyWeightUpdates({&update, 1});
        weight = weight >= 8.0 ? 2.0 : weight + 1.0;
        std::this_thread::yield();
      }
    });
    const std::vector<FannResult> results = engine.Run(batch);
    stop.store(true, std::memory_order_relaxed);
    updater.join();

    for (const FannResult& result : results) {
      if (result.status == QueryStatus::kRejected) {
        ++rejected_total;
        EXPECT_NE(result.error.find("mid-batch"), std::string::npos)
            << result.error;
        EXPECT_EQ(result.best, kInvalidVertex);
      } else {
        // Jobs that completed under their admission epoch are exact:
        // the update never touched component A's weights.
        EXPECT_EQ(result.status, QueryStatus::kOk);
        EXPECT_NEAR(result.distance, brute.distance, 1e-9);
      }
    }
  }
  // The updater bumps the epoch many times per batch; across 20 attempts
  // at least one job must have straddled an epoch change.
  EXPECT_GT(rejected_total, 0u);

  // With the updater quiesced the same engine accepts everything again.
  const std::vector<FannResult> calm = engine.Run(batch);
  for (const FannResult& result : calm) {
    EXPECT_EQ(result.status, QueryStatus::kOk);
    EXPECT_NEAR(result.distance, brute.distance, 1e-9);
  }
}

}  // namespace
}  // namespace fannr
