// Loopback differential for continuous queries (src/cont/): every
// PUSH_ANSWER a FannServer emits must be bitwise-identical — same
// (distance bits, vertex id, subset, work counters, error text) — to an
// in-process BatchQueryEngine solve of the same standing query at the
// epoch the push is stamped with, across engine thread counts and
// several interleaved UPDATE_WEIGHTS waves, with unchanged answers
// suppressed (delta semantics) unless the subscription opted into
// force_push. Also covered: the client's unsolicited-frame routing (a
// push arriving mid-synchronous-call lands in the push buffer, never
// dropped or misattributed), subscription limits shedding OVERLOADED,
// duplicate-id refusal over a raw socket, and a subscriber killed while
// a push is in flight leaving the server drainable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/update.h"
#include "engine/batch_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

namespace fannr::net {
namespace {

/// Same rendezvous gate as net_server_test.cc: the executor dequeues an
/// item and parks here while held, so tests can order queue states.
class ExecutorGate {
 public:
  void Hold() {
    std::lock_guard<std::mutex> lock(mu_);
    held_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      held_ = false;
    }
    cv_.notify_all();
  }
  void AwaitEntered(size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= count; });
  }
  std::function<void()> AsHook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return !held_; });
    };
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool held_ = false;
  size_t entered_ = 0;
};

constexpr uint64_t kGraphSeed = 4242;
constexpr size_t kGraphVertices = 300;
/// Index of the force_push subscription in BuildSubscriptionJobs order.
/// Deliberately last: its push is the final frame a re-evaluation emits,
/// so receiving it means all of that wave's metric updates are visible.
constexpr size_t kForceIndex = 3;

/// Four standing queries spanning the weight-capable solvers, both
/// aggregates, and the weighted generalization (power-of-two weights so
/// w*d stays exact and ties survive bitwise).
std::vector<WireQuery> BuildSubscriptionJobs(const Graph& graph) {
  struct Shape {
    FannAlgorithm algorithm;
    Aggregate aggregate;
    double phi;
    bool weighted;
  };
  const Shape shapes[] = {
      {FannAlgorithm::kGd, Aggregate::kSum, 0.5, false},
      {FannAlgorithm::kRList, Aggregate::kMax, 0.3, false},
      {FannAlgorithm::kNaive, Aggregate::kSum, 1.0, true},
      {FannAlgorithm::kGd, Aggregate::kMax, 0.5, false},
  };
  std::vector<WireQuery> jobs;
  for (size_t i = 0; i < std::size(shapes); ++i) {
    Rng rng(4600 + i);
    const std::vector<VertexId> p = testing::SampleVertices(graph, 12, rng);
    const std::vector<VertexId> q = testing::SampleVertices(graph, 6, rng);
    WireQuery job;
    job.algorithm = static_cast<uint8_t>(shapes[i].algorithm);
    job.aggregate = static_cast<uint8_t>(shapes[i].aggregate);
    job.phi = shapes[i].phi;
    job.p = std::vector<uint32_t>(p.begin(), p.end());
    job.q = std::vector<uint32_t>(q.begin(), q.end());
    if (shapes[i].weighted) {
      const double pow2[] = {0.5, 2.0, 1.0, 4.0, 0.25, 1.0};
      job.weights.assign(pow2, pow2 + q.size());
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Answers wire jobs in-process as ONE engine Run (mirroring the
/// server's merged re-evaluation batch) through the same lossless
/// ToWire mapping.
std::vector<WireResult> SolveWire(BatchQueryEngine& engine,
                                  const Graph& graph,
                                  std::span<const WireQuery> jobs) {
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> batch;
  for (const WireQuery& wire : jobs) {
    auto p = std::make_unique<IndexedVertexSet>(
        graph.NumVertices(),
        std::vector<VertexId>(wire.p.begin(), wire.p.end()));
    auto q = std::make_unique<IndexedVertexSet>(
        graph.NumVertices(),
        std::vector<VertexId>(wire.q.begin(), wire.q.end()));
    FannrQuery job;
    job.query.graph = &graph;
    job.query.data_points = p.get();
    job.query.query_points = q.get();
    job.query.phi = wire.phi;
    job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
    if (!wire.weights.empty()) job.query.weights = &wire.weights;
    job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
    sets.push_back(std::move(p));
    sets.push_back(std::move(q));
    batch.push_back(job);
  }
  const std::vector<FannResult> results = engine.Run(batch);
  std::vector<WireResult> wire_results;
  wire_results.reserve(results.size());
  for (const FannResult& r : results) wire_results.push_back(ToWire(r));
  return wire_results;
}

uint64_t DistanceBits(double distance) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(distance));
  std::memcpy(&bits, &distance, sizeof(bits));
  return bits;
}

void ExpectBitwiseEqual(const WireResult& server, const WireResult& reference,
                        const std::string& label) {
  EXPECT_EQ(server.status, reference.status) << label;
  EXPECT_EQ(server.best, reference.best) << label;
  EXPECT_EQ(DistanceBits(server.distance), DistanceBits(reference.distance))
      << label << ": server distance " << server.distance << " vs reference "
      << reference.distance;
  EXPECT_EQ(server.gphi_evaluations, reference.gphi_evaluations) << label;
  EXPECT_EQ(server.subset, reference.subset) << label;
  EXPECT_EQ(server.error, reference.error) << label;
}

UpdateWeightsRequest ToRequest(const dynamic::UpdateBatch& wave) {
  UpdateWeightsRequest request;
  for (const EdgeWeightUpdate& u : wave.updates()) {
    request.entries.push_back({u.u, u.v, u.new_weight});
  }
  return request;
}

TEST(NetSubscription, PushesBitwiseEqualInProcessAcrossThreadsAndWaves) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("engine threads = " + std::to_string(threads));

    // Graph is move-only: the server's (mutable) copy and the reference
    // copy are rebuilt from the same seed rather than shared.
    Graph ref_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
    Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
    const std::vector<WireQuery> jobs = BuildSubscriptionJobs(ref_graph);

    GphiResources ref_resources;
    ref_resources.graph = &ref_graph;
    BatchOptions ref_options;
    ref_options.num_threads = threads;
    BatchQueryEngine reference(ref_resources, ref_options);

    GphiResources srv_resources;
    srv_resources.graph = &srv_graph;
    ServerConfig config;
    config.engine_options.num_threads = threads;
    FannServer server(&srv_graph, srv_resources, std::move(config));
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    FannClient subscriber;
    ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()))
        << subscriber.last_error();

    // --- register: each initial answer solved at epoch 0, bitwise
    // equal to a lone in-process solve (the server runs initials as
    // single-job batches, so the reference does too) ------------------
    std::vector<uint64_t> sub_ids(jobs.size(), 0);
    std::vector<WireResult> last(jobs.size());
    std::vector<uint64_t> pushes_per_sub(jobs.size(), 0);
    for (size_t i = 0; i < jobs.size(); ++i) {
      SubscribeResponse response;
      ASSERT_TRUE(subscriber.Subscribe(jobs[i], /*force_push=*/
                                       i == kForceIndex, &sub_ids[i],
                                       response))
          << subscriber.last_error();
      EXPECT_EQ(response.graph_epoch, 0u);
      ASSERT_EQ(response.result.status,
                static_cast<uint8_t>(QueryStatus::kOk));
      const std::vector<WireResult> initial =
          SolveWire(reference, ref_graph, std::span(&jobs[i], 1));
      ExpectBitwiseEqual(response.result, initial[0],
                         "initial sub " + std::to_string(i));
      last[i] = response.result;
    }
    EXPECT_EQ(server.metrics().Snapshot().gauge("server.subscriptions.active"),
              static_cast<double>(jobs.size()));

    FannClient updater;
    ASSERT_TRUE(updater.Connect("127.0.0.1", server.port()))
        << updater.last_error();

    GraphEpoch epoch = 0;
    uint64_t expected_sent = 0;
    uint64_t expected_suppressed = 0;
    std::vector<WireResult> current;  // reference answers at `epoch`

    // Applies one wave to both sides, predicts the push set with the
    // server's own delta rule (force_push || !SameVisibleAnswer), then
    // collects exactly that many pushes and compares them bitwise.
    // Returns how many pushes the wave produced.
    const auto run_wave = [&](const UpdateWeightsRequest& request,
                              const std::string& label) -> size_t {
      UpdateWeightsResponse ack;
      EXPECT_TRUE(updater.UpdateWeights(request, ack))
          << updater.last_error();
      EXPECT_EQ(ack.status, 0);
      ++epoch;
      EXPECT_EQ(ack.new_epoch, epoch);

      dynamic::UpdateBatch batch;
      for (const UpdateWeightsRequest::Entry& e : request.entries) {
        batch.SetWeight(e.u, e.v, e.weight);
      }
      const dynamic::ApplyResult applied = batch.Apply(ref_graph);
      EXPECT_EQ(applied.new_epoch, epoch);
      current = SolveWire(reference, ref_graph, jobs);

      struct ExpectedPush {
        size_t sub;
        WireResult result;
      };
      std::vector<ExpectedPush> want;
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (i == kForceIndex || !SameVisibleAnswer(current[i], last[i])) {
          want.push_back({i, current[i]});
          last[i] = current[i];
          ++pushes_per_sub[i];
          ++expected_sent;
        } else {
          ++expected_suppressed;
        }
      }
      // Pushes arrive in registration order (one merged re-evaluation,
      // FIFO outbound queue).
      for (const ExpectedPush& expected : want) {
        ReceivedPush push;
        if (!subscriber.WaitPush(push)) {
          ADD_FAILURE() << label
                        << ": WaitPush failed: " << subscriber.last_error();
          return want.size();
        }
        EXPECT_EQ(push.subscription_id, sub_ids[expected.sub]) << label;
        EXPECT_EQ(push.answer.graph_epoch, epoch) << label;
        ExpectBitwiseEqual(push.answer.result, expected.result,
                           label + " sub " + std::to_string(expected.sub));
      }
      return want.size();
    };

    // Wave 1: congestion reweighting — answers genuinely move.
    Rng wave_rng(99);
    const dynamic::UpdateBatch wave1 =
        dynamic::MakeCongestionWave(ref_graph, 0.3, 0.5, 3.0, wave_rng);
    ASSERT_FALSE(wave1.empty());
    const UpdateWeightsRequest wave1_request = ToRequest(wave1);
    const size_t wave1_pushes = run_wave(wave1_request, "wave 1");
    EXPECT_GE(wave1_pushes, 2u) << "wave 1 changed no standing answer — "
                                   "pick a livelier wave seed";

    // Wave 2: the SAME entries re-applied. Weights are idempotent but
    // the epoch still advances, so every subscription re-solves to its
    // previous answer: pure suppression, except the force_push one.
    const size_t wave2_pushes = run_wave(wave1_request, "wave 2 (no-op)");
    EXPECT_EQ(wave2_pushes, 1u);  // only the force_push subscription

    // Wave 3: fresh congestion on the updated weights.
    Rng wave3_rng(137);
    const dynamic::UpdateBatch wave3 =
        dynamic::MakeCongestionWave(ref_graph, 0.3, 0.5, 3.0, wave3_rng);
    ASSERT_FALSE(wave3.empty());
    run_wave(ToRequest(wave3), "wave 3");

    // Accounting: the force_push subscription pushed last in every
    // wave, so once its wave-3 push is in hand all counters are final.
    const obs::MetricsSnapshot snapshot = server.metrics().Snapshot();
    EXPECT_EQ(snapshot.counter("server.pushes.sent"), expected_sent);
    EXPECT_EQ(snapshot.counter("server.pushes.suppressed"),
              expected_suppressed);
    EXPECT_EQ(snapshot.counter("server.pushes.dropped_backpressure"), 0u);
    EXPECT_EQ(subscriber.pushes_dropped(), 0u);

    // Every subscription's current answer — pushed or suppressed — must
    // match a one-shot QUERY at the final epoch, bitwise.
    for (size_t i = 0; i < jobs.size(); ++i) {
      QueryResponse one_shot;
      ASSERT_TRUE(updater.Query(jobs[i], one_shot)) << updater.last_error();
      EXPECT_EQ(one_shot.graph_epoch, epoch);
      ExpectBitwiseEqual(one_shot.result, current[i],
                         "one-shot vs reference, sub " + std::to_string(i));
      EXPECT_TRUE(SameVisibleAnswer(one_shot.result, last[i]))
          << "suppressed answer diverged from live answer, sub " << i;
    }

    // Unsubscribe reports per-subscription delivery counts; unknown and
    // already-removed ids answer status 1.
    for (size_t i = 0; i < jobs.size(); ++i) {
      UnsubscribeResponse response;
      ASSERT_TRUE(subscriber.Unsubscribe(sub_ids[i], response))
          << subscriber.last_error();
      EXPECT_EQ(response.status, 0);
      EXPECT_EQ(response.pushes_sent, pushes_per_sub[i])
          << "sub " << i << " push accounting";
    }
    UnsubscribeResponse missing;
    ASSERT_TRUE(subscriber.Unsubscribe(0xDEADBEEF, missing));
    EXPECT_EQ(missing.status, 1);
    ASSERT_TRUE(subscriber.Unsubscribe(sub_ids[0], missing));
    EXPECT_EQ(missing.status, 1);
    EXPECT_EQ(server.metrics().Snapshot().gauge("server.subscriptions.active"),
              0.0);

    server.RequestShutdown();
    const DrainStats stats = server.Wait();
    EXPECT_TRUE(stats.within_deadline);
  }
}

TEST(NetSubscription, PushArrivingMidSynchronousCallIsBufferedNotDropped) {
  // Regression for the client's unsolicited-frame routing: a
  // PUSH_ANSWER sitting in the socket ahead of a synchronous call's
  // response must land in the push buffer — not be dropped, and not be
  // misattributed as the response.
  Graph ref_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  const std::vector<WireQuery> jobs = BuildSubscriptionJobs(ref_graph);

  GphiResources ref_resources;
  ref_resources.graph = &ref_graph;
  BatchQueryEngine reference(ref_resources, BatchOptions{});

  GphiResources srv_resources;
  srv_resources.graph = &srv_graph;
  FannServer server(&srv_graph, srv_resources, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  FannClient subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()))
      << subscriber.last_error();
  uint64_t sub_id = 0;
  SubscribeResponse registered;
  ASSERT_TRUE(subscriber.Subscribe(jobs[0], /*force_push=*/true, &sub_id,
                                   registered))
      << subscriber.last_error();
  ASSERT_EQ(registered.result.status, static_cast<uint8_t>(QueryStatus::kOk));

  // Another connection moves the graph; wait until the push is enqueued
  // so it reaches the subscriber's socket ahead of anything it sends.
  Rng wave_rng(99);
  const dynamic::UpdateBatch wave =
      dynamic::MakeCongestionWave(ref_graph, 0.3, 0.5, 3.0, wave_rng);
  ASSERT_FALSE(wave.empty());
  FannClient updater;
  ASSERT_TRUE(updater.Connect("127.0.0.1", server.port()))
      << updater.last_error();
  UpdateWeightsResponse ack;
  ASSERT_TRUE(updater.UpdateWeights(ToRequest(wave), ack))
      << updater.last_error();
  ASSERT_EQ(ack.status, 0);
  for (int spin = 0; spin < 1000; ++spin) {
    if (server.metrics().Snapshot().counter("server.pushes.sent") >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.metrics().Snapshot().counter("server.pushes.sent"), 1u);

  // The synchronous call now reads the push frame first. Before the
  // routing fix the client dropped any frame whose id didn't match the
  // outstanding request; now it must buffer it and still answer.
  const dynamic::ApplyResult applied = wave.Apply(ref_graph);
  ASSERT_EQ(applied.new_epoch, 1u);
  QueryResponse one_shot;
  ASSERT_TRUE(subscriber.Query(jobs[1], one_shot)) << subscriber.last_error();
  EXPECT_EQ(one_shot.graph_epoch, 1u);
  const std::vector<WireResult> expected =
      SolveWire(reference, ref_graph, std::span(&jobs[1], 1));
  ExpectBitwiseEqual(one_shot.result, expected[0], "query answered past push");

  ASSERT_EQ(subscriber.buffered_pushes(), 1u);
  ReceivedPush push;
  ASSERT_TRUE(subscriber.TakePush(push));
  EXPECT_EQ(push.subscription_id, sub_id);
  EXPECT_EQ(push.answer.graph_epoch, 1u);
  const std::vector<WireResult> pushed =
      SolveWire(reference, ref_graph, std::span(&jobs[0], 1));
  ExpectBitwiseEqual(push.answer.result, pushed[0], "buffered push");
  EXPECT_EQ(subscriber.pushes_dropped(), 0u);

  server.RequestShutdown();
  const DrainStats stats = server.Wait();
  EXPECT_TRUE(stats.within_deadline);
}

TEST(NetSubscription, SubscriberKilledMidPushLeavesServerDrainable) {
  // The subscriber dies while its re-evaluation push is being prepared:
  // the update is dequeued and held at the gate, the subscriber's
  // socket closes underneath it, then the push path runs against the
  // dying connection. The server must shed the orphan subscription and
  // still drain within its deadline.
  Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  const std::vector<WireQuery> jobs = BuildSubscriptionJobs(srv_graph);

  ExecutorGate gate;
  GphiResources srv_resources;
  srv_resources.graph = &srv_graph;
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  FannServer server(&srv_graph, srv_resources, std::move(config));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto subscriber = std::make_unique<FannClient>();
  ASSERT_TRUE(subscriber->Connect("127.0.0.1", server.port()))
      << subscriber->last_error();
  uint64_t sub_id = 0;
  SubscribeResponse registered;
  ASSERT_TRUE(subscriber->Subscribe(jobs[0], /*force_push=*/true, &sub_id,
                                    registered))
      << subscriber->last_error();
  ASSERT_EQ(registered.result.status, static_cast<uint8_t>(QueryStatus::kOk));

  // Hold the update at the gate, kill the subscriber, then let the
  // update (and the push attempt) proceed against the closed socket.
  Rng wave_rng(99);
  const dynamic::UpdateBatch wave =
      dynamic::MakeCongestionWave(srv_graph, 0.3, 0.5, 3.0, wave_rng);
  ASSERT_FALSE(wave.empty());
  const UpdateWeightsRequest request = ToRequest(wave);
  gate.Hold();
  FannClient updater;
  ASSERT_TRUE(updater.Connect("127.0.0.1", server.port()))
      << updater.last_error();
  std::thread update_thread([&] {
    UpdateWeightsResponse ack;
    ASSERT_TRUE(updater.UpdateWeights(request, ack)) << updater.last_error();
    EXPECT_EQ(ack.status, 0);
  });
  gate.AwaitEntered(2);  // entry 1 was the subscribe; the update is held
  subscriber->Close();
  subscriber.reset();
  gate.Release();
  update_thread.join();

  // The next epoch bump reaps the dead owner (the IO loop may need a
  // moment to observe the close first); the gauge must reach zero.
  bool reaped = false;
  for (int attempt = 0; attempt < 100 && !reaped; ++attempt) {
    UpdateWeightsResponse ack;
    ASSERT_TRUE(updater.UpdateWeights(request, ack)) << updater.last_error();
    ASSERT_EQ(ack.status, 0);
    reaped = server.metrics()
                 .Snapshot()
                 .gauge("server.subscriptions.active") == 0.0;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(reaped) << "orphan subscription was never reaped";

  server.RequestShutdown();
  const DrainStats stats = server.Wait();
  EXPECT_TRUE(stats.within_deadline);
}

TEST(NetSubscription, LimitsShedOverloadedAndFreeOnUnsubscribe) {
  Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  const std::vector<WireQuery> jobs = BuildSubscriptionJobs(srv_graph);

  GphiResources srv_resources;
  srv_resources.graph = &srv_graph;
  ServerConfig config;
  config.max_subscriptions_per_connection = 2;
  config.max_subscriptions_total = 3;
  FannServer server(&srv_graph, srv_resources, std::move(config));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  FannClient a;
  FannClient b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port())) << a.last_error();
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port())) << b.last_error();

  // A fills its per-connection quota; the third is shed OVERLOADED.
  uint64_t a_ids[2] = {0, 0};
  for (size_t i = 0; i < 2; ++i) {
    SubscribeResponse response;
    ASSERT_TRUE(a.Subscribe(jobs[i], false, &a_ids[i], response))
        << a.last_error();
    ASSERT_EQ(response.result.status, static_cast<uint8_t>(QueryStatus::kOk));
  }
  uint64_t rejected_id = 0;
  SubscribeResponse rejected;
  EXPECT_FALSE(a.Subscribe(jobs[2], false, &rejected_id, rejected));
  EXPECT_EQ(a.last_error_code(), ErrorCode::kOverloaded) << a.last_error();

  // B takes the last global slot; its second trips the global limit.
  uint64_t b_id = 0;
  SubscribeResponse b_response;
  ASSERT_TRUE(b.Subscribe(jobs[2], false, &b_id, b_response))
      << b.last_error();
  ASSERT_EQ(b_response.result.status, static_cast<uint8_t>(QueryStatus::kOk));
  uint64_t b_rejected_id = 0;
  EXPECT_FALSE(b.Subscribe(jobs[3], false, &b_rejected_id, b_response));
  EXPECT_EQ(b.last_error_code(), ErrorCode::kOverloaded) << b.last_error();

  // Shedding is retryable: an unsubscribe frees the slot for B.
  UnsubscribeResponse removed;
  ASSERT_TRUE(a.Unsubscribe(a_ids[0], removed)) << a.last_error();
  EXPECT_EQ(removed.status, 0);
  uint64_t b_retry_id = 0;
  ASSERT_TRUE(b.Subscribe(jobs[3], false, &b_retry_id, b_response))
      << b.last_error();
  EXPECT_EQ(b_response.result.status, static_cast<uint8_t>(QueryStatus::kOk));

  EXPECT_EQ(server.metrics().Snapshot().gauge("server.subscriptions.active"),
            3.0);

  server.RequestShutdown();
  const DrainStats stats = server.Wait();
  EXPECT_TRUE(stats.within_deadline);
}

/// Reads one whole frame off a raw socket (blocking).
bool ReadRawFrame(const Socket& sock, FrameHeader& header,
                  std::vector<uint8_t>& payload) {
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!sock.ReadFull(header_bytes, sizeof(header_bytes))) return false;
  DecodeFrameHeader(header_bytes, header);
  payload.resize(header.payload_length);
  if (header.payload_length > 0 &&
      !sock.ReadFull(payload.data(), payload.size())) {
    return false;
  }
  return true;
}

TEST(NetSubscription, DuplicateSubscriptionIdRefusedOverRawSocket) {
  // The client auto-assigns unique ids, so reusing one takes a raw
  // socket: the same SUBSCRIBE frame twice. The first registers; the
  // second must be refused without disturbing the first.
  Graph srv_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  const std::vector<WireQuery> jobs = BuildSubscriptionJobs(srv_graph);

  GphiResources srv_resources;
  srv_resources.graph = &srv_graph;
  FannServer server(&srv_graph, srv_resources, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string connect_error;
  Socket sock = TcpConnect("127.0.0.1", server.port(), &connect_error);
  ASSERT_TRUE(sock.valid()) << connect_error;

  SubscribeRequest request;
  request.query = jobs[0];
  request.force_push = 0;
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kSubscribe), 7,
                  EncodeSubscribeRequest(request));
  ASSERT_TRUE(sock.WriteFull(frame.data(), frame.size()));
  ASSERT_TRUE(sock.WriteFull(frame.data(), frame.size()));

  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadRawFrame(sock, header, payload));
  ASSERT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kSubscribeResult));
  EXPECT_EQ(header.request_id, 7u);
  SubscribeResponse first;
  ASSERT_TRUE(DecodeSubscribeResponse(payload, first));
  EXPECT_EQ(first.result.status, static_cast<uint8_t>(QueryStatus::kOk));

  ASSERT_TRUE(ReadRawFrame(sock, header, payload));
  ASSERT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kError));
  EXPECT_EQ(header.request_id, 7u);
  ErrorResponse refusal;
  ASSERT_TRUE(DecodeErrorResponse(payload, refusal));
  EXPECT_EQ(refusal.code, ErrorCode::kMalformedPayload);
  EXPECT_NE(refusal.message.find("already live"), std::string::npos)
      << refusal.message;

  // The original subscription survived the refusal.
  EXPECT_EQ(server.metrics().Snapshot().gauge("server.subscriptions.active"),
            1.0);

  server.RequestShutdown();
  const DrainStats stats = server.Wait();
  EXPECT_TRUE(stats.within_deadline);
}

}  // namespace
}  // namespace fannr::net
