// Remaining edge cases across the public API surface.

#include <gtest/gtest.h>

#include "fann/fannr.h"
#include "fann_world.h"
#include "sp/dijkstra.h"
#include "sp/gtree/gtree.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(EdgeCaseTest, SingleQueryPointEveryEngine) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  IndexedVertexSet p(graph.NumVertices(), {3, 7, 11});
  IndexedVertexSet q(graph.NumVertices(), {250});
  FannQuery query{&graph, &p, &q, 1.0, Aggregate::kSum};
  const Weight expected =
      testing::BruteForceFann(graph, {3, 7, 11}, {250}, 1.0,
                              Aggregate::kSum)
          .distance;
  for (GphiKind kind : kAllGphiKinds) {
    auto engine = MakeGphiEngine(kind, world.Resources());
    EXPECT_NEAR(SolveGd(query, *engine).distance, expected, 1e-6)
        << GphiKindName(kind);
  }
}

TEST(EdgeCaseTest, SingleDataPoint) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Rng rng(1001);
  IndexedVertexSet p(graph.NumVertices(), {42});
  IndexedVertexSet q(graph.NumVertices(),
                     testing::SampleVertices(graph, 10, rng));
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kMax};
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  FannResult gd = SolveGd(query, *engine);
  FannResult em = SolveExactMax(query);
  FannResult rl = SolveRList(query, *engine);
  EXPECT_EQ(gd.best, 42u);
  EXPECT_NEAR(em.distance, gd.distance, 1e-9);
  EXPECT_NEAR(rl.distance, gd.distance, 1e-9);
}

TEST(EdgeCaseTest, PhiTinyAlwaysMeansOne) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Rng rng(1002);
  std::vector<VertexId> p_vec = testing::SampleVertices(graph, 15, rng);
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 12, rng);
  IndexedVertexSet p(graph.NumVertices(), p_vec);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  // phi small enough that k = 1: the answer is the closest (p, q) pair.
  FannQuery query{&graph, &p, &q, 0.01, Aggregate::kMax};
  EXPECT_EQ(query.FlexSubsetSize(), 1u);
  auto engine = MakeGphiEngine(GphiKind::kPhl, world.Resources());
  FannResult r = SolveRList(query, *engine);
  Weight best_pair = kInfWeight;
  DijkstraSearch check(graph);
  for (VertexId pp : p_vec) {
    for (VertexId qq : q_vec) {
      best_pair = std::min(best_pair, check.Distance(pp, qq));
    }
  }
  EXPECT_NEAR(r.distance, best_pair, 1e-9);
}

TEST(EdgeCaseTest, MaxAndSumCoincideWhenKIsOne) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Rng rng(1003);
  IndexedVertexSet p(graph.NumVertices(),
                     testing::SampleVertices(graph, 20, rng));
  IndexedVertexSet q(graph.NumVertices(),
                     testing::SampleVertices(graph, 8, rng));
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  FannQuery max_query{&graph, &p, &q, 0.1, Aggregate::kMax};
  FannQuery sum_query{&graph, &p, &q, 0.1, Aggregate::kSum};
  EXPECT_NEAR(SolveGd(max_query, *engine).distance,
              SolveGd(sum_query, *engine).distance, 1e-9);
}

TEST(EdgeCaseTest, GTreeHandlesPWithinOneLeaf) {
  // All data points inside a single G-tree leaf: occurrence pruning must
  // still find them from far-away sources.
  Graph graph = testing::MakeRandomNetwork(400, 1004);
  GTree::Options options;
  options.leaf_capacity = 32;
  GTree tree = GTree::Build(graph, options);
  // Pick a leaf and use its vertices as Q.
  const GTree::Node* leaf = nullptr;
  for (size_t i = 0; i < tree.NumTreeNodes(); ++i) {
    const auto& nd = tree.node(static_cast<int32_t>(i));
    if (nd.is_leaf && nd.vertices.size() >= 8) {
      leaf = &nd;
      break;
    }
  }
  ASSERT_NE(leaf, nullptr);
  std::vector<VertexId> q_vec(leaf->vertices.begin(),
                              leaf->vertices.begin() + 8);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  Rng rng(1005);
  IndexedVertexSet p(graph.NumVertices(),
                     testing::SampleVertices(graph, 25, rng));
  GphiResources resources;
  resources.graph = &graph;
  resources.gtree = &tree;
  auto gtree_engine = MakeGphiEngine(GphiKind::kGTree, resources);
  auto ine_engine = MakeGphiEngine(GphiKind::kIne, resources);
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kSum};
  EXPECT_NEAR(SolveGd(query, *gtree_engine).distance,
              SolveGd(query, *ine_engine).distance, 1e-6);
}

TEST(EdgeCaseTest, KFannOnDuplicateDistances) {
  // Symmetric graph: many candidates tie; top-k must stay distinct and
  // sorted.
  Graph g = testing::MakeLineGraph(21, 1.0);
  IndexedVertexSet p(g.NumVertices(), {0, 4, 8, 12, 16, 20});
  IndexedVertexSet q(g.NumVertices(), {10});
  FannQuery query{&g, &p, &q, 1.0, Aggregate::kMax};
  GphiResources resources;
  resources.graph = &g;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  auto top = SolveKGd(query, 4, *engine);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_DOUBLE_EQ(top[0].distance, 2.0);   // 8 or 12
  EXPECT_DOUBLE_EQ(top[1].distance, 2.0);
  EXPECT_DOUBLE_EQ(top[2].distance, 6.0);   // 4 or 16
  EXPECT_DOUBLE_EQ(top[3].distance, 6.0);
  auto em = SolveKExactMax(query, 4);
  ASSERT_EQ(em.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(em[i].distance, top[i].distance);
  }
}

TEST(EdgeCaseTest, ValidateQueryRejectsBadInput) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  IndexedVertexSet p(graph.NumVertices(), {1});
  IndexedVertexSet q(graph.NumVertices(), {2});
  IndexedVertexSet empty(graph.NumVertices(), {});
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  {
    FannQuery query{&graph, &empty, &q, 0.5, Aggregate::kSum};
    EXPECT_DEATH(SolveGd(query, *engine), "");
  }
  {
    FannQuery query{&graph, &p, &q, 0.0, Aggregate::kSum};
    EXPECT_DEATH(SolveGd(query, *engine), "");
  }
  {
    FannQuery query{&graph, &p, &q, 1.5, Aggregate::kSum};
    EXPECT_DEATH(SolveGd(query, *engine), "");
  }
  {
    // Empty query set.
    FannQuery query{&graph, &p, &empty, 0.5, Aggregate::kSum};
    EXPECT_DEATH(SolveGd(query, *engine), "");
  }
  {
    // Null graph.
    FannQuery query{nullptr, &p, &q, 0.5, Aggregate::kSum};
    EXPECT_DEATH(SolveGd(query, *engine), "");
  }
  {
    // Negative phi.
    FannQuery query{&graph, &p, &q, -0.25, Aggregate::kSum};
    EXPECT_DEATH(SolveGd(query, *engine), "");
  }
  {
    // k_results = 0 is rejected by every k-FANN solver.
    FannQuery query{&graph, &p, &q, 0.5, Aggregate::kSum};
    EXPECT_DEATH(SolveKGd(query, 0, *engine), "");
  }
}

}  // namespace
}  // namespace fannr
