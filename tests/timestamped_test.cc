#include "common/timestamped.h"

#include <gtest/gtest.h>

namespace fannr {
namespace {

TEST(TimestampedArrayTest, DefaultsAndSet) {
  TimestampedArray<double> arr(5, -1.0);
  EXPECT_DOUBLE_EQ(arr.Get(0), -1.0);
  EXPECT_FALSE(arr.IsSet(0));
  arr.Set(2, 3.5);
  EXPECT_DOUBLE_EQ(arr.Get(2), 3.5);
  EXPECT_TRUE(arr.IsSet(2));
  EXPECT_DOUBLE_EQ(arr.Get(3), -1.0);
}

TEST(TimestampedArrayTest, NewEpochResetsLogically) {
  TimestampedArray<int> arr(3, 0);
  arr.Set(0, 7);
  arr.Set(1, 8);
  arr.NewEpoch();
  EXPECT_EQ(arr.Get(0), 0);
  EXPECT_EQ(arr.Get(1), 0);
  EXPECT_FALSE(arr.IsSet(0));
  arr.Set(0, 9);
  EXPECT_EQ(arr.Get(0), 9);
}

TEST(TimestampedArrayTest, ManyEpochsStayCorrect) {
  TimestampedArray<int> arr(2, -5);
  for (int epoch = 0; epoch < 1000; ++epoch) {
    EXPECT_EQ(arr.Get(0), -5);
    arr.Set(0, epoch);
    EXPECT_EQ(arr.Get(0), epoch);
    arr.NewEpoch();
  }
}

TEST(TimestampedArrayTest, SizeAccessor) {
  TimestampedArray<char> arr(17, 'x');
  EXPECT_EQ(arr.size(), 17u);
}

}  // namespace
}  // namespace fannr
