// FlatHeap (common/flat_heap.h): pop order vs a std::priority_queue
// reference on seeded random push/pop interleavings, the lazy-delete +
// settled-check idiom the search kernels rely on, and the allocation
// contract (clear() keeps capacity; warm reuse performs zero growths).

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_heap.h"
#include "common/rng.h"
#include "engine/batch_engine.h"
#include "fann_world.h"
#include "test_util.h"

namespace fannr {
namespace {

using Entry = std::pair<double, uint32_t>;

// With a strict total order (lexicographic pair compare) the pop
// sequence is fully determined by the multiset of live entries, so the
// flat heap and std::priority_queue must agree element-for-element on
// any interleaving of pushes and pops.
TEST(FlatHeapTest, MatchesPriorityQueueOnRandomInterleavings) {
  for (uint64_t seed : {1u, 7u, 0xF1A7u}) {
    Rng rng(seed);
    FlatHeap<Entry> heap;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ref;
    for (int step = 0; step < 5000; ++step) {
      const bool push = ref.empty() || rng.NextBounded(3) != 0;
      if (push) {
        // Small key range on purpose: plenty of exact duplicates, which
        // the total order must still sequence identically.
        const Entry e{static_cast<double>(rng.NextBounded(64)),
                      static_cast<uint32_t>(rng.NextBounded(16))};
        heap.push(e);
        ref.push(e);
      } else {
        ASSERT_FALSE(heap.empty());
        ASSERT_EQ(heap.top(), ref.top()) << "seed " << seed << " step " << step;
        heap.pop();
        ref.pop();
      }
    }
    while (!ref.empty()) {
      ASSERT_FALSE(heap.empty());
      ASSERT_EQ(heap.top(), ref.top()) << "seed " << seed << " drain";
      heap.pop();
      ref.pop();
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(FlatHeapTest, PopOrderNondecreasingUnderPartialOrderComparator) {
  // Key-only comparator (the A*/INE shape): tie order is unspecified,
  // but pops must still be nondecreasing in the key and return every
  // entry exactly once.
  struct KeyLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.first < b.first;
    }
  };
  Rng rng(0xD00Du);
  FlatHeap<Entry, KeyLess> heap;
  std::vector<int> pushed_per_key(8, 0);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(8));
    ++pushed_per_key[key];
    heap.push({static_cast<double>(key), static_cast<uint32_t>(rng.NextU64())});
  }
  double last = -1.0;
  std::vector<int> popped_per_key(8, 0);
  while (!heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    ASSERT_GE(e.first, last);
    last = e.first;
    ++popped_per_key[static_cast<size_t>(e.first)];
  }
  EXPECT_EQ(popped_per_key, pushed_per_key);
}

TEST(FlatHeapTest, LazyDeleteSettledCheckYieldsEachVertexOnceAtBestKey) {
  // The decrease-key-free idiom from the header comment: push improved
  // duplicates, skip pops whose key is worse than the recorded best.
  // Every vertex must settle exactly once, at its minimum pushed key.
  constexpr size_t kVertices = 50;
  Rng rng(0xBEEFu);
  FlatHeap<Entry> heap;
  std::vector<double> best(kVertices, 1e300);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(kVertices));
    const double key = static_cast<double>(rng.NextBounded(1000));
    if (key < best[v]) {
      best[v] = key;
      heap.push({key, v});
    }
  }
  std::vector<int> settled(kVertices, 0);
  while (!heap.empty()) {
    const auto [key, v] = heap.top();
    heap.pop();
    if (key > best[v]) continue;  // stale duplicate
    ++settled[v];
    EXPECT_EQ(key, best[v]);
  }
  for (size_t v = 0; v < kVertices; ++v) {
    EXPECT_EQ(settled[v], best[v] < 1e300 ? 1 : 0) << "vertex " << v;
  }
}

TEST(FlatHeapTest, ClearKeepsCapacityAndWarmReuseNeverGrows) {
  FlatHeap<Entry> heap;
  Rng rng(42u);
  auto fill_and_drain = [&] {
    for (int i = 0; i < 512; ++i) {
      heap.push({static_cast<double>(rng.NextBounded(97)), 0});
    }
    double last = -1.0;
    while (!heap.empty()) {
      EXPECT_GE(heap.top().first, last);
      last = heap.top().first;
      heap.pop();
    }
  };
  fill_and_drain();  // warmup: capacity grows here
  const size_t warm_capacity = heap.capacity();
  ASSERT_GE(warm_capacity, 512u);
  const uint64_t grows_before = FlatHeapAllocStats().grows;
  for (int round = 0; round < 10; ++round) {
    heap.clear();
    EXPECT_EQ(heap.capacity(), warm_capacity);
    fill_and_drain();
  }
  EXPECT_EQ(FlatHeapAllocStats().grows, grows_before)
      << "warm rounds must be allocation-free";
}

TEST(FlatHeapTest, ReserveGrowsOnceAndCountsOnce) {
  FlatHeap<Entry> heap;
  const uint64_t before = FlatHeapAllocStats().grows;
  heap.reserve(1024);
  EXPECT_GE(heap.capacity(), 1024u);
  EXPECT_EQ(FlatHeapAllocStats().grows, before + 1);
  heap.reserve(100);  // no-op: already large enough
  EXPECT_EQ(FlatHeapAllocStats().grows, before + 1);
  for (int i = 0; i < 1024; ++i) {
    heap.push({static_cast<double>(i), 0});
  }
  EXPECT_EQ(FlatHeapAllocStats().grows, before + 1)
      << "pushes within reserved capacity must not grow";
}

// --- Solve-phase allocation determinism ----------------------------------
// BatchOptions::prewarm_scratch (default on) grows every worker's
// Dijkstra frontier to its worst case — NumArcs() + 1 entries, the
// lazy-deletion push bound — at engine construction. The solve phase
// therefore performs EXACTLY ZERO heap growths under every (threads,
// schedule) configuration, which makes the heap_grows counter a
// deterministic per-configuration quantity instead of a race-dependent
// one. bench/throughput.cc splits the counter by phase and
// scripts/check_throughput_json.py asserts the solve half stays 0; this
// test pins the same invariant at unit scope.
TEST(FlatHeapTest, BatchSolvePhasePerformsZeroGrowsForEveryConfig) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();

  Rng rng(0x9E47u);
  const IndexedVertexSet p(graph.NumVertices(),
                           testing::SampleVertices(graph, 24, rng));
  const IndexedVertexSet q(graph.NumVertices(),
                           testing::SampleVertices(graph, 8, rng));
  std::vector<FannrQuery> jobs;
  for (int i = 0; i < 16; ++i) {
    FannrQuery job;
    job.query = FannQuery{&graph, &p, &q, 0.5, Aggregate::kSum};
    job.algorithm = FannAlgorithm::kGd;
    jobs.push_back(job);
  }

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (const BatchSchedule schedule :
         {BatchSchedule::kDynamic, BatchSchedule::kLocality}) {
      for (const bool cached : {false, true}) {
        BatchOptions options;
        options.num_threads = threads;
        options.schedule = schedule;
        options.share_distance_cache = cached;
        BatchQueryEngine engine(world.Resources(), options);
        const uint64_t before = FlatHeapAllocStats().grows;
        engine.Run(jobs);
        EXPECT_EQ(FlatHeapAllocStats().grows, before)
            << "threads=" << threads << " cached=" << cached << " schedule="
            << (schedule == BatchSchedule::kDynamic ? "dynamic" : "locality");
      }
    }
  }
}

TEST(FlatHeapTest, SingleElementAndSelfMoveSafety) {
  FlatHeap<Entry> heap;
  heap.push({1.0, 7});
  EXPECT_EQ(heap.top(), (Entry{1.0, 7}));
  heap.pop();  // pop of the last element moves back onto itself — UB trap
  EXPECT_TRUE(heap.empty());
  heap.push({2.0, 1});
  heap.push({1.0, 2});
  EXPECT_EQ(heap.top(), (Entry{1.0, 2}));
  heap.pop();
  EXPECT_EQ(heap.top(), (Entry{2.0, 1}));
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

}  // namespace
}  // namespace fannr
