// Observability-layer behavior of BatchQueryEngine: per-job validation
// (the precondition bugfix — malformed jobs are rejected with a reported
// error instead of undefined behavior), trace contents, slow-query log
// feeding, and BatchReport consistency.

#include <bit>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "fann_world.h"
#include "test_util.h"

namespace fannr {
namespace {

struct SmallBatch {
  std::deque<IndexedVertexSet> sets;
  std::vector<FannrQuery> jobs;

  explicit SmallBatch(const Graph& graph, size_t n = 4, uint64_t seed = 99) {
    Rng rng(seed);
    const auto& p = sets.emplace_back(
        graph.NumVertices(), testing::SampleVertices(graph, 20, rng));
    for (size_t i = 0; i < n; ++i) {
      const auto& q = sets.emplace_back(
          graph.NumVertices(), testing::SampleVertices(graph, 8, rng));
      FannrQuery job;
      job.query = FannQuery{&graph, &p, &q, 0.5, Aggregate::kSum};
      job.algorithm = FannAlgorithm::kGd;
      jobs.push_back(job);
    }
  }
};

TEST(BatchValidationTest, ForeignGraphJobIsRejectedNotUndefined) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  // A second graph with live pointers: pre-fix this was documented as
  // "must equal the engine's graph" but never checked per job.
  Graph other = testing::MakeSmallGrid(4, 4);
  Rng rng(5);
  IndexedVertexSet other_p(other.NumVertices(), {0, 5, 10});
  IndexedVertexSet other_q(other.NumVertices(), {1, 6});

  SmallBatch batch(graph, 3);
  FannrQuery foreign;
  foreign.query = FannQuery{&other, &other_p, &other_q, 0.5, Aggregate::kSum};
  foreign.algorithm = FannAlgorithm::kGd;
  batch.jobs.insert(batch.jobs.begin() + 1, foreign);

  BatchOptions options;
  options.num_threads = 2;
  BatchQueryEngine engine(world.Resources(), options);
  const auto results = engine.Run(batch.jobs);
  ASSERT_EQ(results.size(), 4u);

  EXPECT_EQ(results[1].status, QueryStatus::kRejected);
  EXPECT_NE(results[1].error.find("engine's graph"), std::string::npos);
  EXPECT_EQ(results[1].best, kInvalidVertex);
  // Surrounding jobs still answered.
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    EXPECT_EQ(results[i].status, QueryStatus::kOk) << i;
    EXPECT_NE(results[i].best, kInvalidVertex) << i;
  }
}

TEST(BatchValidationTest, NullSetJobsAreRejectedPerJob) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  SmallBatch batch(graph, 2);

  FannrQuery null_p = batch.jobs[0];
  null_p.query.data_points = nullptr;
  FannrQuery null_q = batch.jobs[0];
  null_q.query.query_points = nullptr;
  FannrQuery null_graph = batch.jobs[0];
  null_graph.query.graph = nullptr;
  FannrQuery bad_phi = batch.jobs[0];
  bad_phi.query.phi = 1.5;
  FannrQuery bad_aggregate = batch.jobs[0];
  bad_aggregate.algorithm = FannAlgorithm::kExactMax;  // max-only vs kSum
  batch.jobs.push_back(null_p);
  batch.jobs.push_back(null_q);
  batch.jobs.push_back(null_graph);
  batch.jobs.push_back(bad_phi);
  batch.jobs.push_back(bad_aggregate);

  BatchQueryEngine engine(world.Resources(), BatchOptions{});
  const auto results = engine.Run(batch.jobs);
  ASSERT_EQ(results.size(), 7u);
  EXPECT_EQ(results[0].status, QueryStatus::kOk);
  EXPECT_EQ(results[1].status, QueryStatus::kOk);
  EXPECT_NE(results[2].error.find("data_points"), std::string::npos);
  EXPECT_NE(results[3].error.find("query_points"), std::string::npos);
  EXPECT_NE(results[4].error.find("graph is null"), std::string::npos);
  EXPECT_NE(results[5].error.find("phi"), std::string::npos);
  EXPECT_NE(results[6].error.find("aggregate"), std::string::npos);
  for (size_t i = 2; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, QueryStatus::kRejected) << i;
    EXPECT_EQ(results[i].distance, kInfWeight) << i;
  }
}

TEST(BatchValidationTest, RejectedIerJobDoesNotBuildRTree) {
  // A null-P IER job must be screened out before the R-tree pre-build
  // phase dereferences query.data_points.
  const auto& world = testing::FannWorld::Get();
  SmallBatch batch(world.graph(), 1);
  FannrQuery bad = batch.jobs[0];
  bad.algorithm = FannAlgorithm::kIer;
  bad.query.data_points = nullptr;
  batch.jobs.push_back(bad);
  BatchQueryEngine engine(world.Resources(), BatchOptions{});
  const auto results = engine.Run(batch.jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, QueryStatus::kOk);
  EXPECT_EQ(results[1].status, QueryStatus::kRejected);
}

TEST(BatchTraceTest, TracesAlignedAndConsistent) {
  const auto& world = testing::FannWorld::Get();
  SmallBatch batch(world.graph(), 6);

  BatchOptions options;
  options.num_threads = 2;
  options.enable_metrics = true;
  options.slow_query_threshold_ms = 0.0;  // retain every trace
  BatchQueryEngine engine(world.Resources(), options);
  const auto results = engine.Run(batch.jobs);

  const auto& traces = engine.last_traces();
  ASSERT_EQ(traces.size(), batch.jobs.size());
  size_t attributed_hits = 0, attributed_misses = 0;
  for (size_t i = 0; i < traces.size(); ++i) {
    const auto& trace = traces[i];
    EXPECT_EQ(trace.query_index, i);
    EXPECT_LT(trace.worker, engine.num_threads());
    EXPECT_EQ(trace.status, QueryStatus::kOk);
    EXPECT_EQ(trace.algorithm, FannAlgorithm::kGd);
    EXPECT_GE(trace.solve_ms, 0.0);
    EXPECT_GE(trace.dispatch_wait_ms, 0.0);
    // GD evaluates every candidate: counters must match the result's.
    EXPECT_EQ(trace.gphi_evaluations, results[i].gphi_evaluations);
    EXPECT_EQ(trace.gphi_evaluate_calls, results[i].gphi_evaluations);
    EXPECT_EQ(trace.best, results[i].best);
    EXPECT_EQ(trace.cache_hits + trace.cache_misses,
              results[i].gphi_evaluations);
    // Phase breakdown is contained in the solve span.
    EXPECT_LE(trace.gphi_prepare_ms + trace.gphi_evaluate_ms,
              trace.solve_ms + 1.0);
    ASSERT_EQ(trace.spans.size(), 2u);
    EXPECT_EQ(trace.spans[0].name, "dispatch-wait");
    EXPECT_EQ(trace.spans[1].name, "solve");
    attributed_hits += trace.cache_hits;
    attributed_misses += trace.cache_misses;
  }

  // Per-query attribution must reconcile exactly with the shared cache's
  // own counters and the registry's published totals.
  const auto cache_stats = engine.cache_stats();
  EXPECT_EQ(attributed_hits, cache_stats.hits);
  EXPECT_EQ(attributed_misses, cache_stats.misses);
  const auto snapshot = engine.metrics()->Snapshot();
  EXPECT_EQ(snapshot.counter("cache.hits"), cache_stats.hits);
  EXPECT_EQ(snapshot.counter("cache.misses"), cache_stats.misses);
  EXPECT_EQ(snapshot.counter("engine.queries"), batch.jobs.size());
  EXPECT_EQ(snapshot.counter("engine.rejected_queries"), 0u);

  // Slow log with threshold 0 retained everything (capacity permitting).
  ASSERT_NE(engine.slow_query_log(), nullptr);
  EXPECT_EQ(engine.slow_query_log()->total_admitted(), batch.jobs.size());
}

TEST(BatchTraceTest, BatchReportConsistency) {
  const auto& world = testing::FannWorld::Get();
  SmallBatch batch(world.graph(), 8);
  FannrQuery bad = batch.jobs[0];
  bad.query.phi = -1.0;
  batch.jobs.push_back(bad);

  BatchOptions options;
  options.num_threads = 4;
  options.enable_metrics = true;
  BatchQueryEngine engine(world.Resources(), options);
  engine.Run(batch.jobs);

  const auto& report = engine.last_report();
  EXPECT_EQ(report.batch_size, 9u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.num_threads, 4u);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.queries_per_second, 0.0);
  EXPECT_EQ(report.solve_ms.count, 8u);  // rejected job not timed
  // hits + misses == lookups, attributed == cache-side.
  EXPECT_EQ(report.attributed_cache_hits, report.cache.hits);
  EXPECT_EQ(report.attributed_cache_misses, report.cache.misses);
  EXPECT_GT(report.cache.hits + report.cache.misses, 0u);
  EXPECT_EQ(report.pool_indices_executed, 9u);
  EXPECT_EQ(report.metrics.counter("engine.rejected_queries"), 1u);

  // Serializations are well-formed enough to carry the key fields.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"queries_per_second\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"lookups\""), std::string::npos);
  const std::string text = report.ToText();
  EXPECT_NE(text.find("queries/s"), std::string::npos);

  // A second Run resets the per-batch report.
  SmallBatch second(world.graph(), 2, /*seed=*/123);
  engine.Run(second.jobs);
  EXPECT_EQ(engine.last_report().batch_size, 2u);
  EXPECT_EQ(engine.last_report().rejected, 0u);
}

TEST(BatchTraceTest, SlowQueryLogPersistsAcrossRuns) {
  const auto& world = testing::FannWorld::Get();
  SmallBatch batch(world.graph(), 3);
  BatchOptions options;
  options.enable_metrics = true;
  options.slow_query_threshold_ms = 0.0;
  options.slow_query_log_capacity = 4;
  BatchQueryEngine engine(world.Resources(), options);
  engine.Run(batch.jobs);
  engine.Run(batch.jobs);
  // 6 offers into capacity 4: wrapped, newest retained.
  EXPECT_EQ(engine.slow_query_log()->total_offered(), 6u);
  EXPECT_EQ(engine.slow_query_log()->Entries().size(), 4u);
}

TEST(BatchTraceTest, MetricsDisabledKeepsObservationSurfacesEmpty) {
  const auto& world = testing::FannWorld::Get();
  SmallBatch batch(world.graph(), 2);
  BatchQueryEngine engine(world.Resources(), BatchOptions{});
  engine.Run(batch.jobs);
  EXPECT_TRUE(engine.last_traces().empty());
  EXPECT_EQ(engine.slow_query_log(), nullptr);
  EXPECT_EQ(engine.metrics(), nullptr);
  EXPECT_EQ(engine.last_report().batch_size, 0u);
}

TEST(BatchTraceTest, GphiKindOracleTracesWithoutCacheAttribution) {
  // Table I oracle mode: tracing still works; cache fields stay zero.
  const auto& world = testing::FannWorld::Get();
  SmallBatch batch(world.graph(), 3);
  BatchOptions options;
  options.num_threads = 2;
  options.gphi_kind = GphiKind::kIne;
  options.enable_metrics = true;
  BatchQueryEngine engine(world.Resources(), options);
  const auto results = engine.Run(batch.jobs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& trace : engine.last_traces()) {
    EXPECT_EQ(trace.status, QueryStatus::kOk);
    EXPECT_EQ(trace.cache_hits, 0u);
    EXPECT_EQ(trace.cache_misses, 0u);
    EXPECT_GT(trace.gphi_evaluate_calls, 0u);
  }
  EXPECT_EQ(engine.last_report().attributed_cache_hits, 0u);
}

}  // namespace
}  // namespace fannr
