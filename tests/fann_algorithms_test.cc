// Cross-agreement property tests: every exact FANN_R algorithm, under
// every g_phi engine, must return the same optimal flexible aggregate
// distance as the brute-force reference — the headline correctness
// property of the library.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>

#include "fann/fannr.h"
#include "fann_world.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

struct Instance {
  std::vector<VertexId> p_vec;
  std::vector<VertexId> q_vec;
  IndexedVertexSet p;
  IndexedVertexSet q;
  Weight optimal;

  Instance(const Graph& graph, std::vector<VertexId> ps,
           std::vector<VertexId> qs, double phi, Aggregate aggregate)
      : p_vec(std::move(ps)),
        q_vec(std::move(qs)),
        p(graph.NumVertices(), p_vec),
        q(graph.NumVertices(), q_vec),
        optimal(testing::BruteForceFann(graph, p_vec, q_vec, phi, aggregate)
                    .distance) {}
};

// Checks that a result is optimal and internally consistent: the reported
// subset is k distinct members of Q whose fold from the reported point
// equals the reported distance.
void CheckResult(const Graph& graph, const FannQuery& query,
                 const FannResult& result, Weight optimal,
                 const std::string& label) {
  ASSERT_NE(result.best, kInvalidVertex) << label;
  EXPECT_NEAR(result.distance, optimal, 1e-6) << label;
  EXPECT_TRUE(query.data_points->Contains(result.best)) << label;
  const size_t k = query.FlexSubsetSize();
  ASSERT_EQ(result.subset.size(), k) << label;
  std::vector<Weight> dists;
  auto truth = DijkstraSssp(graph, result.best);
  for (VertexId v : result.subset) {
    EXPECT_TRUE(query.query_points->Contains(v)) << label;
    dists.push_back(truth[v]);
  }
  std::sort(dists.begin(), dists.end());
  EXPECT_NEAR(FoldSorted(dists.data(), k, query.aggregate), result.distance,
              1e-6)
      << label;
}

class ExactAlgorithmsTest
    : public ::testing::TestWithParam<std::tuple<Aggregate, double>> {};

TEST_P(ExactAlgorithmsTest, AllAgreeWithBruteForce) {
  const auto [aggregate, phi] = GetParam();
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();

  Rng rng(static_cast<uint64_t>(aggregate) * 977 +
          static_cast<uint64_t>(phi * 1000));
  for (int trial = 0; trial < 2; ++trial) {
    Instance inst(graph, testing::SampleVertices(graph, 40, rng),
                  testing::SampleVertices(graph, 16, rng), phi, aggregate);
    FannQuery query{&graph, &inst.p, &inst.q, phi, aggregate};
    const RTree p_tree = BuildDataPointRTree(graph, inst.p);

    for (GphiKind kind : kAllGphiKinds) {
      auto engine = MakeGphiEngine(kind, world.Resources());
      const std::string label(GphiKindName(kind));
      CheckResult(graph, query, SolveGd(query, *engine), inst.optimal,
                  "GD-" + label);
      CheckResult(graph, query, SolveRList(query, *engine), inst.optimal,
                  "RList-" + label);
      CheckResult(graph, query, SolveIer(query, *engine, p_tree),
                  inst.optimal, "IER-" + label);
    }
    if (aggregate == Aggregate::kMax) {
      CheckResult(graph, query, SolveExactMax(query), inst.optimal,
                  "Exact-max");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactAlgorithmsTest,
    ::testing::Combine(::testing::Values(Aggregate::kMax, Aggregate::kSum),
                       ::testing::Values(0.1, 0.5, 1.0)),
    [](const auto& info) {
      return std::string(AggregateName(std::get<0>(info.param))) + "_phi" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(NaiveTest, AgreesWithGdOnTinyInstances) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(4242);
  for (double phi : {0.25, 0.5, 1.0}) {
    for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
      Instance inst(graph, testing::SampleVertices(graph, 15, rng),
                    testing::SampleVertices(graph, 8, rng), phi, aggregate);
      FannQuery query{&graph, &inst.p, &inst.q, phi, aggregate};
      FannResult naive = SolveNaive(query);
      FannResult gd = SolveGd(query, *engine);
      EXPECT_NEAR(naive.distance, gd.distance, 1e-9)
          << AggregateName(aggregate) << " phi=" << phi;
      EXPECT_NEAR(naive.distance, inst.optimal, 1e-9);
    }
  }
}

TEST(FannEdgeCaseTest, SingleQueryPoint) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(11);
  Instance inst(graph, testing::SampleVertices(graph, 20, rng), {17}, 1.0,
                Aggregate::kMax);
  FannQuery query{&graph, &inst.p, &inst.q, 1.0, Aggregate::kMax};
  // FANN_R with |Q| = 1 is a plain NN query from q over P.
  FannResult r = SolveExactMax(query);
  CheckResult(graph, query, r, inst.optimal, "single-q");
}

TEST(FannEdgeCaseTest, DataPointOnQueryPoint) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  // P contains a query point; with phi small enough the answer is that
  // point at distance 0.
  IndexedVertexSet p(graph.NumVertices(), {100, 200});
  IndexedVertexSet q(graph.NumVertices(), {200, 300, 400, 500});
  FannQuery query{&graph, &p, &q, 0.25, Aggregate::kSum};
  FannResult r = SolveGd(query, *engine);
  EXPECT_EQ(r.best, 200u);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(FannEdgeCaseTest, PEqualsQ) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kPhl, world.Resources());
  Rng rng(13);
  std::vector<VertexId> members = testing::SampleVertices(graph, 12, rng);
  Instance inst(graph, members, members, 0.5, Aggregate::kSum);
  FannQuery query{&graph, &inst.p, &inst.q, 0.5, Aggregate::kSum};
  FannResult r = SolveRList(query, *engine);
  CheckResult(graph, query, r, inst.optimal, "P==Q");
}

TEST(FannEdgeCaseTest, EntirePAsVertexSet) {
  // P = V (density 1 in the paper's Fig. 3/4 sweeps).
  Graph graph = testing::MakeRandomNetwork(150, 0xBEEF);
  std::vector<VertexId> all(graph.NumVertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  Rng rng(17);
  IndexedVertexSet p(graph.NumVertices(), all);
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 10, rng);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kMax};
  GphiResources resources;
  resources.graph = &graph;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  FannResult gd = SolveGd(query, *engine);
  FannResult em = SolveExactMax(query);
  EXPECT_NEAR(gd.distance, em.distance, 1e-9);
  auto brute = testing::BruteForceFann(graph, all, q_vec, 0.5,
                                       Aggregate::kMax);
  EXPECT_NEAR(gd.distance, brute.distance, 1e-9);
}

TEST(RListTest, ThresholdAblationAgreesAndPrunes) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kPhl, world.Resources());
  Rng rng(19);
  Instance inst(graph, testing::SampleVertices(graph, 60, rng),
                testing::SampleVertices(graph, 12, rng), 0.5,
                Aggregate::kSum);
  FannQuery query{&graph, &inst.p, &inst.q, 0.5, Aggregate::kSum};
  RListOptions no_threshold;
  no_threshold.use_threshold = false;
  FannResult with = SolveRList(query, *engine);
  FannResult without = SolveRList(query, *engine, no_threshold);
  EXPECT_NEAR(with.distance, without.distance, 1e-9);
  // The threshold must never evaluate more points, and without it every
  // data point gets evaluated.
  EXPECT_LE(with.gphi_evaluations, without.gphi_evaluations);
  EXPECT_EQ(without.gphi_evaluations, inst.p.size());
}

TEST(IerTest, CheapBoundAgreesWithFlexibleBound) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(23);
  for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
    Instance inst(graph, testing::SampleVertices(graph, 50, rng),
                  testing::SampleVertices(graph, 10, rng), 0.5, aggregate);
    FannQuery query{&graph, &inst.p, &inst.q, 0.5, aggregate};
    const RTree p_tree = BuildDataPointRTree(graph, inst.p);
    IerOptions cheap;
    cheap.bound = IerBound::kQMbrCheap;
    FannResult flexible = SolveIer(query, *engine, p_tree);
    FannResult cheap_result = SolveIer(query, *engine, p_tree, cheap);
    EXPECT_NEAR(flexible.distance, cheap_result.distance, 1e-9);
    EXPECT_NEAR(flexible.distance, inst.optimal, 1e-6);
    // The tighter bound should not evaluate more candidates.
    EXPECT_LE(flexible.gphi_evaluations, cheap_result.gphi_evaluations);
  }
}

TEST(IerTest, PrunesComparedToGd) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kPhl, world.Resources());
  Rng rng(29);
  // Clustered Q far from most of P: IER should prune hard.
  Instance inst(graph, testing::SampleVertices(graph, 120, rng),
                GenerateClusteredQueryPoints(graph, 0.2, 12, 1, rng), 0.5,
                Aggregate::kSum);
  FannQuery query{&graph, &inst.p, &inst.q, 0.5, Aggregate::kSum};
  const RTree p_tree = BuildDataPointRTree(graph, inst.p);
  FannResult ier = SolveIer(query, *engine, p_tree);
  EXPECT_NEAR(ier.distance, inst.optimal, 1e-6);
  EXPECT_LT(ier.gphi_evaluations, inst.p.size());
}

TEST(ExactMaxTest, RejectsNoDataPointReachable) {
  // Disconnected: Q in one component, P in another.
  GraphBuilder builder;
  builder.AddVertex(Point{0.0, 0.0});
  builder.AddVertex(Point{1.0, 0.0});
  builder.AddVertex(Point{10.0, 0.0});
  builder.AddVertex(Point{11.0, 0.0});
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  IndexedVertexSet p(g.NumVertices(), {0});
  IndexedVertexSet q(g.NumVertices(), {2, 3});
  FannQuery query{&g, &p, &q, 1.0, Aggregate::kMax};
  FannResult r = SolveExactMax(query);
  EXPECT_EQ(r.best, kInvalidVertex);
  EXPECT_EQ(r.distance, kInfWeight);
}

}  // namespace
}  // namespace fannr
