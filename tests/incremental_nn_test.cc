#include "sp/incremental_nn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(IncrementalNnTest, ReportsTargetsInDistanceOrder) {
  Graph g = testing::MakeRandomNetwork(400, 41);
  Rng rng(42);
  std::vector<VertexId> targets = testing::SampleVertices(g, 30, rng);
  IndexedVertexSet target_set(g.NumVertices(), targets);
  IncrementalNnSearch search(g, 7, target_set);
  Weight prev = -1.0;
  size_t count = 0;
  while (auto hit = search.Next()) {
    EXPECT_GE(hit->distance, prev);
    EXPECT_TRUE(target_set.Contains(hit->vertex));
    prev = hit->distance;
    ++count;
  }
  EXPECT_EQ(count, targets.size());
}

TEST(IncrementalNnTest, DistancesAreExact) {
  Graph g = testing::MakeRandomNetwork(300, 43);
  Rng rng(44);
  std::vector<VertexId> targets = testing::SampleVertices(g, 20, rng);
  IndexedVertexSet target_set(g.NumVertices(), targets);
  VertexId source = 11;
  auto truth = DijkstraSssp(g, source);
  IncrementalNnSearch search(g, source, target_set);
  size_t reported = 0;
  while (auto hit = search.Next()) {
    EXPECT_NEAR(hit->distance, truth[hit->vertex], 1e-9);
    ++reported;
  }
  EXPECT_EQ(reported, targets.size());
}

TEST(IncrementalNnTest, SourceInTargetsReportedFirstAtZero) {
  Graph g = testing::MakeLineGraph(5);
  IndexedVertexSet target_set(g.NumVertices(), {2, 4});
  IncrementalNnSearch search(g, 2, target_set);
  auto hit = search.Next();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->vertex, 2u);
  EXPECT_DOUBLE_EQ(hit->distance, 0.0);
  hit = search.Next();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->vertex, 4u);
  EXPECT_DOUBLE_EQ(hit->distance, 2.0);
  EXPECT_FALSE(search.Next().has_value());
}

TEST(IncrementalNnTest, PeekDoesNotConsume) {
  Graph g = testing::MakeLineGraph(6);
  IndexedVertexSet target_set(g.NumVertices(), {3, 5});
  IncrementalNnSearch search(g, 0, target_set);
  const auto* peek1 = search.Peek();
  ASSERT_NE(peek1, nullptr);
  EXPECT_EQ(peek1->vertex, 3u);
  const auto* peek2 = search.Peek();
  ASSERT_NE(peek2, nullptr);
  EXPECT_EQ(peek2->vertex, 3u);
  auto next = search.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->vertex, 3u);
  const auto* peek3 = search.Peek();
  ASSERT_NE(peek3, nullptr);
  EXPECT_EQ(peek3->vertex, 5u);
}

TEST(IncrementalNnTest, PeekReturnsNullWhenExhausted) {
  Graph g = testing::MakeLineGraph(3);
  IndexedVertexSet target_set(g.NumVertices(), {1});
  IncrementalNnSearch search(g, 0, target_set);
  EXPECT_TRUE(search.Next().has_value());
  EXPECT_EQ(search.Peek(), nullptr);
  EXPECT_FALSE(search.Next().has_value());
}

TEST(IncrementalNnTest, UnreachableTargetsNeverReported) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(3, 4, 1.0);
  Graph g = builder.Build();
  IndexedVertexSet target_set(g.NumVertices(), {1, 4});
  IncrementalNnSearch search(g, 0, target_set);
  auto hit = search.Next();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->vertex, 1u);
  EXPECT_FALSE(search.Next().has_value());
}

TEST(IncrementalNnTest, EmptyTargetSetExhaustsImmediately) {
  Graph g = testing::MakeLineGraph(4);
  IndexedVertexSet target_set(g.NumVertices(), {});
  IncrementalNnSearch search(g, 0, target_set);
  EXPECT_FALSE(search.Next().has_value());
}

TEST(IncrementalNnTest, ManyConcurrentSearchesStayIndependent) {
  Graph g = testing::MakeRandomNetwork(400, 51);
  Rng rng(52);
  std::vector<VertexId> targets = testing::SampleVertices(g, 40, rng);
  IndexedVertexSet target_set(g.NumVertices(), targets);
  std::vector<VertexId> sources = testing::SampleVertices(g, 8, rng);

  std::vector<IncrementalNnSearch> searches;
  searches.reserve(sources.size());
  for (VertexId s : sources) searches.emplace_back(g, s, target_set);

  // Interleave: advance round-robin, then verify each got the correct
  // first three nearest targets despite the interleaving ("switchable"
  // execution from the paper).
  std::vector<std::vector<IncrementalNnSearch::Hit>> got(sources.size());
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < searches.size(); ++i) {
      auto hit = searches[i].Next();
      ASSERT_TRUE(hit.has_value());
      got[i].push_back(*hit);
    }
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    auto truth = DijkstraSssp(g, sources[i]);
    std::vector<Weight> target_dists;
    for (VertexId t : targets) target_dists.push_back(truth[t]);
    std::sort(target_dists.begin(), target_dists.end());
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(got[i][j].distance, target_dists[j], 1e-9)
          << "source " << sources[i] << " rank " << j;
    }
  }
}

}  // namespace
}  // namespace fannr
