// ShardPlan: the partition-derived vertex->shard assignment must be
// deterministic, cover every vertex, round-trip through its arena file
// bit-exactly, and refuse structurally corrupt or truncated files —
// a router splitting queries with a damaged plan would silently drop
// P-candidates, which the full-payload checksum rules out.

#include "net/shard_plan.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "graph/graph.h"
#include "test_util.h"

namespace fannr::net {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fannr_shard_plan_" + name;
}

TEST(ShardPlan, CoversEveryVertexAndBalances) {
  const Graph graph = testing::MakeRandomNetwork(300, 77);
  for (const uint32_t shards : {2u, 4u, 8u}) {
    const ShardPlan plan = ShardPlan::Build(graph, shards);
    EXPECT_EQ(plan.num_shards(), shards);
    ASSERT_EQ(plan.num_vertices(), graph.NumVertices());
    std::vector<size_t> sizes = plan.ShardSizes();
    ASSERT_EQ(sizes.size(), shards);
    size_t total = 0;
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_GT(sizes[s], 0u) << "empty shard " << s;
      total += sizes[s];
    }
    EXPECT_EQ(total, graph.NumVertices());
    for (uint32_t v = 0; v < graph.NumVertices(); ++v) {
      EXPECT_LT(plan.OwnerOf(v), shards);
    }
  }
}

TEST(ShardPlan, BuildIsDeterministic) {
  const Graph a = testing::MakeRandomNetwork(300, 77);
  const Graph b = testing::MakeRandomNetwork(300, 77);
  const ShardPlan plan_a = ShardPlan::Build(a, 4);
  const ShardPlan plan_b = ShardPlan::Build(b, 4);
  ASSERT_EQ(plan_a.num_vertices(), plan_b.num_vertices());
  for (uint32_t v = 0; v < plan_a.num_vertices(); ++v) {
    ASSERT_EQ(plan_a.OwnerOf(v), plan_b.OwnerOf(v)) << "vertex " << v;
  }
}

TEST(ShardPlan, SplitByShardPreservesOrderAndOwnership) {
  const Graph graph = testing::MakeRandomNetwork(200, 5);
  const ShardPlan plan = ShardPlan::Build(graph, 4);

  Rng rng(11);
  const std::vector<VertexId> sample = testing::SampleVertices(graph, 40, rng);
  std::vector<uint32_t> p(sample.begin(), sample.end());
  const std::vector<std::vector<uint32_t>> parts = plan.SplitByShard(p);
  ASSERT_EQ(parts.size(), 4u);

  size_t total = 0;
  for (uint32_t s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    for (uint32_t v : parts[s]) EXPECT_EQ(plan.OwnerOf(v), s);
    // Original relative order survives within each part.
    std::vector<uint32_t> expected;
    for (uint32_t v : p) {
      if (plan.OwnerOf(v) == s) expected.push_back(v);
    }
    EXPECT_EQ(parts[s], expected) << "shard " << s;
  }
  EXPECT_EQ(total, p.size());

  // Out-of-range ids have no owner and are dropped.
  p.push_back(static_cast<uint32_t>(graph.NumVertices()) + 5);
  const std::vector<std::vector<uint32_t>> reparts = plan.SplitByShard(p);
  size_t retotal = 0;
  for (const std::vector<uint32_t>& part : reparts) retotal += part.size();
  EXPECT_EQ(retotal, p.size() - 1);
}

TEST(ShardPlan, SaveLoadRoundTripsBitExactly) {
  const Graph graph = testing::MakeRandomNetwork(250, 42);
  const ShardPlan plan = ShardPlan::Build(graph, 4);
  const std::string path = TempPath("roundtrip.plan");

  std::string error;
  ASSERT_TRUE(plan.Save(path, &error)) << error;
  const std::optional<ShardPlan> loaded = ShardPlan::Load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->num_shards(), plan.num_shards());
  EXPECT_TRUE(loaded->fingerprint() == graph.Fingerprint());
  ASSERT_EQ(loaded->num_vertices(), plan.num_vertices());
  for (uint32_t v = 0; v < plan.num_vertices(); ++v) {
    ASSERT_EQ(loaded->OwnerOf(v), plan.OwnerOf(v)) << "vertex " << v;
  }
  std::remove(path.c_str());
}

TEST(ShardPlan, LoadRejectsCorruptionAnywhere) {
  const Graph graph = testing::MakeRandomNetwork(120, 9);
  const ShardPlan plan = ShardPlan::Build(graph, 2);
  const std::string path = TempPath("corrupt.plan");
  std::string error;
  ASSERT_TRUE(plan.Save(path, &error)) << error;

  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  // Flip one byte at a spread of offsets — magic (0), version (9), the
  // fingerprint's vertex count (13, breaks the owner-table size check),
  // and two payload positions caught by the full checksum. Every
  // variant must be refused.
  for (const size_t at : {size_t{0}, size_t{9}, size_t{13}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x20);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    std::string load_error;
    EXPECT_FALSE(ShardPlan::Load(path, &load_error).has_value())
        << "byte " << at << " flip was accepted";
    EXPECT_FALSE(load_error.empty());
  }

  // Truncation at any point is refused too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    std::string load_error;
    EXPECT_FALSE(ShardPlan::Load(path, &load_error).has_value());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fannr::net
