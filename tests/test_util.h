// Shared helpers for the fannr test suite: small deterministic graphs,
// random graph factories, and brute-force reference implementations used
// as ground truth.

#ifndef FANNR_TESTS_TEST_UTIL_H_
#define FANNR_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "fann/aggregate.h"
#include "graph/graph.h"

namespace fannr::testing {

/// Path graph 0-1-2-...-(n-1) with the given uniform edge weight and
/// coordinates on the x axis (spacing = weight, so Euclidean-consistent).
Graph MakeLineGraph(size_t n, Weight weight = 1.0);

/// Deterministic rows x cols grid with jittered coordinates and
/// Euclidean-consistent weights; connected.
Graph MakeSmallGrid(size_t rows, size_t cols, uint64_t seed = 7);

/// A connected random road-network-like graph with roughly
/// `approx_vertices` vertices (perturbed grid, coordinates included).
Graph MakeRandomNetwork(size_t approx_vertices, uint64_t seed);

/// Bellman-Ford SSSP: O(VE) reference for Dijkstra correctness.
std::vector<Weight> BellmanFordSssp(const Graph& graph, VertexId source);

/// Samples k distinct vertices of `graph`.
std::vector<VertexId> SampleVertices(const Graph& graph, size_t k, Rng& rng);

/// Brute-force g_phi(p, Q): network distances to every q via Dijkstra,
/// k smallest folded with the aggregate. kInfWeight when fewer than k
/// query points are reachable.
Weight BruteGphi(const Graph& graph, VertexId p,
                 const std::vector<VertexId>& q, size_t k,
                 Aggregate aggregate);

/// Brute-force FANN_R answer (optimal distance; any optimal vertex).
struct BruteFann {
  VertexId best = kInvalidVertex;
  Weight distance = kInfWeight;
};
BruteFann BruteForceFann(const Graph& graph, const std::vector<VertexId>& p,
                         const std::vector<VertexId>& q, double phi,
                         Aggregate aggregate);

}  // namespace fannr::testing

#endif  // FANNR_TESTS_TEST_UTIL_H_
