// Unit tests for the observability primitives: histogram percentile
// edge cases, sharded-counter merge exactness under real ParallelFor
// concurrency, and slow-query ring-buffer wraparound.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace fannr {
namespace {

using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::QueryTrace;
using obs::SlowQueryLog;

HistogramSnapshot RecordAll(const std::vector<double>& bounds,
                            const std::vector<double>& values) {
  MetricsRegistry registry(1);
  const auto id = registry.RegisterHistogram("h", bounds);
  for (double v : values) registry.Record(id, v);
  return *registry.Snapshot().histogram("h");
}

TEST(HistogramTest, EmptyHistogram) {
  const auto h = RecordAll({1.0, 2.0, 5.0}, {});
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryPercentile) {
  const auto h = RecordAll({1.0, 2.0, 5.0}, {1.7});
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.min, 1.7);
  EXPECT_DOUBLE_EQ(h.max, 1.7);
  // The [min, max] clamp makes a one-sample histogram exact regardless
  // of which bucket the sample landed in.
  for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 1.7) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 1.7);
}

TEST(HistogramTest, ValueOnBucketBoundaryCountsIntoLowerBucket) {
  // Bounds are inclusive upper bounds: a value equal to bounds[i] lands
  // in bucket i, not i+1.
  const auto h = RecordAll({1.0, 2.0, 5.0}, {1.0, 2.0, 5.0});
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 0u);  // overflow bucket untouched
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  const auto h = RecordAll({1.0, 2.0}, {10.0, 20.0, 30.0});
  EXPECT_EQ(h.counts[2], 3u);  // all in overflow
  EXPECT_DOUBLE_EQ(h.max, 30.0);
  // p100 must report the exact observed max even though the overflow
  // bucket has no upper bound.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 30.0);
  // And every percentile stays within the observed range.
  EXPECT_LE(h.Percentile(99), 30.0);
  EXPECT_GE(h.Percentile(1), h.min);
}

TEST(HistogramTest, PercentilesAreMonotoneAndRankExact) {
  // 100 samples, one per bucket position: percentile rank selection must
  // walk the exact cumulative counts.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const auto h = RecordAll(bounds, values);
  ASSERT_EQ(h.count, 100u);
  // Nearest-rank: p50 -> 50th sample = 50, p95 -> 95, p99 -> 99.
  EXPECT_NEAR(h.Percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.Percentile(95), 95.0, 1.0);
  EXPECT_NEAR(h.Percentile(99), 99.0, 1.0);
  double last = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, last) << "p" << p;
    last = v;
  }
}

TEST(HistogramTest, AccumulateMatchesRecord) {
  // The snapshot-side Accumulate (used for per-batch histograms) must
  // agree with registry Record.
  const std::vector<double> bounds = {0.5, 1.0, 2.0};
  const std::vector<double> values = {0.1, 0.6, 1.5, 9.0, 1.0};
  const auto recorded = RecordAll(bounds, values);
  HistogramSnapshot accumulated;
  accumulated.bounds = bounds;
  accumulated.counts.assign(bounds.size() + 1, 0);
  for (double v : values) accumulated.Accumulate(v);
  EXPECT_EQ(accumulated.counts, recorded.counts);
  EXPECT_EQ(accumulated.count, recorded.count);
  EXPECT_DOUBLE_EQ(accumulated.sum, recorded.sum);
  EXPECT_DOUBLE_EQ(accumulated.min, recorded.min);
  EXPECT_DOUBLE_EQ(accumulated.max, recorded.max);
}

TEST(MetricsRegistryTest, ShardedCounterMergeIsExactUnderParallelFor) {
  // Every worker hammers its own shard; the merged total must be exactly
  // the number of increments, proving no updates are lost or double
  // counted across shards.
  constexpr size_t kWorkers = 8;
  constexpr size_t kIndices = 20000;
  ThreadPool pool(kWorkers);
  MetricsRegistry registry(kWorkers);
  const auto counter = registry.RegisterCounter("test.increments");
  const auto histogram =
      registry.RegisterHistogram("test.values", {10.0, 100.0, 1000.0});
  pool.ParallelFor(kIndices, [&](size_t index, size_t worker) {
    registry.Add(counter, 1, worker);
    registry.Record(histogram, static_cast<double>(index % 500), worker);
  });
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("test.increments"), kIndices);
  const auto* h = snapshot.histogram("test.values");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kIndices);
  uint64_t bucket_total = 0;
  for (uint64_t c : h->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kIndices);
  EXPECT_DOUBLE_EQ(h->min, 0.0);
  EXPECT_DOUBLE_EQ(h->max, 499.0);
}

TEST(MetricsRegistryTest, GaugeAndNamedLookup) {
  MetricsRegistry registry(2);
  const auto gauge = registry.RegisterGauge("g");
  registry.Set(gauge, 42.5);
  const auto snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.gauge("g"), 42.5);
  EXPECT_EQ(snapshot.counter("missing"), 0u);
  EXPECT_EQ(snapshot.histogram("missing"), nullptr);
}

QueryTrace MakeTrace(size_t index, double solve_ms) {
  QueryTrace trace;
  trace.query_index = index;
  trace.solve_ms = solve_ms;
  return trace;
}

TEST(SlowQueryLogTest, ThresholdFilters) {
  SlowQueryLog log(/*capacity=*/8, /*threshold_ms=*/10.0);
  log.Offer(MakeTrace(0, 5.0));    // fast: dropped
  log.Offer(MakeTrace(1, 10.0));   // at threshold: kept
  log.Offer(MakeTrace(2, 100.0));  // slow: kept
  EXPECT_EQ(log.total_offered(), 3u);
  EXPECT_EQ(log.total_admitted(), 2u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query_index, 1u);
  EXPECT_EQ(entries[1].query_index, 2u);
}

TEST(SlowQueryLogTest, RejectionsAlwaysAdmitted) {
  SlowQueryLog log(4, /*threshold_ms=*/1e9);
  QueryTrace trace = MakeTrace(7, 0.0);
  trace.status = QueryStatus::kRejected;
  trace.error = "query.graph does not match";
  log.Offer(trace);
  ASSERT_EQ(log.Entries().size(), 1u);
  EXPECT_EQ(log.Entries()[0].error, "query.graph does not match");
}

TEST(SlowQueryLogTest, RingWraparoundKeepsNewestInOrder) {
  SlowQueryLog log(/*capacity=*/3, /*threshold_ms=*/0.0);
  for (size_t i = 0; i < 10; ++i) log.Offer(MakeTrace(i, 1.0));
  EXPECT_EQ(log.total_offered(), 10u);
  EXPECT_EQ(log.total_admitted(), 10u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest-first of the three most recent offers.
  EXPECT_EQ(entries[0].query_index, 7u);
  EXPECT_EQ(entries[1].query_index, 8u);
  EXPECT_EQ(entries[2].query_index, 9u);
}

TEST(SlowQueryLogTest, WraparoundExactlyAtCapacityBoundary) {
  SlowQueryLog log(3, 0.0);
  for (size_t i = 0; i < 3; ++i) log.Offer(MakeTrace(i, 1.0));
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].query_index, 0u);  // not yet wrapped
  log.Offer(MakeTrace(3, 1.0));           // evicts exactly #0
  entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].query_index, 1u);
  EXPECT_EQ(entries[2].query_index, 3u);
}

TEST(SlowQueryLogTest, ClearKeepsCounters) {
  SlowQueryLog log(2, 0.0);
  log.Offer(MakeTrace(0, 1.0));
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.total_admitted(), 1u);
}

TEST(TraceDumpTest, TextAndJsonCarryTheSchema) {
  QueryTrace trace;
  trace.query_index = 3;
  trace.worker = 1;
  trace.algorithm = FannAlgorithm::kRList;
  trace.solve_ms = 12.5;
  trace.cache_hits = 4;
  trace.cache_misses = 2;
  trace.spans = {{"solve", 1.0, 12.5}};
  const std::string text = obs::FormatTrace(trace);
  EXPECT_NE(text.find("R-List"), std::string::npos);
  EXPECT_NE(text.find("worker 1"), std::string::npos);
  const std::string json = obs::TraceToJson(trace);
  EXPECT_NE(json.find("\"solve_ms\": 12.500"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);

  QueryTrace rejected;
  rejected.status = QueryStatus::kRejected;
  rejected.error = "bad \"quote\"";
  const std::string rejected_json = obs::TraceToJson(rejected);
  EXPECT_NE(rejected_json.find("\\\"quote\\\""), std::string::npos);
  EXPECT_NE(obs::FormatTrace(rejected).find("REJECTED"), std::string::npos);
}

}  // namespace
}  // namespace fannr
