// Property tests: every g_phi engine of Table I (+ CH) computes exactly
// the brute-force flexible aggregate distance, for both aggregates and a
// sweep of k.

#include "fann/gphi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "fann_world.h"
#include "graph/builder.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

class GphiEngineTest
    : public ::testing::TestWithParam<std::tuple<GphiKind, Aggregate>> {};

TEST_P(GphiEngineTest, MatchesBruteForce) {
  const auto [kind, aggregate] = GetParam();
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(kind, world.Resources());
  EXPECT_EQ(engine->name(), GphiKindName(kind));

  Rng rng(static_cast<uint64_t>(kind) * 100 +
          static_cast<uint64_t>(aggregate));
  for (int trial = 0; trial < 3; ++trial) {
    const size_t m = 8 + rng.NextIndex(24);
    std::vector<VertexId> q_vec = testing::SampleVertices(graph, m, rng);
    IndexedVertexSet q(graph.NumVertices(), q_vec);
    engine->Prepare(q);
    for (size_t k : {size_t{1}, m / 2, m}) {
      if (k == 0) continue;
      for (int i = 0; i < 4; ++i) {
        const VertexId p =
            static_cast<VertexId>(rng.NextIndex(graph.NumVertices()));
        const GphiResult got = engine->Evaluate(p, k, aggregate);
        const Weight expected =
            testing::BruteGphi(graph, p, q_vec, k, aggregate);
        EXPECT_NEAR(got.distance, expected, 1e-6)
            << GphiKindName(kind) << " p=" << p << " k=" << k;
        // The subset must be k distinct members of Q whose fold equals
        // the reported distance.
        ASSERT_EQ(got.subset.size(), k);
        DijkstraSearch check(graph);
        std::vector<Weight> dists;
        for (VertexId v : got.subset) {
          EXPECT_TRUE(q.Contains(v));
          dists.push_back(check.Distance(p, v));
        }
        std::sort(dists.begin(), dists.end());
        EXPECT_NEAR(FoldSorted(dists.data(), k, aggregate), got.distance,
                    1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, GphiEngineTest,
    ::testing::Combine(::testing::ValuesIn(kAllGphiKinds),
                       ::testing::Values(Aggregate::kMax, Aggregate::kSum)),
    [](const auto& info) {
      std::string name(GphiKindName(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-' || c == '*') c = '_';
      }
      return name + "_" +
             std::string(AggregateName(std::get<1>(info.param)));
    });

TEST(GphiEngineTest, SourceInsideQIsItsOwnNearest) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  std::vector<VertexId> q_vec{10, 20, 30};
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  engine->Prepare(q);
  GphiResult r = engine->Evaluate(20, 1, Aggregate::kMax);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  ASSERT_EQ(r.subset.size(), 1u);
  EXPECT_EQ(r.subset[0], 20u);
}

TEST(GphiEngineTest, UnreachableQueryPointsGiveInfinity) {
  // Two-component graph: p can reach only 1 of 2 query points, so k=2 is
  // infeasible.
  GraphBuilder builder;
  builder.AddVertex(Point{0.0, 0.0});
  builder.AddVertex(Point{1.0, 0.0});
  builder.AddVertex(Point{10.0, 0.0});
  builder.AddVertex(Point{11.0, 0.0});
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  GphiResources resources;
  resources.graph = &g;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  IndexedVertexSet q(g.NumVertices(), {1, 3});
  engine->Prepare(q);
  EXPECT_EQ(engine->Evaluate(0, 2, Aggregate::kSum).distance, kInfWeight);
  EXPECT_DOUBLE_EQ(engine->Evaluate(0, 1, Aggregate::kSum).distance, 1.0);
}

TEST(GphiEngineTest, PrepareRebindsToNewQuerySet) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIerPhl, world.Resources());
  Rng rng(777);
  std::vector<VertexId> q1 = testing::SampleVertices(graph, 10, rng);
  std::vector<VertexId> q2 = testing::SampleVertices(graph, 10, rng);
  IndexedVertexSet set1(graph.NumVertices(), q1);
  IndexedVertexSet set2(graph.NumVertices(), q2);
  const VertexId p = 42;
  engine->Prepare(set1);
  const Weight d1 = engine->Evaluate(p, 5, Aggregate::kSum).distance;
  engine->Prepare(set2);
  const Weight d2 = engine->Evaluate(p, 5, Aggregate::kSum).distance;
  engine->Prepare(set1);
  const Weight d1_again = engine->Evaluate(p, 5, Aggregate::kSum).distance;
  EXPECT_DOUBLE_EQ(d1, d1_again);
  EXPECT_NEAR(d1, testing::BruteGphi(graph, p, q1, 5, Aggregate::kSum),
              1e-6);
  EXPECT_NEAR(d2, testing::BruteGphi(graph, p, q2, 5, Aggregate::kSum),
              1e-6);
}

}  // namespace
}  // namespace fannr
