#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fannr {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.NextU64() != b.NextU64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBoundedWithinRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-2.5, 3.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 3.5);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (size_t n : {10u, 100u, 1000u}) {
    for (size_t k : {1u, 5u, 9u}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(17);
  auto sample = rng.SampleWithoutReplacement(8, 8);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SmallSampleUsesFloydPathAndStaysDistinct) {
  Rng rng(19);
  // k * 16 < n triggers Floyd's algorithm.
  auto sample = rng.SampleWithoutReplacement(10000, 20);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

}  // namespace
}  // namespace fannr
