// UpdateWal: the append-only, epoch-positioned update log. A restarted
// process must replay its way from a freshly loaded epoch-0 graph to
// the exact weight state (fingerprint-identical) it crashed at; a torn
// final record must be truncated away, never half-applied; and a WAL
// written against a different graph must be refused outright.

#include "dynamic/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dynamic/update.h"
#include "graph/graph.h"
#include "test_util.h"

namespace fannr::dynamic {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fannr_wal_" + name;
}

/// Applies `waves` congestion waves to `graph`, logging each applied
/// batch the way the server does (position = epoch applied on top of).
void ApplyAndLogWaves(Graph& graph, UpdateWal& wal, size_t waves,
                      uint64_t seed) {
  for (size_t i = 0; i < waves; ++i) {
    Rng rng(seed + i);
    const UpdateBatch wave = MakeCongestionWave(graph, 0.05, 0.5, 3.0, rng);
    ASSERT_FALSE(wave.empty());
    WalRecord record;
    record.position = graph.epoch();
    for (const EdgeWeightUpdate& u : wave.updates()) {
      record.entries.push_back({u.u, u.v, u.new_weight});
    }
    const ApplyResult applied = wave.Apply(graph);
    record.new_epoch = applied.new_epoch;
    ASSERT_TRUE(wal.Append(record));
  }
}

TEST(UpdateWal, ReplayReproducesTheExactWeightState) {
  const std::string path = TempPath("replay.wal");
  std::remove(path.c_str());

  Graph graph = testing::MakeRandomNetwork(200, 31);
  const GraphFingerprint epoch0 = graph.Fingerprint();
  {
    std::string error;
    std::unique_ptr<UpdateWal> wal = UpdateWal::Open(path, epoch0, &error);
    ASSERT_NE(wal, nullptr) << error;
    EXPECT_EQ(wal->end_epoch(), 0u);
    ApplyAndLogWaves(graph, *wal, 3, 900);
    EXPECT_EQ(wal->end_epoch(), graph.epoch());
  }

  // "Restart": a fresh epoch-0 copy of the same network replays the
  // reopened log and must land on the identical weight state.
  Graph restarted = testing::MakeRandomNetwork(200, 31);
  ASSERT_TRUE(restarted.Fingerprint() == epoch0);
  std::string error;
  std::unique_ptr<UpdateWal> wal = UpdateWal::Open(path, epoch0, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_EQ(wal->records().size(), 3u);
  EXPECT_EQ(wal->truncated_bytes(), 0u);

  const size_t applied = wal->ReplayInto(restarted, &error);
  EXPECT_EQ(applied, 3u) << error;
  EXPECT_EQ(restarted.epoch(), graph.epoch());
  EXPECT_TRUE(restarted.Fingerprint() == graph.Fingerprint());

  // Replay is position-gated, hence idempotent: a second replay on the
  // caught-up graph applies nothing and changes nothing.
  EXPECT_EQ(wal->ReplayInto(restarted, &error), 0u);
  EXPECT_TRUE(restarted.Fingerprint() == graph.Fingerprint());
  std::remove(path.c_str());
}

TEST(UpdateWal, PartialReplayFromMidHistory) {
  const std::string path = TempPath("partial.wal");
  std::remove(path.c_str());

  Graph graph = testing::MakeRandomNetwork(150, 8);
  const GraphFingerprint epoch0 = graph.Fingerprint();
  std::string error;
  std::unique_ptr<UpdateWal> wal = UpdateWal::Open(path, epoch0, &error);
  ASSERT_NE(wal, nullptr) << error;
  ApplyAndLogWaves(graph, *wal, 4, 1234);

  // A replica that crashed at epoch 2 replays only the tail: records
  // below its position are skipped as already-owned history.
  Graph replica = testing::MakeRandomNetwork(150, 8);
  for (size_t i = 0; i < 2; ++i) {
    Rng rng(1234 + i);
    MakeCongestionWave(replica, 0.05, 0.5, 3.0, rng).Apply(replica);
  }
  ASSERT_EQ(replica.epoch(), 2u);

  EXPECT_EQ(wal->ReplayInto(replica, &error), 2u) << error;
  EXPECT_EQ(replica.epoch(), 4u);
  EXPECT_TRUE(replica.Fingerprint() == graph.Fingerprint());
  std::remove(path.c_str());
}

TEST(UpdateWal, TornTailIsTruncatedNotApplied) {
  const std::string path = TempPath("torn.wal");
  std::remove(path.c_str());

  Graph graph = testing::MakeRandomNetwork(150, 21);
  const GraphFingerprint epoch0 = graph.Fingerprint();
  {
    std::string error;
    std::unique_ptr<UpdateWal> wal = UpdateWal::Open(path, epoch0, &error);
    ASSERT_NE(wal, nullptr) << error;
    ApplyAndLogWaves(graph, *wal, 2, 55);
  }

  // Simulate a crash mid-append: chop the file inside the last record,
  // then graft garbage on. Both must disappear on open.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 7);
  bytes += "\x13garbage-after-the-tear";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  std::string error;
  std::unique_ptr<UpdateWal> wal = UpdateWal::Open(path, epoch0, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(wal->records().size(), 1u);
  EXPECT_GT(wal->truncated_bytes(), 0u);
  EXPECT_EQ(wal->end_epoch(), 1u);

  // The truncation is durable: a second open sees a clean one-record
  // log, and appending resumes from there.
  wal.reset();
  wal = UpdateWal::Open(path, epoch0, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(wal->records().size(), 1u);
  EXPECT_EQ(wal->truncated_bytes(), 0u);
  WalRecord next;
  next.position = 1;
  next.new_epoch = 2;
  next.entries.push_back({0, 1, 9.5});
  EXPECT_TRUE(wal->Append(next));
  wal.reset();
  wal = UpdateWal::Open(path, epoch0, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(wal->records().size(), 2u);
  std::remove(path.c_str());
}

TEST(UpdateWal, RefusesAForeignGraph) {
  const std::string path = TempPath("foreign.wal");
  std::remove(path.c_str());

  Graph graph = testing::MakeRandomNetwork(150, 3);
  std::string error;
  std::unique_ptr<UpdateWal> wal =
      UpdateWal::Open(path, graph.Fingerprint(), &error);
  ASSERT_NE(wal, nullptr) << error;
  ApplyAndLogWaves(graph, *wal, 1, 7);
  wal.reset();

  const Graph other = testing::MakeRandomNetwork(150, 4);
  EXPECT_FALSE(UpdateWal::Open(path, other.Fingerprint(), &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(UpdateWal, NoOpRecordsShareAPositionAndReplayCleanly) {
  const std::string path = TempPath("noop.wal");
  std::remove(path.c_str());

  Graph graph = testing::MakeRandomNetwork(100, 61);
  const GraphFingerprint epoch0 = graph.Fingerprint();
  std::string error;
  std::unique_ptr<UpdateWal> wal = UpdateWal::Open(path, epoch0, &error);
  ASSERT_NE(wal, nullptr) << error;

  // A batch whose every entry addresses a non-existent edge applies
  // nothing and does not bump the epoch, so its record and the next
  // real batch legitimately share position 0.
  VertexId non_neighbor = kInvalidVertex;
  for (VertexId v = 1; v < graph.NumVertices(); ++v) {
    if (!graph.EdgeWeight(0, v).has_value()) {
      non_neighbor = v;
      break;
    }
  }
  ASSERT_NE(non_neighbor, kInvalidVertex);
  UpdateBatch noop;
  noop.SetWeight(0, non_neighbor, 1.0);
  WalRecord noop_record;
  noop_record.position = graph.epoch();
  noop_record.entries.push_back({0, non_neighbor, 1.0});
  const ApplyResult noop_applied = noop.Apply(graph);
  EXPECT_EQ(noop_applied.applied, 0u);
  EXPECT_EQ(noop_applied.missing, 1u);
  noop_record.new_epoch = noop_applied.new_epoch;
  ASSERT_EQ(noop_record.new_epoch, noop_record.position);
  ASSERT_TRUE(wal->Append(noop_record));
  ApplyAndLogWaves(graph, *wal, 1, 62);
  ASSERT_EQ(graph.epoch(), 1u);

  Graph restarted = testing::MakeRandomNetwork(100, 61);
  EXPECT_EQ(wal->ReplayInto(restarted, &error), 2u) << error;
  EXPECT_EQ(restarted.epoch(), 1u);
  EXPECT_TRUE(restarted.Fingerprint() == graph.Fingerprint());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fannr::dynamic
