// BatchSchedule::kLocality (engine/batch_engine.h): grouping jobs by
// P-set signature and pinning groups to worker slots must not change a
// single result byte vs the default dynamic schedule, at any thread
// count, including batches with rejected jobs and value-identical P sets
// at different addresses. Plus the steady-state allocation contract:
// with warm per-worker engines, a whole batch runs with zero FlatHeap
// growths.

#include <algorithm>
#include <bit>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_heap.h"
#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "fann_world.h"
#include "test_util.h"

namespace fannr {
namespace {

void ExpectByteIdentical(const FannResult& a, const FannResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.status, b.status) << label;
  ASSERT_EQ(a.best, b.best) << label;
  ASSERT_EQ(std::bit_cast<uint64_t>(a.distance),
            std::bit_cast<uint64_t>(b.distance))
      << label;
  ASSERT_EQ(a.subset, b.subset) << label;
  ASSERT_EQ(a.gphi_evaluations, b.gphi_evaluations) << label;
  ASSERT_EQ(a.error, b.error) << label;
}

struct Workload {
  std::deque<IndexedVertexSet> sets;
  std::vector<FannrQuery> jobs;
};

// The locality-relevant shape: many jobs over FEW distinct P sets
// (so groups are real), two of which are value-identical at different
// addresses (same signature, merged group), plus a malformed job that
// is rejected at screening (must be skipped by the grouping), plus a
// singleton P (its own group).
Workload MakeSharedPWorkload(const Graph& graph, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  const auto p1_members = testing::SampleVertices(graph, 24, rng);
  const auto& p1 = w.sets.emplace_back(graph.NumVertices(), p1_members);
  // Same members, reversed insertion order, distinct address: the sorted
  // signature must still land it in p1's group.
  auto p1_reversed = p1_members;
  std::reverse(p1_reversed.begin(), p1_reversed.end());
  const auto& p1_alias =
      w.sets.emplace_back(graph.NumVertices(), p1_reversed);
  const auto& p2 = w.sets.emplace_back(
      graph.NumVertices(), testing::SampleVertices(graph, 16, rng));
  const auto& p3 = w.sets.emplace_back(
      graph.NumVertices(), testing::SampleVertices(graph, 4, rng));
  const auto& empty_q =
      w.sets.emplace_back(graph.NumVertices(), std::vector<VertexId>{});

  const IndexedVertexSet* ps[] = {&p1, &p1_alias, &p1, &p2, &p3, &p1_alias,
                                  &p2, &p1};
  for (int i = 0; i < 24; ++i) {
    const auto& q = w.sets.emplace_back(
        graph.NumVertices(), testing::SampleVertices(graph, 8, rng));
    FannrQuery job;
    job.query = FannQuery{&graph, ps[i % 8], &q, 0.5,
                          i % 2 == 0 ? Aggregate::kSum : Aggregate::kMax};
    job.algorithm = FannAlgorithm::kGd;
    w.jobs.push_back(job);
  }
  // Malformed: empty Q, rejected at screening.
  FannrQuery bad;
  bad.query = FannQuery{&graph, &p1, &empty_q, 0.5, Aggregate::kSum};
  bad.algorithm = FannAlgorithm::kGd;
  w.jobs.push_back(bad);
  return w;
}

TEST(BatchScheduleTest, LocalityScheduleIsByteIdenticalToDynamic) {
  const auto& world = testing::FannWorld::Get();
  const Workload workload = MakeSharedPWorkload(world.graph(), 0x10CA117Au);

  BatchOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.share_distance_cache = false;
  BatchQueryEngine sequential(world.Resources(), reference_options);
  const auto reference = sequential.Run(workload.jobs);
  ASSERT_EQ(reference.size(), workload.jobs.size());
  ASSERT_EQ(reference.back().status, QueryStatus::kRejected);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (BatchSchedule schedule :
         {BatchSchedule::kDynamic, BatchSchedule::kLocality}) {
      BatchOptions options;
      options.num_threads = threads;
      options.schedule = schedule;
      BatchQueryEngine engine(world.Resources(), options);
      // Two runs per engine: the second hits a warm shared cache.
      for (int run = 0; run < 2; ++run) {
        const auto got = engine.Run(workload.jobs);
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
          ExpectByteIdentical(
              got[i], reference[i],
              "threads " + std::to_string(threads) + " schedule " +
                  (schedule == BatchSchedule::kLocality ? "locality"
                                                        : "dynamic") +
                  " run " + std::to_string(run) + " job " + std::to_string(i));
        }
      }
    }
  }
}

TEST(BatchScheduleTest, LocalityScheduleAnswersMixedAlgorithmBatches) {
  // IER jobs pull the R-tree built at screening; rejected and runnable
  // jobs interleave. The locality path must route all of it like the
  // dynamic path does.
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Workload w;
  Rng rng(77u);
  const auto& p = w.sets.emplace_back(graph.NumVertices(),
                                      testing::SampleVertices(graph, 20, rng));
  for (FannAlgorithm algorithm :
       {FannAlgorithm::kNaive, FannAlgorithm::kGd, FannAlgorithm::kRList,
        FannAlgorithm::kIer}) {
    const auto& q = w.sets.emplace_back(
        graph.NumVertices(), testing::SampleVertices(graph, 6, rng));
    FannrQuery job;
    job.query = FannQuery{&graph, &p, &q, 0.5, Aggregate::kMax};
    job.algorithm = algorithm;
    w.jobs.push_back(job);
  }

  BatchOptions reference_options;
  reference_options.num_threads = 1;
  BatchQueryEngine sequential(world.Resources(), reference_options);
  const auto reference = sequential.Run(w.jobs);

  BatchOptions options;
  options.num_threads = 4;
  options.schedule = BatchSchedule::kLocality;
  BatchQueryEngine engine(world.Resources(), options);
  const auto got = engine.Run(w.jobs);
  ASSERT_EQ(got.size(), reference.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].status, QueryStatus::kOk) << "job " << i;
    ExpectByteIdentical(got[i], reference[i], "job " + std::to_string(i));
  }
}

TEST(BatchScheduleTest, WarmEngineRunsBatchesWithZeroHeapGrowths) {
  // The allocation contract behind the thread-scaling gate: after one
  // warmup batch, the persistent per-worker search state (FlatHeap
  // frontiers, SSSP scratch) is fully grown, and a repeat batch performs
  // ZERO FlatHeap growths. One worker keeps the job-to-engine mapping
  // deterministic, so this cannot flake on worker wakeup order.
  const auto& world = testing::FannWorld::Get();
  const Workload workload = MakeSharedPWorkload(world.graph(), 0xA110Cu);

  BatchOptions options;
  options.num_threads = 1;
  options.share_distance_cache = false;  // every solve does real SSSP work
  options.schedule = BatchSchedule::kLocality;
  BatchQueryEngine engine(world.Resources(), options);

  engine.Run(workload.jobs);  // warmup: heaps grow to workload size here
  const uint64_t grows_before = FlatHeapAllocStats().grows;
  for (int run = 0; run < 3; ++run) {
    const auto got = engine.Run(workload.jobs);
    ASSERT_EQ(got.size(), workload.jobs.size());
  }
  EXPECT_EQ(FlatHeapAllocStats().grows, grows_before)
      << "steady-state batches must not grow any FlatHeap";
}

}  // namespace
}  // namespace fannr
