#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "test_util.h"

namespace fannr {
namespace {

Graph TwoComponents() {
  // Component A: 0-1-2 (3 vertices), component B: 3-4 (2 vertices).
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(3, 4, 1.0);
  return builder.Build();
}

TEST(ComponentsTest, CountsComponents) {
  Graph g = TwoComponents();
  ComponentLabeling cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 2u);
  EXPECT_EQ(cc.label[0], cc.label[1]);
  EXPECT_EQ(cc.label[1], cc.label[2]);
  EXPECT_EQ(cc.label[3], cc.label[4]);
  EXPECT_NE(cc.label[0], cc.label[3]);
}

TEST(ComponentsTest, IsolatedVerticesAreOwnComponents) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build();
  EXPECT_EQ(ConnectedComponents(g).num_components, 2u);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, ExtractLargestKeepsBiggerSide) {
  Graph g = TwoComponents();
  LargestComponent lc = ExtractLargestComponent(g);
  EXPECT_EQ(lc.graph.NumVertices(), 3u);
  EXPECT_EQ(lc.graph.NumEdges(), 2u);
  ASSERT_EQ(lc.new_to_old.size(), 3u);
  EXPECT_EQ(lc.new_to_old[0], 0u);
  EXPECT_EQ(lc.new_to_old[1], 1u);
  EXPECT_EQ(lc.new_to_old[2], 2u);
  EXPECT_TRUE(IsConnected(lc.graph));
}

TEST(ComponentsTest, ExtractPreservesCoordinates) {
  GraphBuilder builder;
  VertexId a = builder.AddVertex(Point{0.0, 0.0});
  VertexId b = builder.AddVertex(Point{1.0, 0.0});
  VertexId c = builder.AddVertex(Point{9.0, 9.0});  // isolated
  (void)c;
  builder.AddEdge(a, b, 1.5);
  Graph g = builder.Build();
  LargestComponent lc = ExtractLargestComponent(g);
  ASSERT_TRUE(lc.graph.HasCoordinates());
  EXPECT_EQ(lc.graph.NumVertices(), 2u);
  EXPECT_DOUBLE_EQ(lc.graph.Coord(1).x, 1.0);
}

TEST(ComponentsTest, ConnectedGraphIsItself) {
  Graph g = testing::MakeLineGraph(6);
  EXPECT_TRUE(IsConnected(g));
  LargestComponent lc = ExtractLargestComponent(g);
  EXPECT_EQ(lc.graph.NumVertices(), 6u);
  EXPECT_EQ(lc.graph.NumEdges(), 5u);
}

TEST(ComponentsTest, EmptyGraphIsConnected) {
  Graph g({}, {});
  EXPECT_TRUE(IsConnected(g));
}

}  // namespace
}  // namespace fannr
