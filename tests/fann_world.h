// Shared expensive fixtures for the FANN algorithm tests: one road
// network with all substrate indexes, built once per test binary.

#ifndef FANNR_TESTS_FANN_WORLD_H_
#define FANNR_TESTS_FANN_WORLD_H_

#include <memory>

#include "fann/gphi.h"
#include "graph/graph.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"

namespace fannr::testing {

/// A ~600-vertex network with G-tree, hub labels and CH prebuilt.
class FannWorld {
 public:
  static const FannWorld& Get();

  const Graph& graph() const { return graph_; }
  GphiResources Resources() const {
    GphiResources r;
    r.graph = &graph_;
    r.gtree = gtree_.get();
    r.labels = labels_.get();
    r.ch = ch_.get();
    return r;
  }

 private:
  FannWorld();
  Graph graph_;
  std::unique_ptr<GTree> gtree_;
  std::unique_ptr<HubLabels> labels_;
  std::unique_ptr<ContractionHierarchy> ch_;
};

}  // namespace fannr::testing

#endif  // FANNR_TESTS_FANN_WORLD_H_
