// FannServer lifecycle over real loopback sockets: start, ping, query,
// malformed-frame handling, bounded-admission overload, end-to-end
// deadlines, stale-admission rejection, STATS, and graceful drain. The
// executor gate (ServerConfig::test_execution_gate) makes the
// queue-dependent scenarios deterministic: tests hold the executor,
// arrange the queue, then release.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

// The fd-exhaustion test starves the whole process's fd table, which
// the sanitizer runtimes do not tolerate.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FANNR_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FANNR_UNDER_SANITIZER 1
#endif

namespace fannr::net {
namespace {

/// A held/released gate the executor passes through before each item.
/// The executor dequeues one item and then parks here, so "the gate has
/// been entered N times" is the deterministic signal that N items have
/// left the queue; AwaitEntered lets tests rendezvous on it.
class ExecutorGate {
 public:
  void Hold() {
    std::lock_guard<std::mutex> lock(mu_);
    held_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      held_ = false;
    }
    cv_.notify_all();
  }
  void AwaitEntered(size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= count; });
  }
  std::function<void()> AsHook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return !held_; });
    };
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool held_ = false;
  size_t entered_ = 0;
};

/// Polls the server's queue-depth gauge until it reaches `depth`.
void AwaitQueueDepth(const FannServer& server, double depth) {
  for (int spin = 0; spin < 1000; ++spin) {
    if (server.metrics().Snapshot().gauge("server.queue_depth") >= depth) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "queue depth never reached " << depth;
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerConfig config = {}) {
    graph_ = std::make_unique<Graph>(testing::MakeRandomNetwork(200, 91));
    GphiResources resources;
    resources.graph = graph_.get();
    server_ = std::make_unique<FannServer>(graph_.get(), resources,
                                           std::move(config));
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  WireQuery MakeQuery(uint64_t seed = 11) const {
    Rng rng(seed);
    const std::vector<VertexId> p =
        testing::SampleVertices(*graph_, 12, rng);
    const std::vector<VertexId> q = testing::SampleVertices(*graph_, 6, rng);
    WireQuery query;
    query.algorithm = static_cast<uint8_t>(FannAlgorithm::kGd);
    query.aggregate = static_cast<uint8_t>(Aggregate::kSum);
    query.phi = 0.5;
    query.p = std::vector<uint32_t>(p.begin(), p.end());
    query.q = std::vector<uint32_t>(q.begin(), q.end());
    return query;
  }

  FannClient Connect() {
    FannClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()))
        << client.last_error();
    return client;
  }

  void ShutdownAndWait() {
    server_->RequestShutdown();
    server_->Wait();
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<FannServer> server_;
};

TEST_F(NetServerTest, PingQueryStatsLifecycle) {
  StartServer();
  FannClient client = Connect();
  EXPECT_TRUE(client.Ping()) << client.last_error();

  QueryResponse response;
  ASSERT_TRUE(client.Query(MakeQuery(), response)) << client.last_error();
  EXPECT_EQ(response.result.status, static_cast<uint8_t>(QueryStatus::kOk));
  EXPECT_NE(response.result.best, 0xFFFFFFFFu);
  EXPECT_EQ(response.graph_epoch, 0u);

  std::string stats;
  ASSERT_TRUE(client.Stats(stats)) << client.last_error();
  EXPECT_NE(stats.find("\"server.requests.query\": 1"), std::string::npos)
      << stats;
  ShutdownAndWait();
}

TEST_F(NetServerTest, BatchAnswersEveryJobInOrder) {
  StartServer();
  FannClient client = Connect();
  BatchRequest request;
  request.jobs = {MakeQuery(1), MakeQuery(2), MakeQuery(3)};
  request.jobs[1].p = {0, 0};  // duplicate ids: must reject, not abort
  BatchResponse response;
  ASSERT_TRUE(client.Batch(request, response)) << client.last_error();
  ASSERT_EQ(response.results.size(), 3u);
  EXPECT_EQ(response.results[0].status,
            static_cast<uint8_t>(QueryStatus::kOk));
  EXPECT_EQ(response.results[1].status,
            static_cast<uint8_t>(QueryStatus::kRejected));
  EXPECT_NE(response.results[1].error.find("duplicate"), std::string::npos);
  EXPECT_EQ(response.results[2].status,
            static_cast<uint8_t>(QueryStatus::kOk));
  ShutdownAndWait();
}

TEST_F(NetServerTest, OutOfRangeAndUnknownEnumeratorsRejected) {
  StartServer();
  FannClient client = Connect();

  WireQuery bad_ids = MakeQuery();
  bad_ids.q.push_back(static_cast<uint32_t>(graph_->NumVertices()));
  QueryResponse response;
  ASSERT_TRUE(client.Query(bad_ids, response)) << client.last_error();
  EXPECT_EQ(response.result.status,
            static_cast<uint8_t>(QueryStatus::kRejected));
  EXPECT_NE(response.result.error.find("out of range"), std::string::npos);

  WireQuery bad_algorithm = MakeQuery();
  bad_algorithm.algorithm = 200;
  ASSERT_TRUE(client.Query(bad_algorithm, response)) << client.last_error();
  EXPECT_EQ(response.result.status,
            static_cast<uint8_t>(QueryStatus::kRejected));
  EXPECT_NE(response.result.error.find("algorithm"), std::string::npos);
  ShutdownAndWait();
}

// --- malformed frames over a raw socket -----------------------------------

TEST_F(NetServerTest, BadMagicClosesConnectionServerSurvives) {
  StartServer();
  std::string error;
  Socket raw = TcpConnect("127.0.0.1", server_->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 1, {});
  frame[0] ^= 0xFF;  // corrupt the magic
  ASSERT_TRUE(raw.WriteFull(frame.data(), frame.size()));
  uint8_t byte;
  bool eof = false;
  EXPECT_FALSE(raw.ReadFull(&byte, 1, &eof));  // closed, no reply

  // The server is still healthy for well-formed clients.
  FannClient client = Connect();
  EXPECT_TRUE(client.Ping()) << client.last_error();
  EXPECT_EQ(server_->metrics().Snapshot().counter("server.bad_frames"), 1u);
  ShutdownAndWait();
}

TEST_F(NetServerTest, WrongVersionAnsweredInBand) {
  StartServer();
  std::string error;
  Socket raw = TcpConnect("127.0.0.1", server_->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 9, {});
  frame[4] ^= 0x02;  // corrupt the version field
  ASSERT_TRUE(raw.WriteFull(frame.data(), frame.size()));

  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(raw.ReadFull(header_bytes, sizeof(header_bytes)));
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(header_bytes, header));
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kError));
  EXPECT_EQ(header.request_id, 9u);
  std::vector<uint8_t> payload(header.payload_length);
  ASSERT_TRUE(raw.ReadFull(payload.data(), payload.size()));
  ErrorResponse response;
  ASSERT_TRUE(DecodeErrorResponse(payload, response));
  EXPECT_EQ(response.code, ErrorCode::kUnsupportedVersion);

  // Same connection keeps working at the right version.
  frame = EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 10, {});
  ASSERT_TRUE(raw.WriteFull(frame.data(), frame.size()));
  ASSERT_TRUE(raw.ReadFull(header_bytes, sizeof(header_bytes)));
  ASSERT_TRUE(DecodeFrameHeader(header_bytes, header));
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kPong));
  ShutdownAndWait();
}

TEST_F(NetServerTest, MalformedPayloadAnsweredInBand) {
  StartServer();
  std::string error;
  Socket raw = TcpConnect("127.0.0.1", server_->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  const std::vector<uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), 4, junk);
  ASSERT_TRUE(raw.WriteFull(frame.data(), frame.size()));

  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(raw.ReadFull(header_bytes, sizeof(header_bytes)));
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(header_bytes, header));
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kError));
  std::vector<uint8_t> payload(header.payload_length);
  ASSERT_TRUE(raw.ReadFull(payload.data(), payload.size()));
  ErrorResponse response;
  ASSERT_TRUE(DecodeErrorResponse(payload, response));
  EXPECT_EQ(response.code, ErrorCode::kMalformedPayload);
  ShutdownAndWait();
}

TEST_F(NetServerTest, UnknownOpcodeAnsweredInBand) {
  StartServer();
  std::string error;
  Socket raw = TcpConnect("127.0.0.1", server_->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  const std::vector<uint8_t> frame = EncodeFrame(0x42, 5, {});
  ASSERT_TRUE(raw.WriteFull(frame.data(), frame.size()));
  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(raw.ReadFull(header_bytes, sizeof(header_bytes)));
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(header_bytes, header));
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kError));
  std::vector<uint8_t> payload(header.payload_length);
  ASSERT_TRUE(raw.ReadFull(payload.data(), payload.size()));
  ErrorResponse response;
  ASSERT_TRUE(DecodeErrorResponse(payload, response));
  EXPECT_EQ(response.code, ErrorCode::kUnknownOpcode);
  ShutdownAndWait();
}

// --- bounded admission ----------------------------------------------------

TEST_F(NetServerTest, FullQueueShedsWithOverloaded) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.max_queue_depth = 2;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  // Three clients admitted one at a time: the executor dequeues the
  // first and parks at the gate, the other two fill the depth-2 queue.
  // (Sent concurrently, a filler could itself be shed before the
  // executor dequeues — each send waits for its predecessor to land.)
  std::vector<std::thread> fillers;
  std::atomic<size_t> answered{0};
  auto send_filler = [&](size_t i) {
    fillers.emplace_back([&, i] {
      FannClient filler = Connect();
      QueryResponse response;
      if (filler.Query(MakeQuery(100 + i), response)) {
        answered.fetch_add(1);
      }
    });
  };
  send_filler(0);
  gate.AwaitEntered(1);  // filler 0 is held by the executor
  send_filler(1);
  AwaitQueueDepth(*server_, 1.0);
  send_filler(2);
  AwaitQueueDepth(*server_, 2.0);

  FannClient shed = Connect();
  QueryResponse response;
  EXPECT_FALSE(shed.Query(MakeQuery(999), response));
  EXPECT_EQ(shed.last_error_code(), ErrorCode::kOverloaded)
      << shed.last_error();
  EXPECT_GE(server_->metrics().Snapshot().counter("server.overloaded"), 1u);

  gate.Release();
  for (std::thread& t : fillers) t.join();
  EXPECT_EQ(answered.load(), 3u) << "queued work must still be answered";
  ShutdownAndWait();
}

// --- deadlines ------------------------------------------------------------

TEST_F(NetServerTest, QueueWaitCountsAgainstDeadline) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  WireQuery query = MakeQuery();
  query.deadline_ms = 30.0;  // will expire while the gate is held

  std::thread sender([&] {
    FannClient client = Connect();
    QueryResponse response;
    ASSERT_TRUE(client.Query(query, response)) << client.last_error();
    EXPECT_EQ(response.result.status,
              static_cast<uint8_t>(QueryStatus::kTimedOut));
    EXPECT_NE(response.result.error.find("admission queue"),
              std::string::npos)
        << response.result.error;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  gate.Release();
  sender.join();
  EXPECT_GE(server_->metrics().Snapshot().counter("server.requests.query"),
            1u);
  ShutdownAndWait();
}

TEST_F(NetServerTest, ServerDefaultDeadlineApplies) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.default_deadline_ms = 25.0;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  std::thread sender([&] {
    FannClient client = Connect();
    QueryResponse response;
    ASSERT_TRUE(client.Query(MakeQuery(), response)) << client.last_error();
    EXPECT_EQ(response.result.status,
              static_cast<uint8_t>(QueryStatus::kTimedOut));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  gate.Release();
  sender.join();
  ShutdownAndWait();
}

// --- stale admission ------------------------------------------------------

TEST_F(NetServerTest, EpochAdvanceBetweenAdmissionAndExecutionRejects) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  // The update is dequeued first and parks at the gate; the query is
  // then admitted at epoch 0 behind it. FIFO guarantees the update
  // applies before the query executes, so the query must be rejected at
  // epoch 1 with the engine's canonical mid-batch reason.
  std::thread updater([&] {
    FannClient client = Connect();
    UpdateWeightsRequest request;
    const auto [u, w] = *graph_->Neighbors(0).begin();
    request.entries.push_back({0, u, w * 2.0});
    UpdateWeightsResponse response;
    ASSERT_TRUE(client.UpdateWeights(request, response))
        << client.last_error();
    EXPECT_EQ(response.status, 0);
    EXPECT_EQ(response.new_epoch, 1u);
  });
  gate.AwaitEntered(1);  // the update is held by the executor

  std::thread querier([&] {
    FannClient client = Connect();
    QueryResponse response;
    ASSERT_TRUE(client.Query(MakeQuery(), response)) << client.last_error();
    EXPECT_EQ(response.result.status,
              static_cast<uint8_t>(QueryStatus::kRejected));
    EXPECT_NE(response.result.error.find("epoch advanced mid-batch"),
              std::string::npos)
        << response.result.error;
    EXPECT_EQ(response.graph_epoch, 1u);

    // The documented contract: re-submitting succeeds under the new epoch.
    QueryResponse retry;
    ASSERT_TRUE(client.Query(MakeQuery(), retry)) << client.last_error();
    EXPECT_EQ(retry.result.status, static_cast<uint8_t>(QueryStatus::kOk));
    EXPECT_EQ(retry.graph_epoch, 1u);
  });
  AwaitQueueDepth(*server_, 1.0);  // the query is queued behind the update
  gate.Release();
  updater.join();
  querier.join();
  EXPECT_EQ(
      server_->metrics().Snapshot().counter("server.rejected_stale_admission"),
      1u);
  ShutdownAndWait();
}

// --- graceful drain -------------------------------------------------------

TEST_F(NetServerTest, ShutdownFrameDrainsQueuedWork) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  // One item held at the gate, two more queued behind it.
  std::vector<std::thread> senders;
  std::atomic<size_t> ok{0};
  for (size_t i = 0; i < 3; ++i) {
    senders.emplace_back([&, i] {
      FannClient client = Connect();
      QueryResponse response;
      if (client.Query(MakeQuery(200 + i), response) &&
          response.result.status == static_cast<uint8_t>(QueryStatus::kOk)) {
        ok.fetch_add(1);
      }
    });
  }
  gate.AwaitEntered(1);
  AwaitQueueDepth(*server_, 2.0);

  FannClient admin = Connect();
  ASSERT_TRUE(admin.Shutdown()) << admin.last_error();
  for (int spin = 0; spin < 200 && !server_->draining(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(server_->draining());

  // Let Wait() start the drain (join the accept thread, arm the timer,
  // set the executor stop flag) while the executor is still parked at
  // the gate, so all three items finish as *drained* work.
  DrainStats stats;
  std::thread wait_thread([&] { stats = server_->Wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Release();
  wait_thread.join();
  for (std::thread& t : senders) t.join();

  EXPECT_EQ(ok.load(), 3u) << "drain must answer the queued work";
  EXPECT_EQ(stats.drained_items, 3u);
  EXPECT_EQ(stats.aborted_items, 0u);
  EXPECT_TRUE(stats.within_deadline);
  EXPECT_NE(stats.final_stats_json.find("\"draining\": true"),
            std::string::npos);
}

TEST_F(NetServerTest, DrainDeadlineAbortsRemainingItems) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.drain_deadline_ms = 0.0;  // everything queued is already late
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  // One item held at the gate, one queued behind it.
  std::vector<std::thread> senders;
  std::atomic<size_t> shutting_down{0};
  for (size_t i = 0; i < 2; ++i) {
    senders.emplace_back([&, i] {
      FannClient client = Connect();
      QueryResponse response;
      if (!client.Query(MakeQuery(300 + i), response) &&
          client.last_error_code() == ErrorCode::kShuttingDown) {
        shutting_down.fetch_add(1);
      }
    });
  }
  gate.AwaitEntered(1);
  AwaitQueueDepth(*server_, 1.0);

  server_->RequestShutdown();
  // Hold the gate until the drain is well past its (zero) deadline, so
  // both items — including the one dequeued before the drain began —
  // are aborted, not computed.
  DrainStats stats;
  std::thread wait_thread([&] { stats = server_->Wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Release();
  wait_thread.join();
  for (std::thread& t : senders) t.join();

  EXPECT_EQ(stats.aborted_items, 2u);
  EXPECT_EQ(stats.drained_items, 0u);
  EXPECT_FALSE(stats.within_deadline);
  EXPECT_EQ(shutting_down.load(), 2u)
      << "aborted items must still get an explicit SHUTTING_DOWN answer";
}

TEST_F(NetServerTest, RequestShutdownIsIdempotent) {
  StartServer();
  server_->RequestShutdown();
  server_->RequestShutdown();
  server_->RequestShutdown();
  const DrainStats stats = server_->Wait();
  EXPECT_TRUE(stats.within_deadline);
}

TEST_F(NetServerTest, RequestShutdownFloodNeverLosesTheWake) {
  StartServer();
  // A pipe-backed wake drops writes once 64 KiB of unconsumed bytes
  // accumulate; 100k racing requests from several threads would exceed
  // that many times over. The eventfd wake must still shut down
  // promptly — the test timeout is the regression detector.
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&] {
      for (int i = 0; i < 25'000; ++i) server_->RequestShutdown();
    });
  }
  for (std::thread& t : hammers) t.join();
  const DrainStats stats = server_->Wait();
  EXPECT_TRUE(stats.within_deadline);
}

// --- connection lifecycle hygiene -----------------------------------------

TEST_F(NetServerTest, ConnectionChurnDoesNotAccumulateThreads) {
  StartServer();
  // 60 connect → query → disconnect cycles. Finished reader threads are
  // reaped as later connections arrive, so tracked threads stay bounded
  // by the (tiny) live set instead of growing with total connections
  // served.
  for (size_t i = 0; i < 60; ++i) {
    FannClient client = Connect();
    QueryResponse response;
    ASSERT_TRUE(client.Query(MakeQuery(500 + i), response))
        << client.last_error();
    client.Close();
  }
  // The last few closes may not have been followed by an accept (which
  // is what triggers a reap); everything before must have been.
  EXPECT_LE(server_->tracked_connection_threads(), 4u)
      << "finished connection threads are accumulating";
  EXPECT_EQ(server_->metrics().Snapshot().counter("server.connections"), 60u);
  ShutdownAndWait();
}

TEST_F(NetServerTest, MidResponseDisconnectDoesNotKillServer) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  // The query is dequeued and held at the gate; the client then
  // vanishes. When the executor finally writes the response, the peer
  // is gone — the send must fail with EPIPE/ECONNRESET, not raise a
  // process-killing SIGPIPE.
  {
    std::string error;
    Socket raw = TcpConnect("127.0.0.1", server_->port(), &error);
    ASSERT_TRUE(raw.valid()) << error;
    const std::vector<uint8_t> frame =
        EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), 77,
                    EncodeQueryRequest({MakeQuery()}));
    ASSERT_TRUE(raw.WriteFull(frame.data(), frame.size()));
    gate.AwaitEntered(1);  // the executor holds this request
    raw.Close();           // disconnect between request and response
  }
  gate.Release();

  // The server is still alive and serving.
  FannClient client = Connect();
  EXPECT_TRUE(client.Ping()) << client.last_error();
  QueryResponse response;
  ASSERT_TRUE(client.Query(MakeQuery(), response)) << client.last_error();
  EXPECT_EQ(response.result.status, static_cast<uint8_t>(QueryStatus::kOk));
  ShutdownAndWait();
}

// --- accept-loop failure handling -----------------------------------------

TEST_F(NetServerTest, FdExhaustionBacksOffAndRecovers) {
#ifdef FANNR_UNDER_SANITIZER
  GTEST_SKIP() << "fd-table exhaustion starves the sanitizer runtime";
#else
  // gtest_discover_tests runs each test in its own process, so the
  // rlimit games below cannot leak into other tests.
  StartServer();
  FannClient control = Connect();
  ASSERT_TRUE(control.Ping()) << control.last_error();

  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit low = saved;
  low.rlim_cur = 256;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);

  // A connecting socket created *before* the table is exhausted: its
  // TCP handshake completes in the kernel's listener backlog without
  // consuming another process fd, so this is the pending connection
  // accept4 will repeatedly fail to take.
  const int pending = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(pending, 0);

  std::vector<int> hogs;
  int hog;
  while ((hog = ::dup(pending)) >= 0) hogs.push_back(hog);
  ASSERT_EQ(errno, EMFILE);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(pending, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);

  // The listener is now readable but every accept4 fails with EMFILE.
  // Under level-triggered epoll an unthrottled loop wakes ~100k times a
  // second here; the backoff bounds it to ~20/s, each failure counted.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const uint64_t errors =
      server_->metrics().Snapshot().counter("server.accept_errors");
  EXPECT_GE(errors, 1u) << "EMFILE accept failure was not counted";
  EXPECT_LT(errors, 100u) << "accept loop is busy-spinning on EMFILE";

  for (int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // Recovery: the parked listener re-arms after the backoff and accepts
  // the connection that waited in the backlog the whole time.
  Socket pending_sock(pending);
  const std::vector<uint8_t> ping =
      EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 31, {});
  ASSERT_TRUE(pending_sock.WriteFull(ping.data(), ping.size()));
  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(pending_sock.ReadFull(header_bytes, sizeof(header_bytes)));
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(header_bytes, header));
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kPong));
  EXPECT_EQ(header.request_id, 31u);

  // Both a fresh connection and the pre-exhaustion one keep working.
  FannClient fresh = Connect();
  EXPECT_TRUE(fresh.Ping()) << fresh.last_error();
  EXPECT_TRUE(control.Ping()) << control.last_error();
  ShutdownAndWait();
#endif
}

// --- transmit faults ------------------------------------------------------

TEST_F(NetServerTest, RoundTripSurvivesInjectedShortWrites) {
  StartServer();
  // Every send(2) in the process — server responses and client requests
  // alike — is capped to 9 bytes with periodic synthetic EINTRs. Frames
  // are much larger than 9 bytes, so any missing short-write
  // continuation desyncs the stream and fails the round-trip.
  ScopedWriteFaultInjection faults({.max_chunk_bytes = 9,
                                    .eintr_period = 6});
  FannClient client = Connect();
  BatchRequest request;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    request.jobs.push_back(MakeQuery(seed));
  }
  BatchResponse response;
  ASSERT_TRUE(client.Batch(request, response)) << client.last_error();
  ASSERT_EQ(response.results.size(), 6u);
  for (const WireResult& result : response.results) {
    EXPECT_EQ(result.status, static_cast<uint8_t>(QueryStatus::kOk));
  }
  ShutdownAndWait();
}

TEST_F(NetServerTest, DrainingServerRefusesNewWork) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  FannClient client = Connect();
  // Connect() returns at TCP-handshake time; a full round-trip proves
  // the server accept()ed and a reader is serving this connection before
  // the accept loop is told to stop.
  ASSERT_TRUE(client.Ping()) << client.last_error();
  server_->RequestShutdown();
  for (int spin = 0; spin < 200 && !server_->draining(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  QueryResponse response;
  EXPECT_FALSE(client.Query(MakeQuery(), response));
  EXPECT_EQ(client.last_error_code(), ErrorCode::kShuttingDown)
      << client.last_error();
  gate.Release();
  server_->Wait();
}

// --- pipelining -----------------------------------------------------------

TEST_F(NetServerTest, PipelinedQueriesAnswerEveryShuffledId) {
  StartServer();
  FannClient client = Connect();

  // 32 queries written back-to-back with shuffled, sparse request ids
  // before a single response is read. Every id must be answered exactly
  // once, correlated by id (not arrival order), and each answer must
  // match what the same query gets over a fresh synchronous connection.
  constexpr size_t kInFlight = 32;
  std::vector<WireQuery> queries;
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < kInFlight; ++i) {
    queries.push_back(MakeQuery(100 + i));
  }
  for (size_t i = 0; i < kInFlight; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendQuery(queries[i], &id)) << client.last_error();
    ids.push_back(id);
  }

  std::map<uint64_t, QueryResponse> by_id;
  for (size_t i = 0; i < kInFlight; ++i) {
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(client.ReadAny(header, payload)) << client.last_error();
    ASSERT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kQueryResult));
    QueryResponse response;
    ASSERT_TRUE(DecodeQueryResponse(payload, response));
    EXPECT_TRUE(by_id.emplace(header.request_id, response).second)
        << "request id " << header.request_id << " answered twice";
  }

  FannClient reference = Connect();
  for (size_t i = 0; i < kInFlight; ++i) {
    auto it = by_id.find(ids[i]);
    ASSERT_NE(it, by_id.end()) << "request id " << ids[i] << " unanswered";
    QueryResponse expected;
    ASSERT_TRUE(reference.Query(queries[i], expected))
        << reference.last_error();
    EXPECT_EQ(it->second.result.status, expected.result.status);
    EXPECT_EQ(it->second.result.best, expected.result.best);
    EXPECT_EQ(it->second.result.distance, expected.result.distance);
  }
  ShutdownAndWait();
}

TEST_F(NetServerTest, PipelinedPingOvertakesHeldWork) {
  ExecutorGate gate;
  gate.Hold();
  ServerConfig config;
  config.test_execution_gate = gate.AsHook();
  StartServer(std::move(config));

  // A QUERY is parked at the executor gate; a PING sent afterwards on
  // the same connection is answered inline by the event loop — the
  // documented out-of-order completion pipelining allows.
  FannClient client = Connect();
  uint64_t query_id = 0;
  uint64_t ping_id = 0;
  ASSERT_TRUE(client.SendQuery(MakeQuery(), &query_id));
  gate.AwaitEntered(1);
  ASSERT_TRUE(client.SendPing(&ping_id));

  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(client.ReadAny(header, payload)) << client.last_error();
  EXPECT_EQ(header.request_id, ping_id) << "PONG did not overtake the query";
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kPong));

  gate.Release();
  ASSERT_TRUE(client.ReadAny(header, payload)) << client.last_error();
  EXPECT_EQ(header.request_id, query_id);
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kQueryResult));
  ShutdownAndWait();
}

TEST_F(NetServerTest, BackpressureBoundsUnreadResponsesWithoutLoss) {
  ServerConfig config;
  // A transmit backlog this small pauses reading after the first few
  // responses queue up un-read; the admission queue must still be deep
  // enough to hold what gets through before the pause.
  config.max_outbound_bytes = 512;
  config.max_queue_depth = 256;
  StartServer(std::move(config));

  FannClient client = Connect();
  constexpr size_t kQueries = 64;
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < kQueries; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendQuery(MakeQuery(50 + i), &id))
        << client.last_error();
    ids.push_back(id);
  }

  // Only now start reading: the server has long since stopped reading
  // this connection (backlog > 512 bytes), and resumes as we drain. No
  // response may be lost or duplicated across the pause/resume cycles.
  std::set<uint64_t> answered;
  for (size_t i = 0; i < kQueries; ++i) {
    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(client.ReadAny(header, payload)) << client.last_error();
    ASSERT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kQueryResult));
    QueryResponse response;
    ASSERT_TRUE(DecodeQueryResponse(payload, response));
    EXPECT_EQ(response.result.status,
              static_cast<uint8_t>(QueryStatus::kOk));
    EXPECT_TRUE(answered.insert(header.request_id).second);
  }
  EXPECT_EQ(answered.size(), kQueries);
  for (uint64_t id : ids) EXPECT_TRUE(answered.count(id)) << id;
  ShutdownAndWait();
}

}  // namespace
}  // namespace fannr::net
