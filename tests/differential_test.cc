// Tests for the differential fuzzing harness itself (src/testing/):
// the scenario generator's coverage of adversarial shapes, the
// serialization round-trip, and a sweep of seeds through the full
// cross-solver checker — the in-suite slice of what tools/fuzz_fannr
// runs at scale.

#include "testing/differential.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fann/gd.h"
#include "graph/builder.h"
#include "testing/scenario.h"

namespace fannr {
namespace {

using testing::AggregateMode;
using testing::DifferentialOptions;
using testing::GenerateScenario;
using testing::ReadScenario;
using testing::RunDifferentialChecks;
using testing::Scenario;
using testing::WriteScenario;

TEST(ScenarioGeneratorTest, IsDeterministic) {
  for (uint64_t seed : {1u, 17u, 58u}) {
    const Scenario a = GenerateScenario(seed);
    const Scenario b = GenerateScenario(seed);
    EXPECT_EQ(a.p, b.p) << "seed " << seed;
    EXPECT_EQ(a.q, b.q) << "seed " << seed;
    EXPECT_EQ(a.phi, b.phi) << "seed " << seed;
    EXPECT_EQ(a.k_results, b.k_results) << "seed " << seed;
    EXPECT_EQ(a.note, b.note) << "seed " << seed;
    EXPECT_EQ(a.graph->NumVertices(), b.graph->NumVertices());
    EXPECT_EQ(a.graph->NumEdges(), b.graph->NumEdges());
  }
}

TEST(ScenarioGeneratorTest, CoversTheAdversarialShapes) {
  std::set<std::string> notes;
  bool saw_phi_one = false;
  bool saw_phi_min = false;
  bool saw_k_results_above_p = false;
  bool saw_weighted = false;
  bool saw_pow2_weighted = false;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    const Scenario s = GenerateScenario(seed);
    notes.insert(s.note);
    if (s.phi == 1.0) saw_phi_one = true;
    if (s.phi <= 1.0 / static_cast<double>(s.q.size()) + 1e-12) {
      saw_phi_min = true;
    }
    if (s.k_results > s.p.size()) saw_k_results_above_p = true;
    if (!s.weights.empty()) {
      ASSERT_EQ(s.weights.size(), s.q.size()) << "seed " << seed;
      saw_weighted = true;
      const bool pow2 = std::all_of(
          s.weights.begin(), s.weights.end(), [](double w) {
            return w == 0.25 || w == 0.5 || w == 1.0 || w == 2.0 || w == 4.0;
          });
      if (pow2) saw_pow2_weighted = true;
    }
  }
  // All five graph shapes must appear in a modest seed range.
  EXPECT_TRUE(notes.count("tie-grid"));
  EXPECT_TRUE(notes.count("jittered-grid"));
  EXPECT_TRUE(notes.count("geometric"));
  EXPECT_TRUE(notes.count("disconnected-tie-grids"));
  EXPECT_TRUE(notes.count("disconnected-mixed"));
  // ... as must the phi and k_results edge cases.
  EXPECT_TRUE(saw_phi_one);
  EXPECT_TRUE(saw_phi_min);
  EXPECT_TRUE(saw_k_results_above_p);
  // ... and both weighted flavors (arbitrary and tie-preserving
  // power-of-two weights).
  EXPECT_TRUE(saw_weighted);
  EXPECT_TRUE(saw_pow2_weighted);
}

TEST(ScenarioSerializationTest, RoundTripsBitwise) {
  bool round_tripped_weights = false;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario original = GenerateScenario(seed);
    std::ostringstream first;
    ASSERT_TRUE(WriteScenario(original, first));
    std::istringstream in(first.str());
    std::string error;
    const auto reparsed = ReadScenario(in, &error);
    ASSERT_TRUE(reparsed.has_value()) << error;
    EXPECT_EQ(reparsed->p, original.p);
    EXPECT_EQ(reparsed->q, original.q);
    EXPECT_EQ(reparsed->phi, original.phi);  // bitwise via %.17g
    EXPECT_EQ(reparsed->k_results, original.k_results);
    EXPECT_EQ(reparsed->weights, original.weights);  // bitwise via %.17g
    if (!original.weights.empty()) round_tripped_weights = true;
    std::ostringstream second;
    ASSERT_TRUE(WriteScenario(*reparsed, second));
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
  // The sweep must have exercised the weights line, not just skipped it.
  EXPECT_TRUE(round_tripped_weights);
}

TEST(ScenarioSerializationTest, RejectsMalformedWeights) {
  // Start from a valid weighted scenario and corrupt only its weights
  // line: non-positive, non-finite, count mismatched with |Q|.
  Scenario weighted;
  for (uint64_t seed = 1; weighted.weights.empty(); ++seed) {
    ASSERT_LE(seed, 200u) << "no weighted scenario in the seed range";
    weighted = GenerateScenario(seed);
  }
  ASSERT_GT(weighted.q.size(), 1u);
  std::ostringstream out;
  ASSERT_TRUE(WriteScenario(weighted, out));
  const std::string good = out.str();
  const size_t line_start = good.find("\nweights ");
  ASSERT_NE(line_start, std::string::npos);
  const size_t value_start = good.find(' ', line_start + 1);
  const size_t line_end = good.find('\n', line_start + 1);
  ASSERT_NE(line_end, std::string::npos);

  const auto parses = [](const std::string& text) {
    std::istringstream in(text);
    return ReadScenario(in).has_value();
  };
  ASSERT_TRUE(parses(good));

  std::string bad = good;
  bad.replace(value_start + 1, line_end - value_start - 1,
              std::to_string(weighted.weights.size()) + " -1.0");
  EXPECT_FALSE(parses(bad)) << "negative weight accepted";

  bad = good;
  bad.replace(value_start + 1, line_end - value_start - 1,
              std::to_string(weighted.weights.size()) + " nan");
  EXPECT_FALSE(parses(bad)) << "non-finite weight accepted";

  bad = good;
  bad.replace(value_start + 1, line_end - value_start - 1, "1 2.0");
  EXPECT_FALSE(parses(bad)) << "weight count != |Q| accepted";
}

TEST(ScenarioSerializationTest, RejectsMalformedInput) {
  for (const char* bad : {
           "",                                  // empty
           "not-a-scenario 1\nend\n",           // wrong magic
           "fannr-scenario 1\ngraph 2 1\n",     // truncated
           "fannr-scenario 1\np 1 7\nend\n",    // p before graph
       }) {
    std::istringstream in(bad);
    std::string error;
    EXPECT_FALSE(ReadScenario(in, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(DifferentialCheckTest, SeededScenariosAreClean) {
  // A miniature fuzz run inside the test suite. The CI fuzz job covers a
  // much larger range; this keeps the invariants wired into ctest.
  DifferentialOptions options;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const auto violations =
        RunDifferentialChecks(GenerateScenario(seed), options);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(DifferentialCheckTest, HandcraftedTieScenarioIsClean) {
  // A 3x3 uniform grid where every P-vertex ties pairwise in g_phi: the
  // canonical (distance, vertex id) order is the only thing that makes
  // solver outputs comparable, so this would catch any tie-break drift.
  GraphBuilder builder;
  const double cell = 1000.0;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      builder.AddVertex({c * cell, r * cell});
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const VertexId u = static_cast<VertexId>(r * 3 + c);
      if (c + 1 < 3) builder.AddEdge(u, u + 1, cell);
      if (r + 1 < 3) builder.AddEdge(u, u + 3, cell);
    }
  }
  Scenario s;
  s.graph = std::make_shared<const Graph>(builder.Build());
  s.p = {0, 2, 6, 8};  // the four corners: symmetric, maximal ties
  s.q = {4, 1, 3, 5, 7};
  s.phi = 0.6;  // k = 3
  s.k_results = 4;
  s.note = "handcrafted corner ties";
  const auto violations = RunDifferentialChecks(s, DifferentialOptions{});
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(DifferentialCheckTest, HandcraftedWeightedScenarioIsClean) {
  // The corner-tie grid again, but weighted: power-of-two weights keep
  // every product w_i * d exact, so the harness's bitwise cross-checks
  // stay live while the weighted SelectAndFold path is exercised
  // end-to-end (oracle matrix scaling, solver filtering, permutation
  // invariance with rotated weights).
  GraphBuilder builder;
  const double cell = 1000.0;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      builder.AddVertex({c * cell, r * cell});
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const VertexId u = static_cast<VertexId>(r * 3 + c);
      if (c + 1 < 3) builder.AddEdge(u, u + 1, cell);
      if (r + 1 < 3) builder.AddEdge(u, u + 3, cell);
    }
  }
  Scenario s;
  s.graph = std::make_shared<const Graph>(builder.Build());
  s.p = {0, 2, 6, 8};
  s.q = {4, 1, 3, 5, 7};
  s.weights = {2.0, 0.5, 1.0, 0.5, 4.0};
  s.phi = 0.6;  // k = 3
  s.k_results = 4;
  s.note = "handcrafted weighted corner ties";
  const auto violations = RunDifferentialChecks(s, DifferentialOptions{});
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(DifferentialCheckTest, CornerTiesAreBitwiseAndWinnerIsMinId) {
  // Asserts the precondition that makes the harness's tie checks live on
  // uniform grids — the four corner data points really do tie bitwise in
  // g_phi — and that the solvers break the tie toward the smallest
  // vertex id, the canonical order every solver must share.
  GraphBuilder builder;
  const double cell = 1000.0;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      builder.AddVertex({c * cell, r * cell});
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const VertexId u = static_cast<VertexId>(r * 3 + c);
      if (c + 1 < 3) builder.AddEdge(u, u + 1, cell);
      if (r + 1 < 3) builder.AddEdge(u, u + 3, cell);
    }
  }
  const Graph graph = builder.Build();
  IndexedVertexSet p(graph.NumVertices(), {0, 2, 6, 8});
  IndexedVertexSet q(graph.NumVertices(), {4, 1, 3, 5, 7});
  GphiResources resources;
  resources.graph = &graph;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  FannQuery query{&graph, &p, &q, 0.6, Aggregate::kSum};
  const FannResult best = SolveGd(query, *engine);
  // All four corners tie bitwise; the deterministic winner is vertex 0.
  EXPECT_EQ(best.best, 0u);
  for (VertexId corner : {2u, 6u, 8u}) {
    GphiResult r = engine->Evaluate(corner, query.FlexSubsetSize(),
                                    Aggregate::kSum);
    EXPECT_EQ(r.distance, best.distance) << "corner " << corner;
  }
}

}  // namespace
}  // namespace fannr
