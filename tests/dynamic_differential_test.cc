// Runs the update-interleaved differential checker (the --dynamic fuzz
// mode) over a fixed seed range: congestion waves mutate each scenario's
// graph between solves, and every solver path — index-free, cached,
// batch engines at several thread counts, stale-index fallback, rebuilt
// index — must agree with a fresh brute-force oracle after every wave.

#include "testing/dynamic_check.h"

#include <gtest/gtest.h>

#include "testing/scenario.h"

namespace fannr::testing {
namespace {

TEST(DynamicDifferentialTest, FixedSeedsClean) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const Scenario scenario = GenerateScenario(seed);
    const std::vector<std::string> violations =
        RunDynamicUpdateChecks(scenario);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.size() << " violations, "
        << "first: " << violations.front();
  }
}

TEST(DynamicDifferentialTest, SingleWaveMinimalOptions) {
  // A reduced configuration (one wave, one thread count) exercising the
  // option plumbing; failures here are easier to localize than in the
  // full sweep above.
  DynamicCheckOptions options;
  options.num_waves = 1;
  options.batch_thread_counts = {2};
  options.check_rebuilt_index = false;
  const Scenario scenario = GenerateScenario(77);
  const std::vector<std::string> violations =
      RunDynamicUpdateChecks(scenario, options);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();
}

}  // namespace
}  // namespace fannr::testing
