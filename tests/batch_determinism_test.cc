// The batch engine's headline invariant: results are byte-identical to
// sequential execution for every algorithm, across seeds and thread
// counts (1, 2, 8), with the shared distance cache hot or cold. Any
// scheduling- or cache-dependence of the answers is a bug this test is
// designed to catch.

#include <bit>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "fann_world.h"
#include "test_util.h"

namespace fannr {
namespace {

void ExpectByteIdentical(const FannResult& a, const FannResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.best, b.best) << label;
  ASSERT_EQ(std::bit_cast<uint64_t>(a.distance),
            std::bit_cast<uint64_t>(b.distance))
      << label;
  ASSERT_EQ(a.subset, b.subset) << label;
  ASSERT_EQ(a.gphi_evaluations, b.gphi_evaluations) << label;
}

struct Workload {
  std::deque<IndexedVertexSet> sets;
  std::vector<FannrQuery> jobs;
};

// Mixed workload: every algorithm on several instances, both aggregates
// and two phi values, all from one seed.
Workload MakeWorkload(const Graph& graph, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) {
    const auto& p = w.sets.emplace_back(
        graph.NumVertices(), testing::SampleVertices(graph, 24, rng));
    const auto& q = w.sets.emplace_back(
        graph.NumVertices(), testing::SampleVertices(graph, 8, rng));
    for (double phi : {0.25, 0.75}) {
      for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
        for (FannAlgorithm algorithm : kAllFannAlgorithms) {
          if (!FannAlgorithmSupports(algorithm, aggregate)) continue;
          FannrQuery job;
          job.query = FannQuery{&graph, &p, &q, phi, aggregate};
          job.algorithm = algorithm;
          w.jobs.push_back(job);
        }
      }
    }
  }
  return w;
}

class BatchDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  const Workload workload = MakeWorkload(graph, GetParam());

  // Sequential execution = the engine pinned to one worker, no sharing.
  BatchOptions sequential_options;
  sequential_options.num_threads = 1;
  sequential_options.share_distance_cache = false;
  BatchQueryEngine sequential(world.Resources(), sequential_options);
  const auto reference = sequential.Run(workload.jobs);
  ASSERT_EQ(reference.size(), workload.jobs.size());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    BatchOptions options;
    options.num_threads = threads;
    BatchQueryEngine engine(world.Resources(), options);
    // Two runs per engine: the second hits a warm shared cache, which
    // must not change a single byte either.
    for (int run = 0; run < 2; ++run) {
      const auto got = engine.Run(workload.jobs);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectByteIdentical(
            got[i], reference[i],
            "seed " + std::to_string(GetParam()) + " threads " +
                std::to_string(threads) + " run " + std::to_string(run) +
                " job " + std::to_string(i) + " (" +
                std::string(FannAlgorithmName(workload.jobs[i].algorithm)) +
                ")");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDeterminismTest,
                         ::testing::Values(11u, 42u, 20260805u));

TEST(ObservationDeterminismTest, ObservationIsBitwiseInvisible) {
  // Point (4) of the engine's determinism invariant: enabling metrics,
  // tracing, and the slow-query log must not change a single result
  // byte (including work counters) at any thread count.
  const auto& world = testing::FannWorld::Get();
  const Workload workload = MakeWorkload(world.graph(), 0x0B5Eu);

  BatchOptions reference_options;
  reference_options.num_threads = 1;
  BatchQueryEngine untraced(world.Resources(), reference_options);
  const auto reference = untraced.Run(workload.jobs);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    BatchOptions options;
    options.num_threads = threads;
    options.enable_metrics = true;
    options.slow_query_threshold_ms = 0.0;  // exercise the log maximally
    BatchQueryEngine traced(world.Resources(), options);
    const auto got = traced.Run(workload.jobs);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectByteIdentical(got[i], reference[i],
                          "observed, threads " + std::to_string(threads) +
                              " job " + std::to_string(i));
      ASSERT_EQ(got[i].status, QueryStatus::kOk);
    }
    // The observation layer really was live for this run.
    EXPECT_EQ(traced.last_traces().size(), workload.jobs.size());
    EXPECT_EQ(traced.metrics()->Snapshot().counter("engine.queries"),
              workload.jobs.size());
  }
}

}  // namespace
}  // namespace fannr
