#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "geo/mbr.h"
#include "sp/dijkstra.h"
#include "test_util.h"
#include "workload/poi.h"

namespace fannr {
namespace {

TEST(WorkloadTest, DataPointDensity) {
  Graph g = testing::MakeRandomNetwork(1000, 1);
  Rng rng(2);
  for (double d : {0.001, 0.01, 0.1, 1.0}) {
    auto p = GenerateDataPoints(g, d, rng);
    const size_t expected = std::max<size_t>(
        1, static_cast<size_t>(d * static_cast<double>(g.NumVertices()) +
                               0.5));
    EXPECT_EQ(p.size(), expected) << "density " << d;
    std::set<VertexId> unique(p.begin(), p.end());
    EXPECT_EQ(unique.size(), p.size());
  }
}

TEST(WorkloadTest, UniformQSizeAndDistinctness) {
  Graph g = testing::MakeRandomNetwork(1000, 3);
  Rng rng(4);
  for (size_t m : {16u, 64u, 128u}) {
    auto q = GenerateUniformQueryPoints(g, 0.1, m, rng);
    EXPECT_EQ(q.size(), m);
    std::set<VertexId> unique(q.begin(), q.end());
    EXPECT_EQ(unique.size(), m);
  }
}

TEST(WorkloadTest, CoverageControlsSpread) {
  Graph g = testing::MakeRandomNetwork(2000, 5);
  // Average over several seeds: small A must produce a tighter Q than
  // large A (measured by coordinate bounding-box area).
  double small_area = 0.0, large_area = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng_small(100 + seed), rng_large(200 + seed);
    auto q_small = GenerateUniformQueryPoints(g, 0.02, 32, rng_small);
    auto q_large = GenerateUniformQueryPoints(g, 0.9, 32, rng_large);
    Mbr b_small, b_large;
    for (VertexId v : q_small) b_small.Extend(g.Coord(v));
    for (VertexId v : q_large) b_large.Extend(g.Coord(v));
    small_area += b_small.Area();
    large_area += b_large.Area();
  }
  EXPECT_LT(small_area, large_area);
}

TEST(WorkloadTest, RegionExpandsWhenTooSmall) {
  Graph g = testing::MakeRandomNetwork(500, 7);
  Rng rng(8);
  // Tiny coverage cannot hold 400 vertices; the generator must expand
  // outward (paper Section VI-A) rather than fail.
  auto q = GenerateUniformQueryPoints(g, 0.001, 400, rng);
  EXPECT_EQ(q.size(), 400u);
}

TEST(WorkloadTest, ClusteredQIsTighterThanUniform) {
  Graph g = testing::MakeRandomNetwork(2000, 9);
  double clustered_area = 0.0, uniform_area = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng_c(300 + seed), rng_u(400 + seed);
    auto q_c = GenerateClusteredQueryPoints(g, 0.5, 64, 2, rng_c);
    auto q_u = GenerateUniformQueryPoints(g, 0.5, 64, rng_u);
    EXPECT_EQ(q_c.size(), 64u);
    std::set<VertexId> unique(q_c.begin(), q_c.end());
    EXPECT_EQ(unique.size(), 64u);
    // Clusters: mean pairwise coordinate spread far below uniform.
    Mbr b_c, b_u;
    for (VertexId v : q_c) b_c.Extend(g.Coord(v));
    for (VertexId v : q_u) b_u.Extend(g.Coord(v));
    clustered_area += b_c.Area();
    uniform_area += b_u.Area();
  }
  EXPECT_LT(clustered_area, uniform_area);
}

TEST(WorkloadTest, ClusterCountSplitsQuota) {
  Graph g = testing::MakeRandomNetwork(1500, 11);
  Rng rng(12);
  for (size_t c : {1u, 2u, 4u, 8u}) {
    auto q = GenerateClusteredQueryPoints(g, 0.5, 64, c, rng);
    EXPECT_EQ(q.size(), 64u) << "clusters " << c;
  }
}

TEST(PoiTest, CategoriesMatchTableIv) {
  auto categories = PaperPoiCategories();
  ASSERT_EQ(categories.size(), 8u);
  EXPECT_EQ(categories[0].name, "PA");
  EXPECT_DOUBLE_EQ(categories[0].density, 0.005);
  EXPECT_EQ(PoiCategoryByName("FF").description, "Fast Food");
  EXPECT_DOUBLE_EQ(PoiCategoryByName("UNI").density, 0.00009);
}

TEST(PoiTest, GeneratedSetsScaleWithDensity) {
  Graph g = testing::MakeRandomNetwork(4000, 13);
  Rng rng(14);
  auto pa = GeneratePoiSet(g, PoiCategoryByName("PA"), rng);
  auto hos = GeneratePoiSet(g, PoiCategoryByName("HOS"), rng);
  EXPECT_GT(pa.size(), hos.size());
  EXPECT_NEAR(static_cast<double>(pa.size()),
              0.005 * static_cast<double>(g.NumVertices()), 2.0);
  std::set<VertexId> unique(pa.begin(), pa.end());
  EXPECT_EQ(unique.size(), pa.size());
}

}  // namespace
}  // namespace fannr
