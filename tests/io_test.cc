#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "test_util.h"

namespace fannr {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "fannr_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, LoadsMinimalGraph) {
  const std::string gr = TempPath("min.gr");
  WriteFile(gr,
            "c comment line\n"
            "p sp 3 4\n"
            "a 1 2 10\n"
            "a 2 1 10\n"
            "a 2 3 20\n"
            "a 3 2 20\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumVertices(), 3u);
  EXPECT_EQ(r.graph->NumEdges(), 2u);  // duplicate arcs merged
  EXPECT_FALSE(r.graph->HasCoordinates());
}

TEST_F(IoTest, LoadsCoordinates) {
  const std::string gr = TempPath("co.gr");
  const std::string co = TempPath("co.co");
  WriteFile(gr, "p sp 2 2\na 1 2 5\na 2 1 5\n");
  WriteFile(co, "v 1 0 0\nv 2 3 4\n");
  LoadResult r = LoadDimacs(gr, co);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.graph->HasCoordinates());
  EXPECT_DOUBLE_EQ(r.graph->Coord(1).x, 3.0);
  EXPECT_DOUBLE_EQ(r.graph->Coord(1).y, 4.0);
  EXPECT_TRUE(r.graph->EuclideanConsistent());
}

TEST_F(IoTest, RejectsMissingFile) {
  LoadResult r = LoadDimacs(TempPath("nonexistent.gr"), "");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

TEST_F(IoTest, RejectsMalformedArc) {
  const std::string gr = TempPath("bad.gr");
  WriteFile(gr, "p sp 2 1\na 1 oops 3\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsOutOfRangeVertex) {
  const std::string gr = TempPath("range.gr");
  WriteFile(gr, "p sp 2 1\na 1 5 3\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsNonPositiveWeight) {
  const std::string gr = TempPath("w0.gr");
  WriteFile(gr, "p sp 2 1\na 1 2 0\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsMissingCoordinate) {
  const std::string gr = TempPath("mc.gr");
  const std::string co = TempPath("mc.co");
  WriteFile(gr, "p sp 2 1\na 1 2 5\n");
  WriteFile(co, "v 1 0 0\n");  // vertex 2 missing
  EXPECT_FALSE(LoadDimacs(gr, co).ok());
}

TEST_F(IoTest, SaveLoadRoundTrip) {
  Graph original = testing::MakeSmallGrid(6, 6);
  const std::string gr = TempPath("rt.gr");
  const std::string co = TempPath("rt.co");
  ASSERT_TRUE(SaveDimacs(original, gr, co, /*coord_scale=*/1000.0));
  LoadResult r = LoadDimacs(gr, co);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumVertices(), original.NumVertices());
  EXPECT_EQ(r.graph->NumEdges(), original.NumEdges());
  ASSERT_TRUE(r.graph->HasCoordinates());
}

TEST_F(IoTest, SelfLoopsInFileAreDropped) {
  const std::string gr = TempPath("loop.gr");
  WriteFile(gr, "p sp 2 2\na 1 1 7\na 1 2 3\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumEdges(), 1u);
}

}  // namespace
}  // namespace fannr
