#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "test_util.h"

namespace fannr {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "fannr_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, LoadsMinimalGraph) {
  const std::string gr = TempPath("min.gr");
  WriteFile(gr,
            "c comment line\n"
            "p sp 3 4\n"
            "a 1 2 10\n"
            "a 2 1 10\n"
            "a 2 3 20\n"
            "a 3 2 20\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumVertices(), 3u);
  EXPECT_EQ(r.graph->NumEdges(), 2u);  // duplicate arcs merged
  EXPECT_FALSE(r.graph->HasCoordinates());
}

TEST_F(IoTest, LoadsCoordinates) {
  const std::string gr = TempPath("co.gr");
  const std::string co = TempPath("co.co");
  WriteFile(gr, "p sp 2 2\na 1 2 5\na 2 1 5\n");
  WriteFile(co, "v 1 0 0\nv 2 3 4\n");
  LoadResult r = LoadDimacs(gr, co);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.graph->HasCoordinates());
  EXPECT_DOUBLE_EQ(r.graph->Coord(1).x, 3.0);
  EXPECT_DOUBLE_EQ(r.graph->Coord(1).y, 4.0);
  EXPECT_TRUE(r.graph->EuclideanConsistent());
}

TEST_F(IoTest, RejectsMissingFile) {
  LoadResult r = LoadDimacs(TempPath("nonexistent.gr"), "");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

TEST_F(IoTest, RejectsMalformedArc) {
  const std::string gr = TempPath("bad.gr");
  WriteFile(gr, "p sp 2 1\na 1 oops 3\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsOutOfRangeVertex) {
  const std::string gr = TempPath("range.gr");
  WriteFile(gr, "p sp 2 1\na 1 5 3\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsNonPositiveWeight) {
  const std::string gr = TempPath("w0.gr");
  WriteFile(gr, "p sp 2 1\na 1 2 0\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsMissingCoordinate) {
  const std::string gr = TempPath("mc.gr");
  const std::string co = TempPath("mc.co");
  WriteFile(gr, "p sp 2 1\na 1 2 5\n");
  WriteFile(co, "v 1 0 0\n");  // vertex 2 missing
  EXPECT_FALSE(LoadDimacs(gr, co).ok());
}

// --- Corrupt-input fixtures for the strict loader ------------------------
// Each rejection must carry the file path and 1-based line number of the
// offending line, so corrupt multi-gigabyte inputs are debuggable.

TEST_F(IoTest, ErrorsNameTheOffendingLine) {
  const std::string gr = TempPath("lineno.gr");
  WriteFile(gr,
            "c fine\n"
            "p sp 2 1\n"
            "a 1 oops 3\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find(gr + ":3:"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("a 1 oops 3"), std::string::npos) << r.error;
}

TEST_F(IoTest, RejectsDuplicateProblemLine) {
  const std::string gr = TempPath("dupp.gr");
  WriteFile(gr, "p sp 2 1\np sp 3 1\na 1 2 5\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("duplicate problem line"), std::string::npos);
  EXPECT_NE(r.error.find(":2:"), std::string::npos) << r.error;
}

TEST_F(IoTest, RejectsArcBeforeProblemLine) {
  const std::string gr = TempPath("early.gr");
  WriteFile(gr, "a 1 2 5\np sp 2 1\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("before the problem line"), std::string::npos);
}

TEST_F(IoTest, RejectsNegativeVertexIdInsteadOfWrapping) {
  // sscanf("%zu") accepts "-1" and silently wraps it to SIZE_MAX, turning
  // a corrupt id into a huge out-of-range one (or worse on a graph with
  // enough vertices). The strict parser rejects the token itself.
  const std::string gr = TempPath("neg.gr");
  WriteFile(gr, "p sp 2 1\na -1 2 3\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("malformed arc line"), std::string::npos) << r.error;
}

TEST_F(IoTest, RejectsTrailingJunkInNumericToken) {
  const std::string gr = TempPath("junk.gr");
  WriteFile(gr, "p sp 2 1\na 1 2x 3\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsNonFiniteWeights) {
  for (const char* bad : {"nan", "inf", "-inf", "NaN", "Infinity"}) {
    const std::string gr = TempPath(std::string("w_") + bad + ".gr");
    WriteFile(gr, std::string("p sp 2 1\na 1 2 ") + bad + "\n");
    LoadResult r = LoadDimacs(gr, "");
    ASSERT_FALSE(r.ok()) << "weight " << bad << " was accepted";
    EXPECT_NE(r.error.find("finite"), std::string::npos) << r.error;
  }
}

TEST_F(IoTest, RejectsNegativeWeight) {
  const std::string gr = TempPath("wneg.gr");
  WriteFile(gr, "p sp 2 1\na 1 2 -5\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("non-positive"), std::string::npos) << r.error;
}

TEST_F(IoTest, RejectsZeroVertexId) {
  // DIMACS ids are 1-based; id 0 would underflow the 0-based conversion.
  const std::string gr = TempPath("zero.gr");
  WriteFile(gr, "p sp 2 1\na 0 2 3\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("ids are 1..2"), std::string::npos) << r.error;
}

TEST_F(IoTest, RejectsZeroDeclaredVertices) {
  const std::string gr = TempPath("empty.gr");
  WriteFile(gr, "p sp 0 0\n");
  EXPECT_FALSE(LoadDimacs(gr, "").ok());
}

TEST_F(IoTest, RejectsUnrecognizedLine) {
  const std::string gr = TempPath("what.gr");
  WriteFile(gr, "p sp 2 1\nx something\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unrecognized"), std::string::npos);
}

TEST_F(IoTest, RejectsDuplicateCoordinate) {
  const std::string gr = TempPath("dupco.gr");
  const std::string co = TempPath("dupco.co");
  WriteFile(gr, "p sp 2 1\na 1 2 5\n");
  WriteFile(co, "v 1 0 0\nv 1 9 9\nv 2 3 4\n");
  LoadResult r = LoadDimacs(gr, co);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("duplicate coordinate"), std::string::npos);
  EXPECT_NE(r.error.find(":2:"), std::string::npos) << r.error;
}

TEST_F(IoTest, RejectsNonFiniteCoordinate) {
  const std::string gr = TempPath("nanco.gr");
  const std::string co = TempPath("nanco.co");
  WriteFile(gr, "p sp 2 1\na 1 2 5\n");
  WriteFile(co, "v 1 nan 0\nv 2 3 4\n");
  EXPECT_FALSE(LoadDimacs(gr, co).ok());
}

TEST_F(IoTest, RejectsOutOfRangeCoordinateVertex) {
  const std::string gr = TempPath("rangeco.gr");
  const std::string co = TempPath("rangeco.co");
  WriteFile(gr, "p sp 2 1\na 1 2 5\n");
  WriteFile(co, "v 3 0 0\n");
  LoadResult r = LoadDimacs(gr, co);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("ids are 1..2"), std::string::npos) << r.error;
}

TEST_F(IoTest, SaveLoadRoundTrip) {
  Graph original = testing::MakeSmallGrid(6, 6);
  const std::string gr = TempPath("rt.gr");
  const std::string co = TempPath("rt.co");
  ASSERT_TRUE(SaveDimacs(original, gr, co, /*coord_scale=*/1000.0));
  LoadResult r = LoadDimacs(gr, co);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumVertices(), original.NumVertices());
  EXPECT_EQ(r.graph->NumEdges(), original.NumEdges());
  ASSERT_TRUE(r.graph->HasCoordinates());
}

TEST_F(IoTest, SelfLoopsInFileAreDropped) {
  const std::string gr = TempPath("loop.gr");
  WriteFile(gr, "p sp 2 2\na 1 1 7\na 1 2 3\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumEdges(), 1u);
}

// --- Parallel (chunked) loading ------------------------------------------
// LoadDimacs with a ThreadPool must be indistinguishable from the
// sequential path: identical graph, identical error strings. Both modes
// share one per-line classifier, and these tests pin that contract.

TEST_F(IoTest, ParallelLoadMatchesSequential) {
  // Large enough (a few MB) that the chunker actually splits the file
  // across workers instead of degenerating to one inline chunk.
  Graph original = testing::MakeSmallGrid(220, 220);
  const std::string gr = TempPath("par.gr");
  const std::string co = TempPath("par.co");
  ASSERT_TRUE(SaveDimacs(original, gr, co, /*coord_scale=*/1000.0));

  LoadResult seq = LoadDimacs(gr, co);
  ASSERT_TRUE(seq.ok()) << seq.error;
  ThreadPool pool(4);
  LoadResult par = LoadDimacs(gr, co, &pool);
  ASSERT_TRUE(par.ok()) << par.error;

  EXPECT_EQ(par.graph->NumVertices(), seq.graph->NumVertices());
  EXPECT_EQ(par.graph->NumEdges(), seq.graph->NumEdges());
  EXPECT_EQ(par.graph->Fingerprint(), seq.graph->Fingerprint());
  ASSERT_TRUE(par.graph->HasCoordinates());
  for (VertexId v = 0; v < par.graph->NumVertices(); ++v) {
    EXPECT_DOUBLE_EQ(par.graph->Coord(v).x, seq.graph->Coord(v).x);
    EXPECT_DOUBLE_EQ(par.graph->Coord(v).y, seq.graph->Coord(v).y);
  }
}

TEST_F(IoTest, ParallelErrorsMatchSequential) {
  // Every corrupt fixture must produce the exact same
  // "<path>:<line>: <message>: '<text>'" string in both modes, including
  // earliest-error-wins when several lines are bad.
  const std::vector<std::string> fixtures = {
      "p sp 2 1\na 1 oops 3\n",
      "p sp 2 1\np sp 3 1\n",
      "a 1 2 5\np sp 2 1\n",
      "p sp 2 1\na 1 5 3\n",
      "p sp 2 1\na 1 2 nan\n",
      "p sp 2 1\na 1 2 0\n",
      "p sp 2 1\nx junk\n",
      "p sp 2 1\na 1 2 3\na 9 9 1\na also bad\n",
  };
  ThreadPool pool(4);
  for (size_t i = 0; i < fixtures.size(); ++i) {
    const std::string gr = TempPath("parerr" + std::to_string(i) + ".gr");
    WriteFile(gr, fixtures[i]);
    LoadResult seq = LoadDimacs(gr, "");
    LoadResult par = LoadDimacs(gr, "", &pool);
    ASSERT_FALSE(seq.ok()) << "fixture " << i;
    ASSERT_FALSE(par.ok()) << "fixture " << i;
    EXPECT_EQ(par.error, seq.error) << "fixture " << i;
  }
}

TEST_F(IoTest, ParallelCoordinateErrorsMatchSequential) {
  const std::string gr = TempPath("parco.gr");
  WriteFile(gr, "p sp 2 1\na 1 2 5\n");
  const std::vector<std::string> fixtures = {
      "v 1 0 0\nv 1 9 9\nv 2 3 4\n",  // duplicate (second occurrence named)
      "v 1 nan 0\nv 2 3 4\n",
      "v 3 0 0\n",
      "v 1 0 0\n",  // vertex 2 missing
  };
  ThreadPool pool(4);
  for (size_t i = 0; i < fixtures.size(); ++i) {
    const std::string co = TempPath("parco" + std::to_string(i) + ".co");
    WriteFile(co, fixtures[i]);
    LoadResult seq = LoadDimacs(gr, co);
    LoadResult par = LoadDimacs(gr, co, &pool);
    ASSERT_FALSE(seq.ok()) << "fixture " << i;
    ASSERT_FALSE(par.ok()) << "fixture " << i;
    EXPECT_EQ(par.error, seq.error) << "fixture " << i;
  }
}

// --- VertexId-space bound (32-bit truncation regression) -----------------
// A declared vertex count above 2^32 - 1 used to truncate when narrowed
// to VertexId, silently remapping every arc. The loader now rejects the
// problem line itself.

TEST_F(IoTest, RejectsMoreVerticesThanVertexIdSpace) {
  const std::string gr = TempPath("huge.gr");
  WriteFile(gr, "p sp 4294967296 1\na 1 2 3\n");
  LoadResult r = LoadDimacs(gr, "");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("more vertices than supported"), std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find(":1:"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace fannr
