// Parameterized option sweeps: the indexes must stay exact under every
// supported configuration (G-tree fanout/leaf capacity, hub-label order
// sampling, CH witness limits, R-tree fanout), and the FANN_R algorithms
// must stay exact on clustered and adversarial workloads.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "fann/fannr.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/dijkstra.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"
#include "spatial/rtree.h"
#include "test_util.h"
#include "workload/workload.h"

namespace fannr {
namespace {

class GTreeOptionsTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(GTreeOptionsTest, ExactUnderFanoutAndCapacity) {
  const auto [fanout, leaf_capacity] = GetParam();
  Graph g = testing::MakeRandomNetwork(350, 801);
  GTree::Options options;
  options.fanout = fanout;
  options.leaf_capacity = leaf_capacity;
  GTree tree = GTree::Build(g, options);
  DijkstraSearch dijkstra(g);
  Rng rng(802);
  for (int i = 0; i < 25; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(tree.Distance(u, v), dijkstra.Distance(u, v), 1e-6)
        << "fanout=" << fanout << " tau=" << leaf_capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GTreeOptionsTest,
    ::testing::Values(std::make_tuple(2u, 8u), std::make_tuple(2u, 64u),
                      std::make_tuple(4u, 8u), std::make_tuple(4u, 128u),
                      std::make_tuple(8u, 16u)),
    [](const auto& info) {
      std::string name = "f";
      name += std::to_string(std::get<0>(info.param));
      name += "_tau";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

class HubLabelOrderTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HubLabelOrderTest, ExactUnderOrderSampleCounts) {
  const size_t samples = GetParam();
  Graph g = testing::MakeRandomNetwork(300, 803);
  HubLabels::Options options;
  options.num_order_samples = samples;
  auto labels = HubLabels::Build(g, options);
  ASSERT_TRUE(labels.has_value());
  DijkstraSearch dijkstra(g);
  Rng rng(804);
  for (int i = 0; i < 20; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(labels->Distance(u, v), dijkstra.Distance(u, v), 1e-9)
        << "samples=" << samples;
  }
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, HubLabelOrderTest,
                         ::testing::Values(0, 1, 4, 32));

TEST(HubLabelOrderTest, MoreSamplesNeverHurtMuch) {
  // Label size with a sampled order should beat the degenerate order
  // (0 samples = arbitrary stable order).
  Graph g = testing::MakeRandomNetwork(600, 805);
  HubLabels::Options none;
  none.num_order_samples = 0;
  HubLabels::Options many;
  many.num_order_samples = 16;
  auto unordered = HubLabels::Build(g, none);
  auto ordered = HubLabels::Build(g, many);
  ASSERT_TRUE(unordered.has_value() && ordered.has_value());
  EXPECT_LT(ordered->TotalLabelEntries(),
            unordered->TotalLabelEntries());
}

class ChWitnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChWitnessTest, ExactUnderWitnessLimits) {
  const size_t limit = GetParam();
  Graph g = testing::MakeRandomNetwork(250, 806);
  ContractionHierarchy::Options options;
  options.witness_settle_limit = limit;
  ContractionHierarchy ch = ContractionHierarchy::Build(g, options);
  DijkstraSearch dijkstra(g);
  Rng rng(807);
  for (int i = 0; i < 20; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(ch.Distance(u, v), dijkstra.Distance(u, v), 1e-6)
        << "witness limit " << limit;
  }
}

// Limit 1 inserts shortcuts aggressively (correct, just larger); large
// limits prune harder.
INSTANTIATE_TEST_SUITE_P(Limits, ChWitnessTest,
                         ::testing::Values(1, 8, 500));

class RTreeFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeFanoutTest, NnOrderingUnderFanouts) {
  const size_t fanout = GetParam();
  Rng rng(808);
  std::vector<RTree::Item> items;
  for (uint32_t i = 0; i < 300; ++i) {
    items.push_back({Point{rng.NextDouble(0.0, 500.0),
                           rng.NextDouble(0.0, 500.0)},
                     i});
  }
  RTree::Options options;
  options.max_entries = fanout;
  options.min_entries = fanout / 2;
  RTree tree = RTree::BulkLoad(items, options);
  Point query{250.0, 250.0};
  auto it = tree.NearestNeighbors(query);
  double prev = -1.0;
  size_t count = 0;
  while (auto hit = it.Next()) {
    EXPECT_GE(hit->distance, prev);
    prev = hit->distance;
    ++count;
  }
  EXPECT_EQ(count, items.size());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(4, 8, 16, 64));

TEST(ClusteredWorkloadTest, AllAlgorithmsExactOnClusteredQ) {
  Graph g = testing::MakeRandomNetwork(500, 809);
  Rng rng(810);
  for (size_t clusters : {2u, 4u}) {
    std::vector<VertexId> p_vec = testing::SampleVertices(g, 40, rng);
    std::vector<VertexId> q_vec =
        GenerateClusteredQueryPoints(g, 0.5, 16, clusters, rng);
    IndexedVertexSet p(g.NumVertices(), p_vec);
    IndexedVertexSet q(g.NumVertices(), q_vec);
    FannQuery query{&g, &p, &q, 0.5, Aggregate::kMax};
    GphiResources resources;
    resources.graph = &g;
    auto engine = MakeGphiEngine(GphiKind::kIne, resources);
    const Weight optimal =
        testing::BruteForceFann(g, p_vec, q_vec, 0.5, Aggregate::kMax)
            .distance;
    EXPECT_NEAR(SolveGd(query, *engine).distance, optimal, 1e-6);
    EXPECT_NEAR(SolveRList(query, *engine).distance, optimal, 1e-6);
    EXPECT_NEAR(SolveExactMax(query).distance, optimal, 1e-6);
    const RTree p_tree = BuildDataPointRTree(g, p);
    EXPECT_NEAR(SolveIer(query, *engine, p_tree).distance, optimal, 1e-6);
  }
}

TEST(SerializeRobustnessTest, GTreeLoadRejectsTruncatedStream) {
  Graph g = testing::MakeRandomNetwork(200, 811);
  GTree::Options options;
  options.leaf_capacity = 16;
  GTree tree = GTree::Build(g, options);
  std::stringstream full;
  ASSERT_TRUE(tree.Save(full));
  const std::string bytes = full.str();
  for (size_t cut : {size_t{4}, bytes.size() / 2, bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(GTree::Load(g, truncated).has_value()) << "cut " << cut;
  }
}

TEST(SerializeRobustnessTest, ChLoadRejectsTruncatedStream) {
  Graph g = testing::MakeRandomNetwork(150, 812);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  std::stringstream full;
  ASSERT_TRUE(ch.Save(full));
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(ContractionHierarchy::Load(g, truncated).has_value());
}

}  // namespace
}  // namespace fannr
