// k-FANN_R property tests (paper Section V): every adapted algorithm must
// return the same distance sequence as the exhaustive top-k reference.

#include "fann/kfann.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fann/exact_max.h"
#include "fann/gd.h"
#include "fann/ier.h"
#include "fann/rlist.h"
#include "fann_world.h"
#include "test_util.h"

namespace fannr {
namespace {

// Exhaustive reference: all candidate distances, sorted.
std::vector<Weight> BruteTopK(const Graph& graph,
                              const std::vector<VertexId>& p,
                              const std::vector<VertexId>& q, double phi,
                              Aggregate aggregate, size_t k_results) {
  const size_t k = FlexK(phi, q.size());
  std::vector<Weight> all;
  for (VertexId candidate : p) {
    const Weight d = testing::BruteGphi(graph, candidate, q, k, aggregate);
    if (d != kInfWeight) all.push_back(d);
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k_results) all.resize(k_results);
  return all;
}

void ExpectDistances(const std::vector<KFannEntry>& got,
                     const std::vector<Weight>& expected,
                     const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expected[i], 1e-6)
        << label << " rank " << i;
  }
  // Sorted ascending and distinct vertices.
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].distance, got[i - 1].distance - 1e-9) << label;
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NE(got[i].vertex, got[j].vertex) << label;
    }
  }
}

class KFannTest : public ::testing::TestWithParam<Aggregate> {};

TEST_P(KFannTest, AllVariantsAgreeWithBruteForce) {
  const Aggregate aggregate = GetParam();
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kPhl, world.Resources());
  Rng rng(61 + static_cast<uint64_t>(aggregate));

  std::vector<VertexId> p_vec = testing::SampleVertices(graph, 50, rng);
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 12, rng);
  IndexedVertexSet p(graph.NumVertices(), p_vec);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  const double phi = 0.5;
  FannQuery query{&graph, &p, &q, phi, aggregate};
  const RTree p_tree = BuildDataPointRTree(graph, p);

  for (size_t k_results : {1u, 5u, 10u}) {
    const auto expected =
        BruteTopK(graph, p_vec, q_vec, phi, aggregate, k_results);
    ExpectDistances(SolveKGd(query, k_results, *engine), expected, "kGD");
    ExpectDistances(SolveKRList(query, k_results, *engine), expected,
                    "kRList");
    ExpectDistances(SolveKIer(query, k_results, *engine, p_tree), expected,
                    "kIER");
    if (aggregate == Aggregate::kMax) {
      ExpectDistances(SolveKExactMax(query, k_results), expected,
                      "kExactMax");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothAggregates, KFannTest,
                         ::testing::Values(Aggregate::kMax,
                                           Aggregate::kSum),
                         [](const auto& info) {
                           return std::string(AggregateName(info.param));
                         });

TEST(KFannTest, KOneMatchesPlainFann) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(67);
  IndexedVertexSet p(graph.NumVertices(),
                     testing::SampleVertices(graph, 30, rng));
  IndexedVertexSet q(graph.NumVertices(),
                     testing::SampleVertices(graph, 8, rng));
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kMax};
  FannResult single = SolveExactMax(query);
  auto top1 = SolveKExactMax(query, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_NEAR(top1[0].distance, single.distance, 1e-9);
  EXPECT_EQ(top1[0].vertex, single.best);
}

TEST(KFannTest, KLargerThanPReturnsEverything) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(71);
  IndexedVertexSet p(graph.NumVertices(),
                     testing::SampleVertices(graph, 6, rng));
  IndexedVertexSet q(graph.NumVertices(),
                     testing::SampleVertices(graph, 8, rng));
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kSum};
  auto all = SolveKGd(query, 100, *engine);
  EXPECT_EQ(all.size(), 6u);
  auto rlist = SolveKRList(query, 100, *engine);
  EXPECT_EQ(rlist.size(), 6u);
}

TEST(KFannTest, SubsetsAreValidPerEntry) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(73);
  IndexedVertexSet p(graph.NumVertices(),
                     testing::SampleVertices(graph, 25, rng));
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 10, rng);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  FannQuery query{&graph, &p, &q, 0.4, Aggregate::kMax};
  const size_t k = query.FlexSubsetSize();
  for (const KFannEntry& entry : SolveKExactMax(query, 5)) {
    ASSERT_EQ(entry.subset.size(), k);
    EXPECT_NEAR(testing::BruteGphi(graph, entry.vertex, q_vec, k,
                                   Aggregate::kMax),
                entry.distance, 1e-6);
    for (VertexId v : entry.subset) EXPECT_TRUE(q.Contains(v));
  }
}

}  // namespace
}  // namespace fannr
