// net/iobuf.h: incremental frame cutting over arbitrary byte cuts.
// These are the invariants the event loop leans on — a frame is never
// consumed until complete, a poisoned stream is flagged without
// consuming (the server closes it), and the byte queue neither loses
// nor reorders bytes across any append/consume interleaving.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "net/iobuf.h"
#include "net/protocol.h"

namespace fannr::net {
namespace {

TEST(ByteQueue, AppendConsumeRoundTripsAcrossCompaction) {
  ByteQueue q;
  std::vector<uint8_t> expected;
  std::vector<uint8_t> drained;
  uint8_t next = 0;
  // Feed 1 MiB through in ragged chunks while draining in different
  // ragged chunks, crossing the compaction threshold many times.
  size_t fed = 0;
  const size_t total = 1 << 20;
  size_t feed_size = 1;
  size_t drain_size = 3;
  while (drained.size() < total) {
    if (fed < total) {
      std::vector<uint8_t> chunk(std::min(feed_size, total - fed));
      for (uint8_t& b : chunk) b = next++;
      expected.insert(expected.end(), chunk.begin(), chunk.end());
      q.Append(chunk.data(), chunk.size());
      fed += chunk.size();
      feed_size = feed_size % 8191 + 1;
    }
    const size_t take = std::min(drain_size, q.size());
    if (take > 0) {
      drained.insert(drained.end(), q.data(), q.data() + take);
      q.Consume(take);
      drain_size = drain_size % 6011 + 1;
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(drained, expected);
}

TEST(ByteQueue, ReleasesCapacityAfterLargeFrameBurst) {
  // Regression: compaction via erase/clear never released vector
  // capacity, so one near-64MiB frame pinned that allocation on the
  // connection for its whole lifetime.
  ByteQueue q;
  const std::vector<uint8_t> big(8u << 20, 0xAB);
  q.Append(big.data(), big.size());
  ASSERT_GE(q.capacity(), big.size());
  q.Consume(q.size());
  EXPECT_TRUE(q.empty());
  EXPECT_LT(q.capacity(), 1u << 20) << "consume retained the big buffer";

  // Same via the mid-stream compaction path: a large consumed prefix
  // with a small live tail must shrink, and the tail must survive.
  std::vector<uint8_t> tail(100);
  std::iota(tail.begin(), tail.end(), uint8_t{1});
  q.Append(big.data(), big.size());
  q.Append(tail.data(), tail.size());
  q.Consume(big.size());
  EXPECT_EQ(q.size(), tail.size());
  EXPECT_LT(q.capacity(), 1u << 20) << "compaction retained the big buffer";
  std::vector<uint8_t> out(q.size());
  q.Peek(out.data(), out.size());
  EXPECT_EQ(out, tail);

  // Clear() is the third retention path (connection close with bytes
  // still queued).
  q.Append(big.data(), big.size());
  q.Clear();
  EXPECT_LT(q.capacity(), 1u << 20) << "Clear retained the big buffer";
}

TEST(ByteQueue, SteadyStateSmallFramesDoNotShrinkThrash) {
  // Small buffers must never reallocate on the shrink path: capacity
  // settles and stays put across thousands of frame-sized cycles.
  ByteQueue q;
  std::vector<uint8_t> frame(512, 0x5A);
  for (int i = 0; i < 100; ++i) {  // warm up with the same cycle
    q.Append(frame.data(), frame.size());
    q.Consume(frame.size());
  }
  const size_t settled = q.capacity();
  for (int i = 0; i < 5000; ++i) {
    q.Append(frame.data(), frame.size());
    q.Consume(frame.size());
  }
  EXPECT_EQ(q.capacity(), settled);
}

TEST(ByteQueue, ShrinkKeepsPipelinedDecodingBitwiseIdentical) {
  // A burst of frames big enough to trigger shrinking, cut via ragged
  // appends, must decode to exactly the same frames as a one-shot
  // feed-then-cut reference.
  std::vector<uint8_t> stream;
  std::vector<std::vector<uint8_t>> expected_payloads;
  for (uint64_t id = 1; id <= 6; ++id) {
    std::vector<uint8_t> payload(id % 2 == 0 ? (1u << 20) : 37);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(id * 31 + i);
    }
    const std::vector<uint8_t> frame =
        EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), id, payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
    expected_payloads.push_back(std::move(payload));
  }

  ByteQueue in;
  size_t fed = 0;
  size_t chunk = 1;
  uint64_t next_id = 1;
  while (next_id <= 6) {
    if (fed < stream.size()) {
      const size_t n = std::min(chunk, stream.size() - fed);
      in.Append(stream.data() + fed, n);
      fed += n;
      chunk = chunk * 7 % 65521 + 1;
    }
    FrameCut cut = CutFrame(in);
    if (cut.kind != FrameCut::Kind::kFrame) continue;
    ASSERT_EQ(cut.header.request_id, next_id);
    EXPECT_EQ(cut.payload, expected_payloads[next_id - 1]);
    ++next_id;
  }
  EXPECT_TRUE(in.empty());
  EXPECT_LT(in.capacity(), 1u << 20);
}

TEST(NetIobuf, CutFrameNeedsWholeFrameBeforeConsuming) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), 42, payload);

  ByteQueue in;
  // Feed the frame one byte at a time: every prefix must report
  // kNeedMore and leave the buffer intact.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    in.Append(&frame[i], 1);
    FrameCut cut = CutFrame(in);
    ASSERT_EQ(cut.kind, FrameCut::Kind::kNeedMore) << "at byte " << i;
    ASSERT_EQ(in.size(), i + 1) << "partial frame was consumed";
  }
  in.Append(&frame.back(), 1);
  FrameCut cut = CutFrame(in);
  ASSERT_EQ(cut.kind, FrameCut::Kind::kFrame);
  EXPECT_EQ(cut.header.opcode, static_cast<uint16_t>(Opcode::kQuery));
  EXPECT_EQ(cut.header.request_id, 42u);
  EXPECT_EQ(cut.payload, payload);
  EXPECT_TRUE(in.empty());
}

TEST(NetIobuf, CutFrameYieldsPipelinedFramesInOrder) {
  ByteQueue in;
  for (uint64_t id = 1; id <= 12; ++id) {
    std::vector<uint8_t> payload(id * 19);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(id + i);
    }
    const std::vector<uint8_t> frame =
        EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), id, payload);
    in.Append(frame.data(), frame.size());
  }
  for (uint64_t id = 1; id <= 12; ++id) {
    FrameCut cut = CutFrame(in);
    ASSERT_EQ(cut.kind, FrameCut::Kind::kFrame) << "frame " << id;
    EXPECT_EQ(cut.header.request_id, id);
    ASSERT_EQ(cut.payload.size(), id * 19);
    EXPECT_EQ(cut.payload[0], static_cast<uint8_t>(id));
  }
  EXPECT_EQ(CutFrame(in).kind, FrameCut::Kind::kNeedMore);
  EXPECT_TRUE(in.empty());
}

TEST(NetIobuf, PoisonedStreamIsFlaggedNotConsumed) {
  std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 7, {});
  frame[0] = 'X';  // corrupt the magic
  ByteQueue in;
  in.Append(frame.data(), frame.size());
  FrameCut cut = CutFrame(in);
  EXPECT_EQ(cut.kind, FrameCut::Kind::kPoisoned);
  EXPECT_FALSE(cut.envelope_error.empty());
  // Nothing consumed: the caller closes the connection, and the bytes
  // are still there for a post-mortem if it wants one.
  EXPECT_EQ(in.size(), frame.size());
}

TEST(NetIobuf, OversizedPayloadPoisonsBeforeBuffering) {
  // A header declaring a payload over the cap must poison immediately —
  // the loop must not wait for (or allocate) 4 GiB first.
  std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), 9, {});
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  ByteQueue in;
  in.Append(frame.data(), kFrameHeaderBytes);  // header only, no payload
  EXPECT_EQ(CutFrame(in).kind, FrameCut::Kind::kPoisoned);
}

TEST(NetIobuf, NonFatalEnvelopeStillCutsTheFrame) {
  // Unknown version: answered in-band by the server, so the cutter must
  // hand the frame over (with the reason) and keep the stream usable.
  std::vector<uint8_t> bad =
      EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 3, {});
  const uint16_t version = 99;
  std::memcpy(bad.data() + 4, &version, sizeof(version));
  const std::vector<uint8_t> good =
      EncodeFrame(static_cast<uint16_t>(Opcode::kPing), 4, {});

  ByteQueue in;
  in.Append(bad.data(), bad.size());
  in.Append(good.data(), good.size());

  FrameCut first = CutFrame(in);
  ASSERT_EQ(first.kind, FrameCut::Kind::kFrame);
  EXPECT_EQ(first.header.version, 99);
  EXPECT_FALSE(first.envelope_error.empty());

  FrameCut second = CutFrame(in);
  ASSERT_EQ(second.kind, FrameCut::Kind::kFrame);
  EXPECT_EQ(second.header.request_id, 4u);
  EXPECT_TRUE(second.envelope_error.empty());
}

}  // namespace
}  // namespace fannr::net
