// The wire-protocol decoders must be total: any byte sequence either
// decodes into a validated struct or returns false — never a crash, an
// out-of-bounds read (the ASan/UBSan CI jobs run this file), or an
// attacker-sized allocation. Style follows corrupt_index_test.cc: build
// a valid artifact, then corrupt every region in turn — truncations,
// oversized declared lengths, bad magic/version/opcode, and a
// single-byte-flip sweep over every payload type.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace fannr::net {
namespace {

WireQuery MakeWireQuery() {
  WireQuery query;
  query.algorithm = 1;
  query.aggregate = 1;
  query.phi = 0.625;
  query.deadline_ms = 40.0;
  query.p = {3, 1, 4, 15, 9, 26};
  query.q = {5, 35, 8, 97, 93};
  // Aligned with q; exactly representable so round-trips are bitwise.
  query.weights = {0.5, 2.0, 1.0, 0.25, 4.0};
  return query;
}

void ExpectWireQueryEq(const WireQuery& a, const WireQuery& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.weights, b.weights);
}

WireResult MakeOkResult() {
  WireResult result;
  result.status = 0;
  result.best = 12;
  result.distance = 345.75;
  result.gphi_evaluations = 99;
  result.subset = {5, 8, 35};
  return result;
}

// One payload type: a valid encoding plus a decoder that returns
// whether the bytes parsed. Type-erased so the corruption sweeps below
// run against every payload format.
struct PayloadKind {
  std::string name;
  std::vector<uint8_t> valid;
  std::function<bool(std::span<const uint8_t>)> decodes;
};

std::vector<PayloadKind> AllPayloadKinds() {
  std::vector<PayloadKind> kinds;

  QueryRequest query_request;
  query_request.query = MakeWireQuery();
  kinds.push_back({"QueryRequest", EncodeQueryRequest(query_request),
                   [](std::span<const uint8_t> bytes) {
                     QueryRequest out;
                     return DecodeQueryRequest(bytes, out);
                   }});

  BatchRequest batch_request;
  batch_request.deadline_ms = 100.0;
  batch_request.jobs = {MakeWireQuery(), MakeWireQuery()};
  batch_request.jobs[1].p = {42};
  kinds.push_back({"BatchRequest", EncodeBatchRequest(batch_request),
                   [](std::span<const uint8_t> bytes) {
                     BatchRequest out;
                     return DecodeBatchRequest(bytes, out);
                   }});

  UpdateWeightsRequest update_request;
  update_request.entries = {{0, 1, 2.5}, {3, 4, 0.125}};
  kinds.push_back({"UpdateWeightsRequest",
                   EncodeUpdateWeightsRequest(update_request),
                   [](std::span<const uint8_t> bytes) {
                     UpdateWeightsRequest out;
                     return DecodeUpdateWeightsRequest(bytes, out);
                   }});

  ReplApplyRequest repl_request;
  repl_request.position = 41;
  repl_request.entries = {{0, 1, 2.5}, {3, 4, 0.125}};
  kinds.push_back({"ReplApplyRequest", EncodeReplApplyRequest(repl_request),
                   [](std::span<const uint8_t> bytes) {
                     ReplApplyRequest out;
                     return DecodeReplApplyRequest(bytes, out);
                   }});

  QueryResponse query_response;
  query_response.graph_epoch = 7;
  query_response.result.status = 0;
  query_response.result.best = 12;
  query_response.result.distance = 345.75;
  query_response.result.gphi_evaluations = 99;
  query_response.result.subset = {5, 8, 35};
  kinds.push_back({"QueryResponse", EncodeQueryResponse(query_response),
                   [](std::span<const uint8_t> bytes) {
                     QueryResponse out;
                     return DecodeQueryResponse(bytes, out);
                   }});

  BatchResponse batch_response;
  batch_response.graph_epoch = 3;
  batch_response.results.resize(2);
  batch_response.results[0].status = 0;
  batch_response.results[0].best = 1;
  batch_response.results[1].status = 1;
  batch_response.results[1].error = "rejected: example";
  kinds.push_back({"BatchResponse", EncodeBatchResponse(batch_response),
                   [](std::span<const uint8_t> bytes) {
                     BatchResponse out;
                     return DecodeBatchResponse(bytes, out);
                   }});

  UpdateWeightsResponse update_response;
  update_response.status = 0;
  update_response.applied = 5;
  update_response.missing = 1;
  update_response.old_epoch = 2;
  update_response.new_epoch = 3;
  kinds.push_back({"UpdateWeightsResponse",
                   EncodeUpdateWeightsResponse(update_response),
                   [](std::span<const uint8_t> bytes) {
                     UpdateWeightsResponse out;
                     return DecodeUpdateWeightsResponse(bytes, out);
                   }});

  UpdateWeightsResponse mismatch_response;
  mismatch_response.status = 2;  // replication position mismatch
  mismatch_response.new_epoch = 9;
  mismatch_response.error = "position 5 does not match graph epoch 9";
  kinds.push_back({"UpdateWeightsResponse(status=2)",
                   EncodeUpdateWeightsResponse(mismatch_response),
                   [](std::span<const uint8_t> bytes) {
                     UpdateWeightsResponse out;
                     return DecodeUpdateWeightsResponse(bytes, out);
                   }});

  StatsResponse stats_response;
  stats_response.json = "{\"graph_epoch\": 3}";
  kinds.push_back({"StatsResponse", EncodeStatsResponse(stats_response),
                   [](std::span<const uint8_t> bytes) {
                     StatsResponse out;
                     return DecodeStatsResponse(bytes, out);
                   }});

  ErrorResponse error_response;
  error_response.code = ErrorCode::kOverloaded;
  error_response.message = "admission queue full";
  kinds.push_back({"ErrorResponse", EncodeErrorResponse(error_response),
                   [](std::span<const uint8_t> bytes) {
                     ErrorResponse out;
                     return DecodeErrorResponse(bytes, out);
                   }});

  SubscribeRequest subscribe_request;
  subscribe_request.query = MakeWireQuery();
  subscribe_request.force_push = 1;
  kinds.push_back({"SubscribeRequest",
                   EncodeSubscribeRequest(subscribe_request),
                   [](std::span<const uint8_t> bytes) {
                     SubscribeRequest out;
                     return DecodeSubscribeRequest(bytes, out);
                   }});

  UnsubscribeRequest unsubscribe_request;
  unsubscribe_request.subscription_id = 0xFEEDFACE01234567ull;
  kinds.push_back({"UnsubscribeRequest",
                   EncodeUnsubscribeRequest(unsubscribe_request),
                   [](std::span<const uint8_t> bytes) {
                     UnsubscribeRequest out;
                     return DecodeUnsubscribeRequest(bytes, out);
                   }});

  SubscribeResponse subscribe_response;
  subscribe_response.graph_epoch = 11;
  subscribe_response.result = MakeOkResult();
  kinds.push_back({"SubscribeResponse",
                   EncodeSubscribeResponse(subscribe_response),
                   [](std::span<const uint8_t> bytes) {
                     SubscribeResponse out;
                     return DecodeSubscribeResponse(bytes, out);
                   }});

  UnsubscribeResponse unsubscribe_response;
  unsubscribe_response.status = 0;
  unsubscribe_response.pushes_sent = 42;
  kinds.push_back({"UnsubscribeResponse",
                   EncodeUnsubscribeResponse(unsubscribe_response),
                   [](std::span<const uint8_t> bytes) {
                     UnsubscribeResponse out;
                     return DecodeUnsubscribeResponse(bytes, out);
                   }});

  PushAnswer push_answer;
  push_answer.graph_epoch = 12;
  push_answer.result = MakeOkResult();
  kinds.push_back({"PushAnswer", EncodePushAnswer(push_answer),
                   [](std::span<const uint8_t> bytes) {
                     PushAnswer out;
                     return DecodePushAnswer(bytes, out);
                   }});

  return kinds;
}

// --- round-trips ----------------------------------------------------------

TEST(NetProtocolTest, QueryRequestRoundTrips) {
  QueryRequest request;
  request.query = MakeWireQuery();
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), decoded));
  ExpectWireQueryEq(request.query, decoded.query);
}

TEST(NetProtocolTest, BatchRequestRoundTrips) {
  BatchRequest request;
  request.deadline_ms = 250.0;
  request.jobs = {MakeWireQuery(), MakeWireQuery(), MakeWireQuery()};
  // An empty-Q job must shed its weights too: the decoder enforces
  // |weights| == |Q| whenever weights are present.
  request.jobs[2].q.clear();
  request.jobs[2].weights.clear();
  BatchRequest decoded;
  ASSERT_TRUE(DecodeBatchRequest(EncodeBatchRequest(request), decoded));
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  ASSERT_EQ(decoded.jobs.size(), request.jobs.size());
  for (size_t i = 0; i < request.jobs.size(); ++i) {
    ExpectWireQueryEq(request.jobs[i], decoded.jobs[i]);
  }
}

TEST(NetProtocolTest, UpdateWeightsRoundTrips) {
  UpdateWeightsRequest request;
  request.entries = {{0, 1, 2.5}, {7, 9, 0.001}};
  UpdateWeightsRequest decoded;
  ASSERT_TRUE(DecodeUpdateWeightsRequest(EncodeUpdateWeightsRequest(request),
                                         decoded));
  ASSERT_EQ(decoded.entries.size(), request.entries.size());
  for (size_t i = 0; i < request.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].u, request.entries[i].u);
    EXPECT_EQ(decoded.entries[i].v, request.entries[i].v);
    EXPECT_EQ(decoded.entries[i].weight, request.entries[i].weight);
  }
}

TEST(NetProtocolTest, ReplApplyRoundTrips) {
  ReplApplyRequest request;
  request.position = 0xABCDEF0123456789ull;
  request.entries = {{0, 1, 2.5}, {7, 9, 0.001}};
  ReplApplyRequest decoded;
  ASSERT_TRUE(DecodeReplApplyRequest(EncodeReplApplyRequest(request),
                                     decoded));
  EXPECT_EQ(decoded.position, request.position);
  ASSERT_EQ(decoded.entries.size(), request.entries.size());
  for (size_t i = 0; i < request.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].u, request.entries[i].u);
    EXPECT_EQ(decoded.entries[i].v, request.entries[i].v);
    EXPECT_EQ(decoded.entries[i].weight, request.entries[i].weight);
  }

  // The empty entry list (a pure position probe) is a valid encoding.
  ReplApplyRequest probe;
  probe.position = 3;
  ReplApplyRequest probe_decoded;
  ASSERT_TRUE(DecodeReplApplyRequest(EncodeReplApplyRequest(probe),
                                     probe_decoded));
  EXPECT_EQ(probe_decoded.position, 3u);
  EXPECT_TRUE(probe_decoded.entries.empty());
}

TEST(NetProtocolTest, PositionMismatchResponseRoundTrips) {
  UpdateWeightsResponse response;
  response.status = 2;
  response.new_epoch = 17;
  response.error = "position 12 does not match graph epoch 17";
  UpdateWeightsResponse decoded;
  ASSERT_TRUE(DecodeUpdateWeightsResponse(
      EncodeUpdateWeightsResponse(response), decoded));
  EXPECT_EQ(decoded.status, 2);
  EXPECT_EQ(decoded.new_epoch, 17u);
  EXPECT_EQ(decoded.error, response.error);
}

TEST(NetProtocolTest, FannResultConvertsLosslessly) {
  FannResult result;
  result.best = 42;
  result.distance = 123.4375;  // exactly representable
  result.gphi_evaluations = 17;
  result.subset = {3, 1, 4};
  result.status = QueryStatus::kOk;
  const FannResult back = FromWire(ToWire(result));
  EXPECT_EQ(back.best, result.best);
  EXPECT_EQ(back.distance, result.distance);  // bitwise: no rounding allowed
  EXPECT_EQ(back.gphi_evaluations, result.gphi_evaluations);
  EXPECT_EQ(back.subset, result.subset);
  EXPECT_EQ(back.status, result.status);

  FannResult rejected;
  rejected.status = QueryStatus::kRejected;
  rejected.error = "example reason";
  const FannResult rejected_back = FromWire(ToWire(rejected));
  EXPECT_EQ(rejected_back.status, QueryStatus::kRejected);
  EXPECT_EQ(rejected_back.error, rejected.error);
}

// --- frame envelope -------------------------------------------------------

TEST(NetProtocolTest, FrameHeaderRoundTrips) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kBatch);
  header.request_id = 0x0123456789ABCDEFull;
  header.payload_length = 4096;
  WireWriter writer;
  EncodeFrameHeader(header, writer);
  const std::vector<uint8_t> bytes = writer.Take();
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);

  FrameHeader decoded;
  ASSERT_TRUE(DecodeFrameHeader(bytes, decoded));
  EXPECT_EQ(decoded.magic, kMagic);
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.opcode, header.opcode);
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.payload_length, header.payload_length);
  bool fatal = true;
  EXPECT_TRUE(FrameEnvelopeError(decoded, &fatal).empty());
}

TEST(NetProtocolTest, TruncatedHeaderRejected) {
  WireWriter writer;
  EncodeFrameHeader(FrameHeader{}, writer);
  const std::vector<uint8_t> bytes = writer.Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    FrameHeader header;
    EXPECT_FALSE(DecodeFrameHeader(
        std::span<const uint8_t>(bytes.data(), len), header))
        << "header decoded from " << len << " bytes";
  }
}

TEST(NetProtocolTest, BadMagicIsFatal) {
  FrameHeader header;
  header.magic = kMagic ^ 1;
  bool fatal = false;
  EXPECT_FALSE(FrameEnvelopeError(header, &fatal).empty());
  EXPECT_TRUE(fatal);
}

TEST(NetProtocolTest, OversizedDeclaredLengthIsFatal) {
  FrameHeader header;
  header.payload_length = kMaxPayloadBytes + 1;
  bool fatal = false;
  EXPECT_FALSE(FrameEnvelopeError(header, &fatal).empty());
  EXPECT_TRUE(fatal) << "an unframeable length must close the connection";
}

TEST(NetProtocolTest, NonzeroReservedIsFatal) {
  FrameHeader header;
  header.reserved = 0xDEADBEEF;
  bool fatal = false;
  EXPECT_FALSE(FrameEnvelopeError(header, &fatal).empty());
  EXPECT_TRUE(fatal);
}

TEST(NetProtocolTest, WrongVersionIsNonFatal) {
  FrameHeader header;
  header.version = kProtocolVersion + 1;
  bool fatal = true;
  EXPECT_FALSE(FrameEnvelopeError(header, &fatal).empty());
  EXPECT_FALSE(fatal) << "version mismatch is answered in-band";
}

TEST(NetProtocolTest, ResponseOpcodesAreNotRequests) {
  EXPECT_TRUE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kQuery)));
  EXPECT_TRUE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kShutdown)));
  EXPECT_TRUE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kSubscribe)));
  EXPECT_TRUE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kUnsubscribe)));
  EXPECT_FALSE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kQueryResult)));
  EXPECT_FALSE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kError)));
  EXPECT_FALSE(
      IsRequestOpcode(static_cast<uint16_t>(Opcode::kSubscribeResult)));
  EXPECT_FALSE(
      IsRequestOpcode(static_cast<uint16_t>(Opcode::kUnsubscribeResult)));
  EXPECT_FALSE(IsRequestOpcode(static_cast<uint16_t>(Opcode::kPushAnswer)))
      << "PUSH_ANSWER is server-to-client only; a client must not be able "
         "to submit one as a request";
  EXPECT_FALSE(IsRequestOpcode(0));
  EXPECT_FALSE(IsRequestOpcode(0x7777));
}

// --- subscription opcodes (PR 10) -----------------------------------------

TEST(NetProtocolTest, SubscribeRequestRoundTrips) {
  for (const uint8_t force_push : {uint8_t{0}, uint8_t{1}}) {
    SubscribeRequest request;
    request.query = MakeWireQuery();
    request.force_push = force_push;
    SubscribeRequest decoded;
    ASSERT_TRUE(
        DecodeSubscribeRequest(EncodeSubscribeRequest(request), decoded));
    ExpectWireQueryEq(request.query, decoded.query);
    EXPECT_EQ(decoded.force_push, force_push);
  }
}

TEST(NetProtocolTest, NonBooleanForcePushRejected) {
  SubscribeRequest request;
  request.query = MakeWireQuery();
  request.force_push = 1;
  std::vector<uint8_t> bytes = EncodeSubscribeRequest(request);
  // force_push is the final byte of the payload.
  bytes.back() = 2;
  SubscribeRequest out;
  EXPECT_FALSE(DecodeSubscribeRequest(bytes, out));
}

TEST(NetProtocolTest, UnsubscribeRoundTrips) {
  UnsubscribeRequest request;
  request.subscription_id = 0x0123456789ABCDEFull;
  UnsubscribeRequest decoded;
  ASSERT_TRUE(
      DecodeUnsubscribeRequest(EncodeUnsubscribeRequest(request), decoded));
  EXPECT_EQ(decoded.subscription_id, request.subscription_id);

  UnsubscribeResponse response;
  response.status = 0;
  response.pushes_sent = 7;
  UnsubscribeResponse decoded_response;
  ASSERT_TRUE(DecodeUnsubscribeResponse(EncodeUnsubscribeResponse(response),
                                        decoded_response));
  EXPECT_EQ(decoded_response.status, 0);
  EXPECT_EQ(decoded_response.pushes_sent, 7u);
}

TEST(NetProtocolTest, UnsubscribeResponseStatusRangeEnforced) {
  UnsubscribeResponse response;
  response.status = 1;  // unknown id
  std::vector<uint8_t> bytes = EncodeUnsubscribeResponse(response);
  bytes[0] = 2;  // outside {0 = removed, 1 = unknown}
  UnsubscribeResponse out;
  EXPECT_FALSE(DecodeUnsubscribeResponse(bytes, out));
}

TEST(NetProtocolTest, SubscribeResponseRoundTrips) {
  SubscribeResponse response;
  response.graph_epoch = 1234567;
  response.result = MakeOkResult();
  SubscribeResponse decoded;
  ASSERT_TRUE(
      DecodeSubscribeResponse(EncodeSubscribeResponse(response), decoded));
  EXPECT_EQ(decoded.graph_epoch, response.graph_epoch);
  EXPECT_EQ(decoded.result.best, response.result.best);
  EXPECT_EQ(decoded.result.distance, response.result.distance);
  EXPECT_EQ(decoded.result.subset, response.result.subset);
}

TEST(NetProtocolTest, PushAnswerRoundTrips) {
  PushAnswer push;
  push.graph_epoch = 99;
  push.result = MakeOkResult();
  PushAnswer decoded;
  ASSERT_TRUE(DecodePushAnswer(EncodePushAnswer(push), decoded));
  EXPECT_EQ(decoded.graph_epoch, 99u);
  EXPECT_EQ(decoded.result.best, push.result.best);
  EXPECT_EQ(decoded.result.distance, push.result.distance);
  EXPECT_EQ(decoded.result.gphi_evaluations, push.result.gphi_evaluations);
  EXPECT_EQ(decoded.result.subset, push.result.subset);

  // An error-carrying push (a subscription whose re-evaluation was
  // rejected) round-trips too.
  PushAnswer rejected;
  rejected.graph_epoch = 100;
  rejected.result.status = 1;
  rejected.result.error = "stale admission epoch";
  PushAnswer rejected_decoded;
  ASSERT_TRUE(DecodePushAnswer(EncodePushAnswer(rejected), rejected_decoded));
  EXPECT_EQ(rejected_decoded.result.status, 1);
  EXPECT_EQ(rejected_decoded.result.error, rejected.result.error);
}

TEST(NetProtocolTest, WeightCountMismatchRejected) {
  // weights must be empty or exactly |q| long; anything else is refused
  // at decode time, before the query can reach the engine.
  WireQuery query = MakeWireQuery();
  query.weights.pop_back();
  QueryRequest request;
  request.query = query;
  QueryRequest out;
  EXPECT_FALSE(DecodeQueryRequest(EncodeQueryRequest(request), out));

  query.weights.clear();
  request.query = query;
  EXPECT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), out));
  EXPECT_TRUE(out.query.weights.empty());
}

TEST(NetProtocolTest, SameVisibleAnswerMatchesDeltaSemantics) {
  const WireResult a = MakeOkResult();
  WireResult b = a;
  EXPECT_TRUE(SameVisibleAnswer(a, b));

  // gphi_evaluations is cost accounting, not part of the visible answer.
  b.gphi_evaluations = a.gphi_evaluations + 5;
  EXPECT_TRUE(SameVisibleAnswer(a, b));

  b = a;
  b.distance = a.distance + 1.0;
  EXPECT_FALSE(SameVisibleAnswer(a, b));

  b = a;
  b.best = a.best + 1;
  EXPECT_FALSE(SameVisibleAnswer(a, b));

  b = a;
  b.subset = {5, 8};
  EXPECT_FALSE(SameVisibleAnswer(a, b));

  WireResult err_a;
  err_a.status = 1;
  err_a.error = "reason";
  WireResult err_b = err_a;
  EXPECT_FALSE(SameVisibleAnswer(a, err_a));
  EXPECT_TRUE(SameVisibleAnswer(err_a, err_b));
  err_b.error = "another reason";
  EXPECT_FALSE(SameVisibleAnswer(err_a, err_b));
}

// --- corruption sweeps ----------------------------------------------------

TEST(NetProtocolTest, IntactPayloadsDecode) {
  for (const PayloadKind& kind : AllPayloadKinds()) {
    EXPECT_TRUE(kind.decodes(kind.valid)) << kind.name;
  }
}

TEST(NetProtocolTest, EveryTruncationRejected) {
  for (const PayloadKind& kind : AllPayloadKinds()) {
    for (size_t len = 0; len < kind.valid.size(); ++len) {
      EXPECT_FALSE(kind.decodes(
          std::span<const uint8_t>(kind.valid.data(), len)))
          << kind.name << " decoded from a " << len << "-byte prefix of "
          << kind.valid.size() << " bytes";
    }
  }
}

TEST(NetProtocolTest, TrailingJunkRejected) {
  for (const PayloadKind& kind : AllPayloadKinds()) {
    std::vector<uint8_t> padded = kind.valid;
    padded.push_back(0);
    EXPECT_FALSE(kind.decodes(padded)) << kind.name;
  }
}

// Flip every byte through every of three corruption patterns. Most flips
// must fail to decode; some produce a different-but-valid payload (a
// changed vertex id, a changed double) — that is fine. What the sweep
// enforces, together with ASan/UBSan, is: no crash, no out-of-bounds
// access, no runaway allocation.
TEST(NetProtocolTest, SingleByteFlipSweepNeverCrashes) {
  for (const PayloadKind& kind : AllPayloadKinds()) {
    for (size_t pos = 0; pos < kind.valid.size(); ++pos) {
      for (const uint8_t pattern : {uint8_t{0xFF}, uint8_t{0x80},
                                    uint8_t{0x01}}) {
        std::vector<uint8_t> corrupted = kind.valid;
        corrupted[pos] ^= pattern;
        (void)kind.decodes(corrupted);  // must return, not crash
      }
    }
  }
}

TEST(NetProtocolTest, LyingVectorLengthRejectedWithoutAllocating) {
  // A payload whose u32 element count claims far more elements than the
  // buffer holds must fail the bounds check before any allocation.
  WireWriter writer;
  writer.U8(1);           // algorithm
  writer.U8(0);           // aggregate
  writer.F64(0.5);        // phi
  writer.F64(0.0);        // deadline
  writer.U32(0xFFFFFFFF);  // |P| — lie
  const std::vector<uint8_t> bytes = writer.Take();
  QueryRequest out;
  EXPECT_FALSE(DecodeQueryRequest(bytes, out));
}

TEST(NetProtocolTest, InvalidStatusByteRejected) {
  WireResult result;
  result.status = 1;  // rejected
  result.error = "x";
  QueryResponse response;
  response.result = result;
  std::vector<uint8_t> bytes = EncodeQueryResponse(response);
  // The status byte is the first payload byte after the u64 epoch.
  bytes[8] = 3;  // one past kTimedOut
  QueryResponse out;
  EXPECT_FALSE(DecodeQueryResponse(bytes, out))
      << "a status byte outside the QueryStatus range must not be cast "
         "into the enum";
}

TEST(NetProtocolTest, EncodeFrameProducesValidEnvelope) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(Opcode::kStats), 77, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
      std::span<const uint8_t>(frame.data(), kFrameHeaderBytes), header));
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kStats));
  EXPECT_EQ(header.request_id, 77u);
  EXPECT_EQ(header.payload_length, payload.size());
  bool fatal = false;
  EXPECT_TRUE(FrameEnvelopeError(header, &fatal).empty());
}

}  // namespace
}  // namespace fannr::net
