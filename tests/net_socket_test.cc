// Transmit-path correctness of net/socket.h under injected faults:
// WriteFull must deliver byte-exact streams when every send(2) is
// chopped into short writes and interrupted by synthetic EINTRs — the
// failure mode that, unhandled, interleaves garbage into the framed
// stream and desyncs the receiver.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace fannr::net {
namespace {

/// A connected loopback pair (client end + accepted server end).
struct LoopbackPair {
  Socket client;
  Socket server;
};

LoopbackPair MakePair() {
  LoopbackPair pair;
  uint16_t port = 0;
  std::string error;
  Socket listener = TcpListen("127.0.0.1", 0, &port, &error);
  EXPECT_TRUE(listener.valid()) << error;
  pair.client = TcpConnect("127.0.0.1", port, &error);
  EXPECT_TRUE(pair.client.valid()) << error;
  pair.server = TcpAccept(listener, &error);
  EXPECT_TRUE(pair.server.valid()) << error;
  return pair;
}

TEST(NetSocket, WriteFullSurvivesShortWritesAndEintr) {
  LoopbackPair pair = MakePair();

  // 256 KiB of patterned bytes, far beyond any single send the faults
  // allow: every transmit is capped at 7 bytes and every 5th attempt is
  // a synthetic EINTR.
  std::vector<uint8_t> sent(256 * 1024);
  std::iota(sent.begin(), sent.end(), uint8_t{0});

  std::vector<uint8_t> received(sent.size());
  std::thread reader([&] {
    EXPECT_TRUE(pair.server.ReadFull(received.data(), received.size()));
  });

  {
    ScopedWriteFaultInjection faults({.max_chunk_bytes = 7,
                                      .eintr_period = 5});
    ASSERT_TRUE(pair.client.WriteFull(sent.data(), sent.size()));
  }
  reader.join();
  EXPECT_EQ(received, sent) << "short writes corrupted the byte stream";
}

TEST(NetSocket, FramedStreamStaysAlignedUnderShortWrites) {
  LoopbackPair pair = MakePair();

  // Many frames of varying payload sizes written back-to-back under
  // 3-byte transmit chunks; the receiver must find every frame boundary.
  std::vector<std::vector<uint8_t>> frames;
  for (uint64_t id = 1; id <= 20; ++id) {
    std::vector<uint8_t> payload(id * 37);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(id + i);
    }
    frames.push_back(EncodeFrame(static_cast<uint16_t>(Opcode::kQuery), id,
                                 payload));
  }

  std::thread reader([&] {
    for (uint64_t id = 1; id <= 20; ++id) {
      uint8_t header_bytes[kFrameHeaderBytes];
      ASSERT_TRUE(pair.server.ReadFull(header_bytes, sizeof(header_bytes)));
      FrameHeader header;
      ASSERT_TRUE(DecodeFrameHeader(header_bytes, header));
      EXPECT_EQ(header.magic, kMagic) << "framing desynced at frame " << id;
      EXPECT_EQ(header.request_id, id);
      std::vector<uint8_t> payload(header.payload_length);
      ASSERT_TRUE(pair.server.ReadFull(payload.data(), payload.size()));
      ASSERT_EQ(payload.size(), id * 37);
      EXPECT_EQ(payload[0], static_cast<uint8_t>(id));
    }
  });

  {
    ScopedWriteFaultInjection faults({.max_chunk_bytes = 3,
                                      .eintr_period = 4});
    for (const std::vector<uint8_t>& frame : frames) {
      ASSERT_TRUE(pair.client.WriteFull(frame.data(), frame.size()));
    }
  }
  reader.join();
}

TEST(NetSocket, WriteToClosedPeerFailsWithoutSigpipe) {
  LoopbackPair pair = MakePair();
  pair.server.Close();

  // The first write may land in the kernel buffer; keep writing until
  // the RST surfaces. Without MSG_NOSIGNAL this raises SIGPIPE and
  // kills the process — the test passing at all is the assertion.
  std::vector<uint8_t> chunk(4096, 0xAB);
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !pair.client.WriteFull(chunk.data(), chunk.size());
  }
  EXPECT_TRUE(failed) << "writes to a closed peer never reported failure";
}

}  // namespace
}  // namespace fannr::net
