#include "sp/dijkstra.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(DijkstraTest, LineGraphDistances) {
  Graph g = testing::MakeLineGraph(5, 2.0);
  auto dist = DijkstraSssp(g, 0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(dist[i], 2.0 * static_cast<double>(i));
  }
}

TEST(DijkstraTest, PicksShorterOfTwoRoutes) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 3, 1.0);
  builder.AddEdge(0, 2, 1.5);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  auto dist = DijkstraSssp(g, 0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build();
  auto dist = DijkstraSssp(g, 0);
  EXPECT_EQ(dist[2], kInfWeight);
}

TEST(DijkstraTest, MatchesBellmanFordOnRandomNetworks) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Graph g = testing::MakeRandomNetwork(300, seed);
    Rng rng(seed * 1000);
    for (int trial = 0; trial < 3; ++trial) {
      VertexId s = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      auto fast = DijkstraSssp(g, s);
      auto slow = testing::BellmanFordSssp(g, s);
      for (size_t v = 0; v < g.NumVertices(); ++v) {
        EXPECT_NEAR(fast[v], slow[v], 1e-9) << "seed " << seed << " v " << v;
      }
    }
  }
}

TEST(DijkstraTest, SsspTreeParentsFormShortestPaths) {
  Graph g = testing::MakeRandomNetwork(200, 77);
  SsspTree tree = DijkstraSsspTree(g, 0);
  EXPECT_EQ(tree.parent[0], kInvalidVertex);
  for (VertexId v = 1; v < g.NumVertices(); ++v) {
    if (tree.dist[v] == kInfWeight) continue;
    VertexId p = tree.parent[v];
    ASSERT_NE(p, kInvalidVertex);
    // parent edge weight must close the distance gap exactly.
    bool found = false;
    for (const Arc& a : g.Neighbors(p)) {
      if (a.to == v &&
          std::abs(tree.dist[p] + a.weight - tree.dist[v]) < 1e-9) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "vertex " << v;
  }
}

TEST(DijkstraSearchTest, PointToPointMatchesSssp) {
  Graph g = testing::MakeRandomNetwork(300, 5);
  DijkstraSearch search(g);
  auto dist = DijkstraSssp(g, 10);
  Rng rng(55);
  for (int i = 0; i < 20; ++i) {
    VertexId t = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(search.Distance(10, t), dist[t], 1e-9);
  }
}

TEST(DijkstraSearchTest, SelfDistanceIsZero) {
  Graph g = testing::MakeLineGraph(3);
  DijkstraSearch search(g);
  EXPECT_DOUBLE_EQ(search.Distance(1, 1), 0.0);
}

TEST(DijkstraSearchTest, ReusableAcrossQueries) {
  Graph g = testing::MakeRandomNetwork(200, 9);
  DijkstraSearch search(g);
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    VertexId s = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    auto truth = DijkstraSssp(g, s);
    EXPECT_NEAR(search.Distance(s, t), truth[t], 1e-9);
  }
}

TEST(DijkstraSearchTest, MultiTargetDistances) {
  Graph g = testing::MakeRandomNetwork(300, 13);
  DijkstraSearch search(g);
  Rng rng(131);
  VertexId s = 17;
  auto truth = DijkstraSssp(g, s);
  std::vector<VertexId> targets = testing::SampleVertices(g, 25, rng);
  auto got = search.Distances(s, targets);
  ASSERT_EQ(got.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(got[i], truth[targets[i]], 1e-9);
  }
}

TEST(DijkstraSearchTest, MultiTargetHandlesDuplicatesAndSource) {
  Graph g = testing::MakeLineGraph(4, 1.0);
  DijkstraSearch search(g);
  std::vector<VertexId> targets{2, 2, 0, 3};
  auto got = search.Distances(0, targets);
  EXPECT_DOUBLE_EQ(got[0], 2.0);
  EXPECT_DOUBLE_EQ(got[1], 2.0);
  EXPECT_DOUBLE_EQ(got[2], 0.0);
  EXPECT_DOUBLE_EQ(got[3], 3.0);
}

TEST(DijkstraSearchTest, MultiTargetUnreachable) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build();
  DijkstraSearch search(g);
  auto got = search.Distances(0, {1, 2});
  EXPECT_DOUBLE_EQ(got[0], 1.0);
  EXPECT_EQ(got[1], kInfWeight);
}

}  // namespace
}  // namespace fannr
