// End-to-end integration: the TEST preset network with every index and
// every algorithm, mirroring how the benchmark harness exercises the
// library, plus I/O robustness under corrupted inputs.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fann/fannr.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(PresetIntegrationTest, FullStackAgreementOnTestPreset) {
  Graph graph = BuildPreset("TEST");
  auto labels = HubLabels::Build(graph);
  ASSERT_TRUE(labels.has_value());
  GTree gtree = GTree::Build(graph);
  GphiResources resources;
  resources.graph = &graph;
  resources.labels = &*labels;
  resources.gtree = &gtree;

  Rng rng(0xD15EA5E);
  for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
    IndexedVertexSet p(graph.NumVertices(),
                       GenerateDataPoints(graph, 0.02, rng));
    IndexedVertexSet q(graph.NumVertices(),
                       GenerateUniformQueryPoints(graph, 0.2, 32, rng));
    FannQuery query{&graph, &p, &q, 0.5, aggregate};
    const RTree p_tree = BuildDataPointRTree(graph, p);

    // Reference via one engine, then cross-check every other engine and
    // algorithm against it.
    auto reference_engine = MakeGphiEngine(GphiKind::kIne, resources);
    const FannResult reference = SolveGd(query, *reference_engine);
    ASSERT_NE(reference.best, kInvalidVertex);

    for (GphiKind kind :
         {GphiKind::kPhl, GphiKind::kGTree, GphiKind::kIerPhl,
          GphiKind::kIerGTree}) {
      auto engine = MakeGphiEngine(kind, resources);
      EXPECT_NEAR(SolveGd(query, *engine).distance, reference.distance,
                  1e-6)
          << GphiKindName(kind);
      EXPECT_NEAR(SolveRList(query, *engine).distance, reference.distance,
                  1e-6)
          << GphiKindName(kind);
      EXPECT_NEAR(SolveIer(query, *engine, p_tree).distance,
                  reference.distance, 1e-6)
          << GphiKindName(kind);
    }
    if (aggregate == Aggregate::kMax) {
      EXPECT_NEAR(SolveExactMax(query).distance, reference.distance, 1e-6);
    } else {
      const FannResult approx = SolveApxSum(query, *reference_engine);
      EXPECT_GE(approx.distance, reference.distance - 1e-9);
      EXPECT_LE(approx.distance, 3.0 * reference.distance + 1e-9);
    }
  }
}

TEST(DimacsRobustnessTest, MutatedFilesNeverCrash) {
  // Write a valid file, then flip/truncate it in many ways; the loader
  // must either succeed or fail cleanly with an error message — never
  // crash or hang.
  Graph g = testing::MakeSmallGrid(8, 8);
  const std::string dir = ::testing::TempDir();
  const std::string gr = dir + "fuzz.gr";
  ASSERT_TRUE(SaveDimacs(g, gr, ""));
  std::ifstream in(gr);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string original = buffer.str();

  Rng rng(0xF0220);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = original;
    switch (trial % 3) {
      case 0: {  // flip a byte
        const size_t pos = rng.NextIndex(mutated.size());
        mutated[pos] = static_cast<char>(rng.NextBounded(256));
        break;
      }
      case 1: {  // truncate
        mutated.resize(rng.NextIndex(mutated.size()));
        break;
      }
      case 2: {  // duplicate a random chunk
        const size_t pos = rng.NextIndex(mutated.size());
        mutated.insert(pos, mutated.substr(
                                pos, rng.NextIndex(32) + 1));
        break;
      }
    }
    const std::string path = dir + "fuzz_mut.gr";
    {
      std::ofstream out(path);
      out << mutated;
    }
    LoadResult r = LoadDimacs(path, "");
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty());
    } else {
      // Accepted mutations must still produce a structurally sound graph.
      for (VertexId u = 0; u < r.graph->NumVertices(); ++u) {
        for (const Arc& a : r.graph->Neighbors(u)) {
          EXPECT_LT(a.to, r.graph->NumVertices());
          EXPECT_GT(a.weight, 0.0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fannr
