// Property tests for the IER lower bounds (paper Lemma 1 and the cheap
// Q-MBR bound of Section III-C).

#include "fann/ier.h"

#include <gtest/gtest.h>

#include "fann/gphi.h"
#include "test_util.h"

namespace fannr {
namespace {

class IerBoundTest : public ::testing::TestWithParam<Aggregate> {};

TEST_P(IerBoundTest, EuclidPointLowerBoundsNetworkGphi) {
  const Aggregate aggregate = GetParam();
  Graph g = testing::MakeRandomNetwork(400, 501);
  ASSERT_TRUE(g.EuclideanConsistent());
  Rng rng(502);
  std::vector<VertexId> q_vec = testing::SampleVertices(g, 20, rng);
  std::vector<Point> q_points;
  for (VertexId q : q_vec) q_points.push_back(g.Coord(q));

  for (int trial = 0; trial < 30; ++trial) {
    const VertexId p = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    for (size_t k : {size_t{1}, size_t{10}, size_t{20}}) {
      const Weight euclid =
          EuclidGphiPoint(q_points, g.Coord(p), k, aggregate);
      const Weight network = testing::BruteGphi(g, p, q_vec, k, aggregate);
      if (network == kInfWeight) continue;
      EXPECT_LE(euclid, network + 1e-9)
          << "p=" << p << " k=" << k << " " << AggregateName(aggregate);
    }
  }
}

TEST_P(IerBoundTest, MbrBoundLowerBoundsEveryContainedPoint) {
  const Aggregate aggregate = GetParam();
  Rng rng(503);
  std::vector<Point> q_points;
  for (int i = 0; i < 15; ++i) {
    q_points.push_back(
        Point{rng.NextDouble(0.0, 100.0), rng.NextDouble(0.0, 100.0)});
  }
  for (int trial = 0; trial < 30; ++trial) {
    Mbr box;
    std::vector<Point> contained;
    for (int i = 0; i < 6; ++i) {
      Point p{rng.NextDouble(0.0, 150.0), rng.NextDouble(0.0, 150.0)};
      contained.push_back(p);
      box.Extend(p);
    }
    for (size_t k : {size_t{1}, size_t{7}, size_t{15}}) {
      const Weight bound = EuclidGphiBound(q_points, box, k, aggregate);
      for (const Point& p : contained) {
        EXPECT_LE(bound, EuclidGphiPoint(q_points, p, k, aggregate) + 1e-9);
      }
    }
  }
}

TEST_P(IerBoundTest, MbrBoundIsMonotoneInK) {
  const Aggregate aggregate = GetParam();
  Rng rng(504);
  std::vector<Point> q_points;
  for (int i = 0; i < 12; ++i) {
    q_points.push_back(
        Point{rng.NextDouble(0.0, 50.0), rng.NextDouble(0.0, 50.0)});
  }
  Mbr box;
  box.Extend(Point{60.0, 60.0});
  box.Extend(Point{70.0, 75.0});
  Weight prev = 0.0;
  for (size_t k = 1; k <= q_points.size(); ++k) {
    const Weight bound = EuclidGphiBound(q_points, box, k, aggregate);
    EXPECT_GE(bound, prev - 1e-12) << "k=" << k;
    prev = bound;
  }
}

INSTANTIATE_TEST_SUITE_P(BothAggregates, IerBoundTest,
                         ::testing::Values(Aggregate::kMax,
                                           Aggregate::kSum),
                         [](const auto& info) {
                           return std::string(AggregateName(info.param));
                         });

TEST(IerBoundTest, PointInsideMbrGivesZeroMaxBoundWithK1OnCoincidentQ) {
  // Degenerate sanity: a query point inside the MBR makes the k=1 bound 0.
  std::vector<Point> q_points{{5.0, 5.0}};
  Mbr box;
  box.Extend(Point{0.0, 0.0});
  box.Extend(Point{10.0, 10.0});
  EXPECT_DOUBLE_EQ(EuclidGphiBound(q_points, box, 1, Aggregate::kMax), 0.0);
  EXPECT_DOUBLE_EQ(EuclidGphiBound(q_points, box, 1, Aggregate::kSum), 0.0);
}

}  // namespace
}  // namespace fannr
