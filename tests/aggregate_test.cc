#include "fann/aggregate.h"

#include <gtest/gtest.h>

namespace fannr {
namespace {

TEST(FlexKTest, MatchesPaperExamples) {
  // Fig. 1: |Q| = 4, phi = 0.5 -> k = 2.
  EXPECT_EQ(FlexK(0.5, 4), 2u);
  // Section II-C: |Q| = 128, phi = 0.5 -> 64.
  EXPECT_EQ(FlexK(0.5, 128), 64u);
  // phi = 1 degenerates to ANN.
  EXPECT_EQ(FlexK(1.0, 128), 128u);
  EXPECT_EQ(FlexK(1.0, 1), 1u);
}

TEST(FlexKTest, AlwaysAtLeastOne) {
  EXPECT_EQ(FlexK(0.001, 4), 1u);
  EXPECT_EQ(FlexK(0.1, 1), 1u);
}

TEST(FlexKTest, CeilingSemantics) {
  EXPECT_EQ(FlexK(0.3, 10), 3u);
  EXPECT_EQ(FlexK(0.31, 10), 4u);
  EXPECT_EQ(FlexK(0.7, 10), 7u);
  EXPECT_EQ(FlexK(0.75, 4), 3u);
}

TEST(FlexKTest, NeverExceedsQSize) {
  for (double phi : {0.9999, 1.0}) {
    for (size_t m : {1u, 7u, 128u}) {
      EXPECT_LE(FlexK(phi, m), m);
    }
  }
}

TEST(FlexKTest, ExactMultiplesAreNotOverRounded) {
  // phi = k/m must give exactly k even when the division is inexact —
  // the 1e-9 guard inside FlexK exists precisely so that an excess ulp
  // in phi * m does not push ceil() one subset size too high.
  for (size_t m = 1; m <= 64; ++m) {
    for (size_t k = 1; k <= m; ++k) {
      const double phi = static_cast<double>(k) / static_cast<double>(m);
      EXPECT_EQ(FlexK(phi, m), k) << "phi=" << k << "/" << m;
    }
  }
}

TEST(FlexKTest, ReciprocalPhiGivesOne) {
  // phi = 1/|Q| is the smallest meaningful phi: exactly one query point.
  for (size_t m = 1; m <= 256; ++m) {
    EXPECT_EQ(FlexK(1.0 / static_cast<double>(m), m), 1u) << "m=" << m;
  }
}

TEST(FlexKTest, PhiOneGivesAllForEveryQSize) {
  for (size_t m = 1; m <= 256; ++m) {
    EXPECT_EQ(FlexK(1.0, m), m) << "m=" << m;
  }
}

TEST(FlexKTest, JustAboveBoundaryRoundsUp) {
  // Clearly above a representable boundary (beyond the guard band) the
  // ceiling must move to the next subset size.
  for (size_t m : {2u, 3u, 10u, 128u}) {
    EXPECT_EQ(FlexK((1.0 + 1e-6) / static_cast<double>(m), m), 2u)
        << "m=" << m;
  }
  EXPECT_EQ(FlexK(0.5 + 1e-6, 10), 6u);
}

TEST(FoldSortedTest, MaxTakesLast) {
  const Weight d[] = {1.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(FoldSorted(d, 3, Aggregate::kMax), 5.0);
  EXPECT_DOUBLE_EQ(FoldSorted(d, 1, Aggregate::kMax), 1.0);
}

TEST(FoldSortedTest, SumAddsAll) {
  const Weight d[] = {1.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(FoldSorted(d, 3, Aggregate::kSum), 8.0);
  EXPECT_DOUBLE_EQ(FoldSorted(d, 2, Aggregate::kSum), 3.0);
}

TEST(FoldSortedTest, EmptyIsInfinite) {
  EXPECT_EQ(FoldSorted(nullptr, 0, Aggregate::kMax), kInfWeight);
  EXPECT_EQ(FoldSorted(nullptr, 0, Aggregate::kSum), kInfWeight);
}

TEST(AggregateNameTest, Names) {
  EXPECT_EQ(AggregateName(Aggregate::kMax), "max");
  EXPECT_EQ(AggregateName(Aggregate::kSum), "sum");
}

}  // namespace
}  // namespace fannr
