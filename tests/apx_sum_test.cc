// APX-sum approximation-quality properties (paper Theorems 1 and 2).

#include "fann/apx_sum.h"

#include <gtest/gtest.h>

#include "fann/gd.h"
#include "fann_world.h"
#include "test_util.h"
#include "testing/scenario.h"
#include "workload/workload.h"

namespace fannr {
namespace {

TEST(ApxSumTest, NeverWorseThanThreeApproximation) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(51);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    const size_t p_size = 10 + rng.NextIndex(80);
    const size_t q_size = 4 + rng.NextIndex(20);
    const double phi = 0.1 + 0.9 * rng.NextDouble();
    std::vector<VertexId> p_vec =
        testing::SampleVertices(graph, p_size, rng);
    std::vector<VertexId> q_vec =
        testing::SampleVertices(graph, q_size, rng);
    IndexedVertexSet p(graph.NumVertices(), p_vec);
    IndexedVertexSet q(graph.NumVertices(), q_vec);
    FannQuery query{&graph, &p, &q, phi, Aggregate::kSum};

    const Weight optimal =
        testing::BruteForceFann(graph, p_vec, q_vec, phi, Aggregate::kSum)
            .distance;
    const FannResult approx = SolveApxSum(query, *engine);
    ASSERT_NE(approx.best, kInvalidVertex);
    EXPECT_TRUE(p.Contains(approx.best));
    ASSERT_GT(optimal, 0.0);
    const double ratio = approx.distance / optimal;
    EXPECT_GE(ratio, 1.0 - 1e-9) << "trial " << trial;
    EXPECT_LE(ratio, 3.0 + 1e-9) << "trial " << trial;
    worst_ratio = std::max(worst_ratio, ratio);
  }
  // The paper observes ratios below 1.2 in practice; allow slack but make
  // sure the typical quality is far from the worst-case bound.
  EXPECT_LT(worst_ratio, 2.0);
}

TEST(ApxSumTest, TwoApproximationWhenQSubsetOfP) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(53);
  for (int trial = 0; trial < 15; ++trial) {
    // Q is a subset of P (Theorem 2).
    std::vector<VertexId> p_vec =
        testing::SampleVertices(graph, 40, rng);
    std::vector<VertexId> q_vec(p_vec.begin(), p_vec.begin() + 12);
    const double phi = 0.25 + 0.75 * rng.NextDouble();
    IndexedVertexSet p(graph.NumVertices(), p_vec);
    IndexedVertexSet q(graph.NumVertices(), q_vec);
    FannQuery query{&graph, &p, &q, phi, Aggregate::kSum};

    const Weight optimal =
        testing::BruteForceFann(graph, p_vec, q_vec, phi, Aggregate::kSum)
            .distance;
    const FannResult approx = SolveApxSum(query, *engine);
    // When Q subset of P, each q's nearest data point is itself at
    // distance 0; the approximation is still well-defined and bounded.
    if (optimal == 0.0) {
      EXPECT_DOUBLE_EQ(approx.distance, 0.0);
      continue;
    }
    EXPECT_LE(approx.distance / optimal, 2.0 + 1e-9) << "trial " << trial;
  }
}

TEST(ApxSumTest, ExactWhenOptimumIsANearestNeighbor) {
  // A line where the optimum is the 1-NN of a query point, so the
  // candidate set contains it and APX-sum returns the exact answer.
  Graph g = testing::MakeLineGraph(20, 1.0);
  IndexedVertexSet p(g.NumVertices(), {5, 15});
  IndexedVertexSet q(g.NumVertices(), {4, 6, 7});
  GphiResources resources;
  resources.graph = &g;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  FannQuery query{&g, &p, &q, 1.0, Aggregate::kSum};
  FannResult exact = SolveGd(query, *engine);
  FannResult approx = SolveApxSum(query, *engine);
  EXPECT_EQ(approx.best, exact.best);
  EXPECT_DOUBLE_EQ(approx.distance, exact.distance);
}

TEST(ApxSumTest, CandidateReductionShrinksWork) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(59);
  // Dense P, small Q: candidates <= |Q| << |P|.
  std::vector<VertexId> p_vec = GenerateDataPoints(graph, 0.5, rng);
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 10, rng);
  IndexedVertexSet p(graph.NumVertices(), p_vec);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kSum};
  FannResult approx = SolveApxSum(query, *engine);
  EXPECT_LE(approx.gphi_evaluations, q.size());
  EXPECT_NE(approx.best, kInvalidVertex);
}

TEST(ApxSumTest, CanBeStrictlySuboptimal) {
  // A constructed instance where no query point's nearest data point is
  // the optimum: P = {0, 5, 10} on a unit line, Q = {2, 8}. Candidates
  // are {0, 10} (NN of 2 and 8 respectively), each with total distance
  // 10, while the true optimum 5 achieves 6 — the approximation really
  // approximates (ratio 10/6 ~ 1.67, within the guaranteed 3).
  Graph g = testing::MakeLineGraph(11, 1.0);
  IndexedVertexSet p(g.NumVertices(), {0, 5, 10});
  IndexedVertexSet q(g.NumVertices(), {2, 8});
  GphiResources resources;
  resources.graph = &g;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  FannQuery query{&g, &p, &q, 1.0, Aggregate::kSum};
  FannResult exact = SolveGd(query, *engine);
  FannResult approx = SolveApxSum(query, *engine);
  EXPECT_EQ(exact.best, 5u);
  EXPECT_DOUBLE_EQ(exact.distance, 6.0);
  EXPECT_DOUBLE_EQ(approx.distance, 10.0);
  EXPECT_NE(approx.best, exact.best);
  EXPECT_LE(approx.distance, 3.0 * exact.distance);
}

TEST(ApxSumTest, SharedNearestNeighborsAreDedupedOnce) {
  // Three query points whose network 1-NNs collapse to two distinct data
  // points: the candidate set — and with it the number of exact g_phi
  // evaluations — must shrink to 2, not |Q|.
  Graph g = testing::MakeLineGraph(11, 1.0);
  IndexedVertexSet p(g.NumVertices(), {0, 10});
  IndexedVertexSet q(g.NumVertices(), {1, 2, 9});
  GphiResources resources;
  resources.graph = &g;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);
  FannQuery query{&g, &p, &q, 1.0, Aggregate::kSum};
  const FannResult approx = SolveApxSum(query, *engine);
  EXPECT_EQ(approx.gphi_evaluations, 2u);
  EXPECT_NE(approx.best, kInvalidVertex);
}

TEST(ApxSumTest, SeededScenarioBatchObeysBounds) {
  // The same approximation-bound check the differential fuzzer applies,
  // pinned into ctest over a fixed batch of generated scenarios: 3x in
  // general, 2x when Q is a subset of P (Theorems 1 and 2), on shapes
  // that include ties, disconnected components and P/Q overlap.
  size_t checked = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const auto s = testing::GenerateScenario(seed);
    IndexedVertexSet p(s.graph->NumVertices(), s.p);
    IndexedVertexSet q(s.graph->NumVertices(), s.q);
    GphiResources resources;
    resources.graph = s.graph.get();
    auto engine = MakeGphiEngine(GphiKind::kIne, resources);
    FannQuery query{s.graph.get(), &p, &q, s.phi, Aggregate::kSum};
    const FannResult exact = SolveGd(query, *engine);
    const FannResult approx = SolveApxSum(query, *engine);
    if (exact.best == kInvalidVertex) {
      EXPECT_EQ(approx.best, kInvalidVertex) << "seed " << seed;
      continue;
    }
    ASSERT_NE(approx.best, kInvalidVertex) << "seed " << seed;
    if (exact.distance == 0.0) {
      EXPECT_DOUBLE_EQ(approx.distance, 0.0) << "seed " << seed;
      continue;
    }
    bool q_subset_of_p = true;
    for (VertexId v : s.q) q_subset_of_p &= p.Contains(v);
    const double bound = q_subset_of_p ? 2.0 : 3.0;
    EXPECT_GE(approx.distance, exact.distance - 1e-9) << "seed " << seed;
    EXPECT_LE(approx.distance, bound * exact.distance * (1.0 + 1e-9))
        << "seed " << seed;
    ++checked;
  }
  EXPECT_GE(checked, 20u);  // the batch must mostly be non-degenerate
}

TEST(ApxSumTest, RejectsMaxAggregate) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  IndexedVertexSet p(graph.NumVertices(), {1});
  IndexedVertexSet q(graph.NumVertices(), {2});
  FannQuery query{&graph, &p, &q, 1.0, Aggregate::kMax};
  EXPECT_DEATH(SolveApxSum(query, *engine), "sum");
}

}  // namespace
}  // namespace fannr
