// Tests for the Euclidean FANN comparator module (and the minimum
// enclosing circle it uses).

#include "euclid/euclid_fann.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "euclid/mec.h"

namespace fannr {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed,
                                double extent = 1000.0) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point{rng.NextDouble(0.0, extent),
                           rng.NextDouble(0.0, extent)});
  }
  return points;
}

TEST(MecTest, ContainsAllPointsAndIsTight) {
  for (uint64_t seed : {901u, 902u, 903u}) {
    auto points = RandomPoints(50, seed);
    Circle mec = MinimumEnclosingCircle(points);
    double farthest = 0.0;
    for (const Point& p : points) {
      EXPECT_TRUE(mec.Contains(p));
      farthest = std::max(farthest, EuclideanDistance(mec.center, p));
    }
    // Tight: the radius equals the farthest contained point's distance.
    EXPECT_NEAR(mec.radius, farthest, 1e-9 * (1.0 + mec.radius));
    // Minimal: no point of the plane beats the center's max distance by
    // more than numerical noise — spot-check a few perturbations.
    Rng rng(seed + 7);
    for (int i = 0; i < 20; ++i) {
      Point x{mec.center.x + rng.NextDouble(-50.0, 50.0),
              mec.center.y + rng.NextDouble(-50.0, 50.0)};
      double max_d = 0.0;
      for (const Point& p : points) {
        max_d = std::max(max_d, EuclideanDistance(x, p));
      }
      EXPECT_GE(max_d, mec.radius - 1e-9);
    }
  }
}

TEST(MecTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(MinimumEnclosingCircle({}).radius, 0.0);
  Circle one = MinimumEnclosingCircle({Point{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(one.radius, 0.0);
  EXPECT_DOUBLE_EQ(one.center.x, 3.0);
  Circle two = MinimumEnclosingCircle({Point{0.0, 0.0}, Point{6.0, 8.0}});
  EXPECT_NEAR(two.radius, 5.0, 1e-9);
  EXPECT_NEAR(two.center.x, 3.0, 1e-9);
  // Collinear points.
  Circle line = MinimumEnclosingCircle(
      {Point{0.0, 0.0}, Point{5.0, 0.0}, Point{10.0, 0.0}});
  EXPECT_NEAR(line.radius, 5.0, 1e-9);
}

class EuclidFannTest : public ::testing::TestWithParam<Aggregate> {};

TEST_P(EuclidFannTest, ExactMatchesBruteForce) {
  const Aggregate aggregate = GetParam();
  for (uint64_t seed : {911u, 912u}) {
    auto data = RandomPoints(120, seed);
    auto query = RandomPoints(20, seed + 1);
    for (double phi : {0.25, 0.5, 1.0}) {
      const auto fast = SolveEuclidFann(data, query, phi, aggregate);
      const auto brute = SolveEuclidFannBrute(data, query, phi, aggregate);
      EXPECT_NEAR(fast.distance, brute.distance, 1e-9)
          << AggregateName(aggregate) << " phi=" << phi;
      EXPECT_EQ(fast.subset.size(), FlexK(phi, query.size()));
      for (uint32_t idx : fast.subset) EXPECT_LT(idx, query.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothAggregates, EuclidFannTest,
                         ::testing::Values(Aggregate::kMax,
                                           Aggregate::kSum),
                         [](const auto& info) {
                           return std::string(AggregateName(info.param));
                         });

TEST(EuclidApxSumTest, WithinFactorThree) {
  Rng rng(921);
  for (int trial = 0; trial < 20; ++trial) {
    auto data = RandomPoints(60, 922 + trial);
    auto query = RandomPoints(12, 9220 + trial);
    const double phi = 0.25 + 0.75 * rng.NextDouble();
    const auto exact =
        SolveEuclidFannBrute(data, query, phi, Aggregate::kSum);
    const auto approx = SolveEuclidApxSum(data, query, phi);
    ASSERT_GT(exact.distance, 0.0);
    EXPECT_GE(approx.distance, exact.distance - 1e-9);
    EXPECT_LE(approx.distance, 3.0 * exact.distance + 1e-9);
  }
}

TEST(EuclidMecMaxAnnTest, WithinFactorTwo) {
  for (int trial = 0; trial < 20; ++trial) {
    auto data = RandomPoints(60, 931 + trial);
    auto query = RandomPoints(15, 9310 + trial);
    const auto exact =
        SolveEuclidFannBrute(data, query, 1.0, Aggregate::kMax);
    const auto approx = SolveEuclidMecMaxAnn(data, query);
    ASSERT_GT(exact.distance, 0.0);
    EXPECT_GE(approx.distance, exact.distance - 1e-9);
    EXPECT_LE(approx.distance, 2.0 * exact.distance + 1e-9)
        << "trial " << trial;
  }
}

TEST(EuclidFannTest, SingleDataAndQueryPoints) {
  std::vector<Point> data{Point{0.0, 0.0}};
  std::vector<Point> query{Point{3.0, 4.0}};
  auto r = SolveEuclidFann(data, query, 1.0, Aggregate::kSum);
  EXPECT_EQ(r.best, 0u);
  EXPECT_NEAR(r.distance, 5.0, 1e-12);
}

}  // namespace
}  // namespace fannr
