// Tests for the FANN_R special-case wrappers (ANN, OMP) and the
// Voronoi-accelerated APX-sum.

#include "fann/extensions.h"

#include <gtest/gtest.h>

#include <numeric>

#include "fann/apx_sum.h"
#include "fann/gd.h"
#include "fann_world.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(AnnTest, MatchesPhiOneFann) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(701);
  for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
    std::vector<VertexId> p_vec = testing::SampleVertices(graph, 20, rng);
    std::vector<VertexId> q_vec = testing::SampleVertices(graph, 8, rng);
    IndexedVertexSet p(graph.NumVertices(), p_vec);
    IndexedVertexSet q(graph.NumVertices(), q_vec);
    FannResult ann = SolveAnn(graph, p, q, aggregate, *engine);
    const auto brute =
        testing::BruteForceFann(graph, p_vec, q_vec, 1.0, aggregate);
    EXPECT_NEAR(ann.distance, brute.distance, 1e-6);
    EXPECT_EQ(ann.subset.size(), q.size());
  }
}

class OmpTest : public ::testing::TestWithParam<Aggregate> {};

TEST_P(OmpTest, MatchesBruteForceOverAllVertices) {
  const Aggregate aggregate = GetParam();
  Graph graph = testing::MakeRandomNetwork(250, 702);
  Rng rng(703);
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 9, rng);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  std::vector<VertexId> all(graph.NumVertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  for (double phi : {0.4, 1.0}) {
    FannResult omp = SolveOmp(graph, q, phi, aggregate);
    const auto brute =
        testing::BruteForceFann(graph, all, q_vec, phi, aggregate);
    EXPECT_NEAR(omp.distance, brute.distance, 1e-6)
        << AggregateName(aggregate) << " phi=" << phi;
    ASSERT_NE(omp.best, kInvalidVertex);
    EXPECT_EQ(omp.subset.size(), FlexK(phi, q.size()));
    // The subset certifies the distance.
    auto truth = DijkstraSssp(graph, omp.best);
    std::vector<Weight> dists;
    for (VertexId v : omp.subset) dists.push_back(truth[v]);
    std::sort(dists.begin(), dists.end());
    EXPECT_NEAR(FoldSorted(dists.data(), dists.size(), aggregate),
                omp.distance, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(BothAggregates, OmpTest,
                         ::testing::Values(Aggregate::kMax,
                                           Aggregate::kSum),
                         [](const auto& info) {
                           return std::string(AggregateName(info.param));
                         });

TEST(OmpTest, MeetingPointOnALine) {
  // Sum-OMP of points {0, 4, 9} on a unit line is the median vertex 4.
  Graph g = testing::MakeLineGraph(10, 1.0);
  IndexedVertexSet q(g.NumVertices(), {0, 4, 9});
  FannResult omp = SolveOmp(g, q, 1.0, Aggregate::kSum);
  EXPECT_EQ(omp.best, 4u);
  EXPECT_DOUBLE_EQ(omp.distance, 4.0 + 0.0 + 5.0);
}

TEST(OmpTest, DenseBudgetGuardTriggers) {
  Graph g = testing::MakeRandomNetwork(150, 704);
  Rng rng(705);
  IndexedVertexSet q(g.NumVertices(),
                     testing::SampleVertices(g, 6, rng));
  OmpOptions options;
  options.max_dense_bytes = 16;  // absurdly small
  EXPECT_DEATH(SolveOmp(g, q, 0.5, Aggregate::kSum, options), "dense");
}

TEST(VoronoiApxSumTest, MatchesPlainApxSum) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(706);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<VertexId> p_vec = testing::SampleVertices(graph, 30, rng);
    std::vector<VertexId> q_vec = testing::SampleVertices(graph, 10, rng);
    IndexedVertexSet p(graph.NumVertices(), p_vec);
    IndexedVertexSet q(graph.NumVertices(), q_vec);
    NetworkVoronoi voronoi(graph, p);
    FannQuery query{&graph, &p, &q, 0.5, Aggregate::kSum};
    FannResult plain = SolveApxSum(query, *engine);
    FannResult fast = SolveApxSumWithVoronoi(query, voronoi, *engine);
    // Nearest-neighbor ties can differ between the two implementations,
    // but the distances they certify must both satisfy the same bound,
    // and with deterministic tie-free inputs they coincide.
    EXPECT_NEAR(fast.distance, plain.distance, 1e-9) << "trial " << trial;
  }
}

TEST(VoronoiApxSumTest, ApproximationBoundStillHolds) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  auto engine = MakeGphiEngine(GphiKind::kIne, world.Resources());
  Rng rng(707);
  std::vector<VertexId> p_vec = testing::SampleVertices(graph, 50, rng);
  std::vector<VertexId> q_vec = testing::SampleVertices(graph, 12, rng);
  IndexedVertexSet p(graph.NumVertices(), p_vec);
  IndexedVertexSet q(graph.NumVertices(), q_vec);
  NetworkVoronoi voronoi(graph, p);
  FannQuery query{&graph, &p, &q, 0.5, Aggregate::kSum};
  FannResult fast = SolveApxSumWithVoronoi(query, voronoi, *engine);
  const Weight optimal =
      testing::BruteForceFann(graph, p_vec, q_vec, 0.5, Aggregate::kSum)
          .distance;
  ASSERT_GT(optimal, 0.0);
  EXPECT_LE(fast.distance / optimal, 3.0 + 1e-9);
  EXPECT_GE(fast.distance / optimal, 1.0 - 1e-9);
}

}  // namespace
}  // namespace fannr
