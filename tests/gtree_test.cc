#include "sp/gtree/gtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/builder.h"
#include "sp/dijkstra.h"
#include "sp/gtree/gtree_knn.h"
#include "sp/gtree/partition.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(PartitionTest, BalancedParts) {
  Graph g = testing::MakeRandomNetwork(400, 81);
  std::vector<VertexId> all(g.NumVertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  for (size_t fanout : {2u, 4u, 8u}) {
    auto assignment = MultiwayPartition(g, all, fanout);
    std::vector<size_t> sizes(fanout, 0);
    for (uint32_t part : assignment) {
      ASSERT_LT(part, fanout);
      ++sizes[part];
    }
    const size_t min_size = *std::min_element(sizes.begin(), sizes.end());
    const size_t max_size = *std::max_element(sizes.begin(), sizes.end());
    EXPECT_LE(max_size - min_size, fanout) << "fanout " << fanout;
  }
}

TEST(PartitionTest, CutIsSmallOnGrids) {
  Graph g = testing::MakeSmallGrid(40, 40);
  std::vector<VertexId> all(g.NumVertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  auto assignment = MultiwayPartition(g, all, 4);
  size_t cut = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (u < a.to && assignment[u] != assignment[a.to]) ++cut;
    }
  }
  // An inertial 4-way split of a 40x40 grid should cut O(side) edges,
  // far fewer than the ~3200 total.
  EXPECT_LT(cut, 300u);
}

TEST(PartitionTest, WorksWithoutCoordinates) {
  GraphBuilder builder(64);
  for (VertexId i = 0; i + 1 < 64; ++i) builder.AddEdge(i, i + 1, 1.0);
  Graph g = builder.Build();
  ASSERT_FALSE(g.HasCoordinates());
  std::vector<VertexId> all(64);
  std::iota(all.begin(), all.end(), VertexId{0});
  auto assignment = MultiwayPartition(g, all, 4);
  std::vector<size_t> sizes(4, 0);
  for (uint32_t p : assignment) ++sizes[p];
  for (size_t s : sizes) EXPECT_EQ(s, 16u);
}

class GTreeDistanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GTreeDistanceTest, MatchesDijkstraOnRandomNetworks) {
  const uint64_t seed = GetParam();
  Graph g = testing::MakeRandomNetwork(500, seed);
  GTree::Options options;
  options.leaf_capacity = 16;  // force several levels
  GTree tree = GTree::Build(g, options);
  EXPECT_GT(tree.NumLeaves(), 8u);
  DijkstraSearch dijkstra(g);
  Rng rng(seed * 31);
  for (int i = 0; i < 60; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(tree.Distance(u, v), dijkstra.Distance(u, v), 1e-6)
        << "seed " << seed << " pair " << u << "->" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GTreeDistanceTest,
                         ::testing::Values(101, 102, 103, 104));

TEST(GTreeTest, SameLeafQueriesIncludingDetours) {
  // Line graph with a shortcut: within-leaf path may not be optimal if a
  // detour through another leaf is shorter. Construct: chain 0..15 with
  // heavy middle edge and a light bypass through distant vertices.
  GraphBuilder builder;
  for (int i = 0; i < 16; ++i) {
    builder.AddVertex(Point{static_cast<double>(i) * 10.0, 0.0});
  }
  for (VertexId i = 0; i + 1 < 16; ++i) {
    builder.AddEdge(i, i + 1, i == 7 ? 1000.0 : 10.0);
  }
  // Bypass around the heavy edge, off to the side.
  VertexId bypass = builder.AddVertex(Point{75.0, 10.0});
  builder.AddEdge(7, bypass, 20.0);
  builder.AddEdge(bypass, 8, 20.0);
  Graph g = builder.Build();

  GTree::Options options;
  options.leaf_capacity = 4;
  GTree tree = GTree::Build(g, options);
  DijkstraSearch dijkstra(g);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_NEAR(tree.Distance(u, v), dijkstra.Distance(u, v), 1e-9)
          << u << "->" << v;
    }
  }
}

TEST(GTreeTest, SingleLeafTree) {
  Graph g = testing::MakeLineGraph(10, 2.0);
  GTree::Options options;
  options.leaf_capacity = 64;  // whole graph fits in the root leaf
  GTree tree = GTree::Build(g, options);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_NEAR(tree.Distance(0, 9), 18.0, 1e-9);
  EXPECT_NEAR(tree.Distance(4, 4), 0.0, 1e-9);
}

TEST(GTreeTest, DisconnectedGraphGivesInfinity) {
  GraphBuilder builder;
  for (int i = 0; i < 32; ++i) {
    builder.AddVertex(Point{static_cast<double>(i % 8) * 10.0,
                            static_cast<double>(i / 8) * 10.0});
  }
  // Two separate 16-vertex paths.
  for (VertexId i = 0; i + 1 < 16; ++i) builder.AddEdge(i, i + 1, 5.0);
  for (VertexId i = 16; i + 1 < 32; ++i) builder.AddEdge(i, i + 1, 5.0);
  Graph g = builder.Build();
  GTree::Options options;
  options.leaf_capacity = 8;
  GTree tree = GTree::Build(g, options);
  EXPECT_EQ(tree.Distance(0, 20), kInfWeight);
  EXPECT_NEAR(tree.Distance(0, 15), 75.0, 1e-9);
  EXPECT_NEAR(tree.Distance(16, 31), 75.0, 1e-9);
}

TEST(GTreeTest, StructureInvariants) {
  Graph g = testing::MakeRandomNetwork(400, 200);
  GTree::Options options;
  options.leaf_capacity = 20;
  GTree tree = GTree::Build(g, options);

  size_t vertices_in_leaves = 0;
  for (size_t id = 0; id < tree.NumTreeNodes(); ++id) {
    const GTree::Node& nd = tree.node(static_cast<int32_t>(id));
    if (nd.is_leaf) {
      EXPECT_LE(nd.vertices.size(), options.leaf_capacity);
      vertices_in_leaves += nd.vertices.size();
      // Every border is a leaf vertex.
      for (VertexId b : nd.borders) {
        EXPECT_EQ(tree.LeafOf(b), static_cast<int32_t>(id));
      }
    } else {
      EXPECT_EQ(nd.children.size(), options.fanout);
      EXPECT_EQ(nd.borders.size(), nd.border_occ_pos.size());
      // Borders appear at their claimed occupant positions.
      for (size_t i = 0; i < nd.borders.size(); ++i) {
        EXPECT_EQ(nd.occupants[nd.border_occ_pos[i]], nd.borders[i]);
      }
      // Matrix diagonal is zero.
      for (size_t i = 0; i < nd.occupants.size(); ++i) {
        EXPECT_DOUBLE_EQ(nd.MatrixAt(i, i), 0.0);
      }
    }
  }
  EXPECT_EQ(vertices_in_leaves, g.NumVertices());
  EXPECT_GT(tree.MemoryBytes(), 0u);
}

TEST(GTreeTest, InternalMatricesHoldGlobalDistances) {
  Graph g = testing::MakeRandomNetwork(300, 210);
  GTree::Options options;
  options.leaf_capacity = 16;
  GTree tree = GTree::Build(g, options);
  DijkstraSearch dijkstra(g);
  // Spot-check refined matrices against true global distances.
  Rng rng(211);
  for (size_t id = 0; id < tree.NumTreeNodes(); ++id) {
    const GTree::Node& nd = tree.node(static_cast<int32_t>(id));
    if (nd.is_leaf || nd.occupants.empty()) continue;
    for (int trial = 0; trial < 5; ++trial) {
      size_t i = rng.NextIndex(nd.occupants.size());
      size_t j = rng.NextIndex(nd.occupants.size());
      EXPECT_NEAR(nd.MatrixAt(i, j),
                  dijkstra.Distance(nd.occupants[i], nd.occupants[j]), 1e-6)
          << "node " << id;
    }
  }
}

TEST(GTreeSourceOracleTest, MatchesDistanceEverywhere) {
  Graph g = testing::MakeRandomNetwork(450, 215);
  GTree::Options options;
  options.leaf_capacity = 16;
  GTree tree = GTree::Build(g, options);
  Rng rng(216);
  for (int trial = 0; trial < 6; ++trial) {
    const VertexId source =
        static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    GTree::SourceOracle oracle(tree, source);
    EXPECT_EQ(oracle.source(), source);
    // Dense sample including same-leaf targets.
    for (int i = 0; i < 40; ++i) {
      const VertexId target =
          static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      EXPECT_NEAR(oracle.DistanceTo(target), tree.Distance(source, target),
                  1e-9)
          << source << "->" << target;
    }
    // All targets in the source's own leaf.
    const GTree::Node& leaf = tree.node(tree.LeafOf(source));
    for (VertexId target : leaf.vertices) {
      EXPECT_NEAR(oracle.DistanceTo(target), tree.Distance(source, target),
                  1e-9)
          << "same-leaf " << source << "->" << target;
    }
  }
}

TEST(GTreeKnnTest, ReportsObjectsInOrderWithExactDistances) {
  Graph g = testing::MakeRandomNetwork(500, 220);
  GTree::Options options;
  options.leaf_capacity = 16;
  GTree tree = GTree::Build(g, options);
  Rng rng(221);
  std::vector<VertexId> objects = testing::SampleVertices(g, 40, rng);
  IndexedVertexSet object_set(g.NumVertices(), objects);
  GTreeKnn knn(tree, object_set);

  for (int trial = 0; trial < 5; ++trial) {
    VertexId source = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    auto truth = DijkstraSssp(g, source);
    std::vector<std::pair<Weight, VertexId>> expected;
    for (VertexId o : objects) expected.push_back({truth[o], o});
    std::sort(expected.begin(), expected.end());

    auto search = knn.From(source);
    size_t rank = 0;
    Weight prev = -1.0;
    while (auto hit = search.Next()) {
      ASSERT_LT(rank, expected.size());
      EXPECT_NEAR(hit->distance, expected[rank].first, 1e-6)
          << "source " << source << " rank " << rank;
      EXPECT_GE(hit->distance, prev - 1e-9);
      prev = hit->distance;
      ++rank;
    }
    EXPECT_EQ(rank, objects.size());
  }
}

TEST(GTreeKnnTest, SourceIsObject) {
  Graph g = testing::MakeRandomNetwork(200, 230);
  GTree::Options options;
  options.leaf_capacity = 8;
  GTree tree = GTree::Build(g, options);
  IndexedVertexSet object_set(g.NumVertices(), {5, 50, 100});
  GTreeKnn knn(tree, object_set);
  auto search = knn.From(50);
  auto first = search.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, 50u);
  EXPECT_DOUBLE_EQ(first->distance, 0.0);
}

TEST(GTreeKnnTest, EmptyObjectSet) {
  Graph g = testing::MakeRandomNetwork(100, 240);
  GTree::Options options;
  options.leaf_capacity = 8;
  GTree tree = GTree::Build(g, options);
  IndexedVertexSet object_set(g.NumVertices(), {});
  GTreeKnn knn(tree, object_set);
  auto search = knn.From(0);
  EXPECT_FALSE(search.Next().has_value());
  EXPECT_GT(knn.OccMemoryBytes(), 0u);
}

TEST(GTreeKnnTest, ObjectsInSourceLeafFoundViaDetour) {
  // Same heavy-edge construction as the same-leaf distance test: an
  // object in the source leaf whose best path exits and re-enters.
  GraphBuilder builder;
  for (int i = 0; i < 16; ++i) {
    builder.AddVertex(Point{static_cast<double>(i) * 10.0, 0.0});
  }
  for (VertexId i = 0; i + 1 < 16; ++i) {
    builder.AddEdge(i, i + 1, i == 7 ? 1000.0 : 10.0);
  }
  VertexId bypass = builder.AddVertex(Point{75.0, 10.0});
  builder.AddEdge(7, bypass, 20.0);
  builder.AddEdge(bypass, 8, 20.0);
  Graph g = builder.Build();
  GTree::Options options;
  options.leaf_capacity = 4;
  GTree tree = GTree::Build(g, options);
  DijkstraSearch dijkstra(g);

  IndexedVertexSet object_set(g.NumVertices(), {6, 8, 9});
  GTreeKnn knn(tree, object_set);
  for (VertexId source : {VertexId{7}, VertexId{8}, VertexId{0}}) {
    auto search = knn.From(source);
    std::vector<std::pair<Weight, VertexId>> expected;
    for (VertexId o : object_set.members()) {
      expected.push_back({dijkstra.Distance(source, o), o});
    }
    std::sort(expected.begin(), expected.end());
    for (const auto& [d, o] : expected) {
      auto hit = search.Next();
      ASSERT_TRUE(hit.has_value());
      EXPECT_NEAR(hit->distance, d, 1e-9) << "source " << source;
    }
  }
}

}  // namespace
}  // namespace fannr
