#include "sp/ch/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

class ChSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChSeedTest, MatchesDijkstraOnRandomNetworks) {
  const uint64_t seed = GetParam();
  Graph g = testing::MakeRandomNetwork(400, seed);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  DijkstraSearch dijkstra(g);
  Rng rng(seed * 7);
  for (int i = 0; i < 40; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(ch.Distance(u, v), dijkstra.Distance(u, v), 1e-6)
        << "seed " << seed << " pair " << u << "->" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChSeedTest,
                         ::testing::Values(301, 302, 303));

TEST(ChTest, SelfAndAdjacent) {
  Graph g = testing::MakeLineGraph(6, 3.0);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  EXPECT_DOUBLE_EQ(ch.Distance(2, 2), 0.0);
  EXPECT_NEAR(ch.Distance(0, 5), 15.0, 1e-9);
  EXPECT_NEAR(ch.Distance(5, 0), 15.0, 1e-9);
}

TEST(ChTest, DisconnectedReturnsInfinity) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  EXPECT_EQ(ch.Distance(0, 2), kInfWeight);
  EXPECT_DOUBLE_EQ(ch.Distance(2, 3), 1.0);
}

TEST(ChTest, ShortcutsAreBounded) {
  Graph g = testing::MakeRandomNetwork(600, 310);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  // Road-network CH should add at most a few shortcuts per vertex.
  EXPECT_LT(ch.NumShortcuts(), 6 * g.NumVertices());
  EXPECT_GT(ch.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace fannr
