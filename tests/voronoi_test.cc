#include "sp/voronoi.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "sp/dijkstra.h"
#include "sp/incremental_nn.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(NetworkVoronoiTest, MatchesIncrementalNnOnRandomNetworks) {
  for (uint64_t seed : {601u, 602u}) {
    Graph g = testing::MakeRandomNetwork(400, seed);
    Rng rng(seed);
    std::vector<VertexId> sites = testing::SampleVertices(g, 12, rng);
    IndexedVertexSet site_set(g.NumVertices(), sites);
    NetworkVoronoi voronoi(g, site_set);

    for (int i = 0; i < 30; ++i) {
      const VertexId v =
          static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      IncrementalNnSearch nn(g, v, site_set);
      auto hit = nn.Next();
      ASSERT_TRUE(hit.has_value());
      EXPECT_NEAR(voronoi.DistanceToSite(v), hit->distance, 1e-9);
      // The assigned site must achieve the same distance (ties allowed).
      DijkstraSearch check(g);
      EXPECT_NEAR(check.Distance(v, voronoi.NearestSite(v)),
                  voronoi.DistanceToSite(v), 1e-9);
    }
  }
}

TEST(NetworkVoronoiTest, SitesAreTheirOwnNearest) {
  Graph g = testing::MakeRandomNetwork(200, 603);
  Rng rng(604);
  std::vector<VertexId> sites = testing::SampleVertices(g, 8, rng);
  IndexedVertexSet site_set(g.NumVertices(), sites);
  NetworkVoronoi voronoi(g, site_set);
  for (VertexId s : sites) {
    EXPECT_EQ(voronoi.NearestSite(s), s);
    EXPECT_DOUBLE_EQ(voronoi.DistanceToSite(s), 0.0);
  }
}

TEST(NetworkVoronoiTest, CellSizesPartitionTheGraph) {
  Graph g = testing::MakeRandomNetwork(500, 605);
  Rng rng(606);
  std::vector<VertexId> sites = testing::SampleVertices(g, 10, rng);
  IndexedVertexSet site_set(g.NumVertices(), sites);
  NetworkVoronoi voronoi(g, site_set);
  auto sizes = voronoi.CellSizes(site_set);
  size_t total = 0;
  for (size_t s : sizes) {
    EXPECT_GE(s, 1u);  // every site owns at least itself
    total += s;
  }
  EXPECT_EQ(total, g.NumVertices());  // connected graph: all assigned
}

TEST(NetworkVoronoiTest, UnreachableVerticesUnassigned) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  IndexedVertexSet site_set(g.NumVertices(), {0});
  NetworkVoronoi voronoi(g, site_set);
  EXPECT_EQ(voronoi.NearestSite(2), kInvalidVertex);
  EXPECT_EQ(voronoi.DistanceToSite(3), kInfWeight);
  EXPECT_EQ(voronoi.NearestSite(1), 0u);
}

TEST(ShortestPathTest, PathIsValidAndOptimal) {
  Graph g = testing::MakeRandomNetwork(300, 607);
  DijkstraSearch dijkstra(g);
  Rng rng(608);
  for (int i = 0; i < 20; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    const auto path = ShortestPath(g, s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    // Edge-by-edge length must equal the shortest distance.
    Weight length = 0.0;
    for (size_t j = 0; j + 1 < path.size(); ++j) {
      Weight edge = kInfWeight;
      for (const Arc& a : g.Neighbors(path[j])) {
        if (a.to == path[j + 1]) edge = std::min(edge, a.weight);
      }
      ASSERT_NE(edge, kInfWeight) << "non-edge in path";
      length += edge;
    }
    EXPECT_NEAR(length, dijkstra.Distance(s, t), 1e-9);
  }
}

TEST(ShortestPathTest, TrivialAndUnreachable) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 2.0);
  Graph g = builder.Build();
  EXPECT_EQ(ShortestPath(g, 1, 1), std::vector<VertexId>{1});
  EXPECT_EQ(ShortestPath(g, 0, 1), (std::vector<VertexId>{0, 1}));
  EXPECT_TRUE(ShortestPath(g, 0, 2).empty());
}

}  // namespace
}  // namespace fannr
