#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace fannr {
namespace {

std::vector<RTree::Item> RandomItems(size_t n, uint64_t seed,
                                     double extent = 1000.0) {
  Rng rng(seed);
  std::vector<RTree::Item> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back({Point{rng.NextDouble(0.0, extent),
                           rng.NextDouble(0.0, extent)},
                     static_cast<uint32_t>(i)});
  }
  return items;
}

std::vector<uint32_t> BruteForceRange(const std::vector<RTree::Item>& items,
                                      const Mbr& range) {
  std::vector<uint32_t> ids;
  for (const auto& it : items) {
    if (range.Contains(it.point)) ids.push_back(it.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(MbrTest, ExtendAndContain) {
  Mbr m;
  EXPECT_TRUE(m.Empty());
  m.Extend(Point{1.0, 2.0});
  EXPECT_FALSE(m.Empty());
  EXPECT_TRUE(m.Contains(Point{1.0, 2.0}));
  m.Extend(Point{-1.0, 5.0});
  EXPECT_TRUE(m.Contains(Point{0.0, 3.0}));
  EXPECT_FALSE(m.Contains(Point{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(m.Area(), 2.0 * 3.0);
}

TEST(MbrTest, MinDistProperties) {
  Mbr m;
  m.Extend(Point{0.0, 0.0});
  m.Extend(Point{10.0, 10.0});
  EXPECT_DOUBLE_EQ(MinDist(m, Point{5.0, 5.0}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(MinDist(m, Point{15.0, 5.0}), 5.0);  // right of
  EXPECT_DOUBLE_EQ(MinDist(m, Point{13.0, 14.0}), 5.0);  // corner 3-4-5
}

TEST(MbrTest, MinDistLowerBoundsContainedPoints) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    Mbr m;
    std::vector<Point> pts;
    for (int i = 0; i < 8; ++i) {
      Point p{rng.NextDouble(0.0, 100.0), rng.NextDouble(0.0, 100.0)};
      pts.push_back(p);
      m.Extend(p);
    }
    Point q{rng.NextDouble(-50.0, 150.0), rng.NextDouble(-50.0, 150.0)};
    const double bound = MinDist(m, q);
    for (const Point& p : pts) {
      EXPECT_LE(bound, EuclideanDistance(p, q) + 1e-9);
    }
  }
}

TEST(MbrTest, MbrToMbrMinDist) {
  Mbr a, b;
  a.Extend(Point{0.0, 0.0});
  a.Extend(Point{1.0, 1.0});
  b.Extend(Point{4.0, 5.0});
  b.Extend(Point{6.0, 7.0});
  EXPECT_DOUBLE_EQ(MinDist(a, b), 5.0);  // 3-4-5 gap
  Mbr c;
  c.Extend(Point{0.5, 0.5});
  c.Extend(Point{2.0, 2.0});
  EXPECT_DOUBLE_EQ(MinDist(a, c), 0.0);  // overlapping
}

TEST(RTreeTest, BulkLoadHoldsAllItems) {
  auto items = RandomItems(500, 1);
  RTree tree = RTree::BulkLoad(items);
  EXPECT_EQ(tree.size(), 500u);
  Mbr everything;
  everything.Extend(Point{-1.0, -1.0});
  everything.Extend(Point{1001.0, 1001.0});
  EXPECT_EQ(BruteForceRange(items, everything).size(), 500u);
  auto got = tree.RangeQuery(everything);
  EXPECT_EQ(got.size(), 500u);
}

TEST(RTreeTest, RangeQueryMatchesBruteForce) {
  auto items = RandomItems(400, 2);
  RTree tree = RTree::BulkLoad(items);
  Rng rng(22);
  for (int trial = 0; trial < 25; ++trial) {
    Mbr range;
    range.Extend(Point{rng.NextDouble(0.0, 1000.0),
                       rng.NextDouble(0.0, 1000.0)});
    range.Extend(Point{rng.NextDouble(0.0, 1000.0),
                       rng.NextDouble(0.0, 1000.0)});
    auto expected = BruteForceRange(items, range);
    auto got_items = tree.RangeQuery(range);
    std::vector<uint32_t> got;
    for (const auto& it : got_items) got.push_back(it.id);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(RTreeTest, InsertMatchesBulkLoadQueries) {
  auto items = RandomItems(300, 3);
  RTree bulk = RTree::BulkLoad(items);
  RTree incremental;
  for (const auto& it : items) incremental.Insert(it);
  EXPECT_EQ(incremental.size(), bulk.size());

  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    Mbr range;
    range.Extend(Point{rng.NextDouble(0.0, 1000.0),
                       rng.NextDouble(0.0, 1000.0)});
    range.Extend(Point{rng.NextDouble(0.0, 1000.0),
                       rng.NextDouble(0.0, 1000.0)});
    auto a = bulk.RangeQuery(range);
    auto b = incremental.RangeQuery(range);
    std::vector<uint32_t> ids_a, ids_b;
    for (const auto& it : a) ids_a.push_back(it.id);
    for (const auto& it : b) ids_b.push_back(it.id);
    std::sort(ids_a.begin(), ids_a.end());
    std::sort(ids_b.begin(), ids_b.end());
    EXPECT_EQ(ids_a, ids_b);
  }
}

TEST(RTreeTest, NearestNeighborOrderingMatchesBruteForce) {
  auto items = RandomItems(250, 4);
  RTree tree = RTree::BulkLoad(items);
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    Point q{rng.NextDouble(0.0, 1000.0), rng.NextDouble(0.0, 1000.0)};
    std::vector<double> expected;
    for (const auto& it : items) {
      expected.push_back(EuclideanDistance(it.point, q));
    }
    std::sort(expected.begin(), expected.end());

    auto it = tree.NearestNeighbors(q);
    size_t rank = 0;
    double prev = -1.0;
    while (auto hit = it.Next()) {
      ASSERT_LT(rank, expected.size());
      EXPECT_NEAR(hit->distance, expected[rank], 1e-9);
      EXPECT_GE(hit->distance, prev);
      prev = hit->distance;
      ++rank;
    }
    EXPECT_EQ(rank, items.size());
  }
}

TEST(RTreeTest, PeekDistanceMatchesNext) {
  auto items = RandomItems(100, 5);
  RTree tree = RTree::BulkLoad(items);
  auto it = tree.NearestNeighbors(Point{500.0, 500.0});
  for (int i = 0; i < 50; ++i) {
    double peek = it.PeekDistance();
    auto hit = it.Next();
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(peek, hit->distance);
  }
}

TEST(RTreeTest, EmptyTreeBehaves) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Bounds().Empty());
  auto it = tree.NearestNeighbors(Point{0.0, 0.0});
  EXPECT_FALSE(it.Next().has_value());
  EXPECT_TRUE(std::isinf(it.PeekDistance()));
  Mbr everything;
  everything.Extend(Point{-1e9, -1e9});
  everything.Extend(Point{1e9, 1e9});
  EXPECT_TRUE(tree.RangeQuery(everything).empty());
}

TEST(RTreeTest, DuplicatePointsAllRetrievable) {
  std::vector<RTree::Item> items;
  for (uint32_t i = 0; i < 10; ++i) {
    items.push_back({Point{5.0, 5.0}, i});
  }
  RTree tree = RTree::BulkLoad(items);
  auto it = tree.NearestNeighbors(Point{5.0, 5.0});
  std::set<uint32_t> ids;
  while (auto hit = it.Next()) {
    EXPECT_DOUBLE_EQ(hit->distance, 0.0);
    ids.insert(hit->item.id);
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(RTreeTest, StructuralTraversalCoversAllItems) {
  auto items = RandomItems(200, 6);
  RTree tree = RTree::BulkLoad(items);
  std::set<uint32_t> seen;
  std::vector<RTree::NodeId> stack{tree.Root()};
  while (!stack.empty()) {
    RTree::NodeId node = stack.back();
    stack.pop_back();
    if (tree.IsLeaf(node)) {
      for (const auto& it : tree.Items(node)) {
        EXPECT_TRUE(tree.NodeMbr(node).Contains(it.point));
        seen.insert(it.id);
      }
    } else {
      for (const auto& child : tree.Children(node)) {
        EXPECT_EQ(child.mbr, tree.NodeMbr(child.node));
        stack.push_back(child.node);
      }
    }
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(RTreeTest, FanoutFourIsRespected) {
  auto items = RandomItems(100, 7);
  RTree tree = RTree::BulkLoad(items);  // default max_entries = 4
  std::vector<RTree::NodeId> stack{tree.Root()};
  while (!stack.empty()) {
    RTree::NodeId node = stack.back();
    stack.pop_back();
    if (tree.IsLeaf(node)) {
      EXPECT_LE(tree.Items(node).size(), 4u);
    } else {
      EXPECT_LE(tree.Children(node).size(), 4u);
      for (const auto& child : tree.Children(node)) {
        stack.push_back(child.node);
      }
    }
  }
  EXPECT_GE(tree.Height(), 3u);
}

}  // namespace
}  // namespace fannr
