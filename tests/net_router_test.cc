// FannRouter: sharded serving must be observationally identical to a
// single node. The merge is a pure function of the per-shard answer
// set (never of arrival order); a 2-shard deployment answers bitwise
// what one server answers, before and after a replicated weight wave,
// at every engine thread count; a shard updated behind the router's
// back is detected and the query rejected with the engine's canonical
// mid-batch epoch reason; and a killed-and-restarted replica rejoins
// the fleet epoch by WAL replay plus router catch-up instead of a
// rebuild.

#include "net/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/update.h"
#include "dynamic/wal.h"
#include "engine/batch_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard_plan.h"
#include "test_util.h"

namespace fannr::net {
namespace {

constexpr uint64_t kGraphSeed = 4242;
constexpr size_t kGraphVertices = 300;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fannr_router_" + name;
}

// --- MergeShardAnswers: a pure function of the answer set ----------------

ShardAnswer OkAnswer(uint32_t shard, uint32_t best, double distance,
                     uint64_t gphi, uint64_t epoch = 7) {
  ShardAnswer a;
  a.shard = shard;
  a.transport_ok = true;
  a.graph_epoch = epoch;
  a.result.status = static_cast<uint8_t>(QueryStatus::kOk);
  a.result.best = best;
  a.result.distance = distance;
  a.result.gphi_evaluations = gphi;
  a.result.subset = {best, best + 1};
  return a;
}

/// Runs the merge over every rotation and the reverse of `answers`;
/// all outcomes must be identical to merging the original order.
void ExpectOrderIndependent(std::vector<ShardAnswer> answers) {
  const MergedAnswer expected = MergeShardAnswers(answers);
  auto expect_same = [&](const std::vector<ShardAnswer>& permuted,
                         const std::string& label) {
    const MergedAnswer merged = MergeShardAnswers(permuted);
    EXPECT_EQ(merged.is_error, expected.is_error) << label;
    EXPECT_EQ(merged.error_code, expected.error_code) << label;
    EXPECT_EQ(merged.error_message, expected.error_message) << label;
    EXPECT_EQ(merged.epochs_disagree, expected.epochs_disagree) << label;
    EXPECT_EQ(merged.graph_epoch, expected.graph_epoch) << label;
    EXPECT_EQ(merged.result.status, expected.result.status) << label;
    EXPECT_EQ(merged.result.best, expected.result.best) << label;
    EXPECT_EQ(merged.result.distance, expected.result.distance) << label;
    EXPECT_EQ(merged.result.gphi_evaluations,
              expected.result.gphi_evaluations)
        << label;
    EXPECT_EQ(merged.result.subset, expected.result.subset) << label;
    EXPECT_EQ(merged.result.error, expected.result.error) << label;
  };
  std::vector<ShardAnswer> rotated = answers;
  for (size_t r = 0; r < answers.size(); ++r) {
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    expect_same(rotated, "rotation " + std::to_string(r));
  }
  std::reverse(rotated.begin(), rotated.end());
  expect_same(rotated, "reversed");
}

TEST(MergeShardAnswers, CanonicalMinimumWithTiesSummedWork) {
  // Shards 2 and 0 tie on distance; the canonical (distance, id) order
  // picks the smaller vertex id no matter who answered first.
  std::vector<ShardAnswer> answers = {
      OkAnswer(0, 50, 3.25, 11),
      OkAnswer(1, 90, 4.00, 7),
      OkAnswer(2, 12, 3.25, 5),
      OkAnswer(3, 0xFFFFFFFFu, 0.0, 2),  // infeasible in its P-subset
  };
  const MergedAnswer merged = MergeShardAnswers(answers);
  EXPECT_FALSE(merged.is_error);
  EXPECT_FALSE(merged.epochs_disagree);
  EXPECT_EQ(merged.result.best, 12u);
  EXPECT_EQ(merged.result.distance, 3.25);
  EXPECT_EQ(merged.result.gphi_evaluations, 11u + 7u + 5u + 2u);
  EXPECT_EQ(merged.result.subset, (std::vector<uint32_t>{12, 13}));
  ExpectOrderIndependent(answers);
}

TEST(MergeShardAnswers, AllInfeasibleStaysInfeasible) {
  std::vector<ShardAnswer> answers = {
      OkAnswer(0, 0xFFFFFFFFu, 0.0, 3),
      OkAnswer(1, 0xFFFFFFFFu, 0.0, 4),
  };
  const MergedAnswer merged = MergeShardAnswers(answers);
  EXPECT_FALSE(merged.is_error);
  EXPECT_EQ(merged.result.best, 0xFFFFFFFFu);
  EXPECT_EQ(merged.result.gphi_evaluations, 7u);
  ExpectOrderIndependent(answers);
}

TEST(MergeShardAnswers, SeverityPriorityAndLowestShardSelection) {
  ShardAnswer dead;
  dead.shard = 2;
  dead.transport_ok = false;
  dead.error_message = "connection reset";

  ShardAnswer overloaded;
  overloaded.shard = 3;
  overloaded.transport_ok = true;
  overloaded.is_error = true;
  overloaded.error_code = ErrorCode::kOverloaded;
  overloaded.error_message = "queue full";

  ShardAnswer draining;
  draining.shard = 1;
  draining.transport_ok = true;
  draining.is_error = true;
  draining.error_code = ErrorCode::kShuttingDown;
  draining.error_message = "draining";

  ShardAnswer rejected = OkAnswer(0, 5, 1.0, 1);
  rejected.result = WireResult{};
  rejected.result.status = static_cast<uint8_t>(QueryStatus::kRejected);
  rejected.result.error = "bad job";

  ShardAnswer timed_out = OkAnswer(4, 6, 1.0, 1);
  timed_out.result = WireResult{};
  timed_out.result.status = static_cast<uint8_t>(QueryStatus::kTimedOut);
  timed_out.result.error = "deadline";

  const ShardAnswer ok = OkAnswer(5, 9, 2.0, 8);

  // Transport failure trumps everything.
  {
    std::vector<ShardAnswer> answers = {ok, overloaded, dead, draining};
    const MergedAnswer merged = MergeShardAnswers(answers);
    EXPECT_TRUE(merged.is_error);
    EXPECT_EQ(merged.error_code, ErrorCode::kInternal);
    EXPECT_NE(merged.error_message.find("shard 2"), std::string::npos);
    ExpectOrderIndependent(answers);
  }
  // Overload beats other error frames (it is the retryable verdict).
  {
    std::vector<ShardAnswer> answers = {draining, ok, overloaded};
    const MergedAnswer merged = MergeShardAnswers(answers);
    EXPECT_TRUE(merged.is_error);
    EXPECT_EQ(merged.error_code, ErrorCode::kOverloaded);
    EXPECT_EQ(merged.error_message, "queue full");
    ExpectOrderIndependent(answers);
  }
  // Error frames beat per-job statuses.
  {
    std::vector<ShardAnswer> answers = {rejected, draining, ok};
    const MergedAnswer merged = MergeShardAnswers(answers);
    EXPECT_TRUE(merged.is_error);
    EXPECT_EQ(merged.error_code, ErrorCode::kShuttingDown);
    ExpectOrderIndependent(answers);
  }
  // A rejection anywhere poisons the job, relayed over a timeout.
  {
    std::vector<ShardAnswer> answers = {timed_out, ok, rejected};
    const MergedAnswer merged = MergeShardAnswers(answers);
    EXPECT_FALSE(merged.is_error);
    EXPECT_EQ(merged.result.status,
              static_cast<uint8_t>(QueryStatus::kRejected));
    EXPECT_EQ(merged.result.error, "bad job");
    ExpectOrderIndependent(answers);
  }
  {
    std::vector<ShardAnswer> answers = {ok, timed_out};
    const MergedAnswer merged = MergeShardAnswers(answers);
    EXPECT_EQ(merged.result.status,
              static_cast<uint8_t>(QueryStatus::kTimedOut));
    ExpectOrderIndependent(answers);
  }
}

TEST(MergeShardAnswers, EpochDisagreementIsFlaggedWithMaxEpoch) {
  std::vector<ShardAnswer> answers = {
      OkAnswer(0, 5, 1.0, 1, /*epoch=*/3),
      OkAnswer(1, 6, 2.0, 1, /*epoch=*/5),
  };
  const MergedAnswer merged = MergeShardAnswers(answers);
  EXPECT_FALSE(merged.is_error);
  EXPECT_TRUE(merged.epochs_disagree);
  EXPECT_EQ(merged.graph_epoch, 5u);
  ExpectOrderIndependent(answers);
}

// --- end-to-end: 2 shards + router vs one single-node server -------------

/// One shard server plus everything it must outlive.
struct ShardNode {
  ShardNode(uint64_t seed, size_t vertices)
      : graph(testing::MakeRandomNetwork(vertices, seed)) {}

  bool Start(size_t threads, uint16_t port, dynamic::UpdateWal* wal,
             std::string* error) {
    resources = GphiResources{};
    resources.graph = &graph;
    ServerConfig config;
    config.port = port;
    config.engine_options.num_threads = threads;
    config.wal = wal;
    server = std::make_unique<FannServer>(&graph, resources, std::move(config));
    return server->Start(error);
  }

  void Stop() {
    server->RequestShutdown();
    server->Wait();
    server.reset();
  }

  Graph graph;
  GphiResources resources;
  std::unique_ptr<FannServer> server;
};

/// Exact-solver jobs over P sets that straddle both shards, plus the
/// screening shapes (unsupported pairing, empty P, out-of-range id)
/// whose rejection text must survive the fan-out verbatim.
std::vector<WireQuery> BuildShardedJobs(const Graph& graph) {
  const FannAlgorithm algorithms[] = {
      FannAlgorithm::kNaive,
      FannAlgorithm::kGd,
      FannAlgorithm::kRList,
      FannAlgorithm::kExactMax,
  };
  const double phis[] = {0.3, 0.5, 1.0};
  std::vector<WireQuery> jobs;
  for (size_t i = 0; i < 9; ++i) {
    const FannAlgorithm algorithm = algorithms[i % 4];
    Aggregate aggregate = (i % 2 == 0) ? Aggregate::kMax : Aggregate::kSum;
    if (algorithm == FannAlgorithm::kExactMax) aggregate = Aggregate::kMax;

    Rng rng(9100 + i);
    const std::vector<VertexId> p = testing::SampleVertices(graph, 16, rng);
    const std::vector<VertexId> q = testing::SampleVertices(graph, 8, rng);
    WireQuery job;
    job.algorithm = static_cast<uint8_t>(algorithm);
    job.aggregate = static_cast<uint8_t>(aggregate);
    job.phi = phis[i % 3];
    job.p = std::vector<uint32_t>(p.begin(), p.end());
    job.q = std::vector<uint32_t>(q.begin(), q.end());
    jobs.push_back(std::move(job));
  }
  // Unsupported (algorithm, aggregate) pairing: rejected with the
  // engine's reason on every shard, relayed once.
  jobs[6].algorithm = static_cast<uint8_t>(FannAlgorithm::kApxSum);
  jobs[6].aggregate = static_cast<uint8_t>(Aggregate::kMax);
  // Empty P: unsplittable, passed through whole to shard 0.
  jobs[7].p.clear();
  // An out-of-range data point: also a passthrough, rejected by the
  // shard with the same screening text a single server produces.
  jobs[8].p.push_back(static_cast<uint32_t>(graph.NumVertices()) + 3);
  return jobs;
}

uint64_t DistanceBits(double distance) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(distance));
  std::memcpy(&bits, &distance, sizeof(bits));
  return bits;
}

/// Bitwise comparison minus gphi_evaluations: the router reports the
/// summed work of all shards, which legitimately differs from the
/// single-node counter. Everything the answer *means* must be equal.
void ExpectAnswerEqual(const WireResult& sharded, const WireResult& single,
                       const std::string& label) {
  EXPECT_EQ(sharded.status, single.status) << label;
  EXPECT_EQ(sharded.best, single.best) << label;
  EXPECT_EQ(DistanceBits(sharded.distance), DistanceBits(single.distance))
      << label << ": sharded " << sharded.distance << " vs single "
      << single.distance;
  EXPECT_EQ(sharded.subset, single.subset) << label;
  EXPECT_EQ(sharded.error, single.error) << label;
}

TEST(FannRouter, TwoShardDifferentialAcrossThreadsAndUpdates) {
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("engine threads = " + std::to_string(threads));

    ShardNode shard0(kGraphSeed, kGraphVertices);
    ShardNode shard1(kGraphSeed, kGraphVertices);
    ShardNode single(kGraphSeed, kGraphVertices);
    const ShardPlan plan = ShardPlan::Build(shard0.graph, 2);
    const std::vector<WireQuery> jobs = BuildShardedJobs(single.graph);

    std::string error;
    ASSERT_TRUE(shard0.Start(threads, 0, nullptr, &error)) << error;
    ASSERT_TRUE(shard1.Start(threads, 0, nullptr, &error)) << error;
    ASSERT_TRUE(single.Start(threads, 0, nullptr, &error)) << error;

    RouterConfig router_config;
    router_config.shards = {{"127.0.0.1", shard0.server->port()},
                            {"127.0.0.1", shard1.server->port()}};
    FannRouter router(plan, router_config);
    ASSERT_TRUE(router.Start(&error)) << error;

    FannClient via_router;
    FannClient via_single;
    ASSERT_TRUE(via_router.Connect("127.0.0.1", router.port()))
        << via_router.last_error();
    ASSERT_TRUE(via_single.Connect("127.0.0.1", single.server->port()))
        << via_single.last_error();

    auto compare_batch = [&](uint64_t expected_epoch,
                             const std::string& label) {
      BatchRequest request;
      request.jobs = jobs;
      BatchResponse sharded;
      BatchResponse reference;
      ASSERT_TRUE(via_router.Batch(request, sharded))
          << via_router.last_error();
      ASSERT_TRUE(via_single.Batch(request, reference))
          << via_single.last_error();
      EXPECT_EQ(sharded.graph_epoch, expected_epoch) << label;
      EXPECT_EQ(reference.graph_epoch, expected_epoch) << label;
      ASSERT_EQ(sharded.results.size(), reference.results.size()) << label;
      for (size_t i = 0; i < sharded.results.size(); ++i) {
        ExpectAnswerEqual(sharded.results[i], reference.results[i],
                          label + " job " + std::to_string(i));
      }
      // The single QUERY path fans out identically.
      QueryResponse q_sharded;
      QueryResponse q_reference;
      QueryRequest one;
      one.query = jobs[0];
      ASSERT_TRUE(via_router.Query(one.query, q_sharded))
          << via_router.last_error();
      ASSERT_TRUE(via_single.Query(one.query, q_reference))
          << via_single.last_error();
      ExpectAnswerEqual(q_sharded.result, q_reference.result,
                        label + " single query");
    };

    compare_batch(0, "steady");

    // One congestion wave, replicated by the router and applied to the
    // single node over its ordinary update path.
    Rng wave_rng(321);
    const dynamic::UpdateBatch wave =
        dynamic::MakeCongestionWave(single.graph, 0.05, 0.5, 3.0, wave_rng);
    ASSERT_FALSE(wave.empty());
    UpdateWeightsRequest update;
    for (const EdgeWeightUpdate& u : wave.updates()) {
      update.entries.push_back({u.u, u.v, u.new_weight});
    }
    UpdateWeightsResponse via_router_response;
    UpdateWeightsResponse via_single_response;
    ASSERT_TRUE(via_router.UpdateWeights(update, via_router_response))
        << via_router.last_error();
    ASSERT_TRUE(via_single.UpdateWeights(update, via_single_response))
        << via_single.last_error();
    EXPECT_EQ(via_router_response.status, 0);
    EXPECT_EQ(via_router_response.new_epoch, 1u);
    EXPECT_EQ(via_router_response.applied, via_single_response.applied);
    EXPECT_EQ(router.repl_epoch(), 1u);

    compare_batch(1, "post-wave");

    // Replication rejections relay too: an entry naming a non-edge is
    // refused by every replica with the single-node reason, applied
    // nowhere, and leaves the fleet epoch alone.
    UpdateWeightsRequest bogus;
    bogus.entries.push_back({0, 0, 1.0});
    UpdateWeightsResponse bogus_via_router;
    UpdateWeightsResponse bogus_via_single;
    ASSERT_TRUE(via_router.UpdateWeights(bogus, bogus_via_router))
        << via_router.last_error();
    ASSERT_TRUE(via_single.UpdateWeights(bogus, bogus_via_single))
        << via_single.last_error();
    EXPECT_EQ(bogus_via_router.status, 1);
    EXPECT_EQ(bogus_via_router.error, bogus_via_single.error);
    EXPECT_EQ(router.repl_epoch(), 1u);

    router.RequestShutdown();
    router.Wait();
    shard0.Stop();
    shard1.Stop();
    single.Stop();
  }
}

TEST(FannRouter, RogueShardUpdateRejectsWithCanonicalStaleReason) {
  ShardNode shard0(kGraphSeed, kGraphVertices);
  ShardNode shard1(kGraphSeed, kGraphVertices);
  const ShardPlan plan = ShardPlan::Build(shard0.graph, 2);

  std::string error;
  ASSERT_TRUE(shard0.Start(1, 0, nullptr, &error)) << error;
  ASSERT_TRUE(shard1.Start(1, 0, nullptr, &error)) << error;

  RouterConfig router_config;
  router_config.shards = {{"127.0.0.1", shard0.server->port()},
                          {"127.0.0.1", shard1.server->port()}};
  FannRouter router(plan, router_config);
  ASSERT_TRUE(router.Start(&error)) << error;

  // An operator (or bug) updates shard 0 directly, behind the router's
  // back: the fleet now disagrees mid-wave and no router-side sync can
  // reconcile it (shard 0 is *ahead* of the router's history).
  {
    Rng rogue_rng(77);
    const dynamic::UpdateBatch rogue =
        dynamic::MakeCongestionWave(shard0.graph, 0.05, 0.5, 3.0, rogue_rng);
    ASSERT_FALSE(rogue.empty());
    FannClient direct;
    ASSERT_TRUE(direct.Connect("127.0.0.1", shard0.server->port()))
        << direct.last_error();
    UpdateWeightsRequest update;
    for (const EdgeWeightUpdate& u : rogue.updates()) {
      update.entries.push_back({u.u, u.v, u.new_weight});
    }
    UpdateWeightsResponse response;
    ASSERT_TRUE(direct.UpdateWeights(update, response))
        << direct.last_error();
    ASSERT_EQ(response.status, 0);
    ASSERT_EQ(response.new_epoch, 1u);
  }

  // A query spanning both shards would mix epoch-1 and epoch-0 weights;
  // after the one sync-and-retry it must be rejected with the exact
  // reason the engine uses for a mid-batch epoch change.
  WireQuery job;
  job.algorithm = static_cast<uint8_t>(FannAlgorithm::kNaive);
  job.aggregate = static_cast<uint8_t>(Aggregate::kSum);
  job.phi = 0.5;
  for (uint32_t v = 0, taken0 = 0, taken1 = 0;
       v < plan.num_vertices() && (taken0 < 8 || taken1 < 8); ++v) {
    uint32_t& taken = plan.OwnerOf(v) == 0 ? taken0 : taken1;
    if (taken < 8) {
      job.p.push_back(v);
      ++taken;
    }
  }
  Rng q_rng(5);
  const std::vector<VertexId> q =
      testing::SampleVertices(shard0.graph, 6, q_rng);
  job.q = std::vector<uint32_t>(q.begin(), q.end());

  FannClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()))
      << client.last_error();
  QueryResponse response;
  ASSERT_TRUE(client.Query(job, response)) << client.last_error();
  EXPECT_EQ(response.result.status,
            static_cast<uint8_t>(QueryStatus::kRejected));
  EXPECT_EQ(response.result.error, MidBatchEpochError(0, 1));

  std::string stats;
  ASSERT_TRUE(client.Stats(stats)) << client.last_error();
  EXPECT_NE(stats.find("\"router.fanout.epoch_retries\": 1"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"router.stale_rejections\": 1"), std::string::npos)
      << stats;

  router.RequestShutdown();
  router.Wait();
  shard0.Stop();
  shard1.Stop();
}

TEST(FannRouter, KilledReplicaRejoinsViaWalCatchUp) {
  const std::string router_wal_path = TempPath("router.wal");
  const std::string shard1_wal_path = TempPath("shard1.wal");
  std::remove(router_wal_path.c_str());
  std::remove(shard1_wal_path.c_str());

  // gen_graph evolves alongside the fleet and generates each wave from
  // the correct epoch; it doubles as the in-process reference.
  Graph gen_graph = testing::MakeRandomNetwork(kGraphVertices, kGraphSeed);
  const GraphFingerprint epoch0 = gen_graph.Fingerprint();

  ShardNode shard0(kGraphSeed, kGraphVertices);
  auto shard1 = std::make_unique<ShardNode>(kGraphSeed, kGraphVertices);
  const ShardPlan plan = ShardPlan::Build(shard0.graph, 2);

  std::string error;
  std::unique_ptr<dynamic::UpdateWal> router_wal =
      dynamic::UpdateWal::Open(router_wal_path, epoch0, &error);
  ASSERT_NE(router_wal, nullptr) << error;
  std::unique_ptr<dynamic::UpdateWal> shard1_wal =
      dynamic::UpdateWal::Open(shard1_wal_path, epoch0, &error);
  ASSERT_NE(shard1_wal, nullptr) << error;

  ASSERT_TRUE(shard0.Start(1, 0, nullptr, &error)) << error;
  ASSERT_TRUE(shard1->Start(1, 0, shard1_wal.get(), &error)) << error;
  const uint16_t shard1_port = shard1->server->port();

  RouterConfig router_config;
  router_config.shards = {{"127.0.0.1", shard0.server->port()},
                          {"127.0.0.1", shard1_port}};
  router_config.wal = router_wal.get();
  auto router = std::make_unique<FannRouter>(plan, router_config);
  ASSERT_TRUE(router->Start(&error)) << error;

  FannClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router->port()))
      << client.last_error();

  auto send_wave = [&](uint64_t seed, uint64_t expected_epoch) {
    Rng rng(seed);
    const dynamic::UpdateBatch wave =
        dynamic::MakeCongestionWave(gen_graph, 0.05, 0.5, 3.0, rng);
    ASSERT_FALSE(wave.empty());
    UpdateWeightsRequest update;
    for (const EdgeWeightUpdate& u : wave.updates()) {
      update.entries.push_back({u.u, u.v, u.new_weight});
    }
    UpdateWeightsResponse response;
    ASSERT_TRUE(client.UpdateWeights(update, response))
        << client.last_error();
    ASSERT_EQ(response.status, 0);
    EXPECT_EQ(response.new_epoch, expected_epoch);
    wave.Apply(gen_graph);
    ASSERT_EQ(gen_graph.epoch(), expected_epoch);
  };

  // Wave 1 reaches both replicas (and shard 1's own WAL through the
  // server's REPL_APPLY durability path).
  send_wave(8801, 1);
  EXPECT_EQ(router->repl_epoch(), 1u);

  // Kill replica 1, then replicate wave 2 while it is down: the update
  // must still succeed through replica 0, with the record retained in
  // the router's WAL for the eventual catch-up.
  shard1->Stop();
  shard1.reset();
  shard1_wal.reset();
  send_wave(8802, 2);
  EXPECT_EQ(router->repl_epoch(), 2u);

  // Restart the replica the way a real process would: fresh epoch-0
  // graph, replay its own WAL (reaching epoch 1 — its position when it
  // died), listen on the same address.
  shard1 = std::make_unique<ShardNode>(kGraphSeed, kGraphVertices);
  shard1_wal = dynamic::UpdateWal::Open(shard1_wal_path, epoch0, &error);
  ASSERT_NE(shard1_wal, nullptr) << error;
  ASSERT_EQ(shard1_wal->records().size(), 1u);
  ASSERT_EQ(shard1_wal->ReplayInto(shard1->graph, &error), 1u) << error;
  ASSERT_EQ(shard1->graph.epoch(), 1u);
  ASSERT_TRUE(shard1->Start(1, shard1_port, shard1_wal.get(), &error))
      << error;

  // A spanning query now hits the stale replica; the router detects the
  // epoch disagreement, replays the missing tail (exactly wave 2 — one
  // record), retries, and answers correctly at the fleet epoch.
  WireQuery job;
  job.algorithm = static_cast<uint8_t>(FannAlgorithm::kNaive);
  job.aggregate = static_cast<uint8_t>(Aggregate::kSum);
  job.phi = 0.5;
  for (uint32_t v = 0, taken0 = 0, taken1 = 0;
       v < plan.num_vertices() && (taken0 < 8 || taken1 < 8); ++v) {
    uint32_t& taken = plan.OwnerOf(v) == 0 ? taken0 : taken1;
    if (taken < 8) {
      job.p.push_back(v);
      ++taken;
    }
  }
  Rng q_rng(6);
  const std::vector<VertexId> q = testing::SampleVertices(gen_graph, 6, q_rng);
  job.q = std::vector<uint32_t>(q.begin(), q.end());

  QueryResponse sharded;
  ASSERT_TRUE(client.Query(job, sharded)) << client.last_error();
  EXPECT_EQ(sharded.graph_epoch, 2u);
  EXPECT_EQ(sharded.result.status, static_cast<uint8_t>(QueryStatus::kOk));

  // Reference: the same job solved in-process on the twice-updated
  // graph must agree bitwise (minus the summed work counter).
  {
    GphiResources resources;
    resources.graph = &gen_graph;
    BatchQueryEngine reference(resources, BatchOptions{});
    IndexedVertexSet p_set(gen_graph.NumVertices(),
                           std::vector<VertexId>(job.p.begin(), job.p.end()));
    IndexedVertexSet q_set(gen_graph.NumVertices(),
                           std::vector<VertexId>(job.q.begin(), job.q.end()));
    FannrQuery reference_job;
    reference_job.query.graph = &gen_graph;
    reference_job.query.data_points = &p_set;
    reference_job.query.query_points = &q_set;
    reference_job.query.phi = job.phi;
    reference_job.query.aggregate = static_cast<Aggregate>(job.aggregate);
    reference_job.algorithm = static_cast<FannAlgorithm>(job.algorithm);
    const std::vector<FannResult> results = reference.Run({reference_job});
    ExpectAnswerEqual(sharded.result, ToWire(results[0]), "post-catch-up");
  }

  // The catch-up replayed exactly the one missing record, and the
  // replica's next answers come from the fleet epoch (checked above via
  // graph_epoch == 2 on a spanning query).
  std::string stats;
  ASSERT_TRUE(client.Stats(stats)) << client.last_error();
  EXPECT_NE(stats.find("\"router.catch_up.records\": 1"), std::string::npos)
      << stats;

  // Router restart: a new router adopting the same WAL starts at the
  // fleet epoch with nothing to replay and serves immediately.
  router->RequestShutdown();
  router->Wait();
  router.reset();
  client.Close();
  router_wal = dynamic::UpdateWal::Open(router_wal_path, epoch0, &error);
  ASSERT_NE(router_wal, nullptr) << error;
  EXPECT_EQ(router_wal->records().size(), 2u);
  EXPECT_EQ(router_wal->end_epoch(), 2u);
  router_config.wal = router_wal.get();
  auto router2 = std::make_unique<FannRouter>(plan, router_config);
  ASSERT_TRUE(router2->Start(&error)) << error;
  EXPECT_EQ(router2->repl_epoch(), 2u);

  FannClient client2;
  ASSERT_TRUE(client2.Connect("127.0.0.1", router2->port()))
      << client2.last_error();
  QueryResponse again;
  ASSERT_TRUE(client2.Query(job, again)) << client2.last_error();
  EXPECT_EQ(again.graph_epoch, 2u);
  ExpectAnswerEqual(again.result, sharded.result, "after router restart");

  router2->RequestShutdown();
  router2->Wait();
  shard0.Stop();
  shard1->Stop();
  std::remove(router_wal_path.c_str());
  std::remove(shard1_wal_path.c_str());
}

TEST(FannRouter, WireShutdownTerminatesWait) {
  // Regression: the SHUTDOWN frame is handled on a connection thread,
  // and that thread calls RequestShutdown — which needs conn_mu_. Wait
  // used to join connection threads while holding conn_mu_, so the
  // shutdown-delivering thread could never exit and Wait never
  // returned (the real binaries hung on exit; in-process tests always
  // shut down from the test thread and missed it). A hang here shows
  // up as the test timing out.
  ShardNode shard0(kGraphSeed, kGraphVertices);
  ShardNode shard1(kGraphSeed, kGraphVertices);
  const ShardPlan plan = ShardPlan::Build(shard0.graph, 2);

  std::string error;
  ASSERT_TRUE(shard0.Start(1, 0, nullptr, &error)) << error;
  ASSERT_TRUE(shard1.Start(1, 0, nullptr, &error)) << error;

  RouterConfig router_config;
  router_config.shards = {{"127.0.0.1", shard0.server->port()},
                          {"127.0.0.1", shard1.server->port()}};
  FannRouter router(plan, router_config);
  ASSERT_TRUE(router.Start(&error)) << error;

  FannClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()))
      << client.last_error();
  // A real exchange first, so the connection owns live shard clients.
  const std::vector<WireQuery> jobs = BuildShardedJobs(shard0.graph);
  QueryResponse response;
  ASSERT_TRUE(client.Query(jobs[0], response)) << client.last_error();
  ASSERT_TRUE(client.Shutdown()) << client.last_error();

  router.Wait();
  shard0.Stop();
  shard1.Stop();
}

}  // namespace
}  // namespace fannr::net
