// The v3 arena (mmap) index format, end to end: bitwise round-trips vs
// the in-memory builds, v2 stream compatibility, rejection of
// truncated/corrupt/mismatched maps (the ASan CI job turns any stray
// read into a hard failure), and a differential proving that answers
// computed on mmap-loaded indexes are byte-identical to the in-memory
// ones at 1 and 8 threads.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/batch_engine.h"
#include "graph/graph.h"
#include "graph/index_io.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"
#include "test_util.h"

namespace fannr {
namespace {

// v3 header layout (graph/index_io.h): 64 bytes, payload checksum over
// [64, file_bytes).
constexpr size_t kV3VersionOffset = 8;
constexpr size_t kV3FingerprintOffset = 12;
constexpr size_t kV3HeaderBytes = 64;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fannr_mmap_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Bitwise equality for Weights: the differential contract is "the same
// bits", not "approximately equal".
void ExpectSameBits(Weight a, Weight b, const std::string& label) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b)) << label;
}

std::vector<std::pair<VertexId, VertexId>> SamplePairs(const Graph& graph,
                                                       size_t count,
                                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(
        static_cast<VertexId>(rng.NextBounded(graph.NumVertices())),
        static_cast<VertexId>(rng.NextBounded(graph.NumVertices())));
  }
  return pairs;
}

class MmapIndexTest : public ::testing::Test {
 protected:
  Graph graph_ = testing::MakeRandomNetwork(300, 91);
};

// --- Graph --------------------------------------------------------------

TEST_F(MmapIndexTest, GraphV3RoundTripIsBitwiseIdentical) {
  const std::string path = TempPath("graph.v3");
  ASSERT_TRUE(graph_.SaveV3(path));
  auto mapped = Graph::LoadMmap(path);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_TRUE(mapped->MemoryMapped());
  EXPECT_FALSE(graph_.MemoryMapped());

  EXPECT_EQ(mapped->Fingerprint(), graph_.Fingerprint());
  ASSERT_EQ(mapped->NumVertices(), graph_.NumVertices());
  ASSERT_EQ(mapped->NumArcs(), graph_.NumArcs());
  for (VertexId u = 0; u < graph_.NumVertices(); ++u) {
    const auto a = graph_.Neighbors(u);
    const auto b = mapped->Neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << u;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      ExpectSameBits(a[i].weight, b[i].weight, "arc weight");
    }
  }
  ASSERT_EQ(mapped->HasCoordinates(), graph_.HasCoordinates());
  for (VertexId u = 0; u < graph_.NumVertices(); ++u) {
    ExpectSameBits(mapped->Coord(u).x, graph_.Coord(u).x, "coord x");
    ExpectSameBits(mapped->Coord(u).y, graph_.Coord(u).y, "coord y");
  }
}

TEST_F(MmapIndexTest, SaveV3IsByteDeterministic) {
  // Arc structs carry 4 padding bytes; SaveV3 zeroes them so two saves
  // of the same graph produce identical files (required for cache
  // dedup/rsync and for this suite's flip tests to be meaningful).
  const std::string path_a = TempPath("det_a.v3");
  const std::string path_b = TempPath("det_b.v3");
  ASSERT_TRUE(graph_.SaveV3(path_a));
  ASSERT_TRUE(graph_.SaveV3(path_b));
  EXPECT_EQ(ReadFileBytes(path_a), ReadFileBytes(path_b));
}

TEST_F(MmapIndexTest, MappedGraphSurvivesWriteAfterLoad) {
  // The mapping is MAP_PRIVATE copy-on-write: in-place weight updates on
  // a mapped graph must work and must not touch the file.
  const std::string path = TempPath("cow.v3");
  ASSERT_TRUE(graph_.SaveV3(path));
  const std::string before = ReadFileBytes(path);
  auto mapped = Graph::LoadMmap(path);
  ASSERT_TRUE(mapped.has_value());
  const VertexId u = 0;
  const VertexId v = mapped->Neighbors(0).front().to;
  const Weight w = mapped->Neighbors(0).front().weight;
  EdgeWeightUpdate update{u, v, w * 2.0};
  const auto stats = mapped->ApplyWeightUpdates({&update, 1});
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(mapped->EdgeWeight(u, v).value(), w * 2.0);
  EXPECT_EQ(ReadFileBytes(path), before) << "file mutated through the map";
}

// --- Index kinds, type-erased like corrupt_index_test.cc ----------------

struct V3Kind {
  std::string name;
  // Builds the index in memory and saves it to `path` (v3).
  std::function<bool(const Graph&, const std::string& path)> save;
  // Attempts an mmap load against `graph`.
  std::function<bool(const Graph&, const std::string& path, ArenaValidation)>
      loads;
  // Distance through the in-memory index / through the mapped index.
  std::function<Weight(const Graph&, VertexId, VertexId)> mem_distance;
  std::function<Weight(const Graph&, const std::string& path, VertexId,
                       VertexId)>
      map_distance;
};

std::vector<V3Kind> AllV3Kinds() {
  std::vector<V3Kind> kinds;
  kinds.push_back(
      {"HubLabels",
       [](const Graph& g, const std::string& path) {
         auto labels = HubLabels::Build(g);
         return labels.has_value() && labels->SaveV3(path);
       },
       [](const Graph& g, const std::string& path, ArenaValidation v) {
         return HubLabels::LoadMmap(g, path, v).has_value();
       },
       [](const Graph& g, VertexId u, VertexId v) {
         return HubLabels::Build(g)->Distance(u, v);
       },
       [](const Graph& g, const std::string& path, VertexId u, VertexId v) {
         return HubLabels::LoadMmap(g, path)->Distance(u, v);
       }});
  kinds.push_back(
      {"GTree",
       [](const Graph& g, const std::string& path) {
         GTree::Options options;
         options.leaf_capacity = 16;
         return GTree::Build(g, options).SaveV3(path);
       },
       [](const Graph& g, const std::string& path, ArenaValidation v) {
         return GTree::LoadMmap(g, path, v).has_value();
       },
       [](const Graph& g, VertexId u, VertexId v) {
         GTree::Options options;
         options.leaf_capacity = 16;
         return GTree::Build(g, options).Distance(u, v);
       },
       [](const Graph& g, const std::string& path, VertexId u, VertexId v) {
         return GTree::LoadMmap(g, path)->Distance(u, v);
       }});
  kinds.push_back(
      {"ContractionHierarchy",
       [](const Graph& g, const std::string& path) {
         return ContractionHierarchy::Build(g).SaveV3(path);
       },
       [](const Graph& g, const std::string& path, ArenaValidation v) {
         return ContractionHierarchy::LoadMmap(g, path, v).has_value();
       },
       [](const Graph& g, VertexId u, VertexId v) {
         return ContractionHierarchy::Build(g).Distance(u, v);
       },
       [](const Graph& g, const std::string& path, VertexId u, VertexId v) {
         return ContractionHierarchy::LoadMmap(g, path)->Distance(u, v);
       }});
  return kinds;
}

TEST_F(MmapIndexTest, IndexV3DistancesAreBitwiseIdenticalToInMemory) {
  const auto pairs = SamplePairs(graph_, 64, 0xA11Au);
  for (const V3Kind& kind : AllV3Kinds()) {
    const std::string path = TempPath(kind.name + ".v3");
    ASSERT_TRUE(kind.save(graph_, path)) << kind.name;
    ASSERT_TRUE(kind.loads(graph_, path, ArenaValidation::kFull)) << kind.name;
    for (const auto& [u, v] : pairs) {
      ExpectSameBits(kind.mem_distance(graph_, u, v),
                     kind.map_distance(graph_, path, u, v),
                     kind.name + " distance");
    }
  }
}

TEST_F(MmapIndexTest, V2StreamAndV3ArenaAgree) {
  // v2 (stream Save/Load) remains the portable format; an index
  // round-tripped through v2 must answer bit-for-bit like the mmap of
  // its v3 file. Guards against the two serializers drifting apart.
  const auto pairs = SamplePairs(graph_, 32, 0xBEE5u);

  auto labels = HubLabels::Build(graph_);
  ASSERT_TRUE(labels.has_value());
  std::stringstream v2;
  ASSERT_TRUE(labels->Save(v2));
  auto from_v2 = HubLabels::Load(graph_, v2);
  ASSERT_TRUE(from_v2.has_value());
  const std::string path = TempPath("phl_agree.v3");
  ASSERT_TRUE(labels->SaveV3(path));
  auto from_v3 = HubLabels::LoadMmap(graph_, path);
  ASSERT_TRUE(from_v3.has_value());
  for (const auto& [u, v] : pairs) {
    ExpectSameBits(from_v2->Distance(u, v), from_v3->Distance(u, v),
                   "v2 vs v3 PHL distance");
  }
}

TEST_F(MmapIndexTest, V3RejectsV2StreamFileAndViceVersa) {
  // The formats are self-identifying: handing a v2 stream file to
  // LoadMmap (or a v3 arena to the stream Load) must fail cleanly, not
  // misparse.
  auto labels = HubLabels::Build(graph_);
  ASSERT_TRUE(labels.has_value());

  std::stringstream v2;
  ASSERT_TRUE(labels->Save(v2));
  const std::string v2_path = TempPath("v2_as_v3.bin");
  WriteFileBytes(v2_path, v2.str());
  EXPECT_FALSE(HubLabels::LoadMmap(graph_, v2_path).has_value());

  const std::string v3_path = TempPath("v3_as_v2.bin");
  ASSERT_TRUE(labels->SaveV3(v3_path));
  std::stringstream v3_stream(ReadFileBytes(v3_path));
  EXPECT_FALSE(HubLabels::Load(graph_, v3_stream).has_value());
}

// --- Corruption ---------------------------------------------------------

TEST_F(MmapIndexTest, TruncatedMapsAreRejected) {
  for (const V3Kind& kind : AllV3Kinds()) {
    const std::string path = TempPath(kind.name + "_trunc.v3");
    ASSERT_TRUE(kind.save(graph_, path));
    const std::string clean = ReadFileBytes(path);
    ASSERT_GT(clean.size(), kV3HeaderBytes);
    for (size_t keep :
         {size_t{0}, size_t{4}, kV3HeaderBytes - 1, kV3HeaderBytes + 8,
          clean.size() / 2, clean.size() - 1}) {
      const std::string cut_path = TempPath(kind.name + "_cut.v3");
      WriteFileBytes(cut_path, clean.substr(0, keep));
      EXPECT_FALSE(kind.loads(graph_, cut_path, ArenaValidation::kHeaderOnly))
          << kind.name << " truncated to " << keep << " bytes";
    }
  }
}

TEST_F(MmapIndexTest, BadHeadersAreRejected) {
  for (const V3Kind& kind : AllV3Kinds()) {
    const std::string path = TempPath(kind.name + "_hdr.v3");
    ASSERT_TRUE(kind.save(graph_, path));
    const std::string clean = ReadFileBytes(path);

    std::string bad_magic = clean;
    bad_magic[0] ^= 0x01;
    const std::string magic_path = TempPath(kind.name + "_magic.v3");
    WriteFileBytes(magic_path, bad_magic);
    EXPECT_FALSE(kind.loads(graph_, magic_path, ArenaValidation::kHeaderOnly))
        << kind.name;

    std::string bad_version = clean;
    bad_version[kV3VersionOffset] = 2;  // the stream format's version
    const std::string version_path = TempPath(kind.name + "_ver.v3");
    WriteFileBytes(version_path, bad_version);
    EXPECT_FALSE(kind.loads(graph_, version_path, ArenaValidation::kHeaderOnly))
        << kind.name;
  }
}

TEST_F(MmapIndexTest, FingerprintMismatchIsRejectedInOHeaderTime) {
  // The O(header) open must still reject an index built against a
  // different graph — that check reads only the 64-byte header, never
  // the payload.
  Graph other = testing::MakeRandomNetwork(250, 92);
  for (const V3Kind& kind : AllV3Kinds()) {
    const std::string path = TempPath(kind.name + "_fp.v3");
    ASSERT_TRUE(kind.save(graph_, path));
    EXPECT_FALSE(kind.loads(other, path, ArenaValidation::kHeaderOnly))
        << kind.name;

    std::string bytes = ReadFileBytes(path);
    bytes[kV3FingerprintOffset + 16] ^= 0xFF;  // stored weight checksum
    const std::string flip_path = TempPath(kind.name + "_fpflip.v3");
    WriteFileBytes(flip_path, bytes);
    EXPECT_FALSE(kind.loads(graph_, flip_path, ArenaValidation::kHeaderOnly))
        << kind.name;
  }
}

TEST_F(MmapIndexTest, FullValidationCatchesEveryPayloadFlip) {
  // The payload checksum covers [64, file_bytes): under kFull, ANY
  // flipped payload byte must be caught. (kHeaderOnly intentionally
  // skips this — that trade is the point of the format — but then the
  // structural validators below still keep us memory-safe.)
  for (const V3Kind& kind : AllV3Kinds()) {
    const std::string path = TempPath(kind.name + "_full.v3");
    ASSERT_TRUE(kind.save(graph_, path));
    const std::string clean = ReadFileBytes(path);
    for (size_t pos = kV3HeaderBytes; pos < clean.size();
         pos += 1 + pos / 7) {
      std::string bytes = clean;
      bytes[pos] ^= 0x40;
      const std::string flip_path = TempPath(kind.name + "_pflip.v3");
      WriteFileBytes(flip_path, bytes);
      EXPECT_FALSE(kind.loads(graph_, flip_path, ArenaValidation::kFull))
          << kind.name << " flip at " << pos << " survived kFull";
    }
  }
}

TEST_F(MmapIndexTest, SingleByteCorruptionNeverCrashesUnderHeaderOnly) {
  // The ASan contract for the fast path: a flipped byte anywhere in the
  // file may be rejected or may load (payload flips are invisible to the
  // O(header) open), but it must never crash, read out of bounds, or
  // abort. Structure validators run on every load exactly so that a
  // survivor is still memory-safe to query.
  const auto pairs = SamplePairs(graph_, 4, 0xC0DEu);
  for (const V3Kind& kind : AllV3Kinds()) {
    const std::string path = TempPath(kind.name + "_sweep.v3");
    ASSERT_TRUE(kind.save(graph_, path));
    const std::string clean = ReadFileBytes(path);
    for (size_t pos = 0; pos < clean.size(); pos += 1 + pos / 7) {
      std::string bytes = clean;
      bytes[pos] ^= 0x40;
      const std::string flip_path = TempPath(kind.name + "_sflip.v3");
      WriteFileBytes(flip_path, bytes);
      if (!kind.loads(graph_, flip_path, ArenaValidation::kHeaderOnly)) {
        continue;
      }
      // Survivor: exercise the query path. Answers may be wrong (the
      // flip hit payload data); reads must stay in bounds.
      for (const auto& [u, v] : pairs) {
        (void)kind.map_distance(graph_, flip_path, u, v);
      }
    }
  }
}

// --- Differential: mmap-loaded vs in-memory through the batch engine ----

TEST_F(MmapIndexTest, BatchAnswersOnMappedIndexesAreByteIdentical) {
  GTree::Options gtree_options;
  gtree_options.leaf_capacity = 16;
  GTree gtree = GTree::Build(graph_, gtree_options);
  auto labels = HubLabels::Build(graph_);
  ASSERT_TRUE(labels.has_value());
  ContractionHierarchy ch = ContractionHierarchy::Build(graph_);

  const std::string gtree_path = TempPath("diff_gtree.v3");
  const std::string labels_path = TempPath("diff_phl.v3");
  const std::string ch_path = TempPath("diff_ch.v3");
  ASSERT_TRUE(gtree.SaveV3(gtree_path));
  ASSERT_TRUE(labels->SaveV3(labels_path));
  ASSERT_TRUE(ch.SaveV3(ch_path));
  auto mapped_gtree = GTree::LoadMmap(graph_, gtree_path);
  auto mapped_labels = HubLabels::LoadMmap(graph_, labels_path);
  auto mapped_ch = ContractionHierarchy::LoadMmap(graph_, ch_path);
  ASSERT_TRUE(mapped_gtree.has_value());
  ASSERT_TRUE(mapped_labels.has_value());
  ASSERT_TRUE(mapped_ch.has_value());

  Rng rng(0xD1FFu);
  const IndexedVertexSet p(graph_.NumVertices(),
                           testing::SampleVertices(graph_, 24, rng));
  const IndexedVertexSet q(graph_.NumVertices(),
                           testing::SampleVertices(graph_, 8, rng));
  std::vector<FannrQuery> jobs;
  for (int i = 0; i < 12; ++i) {
    FannrQuery job;
    job.query = FannQuery{&graph_, &p, &q, i % 2 == 0 ? 0.5 : 0.75,
                          i % 3 == 0 ? Aggregate::kMax : Aggregate::kSum};
    job.algorithm = FannAlgorithm::kGd;
    jobs.push_back(job);
  }

  GphiResources in_memory;
  in_memory.graph = &graph_;
  in_memory.gtree = &gtree;
  in_memory.labels = &*labels;
  in_memory.ch = &ch;
  GphiResources mapped = in_memory;
  mapped.gtree = &*mapped_gtree;
  mapped.labels = &*mapped_labels;
  mapped.ch = &*mapped_ch;

  for (const GphiKind kind :
       {GphiKind::kGTree, GphiKind::kPhl, GphiKind::kCh}) {
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      BatchOptions options;
      options.num_threads = threads;
      options.gphi_kind = kind;
      BatchQueryEngine mem_engine(in_memory, options);
      BatchQueryEngine map_engine(mapped, options);
      const auto mem_results = mem_engine.Run(jobs);
      const auto map_results = map_engine.Run(jobs);
      ASSERT_EQ(mem_results.size(), map_results.size());
      for (size_t i = 0; i < mem_results.size(); ++i) {
        const std::string label = "kind " + std::string(GphiKindName(kind)) +
                                  " threads " + std::to_string(threads) +
                                  " job " + std::to_string(i);
        EXPECT_EQ(mem_results[i].best, map_results[i].best) << label;
        ExpectSameBits(mem_results[i].distance, map_results[i].distance,
                       label);
        EXPECT_EQ(mem_results[i].subset, map_results[i].subset) << label;
      }
    }
  }
}

// --- Parallel build determinism -----------------------------------------

TEST_F(MmapIndexTest, ParallelIndexBuildsAreBitwiseIdenticalToSequential) {
  // GTree and HubLabels accept a ThreadPool; the parallel build must be
  // indistinguishable from the sequential one. Compare through SaveV3
  // bytes — the strictest possible equality.
  ThreadPool pool(4);

  GTree::Options gtree_options;
  gtree_options.leaf_capacity = 16;
  const std::string seq_g = TempPath("seq_gtree.v3");
  const std::string par_g = TempPath("par_gtree.v3");
  ASSERT_TRUE(GTree::Build(graph_, gtree_options).SaveV3(seq_g));
  ASSERT_TRUE(GTree::Build(graph_, gtree_options, &pool).SaveV3(par_g));
  EXPECT_EQ(ReadFileBytes(seq_g), ReadFileBytes(par_g))
      << "parallel G-tree build diverged from sequential";

  const std::string seq_l = TempPath("seq_phl.v3");
  const std::string par_l = TempPath("par_phl.v3");
  auto seq_labels = HubLabels::Build(graph_);
  auto par_labels = HubLabels::Build(graph_, HubLabels::Options{}, &pool);
  ASSERT_TRUE(seq_labels.has_value());
  ASSERT_TRUE(par_labels.has_value());
  ASSERT_TRUE(seq_labels->SaveV3(seq_l));
  ASSERT_TRUE(par_labels->SaveV3(par_l));
  EXPECT_EQ(ReadFileBytes(seq_l), ReadFileBytes(par_l))
      << "parallel hub-label build diverged from sequential";
}

}  // namespace
}  // namespace fannr
