// Round-trip tests for the index cache format.

#include "common/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sp/ch/contraction_hierarchy.h"
#include "sp/dijkstra.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(SerializeTest, PodAndVectorRoundTrip) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.Pod<uint32_t>(0xDEADBEEF);
  w.Pod<double>(3.25);
  std::vector<int64_t> values{-1, 0, 42, 1LL << 40};
  w.Vec(values);
  ASSERT_TRUE(w.ok());

  BinaryReader r(stream);
  uint32_t a = 0;
  double b = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(r.Pod(a));
  ASSERT_TRUE(r.Pod(b));
  ASSERT_TRUE(r.Vec(got));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_DOUBLE_EQ(b, 3.25);
  EXPECT_EQ(got, values);
}

TEST(SerializeTest, ReaderFailsOnTruncation) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.Pod<uint64_t>(1000);  // vector size header with no payload
  BinaryReader r(stream);
  std::vector<double> got;
  EXPECT_FALSE(r.Vec(got));
}

TEST(SerializeTest, VecAllocationBoundedByStreamLength) {
  // A 16-byte corrupt file whose size header claims ~2^60 elements must
  // not trigger a near-OOM resize: the reader bounds the allocation by
  // the bytes actually remaining in the stream.
  std::stringstream stream;
  BinaryWriter w(stream);
  w.Pod<uint64_t>(uint64_t{1} << 60);  // absurd element count
  w.Pod<uint64_t>(0);                  // 8 bytes of "payload"
  BinaryReader r(stream);
  std::vector<double> got;
  EXPECT_FALSE(r.Vec(got));
  // The vector must not have ballooned while failing.
  EXPECT_LT(got.capacity(), size_t{1} << 20);
}

TEST(SerializeTest, VecSizeOverflowRejected) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.Pod<uint64_t>(~uint64_t{0});  // size * sizeof(T) would overflow
  BinaryReader r(stream);
  std::vector<uint64_t> got;
  EXPECT_FALSE(r.Vec(got));
}

TEST(SerializeTest, GraphRoundTrip) {
  Graph original = testing::MakeSmallGrid(8, 9);
  std::stringstream stream;
  ASSERT_TRUE(original.Save(stream));
  auto loaded = Graph::Load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), original.NumVertices());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  ASSERT_TRUE(loaded->HasCoordinates());
  EXPECT_TRUE(loaded->EuclideanConsistent());
  // Distances identical.
  auto a = DijkstraSssp(original, 0);
  auto b = DijkstraSssp(*loaded, 0);
  for (size_t v = 0; v < a.size(); ++v) EXPECT_DOUBLE_EQ(a[v], b[v]);
}

TEST(SerializeTest, GraphLoadRejectsCorruptStreams) {
  Graph g = testing::MakeSmallGrid(5, 5);
  std::stringstream full;
  ASSERT_TRUE(g.Save(full));
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 3));
  EXPECT_FALSE(Graph::Load(truncated).has_value());
  std::stringstream garbage("dimacs? never heard of it");
  EXPECT_FALSE(Graph::Load(garbage).has_value());
}

TEST(SerializeTest, HubLabelsRoundTrip) {
  Graph g = testing::MakeRandomNetwork(300, 91);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());

  std::stringstream stream;
  ASSERT_TRUE(labels->Save(stream));
  auto loaded = HubLabels::Load(g, stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->TotalLabelEntries(), labels->TotalLabelEntries());

  Rng rng(92);
  for (int i = 0; i < 20; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_DOUBLE_EQ(loaded->Distance(u, v), labels->Distance(u, v));
  }
}

TEST(SerializeTest, HubLabelsRejectsGarbage) {
  Graph g = testing::MakeSmallGrid(9, 99);
  std::stringstream stream("not a hub label file at all");
  EXPECT_FALSE(HubLabels::Load(g, stream).has_value());
}

TEST(SerializeTest, HubLabelsRejectsWrongGraph) {
  Graph g = testing::MakeRandomNetwork(300, 91);
  Graph other = testing::MakeRandomNetwork(200, 96);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());
  std::stringstream stream;
  ASSERT_TRUE(labels->Save(stream));
  EXPECT_FALSE(HubLabels::Load(other, stream).has_value());
}

TEST(SerializeTest, GTreeRoundTrip) {
  Graph g = testing::MakeRandomNetwork(400, 93);
  GTree::Options options;
  options.leaf_capacity = 16;
  GTree tree = GTree::Build(g, options);

  std::stringstream stream;
  ASSERT_TRUE(tree.Save(stream));
  auto loaded = GTree::Load(g, stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumTreeNodes(), tree.NumTreeNodes());
  EXPECT_EQ(loaded->NumLeaves(), tree.NumLeaves());

  DijkstraSearch dijkstra(g);
  Rng rng(94);
  for (int i = 0; i < 25; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(loaded->Distance(u, v), dijkstra.Distance(u, v), 1e-6);
  }
}

TEST(SerializeTest, GTreeRejectsWrongGraph) {
  Graph g = testing::MakeRandomNetwork(400, 95);
  Graph other = testing::MakeRandomNetwork(200, 96);
  GTree::Options options;
  options.leaf_capacity = 16;
  GTree tree = GTree::Build(g, options);
  std::stringstream stream;
  ASSERT_TRUE(tree.Save(stream));
  EXPECT_FALSE(GTree::Load(other, stream).has_value());
}

TEST(SerializeTest, ChRoundTrip) {
  Graph g = testing::MakeRandomNetwork(300, 97);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);

  std::stringstream stream;
  ASSERT_TRUE(ch.Save(stream));
  auto loaded = ContractionHierarchy::Load(g, stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumShortcuts(), ch.NumShortcuts());

  DijkstraSearch dijkstra(g);
  Rng rng(98);
  for (int i = 0; i < 20; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
    EXPECT_NEAR(loaded->Distance(u, v), dijkstra.Distance(u, v), 1e-6);
  }
}

}  // namespace
}  // namespace fannr
