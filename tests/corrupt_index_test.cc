// Corrupt, truncated, and wrong-graph index files must be rejected by
// the Load paths — never crash, never read out of bounds (the ASan CI
// job runs this file), and never come back as an index that would serve
// wrong distances.
//
// Shared on-disk layout (graph/index_io.h): magic u64 at offset 0,
// format version u32 at offset 8, graph fingerprint (3 x u64) at offset
// 12, index body from offset 36. The fixture family below corrupts each
// region in turn for all three persisted indexes.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "dynamic/update.h"
#include "graph/graph.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"
#include "test_util.h"

namespace fannr {
namespace {

constexpr size_t kVersionOffset = 8;
constexpr size_t kFingerprintOffset = 12;
constexpr size_t kBodyOffset = 36;

// One persisted index kind: how to save it and whether a byte stream
// loads against a given graph. Type-erased so every fixture below runs
// against all three indexes.
struct IndexKind {
  std::string name;
  std::function<std::string(const Graph&)> save;
  std::function<bool(const Graph&, const std::string&)> loads;
};

std::vector<IndexKind> AllIndexKinds() {
  std::vector<IndexKind> kinds;
  kinds.push_back(
      {"HubLabels",
       [](const Graph& g) {
         auto labels = HubLabels::Build(g);
         EXPECT_TRUE(labels.has_value());
         std::stringstream out;
         EXPECT_TRUE(labels->Save(out));
         return out.str();
       },
       [](const Graph& g, const std::string& bytes) {
         std::stringstream in(bytes);
         return HubLabels::Load(g, in).has_value();
       }});
  kinds.push_back(
      {"GTree",
       [](const Graph& g) {
         GTree::Options options;
         options.leaf_capacity = 16;
         GTree tree = GTree::Build(g, options);
         std::stringstream out;
         EXPECT_TRUE(tree.Save(out));
         return out.str();
       },
       [](const Graph& g, const std::string& bytes) {
         std::stringstream in(bytes);
         return GTree::Load(g, in).has_value();
       }});
  kinds.push_back(
      {"ContractionHierarchy",
       [](const Graph& g) {
         ContractionHierarchy ch = ContractionHierarchy::Build(g);
         std::stringstream out;
         EXPECT_TRUE(ch.Save(out));
         return out.str();
       },
       [](const Graph& g, const std::string& bytes) {
         std::stringstream in(bytes);
         return ContractionHierarchy::Load(g, in).has_value();
       }});
  return kinds;
}

class CorruptIndexTest : public ::testing::Test {
 protected:
  Graph graph_ = testing::MakeRandomNetwork(200, 51);
};

TEST_F(CorruptIndexTest, IntactFileLoads) {
  for (const IndexKind& kind : AllIndexKinds()) {
    const std::string bytes = kind.save(graph_);
    ASSERT_GT(bytes.size(), kBodyOffset) << kind.name;
    EXPECT_TRUE(kind.loads(graph_, bytes)) << kind.name;
  }
}

TEST_F(CorruptIndexTest, BitFlippedMagicRejected) {
  for (const IndexKind& kind : AllIndexKinds()) {
    std::string bytes = kind.save(graph_);
    bytes[0] ^= 0x01;
    EXPECT_FALSE(kind.loads(graph_, bytes)) << kind.name;
  }
}

TEST_F(CorruptIndexTest, StaleFormatVersionRejected) {
  for (const IndexKind& kind : AllIndexKinds()) {
    std::string bytes = kind.save(graph_);
    // Rewrite the version word to 1 (the pre-fingerprint format).
    bytes[kVersionOffset] = 1;
    bytes[kVersionOffset + 1] = 0;
    bytes[kVersionOffset + 2] = 0;
    bytes[kVersionOffset + 3] = 0;
    EXPECT_FALSE(kind.loads(graph_, bytes)) << kind.name;
  }
}

TEST_F(CorruptIndexTest, TruncatedFileRejected) {
  for (const IndexKind& kind : AllIndexKinds()) {
    const std::string bytes = kind.save(graph_);
    // Cut inside the header, just after it, and mid-body: every prefix
    // must be rejected (a truncated vec may not over-allocate either —
    // see serialize_test's VecAllocationBoundedByStreamLength).
    for (size_t keep : {size_t{4}, kBodyOffset - 2, kBodyOffset + 6,
                        bytes.size() / 2, bytes.size() - 1}) {
      EXPECT_FALSE(kind.loads(graph_, bytes.substr(0, keep)))
          << kind.name << " truncated to " << keep << " bytes";
    }
  }
}

TEST_F(CorruptIndexTest, FingerprintMismatchRejected) {
  Graph other = testing::MakeRandomNetwork(150, 52);
  for (const IndexKind& kind : AllIndexKinds()) {
    std::string bytes = kind.save(graph_);
    // Against a structurally different graph.
    EXPECT_FALSE(kind.loads(other, bytes)) << kind.name;
    // A corrupted stored checksum fails against the right graph too.
    bytes[kFingerprintOffset + 16] ^= 0xFF;
    EXPECT_FALSE(kind.loads(graph_, bytes)) << kind.name;
  }
}

TEST_F(CorruptIndexTest, FileFromPreUpdateGraphRejected) {
  // The dynamic-network case: an index saved before a weight update must
  // not load against the updated graph (same topology, new weights).
  for (const IndexKind& kind : AllIndexKinds()) {
    Graph g = testing::MakeRandomNetwork(200, 53);
    const std::string bytes = kind.save(g);
    dynamic::UpdateBatch batch;
    batch.ScaleWeight(g, 0, g.Neighbors(0).front().to, 2.0);
    batch.Apply(g);
    EXPECT_FALSE(kind.loads(g, bytes)) << kind.name;
    // Restoring the weight restores the fingerprint; the file is
    // trustworthy again (weights match bit for bit).
    dynamic::UpdateBatch restore;
    restore.ScaleWeight(g, 0, g.Neighbors(0).front().to, 0.5);
    restore.Apply(g);
    EXPECT_TRUE(kind.loads(g, bytes)) << kind.name;
  }
}

TEST_F(CorruptIndexTest, NonMonotonicHubLabelOffsetsRejected) {
  auto labels = HubLabels::Build(graph_);
  ASSERT_TRUE(labels.has_value());
  std::stringstream out;
  ASSERT_TRUE(labels->Save(out));
  std::string bytes = out.str();
  // Body layout: u64 element count at kBodyOffset, then the offsets
  // array (offsets_[0] == 0 at kBodyOffset + 8). Blow up offsets_[1] so
  // the prefix array decreases at the next element; Distance() would
  // index entries_ out of bounds if Load accepted this.
  const size_t offset1 = kBodyOffset + 16;
  ASSERT_LT(offset1 + 8, bytes.size());
  for (size_t b = 0; b < 8; ++b) bytes[offset1 + b] = '\x7f';
  std::stringstream in(bytes);
  EXPECT_FALSE(HubLabels::Load(graph_, in).has_value());
}

TEST_F(CorruptIndexTest, SingleByteCorruptionNeverCrashes) {
  // Sweep a single-byte flip across each file. Most positions must be
  // rejected (header or structure damage); some payload flips survive
  // validation — the contract here is "no crash, no sanitizer finding",
  // which the ASan CI job turns into a hard failure.
  for (const IndexKind& kind : AllIndexKinds()) {
    const std::string clean = kind.save(graph_);
    for (size_t pos = 0; pos < clean.size();
         pos += 1 + pos / 7) {  // dense early (header), sparser in body
      std::string bytes = clean;
      bytes[pos] ^= 0x40;
      (void)kind.loads(graph_, bytes);
    }
  }
}

}  // namespace
}  // namespace fannr
