#include "fann_world.h"

#include "test_util.h"

namespace fannr::testing {

FannWorld::FannWorld() : graph_(MakeRandomNetwork(600, 0xF00DULL)) {
  GTree::Options gtree_options;
  gtree_options.leaf_capacity = 16;
  gtree_ = std::make_unique<GTree>(GTree::Build(graph_, gtree_options));
  labels_ = std::make_unique<HubLabels>(*HubLabels::Build(graph_));
  ch_ = std::make_unique<ContractionHierarchy>(
      ContractionHierarchy::Build(graph_));
}

const FannWorld& FannWorld::Get() {
  static const FannWorld* world = new FannWorld();
  return *world;
}

}  // namespace fannr::testing
