#include "test_util.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/generator.h"
#include "sp/dijkstra.h"

namespace fannr::testing {

Graph MakeLineGraph(size_t n, Weight weight) {
  GraphBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.AddVertex(Point{static_cast<double>(i) * weight, 0.0});
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    builder.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                    weight);
  }
  return builder.Build();
}

Graph MakeSmallGrid(size_t rows, size_t cols, uint64_t seed) {
  GridNetworkOptions options;
  options.rows = rows;
  options.cols = cols;
  options.cell_size = 10.0;
  options.keep_probability = 1.0;  // fully connected lattice
  options.diagonal_probability = 0.1;
  Rng rng(seed);
  return GenerateGridNetwork(options, rng);
}

Graph MakeRandomNetwork(size_t approx_vertices, uint64_t seed) {
  GridNetworkOptions options;
  size_t side = 2;
  while (side * side < approx_vertices) ++side;
  options.rows = side;
  options.cols = side;
  options.cell_size = 100.0;
  Rng rng(seed);
  return GenerateGridNetwork(options, rng);
}

std::vector<Weight> BellmanFordSssp(const Graph& graph, VertexId source) {
  std::vector<Weight> dist(graph.NumVertices(), kInfWeight);
  dist[source] = 0.0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      if (dist[u] == kInfWeight) continue;
      for (const Arc& a : graph.Neighbors(u)) {
        if (dist[u] + a.weight < dist[a.to]) {
          dist[a.to] = dist[u] + a.weight;
          changed = true;
        }
      }
    }
  }
  return dist;
}

Weight BruteGphi(const Graph& graph, VertexId p,
                 const std::vector<VertexId>& q, size_t k,
                 Aggregate aggregate) {
  const std::vector<Weight> dist = [&] {
    // SSSP from p; restricted to q afterwards.
    std::vector<Weight> d(graph.NumVertices(), kInfWeight);
    d = BellmanFordSssp(graph, p);
    return d;
  }();
  std::vector<Weight> to_q;
  to_q.reserve(q.size());
  for (VertexId v : q) to_q.push_back(dist[v]);
  std::sort(to_q.begin(), to_q.end());
  if (k > to_q.size() || to_q[k - 1] == kInfWeight) return kInfWeight;
  return FoldSorted(to_q.data(), k, aggregate);
}

BruteFann BruteForceFann(const Graph& graph, const std::vector<VertexId>& p,
                         const std::vector<VertexId>& q, double phi,
                         Aggregate aggregate) {
  const size_t k = FlexK(phi, q.size());
  // One SSSP per query point (Dijkstra; Bellman-Ford is too slow here).
  std::vector<std::vector<Weight>> from_q;
  from_q.reserve(q.size());
  for (VertexId v : q) from_q.push_back(DijkstraSssp(graph, v));

  BruteFann best;
  std::vector<Weight> to_q(q.size());
  for (VertexId candidate : p) {
    for (size_t i = 0; i < q.size(); ++i) to_q[i] = from_q[i][candidate];
    std::sort(to_q.begin(), to_q.end());
    if (to_q[k - 1] == kInfWeight) continue;
    const Weight d = FoldSorted(to_q.data(), k, aggregate);
    if (d < best.distance) {
      best.distance = d;
      best.best = candidate;
    }
  }
  return best;
}

std::vector<VertexId> SampleVertices(const Graph& graph, size_t k, Rng& rng) {
  std::vector<size_t> raw =
      rng.SampleWithoutReplacement(graph.NumVertices(), k);
  std::vector<VertexId> result;
  result.reserve(k);
  for (size_t v : raw) result.push_back(static_cast<VertexId>(v));
  return result;
}

}  // namespace fannr::testing
