// Per-query-point weights (the weighted FANN generalization): solvers
// fold w_i * d(p, q_i) instead of raw distances. Weight-capable solvers
// must agree with a weighted brute force and with each other bitwise,
// unit weights must be indistinguishable from the unweighted path, and
// weight-incapable engines/algorithms must refuse — via BindWeights at
// the solver layer and via per-job kRejected screening in the batch
// engine (never a process abort on externally-assembled jobs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "fann_world.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

uint64_t DistanceBits(double distance) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(distance));
  std::memcpy(&bits, &distance, sizeof(bits));
  return bits;
}

/// Weighted brute force: for every p, sort the weighted distances
/// w_i * d(q_i, p) ascending and fold the k smallest — the same
/// transform-then-SelectAndFold structure the solvers use, so sum
/// results are bitwise comparable, not merely close.
struct WeightedBrute {
  VertexId best = kInvalidVertex;
  Weight distance = kInfWeight;
};
WeightedBrute BruteForceWeighted(const Graph& graph,
                                 const std::vector<VertexId>& p,
                                 const std::vector<VertexId>& q,
                                 const std::vector<double>& weights,
                                 double phi, Aggregate aggregate) {
  const size_t k = FlexK(phi, q.size());
  std::vector<std::vector<Weight>> from_q;
  for (VertexId qi : q) from_q.push_back(DijkstraSssp(graph, qi));
  WeightedBrute result;
  for (VertexId candidate : p) {
    std::vector<Weight> weighted;
    weighted.reserve(q.size());
    for (size_t i = 0; i < q.size(); ++i) {
      const Weight d = from_q[i][candidate];
      weighted.push_back(d == kInfWeight ? kInfWeight : weights[i] * d);
    }
    std::sort(weighted.begin(), weighted.end());
    if (weighted[k - 1] == kInfWeight) continue;
    const Weight folded = FoldSorted(weighted.data(), k, aggregate);
    if (folded < result.distance ||
        (folded == result.distance && candidate < result.best)) {
      result.best = candidate;
      result.distance = folded;
    }
  }
  return result;
}

/// The engine kinds whose searches stay exact under the weight
/// transform (GphiKindSupportsWeights).
std::vector<GphiKind> WeightCapableKinds() {
  std::vector<GphiKind> kinds;
  for (GphiKind kind : kAllGphiKinds) {
    if (GphiKindSupportsWeights(kind)) kinds.push_back(kind);
  }
  return kinds;
}

struct WeightedInstance {
  std::vector<VertexId> p_vec;
  std::vector<VertexId> q_vec;
  std::vector<double> weights;
  IndexedVertexSet p;
  IndexedVertexSet q;

  WeightedInstance(const Graph& graph, Rng& rng, bool pow2)
      : p_vec(testing::SampleVertices(graph, 30, rng)),
        q_vec(testing::SampleVertices(graph, 10, rng)),
        p(graph.NumVertices(), p_vec),
        q(graph.NumVertices(), q_vec) {
    weights.reserve(q_vec.size());
    for (size_t i = 0; i < q_vec.size(); ++i) {
      if (pow2) {
        constexpr double kPow2[] = {0.25, 0.5, 1.0, 2.0, 4.0};
        weights.push_back(kPow2[rng.NextIndex(5)]);
      } else {
        weights.push_back(rng.NextDouble(0.1, 4.0));
      }
    }
  }
};

TEST(WeightedFann, SolversMatchBruteForceAndAgreeWithinEngine) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();

  Rng rng(20260808);
  for (const Aggregate aggregate : {Aggregate::kSum, Aggregate::kMax}) {
    for (const double phi : {0.4, 1.0}) {
      SCOPED_TRACE(std::string(AggregateName(aggregate)) + " phi " +
                   std::to_string(phi));
      const WeightedInstance inst(graph, rng, /*pow2=*/false);
      FannQuery query{&graph, &inst.p, &inst.q, phi, aggregate,
                      &inst.weights};
      const WeightedBrute brute = BruteForceWeighted(
          graph, inst.p_vec, inst.q_vec, inst.weights, phi, aggregate);
      ASSERT_NE(brute.best, kInvalidVertex);

      const FannResult naive = SolveNaive(query);
      EXPECT_EQ(naive.best, brute.best);
      EXPECT_NEAR(naive.distance, brute.distance, 1e-9);

      for (const GphiKind kind : WeightCapableKinds()) {
        SCOPED_TRACE(GphiKindName(kind));
        auto engine = MakeGphiEngine(kind, world.Resources());
        const FannResult gd = SolveGd(query, *engine);
        const FannResult rlist = SolveRList(query, *engine);
        // Near-agreement across engine kinds (PHL/CH distances differ
        // from Dijkstra's by path-concatenation rounding, like the
        // unweighted cross-engine tests)...
        for (const FannResult* r : {&gd, &rlist}) {
          EXPECT_EQ(r->best, brute.best);
          EXPECT_NEAR(r->distance, brute.distance, 1e-6);
          // Same subset content; SelectAndFold orders nearest-first
          // while the naive enumerator reports Q order.
          std::vector<VertexId> got = r->subset;
          std::vector<VertexId> want = naive.subset;
          std::sort(got.begin(), got.end());
          std::sort(want.begin(), want.end());
          EXPECT_EQ(got, want);
        }
        // ...and bitwise agreement within one engine: GD and R-List
        // share the engine's SelectAndFold, so their answers must be
        // identical to the bit.
        EXPECT_EQ(gd.best, rlist.best);
        EXPECT_EQ(DistanceBits(gd.distance), DistanceBits(rlist.distance));
        EXPECT_EQ(gd.subset, rlist.subset);
      }
    }
  }
}

TEST(WeightedFann, UnitWeightsAreBitwiseIdenticalToUnweighted) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();

  Rng rng(424242);
  WeightedInstance inst(graph, rng, /*pow2=*/true);
  std::fill(inst.weights.begin(), inst.weights.end(), 1.0);

  for (const Aggregate aggregate : {Aggregate::kSum, Aggregate::kMax}) {
    FannQuery weighted{&graph, &inst.p, &inst.q, 0.5, aggregate,
                       &inst.weights};
    FannQuery plain{&graph, &inst.p, &inst.q, 0.5, aggregate};
    auto engine = MakeGphiEngine(GphiKind::kAStar, world.Resources());
    const FannResult a = SolveRList(weighted, *engine);
    const FannResult b = SolveRList(plain, *engine);
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(DistanceBits(a.distance), DistanceBits(b.distance));
    EXPECT_EQ(a.subset, b.subset);
  }
}

TEST(WeightedFann, KSolversAgreeBitwiseUnderWeights) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();

  Rng rng(777);
  const WeightedInstance inst(graph, rng, /*pow2=*/true);
  constexpr size_t kResults = 5;
  for (const Aggregate aggregate : {Aggregate::kSum, Aggregate::kMax}) {
    SCOPED_TRACE(AggregateName(aggregate));
    FannQuery query{&graph, &inst.p, &inst.q, 0.5, aggregate, &inst.weights};
    auto engine = MakeGphiEngine(GphiKind::kAStar, world.Resources());
    const std::vector<KFannEntry> gd = SolveKGd(query, kResults, *engine);
    const std::vector<KFannEntry> rlist =
        SolveKRList(query, kResults, *engine);
    ASSERT_EQ(gd.size(), rlist.size());
    ASSERT_GT(gd.size(), 0u);
    for (size_t i = 0; i < gd.size(); ++i) {
      EXPECT_EQ(gd[i].vertex, rlist[i].vertex) << "rank " << i;
      EXPECT_EQ(DistanceBits(gd[i].distance), DistanceBits(rlist[i].distance))
          << "rank " << i;
      EXPECT_EQ(gd[i].subset, rlist[i].subset) << "rank " << i;
    }
  }
}

TEST(WeightedFann, WeightIncapableEnginesRefuseBinding) {
  const auto& world = testing::FannWorld::Get();
  const std::vector<double> weights = {1.0, 2.0, 0.5};
  for (const GphiKind kind : kAllGphiKinds) {
    SCOPED_TRACE(GphiKindName(kind));
    auto engine = MakeGphiEngine(kind, world.Resources());
    // Every engine accepts the empty (unweighted) binding; only the
    // weight-capable ones accept a real one.
    EXPECT_TRUE(engine->BindWeights({}));
    EXPECT_EQ(engine->BindWeights(weights), GphiKindSupportsWeights(kind));
  }
}

TEST(WeightedFann, BatchScreeningRejectsWeightIncapableCombos) {
  const auto& world = testing::FannWorld::Get();
  const Graph& graph = world.graph();
  Rng rng(9001);
  const WeightedInstance inst(graph, rng, /*pow2=*/false);

  const auto make_job = [&](FannAlgorithm algorithm,
                            bool weighted) -> FannrQuery {
    FannrQuery job;
    job.query.graph = &graph;
    job.query.data_points = &inst.p;
    job.query.query_points = &inst.q;
    job.query.phi = 0.5;
    job.query.aggregate = Aggregate::kSum;
    if (weighted) job.query.weights = &inst.weights;
    job.algorithm = algorithm;
    return job;
  };

  // Default oracle (cached SSSP) is weight-capable: weighted jobs run
  // on weight-capable algorithms, are rejected per-job on the others,
  // and unweighted batch-mates are unaffected.
  {
    BatchQueryEngine engine(world.Resources(), BatchOptions{});
    const std::vector<FannrQuery> batch = {
        make_job(FannAlgorithm::kGd, true),
        make_job(FannAlgorithm::kIer, true),
        make_job(FannAlgorithm::kRList, true),
        make_job(FannAlgorithm::kGd, false),
    };
    const std::vector<FannResult> results = engine.Run(batch);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].status, QueryStatus::kOk);
    EXPECT_EQ(results[1].status, QueryStatus::kRejected);
    EXPECT_NE(results[1].error.find("per-query-point weights"),
              std::string::npos)
        << results[1].error;
    EXPECT_EQ(results[2].status, QueryStatus::kOk);
    EXPECT_EQ(results[3].status, QueryStatus::kOk);
    // Weighted and unweighted answers diverge (the weights matter) yet
    // both solved from the same batch.
    EXPECT_EQ(DistanceBits(results[0].distance),
              DistanceBits(results[2].distance));
  }

  // A weight-incapable configured oracle rejects every weighted job,
  // whatever the algorithm.
  {
    BatchOptions options;
    options.gphi_kind = GphiKind::kIne;
    BatchQueryEngine engine(world.Resources(), options);
    const std::vector<FannrQuery> batch = {
        make_job(FannAlgorithm::kGd, true),
        make_job(FannAlgorithm::kGd, false),
    };
    const std::vector<FannResult> results = engine.Run(batch);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, QueryStatus::kRejected);
    EXPECT_NE(results[0].error.find("do not support per-query-point weights"),
              std::string::npos)
        << results[0].error;
    EXPECT_EQ(results[1].status, QueryStatus::kOk);
  }
}

}  // namespace
}  // namespace fannr
