#include "sp/label/hub_labels.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "sp/dijkstra.h"
#include "test_util.h"

namespace fannr {
namespace {

TEST(HubLabelsTest, MatchesDijkstraOnRandomNetworks) {
  for (uint64_t seed : {61u, 62u, 63u}) {
    Graph g = testing::MakeRandomNetwork(350, seed);
    auto labels = HubLabels::Build(g);
    ASSERT_TRUE(labels.has_value());
    DijkstraSearch dijkstra(g);
    Rng rng(seed);
    for (int i = 0; i < 40; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      VertexId v = static_cast<VertexId>(rng.NextIndex(g.NumVertices()));
      EXPECT_NEAR(labels->Distance(u, v), dijkstra.Distance(u, v), 1e-9)
          << "seed " << seed << " pair " << u << "->" << v;
    }
  }
}

TEST(HubLabelsTest, SelfDistanceZero) {
  Graph g = testing::MakeLineGraph(4);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(labels->Distance(v, v), 0.0);
  }
}

TEST(HubLabelsTest, LineGraphExact) {
  Graph g = testing::MakeLineGraph(10, 3.0);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = 0; v < 10; ++v) {
      const double expected = 3.0 * std::abs(static_cast<int>(u) -
                                             static_cast<int>(v));
      EXPECT_NEAR(labels->Distance(u, v), expected, 1e-9);
    }
  }
}

TEST(HubLabelsTest, DisconnectedPairsAreInfinite) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  Graph g = builder.Build();
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());
  EXPECT_EQ(labels->Distance(0, 2), kInfWeight);
  EXPECT_EQ(labels->Distance(1, 3), kInfWeight);
  EXPECT_DOUBLE_EQ(labels->Distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(labels->Distance(2, 3), 1.0);
}

TEST(HubLabelsTest, MemoryBudgetAbortsBuild) {
  Graph g = testing::MakeRandomNetwork(400, 64);
  HubLabels::Options options;
  options.max_memory_bytes = 64;  // absurdly small
  auto labels = HubLabels::Build(g, options);
  EXPECT_FALSE(labels.has_value());
}

TEST(HubLabelsTest, LabelSizeIsReasonableOnRoadNetworks) {
  Graph g = testing::MakeRandomNetwork(900, 65);
  auto labels = HubLabels::Build(g);
  ASSERT_TRUE(labels.has_value());
  // Pruned labeling on a planar-ish network should produce labels far
  // smaller than |V| per vertex.
  EXPECT_LT(labels->AverageLabelSize(),
            static_cast<double>(g.NumVertices()) / 4.0);
  EXPECT_GT(labels->TotalLabelEntries(), g.NumVertices());
  EXPECT_GT(labels->MemoryBytes(), 0u);
}

TEST(HubLabelsTest, EmptyAndSingletonGraphs) {
  Graph empty({}, {});
  auto labels = HubLabels::Build(empty);
  ASSERT_TRUE(labels.has_value());

  Graph singleton(std::vector<std::vector<Arc>>(1), {});
  auto single = HubLabels::Build(singleton);
  ASSERT_TRUE(single.has_value());
  EXPECT_DOUBLE_EQ(single->Distance(0, 0), 0.0);
}

}  // namespace
}  // namespace fannr
