// Election meeting placement — the paper's real-world scenario.
//
// "Suppose that the meeting is legitimate as long as at least half of
//  members are present. To cut down the traveling expense, we can find a
//  place which minimizes the flexible aggregate (sum) distance to
//  members."
//
// Members live across a region; candidate venues are a sparse POI set
// (post offices, per Table IV). We sweep the quorum fraction phi and show
// how the optimal venue and total travel change, and how close the fast
// APX-sum answer stays to the exact one.
//
//   ./election_meeting

#include <cstdio>

#include "common/timer.h"
#include "fann/fannr.h"

int main() {
  using namespace fannr;

  std::printf("Building a regional road network...\n");
  GridNetworkOptions map_options;
  map_options.rows = 100;
  map_options.cols = 100;
  Rng map_rng(2027);
  Graph region = GenerateGridNetwork(map_options, map_rng);
  std::printf("  %zu intersections, %zu road segments\n\n",
              region.NumVertices(), region.NumEdges());

  Rng rng(7);
  // Venues: school-like POIs (Table IV density 0.004, clustered) --
  // typical public meeting places.
  IndexedVertexSet venues(
      region.NumVertices(),
      GeneratePoiSet(region, PoiCategoryByName("SC"), rng));
  // Members: spread over 30% of the region.
  IndexedVertexSet members(
      region.NumVertices(),
      GenerateUniformQueryPoints(region, 0.3, 96, rng));
  std::printf("%zu candidate venues, %zu members\n\n", venues.size(),
              members.size());

  GphiResources resources;
  resources.graph = &region;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);

  std::printf("quorum  venue     total travel   exact ms   APX-sum ms  "
              "ratio\n");
  for (double phi : {0.25, 0.5, 0.75, 1.0}) {
    FannQuery query{&region, &venues, &members, phi, Aggregate::kSum};

    Timer exact_timer;
    FannResult exact = SolveRList(query, *engine);
    const double exact_ms = exact_timer.Millis();

    Timer apx_timer;
    FannResult apx = SolveApxSum(query, *engine);
    const double apx_ms = apx_timer.Millis();

    std::printf("%5.0f%%  v%-8u %12.1f %10.2f %12.2f  %.4f\n", phi * 100,
                exact.best, exact.distance, exact_ms, apx_ms,
                apx.distance / exact.distance);
  }

  std::printf(
      "\nA lower quorum lets the meeting move toward the densest pocket\n"
      "of members, shrinking total travel; APX-sum tracks the exact\n"
      "optimum (guaranteed 3x, 2x when members' homes are all candidate\n"
      "venues, typically ~1.0x) at a fraction of the cost.\n");
  return 0;
}
