// Carpool meetup — optimal meeting point (OMP) queries and route
// reconstruction.
//
// The paper's introduction cites the optimal meeting point problem as a
// special case of FANN_R (V together with Q always contains an OMP, so
// P can be left implicit). A group of commuters picks the network vertex
// minimizing their total travel; with a flexible quorum (phi < 1) the
// car leaves once enough people arrive. We also print one commuter's
// turn-by-turn route to the chosen point.
//
//   ./carpool_meetup [group_size]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "fann/fannr.h"
#include "sp/dijkstra.h"

int main(int argc, char** argv) {
  using namespace fannr;
  const size_t group = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;

  Graph city = BuildPreset("TEST");
  std::printf("city: %zu intersections, %zu segments\n", city.NumVertices(),
              city.NumEdges());

  Rng rng(20260704);
  IndexedVertexSet commuters(
      city.NumVertices(),
      GenerateUniformQueryPoints(city, /*coverage=*/0.5, group, rng));
  std::printf("%zu commuters spread over half the city\n\n", group);

  std::printf("quorum  meeting point   total travel      time\n");
  FannResult full;
  for (double phi : {0.5, 0.75, 1.0}) {
    Timer t;
    FannResult omp = SolveOmp(city, commuters, phi, Aggregate::kSum);
    std::printf("%5.0f%%  v%-12u %14.1f %7.1f ms\n", phi * 100, omp.best,
                omp.distance, t.Millis());
    if (phi == 1.0) full = omp;
  }

  // Max-aggregate variant: minimize the worst commute instead.
  FannResult fair = SolveOmp(city, commuters, 1.0, Aggregate::kMax);
  std::printf("\nfairness variant (minimize the longest commute): v%u "
              "(worst leg %.1f)\n",
              fair.best, fair.distance);

  // Route for the first commuter to the full-quorum meeting point.
  const VertexId start = commuters[0];
  const auto route = ShortestPath(city, start, full.best);
  std::printf("\nroute for commuter at v%u (%zu hops): ", start,
              route.empty() ? 0 : route.size() - 1);
  for (size_t i = 0; i < route.size(); ++i) {
    if (i == 6 && route.size() > 9) {
      std::printf("... -> ");
      continue;
    }
    if (i > 6 && i + 3 < route.size()) continue;
    std::printf("%sv%u", i ? " -> " : "", route[i]);
  }
  std::printf("\n");
  return 0;
}
