// Logistics center placement — the paper's motivating war-game scenario.
//
// A synthetic city-scale road network holds a set of military camps (Q)
// and candidate depot sites (P). The quartermaster can only supply a
// fraction phi of the camps; we place the depot minimizing the worst
// travel distance (max) or the total travel distance (sum) to the best
// phi|Q| camps, and compare every solver in the library on the same
// query, printing answers and wall-clock times.
//
//   ./logistics_center [num_camps] [phi]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "fann/fannr.h"
#include "sp/label/hub_labels.h"

namespace {

using namespace fannr;

void Show(const char* name, const FannResult& r, double ms) {
  std::printf("  %-12s depot=v%-7u d*=%9.1f  g_phi calls=%-5zu %8.3f ms\n",
              name, r.best, r.distance, r.gphi_evaluations, ms);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_camps = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                    : 64;
  const double phi = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;

  std::printf("Building a city-scale road network...\n");
  GridNetworkOptions map_options;
  map_options.rows = 120;
  map_options.cols = 120;
  Rng rng(2026);
  Graph city = GenerateGridNetwork(map_options, rng);
  std::printf("  %zu intersections, %zu road segments\n\n",
              city.NumVertices(), city.NumEdges());

  // Camps cluster around two fronts; candidate depots are spread widely.
  IndexedVertexSet camps(
      city.NumVertices(),
      GenerateClusteredQueryPoints(city, /*coverage=*/0.4, num_camps,
                                   /*clusters=*/2, rng));
  IndexedVertexSet depots(city.NumVertices(),
                          GenerateDataPoints(city, /*density=*/0.01, rng));
  std::printf("%zu camps (2 clusters), %zu candidate depot sites, "
              "phi = %.2f -> supply %zu camps\n\n",
              camps.size(), depots.size(), phi,
              FlexK(phi, camps.size()));

  // Index-free engine plus a hub-labeling engine for contrast.
  GphiResources resources;
  resources.graph = &city;
  auto ine = MakeGphiEngine(GphiKind::kIne, resources);
  Timer label_timer;
  auto labels = HubLabels::Build(city);
  std::printf("hub labels built in %.2f s (avg label %.1f)\n\n",
              label_timer.Seconds(), labels->AverageLabelSize());
  resources.labels = &*labels;
  auto phl = MakeGphiEngine(GphiKind::kPhl, resources);

  const RTree depot_tree = BuildDataPointRTree(city, depots);

  for (Aggregate g : {Aggregate::kMax, Aggregate::kSum}) {
    FannQuery query{&city, &depots, &camps, phi, g};
    std::printf("%s-FANN_R (minimize %s distance to the chosen camps):\n",
                AggregateName(g).data(),
                g == Aggregate::kMax ? "worst-case" : "total");

    Timer t;
    FannResult gd = SolveGd(query, *phl);
    Show("GD-PHL", gd, t.Millis());

    t.Reset();
    FannResult rlist = SolveRList(query, *ine);
    Show("R-List", rlist, t.Millis());

    t.Reset();
    FannResult ier = SolveIer(query, *phl, depot_tree);
    Show("IER-PHL", ier, t.Millis());

    if (g == Aggregate::kMax) {
      t.Reset();
      FannResult em = SolveExactMax(query);
      Show("Exact-max", em, t.Millis());
    } else {
      t.Reset();
      FannResult apx = SolveApxSum(query, *ine);
      Show("APX-sum", apx, t.Millis());
      std::printf("  (APX-sum observed ratio: %.4f)\n",
                  apx.distance / gd.distance);
    }
    std::printf("\n");
  }

  std::printf("All exact solvers agree on d*; APX-sum lands within its\n"
              "guaranteed factor (3x worst case, ~1.0-1.2x in practice).\n");
  return 0;
}
