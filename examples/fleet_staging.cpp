// Fleet staging shortlist — k-FANN_R in action (paper Section V).
//
// A delivery operator wants a shortlist of the k best staging depots:
// each depot is scored by the worst travel distance to the phi-fraction
// of delivery addresses it can realistically serve. We run every adapted
// k-FANN_R algorithm and verify they produce the same shortlist.
//
//   ./fleet_staging [k]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "fann/fannr.h"
#include "sp/label/hub_labels.h"

int main(int argc, char** argv) {
  using namespace fannr;
  const size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  std::printf("Building the service-area road network...\n");
  GridNetworkOptions map_options;
  map_options.rows = 90;
  map_options.cols = 90;
  Rng rng(99);
  Graph area = GenerateGridNetwork(map_options, rng);

  IndexedVertexSet depots(area.NumVertices(),
                          GenerateDataPoints(area, 0.02, rng));
  IndexedVertexSet addresses(
      area.NumVertices(), GenerateUniformQueryPoints(area, 0.5, 128, rng));
  const double phi = 0.5;
  std::printf("  %zu intersections | %zu candidate depots | %zu addresses"
              " | phi=%.1f | top-%zu\n\n",
              area.NumVertices(), depots.size(), addresses.size(), phi, k);

  auto labels = HubLabels::Build(area);
  GphiResources resources;
  resources.graph = &area;
  resources.labels = &*labels;
  auto phl = MakeGphiEngine(GphiKind::kPhl, resources);
  auto ine = MakeGphiEngine(GphiKind::kIne, resources);
  const RTree depot_tree = BuildDataPointRTree(area, depots);

  FannQuery query{&area, &depots, &addresses, phi, Aggregate::kMax};

  struct Run {
    const char* name;
    std::vector<KFannEntry> shortlist;
    double ms;
  };
  std::vector<Run> runs;

  Timer t;
  runs.push_back({"k-GD (PHL)", SolveKGd(query, k, *phl), t.Millis()});
  t.Reset();
  runs.push_back({"k-R-List", SolveKRList(query, k, *ine), t.Millis()});
  t.Reset();
  runs.push_back(
      {"k-IER (PHL)", SolveKIer(query, k, *phl, depot_tree), t.Millis()});
  t.Reset();
  runs.push_back({"k-Exact-max", SolveKExactMax(query, k), t.Millis()});

  std::printf("shortlist (worst-case travel to the served half):\n");
  for (size_t rank = 0; rank < runs[0].shortlist.size(); ++rank) {
    std::printf("  #%zu  depot v%-7u  d = %.1f\n", rank + 1,
                runs[0].shortlist[rank].vertex,
                runs[0].shortlist[rank].distance);
  }

  std::printf("\nagreement across algorithms:\n");
  bool all_agree = true;
  for (const Run& run : runs) {
    bool agree = run.shortlist.size() == runs[0].shortlist.size();
    for (size_t i = 0; agree && i < run.shortlist.size(); ++i) {
      agree = std::abs(run.shortlist[i].distance -
                       runs[0].shortlist[i].distance) < 1e-6;
    }
    all_agree &= agree;
    std::printf("  %-12s %-9s %8.2f ms\n", run.name,
                agree ? "matches" : "DIFFERS!", run.ms);
  }
  std::printf("\n%s\n", all_agree
                            ? "All four k-FANN_R algorithms agree."
                            : "MISMATCH DETECTED — please file a bug.");
  return all_agree ? 0 : 1;
}
