// Quickstart: the paper's Fig. 1 worked example, end to end.
//
// Builds a small road network with data points P and query points Q whose
// FANN_R answers mirror the paper's walkthrough: with abundant supplies
// (phi = 1, classic ANN) the "geographical center" wins, but when only
// half the camps can be supplied (phi = 0.5) a locally central point wins
// with a far smaller aggregate distance.
//
//   ./quickstart

#include <cstdio>

#include "fann/fannr.h"

namespace {

using namespace fannr;

// A road network in the spirit of Fig. 1: a central hub p_center that is
// moderately far from four camps, and a point p_local that is very close
// to two of them.
struct Scenario {
  Graph graph;
  std::vector<VertexId> data_points;   // candidate sites P
  std::vector<VertexId> query_points;  // camps Q

  static Scenario Build() {
    GraphBuilder b;
    // Camps (queries).
    VertexId q1 = b.AddVertex(Point{0.0, 10.0});
    VertexId q2 = b.AddVertex(Point{0.0, -10.0});
    VertexId q3 = b.AddVertex(Point{40.0, 12.0});
    VertexId q4 = b.AddVertex(Point{40.0, -12.0});
    // Candidate sites (data points).
    VertexId p_local = b.AddVertex(Point{0.0, 0.0});    // near q1, q2
    VertexId p_center = b.AddVertex(Point{20.0, 0.0});  // central hub
    VertexId p_far = b.AddVertex(Point{60.0, 0.0});

    b.AddEdge(p_local, q1, 10.0);
    b.AddEdge(p_local, q2, 10.0);
    b.AddEdge(p_local, p_center, 20.0);
    b.AddEdge(p_center, q3, 23.0);
    b.AddEdge(p_center, q4, 23.0);
    b.AddEdge(p_center, q1, 25.0);  // ring road shortcut
    b.AddEdge(q3, p_far, 21.0);
    b.AddEdge(q4, p_far, 21.0);

    Scenario s{b.Build(), {p_local, p_center, p_far}, {q1, q2, q3, q4}};
    return s;
  }
};

void Report(const char* title, const FannResult& r,
            const Scenario& scenario) {
  const char* names[] = {"q1", "q2", "q3", "q4"};
  std::printf("%-28s best=p%u  d*=%.1f  Q*_phi={", title,
              r.best - 3u, r.distance);
  for (size_t i = 0; i < r.subset.size(); ++i) {
    for (size_t qi = 0; qi < scenario.query_points.size(); ++qi) {
      if (scenario.query_points[qi] == r.subset[i]) {
        std::printf("%s%s", i ? ", " : "", names[qi]);
      }
    }
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  Scenario scenario = Scenario::Build();
  IndexedVertexSet p(scenario.graph.NumVertices(), scenario.data_points);
  IndexedVertexSet q(scenario.graph.NumVertices(), scenario.query_points);

  GphiResources resources;
  resources.graph = &scenario.graph;
  auto engine = MakeGphiEngine(GphiKind::kIne, resources);

  std::printf("FANN_R quickstart (Fig. 1-style scenario)\n");
  std::printf("P = {p1 (local), p2 (center), p3 (far)}, "
              "Q = {q1..q4}\n\n");

  // phi = 1: the classic ANN query — supply every camp.
  for (Aggregate g : {Aggregate::kMax, Aggregate::kSum}) {
    FannQuery query{&scenario.graph, &p, &q, 1.0, g};
    FannResult r = SolveGd(query, *engine);
    char title[64];
    std::snprintf(title, sizeof(title), "phi=1.0 (%s-ANN):",
                  AggregateName(g).data());
    Report(title, r, scenario);
  }

  std::printf("\n");

  // phi = 0.5: supply only half the camps — the flexible query.
  for (Aggregate g : {Aggregate::kMax, Aggregate::kSum}) {
    FannQuery query{&scenario.graph, &p, &q, 0.5, g};
    FannResult exact = g == Aggregate::kMax
                           ? SolveExactMax(query)
                           : SolveGd(query, *engine);
    char title[64];
    std::snprintf(title, sizeof(title), "phi=0.5 (%s-FANN_R):",
                  AggregateName(g).data());
    Report(title, exact, scenario);
  }

  std::printf(
      "\nWith phi=1 the central site p2 wins; with phi=0.5 the locally\n"
      "central p1 wins with a much smaller aggregate distance -- the\n"
      "flexibility changes the optimal site, exactly as in the paper's\n"
      "introduction.\n");
  return 0;
}
