#!/usr/bin/env bash
# CI smoke test for continuous subscriptions: start fannr_server on the
# TEST preset, attach two subscribing fannr_client processes (distinct
# standing queries, --force-push so every wave produces exactly one push
# each), drive UPDATE_WEIGHTS waves from a third client, and assert that
# both subscribers saw strictly increasing pushed epochs, that their
# final one-shot answers matched the last push, and that the server
# drains cleanly on SIGTERM afterwards. The epoch-monotonicity and
# one-shot checks live inside fannr_client --subscribe, which exits
# nonzero if either fails.
#
# Usage: subs_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR="${1:?usage: subs_smoke.sh <build-dir>}"
SERVER="$BUILD_DIR/tools/fannr_server"
CLIENT="$BUILD_DIR/tools/fannr_client"
LOG="$(mktemp)"
SUB1_LOG="$(mktemp)"
SUB2_LOG="$(mktemp)"
trap 'rm -f "$LOG" "$SUB1_LOG" "$SUB2_LOG"' EXIT

WAVES=3

"$SERVER" --preset TEST --port 0 --threads 2 --drain-deadline-ms 10000 \
  > "$LOG" 2>&1 &
SERVER_PID=$!

# The server prints "listening on HOST:PORT" once ready.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: server died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { cat "$LOG"; echo "FAIL: server never reported its port"; exit 1; }
echo "server up on port $PORT (pid $SERVER_PID)"

# Two subscribers with distinct standing queries. Each blocks until it
# has received WAVES pushes, then one-shots and unsubscribes.
"$CLIENT" --port "$PORT" --subscribe "$WAVES" --force-push --preset TEST \
  --seed 11 --algorithm gd --agg sum > "$SUB1_LOG" 2>&1 &
SUB1_PID=$!
"$CLIENT" --port "$PORT" --subscribe "$WAVES" --force-push --preset TEST \
  --seed 22 --algorithm rlist --agg max > "$SUB2_LOG" 2>&1 &
SUB2_PID=$!

# Both subscriptions must be live before the first wave, or its pushes
# would be missed.
for _ in $(seq 1 100); do
  grep -q "^subscribed: id" "$SUB1_LOG" && grep -q "^subscribed: id" "$SUB2_LOG" && break
  kill -0 "$SUB1_PID" 2>/dev/null || { cat "$SUB1_LOG"; echo "FAIL: subscriber 1 died before registering"; exit 1; }
  kill -0 "$SUB2_PID" 2>/dev/null || { cat "$SUB2_LOG"; echo "FAIL: subscriber 2 died before registering"; exit 1; }
  sleep 0.1
done
grep -q "^subscribed: id" "$SUB1_LOG" || { cat "$SUB1_LOG"; echo "FAIL: subscriber 1 never registered"; exit 1; }
grep -q "^subscribed: id" "$SUB2_LOG" || { cat "$SUB2_LOG"; echo "FAIL: subscriber 2 never registered"; exit 1; }
echo "both subscribers registered"

# The wave driver: each wave bumps the graph epoch and triggers one
# forced push per subscriber.
"$CLIENT" --port "$PORT" --waves "$WAVES" --preset TEST --seed 99

SUB_FAIL=0
wait "$SUB1_PID" || SUB_FAIL=1
wait "$SUB2_PID" || SUB_FAIL=1
echo "--- subscriber 1 ---"; cat "$SUB1_LOG"
echo "--- subscriber 2 ---"; cat "$SUB2_LOG"
[ "$SUB_FAIL" -eq 0 ] || { echo "FAIL: a subscriber exited nonzero"; exit 1; }

for SUB_LOG in "$SUB1_LOG" "$SUB2_LOG"; do
  PUSHES="$(grep -c "^push @epoch" "$SUB_LOG" || true)"
  [ "$PUSHES" -eq "$WAVES" ] || { echo "FAIL: expected $WAVES pushes in $SUB_LOG, saw $PUSHES"; exit 1; }
  grep -q "^final one-shot matches @epoch $WAVES\$" "$SUB_LOG" \
    || { echo "FAIL: final one-shot did not match at epoch $WAVES"; exit 1; }
  grep -q "^unsubscribed after $WAVES pushes\$" "$SUB_LOG" \
    || { echo "FAIL: unsubscribe push count != $WAVES"; exit 1; }
done

# Clean SIGTERM drain: the server must exit 0 (drain within deadline).
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
  SERVER_EXIT=0
else
  SERVER_EXIT=$?
fi
echo "--- server log ---"
cat "$LOG"
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after SIGTERM"
  exit 1
fi
grep -q "within deadline" "$LOG" || { echo "FAIL: drain not within deadline"; exit 1; }
echo "OK: subscription smoke passed ($WAVES monotone pushes per subscriber, one-shot match, clean drain)"
