#!/usr/bin/env python3
"""Validates BENCH_dynamic.json: schema plus sanity invariants.

CI runs this after the dynamic-updates smoke so a benchmark that
silently produces garbage (a wave that applied nothing, an epoch that
did not advance, a correctness gate that flipped false, a cache that
never reclaimed its stale entries) fails the build instead of uploading
a broken artifact.

Usage: check_dynamic_json.py [path-to-BENCH_dynamic.json]
"""

import json
import math
import sys

REQUIRED_TOP_LEVEL = [
    "dataset",
    "num_vertices",
    "num_edges",
    "waves",
    "ttfa",
    "cache",
    "final_epoch",
]
REQUIRED_WAVE = [
    "fraction",
    "updates",
    "applied",
    "missing",
    "build_ms",
    "apply_ms",
    "epoch",
]
REQUIRED_TTFA = [
    "initial_index_build_ms",
    "update_applied",
    "index_free_ms",
    "rebuild_ms",
    "rebuild_index_build_ms",
    "index_free_correct",
    "rebuild_correct",
    "stale_index_detected",
]
REQUIRED_CACHE = [
    "epoch_evictions",
    "hits",
    "misses",
    "lookups",
    "post_update_correct",
]

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_nonneg(value):
    return (isinstance(value, (int, float)) and math.isfinite(value)
            and value >= 0)


def finite_positive(value):
    return finite_nonneg(value) and value > 0


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_dynamic.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    for key in REQUIRED_TOP_LEVEL:
        check(key in data, f"missing top-level key '{key}'")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    check(data["num_vertices"] >= 1, "num_vertices must be >= 1")
    check(data["num_edges"] >= 1, "num_edges must be >= 1")

    waves = data["waves"]
    check(len(waves) > 0, "waves array is empty")
    prev_epoch = 0
    for i, wave in enumerate(waves):
        for key in REQUIRED_WAVE:
            check(key in wave, f"wave #{i}: missing key '{key}'")
        if _errors:
            break
        label = f"wave #{i} (fraction {wave['fraction']})"
        check(0 < wave["fraction"] <= 1, f"{label}: fraction out of (0, 1]")
        check(wave["applied"] + wave["missing"] <= wave["updates"],
              f"{label}: applied + missing exceeds the update count")
        check(finite_nonneg(wave["build_ms"]),
              f"{label}: build_ms must be finite and >= 0")
        check(finite_nonneg(wave["apply_ms"]),
              f"{label}: apply_ms must be finite and >= 0")
        # Each wave bumps the epoch exactly once (MakeCongestionWave can
        # legitimately select zero edges only on degenerate graphs, which
        # the bench's fractions and TEST preset rule out).
        check(wave["applied"] > 0, f"{label}: wave applied no updates")
        check(wave["epoch"] == prev_epoch + 1,
              f"{label}: epoch {wave['epoch']} is not exactly one past "
              f"the previous epoch {prev_epoch}")
        prev_epoch = wave["epoch"]

    ttfa = data["ttfa"]
    for key in REQUIRED_TTFA:
        check(key in ttfa, f"ttfa: missing key '{key}'")
    if not _errors:
        check(finite_positive(ttfa["index_free_ms"]),
              "ttfa: index_free_ms must be positive")
        check(finite_positive(ttfa["rebuild_ms"]),
              "ttfa: rebuild_ms must be positive")
        check(ttfa["rebuild_index_build_ms"] <= ttfa["rebuild_ms"],
              "ttfa: rebuild path cannot be faster than its index build")
        check(ttfa["update_applied"] > 0, "ttfa: the wave applied nothing")
        check(ttfa["index_free_correct"] is True,
              "ttfa: index-free answer disagreed with the oracle")
        check(ttfa["rebuild_correct"] is True,
              "ttfa: rebuilt-index answer disagreed with the oracle")
        check(ttfa["stale_index_detected"] is True,
              "ttfa: the stale index was not diagnosed")

    cache = data["cache"]
    for key in REQUIRED_CACHE:
        check(key in cache, f"cache: missing key '{key}'")
    if not _errors:
        check(cache["hits"] + cache["misses"] == cache["lookups"],
              f"cache: hits ({cache['hits']}) + misses ({cache['misses']}) "
              f"!= lookups ({cache['lookups']})")
        check(cache["epoch_evictions"] > 0,
              "cache: a warm cache straddling an update must reclaim "
              "stale entries")
        check(cache["post_update_correct"] is True,
              "cache: post-update answers disagreed with the oracle")

    check(data["final_epoch"] >= len(waves) + 2,
          "final_epoch below the number of applied waves (sweep + ttfa "
          "wave + cache wave)")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1
    print(f"OK: {path} passes schema and sanity checks "
          f"({len(waves)} waves, final epoch {data['final_epoch']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
