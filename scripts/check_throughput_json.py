#!/usr/bin/env python3
"""Validates BENCH_throughput.json: schema plus sanity invariants.

CI runs this after the throughput smoke so a benchmark that silently
produces garbage (NaN rates, empty cells, a cache whose attributed
hit/miss sums disagree with its own counters) fails the build instead of
uploading a broken artifact.

Usage: check_throughput_json.py [path-to-BENCH_throughput.json]
"""

import json
import math
import sys

REQUIRED_TOP_LEVEL = [
    "dataset",
    "batch_size",
    "p_size",
    "reps",
    "speedup_engine8_cached_vs_seq_uncached",
    "obs_overhead_percent",
    "cells",
    "report",
]
REQUIRED_CELL = [
    "config",
    "threads",
    "cached",
    "observed",
    "mean_ms",
    "qps",
    "cache_hits",
    "cache_misses",
    "heap_grows",
    "heap_grows_construct",
    "heap_grows_solve",
]

# Thread-scaling gate: each engine-nocache step may lose at most 10% qps
# vs the previous thread count. On a single-core host the curve is flat
# (so this passes trivially); on multicore it catches a scaling collapse
# from lock/allocator contention or false sharing. The 0.9 floor leaves
# room for benchmark noise without letting a real regression through.
NOCACHE_STEP_FLOOR = 0.9
NOCACHE_REQUIRED_THREADS = [1, 2, 4, 8]

# Observability-overhead bar, on the bench's paired-median measurement
# (plain and observed engines run back to back each rep; medians
# compared). The tracing decorator plus the slow-query log's lock-free
# drop path keep the observed run within a couple percent of the plain
# one; 3% still catches a lock reintroduced on the per-query path. (The
# old 5% bar dated from when SlowQueryLog::Offer serialized every worker
# on one mutex just to count the offer, and from a noisier methodology —
# comparing the means of two cells run minutes apart.)
OBS_OVERHEAD_MAX_PERCENT = 3.0
REQUIRED_REPORT = [
    "batch_size",
    "rejected",
    "num_threads",
    "wall_ms",
    "queries_per_second",
    "solve_ms",
    "cache",
    "attributed_cache_hits",
    "attributed_cache_misses",
    "pool_indices_executed",
    "counters",
    "gauges",
    "histograms",
]
REQUIRED_HISTOGRAM = ["count", "sum", "min", "max", "mean", "p50", "p95",
                      "p99", "bounds", "counts"]

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_positive(value):
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def check_histogram(h, label):
    for key in REQUIRED_HISTOGRAM:
        check(key in h, f"{label}: missing key '{key}'")
    if _errors:
        return
    check(len(h["counts"]) == len(h["bounds"]) + 1,
          f"{label}: counts must have len(bounds)+1 buckets")
    check(sum(h["counts"]) == h["count"],
          f"{label}: bucket counts sum to {sum(h['counts'])}, "
          f"count says {h['count']}")
    if h["count"] > 0:
        check(h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"],
              f"{label}: percentiles not monotone within [min, max]")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_throughput.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    for key in REQUIRED_TOP_LEVEL:
        check(key in data, f"missing top-level key '{key}'")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    check(data["batch_size"] >= 1, "batch_size must be >= 1")
    check(math.isfinite(data["obs_overhead_percent"]),
          "obs_overhead_percent is not finite")
    if math.isfinite(data.get("obs_overhead_percent", math.nan)):
        check(data["obs_overhead_percent"] <= OBS_OVERHEAD_MAX_PERCENT,
              f"observability overhead {data['obs_overhead_percent']:.2f}% "
              f"exceeds the {OBS_OVERHEAD_MAX_PERCENT}% bar")
    check(finite_positive(data["speedup_engine8_cached_vs_seq_uncached"]),
          "speedup is not a positive finite number")

    cells = data["cells"]
    check(len(cells) > 0, "cells array is empty")
    configs = set()
    for cell in cells:
        missing = [key for key in REQUIRED_CELL if key not in cell]
        for key in missing:
            check(False, f"cell {cell.get('config', '?')}: "
                         f"missing key '{key}'")
        if missing:
            continue  # skip value checks, but keep validating other cells
        label = f"cell {cell['config']} T={cell['threads']}"
        configs.add(cell["config"])
        check(finite_positive(cell["qps"]), f"{label}: qps must be positive")
        check(finite_positive(cell["mean_ms"]),
              f"{label}: mean_ms must be positive")
        check(isinstance(cell["heap_grows"], int) and cell["heap_grows"] >= 0,
              f"{label}: heap_grows must be a non-negative integer")
        # Solve-phase allocation gate: workers prewarm their search
        # scratch to the NumArcs()+1 worst case at engine construction
        # (BatchOptions::prewarm_scratch), so the solve phase never grows
        # a heap — for ANY (threads, schedule) cell. A nonzero value
        # means an un-prewarmed heap crept back onto the query path and
        # heap_grows is race-dependent again.
        check(cell.get("heap_grows_solve") == 0,
              f"{label}: heap_grows_solve is "
              f"{cell.get('heap_grows_solve')}, must be exactly 0 "
              f"(solve phase regrew a heap)")
        check(cell.get("heap_grows_construct", -1) >= 0 and
              cell.get("heap_grows_construct", 0) +
              cell.get("heap_grows_solve", 0) == cell["heap_grows"],
              f"{label}: heap_grows must equal construct + solve split")
        if not cell["cached"]:
            check(cell["cache_hits"] + cell["cache_misses"] == 0,
                  f"{label}: uncached cell reports cache activity")
    for expected in ("seq-uncached", "engine-nocache", "engine-cached",
                     "engine-cached+obs"):
        check(expected in configs, f"missing cell config '{expected}'")

    # Thread-scaling gate over the engine-nocache ladder.
    nocache = sorted((c for c in cells
                      if c.get("config") == "engine-nocache"),
                     key=lambda c: c["threads"])
    nocache_threads = [c["threads"] for c in nocache]
    check(nocache_threads == NOCACHE_REQUIRED_THREADS,
          f"engine-nocache ladder must cover threads "
          f"{NOCACHE_REQUIRED_THREADS}, got {nocache_threads}")
    for prev, cur in zip(nocache, nocache[1:]):
        if not (finite_positive(prev["qps"]) and finite_positive(cur["qps"])):
            continue  # already reported above
        check(cur["qps"] >= NOCACHE_STEP_FLOOR * prev["qps"],
              f"thread scaling regression: engine-nocache qps drops from "
              f"{prev['qps']:.1f} (T={prev['threads']}) to "
              f"{cur['qps']:.1f} (T={cur['threads']}); each step must stay "
              f">= {NOCACHE_STEP_FLOOR}x the previous")

    report = data["report"]
    for key in REQUIRED_REPORT:
        check(key in report, f"report: missing key '{key}'")
    if not _errors:
        check(report["rejected"] == 0, "report: benchmark jobs were rejected")
        check(finite_positive(report["queries_per_second"]),
              "report: queries_per_second must be positive")
        check(report["solve_ms"]["count"] ==
              report["batch_size"] - report["rejected"],
              "report: solve_ms histogram must have one sample per "
              "executed query")
        check_histogram(report["solve_ms"], "report.solve_ms")

        # The core cross-check: the cache's own counters, the per-query
        # attributed sums from the traces, and the registry's published
        # totals must all agree.
        cache = report["cache"]
        check(cache["hits"] + cache["misses"] == cache["lookups"],
              f"report.cache: hits ({cache['hits']}) + misses "
              f"({cache['misses']}) != lookups ({cache['lookups']})")
        check(report["attributed_cache_hits"] == cache["hits"],
              "report: per-query attributed hits disagree with the "
              "cache's own counter")
        check(report["attributed_cache_misses"] == cache["misses"],
              "report: per-query attributed misses disagree with the "
              "cache's own counter")
        counters = report["counters"]
        check(counters.get("cache.hits") == cache["hits"],
              "report: registry counter cache.hits disagrees")
        check(counters.get("cache.misses") == cache["misses"],
              "report: registry counter cache.misses disagrees")
        check(counters.get("engine.queries", 0) >= report["batch_size"],
              "report: engine.queries counter below batch size")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1
    print(f"OK: {path} passes schema and sanity checks "
          f"({len(cells)} cells, report covers "
          f"{report['batch_size']} queries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
