#!/usr/bin/env python3
"""Validates BENCH_subs.json: schema plus sanity invariants.

CI runs this after the subscription throughput bench so a run that
silently produces garbage (no pushes, no suppression despite the
re-sent waves, backpressure drops, unordered percentiles, or — above
all — any push differing bitwise from the in-process engine at the
pushed epoch) fails the build instead of uploading a broken artifact.

Usage: check_subs_json.py [path-to-BENCH_subs.json]
"""

import json
import math
import sys

REQUIRED_TOP_LEVEL = [
    "dataset",
    "waves_per_cell",
    "engine_threads",
    "cells",
    "differential",
]
REQUIRED_CELL = [
    "connections",
    "subscriptions",
    "waves",
    "pushes",
    "suppressed",
    "suppression_rate",
    "push_p50_ms",
    "push_p95_ms",
    "final_epoch",
    "dropped_backpressure",
    "differential_answers",
    "differential_mismatches",
]

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_nonnegative(value):
    return (isinstance(value, (int, float)) and math.isfinite(value) and
            value >= 0)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_subs.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    for key in REQUIRED_TOP_LEVEL:
        check(key in data, f"missing top-level key '{key}'")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    cells = data["cells"]
    check(len(cells) >= 2, "need at least two cells (single- and "
                           "multi-connection)")
    for cell in cells:
        for key in REQUIRED_CELL:
            check(key in cell,
                  f"cell conns={cell.get('connections', '?')}: "
                  f"missing key '{key}'")
        if _errors:
            break
        label = (f"cell conns={cell['connections']} "
                 f"subs={cell['subscriptions']}")
        check(cell["pushes"] > 0, f"{label}: no push was ever delivered")
        # Half the waves are exact re-sends: the epoch advances but no
        # answer changes, so suppression must have fired.
        check(cell["suppressed"] > 0,
              f"{label}: delta suppression never fired despite the "
              f"re-sent waves")
        decisions = cell["pushes"] + cell["suppressed"]
        check(decisions == cell["waves"] * cell["subscriptions"],
              f"{label}: pushes + suppressed != waves * subscriptions "
              f"(a re-evaluation skipped a subscription)")
        check(abs(cell["suppression_rate"] -
                  cell["suppressed"] / decisions) < 1e-9,
              f"{label}: suppression_rate inconsistent with its counters")
        check(0.0 < cell["suppression_rate"] < 1.0,
              f"{label}: suppression_rate out of (0, 1)")
        check(finite_nonnegative(cell["push_p50_ms"]) and
              finite_nonnegative(cell["push_p95_ms"]),
              f"{label}: push latency percentiles must be finite and "
              f"non-negative")
        check(cell["push_p50_ms"] <= cell["push_p95_ms"],
              f"{label}: push latency percentiles not monotone")
        check(cell["push_p95_ms"] > 0,
              f"{label}: p95 push latency is zero (no latency measured)")
        check(cell["final_epoch"] == cell["waves"],
              f"{label}: final epoch {cell['final_epoch']} != waves "
              f"{cell['waves']} (a wave failed to apply)")
        check(cell["dropped_backpressure"] == 0,
              f"{label}: {cell['dropped_backpressure']} pushes dropped to "
              f"backpressure under benign load")
        check(cell["differential_answers"] > 0,
              f"{label}: differential checked no answers")
        check(cell["differential_mismatches"] == 0,
              f"{label}: {cell['differential_mismatches']} answers differed "
              f"from the in-process engine (must be bitwise identical)")
    check(any(c.get("connections", 0) > 1 for c in cells),
          "no multi-connection cell")

    differential = data["differential"]
    check(differential.get("answers", 0) > 0, "differential ran no answers")
    check(differential.get("answers", 0) ==
          sum(c.get("differential_answers", 0) for c in cells),
          "top-level differential answers != sum over cells")
    check(differential.get("mismatches", -1) == 0,
          f"differential: {differential.get('mismatches')} answers differed "
          f"from the in-process engine (must be bitwise identical)")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1
    total_pushes = sum(c["pushes"] for c in cells)
    rates = ", ".join(f"{c['suppression_rate']:.2f}" for c in cells)
    print(f"OK: {path} passes schema and sanity checks ({len(cells)} cells, "
          f"{total_pushes} pushes, suppression rates [{rates}], "
          f"{differential['answers']} differential answers with 0 "
          f"mismatches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
