#!/usr/bin/env python3
"""Validates BENCH_server.json: schema plus sanity invariants.

CI runs this after the server throughput smoke so a run that silently
produces garbage (zero qps, no OVERLOADED shedding under saturation, a
drain past its deadline, a pipelined path slower than thread-per-
connection ever was, or a pipelined answer differing from the in-process
engine) fails the build instead of uploading a broken artifact.

Usage: check_server_json.py [path-to-BENCH_server.json]
"""

import json
import math
import sys

REQUIRED_TOP_LEVEL = [
    "dataset",
    "queries_per_connection",
    "engine_threads",
    "cells",
    "pipelined_differential",
    "overload",
    "drain",
]
REQUIRED_CELL = [
    "connections",
    "waves",
    "pipelined",
    "depth",
    "qps",
    "wall_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "ok",
    "rejected",
    "timed_out",
    "resubmitted",
    "waves_applied",
    "final_epoch",
]

# The epoll rebuild exists to beat the old thread-per-connection model:
# the 128-connection pipelined steady cell must deliver at least this
# multiple of the 8-connection synchronous steady cell's qps.
PIPELINED_QPS_MULTIPLE = 2.0

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_positive(value):
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_server.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    for key in REQUIRED_TOP_LEVEL:
        check(key in data, f"missing top-level key '{key}'")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    cells = data["cells"]
    check(len(cells) >= 2, "need at least one steady and one wave cell")
    saw_waves = False
    for cell in cells:
        for key in REQUIRED_CELL:
            check(key in cell,
                  f"cell conns={cell.get('connections', '?')}: "
                  f"missing key '{key}'")
        if _errors:
            break
        label = (f"cell conns={cell['connections']} "
                 f"waves={'on' if cell['waves'] else 'off'} "
                 f"{'pipelined' if cell['pipelined'] else 'sync'}")
        check(finite_positive(cell["qps"]), f"{label}: qps must be positive")
        check(cell["ok"] > 0, f"{label}: no query succeeded")
        check(cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"],
              f"{label}: latency percentiles not monotone")
        check(cell["depth"] >= 1, f"{label}: depth must be >= 1")
        if cell["pipelined"]:
            check(cell["depth"] > 1,
                  f"{label}: a pipelined cell should keep >1 frame in flight")
        if cell["waves"]:
            saw_waves = True
            check(cell["waves_applied"] > 0,
                  f"{label}: wave cell applied no update waves")
            check(cell["final_epoch"] > 0,
                  f"{label}: wave cell never advanced the graph epoch")
        else:
            check(cell["rejected"] == 0,
                  f"{label}: steady cell saw stale-admission rejections")
            check(cell["final_epoch"] == 0,
                  f"{label}: steady cell advanced the graph epoch")
    check(saw_waves, "no cell ran with update waves")

    def find_cell(connections, waves, pipelined):
        for cell in cells:
            if (cell.get("connections") == connections and
                    cell.get("waves") == waves and
                    cell.get("pipelined") == pipelined):
                return cell
        return None

    # Pipelined coverage: the cells the event loop exists for must be
    # present (128 steady + waves, and the 1024-connection scale point).
    pipelined_steady = find_cell(128, False, True)
    check(pipelined_steady is not None,
          "missing the 128-connection pipelined steady cell")
    check(find_cell(128, True, True) is not None,
          "missing the 128-connection pipelined wave cell")
    check(any(c.get("pipelined") and not c.get("waves") and
              c.get("connections", 0) >= 1024 for c in cells),
          "missing the 1024-connection pipelined cell (fd limit too low?)")

    # The headline gate: pipelining at 128 connections must beat the
    # 8-connection synchronous baseline by the required multiple.
    sync_baseline = find_cell(8, False, False)
    check(sync_baseline is not None,
          "missing the 8-connection synchronous steady cell")
    if pipelined_steady is not None and sync_baseline is not None:
        need = PIPELINED_QPS_MULTIPLE * sync_baseline["qps"]
        check(pipelined_steady["qps"] >= need,
              f"pipelined 128-conn qps {pipelined_steady['qps']:.1f} < "
              f"{PIPELINED_QPS_MULTIPLE}x the 8-conn synchronous baseline "
              f"({sync_baseline['qps']:.1f} qps, need {need:.1f})")

    differential = data["pipelined_differential"]
    check(differential.get("queries", 0) > 0,
          "pipelined differential ran no queries")
    check(differential.get("mismatches", -1) == 0,
          f"pipelined differential: {differential.get('mismatches')} answers "
          f"differed from the in-process engine (must be bitwise identical)")

    overload = data["overload"]
    check(overload.get("overloaded", 0) > 0,
          "overload cell shed nothing: saturation must produce at least "
          "one OVERLOADED response")

    drain = data["drain"]
    check(drain.get("within_deadline") is True,
          f"drain missed its deadline ({drain.get('drain_ms')} ms)")
    check(isinstance(drain.get("drain_ms"), (int, float)) and
          math.isfinite(drain.get("drain_ms", math.nan)) and
          drain.get("drain_ms", -1) >= 0,
          "drain_ms must be a finite non-negative number")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1
    speedup = (pipelined_steady["qps"] / sync_baseline["qps"]
               if sync_baseline["qps"] > 0 else float("nan"))
    print(f"OK: {path} passes schema and sanity checks "
          f"({len(cells)} cells, pipelined/sync speedup {speedup:.2f}x, "
          f"{differential['queries']} differential queries with 0 "
          f"mismatches, {overload['overloaded']} OVERLOADED under "
          f"saturation, drain in {drain['drain_ms']:.1f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
