#!/usr/bin/env python3
"""Validates BENCH_server.json: schema plus sanity invariants.

CI runs this after the server throughput smoke so a run that silently
produces garbage (zero qps, no OVERLOADED shedding under saturation, a
drain past its deadline) fails the build instead of uploading a broken
artifact.

Usage: check_server_json.py [path-to-BENCH_server.json]
"""

import json
import math
import sys

REQUIRED_TOP_LEVEL = [
    "dataset",
    "queries_per_connection",
    "engine_threads",
    "cells",
    "overload",
    "drain",
]
REQUIRED_CELL = [
    "connections",
    "waves",
    "qps",
    "wall_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "ok",
    "rejected",
    "timed_out",
    "resubmitted",
    "waves_applied",
    "final_epoch",
]

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_positive(value):
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_server.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    for key in REQUIRED_TOP_LEVEL:
        check(key in data, f"missing top-level key '{key}'")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    cells = data["cells"]
    check(len(cells) >= 2, "need at least one steady and one wave cell")
    saw_waves = False
    for cell in cells:
        for key in REQUIRED_CELL:
            check(key in cell,
                  f"cell conns={cell.get('connections', '?')}: "
                  f"missing key '{key}'")
        if _errors:
            break
        label = (f"cell conns={cell['connections']} "
                 f"waves={'on' if cell['waves'] else 'off'}")
        check(finite_positive(cell["qps"]), f"{label}: qps must be positive")
        check(cell["ok"] > 0, f"{label}: no query succeeded")
        check(cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"],
              f"{label}: latency percentiles not monotone")
        if cell["waves"]:
            saw_waves = True
            check(cell["waves_applied"] > 0,
                  f"{label}: wave cell applied no update waves")
            check(cell["final_epoch"] > 0,
                  f"{label}: wave cell never advanced the graph epoch")
        else:
            check(cell["rejected"] == 0,
                  f"{label}: steady cell saw stale-admission rejections")
            check(cell["final_epoch"] == 0,
                  f"{label}: steady cell advanced the graph epoch")
    check(saw_waves, "no cell ran with update waves")

    overload = data["overload"]
    check(overload.get("overloaded", 0) > 0,
          "overload cell shed nothing: saturation must produce at least "
          "one OVERLOADED response")

    drain = data["drain"]
    check(drain.get("within_deadline") is True,
          f"drain missed its deadline ({drain.get('drain_ms')} ms)")
    check(isinstance(drain.get("drain_ms"), (int, float)) and
          math.isfinite(drain.get("drain_ms", math.nan)) and
          drain.get("drain_ms", -1) >= 0,
          "drain_ms must be a finite non-negative number")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1
    print(f"OK: {path} passes schema and sanity checks "
          f"({len(cells)} cells, {overload['overloaded']} OVERLOADED under "
          f"saturation, drain in {drain['drain_ms']:.1f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
