#!/usr/bin/env python3
"""Validates BENCH_shard.json: schema plus sanity invariants.

CI runs this after the shard throughput bench so a run that silently
produces garbage (zero qps, a routed answer differing from the
in-process engine, a replica that never caught up after its restart)
fails the build instead of uploading a broken artifact.

Usage: check_shard_json.py [path-to-BENCH_shard.json]
"""

import json
import math
import sys

REQUIRED_TOP_LEVEL = [
    "dataset",
    "num_shards",
    "queries_per_connection",
    "engine_threads",
    "cells",
    "differential",
    "catch_up",
]
REQUIRED_CELL = [
    "mode",
    "connections",
    "waves",
    "qps",
    "wall_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "ok",
    "rejected",
    "timed_out",
    "resubmitted",
    "waves_applied",
    "final_epoch",
]

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_positive(value):
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_shard.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    for key in REQUIRED_TOP_LEVEL:
        check(key in data, f"missing top-level key '{key}'")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    check(data["num_shards"] >= 2, "a sharded bench needs >= 2 shards")

    cells = data["cells"]
    check(len(cells) >= 4, "need single and routed cells, steady and waves")
    seen = set()
    for cell in cells:
        for key in REQUIRED_CELL:
            check(key in cell,
                  f"cell mode={cell.get('mode', '?')} "
                  f"conns={cell.get('connections', '?')}: missing key '{key}'")
        if _errors:
            break
        label = (f"cell {cell['mode']} conns={cell['connections']} "
                 f"waves={'on' if cell['waves'] else 'off'}")
        check(cell["mode"] in ("single", "routed"),
              f"{label}: unknown mode")
        seen.add((cell["mode"], cell["connections"], cell["waves"]))
        check(finite_positive(cell["qps"]), f"{label}: qps must be positive")
        check(cell["ok"] > 0, f"{label}: no query succeeded")
        check(cell["timed_out"] == 0, f"{label}: queries timed out")
        check(cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"],
              f"{label}: latency percentiles not monotone")
        if cell["waves"]:
            check(cell["waves_applied"] > 0,
                  f"{label}: wave cell applied no update waves")
            check(cell["final_epoch"] > 0,
                  f"{label}: wave cell never advanced the graph epoch")
        else:
            check(cell["rejected"] == 0,
                  f"{label}: steady cell saw stale-admission rejections")
            check(cell["final_epoch"] == 0,
                  f"{label}: steady cell advanced the graph epoch")

    # Every routed cell needs its single-node twin (and vice versa): the
    # comparison is the product, not either column alone.
    for (mode, connections, waves) in sorted(seen):
        twin = ("routed" if mode == "single" else "single", connections, waves)
        check(twin in seen,
              f"cell {mode} conns={connections} waves={waves} "
              f"has no {twin[0]} twin")
    check(any(mode == "routed" and waves for (mode, _, waves) in seen),
          "no routed wave cell: replication under load went unmeasured")

    # The headline gate: the fleet must answer exactly what one node
    # answers, before and after a replicated weight wave.
    differential = data["differential"]
    check(differential.get("queries", 0) > 0,
          "routed differential ran no queries")
    check(differential.get("mismatches", -1) == 0,
          f"routed differential: {differential.get('mismatches')} answers "
          f"differed from the in-process engine (must be bitwise identical)")

    # And a killed replica must rejoin the fleet epoch via catch-up.
    catch_up = data["catch_up"]
    check(catch_up.get("records", 0) > 0,
          "catch-up replayed no history records — the restarted replica "
          "was never behind, so the cell tested nothing")
    check(catch_up.get("recovered") is True,
          "restarted replica did not recover to the fleet epoch")
    check(catch_up.get("final_epoch", 0) > 0,
          "catch-up cell ended at epoch 0")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    def qps_of(mode, connections, waves):
        for cell in cells:
            if (cell["mode"] == mode and cell["connections"] == connections
                    and cell["waves"] == waves):
                return cell["qps"]
        return float("nan")

    overhead = qps_of("single", 1, False) / qps_of("routed", 1, False)
    print(f"OK: {path} passes schema and sanity checks "
          f"({len(cells)} cells, single/routed 1-conn qps ratio "
          f"{overhead:.2f}x, {differential['queries']} differential queries "
          f"with 0 mismatches, catch-up replayed {catch_up['records']} "
          f"record(s) to epoch {catch_up['final_epoch']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
