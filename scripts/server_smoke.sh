#!/usr/bin/env bash
# CI smoke test for the wire-protocol server: start fannr_server on the
# TEST preset, drive the fannr_client smoke workload (queries interleaved
# with UPDATE_WEIGHTS waves), then SIGTERM the server and assert a clean
# drain within the deadline.
#
# Usage: server_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR="${1:?usage: server_smoke.sh <build-dir>}"
SERVER="$BUILD_DIR/tools/fannr_server"
CLIENT="$BUILD_DIR/tools/fannr_client"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

"$SERVER" --preset TEST --port 0 --threads 2 --drain-deadline-ms 10000 \
  > "$LOG" 2>&1 &
SERVER_PID=$!

# The server prints "listening on HOST:PORT" once ready.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: server died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { cat "$LOG"; echo "FAIL: server never reported its port"; exit 1; }
echo "server up on port $PORT (pid $SERVER_PID)"

"$CLIENT" --port "$PORT" --ping 3
"$CLIENT" --port "$PORT" --smoke --preset TEST --queries 60 --update-waves 2

# Clean SIGTERM drain: the server must exit 0 (drain within deadline).
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
  SERVER_EXIT=0
else
  SERVER_EXIT=$?
fi
echo "--- server log ---"
cat "$LOG"
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after SIGTERM"
  exit 1
fi
grep -q "within deadline" "$LOG" || { echo "FAIL: drain not within deadline"; exit 1; }
echo "OK: server smoke passed (clean SIGTERM drain)"
