#!/usr/bin/env bash
# Reproduces the full evaluation: build, test, run every table/figure
# harness, and leave test_output.txt / bench_output.txt in the repo root.
#
# Defaults run the laptop-scale TEST preset; pass a dataset name to scale
# up (indexes are cached per dataset under .fannr_cache/):
#
#   scripts/reproduce.sh          # TEST (minutes)
#   scripts/reproduce.sh DE       # Delaware scale (longer; see EXPERIMENTS.md)

set -euo pipefail
cd "$(dirname "$0")/.."

export FANNR_DATASET="${1:-TEST}"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "done: test_output.txt + bench_output.txt (dataset ${FANNR_DATASET})"
