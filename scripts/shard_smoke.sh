#!/usr/bin/env bash
# CI smoke test for sharded serving with the real binaries: build a
# 2-shard plan, start two fannr_server shards (each with its own WAL)
# and a fannr_router in front, drive the fannr_client smoke workload
# through the router, then kill -9 one replica, advance the fleet epoch
# while it is down, restart it from its WAL, and assert the router's
# history catch-up brought it back to the live epoch (queries succeed
# and the router's catch-up counter moved).
#
# Usage: shard_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR="${1:?usage: shard_smoke.sh <build-dir>}"
SERVER="$BUILD_DIR/tools/fannr_server"
ROUTER="$BUILD_DIR/tools/fannr_router"
CLIENT="$BUILD_DIR/tools/fannr_client"
SHARDPLAN="$BUILD_DIR/tools/fannr_shardplan"

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# The server/router print "listening on HOST:PORT" once ready.
wait_for_port() { # log pid name -> port on stdout
  local log="$1" pid="$2" name="$3" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$log")"
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || {
      cat "$log" >&2
      echo "FAIL: $name died before listening" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -n "$port" ] || {
    cat "$log" >&2
    echo "FAIL: $name never reported its port" >&2
    exit 1
  }
  echo "$port"
}

"$SHARDPLAN" --preset TEST --shards 2 --out "$WORK/test.plan"

# Sets SHARD<id>_PID and SHARD<id>_PORT in the calling shell (no
# command substitution: a subshell would lose both).
start_shard() { # id port(0=ephemeral)
  local id="$1" port="$2"
  "$SERVER" --preset TEST --port "$port" --threads 2 \
    --shard-plan "$WORK/test.plan" --wal "$WORK/shard$id.wal" \
    > "$WORK/shard$id.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  eval "SHARD${id}_PID=$pid"
  local got
  got="$(wait_for_port "$WORK/shard$id.log" "$pid" "shard $id")"
  eval "SHARD${id}_PORT=$got"
}

start_shard 0 0
start_shard 1 0

"$ROUTER" --plan "$WORK/test.plan" \
  --shard "127.0.0.1:$SHARD0_PORT" --shard "127.0.0.1:$SHARD1_PORT" \
  --port 0 --wal "$WORK/router.wal" > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
ROUTER_PORT="$(wait_for_port "$WORK/router.log" "$ROUTER_PID" router)"
echo "fleet up: shards on $SHARD0_PORT/$SHARD1_PORT, router on $ROUTER_PORT"

# Phase 1: the standard smoke workload through the router — queries
# fan out across both shards, waves replicate to both.
"$CLIENT" --port "$ROUTER_PORT" --ping 3
"$CLIENT" --port "$ROUTER_PORT" --smoke --preset TEST \
  --queries 40 --update-waves 2

# Phase 2: kill -9 replica 1 (no drain, no goodbye), then advance the
# fleet epoch while it is down. The router replicates to shard 0 alone
# and journals the wave in its WAL.
kill -9 "$SHARD1_PID"
wait "$SHARD1_PID" 2>/dev/null || true
echo "killed shard 1 (pid $SHARD1_PID)"
"$CLIENT" --port "$ROUTER_PORT" --waves 1 --preset TEST --seed 77

# Phase 3: restart the replica on its old port. Its own WAL replays the
# waves it lived through; the one it missed must come from the router's
# history (triggered by the next spanning fan-out).
start_shard 1 "$SHARD1_PORT"
grep -q "wal: replayed" "$WORK/shard1.log" || {
  cat "$WORK/shard1.log"
  echo "FAIL: restarted shard 1 did not replay its WAL"
  exit 1
}
"$CLIENT" --port "$ROUTER_PORT" --smoke --preset TEST \
  --queries 20 --update-waves 0 | tee "$WORK/phase3.log"
grep -q "final epoch 3" "$WORK/phase3.log" || {
  echo "FAIL: post-restart queries not at the live epoch (want 3)"
  exit 1
}
"$CLIENT" --port "$ROUTER_PORT" --stats > "$WORK/stats.json"
grep -q '"router.catch_up.records": [1-9]' "$WORK/stats.json" || {
  cat "$WORK/stats.json"
  echo "FAIL: router replayed no catch-up records for the restarted replica"
  exit 1
}
echo "replica rejoined via WAL catch-up"

# Clean shutdown: router via SHUTDOWN frame, shards via SIGTERM; every
# process must exit 0 (shards: drain within deadline).
"$CLIENT" --port "$ROUTER_PORT" --shutdown
wait "$ROUTER_PID" || { echo "FAIL: router exited nonzero"; exit 1; }
for id in 0 1; do
  pid_var="SHARD${id}_PID"
  kill -TERM "${!pid_var}"
  wait "${!pid_var}" || {
    cat "$WORK/shard$id.log"
    echo "FAIL: shard $id exited nonzero after SIGTERM"
    exit 1
  }
  grep -q "within deadline" "$WORK/shard$id.log" || {
    echo "FAIL: shard $id drain not within deadline"
    exit 1
  }
done
echo "OK: shard smoke passed (fan-out, replication, kill -9 + WAL catch-up)"
