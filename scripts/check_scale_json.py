#!/usr/bin/env python3
"""Validates BENCH_scale.json: schema plus the scale-gate invariants.

CI runs this after the scale smoke (10^4 and 10^5 cells); the committed
artifact additionally carries the 10^6 cell from the nightly/local run.
The hard requirements:

  * every cell's parallel DIMACS parse produced the identical graph
    (fingerprint equality, computed by the bench itself), and every
    cell's GD answers on the mmap-loaded graph are bitwise identical to
    the in-memory ones at 1 and 8 threads;
  * the v3 mmap *graph* load beats the v2 stream load by >= 2x at 10^5
    vertices and up. The graph bar stays modest on purpose: LoadMmap
    keeps the O(V+E) structural-safety scan, so its win over a bulk
    vector read is bounded. Below 10^5 the ratio is noise (both loads
    are sub-millisecond) and is only required to be finite and positive;
  * the mmap *index* load — the case the v3 format exists for, since the
    v2 G-tree stream load deserializes per-node matrices — beats v2 by
    >= 10x wherever the index was built at >= 10^5 vertices, and the
    largest cell in the file must have built it (CI's default gate is
    150k, so the 10^5 smoke cell carries the bar there; the committed
    artifact carries it at 10^6). Answers through the mmap-loaded index
    must be bitwise identical to the built-in-memory index at 1 and 8
    threads.

Usage: check_scale_json.py [path-to-BENCH_scale.json]
"""

import json
import math
import sys

REQUIRED_CELL = [
    "target_vertices",
    "num_vertices",
    "num_edges",
    "gen_ms",
    "parse_seq_ms",
    "parse_par_ms",
    "parse_speedup",
    "parallel_load_identical",
    "graph",
    "gtree",
    "query_mean_ms_t1",
    "query_mean_ms_t8",
    "query_identical",
]
REQUIRED_GRAPH = [
    "v2_bytes",
    "v3_bytes",
    "v2_save_ms",
    "v3_save_ms",
    "v2_load_ms",
    "v3_mmap_load_ms",
    "mmap_speedup",
]

REQUIRED_GTREE = [
    "leaf_capacity",
    "build_ms",
    "v2_bytes",
    "v3_bytes",
    "v2_load_ms",
    "v3_mmap_load_ms",
    "mmap_speedup",
    "query_mean_ms_t1",
    "query_mean_ms_t8",
    "query_identical",
]

# |V| thresholds for the graph mmap-load speedup bar.
SPEEDUP_BARS = [
    (100_000, 2.0),
]

# The index bar: wherever the G-tree was built at this size or above,
# its mmap load must beat the v2 stream load by this much.
INDEX_BAR_MIN_V = 100_000
INDEX_BAR = 10.0

_errors = []


def check(condition, message):
    if not condition:
        _errors.append(message)


def finite_positive(value):
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def required_speedup(num_vertices):
    for threshold, bar in SPEEDUP_BARS:
        if num_vertices >= threshold:
            return bar
    return None


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_scale.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {path}: {e}", file=sys.stderr)
        return 1

    cells = data.get("cells")
    check(isinstance(cells, list) and len(cells) > 0,
          "cells must be a non-empty array")
    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1

    for cell in cells:
        for key in REQUIRED_CELL:
            check(key in cell,
                  f"cell |V|={cell.get('num_vertices', '?')}: "
                  f"missing key '{key}'")
        if _errors:
            break
        label = f"cell |V|={cell['num_vertices']}"
        for key in REQUIRED_GRAPH:
            check(key in cell["graph"], f"{label}: graph missing key '{key}'")
        if _errors:
            break

        check(cell["num_vertices"] > 0, f"{label}: empty graph")
        check(cell["parallel_load_identical"] is True,
              f"{label}: parallel DIMACS parse produced a DIFFERENT graph")
        check(cell["query_identical"] is True,
              f"{label}: answers on the mmap-loaded graph are not bitwise "
              f"identical to the in-memory ones")
        for key in ("gen_ms", "parse_seq_ms", "parse_par_ms"):
            check(finite_positive(cell[key]),
                  f"{label}: {key} must be positive and finite")

        graph = cell["graph"]
        check(graph["v2_bytes"] > 0 and graph["v3_bytes"] > 0,
              f"{label}: cache files are empty")
        check(finite_positive(graph["v2_load_ms"]) and
              finite_positive(graph["v3_mmap_load_ms"]),
              f"{label}: load timings must be positive and finite")
        check(finite_positive(graph["mmap_speedup"]),
              f"{label}: mmap_speedup must be positive and finite")
        bar = required_speedup(cell["num_vertices"])
        if bar is not None and finite_positive(graph["mmap_speedup"]):
            check(graph["mmap_speedup"] >= bar,
                  f"{label}: mmap load is only "
                  f"{graph['mmap_speedup']:.1f}x faster than the v2 stream "
                  f"load; the bar at this size is {bar}x")

        gtree = cell["gtree"]
        if gtree.get("built"):
            for key in REQUIRED_GTREE:
                check(key in gtree, f"{label}: gtree missing key '{key}'")
            check(finite_positive(gtree.get("mmap_speedup", 0)),
                  f"{label}: gtree mmap_speedup must be positive")
            check(gtree.get("v3_bytes", 0) > 0,
                  f"{label}: gtree v3 file is empty")
            check(gtree.get("query_identical") is True,
                  f"{label}: answers on the mmap-loaded G-tree are not "
                  f"bitwise identical to the built-in-memory index")
            if cell["num_vertices"] >= INDEX_BAR_MIN_V and finite_positive(
                    gtree.get("mmap_speedup", 0)):
                check(gtree["mmap_speedup"] >= INDEX_BAR,
                      f"{label}: index mmap load is only "
                      f"{gtree['mmap_speedup']:.1f}x faster than the v2 "
                      f"stream load; the index bar is {INDEX_BAR}x")

    if not _errors:
        largest = max(cells, key=lambda c: c["num_vertices"])
        check(largest["gtree"].get("built") is True,
              f"the largest cell (|V|={largest['num_vertices']}) must build "
              f"the G-tree so the index bar has something to measure")

    if _errors:
        print("FAIL:\n  " + "\n  ".join(_errors), file=sys.stderr)
        return 1
    sizes = ", ".join(str(c["num_vertices"]) for c in cells)
    print(f"OK: {path} passes the scale gate ({len(cells)} cells: {sizes})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
