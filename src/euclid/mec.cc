#include "euclid/mec.h"

#include <algorithm>
#include <cmath>

namespace fannr {

namespace {

Circle FromTwo(const Point& a, const Point& b) {
  Circle c;
  c.center = Point{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
  c.radius = EuclideanDistance(a, b) / 2.0;
  return c;
}

// Circumcircle of three points (degenerate/collinear handled by falling
// back to the best two-point circle).
Circle FromThree(const Point& a, const Point& b, const Point& c) {
  const double bx = b.x - a.x, by = b.y - a.y;
  const double cx = c.x - a.x, cy = c.y - a.y;
  const double d = 2.0 * (bx * cy - by * cx);
  if (std::abs(d) < 1e-12) {
    Circle best = FromTwo(a, b);
    for (const Circle& candidate : {FromTwo(a, c), FromTwo(b, c)}) {
      if (candidate.radius > best.radius) best = candidate;
    }
    return best;
  }
  const double ux = (cy * (bx * bx + by * by) - by * (cx * cx + cy * cy)) / d;
  const double uy = (bx * (cx * cx + cy * cy) - cx * (bx * bx + by * by)) / d;
  Circle circle;
  circle.center = Point{a.x + ux, a.y + uy};
  circle.radius = std::sqrt(ux * ux + uy * uy);
  return circle;
}

}  // namespace

Circle MinimumEnclosingCircle(std::vector<Point> points) {
  if (points.empty()) return Circle{};
  // Deterministic shuffle-free variant: move-to-front on violation gives
  // the expected-linear behaviour on typical inputs; inputs here are
  // small (|Q| <= a few thousand).
  Circle circle{points[0], 0.0};
  for (size_t i = 1; i < points.size(); ++i) {
    if (circle.Contains(points[i])) continue;
    // points[i] lies on the boundary of the new circle.
    circle = Circle{points[i], 0.0};
    for (size_t j = 0; j < i; ++j) {
      if (circle.Contains(points[j])) continue;
      circle = FromTwo(points[i], points[j]);
      for (size_t l = 0; l < j; ++l) {
        if (circle.Contains(points[l])) continue;
        circle = FromThree(points[i], points[j], points[l]);
      }
    }
  }
  return circle;
}

}  // namespace fannr
