#include "euclid/euclid_fann.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "common/check.h"
#include "euclid/mec.h"
#include "spatial/rtree.h"

namespace fannr {

namespace {

// Flexible Euclidean aggregate of a concrete point: fold of the k
// smallest distances; also reports the chosen subset when `subset` is
// non-null.
double PointGphi(const Point& p, const std::vector<Point>& query, size_t k,
                 Aggregate aggregate, std::vector<uint32_t>* subset) {
  std::vector<uint32_t> order(query.size());
  std::iota(order.begin(), order.end(), 0u);
  auto closer = [&](uint32_t a, uint32_t b) {
    return EuclideanDistance(query[a], p) < EuclideanDistance(query[b], p);
  };
  if (k < order.size()) {
    std::nth_element(order.begin(), order.begin() + k, order.end(), closer);
    order.resize(k);
  }
  std::sort(order.begin(), order.end(), closer);
  double result = 0.0;
  for (uint32_t idx : order) {
    const double d = EuclideanDistance(query[idx], p);
    result = aggregate == Aggregate::kMax ? std::max(result, d)
                                          : result + d;
  }
  if (subset != nullptr) *subset = std::move(order);
  return result;
}

// Lower bound for an MBR: fold of the k smallest mindists.
double MbrGphi(const Mbr& box, const std::vector<Point>& query, size_t k,
               Aggregate aggregate) {
  std::vector<double> dists;
  dists.reserve(query.size());
  for (const Point& q : query) dists.push_back(MinDist(box, q));
  std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
  if (aggregate == Aggregate::kMax) return dists[k - 1];
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) total += dists[i];
  return total;
}

EuclidFannResult EvaluateCandidates(const std::vector<Point>& data,
                                    const std::vector<uint32_t>& candidates,
                                    const std::vector<Point>& query,
                                    size_t k, Aggregate aggregate) {
  EuclidFannResult best;
  double best_distance = std::numeric_limits<double>::infinity();
  for (uint32_t idx : candidates) {
    std::vector<uint32_t> subset;
    const double d = PointGphi(data[idx], query, k, aggregate, &subset);
    if (d < best_distance) {
      best_distance = d;
      best.best = idx;
      best.distance = d;
      best.subset = std::move(subset);
    }
  }
  return best;
}

}  // namespace

EuclidFannResult SolveEuclidFann(const std::vector<Point>& data,
                                 const std::vector<Point>& query,
                                 double phi, Aggregate aggregate) {
  FANNR_CHECK(!data.empty() && !query.empty());
  const size_t k = FlexK(phi, query.size());

  std::vector<RTree::Item> items;
  items.reserve(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) {
    items.push_back({data[i], i});
  }
  const RTree tree = RTree::BulkLoad(std::move(items));

  struct Entry {
    double bound;
    bool is_point;
    RTree::NodeId node;
    uint32_t index;
    bool operator>(const Entry& o) const { return bound > o.bound; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({MbrGphi(tree.NodeMbr(tree.Root()), query, k, aggregate),
             false, tree.Root(), 0});

  EuclidFannResult best;
  double best_distance = std::numeric_limits<double>::infinity();
  while (!heap.empty()) {
    const Entry top = heap.top();
    if (top.bound >= best_distance) break;
    heap.pop();
    if (top.is_point) {
      std::vector<uint32_t> subset;
      const double d =
          PointGphi(data[top.index], query, k, aggregate, &subset);
      if (d < best_distance) {
        best_distance = d;
        best.best = top.index;
        best.distance = d;
        best.subset = std::move(subset);
      }
    } else if (tree.IsLeaf(top.node)) {
      for (const RTree::Item& item : tree.Items(top.node)) {
        heap.push({PointGphi(item.point, query, k, aggregate, nullptr),
                   true, 0, item.id});
      }
    } else {
      for (const RTree::Child& child : tree.Children(top.node)) {
        heap.push({MbrGphi(child.mbr, query, k, aggregate), false,
                   child.node, 0});
      }
    }
  }
  return best;
}

EuclidFannResult SolveEuclidFannBrute(const std::vector<Point>& data,
                                      const std::vector<Point>& query,
                                      double phi, Aggregate aggregate) {
  FANNR_CHECK(!data.empty() && !query.empty());
  const size_t k = FlexK(phi, query.size());
  std::vector<uint32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0u);
  return EvaluateCandidates(data, all, query, k, aggregate);
}

EuclidFannResult SolveEuclidApxSum(const std::vector<Point>& data,
                                   const std::vector<Point>& query,
                                   double phi) {
  FANNR_CHECK(!data.empty() && !query.empty());
  const size_t k = FlexK(phi, query.size());

  std::vector<RTree::Item> items;
  items.reserve(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) {
    items.push_back({data[i], i});
  }
  const RTree tree = RTree::BulkLoad(std::move(items));

  std::vector<uint32_t> candidates;
  for (const Point& q : query) {
    auto nn = tree.NearestNeighbors(q);
    auto hit = nn.Next();
    FANNR_DCHECK(hit.has_value());
    if (std::find(candidates.begin(), candidates.end(), hit->item.id) ==
        candidates.end()) {
      candidates.push_back(hit->item.id);
    }
  }
  return EvaluateCandidates(data, candidates, query, k, Aggregate::kSum);
}

EuclidFannResult SolveEuclidMecMaxAnn(const std::vector<Point>& data,
                                      const std::vector<Point>& query) {
  FANNR_CHECK(!data.empty() && !query.empty());
  const Circle mec = MinimumEnclosingCircle(query);

  std::vector<RTree::Item> items;
  items.reserve(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) {
    items.push_back({data[i], i});
  }
  const RTree tree = RTree::BulkLoad(std::move(items));
  auto nn = tree.NearestNeighbors(mec.center);
  auto hit = nn.Next();
  FANNR_DCHECK(hit.has_value());
  return EvaluateCandidates(data, {hit->item.id}, query, query.size(),
                            Aggregate::kMax);
}

}  // namespace fannr
