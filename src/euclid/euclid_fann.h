// FANN in the Euclidean plane — the predecessor problem (Li et al.,
// SIGMOD'11 / VLDBJ'16) that the paper generalizes to road networks.
//
// Two roles in this repository:
//   1. comparator/baseline: the paper argues Euclidean techniques do not
//      transfer to road networks; the bench_euclid_vs_network experiment
//      quantifies how suboptimal the Euclidean answer is when costs are
//      network distances;
//   2. a complete, tested Euclidean FANN implementation in its own right
//      (exact best-first search over an R-tree, plus the NN-candidates
//      sum approximation and the minimum-enclosing-circle max-ANN
//      approximation from the original papers).
//
// Semantics mirror fann/: for a candidate p, the optimal flexible subset
// is the k = ceil(phi |Q|) Euclidean-nearest query points.

#ifndef FANNR_EUCLID_EUCLID_FANN_H_
#define FANNR_EUCLID_EUCLID_FANN_H_

#include <cstdint>
#include <vector>

#include "fann/aggregate.h"
#include "geo/point.h"

namespace fannr {

/// Euclidean FANN answer: index into the data vector, the flexible
/// aggregate distance, and the chosen subset (indices into the query
/// vector, nearest first). best == kNoEuclidAnswer when data is empty.
struct EuclidFannResult {
  static constexpr uint32_t kNoEuclidAnswer = 0xFFFFFFFFu;
  uint32_t best = kNoEuclidAnswer;
  double distance = 0.0;
  std::vector<uint32_t> subset;
};

/// Exact Euclidean FANN: best-first search over an R-tree on `data`,
/// keyed by the flexible Euclidean aggregate of entry MBRs (the same
/// Lemma 1 bound the road-network IER framework uses). Requires
/// non-empty data and query sets and phi in (0, 1].
EuclidFannResult SolveEuclidFann(const std::vector<Point>& data,
                                 const std::vector<Point>& query,
                                 double phi, Aggregate aggregate);

/// Exhaustive reference (for tests and small inputs).
EuclidFannResult SolveEuclidFannBrute(const std::vector<Point>& data,
                                      const std::vector<Point>& query,
                                      double phi, Aggregate aggregate);

/// Sum approximation (Li et al.): candidates = Euclidean NN in data of
/// each query point; exact evaluation over the candidates. 3-approximate
/// by the same triangle-inequality argument as the road-network APX-sum.
EuclidFannResult SolveEuclidApxSum(const std::vector<Point>& data,
                                   const std::vector<Point>& query,
                                   double phi);

/// Max-ANN approximation (phi = 1): the data point `a` nearest to the
/// center `c` of the minimum enclosing circle of `query` is within a
/// factor 2 of optimal: g(a) <= |a-c| + r, |a-c| <= |p*-c| <= d* (c lies
/// in conv(Q), and the distance to the farthest query point bounds the
/// distance to any point of the hull), and r <= d* (r is the best max
/// aggregate achievable by ANY point of the plane).
EuclidFannResult SolveEuclidMecMaxAnn(const std::vector<Point>& data,
                                      const std::vector<Point>& query);

}  // namespace fannr

#endif  // FANNR_EUCLID_EUCLID_FANN_H_
