// Minimum enclosing circle (Welzl's algorithm, expected linear time).
//
// Used by the Euclidean FANN module: Li et al.'s max-ANN approximation
// takes the data point nearest to the center of the minimum enclosing
// circle of Q, which is within a factor 2 of optimal.

#ifndef FANNR_EUCLID_MEC_H_
#define FANNR_EUCLID_MEC_H_

#include <vector>

#include "geo/point.h"

namespace fannr {

/// A circle (center + radius).
struct Circle {
  Point center;
  double radius = 0.0;

  /// True if `p` is inside or on the circle (with a small tolerance).
  bool Contains(const Point& p) const {
    return EuclideanDistance(center, p) <= radius * (1.0 + 1e-10) + 1e-12;
  }
};

/// Minimum enclosing circle of `points` (radius 0 circle at the point for
/// a single point; undefined center with radius 0 for an empty input).
/// Expected O(n) via Welzl's move-to-front algorithm.
Circle MinimumEnclosingCircle(std::vector<Point> points);

}  // namespace fannr

#endif  // FANNR_EUCLID_MEC_H_
