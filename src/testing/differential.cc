#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "engine/batch_engine.h"
#include "fann/apx_sum.h"
#include "fann/dispatch.h"
#include "fann/exact_max.h"
#include "fann/gd.h"
#include "fann/ier.h"
#include "fann/kfann.h"
#include "fann/naive.h"
#include "fann/rlist.h"
#include "testing/oracle.h"

namespace fannr::testing {

namespace {

// Distances within this relative tolerance are "the same value" for
// cross-engine comparisons (different engines may accumulate the same
// shortest path in opposite orders). Bitwise equality is still required
// wherever the computation path is identical.
bool ApproxEqual(Weight a, Weight b) {
  if (a == b) return true;  // covers +inf == +inf
  const Weight scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

size_t BinomialCapped(size_t n, size_t k, size_t cap) {
  k = std::min(k, n - k);
  size_t result = 1;
  for (size_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > cap) return cap + 1;
  }
  return result;
}

// Collects violation strings with a cap, so a totally broken solver
// does not flood the log.
class Report {
 public:
  explicit Report(size_t cap) : cap_(cap) {}

  void Add(const std::string& message) {
    if (violations_.size() < cap_) violations_.push_back(message);
    ++total_;
  }

  bool Failed() const { return total_ > 0; }

  std::vector<std::string> Take() && {
    if (total_ > violations_.size()) {
      std::ostringstream os;
      os << "... and " << (total_ - violations_.size())
         << " further violations suppressed";
      violations_.push_back(os.str());
    }
    return std::move(violations_);
  }

 private:
  size_t cap_;
  size_t total_ = 0;
  std::vector<std::string> violations_;
};

// Oracle state for one (scenario, aggregate) pair.
struct AggOracle {
  Aggregate aggregate;
  size_t k = 1;
  std::vector<OracleEntry> ranking;              // finite, (d, id) order
  std::unordered_map<VertexId, Weight> distance;  // every p, incl. inf
};

AggOracle BuildAggOracle(const Scenario& s,
                         const std::vector<std::vector<Weight>>& matrix,
                         Aggregate aggregate) {
  AggOracle oracle;
  oracle.aggregate = aggregate;
  oracle.k = FlexK(s.phi, s.q.size());
  for (size_t pi = 0; pi < s.p.size(); ++pi) {
    const Weight d = OracleGphi(matrix, pi, oracle.k, aggregate);
    oracle.distance[s.p[pi]] = d;
    if (d != kInfWeight) oracle.ranking.push_back({s.p[pi], d});
  }
  std::sort(oracle.ranking.begin(), oracle.ranking.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.vertex < b.vertex;
            });
  return oracle;
}

// Everything the per-aggregate checks share.
struct CheckContext {
  const Scenario& s;
  const Graph& graph;
  const IndexedVertexSet& p_set;
  const IndexedVertexSet& q_set;
  const std::vector<std::vector<Weight>>& matrix;  // matrix[qi][pi]
  const AggOracle& oracle;
  const FannQuery& query;
  Report& report;

  std::string Label(const std::string& what) const {
    return "[" + std::string(AggregateName(oracle.aggregate)) + "] " + what;
  }

  // Index of a vertex within P / Q member vectors (or npos).
  size_t PIndex(VertexId v) const { return p_set.IndexOf(v); }
  size_t QIndex(VertexId v) const { return q_set.IndexOf(v); }
};

// Checks the tie-aware rank agreement of `got_vertex` at rank `i`. A
// vertex mismatch is a violation when the SOLVER itself considers the
// two candidates tied — then the deterministic id order was violated —
// or when the oracle distances differ beyond tolerance (the ranking is
// plain wrong). The solver's view of the tie comes from its reported
// distances: `solver_got` for the entry under test, `solver_want` for
// the oracle's pick where the caller has it (k-lists usually contain
// both). When solver_want is unknown, the solver is deemed tied only if
// its value agrees bitwise with a bitwise oracle tie. Anything else in
// the sub-tolerance band is FP noise — the oracle folds q-side Dijkstra
// distances while engines may accumulate the same paths in another
// order, so last-ulp disagreement about an exact tie is expected.
void CheckRankVertex(const CheckContext& ctx, VertexId got_vertex,
                     Weight solver_got, const Weight* solver_want, size_t i,
                     const std::string& label,
                     bool want_ranked_earlier = false) {
  const OracleEntry& want = ctx.oracle.ranking[i];
  if (got_vertex == want.vertex) return;
  auto it = ctx.oracle.distance.find(got_vertex);
  std::ostringstream os;
  if (it == ctx.oracle.distance.end() || it->second == kInfWeight) {
    os << ctx.Label(label) << ": rank " << i << " vertex " << got_vertex
       << " is not a reachable data point";
    ctx.report.Add(os.str());
    return;
  }
  // When the solver already ranked the oracle's pick ABOVE this rank the
  // lists are merely shifted by a near-tie elsewhere — any true ordering
  // defect in the solver's list is caught by its own adjacent
  // equal-distance check. Only the tolerance comparison remains.
  const bool solver_tie =
      !want_ranked_earlier &&
      (solver_want != nullptr
           ? *solver_want == solver_got
           : it->second == want.distance && solver_got == want.distance);
  if (solver_tie && got_vertex > want.vertex) {
    os << ctx.Label(label) << ": rank " << i << " tie broken against "
       << "vertex id order: got " << got_vertex << ", want " << want.vertex
       << " (both d=" << want.distance << ")";
    ctx.report.Add(os.str());
  } else if (!ApproxEqual(it->second, want.distance)) {
    os << ctx.Label(label) << ": rank " << i << " vertex " << got_vertex
       << " (oracle d=" << it->second << ") != " << want.vertex
       << " (oracle d=" << want.distance << ")";
    ctx.report.Add(os.str());
  }
}

// Validates one reported flexible subset against the oracle distance
// matrix: k distinct members of Q, nearest-first, folding to `distance`.
void CheckSubset(const CheckContext& ctx, VertexId vertex,
                 const std::vector<VertexId>& subset, Weight distance,
                 const std::string& label, bool nearest_first = true) {
  std::ostringstream os;
  const size_t pi = ctx.PIndex(vertex);
  if (pi == IndexedVertexSet::kNotMember) {
    os << ctx.Label(label) << ": result vertex " << vertex << " not in P";
    ctx.report.Add(os.str());
    return;
  }
  if (subset.size() != ctx.oracle.k) {
    os << ctx.Label(label) << ": subset size " << subset.size()
       << " != k=" << ctx.oracle.k;
    ctx.report.Add(os.str());
    return;
  }
  std::unordered_set<VertexId> seen;
  std::vector<Weight> dists;
  dists.reserve(subset.size());
  for (VertexId member : subset) {
    const size_t qi = ctx.QIndex(member);
    if (qi == IndexedVertexSet::kNotMember) {
      os << ctx.Label(label) << ": subset member " << member << " not in Q";
      ctx.report.Add(os.str());
      return;
    }
    if (!seen.insert(member).second) {
      os << ctx.Label(label) << ": duplicate subset member " << member;
      ctx.report.Add(os.str());
      return;
    }
    dists.push_back(ctx.matrix[qi][pi]);
  }
  if (nearest_first) {
    for (size_t i = 1; i < dists.size(); ++i) {
      if (dists[i] + 1e-9 < dists[i - 1]) {
        os << ctx.Label(label) << ": subset not nearest-first at position "
           << i << " (" << dists[i - 1] << " then " << dists[i] << ")";
        ctx.report.Add(os.str());
        return;
      }
    }
  }
  std::sort(dists.begin(), dists.end());
  const Weight fold =
      FoldSorted(dists.data(), dists.size(), ctx.oracle.aggregate);
  if (!ApproxEqual(fold, distance)) {
    os << ctx.Label(label) << ": subset folds to " << fold
       << " but result distance is " << distance;
    ctx.report.Add(os.str());
  }
}

void CheckSingleResult(const CheckContext& ctx, const FannResult& result,
                       const std::string& label,
                       bool nearest_first_subset = true) {
  std::ostringstream os;
  if (ctx.oracle.ranking.empty()) {
    if (result.best != kInvalidVertex || result.distance != kInfWeight) {
      os << ctx.Label(label) << ": expected 'no answer', got vertex "
         << result.best << " d=" << result.distance;
      ctx.report.Add(os.str());
    }
    return;
  }
  if (result.best == kInvalidVertex) {
    os << ctx.Label(label) << ": no answer, oracle optimum is vertex "
       << ctx.oracle.ranking[0].vertex
       << " d=" << ctx.oracle.ranking[0].distance;
    ctx.report.Add(os.str());
    return;
  }
  if (!ApproxEqual(result.distance, ctx.oracle.ranking[0].distance)) {
    os << ctx.Label(label) << ": d*=" << result.distance
       << " != oracle optimum " << ctx.oracle.ranking[0].distance;
    ctx.report.Add(os.str());
  }
  CheckRankVertex(ctx, result.best, result.distance, nullptr, 0, label);
  CheckSubset(ctx, result.best, result.subset, result.distance, label,
              nearest_first_subset);
}

void CheckKList(const CheckContext& ctx,
                const std::vector<KFannEntry>& got,
                const std::string& label) {
  std::ostringstream os;
  const size_t expected =
      std::min(ctx.s.k_results, ctx.oracle.ranking.size());
  if (got.size() != expected) {
    os << ctx.Label(label) << ": returned " << got.size() << " entries, "
       << "expected min(k_results=" << ctx.s.k_results
       << ", reachable=" << ctx.oracle.ranking.size() << ") = " << expected;
    ctx.report.Add(os.str());
  }
  std::unordered_set<VertexId> seen;
  for (size_t i = 0; i < got.size(); ++i) {
    if (!seen.insert(got[i].vertex).second) {
      os.str("");
      os << ctx.Label(label) << ": duplicate vertex " << got[i].vertex
         << " in result list";
      ctx.report.Add(os.str());
    }
    if (i > 0) {
      if (got[i].distance < got[i - 1].distance) {
        os.str("");
        os << ctx.Label(label) << ": list not sorted at rank " << i;
        ctx.report.Add(os.str());
      } else if (got[i].distance == got[i - 1].distance &&
                 got[i].vertex < got[i - 1].vertex) {
        os.str("");
        os << ctx.Label(label) << ": equal-distance entries not in vertex "
           << "id order at rank " << i;
        ctx.report.Add(os.str());
      }
    }
    if (i < ctx.oracle.ranking.size()) {
      if (!ApproxEqual(got[i].distance, ctx.oracle.ranking[i].distance)) {
        os.str("");
        os << ctx.Label(label) << ": rank " << i << " distance "
           << got[i].distance << " != oracle "
           << ctx.oracle.ranking[i].distance;
        ctx.report.Add(os.str());
      }
      // The solver's own distance for the oracle's pick, when the pick
      // appears later in this list (it usually does on a tie swap).
      const Weight* solver_want = nullptr;
      bool want_ranked_earlier = false;
      for (size_t j = 0; j < got.size(); ++j) {
        if (got[j].vertex == ctx.oracle.ranking[i].vertex) {
          if (j < i) {
            want_ranked_earlier = true;
          } else {
            solver_want = &got[j].distance;
          }
          break;
        }
      }
      CheckRankVertex(ctx, got[i].vertex, got[i].distance, solver_want, i,
                      label, want_ranked_earlier);
    }
    CheckSubset(ctx, got[i].vertex, got[i].subset, got[i].distance, label);
  }
}

// Strict equality of two k-FANN result lists computed along identical
// numeric paths (same g_phi engine kind): vertices, bitwise distances
// and subsets must match exactly.
void CompareListsStrict(const CheckContext& ctx,
                        const std::vector<KFannEntry>& a,
                        const std::vector<KFannEntry>& b,
                        const std::string& label) {
  std::ostringstream os;
  if (a.size() != b.size()) {
    os << ctx.Label(label) << ": list sizes differ (" << a.size() << " vs "
       << b.size() << ")";
    ctx.report.Add(os.str());
    return;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].vertex != b[i].vertex || a[i].distance != b[i].distance) {
      os.str("");
      os << ctx.Label(label) << ": rank " << i << " differs: ("
         << a[i].vertex << ", " << a[i].distance << ") vs (" << b[i].vertex
         << ", " << b[i].distance << ")";
      ctx.report.Add(os.str());
      return;
    }
    if (a[i].subset != b[i].subset) {
      os.str("");
      os << ctx.Label(label) << ": rank " << i << " subsets differ";
      ctx.report.Add(os.str());
      return;
    }
  }
}

bool SameFannResult(const FannResult& a, const FannResult& b) {
  return a.best == b.best && a.distance == b.distance &&
         a.subset == b.subset && a.gphi_evaluations == b.gphi_evaluations;
}

// Per-(engine kind, aggregate) solver sweep.
void CheckWithEngine(const CheckContext& ctx, GphiKind kind,
                     const RTree* p_tree) {
  GphiResources resources;
  resources.graph = &ctx.graph;
  auto engine = MakeGphiEngine(kind, resources);
  const std::string tag = std::string(GphiKindName(kind)) + "/";

  const FannResult gd = SolveGd(ctx.query, *engine);
  CheckSingleResult(ctx, gd, tag + "GD");
  const FannResult rlist = SolveRList(ctx.query, *engine);
  CheckSingleResult(ctx, rlist, tag + "R-List");
  if (gd.best != rlist.best || gd.distance != rlist.distance) {
    ctx.report.Add(ctx.Label(tag + "GD vs R-List: answers differ"));
  }

  const auto kgd = SolveKGd(ctx.query, ctx.s.k_results, *engine);
  CheckKList(ctx, kgd, tag + "k-GD");
  const auto krlist = SolveKRList(ctx.query, ctx.s.k_results, *engine);
  CheckKList(ctx, krlist, tag + "k-R-List");
  CompareListsStrict(ctx, kgd, krlist, tag + "k-GD vs k-R-List");

  if (p_tree != nullptr) {
    const FannResult ier = SolveIer(ctx.query, *engine, *p_tree);
    CheckSingleResult(ctx, ier, tag + "IER-kNN");
    if (gd.best != ier.best || gd.distance != ier.distance) {
      ctx.report.Add(ctx.Label(tag + "GD vs IER-kNN: answers differ"));
    }
    const auto kier = SolveKIer(ctx.query, ctx.s.k_results, *engine, *p_tree);
    CheckKList(ctx, kier, tag + "k-IER");
    CompareListsStrict(ctx, kgd, kier, tag + "k-GD vs k-IER");
  }

  // k-FANN prefix consistency: top-1 equals the FANN_R answer, and the
  // k-list is a prefix of a longer k-list (same engine, bitwise).
  if (!ctx.oracle.ranking.empty()) {
    if (kgd.empty() || kgd[0].vertex != gd.best ||
        kgd[0].distance != gd.distance) {
      ctx.report.Add(
          ctx.Label(tag + "k-GD top-1 != GD answer (prefix property)"));
    }
  }
  if (ctx.s.k_results > 1) {
    const size_t k_small = std::max<size_t>(1, ctx.s.k_results / 2);
    const auto prefix = SolveKGd(ctx.query, k_small, *engine);
    std::vector<KFannEntry> head(
        kgd.begin(),
        kgd.begin() +
            std::min<size_t>(kgd.size(), std::min(k_small, prefix.size())));
    if (prefix.size() !=
        std::min(k_small, ctx.oracle.ranking.size())) {
      ctx.report.Add(ctx.Label(tag + "k-GD prefix run has wrong size"));
    } else {
      CompareListsStrict(ctx, prefix, head,
                         tag + "k-GD prefix vs head of full list");
    }
  }
}

void CheckAggregate(const CheckContext& ctx,
                    const DifferentialOptions& options,
                    const RTree* p_tree) {
  // Naive subset-enumeration oracle (bitwise-independent second oracle).
  if (BinomialCapped(ctx.s.q.size(), ctx.oracle.k,
                     options.naive_subset_limit) <=
      options.naive_subset_limit) {
    CheckSingleResult(ctx, SolveNaive(ctx.query), "Naive",
                      /*nearest_first_subset=*/false);
  }

  for (GphiKind kind : options.engine_kinds) {
    CheckWithEngine(ctx, kind, p_tree);
  }

  if (ctx.oracle.aggregate == Aggregate::kMax && !ctx.query.Weighted()) {
    CheckSingleResult(ctx, SolveExactMax(ctx.query), "Exact-max");
    const auto kexact = SolveKExactMax(ctx.query, ctx.s.k_results);
    CheckKList(ctx, kexact, "k-Exact-max");
    if (!ctx.oracle.ranking.empty()) {
      const FannResult single = SolveExactMax(ctx.query);
      if (kexact.empty() || kexact[0].vertex != single.best ||
          kexact[0].distance != single.distance) {
        ctx.report.Add(
            ctx.Label("k-Exact-max top-1 != Exact-max answer"));
      }
    }
  }

  if (ctx.oracle.aggregate == Aggregate::kSum && !ctx.query.Weighted()) {
    GphiResources resources;
    resources.graph = &ctx.graph;
    auto engine = MakeGphiEngine(options.engine_kinds.empty()
                                     ? GphiKind::kIne
                                     : options.engine_kinds.front(),
                                 resources);
    const FannResult apx = SolveApxSum(ctx.query, *engine);
    std::ostringstream os;
    if (ctx.oracle.ranking.empty()) {
      if (apx.best != kInvalidVertex) {
        os << ctx.Label("APX-sum: answer on an instance with no reachable "
                        "candidate");
        ctx.report.Add(os.str());
      }
    } else {
      const Weight optimal = ctx.oracle.ranking[0].distance;
      if (apx.best == kInvalidVertex) {
        ctx.report.Add(ctx.Label("APX-sum: no answer, oracle has one"));
      } else {
        // Paper bound: <= 3x optimal, <= 2x when Q subset of P.
        bool q_in_p = true;
        for (VertexId v : ctx.s.q) q_in_p = q_in_p && ctx.p_set.Contains(v);
        const double bound = q_in_p ? 2.0 : 3.0;
        const Weight slack = 1e-9 * std::max<Weight>(1.0, optimal);
        if (apx.distance + slack < optimal) {
          os << ctx.Label("APX-sum: distance below optimum (") << apx.distance
             << " < " << optimal << ")";
          ctx.report.Add(os.str());
        } else if (apx.distance > bound * optimal + slack) {
          os << ctx.Label("APX-sum: approximation bound violated: ")
             << apx.distance << " > " << bound << " * " << optimal;
          ctx.report.Add(os.str());
        }
        CheckSubset(ctx, apx.best, apx.subset, apx.distance, "APX-sum");
      }
    }
  }

  if (options.check_invariants && !options.engine_kinds.empty()) {
    GphiResources resources;
    resources.graph = &ctx.graph;
    auto engine = MakeGphiEngine(options.engine_kinds.front(), resources);

    // phi-monotonicity of d*: nondecreasing in phi.
    std::vector<double> phis = {1.0 / static_cast<double>(ctx.s.q.size()),
                                0.5, ctx.s.phi, 1.0};
    std::sort(phis.begin(), phis.end());
    phis.erase(std::unique(phis.begin(), phis.end()), phis.end());
    Weight prev = -kInfWeight;
    double prev_phi = 0.0;
    for (double phi : phis) {
      if (!(phi > 0.0) || phi > 1.0) continue;
      FannQuery query = ctx.query;
      query.phi = phi;
      const Weight d = SolveGd(query, *engine).distance;
      if (d + 1e-9 * std::max<Weight>(1.0, std::fabs(prev)) < prev) {
        std::ostringstream os;
        os << ctx.Label("phi-monotonicity violated: d*(") << prev_phi
           << ")=" << prev << " > d*(" << phi << ")=" << d;
        ctx.report.Add(os.str());
      }
      prev = d;
      prev_phi = phi;
    }

    // Permutation invariance: reversing P and rotating Q must not change
    // any answer (deterministic tie-breaking is order-free).
    std::vector<VertexId> p_perm(ctx.s.p.rbegin(), ctx.s.p.rend());
    std::vector<VertexId> q_perm = ctx.s.q;
    if (q_perm.size() > 1) {
      std::rotate(q_perm.begin(), q_perm.begin() + 1, q_perm.end());
    }
    IndexedVertexSet p_set(ctx.graph.NumVertices(), p_perm);
    IndexedVertexSet q_set(ctx.graph.NumVertices(), q_perm);
    FannQuery permuted = ctx.query;
    permuted.data_points = &p_set;
    permuted.query_points = &q_set;
    std::vector<double> w_perm;
    if (ctx.query.Weighted()) {
      // Weights follow their query points through the rotation.
      w_perm = *ctx.query.weights;
      if (w_perm.size() > 1) {
        std::rotate(w_perm.begin(), w_perm.begin() + 1, w_perm.end());
      }
      permuted.weights = &w_perm;
    }
    const auto base = SolveKGd(ctx.query, ctx.s.k_results, *engine);
    const auto perm = SolveKGd(permuted, ctx.s.k_results, *engine);
    CompareListsStrict(ctx, base, perm,
                       "k-GD permutation invariance (P reversed, Q rotated)");
    const FannResult rl_base = SolveRList(ctx.query, *engine);
    const FannResult rl_perm = SolveRList(permuted, *engine);
    if (rl_base.best != rl_perm.best ||
        rl_base.distance != rl_perm.distance) {
      ctx.report.Add(ctx.Label("R-List permutation invariance violated"));
    }

    // Rerun invariance: same inputs, same process — identical output.
    const auto rerun = SolveKRList(ctx.query, ctx.s.k_results, *engine);
    const auto rerun2 = SolveKRList(ctx.query, ctx.s.k_results, *engine);
    CompareListsStrict(ctx, rerun, rerun2, "k-R-List rerun invariance");
  }
}

}  // namespace

std::vector<std::string> RunDifferentialChecks(
    const Scenario& scenario, const DifferentialOptions& options) {
  FANNR_CHECK(scenario.graph != nullptr);
  FANNR_CHECK(!scenario.p.empty() && !scenario.q.empty());
  const Graph& graph = *scenario.graph;
  Report report(options.max_violations);

  IndexedVertexSet p_set(graph.NumVertices(), scenario.p);
  IndexedVertexSet q_set(graph.NumVertices(), scenario.q);
  auto matrix = OracleDistanceMatrix(graph, scenario.p, scenario.q);

  // Weighted scenarios: scale the oracle matrix to w_i * d(q_i, p) up
  // front. Every downstream check (oracle ranking, subset folds, rank
  // ties) then audits exactly the quantity the weighted solvers
  // compute — same doubles, same multiplication, bitwise-comparable.
  const bool weighted = !scenario.weights.empty();
  FANNR_CHECK(!weighted || scenario.weights.size() == scenario.q.size());
  if (weighted) {
    for (size_t qi = 0; qi < matrix.size(); ++qi) {
      for (Weight& d : matrix[qi]) {
        if (d != kInfWeight) d *= scenario.weights[qi];
      }
    }
  }

  const bool geometric_ok =
      graph.HasCoordinates() && graph.EuclideanConsistent();
  std::optional<RTree> p_tree;
  if (geometric_ok) p_tree.emplace(BuildDataPointRTree(graph, p_set));

  std::vector<GphiKind> kinds;
  for (GphiKind kind : options.engine_kinds) {
    if (kind == GphiKind::kAStar && !geometric_ok) continue;
    // Weighted queries only run on engines whose BindWeights accepts —
    // the early-terminating kNN engines (INE, G-tree, IER) refuse.
    if (weighted && !GphiKindSupportsWeights(kind)) continue;
    kinds.push_back(kind);
  }
  DifferentialOptions effective = options;
  effective.engine_kinds = kinds;

  std::vector<Aggregate> aggregates;
  if (scenario.aggregates != AggregateMode::kSumOnly) {
    aggregates.push_back(Aggregate::kMax);
  }
  if (scenario.aggregates != AggregateMode::kMaxOnly) {
    aggregates.push_back(Aggregate::kSum);
  }

  std::vector<FannrQuery> batch_jobs;
  std::vector<const AggOracle*> batch_oracles;
  std::vector<AggOracle> oracles;
  oracles.reserve(aggregates.size());

  for (Aggregate aggregate : aggregates) {
    oracles.push_back(BuildAggOracle(scenario, matrix, aggregate));
  }

  for (size_t ai = 0; ai < aggregates.size(); ++ai) {
    FannQuery query{&graph, &p_set, &q_set, scenario.phi, aggregates[ai]};
    if (weighted) query.weights = &scenario.weights;
    CheckContext ctx{scenario, graph,  p_set,      q_set,
                     matrix,   oracles[ai], query, report};
    CheckAggregate(ctx, effective,
                   geometric_ok && !weighted ? &p_tree.value() : nullptr);

    if (options.check_batch) {
      for (FannAlgorithm algorithm :
           {FannAlgorithm::kGd, FannAlgorithm::kRList, FannAlgorithm::kIer,
            FannAlgorithm::kExactMax, FannAlgorithm::kApxSum}) {
        if (!FannAlgorithmSupports(algorithm, aggregates[ai])) continue;
        if (algorithm == FannAlgorithm::kIer && !geometric_ok) continue;
        if (weighted && !FannAlgorithmSupportsWeights(algorithm)) continue;
        batch_jobs.push_back({query, algorithm});
        batch_oracles.push_back(&oracles[ai]);
      }
    }
  }

  // Batch engine: bitwise determinism across thread counts, answers
  // matching the oracle.
  if (options.check_batch && !batch_jobs.empty()) {
    GphiResources resources;
    resources.graph = &graph;
    BatchOptions single;
    single.num_threads = 1;
    BatchOptions multi;
    multi.num_threads = std::max<size_t>(2, options.batch_threads);
    std::vector<FannResult> seq =
        BatchQueryEngine(resources, single).Run(batch_jobs);
    std::vector<FannResult> par =
        BatchQueryEngine(resources, multi).Run(batch_jobs);
    for (size_t i = 0; i < batch_jobs.size(); ++i) {
      const std::string name(FannAlgorithmName(batch_jobs[i].algorithm));
      if (!SameFannResult(seq[i], par[i])) {
        report.Add("[batch/" + name +
                   "] results differ between 1 and " +
                   std::to_string(multi.num_threads) + " threads");
      }
      const AggOracle& oracle = *batch_oracles[i];
      const bool apx = batch_jobs[i].algorithm == FannAlgorithm::kApxSum;
      if (oracle.ranking.empty()) {
        if (seq[i].best != kInvalidVertex) {
          report.Add("[batch/" + name + "] answer on unreachable instance");
        }
      } else if (!apx &&
                 !ApproxEqual(seq[i].distance, oracle.ranking[0].distance)) {
        std::ostringstream os;
        os << "[batch/" << name << "] d*=" << seq[i].distance
           << " != oracle " << oracle.ranking[0].distance;
        report.Add(os.str());
      }
    }
  }

  return std::move(report).Take();
}

Scenario MinimizeScenario(const Scenario& scenario,
                          const DifferentialOptions& options,
                          size_t max_evaluations) {
  size_t evaluations = 0;
  auto fails = [&](const Scenario& candidate) {
    if (evaluations >= max_evaluations) return false;
    ++evaluations;
    return !RunDifferentialChecks(candidate, options).empty();
  };
  if (!fails(scenario)) return scenario;

  Scenario best = scenario;

  // Narrow the aggregate mode first: halves all later checker work.
  if (best.aggregates == AggregateMode::kBoth) {
    for (AggregateMode mode :
         {AggregateMode::kMaxOnly, AggregateMode::kSumOnly}) {
      Scenario candidate = best;
      candidate.aggregates = mode;
      if (fails(candidate)) {
        best = candidate;
        break;
      }
    }
  }

  // Dropping the weights keeps the repro simpler whenever the failure
  // is not actually weight-dependent.
  if (!best.weights.empty()) {
    Scenario candidate = best;
    candidate.weights.clear();
    if (fails(candidate)) best = std::move(candidate);
  }

  // Then shrink k_results.
  for (size_t k : {size_t{1}, size_t{2}, best.k_results / 2}) {
    if (k == 0 || k >= best.k_results) continue;
    Scenario candidate = best;
    candidate.k_results = k;
    if (fails(candidate)) {
      best = candidate;
      break;
    }
  }

  // Greedy member removal: chunks first, then singletons, until a fixed
  // point (or the evaluation budget runs out).
  bool changed = true;
  while (changed && evaluations < max_evaluations) {
    changed = false;
    for (std::vector<VertexId> Scenario::*member :
         {&Scenario::p, &Scenario::q}) {
      std::vector<VertexId>& items = best.*member;
      for (size_t chunk = std::max<size_t>(1, items.size() / 2); chunk >= 1;
           chunk /= 2) {
        for (size_t start = 0;
             start < (best.*member).size() && evaluations < max_evaluations;) {
          std::vector<VertexId>& current = best.*member;
          if (current.size() <= 1) break;
          const size_t len = std::min(chunk, current.size() - start);
          Scenario candidate = best;
          std::vector<VertexId>& cut = candidate.*member;
          cut.erase(cut.begin() + start, cut.begin() + start + len);
          if (member == &Scenario::q && !candidate.weights.empty()) {
            // Weights stay aligned with Q through every cut.
            candidate.weights.erase(candidate.weights.begin() + start,
                                    candidate.weights.begin() + start + len);
          }
          if (!cut.empty() && fails(candidate)) {
            best = std::move(candidate);
            changed = true;
          } else {
            start += len;
          }
        }
        if (chunk == 1) break;
      }
    }
  }

  best.note += " (minimized)";
  return best;
}

std::string DescribeScenario(const Scenario& scenario) {
  std::ostringstream os;
  os << "seed=" << scenario.seed;
  if (!scenario.note.empty()) os << " " << scenario.note;
  os << " |V|=" << (scenario.graph ? scenario.graph->NumVertices() : 0)
     << " |P|=" << scenario.p.size() << " |Q|=" << scenario.q.size()
     << " phi=" << scenario.phi << " k_results=" << scenario.k_results;
  if (!scenario.weights.empty()) os << " weighted";
  return os.str();
}

}  // namespace fannr::testing
