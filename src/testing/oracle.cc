#include "testing/oracle.h"

#include <algorithm>

#include "common/check.h"
#include "sp/dijkstra.h"

namespace fannr::testing {

std::vector<std::vector<Weight>> OracleDistanceMatrix(
    const Graph& graph, const std::vector<VertexId>& p,
    const std::vector<VertexId>& q) {
  std::vector<std::vector<Weight>> matrix(q.size());
  DijkstraSearch search(graph);
  for (size_t qi = 0; qi < q.size(); ++qi) {
    matrix[qi] = search.Distances(q[qi], p);
  }
  return matrix;
}

Weight OracleGphi(const std::vector<std::vector<Weight>>& matrix, size_t pi,
                  size_t k, Aggregate aggregate) {
  std::vector<Weight> dists;
  dists.reserve(matrix.size());
  for (const auto& row : matrix) dists.push_back(row[pi]);
  FANNR_CHECK(k > 0 && k <= dists.size());
  std::sort(dists.begin(), dists.end());
  if (dists[k - 1] == kInfWeight) return kInfWeight;
  return FoldSorted(dists.data(), k, aggregate);
}

std::vector<OracleEntry> OracleRanking(const Graph& graph,
                                       const std::vector<VertexId>& p,
                                       const std::vector<VertexId>& q,
                                       double phi, Aggregate aggregate) {
  const auto matrix = OracleDistanceMatrix(graph, p, q);
  const size_t k = FlexK(phi, q.size());
  std::vector<OracleEntry> ranking;
  ranking.reserve(p.size());
  for (size_t pi = 0; pi < p.size(); ++pi) {
    const Weight d = OracleGphi(matrix, pi, k, aggregate);
    if (d != kInfWeight) ranking.push_back({p[pi], d});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.vertex < b.vertex;
            });
  return ranking;
}

}  // namespace fannr::testing
