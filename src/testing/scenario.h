// Seeded scenario generation for differential testing of the FANN_R
// solvers (see src/testing/differential.h).
//
// A scenario is one fully materialized FANN_R instance: a road network
// plus the query ingredients (P, Q, phi, k_results). GenerateScenario
// derives everything deterministically from a single 64-bit seed and is
// biased toward the shapes that historically break aggregate-NN code:
// tie-heavy uniform grids, graphs with several connected components, Q
// overlapping P, phi at the rounding boundaries (1/|Q| and 1), and
// k_results larger than |P|.
//
// Scenarios serialize to a self-contained text format so that every
// fuzzer-found violation becomes a committed reproducer in tests/corpus/
// that replays without the generating seed or code version.

#ifndef FANNR_TESTING_SCENARIO_H_
#define FANNR_TESTING_SCENARIO_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fann/aggregate.h"
#include "graph/graph.h"

namespace fannr::testing {

/// Which aggregates a differential run should exercise.
enum class AggregateMode {
  kBoth,
  kMaxOnly,
  kSumOnly,
};

/// One differential-testing instance. Copyable (the graph is shared) so
/// the minimizer can cheaply explore shrunken variants.
struct Scenario {
  std::shared_ptr<const Graph> graph;
  std::vector<VertexId> p;  // data points, distinct
  std::vector<VertexId> q;  // query points, distinct (may overlap p)
  /// Optional per-query-point weights aligned with q (empty =
  /// unweighted): solvers select and fold w_i * d(p, q_i) instead of
  /// raw distances (the weighted FANN generalization).
  std::vector<double> weights;
  double phi = 0.5;
  size_t k_results = 1;
  AggregateMode aggregates = AggregateMode::kBoth;
  uint64_t seed = 0;  // provenance; 0 for handcrafted/loaded scenarios
  std::string note;   // human-readable description of the shape
};

/// Deterministically generates the scenario for `seed`.
Scenario GenerateScenario(uint64_t seed);

/// Serializes `scenario` in the self-contained text format (bitwise
/// round-trips weights and phi). Returns false on I/O failure.
bool WriteScenario(const Scenario& scenario, std::ostream& out);
bool WriteScenarioFile(const Scenario& scenario, const std::string& path);

/// Parses a scenario written by WriteScenario. Returns nullopt (with a
/// message in `error` when non-null) on malformed input.
std::optional<Scenario> ReadScenario(std::istream& in,
                                     std::string* error = nullptr);
std::optional<Scenario> ReadScenarioFile(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace fannr::testing

#endif  // FANNR_TESTING_SCENARIO_H_
