#include "testing/scenario.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generator.h"

namespace fannr::testing {

namespace {

// Appends every vertex and edge of `part` to `builder`, translating
// coordinates by (dx, dy). Returns the id offset the part's vertices got.
VertexId AppendComponent(GraphBuilder& builder, const Graph& part,
                         double dx, double dy) {
  const VertexId offset = static_cast<VertexId>(builder.NumVertices());
  for (VertexId v = 0; v < part.NumVertices(); ++v) {
    Point c = part.Coord(v);
    c.x += dx;
    c.y += dy;
    builder.AddVertex(c);
  }
  for (VertexId u = 0; u < part.NumVertices(); ++u) {
    for (const Arc& arc : part.Neighbors(u)) {
      if (u < arc.to) {
        builder.AddEdge(offset + u, offset + arc.to, arc.weight);
      }
    }
  }
  return offset;
}

double MaxX(const Graph& graph) {
  double max_x = 0.0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    max_x = std::max(max_x, graph.Coord(v).x);
  }
  return max_x;
}

// A perfectly regular grid: every edge weight is exactly `cell`, so
// aggregate distances are small exact multiples of it and distance ties
// are bitwise-equal — the shape that exposes tie-breaking bugs. Built
// directly (not via GenerateGridNetwork, which perturbs every weight by
// +1e-9 to keep generated weights strictly above the Euclidean bound —
// that perturbation would destroy the exact ties this shape exists for).
Graph MakeTieGrid(size_t rows, size_t cols, Rng&) {
  const double cell = 1000.0;
  GraphBuilder builder;
  auto id = [cols](size_t r, size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      builder.AddVertex({static_cast<double>(c) * cell,
                         static_cast<double>(r) * cell});
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1), cell);
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c), cell);
    }
  }
  return builder.Build();
}

Graph MakeJitteredGrid(size_t rows, size_t cols, Rng& rng) {
  GridNetworkOptions options;
  options.rows = rows;
  options.cols = cols;
  return GenerateGridNetwork(options, rng);
}

Graph MakeGeometric(size_t n, Rng& rng) {
  GeometricNetworkOptions options;
  options.num_vertices = n;
  options.extent = 10000.0;
  options.radius = options.extent * std::sqrt(2.5 / static_cast<double>(n));
  return GenerateGeometricNetwork(options, rng);
}

// Samples `count` distinct vertices; when `overlap_with` is non-null,
// roughly half of the sample is drawn from it first (duplicated P∩Q
// membership is a prime source of zero-distance ties).
std::vector<VertexId> SampleSet(size_t num_vertices, size_t count, Rng& rng,
                                const std::vector<VertexId>* overlap_with) {
  count = std::min(count, num_vertices);
  std::vector<VertexId> picked;
  std::vector<bool> used(num_vertices, false);
  if (overlap_with != nullptr && !overlap_with->empty()) {
    std::vector<VertexId> pool = *overlap_with;
    rng.Shuffle(pool);
    const size_t want = std::min(pool.size(), (count + 1) / 2);
    for (size_t i = 0; i < want; ++i) {
      if (!used[pool[i]]) {
        used[pool[i]] = true;
        picked.push_back(pool[i]);
      }
    }
  }
  while (picked.size() < count) {
    const VertexId v = static_cast<VertexId>(rng.NextIndex(num_vertices));
    if (!used[v]) {
      used[v] = true;
      picked.push_back(v);
    }
  }
  return picked;
}

}  // namespace

Scenario GenerateScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario scenario;
  scenario.seed = seed;

  // Graph shape. The disconnected variants are essential: they exercise
  // the solver paths where some query points cannot reach any data point.
  const int shape = static_cast<int>(rng.NextIndex(5));
  std::shared_ptr<Graph> graph;
  switch (shape) {
    case 0: {
      const size_t rows = 3 + rng.NextIndex(5);
      const size_t cols = 3 + rng.NextIndex(5);
      graph = std::make_shared<Graph>(MakeTieGrid(rows, cols, rng));
      scenario.note = "tie-grid";
      break;
    }
    case 1: {
      const size_t rows = 3 + rng.NextIndex(6);
      const size_t cols = 3 + rng.NextIndex(6);
      graph = std::make_shared<Graph>(MakeJitteredGrid(rows, cols, rng));
      scenario.note = "jittered-grid";
      break;
    }
    case 2: {
      const size_t n = 40 + rng.NextIndex(100);
      graph = std::make_shared<Graph>(MakeGeometric(n, rng));
      scenario.note = "geometric";
      break;
    }
    case 3: {
      // Two tie-grids, disjoint: maximal tie density plus disconnection.
      Graph a = MakeTieGrid(3 + rng.NextIndex(3), 3 + rng.NextIndex(3), rng);
      Graph b = MakeTieGrid(3 + rng.NextIndex(3), 3 + rng.NextIndex(3), rng);
      GraphBuilder builder;
      AppendComponent(builder, a, 0.0, 0.0);
      AppendComponent(builder, b, MaxX(a) + 50000.0, 0.0);
      graph = std::make_shared<Graph>(builder.Build());
      scenario.note = "disconnected-tie-grids";
      break;
    }
    default: {
      Graph a = MakeJitteredGrid(3 + rng.NextIndex(4), 3 + rng.NextIndex(4),
                                 rng);
      Graph b = MakeGeometric(30 + rng.NextIndex(40), rng);
      GraphBuilder builder;
      AppendComponent(builder, a, 0.0, 0.0);
      AppendComponent(builder, b, MaxX(a) + 80000.0, 0.0);
      graph = std::make_shared<Graph>(builder.Build());
      scenario.note = "disconnected-mixed";
      break;
    }
  }
  scenario.graph = graph;
  const size_t n = graph->NumVertices();

  // P and Q, with forced overlap half of the time.
  const size_t p_size = 1 + rng.NextIndex(std::min<size_t>(n, 30));
  scenario.p = SampleSet(n, p_size, rng, nullptr);
  const size_t q_size = 1 + rng.NextIndex(std::min<size_t>(n, 12));
  const bool overlap = rng.NextBool(0.5);
  scenario.q = SampleSet(n, q_size, rng, overlap ? &scenario.p : nullptr);

  // phi, biased to the rounding boundaries.
  const size_t m = scenario.q.size();
  switch (rng.NextIndex(5)) {
    case 0:
      scenario.phi = 1.0 / static_cast<double>(m);
      break;
    case 1:
      scenario.phi = 1.0;
      break;
    case 2:
      scenario.phi = 0.5;
      break;
    case 3:
      // Exactly representable multiples of 1/|Q| stress FlexK rounding.
      scenario.phi = static_cast<double>(1 + rng.NextIndex(m)) /
                     static_cast<double>(m);
      break;
    default:
      scenario.phi = std::min(1.0, rng.NextDouble(0.05, 1.0));
      break;
  }

  // k_results, including the k > |P| overflow case.
  switch (rng.NextIndex(4)) {
    case 0:
      scenario.k_results = 1;
      break;
    case 1:
      scenario.k_results = scenario.p.size() + 3;
      break;
    case 2:
      scenario.k_results = std::max<size_t>(1, scenario.p.size() / 2);
      break;
    default:
      scenario.k_results = 1 + rng.NextIndex(8);
      break;
  }

  // Per-query-point weights, a third of the time. The power-of-two
  // branch keeps every w_i * d product exact, so the tie structure the
  // grid shapes exist for survives weighting; the random branch
  // stresses the weighted folding order instead.
  if (rng.NextBool(1.0 / 3.0)) {
    const bool pow2 = rng.NextBool(0.5);
    scenario.weights.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      if (pow2) {
        constexpr double kPow2[] = {0.25, 0.5, 1.0, 2.0, 4.0};
        scenario.weights.push_back(kPow2[rng.NextIndex(5)]);
      } else {
        scenario.weights.push_back(rng.NextDouble(0.1, 5.0));
      }
    }
  }

  scenario.aggregates = AggregateMode::kBoth;
  return scenario;
}

bool WriteScenario(const Scenario& scenario, std::ostream& out) {
  FANNR_CHECK(scenario.graph != nullptr);
  const Graph& graph = *scenario.graph;
  char buf[96];
  out << "fannr-scenario 1\n";
  if (!scenario.note.empty()) out << "note " << scenario.note << "\n";
  out << "seed " << scenario.seed << "\n";
  out << "graph " << graph.NumVertices() << " " << graph.NumEdges() << " "
      << (graph.HasCoordinates() ? "coords" : "nocoords") << "\n";
  if (graph.HasCoordinates()) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      const Point& c = graph.Coord(v);
      std::snprintf(buf, sizeof(buf), "v %u %.17g %.17g\n", v, c.x, c.y);
      out << buf;
    }
  }
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& arc : graph.Neighbors(u)) {
      if (u < arc.to) {
        std::snprintf(buf, sizeof(buf), "e %u %u %.17g\n", u, arc.to,
                      arc.weight);
        out << buf;
      }
    }
  }
  out << "p " << scenario.p.size();
  for (VertexId v : scenario.p) out << " " << v;
  out << "\nq " << scenario.q.size();
  for (VertexId v : scenario.q) out << " " << v;
  out << "\n";
  if (!scenario.weights.empty()) {
    out << "weights " << scenario.weights.size();
    for (double w : scenario.weights) {
      std::snprintf(buf, sizeof(buf), " %.17g", w);
      out << buf;
    }
    out << "\n";
  }
  std::snprintf(buf, sizeof(buf), "phi %.17g\n", scenario.phi);
  out << buf;
  out << "aggregate "
      << (scenario.aggregates == AggregateMode::kBoth      ? "both"
          : scenario.aggregates == AggregateMode::kMaxOnly ? "max"
                                                           : "sum")
      << "\n";
  out << "k_results " << scenario.k_results << "\n";
  out << "end\n";
  return static_cast<bool>(out);
}

bool WriteScenarioFile(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path);
  return out && WriteScenario(scenario, out);
}

namespace {

std::optional<Scenario> Fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return std::nullopt;
}

}  // namespace

std::optional<Scenario> ReadScenario(std::istream& in, std::string* error) {
  std::string line;
  if (!std::getline(in, line) || line != "fannr-scenario 1") {
    return Fail(error, "missing 'fannr-scenario 1' header");
  }
  Scenario scenario;
  size_t num_vertices = 0;
  size_t num_edges = 0;
  bool has_coords = false;
  bool graph_seen = false;
  GraphBuilder builder;
  std::vector<std::pair<VertexId, Point>> coords;
  size_t edges_seen = 0;
  bool ended = false;
  std::string vertex_error;

  // Materializes the vertices once all `v` lines are in (at the first
  // edge, or before Build for edge-free graphs).
  auto ensure_vertices = [&]() {
    if (builder.NumVertices() != 0 || num_vertices == 0) return true;
    if (has_coords) {
      if (coords.size() != num_vertices) {
        vertex_error = "coordinate count != vertex count";
        return false;
      }
      std::sort(coords.begin(), coords.end(),
                [](const auto& a, const auto& b) {
                  return a.first < b.first;
                });
      for (size_t i = 0; i < coords.size(); ++i) {
        if (coords[i].first != i) {
          vertex_error = "non-dense vertex ids";
          return false;
        }
        builder.AddVertex(coords[i].second);
      }
    } else {
      builder.Resize(num_vertices);
    }
    return true;
  };

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "note") {
      std::getline(ls, scenario.note);
      if (!scenario.note.empty() && scenario.note.front() == ' ') {
        scenario.note.erase(scenario.note.begin());
      }
    } else if (tag == "seed") {
      ls >> scenario.seed;
    } else if (tag == "graph") {
      std::string coord_tag;
      if (!(ls >> num_vertices >> num_edges >> coord_tag)) {
        return Fail(error, "malformed graph line");
      }
      has_coords = coord_tag == "coords";
      graph_seen = true;
      coords.reserve(has_coords ? num_vertices : 0);
    } else if (tag == "v") {
      VertexId id;
      Point c;
      if (!(ls >> id >> c.x >> c.y) || id >= num_vertices) {
        return Fail(error, "malformed vertex line: " + line);
      }
      coords.push_back({id, c});
    } else if (tag == "e") {
      VertexId u, v;
      Weight w;
      if (!(ls >> u >> v >> w) || u >= num_vertices || v >= num_vertices ||
          !(w > 0.0)) {
        return Fail(error, "malformed edge line: " + line);
      }
      if (!ensure_vertices()) return Fail(error, vertex_error);
      builder.AddEdge(u, v, w);
      ++edges_seen;
    } else if (tag == "p" || tag == "q") {
      size_t count;
      if (!(ls >> count)) return Fail(error, "malformed set line: " + line);
      std::vector<VertexId>& set = tag == "p" ? scenario.p : scenario.q;
      set.resize(count);
      for (size_t i = 0; i < count; ++i) {
        if (!(ls >> set[i]) || set[i] >= num_vertices) {
          return Fail(error, "malformed set line: " + line);
        }
      }
    } else if (tag == "weights") {
      size_t count;
      if (!(ls >> count)) {
        return Fail(error, "malformed weights line: " + line);
      }
      scenario.weights.resize(count);
      for (size_t i = 0; i < count; ++i) {
        if (!(ls >> scenario.weights[i]) ||
            !std::isfinite(scenario.weights[i]) ||
            !(scenario.weights[i] > 0.0)) {
          return Fail(error, "malformed weights line: " + line);
        }
      }
    } else if (tag == "phi") {
      if (!(ls >> scenario.phi) || !(scenario.phi > 0.0) ||
          scenario.phi > 1.0) {
        return Fail(error, "phi out of (0, 1]");
      }
    } else if (tag == "aggregate") {
      std::string mode;
      ls >> mode;
      if (mode == "both") {
        scenario.aggregates = AggregateMode::kBoth;
      } else if (mode == "max") {
        scenario.aggregates = AggregateMode::kMaxOnly;
      } else if (mode == "sum") {
        scenario.aggregates = AggregateMode::kSumOnly;
      } else {
        return Fail(error, "unknown aggregate mode: " + mode);
      }
    } else if (tag == "k_results") {
      if (!(ls >> scenario.k_results) || scenario.k_results == 0) {
        return Fail(error, "malformed k_results line");
      }
    } else if (tag == "end") {
      ended = true;
      break;
    } else {
      return Fail(error, "unknown tag: " + tag);
    }
  }

  if (!graph_seen || !ended) return Fail(error, "truncated scenario");
  if (edges_seen != num_edges) return Fail(error, "edge count mismatch");
  if (scenario.p.empty() || scenario.q.empty()) {
    return Fail(error, "empty P or Q");
  }
  if (!scenario.weights.empty() &&
      scenario.weights.size() != scenario.q.size()) {
    return Fail(error, "weight count != |Q|");
  }
  if (!ensure_vertices()) return Fail(error, vertex_error);
  scenario.graph = std::make_shared<const Graph>(builder.Build());
  if (scenario.graph->NumVertices() != num_vertices) {
    return Fail(error, "vertex count mismatch after build");
  }
  return scenario;
}

std::optional<Scenario> ReadScenarioFile(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open " + path);
  return ReadScenario(in, error);
}

}  // namespace fannr::testing
