// Differential checking of the live-update path (dynamic/update.h).
//
// RunDynamicUpdateChecks takes a seeded scenario (src/testing/scenario.h)
// and drives it through several congestion waves: each wave scales a
// random subset of edge weights in place via UpdateBatch, then every
// solver path that could possibly serve a stale answer is compared
// against a fresh brute-force oracle computed on the post-update
// weights:
//
//   * the sequential index-free path (INE-backed GD);
//   * a CachedSsspEngine kept alive across waves with its shared
//     distance cache intact — proving epoch-stamped entries are
//     reclaimed, never returned (the cache-poisoning check);
//   * BatchQueryEngines at several thread counts, also kept alive
//     across waves, whose results must additionally be bitwise
//     identical to each other;
//   * an engine configured with an index-backed oracle (PHL) whose
//     index was built before the updates — it must diagnose the stale
//     index, fall back to index-free solving, annotate the traces, and
//     still return correct answers;
//   * a freshly rebuilt index after the final wave, which must be
//     diagnosed fresh and agree with the oracle again.
//
// Update waves are derived deterministically from the scenario seed, so
// a failing (seed, wave) pair reproduces from the seed alone — no update
// trace needs to be serialized. Violations come back as human-readable
// strings (empty = clean), mirroring RunDifferentialChecks.

#ifndef FANNR_TESTING_DYNAMIC_CHECK_H_
#define FANNR_TESTING_DYNAMIC_CHECK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "testing/scenario.h"

namespace fannr::testing {

struct DynamicCheckOptions {
  /// Congestion waves applied after the initial (epoch-0) round of
  /// checks. Each wave bumps the graph epoch exactly once.
  size_t num_waves = 3;

  /// Fraction of undirected edges each wave rescales, and the factor
  /// range (values < 1 model congestion clearing, > 1 congestion).
  double update_fraction = 0.35;
  double min_factor = 0.4;
  double max_factor = 2.5;

  /// Thread counts of the persistent batch engines; results must be
  /// bitwise identical across all of them after every wave.
  std::vector<size_t> batch_thread_counts = {1, 2, 8};

  /// Build a PHL index before the first wave and require the stale-index
  /// fallback (diagnosis, trace annotation, correct answers) afterwards.
  bool check_stale_index_fallback = true;

  /// Rebuild the index after the final wave and require it to be
  /// diagnosed fresh and agree with the oracle.
  bool check_rebuilt_index = true;

  /// Cap on emitted violation strings.
  size_t max_violations = 24;
};

/// Runs the update-interleaved checks on `scenario`; returns the
/// violations (empty = clean).
std::vector<std::string> RunDynamicUpdateChecks(
    const Scenario& scenario, const DynamicCheckOptions& options = {});

}  // namespace fannr::testing

#endif  // FANNR_TESTING_DYNAMIC_CHECK_H_
