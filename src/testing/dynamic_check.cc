#include "testing/dynamic_check.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "dynamic/update.h"
#include "engine/batch_engine.h"
#include "engine/cached_sssp.h"
#include "fann/dispatch.h"
#include "graph/builder.h"
#include "testing/oracle.h"

namespace fannr::testing {

namespace {

bool ApproxEqual(Weight a, Weight b) {
  if (a == b) return true;  // covers +inf == +inf
  const Weight scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

class Report {
 public:
  explicit Report(size_t cap) : cap_(cap) {}

  void Add(const std::string& message) {
    if (violations_.size() < cap_) violations_.push_back(message);
    ++total_;
  }

  std::vector<std::string> Take() && {
    if (total_ > violations_.size()) {
      std::ostringstream os;
      os << "... and " << (total_ - violations_.size())
         << " further violations suppressed";
      violations_.push_back(os.str());
    }
    return std::move(violations_);
  }

 private:
  size_t cap_;
  size_t total_ = 0;
  std::vector<std::string> violations_;
};

std::vector<Aggregate> AggregatesOf(const Scenario& s) {
  switch (s.aggregates) {
    case AggregateMode::kMaxOnly:
      return {Aggregate::kMax};
    case AggregateMode::kSumOnly:
      return {Aggregate::kSum};
    case AggregateMode::kBoth:
      break;
  }
  return {Aggregate::kMax, Aggregate::kSum};
}

// Tie-aware oracle agreement: the answer's distance must match the
// oracle optimum, and the answered vertex must be one of the candidates
// achieving it (fp-equal distances are legitimate alternative answers
// across engines; the strict (d, id) order is enforced separately where
// computation paths are identical).
void CheckAgainstOracle(const std::vector<OracleEntry>& ranking,
                        const FannResult& result, const std::string& label,
                        Report& report) {
  std::ostringstream os;
  if (result.status != QueryStatus::kOk) {
    os << label << ": status not ok (" << result.error << ")";
    report.Add(os.str());
    return;
  }
  if (ranking.empty()) {
    if (result.best != kInvalidVertex || result.distance != kInfWeight) {
      os << label << ": oracle says no answer, solver returned v"
         << result.best << " at d=" << result.distance;
      report.Add(os.str());
    }
    return;
  }
  if (result.best == kInvalidVertex) {
    os << label << ": solver returned no answer, oracle optimum is v"
       << ranking.front().vertex << " at d=" << ranking.front().distance;
    report.Add(os.str());
    return;
  }
  if (!ApproxEqual(result.distance, ranking.front().distance)) {
    os << label << ": distance " << result.distance
       << " != oracle optimum " << ranking.front().distance
       << " (stale data served?)";
    report.Add(os.str());
    return;
  }
  const bool best_is_optimal = std::any_of(
      ranking.begin(), ranking.end(), [&](const OracleEntry& e) {
        return e.vertex == result.best &&
               ApproxEqual(e.distance, ranking.front().distance);
      });
  if (!best_is_optimal) {
    os << label << ": answered v" << result.best
       << " which does not achieve the oracle optimum d="
       << ranking.front().distance;
    report.Add(os.str());
  }
}

bool BitwiseEqual(const FannResult& a, const FannResult& b) {
  return a.status == b.status && a.best == b.best &&
         a.distance == b.distance && a.subset == b.subset;
}

}  // namespace

std::vector<std::string> RunDynamicUpdateChecks(
    const Scenario& scenario, const DynamicCheckOptions& options) {
  Report report(options.max_violations);
  Graph graph = GraphBuilder::FromGraph(*scenario.graph).Build();
  if (graph.NumEdges() == 0) return {};  // nothing dynamic to exercise

  const IndexedVertexSet p_set(graph.NumVertices(), scenario.p);
  const IndexedVertexSet q_set(graph.NumVertices(), scenario.q);
  const std::vector<Aggregate> aggregates = AggregatesOf(scenario);

  GphiResources resources;
  resources.graph = &graph;

  // Index built at the initial epoch for the stale-fallback checks.
  std::optional<HubLabels> epoch0_labels;
  GphiResources phl_resources;
  std::unique_ptr<BatchQueryEngine> phl_engine;
  if (options.check_stale_index_fallback) {
    epoch0_labels = HubLabels::Build(graph);
    if (epoch0_labels.has_value()) {
      phl_resources.graph = &graph;
      phl_resources.labels = &*epoch0_labels;
      BatchOptions phl_options;
      phl_options.num_threads = 2;
      phl_options.gphi_kind = GphiKind::kPhl;
      phl_options.enable_metrics = true;  // the fallback trace annotation
      phl_engine =
          std::make_unique<BatchQueryEngine>(phl_resources, phl_options);
    }
  }

  // A cached engine and its shared cache survive every wave: the
  // cache-poisoning check. Entries inserted at epoch e must never serve
  // a query at epoch e' != e.
  auto cache = std::make_shared<SourceDistanceCache>(/*capacity=*/128,
                                                     /*num_shards=*/4);
  CachedSsspEngine cached_engine(graph, cache);

  // Persistent batch engines (cached-SSSP oracle, shared cache each).
  std::vector<std::unique_ptr<BatchQueryEngine>> batch_engines;
  for (size_t threads : options.batch_thread_counts) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.cache_capacity = 128;
    batch_engines.push_back(
        std::make_unique<BatchQueryEngine>(resources, bo));
  }

  Rng rng(scenario.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

  for (size_t wave = 0; wave <= options.num_waves; ++wave) {
    const std::string wave_label = "wave " + std::to_string(wave);
    if (wave > 0) {
      dynamic::UpdateBatch batch = dynamic::MakeCongestionWave(
          graph, options.update_fraction, options.min_factor,
          options.max_factor, rng);
      if (batch.empty()) {
        // Tiny graphs can dodge the sampling; force one real update so
        // every wave bumps the epoch.
        for (VertexId u = 0; u < graph.NumVertices() && batch.empty(); ++u) {
          for (const Arc& a : graph.Neighbors(u)) {
            batch.ScaleWeight(graph, u, a.to, 1.5);
            break;
          }
        }
      }
      const bool cache_was_populated = cache->size() > 0;
      const auto cache_stats_before = cache->stats();
      const dynamic::ApplyResult applied = batch.Apply(graph);
      if (applied.applied == 0) {
        report.Add(wave_label + ": congestion wave applied no updates");
        continue;
      }
      if (applied.new_epoch != applied.old_epoch + 1) {
        std::ostringstream os;
        os << wave_label << ": expected one epoch bump, got "
           << applied.old_epoch << " -> " << applied.new_epoch;
        report.Add(os.str());
      }

      // Cache-poisoning regression: entries from the previous epoch must
      // be reclaimed (not served) on the first post-update solves below.
      if (cache_was_populated) {
        FannQuery probe{&graph, &p_set, &q_set, scenario.phi,
                        aggregates.front()};
        (void)SolveWith(FannAlgorithm::kGd, probe, cached_engine);
        const auto cache_stats_after = cache->stats();
        if (cache_stats_after.epoch_evictions <=
            cache_stats_before.epoch_evictions) {
          report.Add(wave_label +
                     ": cache held entries across the epoch bump but "
                     "reported no epoch evictions");
        }
      }
    }

    for (Aggregate aggregate : aggregates) {
      const std::string label =
          wave_label + " [" + std::string(AggregateName(aggregate)) + "]";
      const auto ranking = OracleRanking(graph, scenario.p, scenario.q,
                                         scenario.phi, aggregate);
      FannQuery query{&graph, &p_set, &q_set, scenario.phi, aggregate};

      // Sequential index-free reference.
      auto ine = MakeGphiEngine(GphiKind::kIne, resources);
      const FannResult ine_result =
          SolveWith(FannAlgorithm::kGd, query, *ine);
      CheckAgainstOracle(ranking, ine_result, label + " GD/INE", report);

      // Persistent cached engine: correct against the post-update oracle
      // even though its cache saw every earlier epoch.
      const FannResult cached_result =
          SolveWith(FannAlgorithm::kGd, query, cached_engine);
      CheckAgainstOracle(ranking, cached_result, label + " GD/Cached-SSSP",
                         report);

      // Persistent batch engines: correct, and bitwise identical across
      // thread counts (same Cached-SSSP computation path everywhere).
      std::vector<FannrQuery> jobs;
      jobs.push_back({query, FannAlgorithm::kGd});
      if (FannAlgorithmSupports(FannAlgorithm::kRList, aggregate)) {
        jobs.push_back({query, FannAlgorithm::kRList});
      }
      std::vector<std::vector<FannResult>> per_engine;
      for (size_t e = 0; e < batch_engines.size(); ++e) {
        per_engine.push_back(batch_engines[e]->Run(jobs));
        const auto& results = per_engine.back();
        for (size_t j = 0; j < results.size(); ++j) {
          CheckAgainstOracle(
              ranking, results[j],
              label + " batch T=" +
                  std::to_string(options.batch_thread_counts[e]) + " " +
                  std::string(FannAlgorithmName(jobs[j].algorithm)),
              report);
        }
        if (e > 0) {
          for (size_t j = 0; j < results.size(); ++j) {
            if (!BitwiseEqual(per_engine[0][j], results[j])) {
              std::ostringstream os;
              os << label << " batch "
                 << FannAlgorithmName(jobs[j].algorithm) << ": T="
                 << options.batch_thread_counts[e]
                 << " result differs bitwise from T="
                 << options.batch_thread_counts[0];
              report.Add(os.str());
            }
          }
        }
      }

      // Stale-index fallback: the PHL-configured engine must diagnose
      // its epoch-0 index, solve index-free, and stay correct.
      if (phl_engine != nullptr) {
        const std::string stale_reason =
            StaleIndexReason(GphiKind::kPhl, phl_resources);
        if (wave == 0 && !stale_reason.empty()) {
          report.Add(label + ": fresh index misdiagnosed as stale (" +
                     stale_reason + ")");
        }
        if (wave > 0 && stale_reason.empty()) {
          report.Add(label +
                     ": index predating the update diagnosed as fresh");
        }
        const std::vector<FannrQuery> phl_jobs{{query, FannAlgorithm::kGd}};
        const auto phl_results = phl_engine->Run(phl_jobs);
        CheckAgainstOracle(ranking, phl_results[0],
                           label + " stale-index engine", report);
        const auto& traces = phl_engine->last_traces();
        if (!traces.empty() &&
            traces[0].stale_index_fallback != (wave > 0)) {
          report.Add(label + ": trace stale_index_fallback is " +
                     (traces[0].stale_index_fallback ? "set" : "unset") +
                     " but the index is " + (wave > 0 ? "stale" : "fresh"));
        }
        const auto& batch_report = phl_engine->last_report();
        if (wave > 0 && batch_report.stale_index_fallbacks == 0) {
          report.Add(label +
                     ": report counted no stale-index fallbacks after an "
                     "update");
        }
      }
    }
  }

  // Post-rebuild indexed path: a fresh index on the final weights is
  // fresh again and agrees with the oracle.
  if (options.check_rebuilt_index) {
    auto rebuilt = HubLabels::Build(graph);
    if (rebuilt.has_value()) {
      GphiResources fresh;
      fresh.graph = &graph;
      fresh.labels = &*rebuilt;
      const std::string reason = StaleIndexReason(GphiKind::kPhl, fresh);
      if (!reason.empty()) {
        report.Add("rebuilt index still diagnosed stale: " + reason);
      }
      auto phl = MakeGphiEngine(GphiKind::kPhl, fresh);
      for (Aggregate aggregate : aggregates) {
        const auto ranking = OracleRanking(graph, scenario.p, scenario.q,
                                           scenario.phi, aggregate);
        FannQuery query{&graph, &p_set, &q_set, scenario.phi, aggregate};
        const FannResult result = SolveWith(FannAlgorithm::kGd, query, *phl);
        CheckAgainstOracle(ranking, result,
                           std::string("rebuilt [") +
                               std::string(AggregateName(aggregate)) +
                               "] GD/PHL",
                           report);
      }
    }
  }

  return std::move(report).Take();
}

}  // namespace fannr::testing
