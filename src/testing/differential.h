// Differential testing + invariant checking across the FANN_R solvers.
//
// RunDifferentialChecks executes one scenario (src/testing/scenario.h)
// through every applicable FannAlgorithm — directly via fann/dispatch.h
// and in parallel via the BatchQueryEngine — plus the k-FANN_R variants,
// and audits the results against the brute-force oracle
// (src/testing/oracle.h) and a set of metamorphic invariants:
//
//   * exact solvers return the oracle optimum, and same-engine solver
//     families (GD / R-List / IER-kNN) return bitwise-identical full
//     k-FANN result lists (deterministic (distance, vertex id) order);
//   * equal-distance ties are broken by ascending vertex id everywhere;
//   * the top-1 of every k-FANN solver equals its FANN_R counterpart;
//   * a k-FANN list is a prefix of the list for a larger k_results;
//   * d* is monotonically nondecreasing in phi;
//   * results are invariant under permutation of P and Q and under
//     re-execution (seed/run invariance);
//   * APX-sum respects the paper's approximation bound (<= 3x, and
//     <= 2x when Q is a subset of P);
//   * the batch engine returns bitwise-identical results for every
//     thread count, matching the sequential dispatch path.
//
// Violations come back as human-readable strings (empty = scenario
// passed). MinimizeScenario greedily shrinks a failing scenario while
// preserving at least one violation, for committing to tests/corpus/.

#ifndef FANNR_TESTING_DIFFERENTIAL_H_
#define FANNR_TESTING_DIFFERENTIAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "fann/gphi.h"
#include "testing/scenario.h"

namespace fannr::testing {

struct DifferentialOptions {
  /// g_phi engines to drive the solvers with. Index-free kinds only by
  /// default (INE, A*) so scenarios need no prebuilt substrate index.
  std::vector<GphiKind> engine_kinds = {GphiKind::kIne, GphiKind::kAStar};

  /// Also run the batch through BatchQueryEngine at 1 and
  /// `batch_threads` threads and require bitwise-equal results.
  bool check_batch = true;
  size_t batch_threads = 3;

  /// Metamorphic invariants (phi-monotonicity, permutation and rerun
  /// invariance, k-prefix consistency).
  bool check_invariants = true;

  /// Skip the naive subset-enumeration oracle cross-check when
  /// C(|Q|, k) exceeds this bound (SolveNaive is for toy instances).
  size_t naive_subset_limit = 20000;

  /// Cap on emitted violation strings per scenario.
  size_t max_violations = 24;
};

/// Runs every check on `scenario`; returns the violations (empty =
/// clean).
std::vector<std::string> RunDifferentialChecks(
    const Scenario& scenario, const DifferentialOptions& options = {});

/// Greedily shrinks a failing scenario (drops P/Q members, lowers
/// k_results, narrows the aggregate mode) while RunDifferentialChecks
/// still reports a violation. Returns `scenario` unchanged when it does
/// not fail. `max_evaluations` bounds the number of checker runs.
Scenario MinimizeScenario(const Scenario& scenario,
                          const DifferentialOptions& options = {},
                          size_t max_evaluations = 300);

/// One-line summary for fuzzer logs ("seed=42 tie-grid |V|=25 |P|=7
/// |Q|=4 phi=0.5 k_results=3").
std::string DescribeScenario(const Scenario& scenario);

}  // namespace fannr::testing

#endif  // FANNR_TESTING_DIFFERENTIAL_H_
