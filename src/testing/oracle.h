// Brute-force FANN_R oracle for differential testing.
//
// Computes the full candidate ranking from first principles — one
// Dijkstra per query point, then a per-candidate select-and-fold — with
// the canonical deterministic tie order (ascending distance, then
// ascending vertex id). Every solver's output is checked against this
// ranking by src/testing/differential.cc. Deliberately independent of
// the solver code paths it audits: it shares only the graph, Dijkstra,
// FlexK and FoldSorted primitives.

#ifndef FANNR_TESTING_ORACLE_H_
#define FANNR_TESTING_ORACLE_H_

#include <vector>

#include "fann/aggregate.h"
#include "graph/graph.h"

namespace fannr::testing {

/// One ranked candidate: a data point with finite flexible aggregate
/// distance (unreachable candidates are excluded from the ranking).
struct OracleEntry {
  VertexId vertex = kInvalidVertex;
  Weight distance = kInfWeight;
};

/// All distances from each query point to each data point:
/// matrix[qi][pi] = d(q[qi], p[pi]).
std::vector<std::vector<Weight>> OracleDistanceMatrix(
    const Graph& graph, const std::vector<VertexId>& p,
    const std::vector<VertexId>& q);

/// g_phi(p[pi], Q) with subset size k, from a precomputed matrix.
Weight OracleGphi(const std::vector<std::vector<Weight>>& matrix, size_t pi,
                  size_t k, Aggregate aggregate);

/// The complete candidate ranking by (distance, vertex id), finite
/// entries only. The k-FANN_R answer of size r is the first
/// min(r, size()) entries; the FANN_R answer is the front (or "no
/// answer" when empty).
std::vector<OracleEntry> OracleRanking(const Graph& graph,
                                       const std::vector<VertexId>& p,
                                       const std::vector<VertexId>& q,
                                       double phi, Aggregate aggregate);

}  // namespace fannr::testing

#endif  // FANNR_TESTING_ORACLE_H_
