#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace fannr {

RTree::RTree(const Options& options) : options_(options) {
  FANNR_CHECK(options_.max_entries >= 2);
  FANNR_CHECK(options_.min_entries >= 1);
  FANNR_CHECK(options_.min_entries * 2 <= options_.max_entries + 1);
  root_ = NewNode(/*is_leaf=*/true);
  height_ = 1;
}

RTree::NodeId RTree::NewNode(bool is_leaf) {
  nodes_.push_back(Node{});
  nodes_.back().is_leaf = is_leaf;
  return static_cast<NodeId>(nodes_.size() - 1);
}

RTree RTree::BulkLoad(std::vector<Item> items, const Options& options) {
  RTree tree(options);
  if (items.empty()) return tree;
  const size_t cap = options.max_entries;

  // STR: sort by x, cut into vertical slabs of ~sqrt(n/cap) * cap items,
  // sort each slab by y, pack leaves of `cap` items.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.point.x < b.point.x;
  });
  const size_t num_leaves = (items.size() + cap - 1) / cap;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size =
      ((num_leaves + num_slabs - 1) / num_slabs) * cap;

  tree.nodes_.clear();
  std::vector<NodeId> level;  // current level, bottom-up
  for (size_t begin = 0; begin < items.size(); begin += slab_size) {
    const size_t end = std::min(begin + slab_size, items.size());
    std::sort(items.begin() + begin, items.begin() + end,
              [](const Item& a, const Item& b) {
                return a.point.y < b.point.y;
              });
    for (size_t i = begin; i < end; i += cap) {
      const size_t leaf_end = std::min(i + cap, end);
      NodeId leaf = tree.NewNode(/*is_leaf=*/true);
      for (size_t j = i; j < leaf_end; ++j) {
        tree.nodes_[leaf].items.push_back(items[j]);
        tree.nodes_[leaf].mbr.Extend(items[j].point);
      }
      level.push_back(leaf);
    }
  }
  tree.height_ = 1;

  // Pack upper levels until one root remains.
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i < level.size(); i += cap) {
      const size_t end = std::min(i + cap, level.size());
      NodeId parent = tree.NewNode(/*is_leaf=*/false);
      for (size_t j = i; j < end; ++j) {
        tree.nodes_[parent].children.push_back(
            {tree.nodes_[level[j]].mbr, level[j]});
        tree.nodes_[parent].mbr.Extend(tree.nodes_[level[j]].mbr);
      }
      next.push_back(parent);
    }
    level = std::move(next);
    ++tree.height_;
  }
  tree.root_ = level.front();
  tree.num_items_ = items.size();
  return tree;
}

Mbr RTree::Bounds() const {
  return num_items_ == 0 ? Mbr{} : nodes_[root_].mbr;
}

RTree::NodeId RTree::Root() const {
  FANNR_CHECK(!empty());
  return root_;
}

bool RTree::IsLeaf(NodeId node) const {
  FANNR_DCHECK(node < nodes_.size());
  return nodes_[node].is_leaf;
}

const Mbr& RTree::NodeMbr(NodeId node) const {
  FANNR_DCHECK(node < nodes_.size());
  return nodes_[node].mbr;
}

std::span<const RTree::Child> RTree::Children(NodeId node) const {
  FANNR_DCHECK(node < nodes_.size() && !nodes_[node].is_leaf);
  return nodes_[node].children;
}

std::span<const RTree::Item> RTree::Items(NodeId node) const {
  FANNR_DCHECK(node < nodes_.size() && nodes_[node].is_leaf);
  return nodes_[node].items;
}

void RTree::RecomputeMbr(NodeId node) {
  Node& n = nodes_[node];
  n.mbr = Mbr{};
  if (n.is_leaf) {
    for (const Item& it : n.items) n.mbr.Extend(it.point);
  } else {
    for (const Child& c : n.children) n.mbr.Extend(c.mbr);
  }
}

RTree::NodeId RTree::ChooseLeaf(NodeId node, const Point& p,
                                std::vector<NodeId>& path) const {
  path.push_back(node);
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    NodeId best = n.children.front().node;
    for (const Child& c : n.children) {
      Mbr extended = c.mbr;
      extended.Extend(p);
      const double enlargement = extended.Area() - c.mbr.Area();
      const double area = c.mbr.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best = c.node;
      }
    }
    node = best;
    path.push_back(node);
  }
  return node;
}

namespace {

// Quadratic split seed selection: the pair wasting the most area.
template <typename GetMbr>
std::pair<size_t, size_t> PickSeeds(size_t count, const GetMbr& mbr_of) {
  std::pair<size_t, size_t> seeds{0, 1};
  double worst = -1.0;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      Mbr combined = mbr_of(i);
      combined.Extend(mbr_of(j));
      const double waste =
          combined.Area() - mbr_of(i).Area() - mbr_of(j).Area();
      if (waste > worst) {
        worst = waste;
        seeds = {i, j};
      }
    }
  }
  return seeds;
}

// Distributes entries between two groups by the quadratic-split rule;
// returns group assignment (false = group A, true = group B).
template <typename GetMbr>
std::vector<bool> QuadraticSplit(size_t count, size_t min_entries,
                                 const GetMbr& mbr_of) {
  auto [seed_a, seed_b] = PickSeeds(count, mbr_of);
  std::vector<bool> in_b(count, false);
  std::vector<bool> assigned(count, false);
  Mbr mbr_a = mbr_of(seed_a);
  Mbr mbr_b = mbr_of(seed_b);
  size_t count_a = 1, count_b = 1;
  assigned[seed_a] = true;
  assigned[seed_b] = true;
  in_b[seed_b] = true;

  size_t remaining = count - 2;
  while (remaining > 0) {
    // Forced assignment to meet minimum fill.
    if (count_a + remaining == min_entries) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          mbr_a.Extend(mbr_of(i));
          ++count_a;
        }
      }
      break;
    }
    if (count_b + remaining == min_entries) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          in_b[i] = true;
          mbr_b.Extend(mbr_of(i));
          ++count_b;
        }
      }
      break;
    }
    // Pick the entry with the greatest preference for one group.
    size_t pick = count;
    double best_diff = -1.0;
    double pick_da = 0.0, pick_db = 0.0;
    for (size_t i = 0; i < count; ++i) {
      if (assigned[i]) continue;
      Mbr ea = mbr_a;
      ea.Extend(mbr_of(i));
      Mbr eb = mbr_b;
      eb.Extend(mbr_of(i));
      const double da = ea.Area() - mbr_a.Area();
      const double db = eb.Area() - mbr_b.Area();
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_da = da;
        pick_db = db;
      }
    }
    assigned[pick] = true;
    --remaining;
    const bool to_b =
        pick_db < pick_da ||
        (pick_db == pick_da && count_b < count_a);
    if (to_b) {
      in_b[pick] = true;
      mbr_b.Extend(mbr_of(pick));
      ++count_b;
    } else {
      mbr_a.Extend(mbr_of(pick));
      ++count_a;
    }
  }
  return in_b;
}

}  // namespace

RTree::NodeId RTree::SplitLeaf(NodeId node) {
  std::vector<Item> items = std::move(nodes_[node].items);
  auto mbr_of = [&](size_t i) {
    Mbr m;
    m.Extend(items[i].point);
    return m;
  };
  std::vector<bool> in_b =
      QuadraticSplit(items.size(), options_.min_entries, mbr_of);
  NodeId sibling = NewNode(/*is_leaf=*/true);
  nodes_[node].items.clear();
  for (size_t i = 0; i < items.size(); ++i) {
    nodes_[in_b[i] ? sibling : node].items.push_back(items[i]);
  }
  RecomputeMbr(node);
  RecomputeMbr(sibling);
  return sibling;
}

RTree::NodeId RTree::SplitInternal(NodeId node) {
  std::vector<Child> children = std::move(nodes_[node].children);
  auto mbr_of = [&](size_t i) { return children[i].mbr; };
  std::vector<bool> in_b =
      QuadraticSplit(children.size(), options_.min_entries, mbr_of);
  NodeId sibling = NewNode(/*is_leaf=*/false);
  nodes_[node].children.clear();
  for (size_t i = 0; i < children.size(); ++i) {
    nodes_[in_b[i] ? sibling : node].children.push_back(children[i]);
  }
  RecomputeMbr(node);
  RecomputeMbr(sibling);
  return sibling;
}

void RTree::AdjustTree(std::vector<NodeId>& path, NodeId split_sibling) {
  // Walk back up the insertion path refreshing MBRs and propagating
  // splits.
  while (!path.empty()) {
    NodeId node = path.back();
    path.pop_back();
    RecomputeMbr(node);
    if (path.empty()) {
      // At the root.
      if (split_sibling != kNoNode) {
        NodeId new_root = NewNode(/*is_leaf=*/false);
        nodes_[new_root].children.push_back({nodes_[node].mbr, node});
        nodes_[new_root].children.push_back(
            {nodes_[split_sibling].mbr, split_sibling});
        RecomputeMbr(new_root);
        root_ = new_root;
        ++height_;
      }
      return;
    }
    NodeId parent = path.back();
    // Refresh this child's MBR in the parent.
    for (Child& c : nodes_[parent].children) {
      if (c.node == node) {
        c.mbr = nodes_[node].mbr;
        break;
      }
    }
    if (split_sibling != kNoNode) {
      nodes_[parent].children.push_back(
          {nodes_[split_sibling].mbr, split_sibling});
      split_sibling = nodes_[parent].children.size() > options_.max_entries
                          ? SplitInternal(parent)
                          : kNoNode;
    }
  }
}

void RTree::Insert(const Item& item) {
  std::vector<NodeId> path;
  NodeId leaf = ChooseLeaf(root_, item.point, path);
  nodes_[leaf].items.push_back(item);
  nodes_[leaf].mbr.Extend(item.point);
  ++num_items_;
  NodeId sibling = nodes_[leaf].items.size() > options_.max_entries
                       ? SplitLeaf(leaf)
                       : kNoNode;
  AdjustTree(path, sibling);
}

std::vector<RTree::Item> RTree::RangeQuery(const Mbr& range) const {
  std::vector<Item> result;
  if (empty()) return result;
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    if (!n.mbr.Intersects(range)) continue;
    if (n.is_leaf) {
      for (const Item& it : n.items) {
        if (range.Contains(it.point)) result.push_back(it);
      }
    } else {
      for (const Child& c : n.children) {
        if (c.mbr.Intersects(range)) stack.push_back(c.node);
      }
    }
  }
  return result;
}

RTree::NnIterator::NnIterator(const RTree& tree, Point query)
    : tree_(tree), query_(query) {
  if (!tree.empty()) {
    heap_.push(Entry{MinDist(tree.nodes_[tree.root_].mbr, query), false,
                     tree.root_, Item{}});
  }
}

std::optional<RTree::NnIterator::Hit> RTree::NnIterator::Next() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (top.is_item) return Hit{top.distance, top.item};
    const Node& n = tree_.nodes_[top.node];
    if (n.is_leaf) {
      for (const Item& it : n.items) {
        heap_.push(
            Entry{EuclideanDistance(it.point, query_), true, 0, it});
      }
    } else {
      for (const Child& c : n.children) {
        heap_.push(Entry{MinDist(c.mbr, query_), false, c.node, Item{}});
      }
    }
  }
  return std::nullopt;
}

double RTree::NnIterator::PeekDistance() {
  while (!heap_.empty() && !heap_.top().is_item) {
    Entry top = heap_.top();
    heap_.pop();
    const Node& n = tree_.nodes_[top.node];
    if (n.is_leaf) {
      for (const Item& it : n.items) {
        heap_.push(
            Entry{EuclideanDistance(it.point, query_), true, 0, it});
      }
    } else {
      for (const Child& c : n.children) {
        heap_.push(Entry{MinDist(c.mbr, query_), false, c.node, Item{}});
      }
    }
  }
  return heap_.empty() ? std::numeric_limits<double>::infinity()
                       : heap_.top().distance;
}

size_t RTree::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.children.capacity() * sizeof(Child) +
             n.items.capacity() * sizeof(Item);
  }
  return bytes;
}

size_t RTree::Height() const { return height_; }

}  // namespace fannr
