// In-memory R-tree over 2-D points.
//
// Used by the paper in two places: the IER-kNN framework indexes the data
// points P (Algorithm 1 traverses the tree ordered by the flexible
// Euclidean aggregate g^eps_phi of entry MBRs), and the IER-* g_phi
// engines index the query points Q (incremental Euclidean NN + network
// verification). Both uses need read-only structural access, so the node
// structure is exposed via ids + accessors in addition to the built-in
// queries.
//
// Construction is either STR bulk load (sort-tile-recursive; used for the
// static P and Q sets) or one-at-a-time insertion with quadratic splits.

#ifndef FANNR_SPATIAL_RTREE_H_
#define FANNR_SPATIAL_RTREE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/flat_heap.h"
#include "geo/mbr.h"
#include "geo/point.h"

namespace fannr {

/// R-tree over (point, id) items. Ids are opaque 32-bit payloads (vertex
/// ids in this library).
class RTree {
 public:
  using NodeId = uint32_t;

  /// Sentinel for "no node" (used internally for split propagation).
  static constexpr NodeId kNoNode = 0xFFFFFFFFu;

  /// A stored item: a point plus the caller's payload id.
  struct Item {
    Point point;
    uint32_t id;
  };

  /// A child reference inside an internal node.
  struct Child {
    Mbr mbr;
    NodeId node;
  };

  struct Options {
    /// Maximum entries per node (the paper's fanout f; default 4 to match
    /// the experimental setup in Section VI-A).
    size_t max_entries = 4;
    /// Minimum entries per node after a split.
    size_t min_entries = 2;
  };

  /// Creates an empty tree (insert items one at a time).
  RTree() : RTree(Options{}) {}
  explicit RTree(const Options& options);

  /// STR bulk load.
  static RTree BulkLoad(std::vector<Item> items) {
    return BulkLoad(std::move(items), Options{});
  }
  static RTree BulkLoad(std::vector<Item> items, const Options& options);

  /// Inserts one item.
  void Insert(const Item& item);

  /// Number of stored items.
  size_t size() const { return num_items_; }

  bool empty() const { return num_items_ == 0; }

  /// MBR of all items (empty Mbr when empty).
  Mbr Bounds() const;

  // --- structural access (read-only) -------------------------------------

  /// Root node id. Requires !empty().
  NodeId Root() const;

  /// True if `node` is a leaf (holds items, not children).
  bool IsLeaf(NodeId node) const;

  /// MBR of `node`.
  const Mbr& NodeMbr(NodeId node) const;

  /// Children of an internal node.
  std::span<const Child> Children(NodeId node) const;

  /// Items of a leaf node.
  std::span<const Item> Items(NodeId node) const;

  // --- queries ------------------------------------------------------------

  /// All items whose point lies inside `range` (inclusive).
  std::vector<Item> RangeQuery(const Mbr& range) const;

  /// Incremental nearest-neighbor iteration from `query` in Euclidean
  /// distance (distance browsing, Hjaltason & Samet). The tree must
  /// outlive the iterator and not be modified while iterating.
  class NnIterator {
   public:
    struct Hit {
      double distance;
      Item item;
    };

    /// Next nearest item, or nullopt when exhausted.
    std::optional<Hit> Next();

    /// Distance of the next item without consuming it (infinity when
    /// exhausted).
    double PeekDistance();

   private:
    friend class RTree;
    NnIterator(const RTree& tree, Point query);

    struct Entry {
      double distance;
      bool is_item;
      NodeId node;   // valid when !is_item
      Item item;     // valid when is_item
    };
    struct DistanceLess {
      bool operator()(const Entry& a, const Entry& b) const {
        return a.distance < b.distance;
      }
    };

    const RTree& tree_;
    Point query_;
    FlatHeap<Entry, DistanceLess> heap_;
  };

  /// Starts incremental NN iteration from `query`.
  NnIterator NearestNeighbors(Point query) const {
    return NnIterator(*this, query);
  }

  /// Approximate heap bytes held by the tree.
  size_t MemoryBytes() const;

  /// Height of the tree (0 when empty, 1 for a single leaf).
  size_t Height() const;

 private:
  struct Node {
    Mbr mbr;
    bool is_leaf = true;
    std::vector<Child> children;  // internal nodes
    std::vector<Item> items;      // leaf nodes
  };

  NodeId NewNode(bool is_leaf);
  void RecomputeMbr(NodeId node);
  NodeId ChooseLeaf(NodeId node, const Point& p,
                    std::vector<NodeId>& path) const;
  // Splits `node` (overfull); returns the new sibling.
  NodeId SplitLeaf(NodeId node);
  NodeId SplitInternal(NodeId node);
  void AdjustTree(std::vector<NodeId>& path, NodeId split_sibling);

  Options options_;
  std::vector<Node> nodes_;
  NodeId root_ = 0;
  size_t num_items_ = 0;
  size_t height_ = 0;
};

}  // namespace fannr

#endif  // FANNR_SPATIAL_RTREE_H_
