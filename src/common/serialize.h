// Minimal binary serialization helpers for index persistence.
//
// Preprocessing-heavy indexes (hub labels, G-tree, CH) support Save/Load
// so applications — and the benchmark harness — build them once per road
// network and reload in milliseconds. The format is a native-endian dump
// guarded by a magic number and version; it is a cache format, not an
// interchange format.

#ifndef FANNR_COMMON_SERIALIZE_H_
#define FANNR_COMMON_SERIALIZE_H_

#include <algorithm>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <type_traits>
#include <vector>

namespace fannr {

/// Writes PODs and vectors of PODs to a stream.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  /// Length-prefixed array from any contiguous storage (vector, Column,
  /// mmap view) — the wire layout is identical to Vec.
  template <typename T>
  void Span(const T* values, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(count);
    if (count > 0) {
      out_.write(reinterpret_cast<const char*>(values),
                 static_cast<std::streamsize>(count * sizeof(T)));
    }
  }

  template <typename T>
  void Vec(const std::vector<T>& values) {
    Span(values.data(), values.size());
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
};

/// Reads what BinaryWriter wrote. All methods return false (and leave the
/// output untouched or partially filled) on stream failure or corrupt
/// sizes. Vec bounds its allocation by the bytes actually remaining in
/// the stream, so a corrupt 16-byte file claiming a terabyte-sized vector
/// fails fast instead of triggering a near-OOM resize.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  template <typename T>
  bool Pod(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    return static_cast<bool>(in_);
  }

  template <typename T>
  bool Vec(std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!Pod(size)) return false;
    if (size == 0) {
      values.clear();
      return true;
    }
    // Absolute backstop against overflow in the byte-count arithmetic.
    if (size > (1ULL << 40) / sizeof(T)) return false;
    const uint64_t bytes = size * sizeof(T);
    const std::optional<uint64_t> remaining = RemainingBytes();
    if (remaining.has_value()) {
      // Seekable stream: a size header exceeding what is left is corrupt
      // — reject before allocating anything.
      if (bytes > *remaining) {
        in_.setstate(std::ios::failbit);
        return false;
      }
      values.resize(size);
      in_.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(bytes));
    } else {
      // Non-seekable stream: grow incrementally in bounded chunks so a
      // lying header costs at most one chunk of memory past EOF.
      constexpr uint64_t kChunkElems = (1ULL << 20) / sizeof(T) + 1;
      values.clear();
      uint64_t done = 0;
      while (done < size && in_) {
        const uint64_t take =
            std::min<uint64_t>(kChunkElems, size - done);
        values.resize(static_cast<size_t>(done + take));
        in_.read(reinterpret_cast<char*>(values.data() + done),
                 static_cast<std::streamsize>(take * sizeof(T)));
        done += take;
      }
    }
    return static_cast<bool>(in_);
  }

  bool ok() const { return static_cast<bool>(in_); }

 private:
  /// Bytes between the current position and the end of the stream, or
  /// nullopt when the stream is not seekable.
  std::optional<uint64_t> RemainingBytes() {
    const std::istream::pos_type cur = in_.tellg();
    if (cur == std::istream::pos_type(-1)) {
      in_.clear();
      return std::nullopt;
    }
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    in_.seekg(cur);
    if (end == std::istream::pos_type(-1) || !in_) {
      in_.clear();
      in_.seekg(cur);
      return std::nullopt;
    }
    return static_cast<uint64_t>(end - cur);
  }

  std::istream& in_;
};

}  // namespace fannr

#endif  // FANNR_COMMON_SERIALIZE_H_
