// Minimal binary serialization helpers for index persistence.
//
// Preprocessing-heavy indexes (hub labels, G-tree, CH) support Save/Load
// so applications — and the benchmark harness — build them once per road
// network and reload in milliseconds. The format is a native-endian dump
// guarded by a magic number and version; it is a cache format, not an
// interchange format.

#ifndef FANNR_COMMON_SERIALIZE_H_
#define FANNR_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

namespace fannr {

/// Writes PODs and vectors of PODs to a stream.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void Vec(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(values.size());
    if (!values.empty()) {
      out_.write(reinterpret_cast<const char*>(values.data()),
                 static_cast<std::streamsize>(values.size() * sizeof(T)));
    }
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
};

/// Reads what BinaryWriter wrote. All methods return false (and leave the
/// output untouched or partially filled) on stream failure or corrupt
/// sizes.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  template <typename T>
  bool Pod(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    return static_cast<bool>(in_);
  }

  template <typename T>
  bool Vec(std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!Pod(size)) return false;
    // Guard against corrupt headers requesting absurd allocations.
    if (size > (1ULL << 40) / sizeof(T)) return false;
    values.resize(size);
    if (size > 0) {
      in_.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(size * sizeof(T)));
    }
    return static_cast<bool>(in_);
  }

  bool ok() const { return static_cast<bool>(in_); }

 private:
  std::istream& in_;
};

}  // namespace fannr

#endif  // FANNR_COMMON_SERIALIZE_H_
