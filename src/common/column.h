// Column<T>: a contiguous array that is either OWNED (a std::vector
// built in memory) or BORROWED (a span into an mmap-ed index file).
//
// Every index in this codebase (CSR graph, hub labels, G-tree, CH)
// stores its payload as flat POD arrays. Build paths fill them as
// vectors; the format-v3 mmap load path (graph/index_io.h) wants to
// point the same members straight into the file mapping without
// copying. Column is that one abstraction: read access (data / size /
// operator[] / iteration) is identical in both states and costs one
// predictable branch on a member bool; mutation through vec() is
// reserved for build/load-into-memory paths and aborts on a borrowed
// column. Element-level writes through data()/operator[] ARE allowed on
// borrowed columns — the mapping is MAP_PRIVATE copy-on-write (see
// common/mmap_file.h), so e.g. live weight updates against an
// mmap-loaded graph mutate anonymous page copies, never the file.
//
// A borrowed column does NOT own its bytes: whoever created the span
// (the index object holding the MmapFile) must keep the mapping alive
// for the column's lifetime.

#ifndef FANNR_COMMON_COLUMN_H_
#define FANNR_COMMON_COLUMN_H_

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fannr {

template <typename T>
class Column {
  static_assert(std::is_trivially_copyable_v<T>,
                "Column is for flat POD payloads only");

 public:
  Column() = default;
  // Implicit on purpose: build code keeps assigning vectors to members.
  Column(std::vector<T> values) : vec_(std::move(values)) {}
  Column& operator=(std::vector<T> values) {
    vec_ = std::move(values);
    ptr_ = nullptr;
    size_ = 0;
    borrowed_ = false;
    return *this;
  }

  /// Wraps [p, p + n) without copying. The memory must outlive the
  /// column; writes go through (copy-on-write when p is in a
  /// MAP_PRIVATE mapping).
  static Column Borrow(T* p, size_t n) {
    Column c;
    c.ptr_ = p;
    c.size_ = n;
    c.borrowed_ = true;
    return c;
  }

  bool borrowed() const { return borrowed_; }
  size_t size() const { return borrowed_ ? size_ : vec_.size(); }
  bool empty() const { return size() == 0; }

  const T* data() const { return borrowed_ ? ptr_ : vec_.data(); }
  T* data() { return borrowed_ ? ptr_ : vec_.data(); }

  const T& operator[](size_t i) const { return data()[i]; }
  T& operator[](size_t i) { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }

  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// The backing vector, for build/deserialize paths that resize,
  /// push_back, or move it. Aborts on a borrowed column: structural
  /// mutation of an mmap view is a programming error.
  std::vector<T>& vec() {
    FANNR_CHECK(!borrowed_);
    return vec_;
  }
  const std::vector<T>& vec() const {
    FANNR_CHECK(!borrowed_);
    return vec_;
  }

  /// Heap bytes owned by this column (zero when borrowed — the mapping
  /// is accounted by its owner).
  size_t memory_bytes() const {
    return borrowed_ ? 0 : vec_.capacity() * sizeof(T);
  }

 private:
  std::vector<T> vec_;
  T* ptr_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

}  // namespace fannr

#endif  // FANNR_COMMON_COLUMN_H_
