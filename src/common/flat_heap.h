// A flat d-ary (4-ary) binary-free min-heap for search hot loops.
//
// Every shortest-path kernel in this codebase follows the same pattern:
// push (key, payload) entries, pop the minimum, skip entries that a
// cheaper "settled / stale" check proves outdated (decrease-key-free
// "lazy delete"). std::priority_queue serves that pattern but costs an
// allocation per search (its backing vector is a local), and its binary
// layout touches log2(n) scattered cache lines per sift. This heap fixes
// both:
//
//   * Flat, caller-owned storage. The heap object IS the scratch: search
//     objects hold one as a member, clear() between queries keeps the
//     grown capacity, so steady-state hot loops perform zero heap
//     allocations. ("Simpler is More", PAPERS.md: on large road networks
//     flat cache-friendly search structures beat pointer-heavy ones.)
//   * 4-ary layout: half the tree depth of a binary heap, and the four
//     children of a node are contiguous (children of i start at 4i + 1),
//     so one sift-down level usually costs one cache line instead of
//     two scattered ones. Pop-heavy Dijkstra loops are dominated by
//     sift-downs, which is exactly where the arity helps.
//
// Lazy delete + settled check (the decrease-key-free mode): instead of
// decreasing a resident entry's key, push a duplicate with the smaller
// key and, on pop, discard entries whose key is worse than the current
// known distance (or whose vertex is already settled). The heap itself
// stays oblivious — the idiom is entirely in the caller:
//
//   heap.clear();
//   heap.push({0.0, source});
//   while (!heap.empty()) {
//     auto [d, u] = heap.top();
//     heap.pop();
//     if (d > dist[u]) continue;     // lazy delete: stale duplicate
//     ...relax edges, push improved (nd, v) duplicates...
//   }
//
// Ordering contract: pop order is nondecreasing under Less and
// deterministic (a pure function of the push/pop sequence), but the
// relative order of Less-equal entries is unspecified and differs from
// std::priority_queue. Nothing in this codebase depends on tie order
// among equal keys — consumers either drain equal-key plateaus wholesale
// (exact_max, kfann) or canonicalize with explicit (key, id) comparators.
// Sites that need a total order make the id part of the comparator.
//
// Allocation accounting: every backing-store growth increments a global
// relaxed counter. Tests and benchmarks read deltas of
// FlatHeapAllocStats() around a workload to assert hot loops are
// allocation-free after warmup (bench/throughput.cc records the delta
// per cell as "heap_grows").

#ifndef FANNR_COMMON_FLAT_HEAP_H_
#define FANNR_COMMON_FLAT_HEAP_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fannr {

namespace internal_flat_heap {
inline std::atomic<uint64_t> g_grows{0};
}  // namespace internal_flat_heap

/// Cumulative (process-wide) FlatHeap allocation events. `grows` counts
/// backing-store growths across all FlatHeap instances; a delta of zero
/// over a workload proves every heap it touched ran allocation-free.
struct FlatHeapStats {
  uint64_t grows = 0;
};

inline FlatHeapStats FlatHeapAllocStats() {
  return FlatHeapStats{
      internal_flat_heap::g_grows.load(std::memory_order_relaxed)};
}

/// Min-heap on `Less` (top() is the Less-least element) over flat
/// contiguous storage. Not thread-safe; one instance per search object.
template <typename T, typename Less = std::less<T>>
class FlatHeap {
 public:
  static constexpr size_t kArity = 4;

  FlatHeap() = default;
  explicit FlatHeap(Less less) : less_(std::move(less)) {}

  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }
  size_t capacity() const { return data_.capacity(); }

  /// Drops every entry, KEEPING the grown capacity — the whole point of
  /// holding the heap as a member across queries.
  void clear() { data_.clear(); }

  void reserve(size_t n) {
    if (n > data_.capacity()) {
      internal_flat_heap::g_grows.fetch_add(1, std::memory_order_relaxed);
      data_.reserve(n);
    }
  }

  const T& top() const {
    FANNR_DCHECK(!data_.empty());
    return data_.front();
  }

  void push(T value) {
    if (data_.size() == data_.capacity()) {
      internal_flat_heap::g_grows.fetch_add(1, std::memory_order_relaxed);
    }
    data_.push_back(std::move(value));
    SiftUp(data_.size() - 1);
  }

  void pop() {
    FANNR_DCHECK(!data_.empty());
    T last = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) {
      data_.front() = std::move(last);
      SiftDown(0);
    }
  }

 private:
  void SiftUp(size_t i) {
    T value = std::move(data_[i]);
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!less_(value, data_[parent])) break;
      data_[i] = std::move(data_[parent]);
      i = parent;
    }
    data_[i] = std::move(value);
  }

  void SiftDown(size_t i) {
    T value = std::move(data_[i]);
    const size_t n = data_.size();
    while (true) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      const size_t last = std::min(first + kArity, n);
      size_t best = first;
      for (size_t c = first + 1; c < last; ++c) {
        if (less_(data_[c], data_[best])) best = c;
      }
      if (!less_(data_[best], value)) break;
      data_[i] = std::move(data_[best]);
      i = best;
    }
    data_[i] = std::move(value);
  }

  std::vector<T> data_;
  [[no_unique_address]] Less less_;
};

}  // namespace fannr

#endif  // FANNR_COMMON_FLAT_HEAP_H_
