// Timestamped arrays: O(1) logical reset of per-vertex scratch state.
//
// Repeated shortest-path searches over a large graph must not pay O(|V|)
// to clear distance arrays between queries; a generation counter makes
// stale entries invisible instead.

#ifndef FANNR_COMMON_TIMESTAMPED_H_
#define FANNR_COMMON_TIMESTAMPED_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fannr {

/// A fixed-size array whose entries all revert to a default value after
/// NewEpoch() in O(1).
template <typename T>
class TimestampedArray {
 public:
  TimestampedArray(size_t size, T default_value)
      : values_(size, default_value),
        stamps_(size, 0),
        default_(default_value) {}

  /// Logically resets every entry to the default value.
  void NewEpoch() {
    if (++epoch_ == 0) {
      // Counter wrapped: physically clear once every 2^32 epochs.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Current value at `i` (the default if unset this epoch).
  T Get(size_t i) const {
    FANNR_DCHECK(i < values_.size());
    return stamps_[i] == epoch_ ? values_[i] : default_;
  }

  /// Sets the value at `i` for the current epoch.
  void Set(size_t i, T value) {
    FANNR_DCHECK(i < values_.size());
    stamps_[i] = epoch_;
    values_[i] = value;
  }

  /// True if `i` was set during the current epoch.
  bool IsSet(size_t i) const {
    FANNR_DCHECK(i < values_.size());
    return stamps_[i] == epoch_;
  }

  size_t size() const { return values_.size(); }

 private:
  std::vector<T> values_;
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 1;
  T default_;
};

}  // namespace fannr

#endif  // FANNR_COMMON_TIMESTAMPED_H_
