#include "common/rng.h"

#include <numeric>

namespace fannr {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FANNR_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  FANNR_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  FANNR_CHECK(k <= n);
  // Floyd's algorithm would avoid the O(n) init but the selection-tracking
  // set dominates for large k; the simple partial Fisher-Yates is fine at
  // the sizes used here when k is a large fraction of n, and for small k we
  // use Floyd's.
  std::vector<size_t> result;
  result.reserve(k);
  if (k * 16 < n) {
    // Floyd's algorithm: expected O(k) with a small hash set.
    std::vector<size_t> chosen;
    chosen.reserve(k);
    for (size_t j = n - k; j < n; ++j) {
      size_t t = NextIndex(j + 1);
      bool seen = false;
      for (size_t c : chosen) {
        if (c == t) {
          seen = true;
          break;
        }
      }
      chosen.push_back(seen ? j : t);
    }
    return chosen;
  }
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextIndex(n - i);
    std::swap(pool[i], pool[j]);
    result.push_back(pool[i]);
  }
  return result;
}

}  // namespace fannr
