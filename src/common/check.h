// Lightweight contract-checking macros used throughout the library.
//
// FANNR_CHECK aborts (in all build types) with a message when a
// precondition or invariant is violated; FANNR_DCHECK compiles away in
// release builds. The library does not use C++ exceptions: API misuse is a
// programming error and fails fast, and recoverable conditions (e.g. file
// I/O) are reported through return values.

#ifndef FANNR_COMMON_CHECK_H_
#define FANNR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fannr {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "FANNR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_check
}  // namespace fannr

#define FANNR_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::fannr::internal_check::CheckFailed(__FILE__, __LINE__,     \
                                           #expr);                 \
    }                                                              \
  } while (false)

#ifdef NDEBUG
#define FANNR_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define FANNR_DCHECK(expr) FANNR_CHECK(expr)
#endif

#endif  // FANNR_COMMON_CHECK_H_
