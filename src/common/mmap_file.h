// RAII wrapper around a private, writable file mapping.
//
// Index cache files (graph/index_io.h format v3) are opened by mapping
// the whole file and pointing index data structures directly into the
// mapping, so "load" costs one mmap plus an O(header) validation pass
// instead of reading and checksumming every byte. The mapping is
// MAP_PRIVATE with PROT_READ|PROT_WRITE: readers get copy-on-write
// pages, so in-place mutation of mapped data (e.g. a live weight update
// against an mmap-loaded graph) dirties anonymous copies and never
// touches the file on disk.

#ifndef FANNR_COMMON_MMAP_FILE_H_
#define FANNR_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

namespace fannr {

/// Move-only owner of one file mapping. A default-constructed instance
/// is empty (data() == nullptr, size() == 0).
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` MAP_PRIVATE with PROT_READ|PROT_WRITE. Returns nullopt
  /// if the file cannot be opened, statted, or mapped. A zero-length
  /// file maps successfully to an empty view.
  static std::optional<MmapFile> Open(const std::string& path);

  std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Reset();

  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fannr

#endif  // FANNR_COMMON_MMAP_FILE_H_
