// Deterministic pseudo-random number generation.
//
// All stochastic code in the library (graph generators, workload
// generators, tests, benchmarks) draws from Rng so that every run is
// reproducible from a single 64-bit seed. The engine is xoshiro256**,
// seeded via SplitMix64.

#ifndef FANNR_COMMON_RNG_H_
#define FANNR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fannr {

/// Deterministic, seedable random number generator (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextU64();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi). Requires lo <= hi.
  double NextDouble(double lo, double hi);

  /// Returns a uniform index in [0, n). Requires n > 0.
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextBounded(n)); }

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Reservoir-samples k distinct elements from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace fannr

#endif  // FANNR_COMMON_RNG_H_
