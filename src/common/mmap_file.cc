#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fannr {

std::optional<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;
  }
  MmapFile result;
  const size_t size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                        fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return std::nullopt;
    }
    result.data_ = static_cast<std::byte*>(addr);
    result.size_ = size;
  }
  // The mapping keeps its own reference to the file; the descriptor is
  // not needed past this point.
  ::close(fd);
  return result;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace fannr
