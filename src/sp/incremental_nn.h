// Incremental network expansion (INE): a resumable Dijkstra expansion that
// reports members of a target set from-near-to-far.
//
// This single primitive powers four of the paper's components:
//   * the INE implementation of g_phi (kNN from a candidate p over Q),
//   * the per-query-point lists of the R-List algorithm (Section III-B),
//   * the multi-source switchable expansion of Exact-max (Algorithm 2),
//   * the 1-NN lookups of APX-sum (Algorithm 3).
//
// The paper's "switchable" implementation detail — all search state is
// preserved when a queue is switched away from and resumed later — is
// exactly what this class provides: each instance owns its frontier and
// distance map and can be advanced one reported target at a time.
//
// Distance state is kept in a hash map rather than an O(|V|) array so that
// |Q| concurrent instances stay within the paper's O(|Q||V|) worst-case
// bound but use memory proportional to the region actually explored.

#ifndef FANNR_SP_INCREMENTAL_NN_H_
#define FANNR_SP_INCREMENTAL_NN_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/flat_heap.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"

namespace fannr {

/// Resumable from-near-to-far enumeration of a target set.
class IncrementalNnSearch {
 public:
  /// A reported target: `vertex` is in the target set and `distance` is
  /// its exact network distance from the source. Successive hits have
  /// nondecreasing distances.
  struct Hit {
    VertexId vertex;
    Weight distance;
  };

  /// Starts an expansion from `source`. `targets` must outlive the search.
  IncrementalNnSearch(const Graph& graph, VertexId source,
                      const IndexedVertexSet& targets);

  /// Returns the next nearest unreported target, or nullopt when all
  /// reachable targets have been reported.
  std::optional<Hit> Next();

  /// Returns the next hit without consuming it (nullptr when exhausted).
  /// This is the "head of the queue" of the paper's R-List / Exact-max:
  /// peeking advances the underlying expansion until the next target is
  /// settled, and the result is buffered for the following Next().
  const Hit* Peek();

  /// Number of vertices settled so far (exposition / benchmarking aid).
  size_t settled_count() const { return settled_count_; }

  VertexId source() const { return source_; }

 private:
  // Advances the Dijkstra expansion until one more target is settled.
  std::optional<Hit> FindNextTarget();

  struct HeapEntry {
    Weight dist;
    VertexId vertex;
  };
  struct DistLess {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.dist < b.dist;
    }
  };

  const Graph& graph_;
  const IndexedVertexSet& targets_;
  VertexId source_;
  FlatHeap<HeapEntry, DistLess> frontier_;
  std::unordered_map<VertexId, Weight> dist_;
  std::optional<Hit> buffered_;
  size_t settled_count_ = 0;
  bool exhausted_ = false;
};

}  // namespace fannr

#endif  // FANNR_SP_INCREMENTAL_NN_H_
