#include "sp/bidirectional.h"

#include <algorithm>
#include <utility>

namespace fannr {

BidirectionalSearch::BidirectionalSearch(const Graph& graph)
    : graph_(graph),
      dist_forward_(graph.NumVertices(), kInfWeight),
      dist_backward_(graph.NumVertices(), kInfWeight) {}

Weight BidirectionalSearch::Distance(VertexId source, VertexId target) {
  FANNR_CHECK(source < graph_.NumVertices() &&
              target < graph_.NumVertices());
  if (source == target) return 0.0;
  dist_forward_.NewEpoch();
  dist_backward_.NewEpoch();

  using MinHeap = FlatHeap<std::pair<Weight, VertexId>>;
  MinHeap& forward = forward_heap_;
  MinHeap& backward = backward_heap_;
  forward.clear();
  backward.clear();
  dist_forward_.Set(source, 0.0);
  dist_backward_.Set(target, 0.0);
  forward.push({0.0, source});
  backward.push({0.0, target});

  Weight best = kInfWeight;
  // The graph is undirected, so both directions scan the same adjacency.
  auto step = [&](MinHeap& heap, TimestampedArray<Weight>& mine,
                  TimestampedArray<Weight>& other) -> Weight {
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > mine.Get(u)) continue;  // stale
      if (other.IsSet(u)) best = std::min(best, d + other.Get(u));
      for (const Arc& a : graph_.Neighbors(u)) {
        const Weight nd = d + a.weight;
        if (nd < mine.Get(a.to)) {
          mine.Set(a.to, nd);
          heap.push({nd, a.to});
          if (other.IsSet(a.to)) {
            best = std::min(best, nd + other.Get(a.to));
          }
        }
      }
      return d;  // settled one vertex
    }
    return kInfWeight;  // frontier exhausted
  };

  Weight top_forward = 0.0;
  Weight top_backward = 0.0;
  while (top_forward + top_backward < best &&
         (!forward.empty() || !backward.empty())) {
    // Advance the smaller frontier.
    if (!forward.empty() &&
        (backward.empty() || forward.top().first <= backward.top().first)) {
      top_forward = step(forward, dist_forward_, dist_backward_);
    } else {
      top_backward = step(backward, dist_backward_, dist_forward_);
    }
    if (top_forward == kInfWeight && top_backward == kInfWeight) break;
  }
  return best;
}

}  // namespace fannr
