// Dijkstra's algorithm: single-source shortest paths, point-to-point
// queries, and SSSP with per-vertex parents. The reusable DijkstraSearch
// object amortizes scratch-array allocation across queries (important when
// an FANN_R algorithm evaluates g_phi for thousands of candidate points).

#ifndef FANNR_SP_DIJKSTRA_H_
#define FANNR_SP_DIJKSTRA_H_

#include <utility>
#include <vector>

#include "common/flat_heap.h"
#include "common/timestamped.h"
#include "graph/graph.h"

namespace fannr {

/// Full single-source shortest path distances (kInfWeight = unreachable).
std::vector<Weight> DijkstraSssp(const Graph& graph, VertexId source);

/// SSSP result with shortest-path-tree parents (kInvalidVertex for the
/// source and unreachable vertices).
struct SsspTree {
  std::vector<Weight> dist;
  std::vector<VertexId> parent;
};

/// Full SSSP with parents.
SsspTree DijkstraSsspTree(const Graph& graph, VertexId source);

/// Shortest path as a vertex sequence [source, ..., target] (empty when
/// target is unreachable; [source] when source == target). Runs a
/// point-to-point Dijkstra with parent tracking and early termination.
std::vector<VertexId> ShortestPath(const Graph& graph, VertexId source,
                                   VertexId target);

/// Reusable Dijkstra engine bound to one graph. Not thread-safe; create
/// one per thread.
class DijkstraSearch {
 public:
  explicit DijkstraSearch(const Graph& graph);

  /// Network distance from `source` to `target` (kInfWeight if
  /// unreachable). Terminates as soon as `target` is settled.
  Weight Distance(VertexId source, VertexId target);

  /// Network distances from `source` to every vertex in `targets`
  /// (aligned with `targets`). Terminates once all reachable targets are
  /// settled.
  std::vector<Weight> Distances(VertexId source,
                                const std::vector<VertexId>& targets);

  /// Full SSSP from `source` written into `out` (resized to |V|;
  /// kInfWeight = unreachable). Equivalent to DijkstraSssp but reuses
  /// this object's scratch, so a worker thread running many sources only
  /// allocates the output. The result is identical (bit for bit) for a
  /// given graph and source regardless of which search object ran it.
  void SsspInto(VertexId source, std::vector<Weight>& out);

  /// Grows the frontier to the worst case of a full search up front:
  /// lazy-deletion Dijkstra pushes once per strict improvement, at most
  /// NumArcs() + 1 times, so after this call no search on this object
  /// ever regrows the heap. Costs O(NumArcs()) bytes of memory; called
  /// by batch workers at construction so the solve phase is
  /// allocation-free from the first query (see
  /// BatchOptions::prewarm_scratch).
  void ReserveFullSearch();

  const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  TimestampedArray<Weight> dist_;
  TimestampedArray<uint8_t> settled_;
  // Persistent frontier: clear() keeps capacity, so steady-state queries
  // run with zero heap allocations.
  FlatHeap<std::pair<Weight, VertexId>> heap_;
};

}  // namespace fannr

#endif  // FANNR_SP_DIJKSTRA_H_
