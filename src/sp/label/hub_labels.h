// Pruned 2-hop hub labeling: an index-based exact distance oracle.
//
// This plays the role of PHL (pruned highway labeling, Akiba et al.
// ALENEX'14) in the paper: after preprocessing, any network distance is
// answered by scanning two per-vertex label arrays. We implement pruned
// landmark labeling (Akiba et al. SIGMOD'13) with an importance order
// derived from sampled shortest-path trees, which approximates the
// betweenness-like orders that work well on road networks. The query
// interface and the role in every FANN_R algorithm are identical to PHL's
// (see DESIGN.md §2.1 for the substitution note); bench output labels this
// oracle "PHL" for table fidelity with the paper.
//
// Mirroring the paper's finding that PHL exhausts memory on the largest
// road networks (Fig. 9), Build enforces an optional memory budget and
// reports failure instead of thrashing.

#ifndef FANNR_SP_LABEL_HUB_LABELS_H_
#define FANNR_SP_LABEL_HUB_LABELS_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/column.h"
#include "graph/graph.h"

namespace fannr {

class ThreadPool;

/// Exact 2-hop-labeling distance oracle. Immutable after Build/Load;
/// Distance is a pure two-pointer scan over the label arrays, so the
/// whole query surface is safe for concurrent readers.
class HubLabels {
 public:
  /// One label entry: (hub's importance rank, distance to that hub).
  /// Flat POD so label arrays serialize as raw sections.
  struct Entry {
    uint32_t hub_rank;
    Weight dist;
  };

  struct Options {
    /// Number of sampled shortest-path trees used to compute the vertex
    /// importance order. More samples = better order = smaller labels.
    size_t num_order_samples = 12;
    /// Build is abandoned (returns nullopt) once the label arrays exceed
    /// this many bytes.
    size_t max_memory_bytes = std::numeric_limits<size_t>::max();
    /// Seed for order sampling.
    uint64_t seed = 0x9B1F0E5ULL;
  };

  /// Preprocesses `graph`. Returns nullopt iff the memory budget was
  /// exceeded. With a non-null `pool` the importance-order sampling
  /// phase fans its shortest-path trees over the pool's workers; the
  /// result is bitwise identical to the sequential build (the sampled
  /// sources come from the same pre-drawn sequence and the per-vertex
  /// scores are integer sums, so accumulation order cannot matter).
  static std::optional<HubLabels> Build(const Graph& graph) {
    return Build(graph, Options{});
  }
  static std::optional<HubLabels> Build(const Graph& graph,
                                        const Options& options,
                                        ThreadPool* pool = nullptr);

  /// Exact network distance between `u` and `v` (kInfWeight if
  /// disconnected). Thread-safe after construction.
  Weight Distance(VertexId u, VertexId v) const;

  /// Total number of label entries across all vertices.
  size_t TotalLabelEntries() const { return entries_.size(); }

  /// Mean label entries per vertex.
  double AverageLabelSize() const;

  /// Approximate heap bytes held by the index.
  size_t MemoryBytes() const;

  /// Serializes the index to a stream (cache format; see
  /// graph/index_io.h — the header carries a format version and the
  /// fingerprint of the graph the labels were built against). Returns
  /// false on I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads an index previously written by Save against `graph`.
  /// Returns nullopt on corrupt input, a stale format version, or a file
  /// whose stored graph fingerprint does not match `graph` — a hub-label
  /// file for a different (or since-updated) network is rejected, never
  /// loaded into service of wrong distances.
  static std::optional<HubLabels> Load(const Graph& graph, std::istream& in);

  /// Writes the arena (format v3, graph/index_io.h) cache file. Entry
  /// padding bytes are zeroed so the file is bit-deterministic. Returns
  /// false on I/O failure.
  bool SaveV3(const std::string& path) const;

  /// Opens a SaveV3 file by mmap: the label arrays point into the
  /// mapping (no copy). Same rejection contract as Load — wrong graph,
  /// wrong version, or structurally invalid tables return nullopt; the
  /// payload checksum is verified only under ArenaValidation::kFull.
  static std::optional<HubLabels> LoadMmap(
      const Graph& graph, const std::string& path,
      ArenaValidation validation = ArenaValidation::kHeaderOnly);

  /// The graph epoch the index was built (or loaded) at.
  GraphEpoch build_epoch() const { return build_epoch_; }

  /// Fingerprint of the graph the index was built against.
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

  /// True iff the index still answers for `graph` exactly: same identity
  /// and no weight update has been applied since Build/Load. O(1);
  /// consulted by fann/dispatch for the stale-index query fallback.
  bool FreshFor(const Graph& graph) const {
    return build_epoch_ == graph.epoch() && fingerprint_ == graph.Fingerprint();
  }

 private:
  HubLabels() = default;

  Column<size_t> offsets_;  // per-vertex spans into entries_
  Column<Entry> entries_;
  GraphFingerprint fingerprint_;
  GraphEpoch build_epoch_ = 0;
  std::shared_ptr<void> arena_;  // keeps an mmap-backed file alive
};

}  // namespace fannr

#endif  // FANNR_SP_LABEL_HUB_LABELS_H_
