// Pruned 2-hop hub labeling: an index-based exact distance oracle.
//
// This plays the role of PHL (pruned highway labeling, Akiba et al.
// ALENEX'14) in the paper: after preprocessing, any network distance is
// answered by scanning two per-vertex label arrays. We implement pruned
// landmark labeling (Akiba et al. SIGMOD'13) with an importance order
// derived from sampled shortest-path trees, which approximates the
// betweenness-like orders that work well on road networks. The query
// interface and the role in every FANN_R algorithm are identical to PHL's
// (see DESIGN.md §2.1 for the substitution note); bench output labels this
// oracle "PHL" for table fidelity with the paper.
//
// Mirroring the paper's finding that PHL exhausts memory on the largest
// road networks (Fig. 9), Build enforces an optional memory budget and
// reports failure instead of thrashing.

#ifndef FANNR_SP_LABEL_HUB_LABELS_H_
#define FANNR_SP_LABEL_HUB_LABELS_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace fannr {

/// Exact 2-hop-labeling distance oracle. Immutable after Build/Load;
/// Distance is a pure two-pointer scan over the label arrays, so the
/// whole query surface is safe for concurrent readers.
class HubLabels {
 public:
  struct Options {
    /// Number of sampled shortest-path trees used to compute the vertex
    /// importance order. More samples = better order = smaller labels.
    size_t num_order_samples = 12;
    /// Build is abandoned (returns nullopt) once the label arrays exceed
    /// this many bytes.
    size_t max_memory_bytes = std::numeric_limits<size_t>::max();
    /// Seed for order sampling.
    uint64_t seed = 0x9B1F0E5ULL;
  };

  /// Preprocesses `graph`. Returns nullopt iff the memory budget was
  /// exceeded.
  static std::optional<HubLabels> Build(const Graph& graph) {
    return Build(graph, Options{});
  }
  static std::optional<HubLabels> Build(const Graph& graph,
                                        const Options& options);

  /// Exact network distance between `u` and `v` (kInfWeight if
  /// disconnected). Thread-safe after construction.
  Weight Distance(VertexId u, VertexId v) const;

  /// Total number of label entries across all vertices.
  size_t TotalLabelEntries() const { return entries_.size(); }

  /// Mean label entries per vertex.
  double AverageLabelSize() const;

  /// Approximate heap bytes held by the index.
  size_t MemoryBytes() const;

  /// Serializes the index to a stream (cache format; see
  /// common/serialize.h). Returns false on I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads an index previously written by Save. Returns nullopt on
  /// corrupt or mismatched input.
  static std::optional<HubLabels> Load(std::istream& in);

 private:
  struct Entry {
    uint32_t hub_rank;
    Weight dist;
  };

  HubLabels() = default;

  std::vector<size_t> offsets_;  // per-vertex spans into entries_
  std::vector<Entry> entries_;
};

}  // namespace fannr

#endif  // FANNR_SP_LABEL_HUB_LABELS_H_
