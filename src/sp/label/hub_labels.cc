#include "sp/label/hub_labels.h"

#include <algorithm>
#include <numeric>

#include "common/flat_heap.h"
#include "common/rng.h"
#include "graph/index_io.h"
#include "sp/dijkstra.h"

namespace fannr {

namespace {

// Importance score per vertex: how often it appears on sampled shortest
// paths, estimated as the sum of its shortest-path-tree subtree sizes over
// a few random sources. High-score vertices make good (early) hubs.
std::vector<uint64_t> SampledTreeScores(const Graph& graph,
                                        size_t num_samples, uint64_t seed) {
  const size_t n = graph.NumVertices();
  std::vector<uint64_t> score(n, 0);
  Rng rng(seed);
  for (size_t s = 0; s < num_samples; ++s) {
    const VertexId source = static_cast<VertexId>(rng.NextIndex(n));
    SsspTree tree = DijkstraSsspTree(graph, source);
    // Process vertices from far to near so each vertex's subtree size is
    // complete before being added to its parent.
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), VertexId{0});
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return tree.dist[a] > tree.dist[b];
    });
    std::vector<uint64_t> subtree(n, 1);
    for (VertexId v : order) {
      if (tree.dist[v] == kInfWeight) continue;
      score[v] += subtree[v];
      if (tree.parent[v] != kInvalidVertex) {
        subtree[tree.parent[v]] += subtree[v];
      }
    }
  }
  return score;
}

}  // namespace

std::optional<HubLabels> HubLabels::Build(const Graph& graph,
                                          const Options& options) {
  const size_t n = graph.NumVertices();
  HubLabels result;
  result.fingerprint_ = graph.Fingerprint();
  result.build_epoch_ = graph.epoch();
  if (n == 0) {
    result.offsets_.assign(1, 0);
    return result;
  }

  // Vertex order: decreasing importance; rank[v] = position in the order.
  std::vector<uint64_t> score =
      SampledTreeScores(graph, options.num_order_samples, options.seed);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return score[a] > score[b];
  });

  // Labels under construction (per vertex, entries appear in increasing
  // hub rank automatically since hubs are processed in rank order).
  std::vector<std::vector<Entry>> labels(n);
  size_t total_entries = 0;

  // Scratch for the pruned Dijkstra.
  std::vector<Weight> dist(n, kInfWeight);
  std::vector<VertexId> touched;
  // Scatter array: hub_dist_from_root[r] = distance from the current root
  // to hub ranked r, for hubs in the root's own label.
  std::vector<Weight> root_hub_dist(n, kInfWeight);

  using HeapEntry = std::pair<Weight, VertexId>;
  FlatHeap<HeapEntry> heap;  // drained every rank; capacity persists

  for (uint32_t rank = 0; rank < n; ++rank) {
    const VertexId root = order[rank];
    // Scatter the root's current label for O(|L(u)|) prune queries.
    for (const Entry& e : labels[root]) {
      root_hub_dist[e.hub_rank] = e.dist;
    }

    dist[root] = 0.0;
    touched.push_back(root);
    heap.push({0.0, root});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      // Prune: if some earlier hub already certifies a path of length <= d
      // between root and u, u needs no label from this root and nothing
      // beyond u can need one either.
      bool pruned = false;
      for (const Entry& e : labels[u]) {
        const Weight via = root_hub_dist[e.hub_rank];
        if (via != kInfWeight && via + e.dist <= d) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;

      labels[u].push_back({rank, d});
      ++total_entries;
      for (const Arc& a : graph.Neighbors(u)) {
        const Weight nd = d + a.weight;
        if (nd < dist[a.to]) {
          if (dist[a.to] == kInfWeight) touched.push_back(a.to);
          dist[a.to] = nd;
          heap.push({nd, a.to});
        }
      }
    }

    for (VertexId v : touched) dist[v] = kInfWeight;
    touched.clear();
    for (const Entry& e : labels[root]) {
      root_hub_dist[e.hub_rank] = kInfWeight;
    }

    if (total_entries * sizeof(Entry) > options.max_memory_bytes) {
      return std::nullopt;
    }
  }

  // Flatten.
  result.offsets_.resize(n + 1);
  result.entries_.reserve(total_entries);
  for (VertexId v = 0; v < n; ++v) {
    result.offsets_[v] = result.entries_.size();
    result.entries_.insert(result.entries_.end(), labels[v].begin(),
                           labels[v].end());
    labels[v].clear();
    labels[v].shrink_to_fit();
  }
  result.offsets_[n] = result.entries_.size();
  return result;
}

Weight HubLabels::Distance(VertexId u, VertexId v) const {
  FANNR_CHECK(u + 1 < offsets_.size() && v + 1 < offsets_.size());
  if (u == v) return 0.0;
  const Entry* lu = entries_.data() + offsets_[u];
  const Entry* lu_end = entries_.data() + offsets_[u + 1];
  const Entry* lv = entries_.data() + offsets_[v];
  const Entry* lv_end = entries_.data() + offsets_[v + 1];
  Weight best = kInfWeight;
  while (lu != lu_end && lv != lv_end) {
    if (lu->hub_rank == lv->hub_rank) {
      best = std::min(best, lu->dist + lv->dist);
      ++lu;
      ++lv;
    } else if (lu->hub_rank < lv->hub_rank) {
      ++lu;
    } else {
      ++lv;
    }
  }
  return best;
}

double HubLabels::AverageLabelSize() const {
  const size_t n = offsets_.size() - 1;
  return n == 0 ? 0.0
               : static_cast<double>(entries_.size()) /
                     static_cast<double>(n);
}

namespace {
constexpr uint64_t kHubLabelsMagic = 0xFA22A81A6E150001ULL;
}  // namespace

bool HubLabels::Save(std::ostream& out) const {
  BinaryWriter w(out);
  WriteIndexHeader(w, kHubLabelsMagic, fingerprint_);
  w.Vec(offsets_);
  w.Vec(entries_);
  return w.ok();
}

std::optional<HubLabels> HubLabels::Load(const Graph& graph,
                                         std::istream& in) {
  BinaryReader r(in);
  if (!ReadIndexHeader(r, kHubLabelsMagic, graph.Fingerprint())) {
    return std::nullopt;
  }
  HubLabels result;
  if (!r.Vec(result.offsets_) || !r.Vec(result.entries_)) {
    return std::nullopt;
  }
  // Structural validation: one span per vertex, spans non-decreasing and
  // ending exactly at the entry count — Distance() indexes entries_
  // straight from offsets_, so a corrupt prefix array would read out of
  // bounds.
  if (result.offsets_.size() != graph.NumVertices() + 1) return std::nullopt;
  if (result.offsets_.front() != 0 ||
      result.offsets_.back() != result.entries_.size()) {
    return std::nullopt;
  }
  for (size_t i = 0; i + 1 < result.offsets_.size(); ++i) {
    if (result.offsets_[i] > result.offsets_[i + 1]) return std::nullopt;
  }
  // Entry hub ranks must be valid vertex ranks.
  for (const Entry& e : result.entries_) {
    if (e.hub_rank >= graph.NumVertices()) return std::nullopt;
  }
  result.fingerprint_ = graph.Fingerprint();
  result.build_epoch_ = graph.epoch();
  return result;
}

size_t HubLabels::MemoryBytes() const {
  return offsets_.capacity() * sizeof(size_t) +
         entries_.capacity() * sizeof(Entry);
}

}  // namespace fannr
