#include "sp/label/hub_labels.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/flat_heap.h"
#include "common/rng.h"
#include "engine/thread_pool.h"
#include "graph/index_io.h"
#include "sp/dijkstra.h"

namespace fannr {

namespace {

// One sample's contribution to the importance scores: the size of every
// vertex's shortest-path-tree subtree under `source`, accumulated into
// `score` (which the caller guards when sampling in parallel).
void AccumulateTreeScore(const Graph& graph, VertexId source,
                         std::vector<uint64_t>& score, std::mutex* mu) {
  const size_t n = graph.NumVertices();
  SsspTree tree = DijkstraSsspTree(graph, source);
  // Process vertices from far to near so each vertex's subtree size is
  // complete before being added to its parent.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return tree.dist[a] > tree.dist[b];
  });
  std::vector<uint64_t> subtree(n, 1);
  std::unique_lock<std::mutex> lock;
  if (mu != nullptr) lock = std::unique_lock<std::mutex>(*mu);
  for (VertexId v : order) {
    if (tree.dist[v] == kInfWeight) continue;
    score[v] += subtree[v];
    if (tree.parent[v] != kInvalidVertex) {
      subtree[tree.parent[v]] += subtree[v];
    }
  }
}

// Importance score per vertex: how often it appears on sampled shortest
// paths, estimated as the sum of its shortest-path-tree subtree sizes over
// a few random sources. High-score vertices make good (early) hubs.
//
// The sources are pre-drawn from one sequential RNG stream, and the
// per-sample contributions are wrapping uint64 additions, so the result
// is bitwise identical whether the samples run sequentially or fanned
// over a pool.
std::vector<uint64_t> SampledTreeScores(const Graph& graph,
                                        size_t num_samples, uint64_t seed,
                                        ThreadPool* pool) {
  const size_t n = graph.NumVertices();
  std::vector<uint64_t> score(n, 0);
  Rng rng(seed);
  std::vector<VertexId> sources(num_samples);
  for (size_t s = 0; s < num_samples; ++s) {
    sources[s] = static_cast<VertexId>(rng.NextIndex(n));
  }
  if (pool == nullptr) {
    for (VertexId source : sources) {
      AccumulateTreeScore(graph, source, score, nullptr);
    }
  } else {
    std::mutex mu;
    pool->ParallelFor(sources.size(), [&](size_t s, size_t /*worker*/) {
      AccumulateTreeScore(graph, sources[s], score, &mu);
    });
  }
  return score;
}

}  // namespace

std::optional<HubLabels> HubLabels::Build(const Graph& graph,
                                          const Options& options,
                                          ThreadPool* pool) {
  const size_t n = graph.NumVertices();
  HubLabels result;
  result.fingerprint_ = graph.Fingerprint();
  result.build_epoch_ = graph.epoch();
  if (n == 0) {
    result.offsets_.vec().assign(1, 0);
    return result;
  }

  // Vertex order: decreasing importance; rank[v] = position in the order.
  std::vector<uint64_t> score =
      SampledTreeScores(graph, options.num_order_samples, options.seed, pool);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return score[a] > score[b];
  });

  // Labels under construction (per vertex, entries appear in increasing
  // hub rank automatically since hubs are processed in rank order).
  std::vector<std::vector<Entry>> labels(n);
  size_t total_entries = 0;

  // Scratch for the pruned Dijkstra.
  std::vector<Weight> dist(n, kInfWeight);
  std::vector<VertexId> touched;
  // Scatter array: hub_dist_from_root[r] = distance from the current root
  // to hub ranked r, for hubs in the root's own label.
  std::vector<Weight> root_hub_dist(n, kInfWeight);

  using HeapEntry = std::pair<Weight, VertexId>;
  FlatHeap<HeapEntry> heap;  // drained every rank; capacity persists

  for (uint32_t rank = 0; rank < n; ++rank) {
    const VertexId root = order[rank];
    // Scatter the root's current label for O(|L(u)|) prune queries.
    for (const Entry& e : labels[root]) {
      root_hub_dist[e.hub_rank] = e.dist;
    }

    dist[root] = 0.0;
    touched.push_back(root);
    heap.push({0.0, root});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      // Prune: if some earlier hub already certifies a path of length <= d
      // between root and u, u needs no label from this root and nothing
      // beyond u can need one either.
      bool pruned = false;
      for (const Entry& e : labels[u]) {
        const Weight via = root_hub_dist[e.hub_rank];
        if (via != kInfWeight && via + e.dist <= d) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;

      labels[u].push_back({rank, d});
      ++total_entries;
      for (const Arc& a : graph.Neighbors(u)) {
        const Weight nd = d + a.weight;
        if (nd < dist[a.to]) {
          if (dist[a.to] == kInfWeight) touched.push_back(a.to);
          dist[a.to] = nd;
          heap.push({nd, a.to});
        }
      }
    }

    for (VertexId v : touched) dist[v] = kInfWeight;
    touched.clear();
    for (const Entry& e : labels[root]) {
      root_hub_dist[e.hub_rank] = kInfWeight;
    }

    if (total_entries * sizeof(Entry) > options.max_memory_bytes) {
      return std::nullopt;
    }
  }

  // Flatten.
  result.offsets_.vec().resize(n + 1);
  result.entries_.vec().reserve(total_entries);
  for (VertexId v = 0; v < n; ++v) {
    result.offsets_[v] = result.entries_.size();
    result.entries_.vec().insert(result.entries_.vec().end(),
                                 labels[v].begin(), labels[v].end());
    labels[v].clear();
    labels[v].shrink_to_fit();
  }
  result.offsets_[n] = result.entries_.size();
  return result;
}

Weight HubLabels::Distance(VertexId u, VertexId v) const {
  FANNR_CHECK(u + 1 < offsets_.size() && v + 1 < offsets_.size());
  if (u == v) return 0.0;
  const Entry* lu = entries_.data() + offsets_[u];
  const Entry* lu_end = entries_.data() + offsets_[u + 1];
  const Entry* lv = entries_.data() + offsets_[v];
  const Entry* lv_end = entries_.data() + offsets_[v + 1];
  Weight best = kInfWeight;
  while (lu != lu_end && lv != lv_end) {
    if (lu->hub_rank == lv->hub_rank) {
      best = std::min(best, lu->dist + lv->dist);
      ++lu;
      ++lv;
    } else if (lu->hub_rank < lv->hub_rank) {
      ++lu;
    } else {
      ++lv;
    }
  }
  return best;
}

double HubLabels::AverageLabelSize() const {
  const size_t n = offsets_.size() - 1;
  return n == 0 ? 0.0
               : static_cast<double>(entries_.size()) /
                     static_cast<double>(n);
}

namespace {
constexpr uint64_t kHubLabelsMagic = 0xFA22A81A6E150001ULL;

/// Structural validation shared by both load paths: one span per
/// vertex, spans non-decreasing and ending exactly at the entry count —
/// Distance() indexes entries straight from offsets, so a corrupt
/// prefix array would read out of bounds. Entry hub ranks must be valid
/// vertex ranks.
bool ValidLabelStructure(const Graph& graph, const Column<size_t>& offsets,
                         const Column<HubLabels::Entry>& entries) {
  if (offsets.size() != graph.NumVertices() + 1) return false;
  if (offsets.front() != 0 || offsets.back() != entries.size()) return false;
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) return false;
  }
  for (const HubLabels::Entry& e : entries) {
    if (e.hub_rank >= graph.NumVertices()) return false;
  }
  return true;
}

}  // namespace

bool HubLabels::Save(std::ostream& out) const {
  BinaryWriter w(out);
  WriteIndexHeader(w, kHubLabelsMagic, fingerprint_);
  w.Span(offsets_.data(), offsets_.size());
  w.Span(entries_.data(), entries_.size());
  return w.ok();
}

std::optional<HubLabels> HubLabels::Load(const Graph& graph,
                                         std::istream& in) {
  BinaryReader r(in);
  if (!ReadIndexHeader(r, kHubLabelsMagic, graph.Fingerprint())) {
    return std::nullopt;
  }
  HubLabels result;
  if (!r.Vec(result.offsets_.vec()) || !r.Vec(result.entries_.vec())) {
    return std::nullopt;
  }
  if (!ValidLabelStructure(graph, result.offsets_, result.entries_)) {
    return std::nullopt;
  }
  result.fingerprint_ = graph.Fingerprint();
  result.build_epoch_ = graph.epoch();
  return result;
}

bool HubLabels::SaveV3(const std::string& path) const {
  ArenaWriter writer;
  // Entry has 4 padding bytes after hub_rank; zero them so the section
  // bytes (and the payload checksum) are deterministic.
  std::vector<Entry> clean_entries(entries_.size());
  std::memset(clean_entries.data(), 0, clean_entries.size() * sizeof(Entry));
  for (size_t i = 0; i < entries_.size(); ++i) {
    clean_entries[i].hub_rank = entries_[i].hub_rank;
    clean_entries[i].dist = entries_[i].dist;
  }
  writer.Add(offsets_);
  writer.Add(clean_entries);
  return writer.Write(path, kHubLabelsMagic, fingerprint_);
}

std::optional<HubLabels> HubLabels::LoadMmap(const Graph& graph,
                                             const std::string& path,
                                             ArenaValidation validation) {
  std::optional<ArenaFile> arena =
      ArenaFile::Open(path, kHubLabelsMagic, validation);
  if (!arena.has_value() || arena->NumSections() != 2) return std::nullopt;
  if (arena->fingerprint() != graph.Fingerprint()) return std::nullopt;

  size_t num_offsets = 0, num_entries = 0;
  size_t* offsets = arena->SectionArray<size_t>(0, num_offsets);
  Entry* entries = arena->SectionArray<Entry>(1, num_entries);
  if (offsets == nullptr || entries == nullptr) return std::nullopt;

  HubLabels result;
  result.offsets_ = Column<size_t>::Borrow(offsets, num_offsets);
  result.entries_ = Column<Entry>::Borrow(entries, num_entries);
  if (!ValidLabelStructure(graph, result.offsets_, result.entries_)) {
    return std::nullopt;
  }
  result.fingerprint_ = graph.Fingerprint();
  result.build_epoch_ = graph.epoch();
  result.arena_ = std::make_shared<ArenaFile>(std::move(*arena));
  return result;
}

size_t HubLabels::MemoryBytes() const {
  return offsets_.memory_bytes() + entries_.memory_bytes();
}

}  // namespace fannr
