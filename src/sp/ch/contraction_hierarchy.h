// Contraction hierarchies (Geisberger et al. 2008): a preprocessing-based
// exact distance oracle.
//
// The paper cites CH among the indexing techniques for road networks
// (Section II-B) but does not evaluate it; we include it as an extension
// g_phi engine and for the ablation benchmarks. Vertices are contracted in
// importance order, inserting shortcuts that preserve shortest-path
// distances among the remaining vertices; queries run a bidirectional
// Dijkstra restricted to upward edges.

#ifndef FANNR_SP_CH_CONTRACTION_HIERARCHY_H_
#define FANNR_SP_CH_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "common/timestamped.h"
#include "graph/graph.h"

namespace fannr {

/// Exact CH distance oracle. Build once, then query; queries reuse
/// internal scratch arrays and are therefore not thread-safe.
class ContractionHierarchy {
 public:
  struct Options {
    /// Witness searches give up after settling this many vertices and
    /// conservatively insert the shortcut (extra shortcuts cost memory,
    /// never correctness).
    size_t witness_settle_limit = 60;
  };

  static ContractionHierarchy Build(const Graph& graph) {
    return Build(graph, Options{});
  }
  static ContractionHierarchy Build(const Graph& graph,
                                    const Options& options);

  /// Exact network distance (kInfWeight if disconnected).
  Weight Distance(VertexId u, VertexId v);

  /// Number of shortcut edges inserted during preprocessing.
  size_t NumShortcuts() const { return num_shortcuts_; }

  /// Approximate heap bytes of the upward search graph.
  size_t MemoryBytes() const;

  /// Serializes the index (cache format). Returns false on I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads an index previously written by Save against the same graph.
  static std::optional<ContractionHierarchy> Load(const Graph& graph,
                                                  std::istream& in);

 private:
  explicit ContractionHierarchy(size_t n);

  // Upward graph in CSR form: arcs from each vertex to higher-ranked
  // vertices only (original edges and shortcuts).
  std::vector<size_t> up_offsets_;
  std::vector<Arc> up_arcs_;
  size_t num_shortcuts_ = 0;

  TimestampedArray<Weight> dist_forward_;
  TimestampedArray<Weight> dist_backward_;
};

}  // namespace fannr

#endif  // FANNR_SP_CH_CONTRACTION_HIERARCHY_H_
