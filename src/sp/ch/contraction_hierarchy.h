// Contraction hierarchies (Geisberger et al. 2008): a preprocessing-based
// exact distance oracle.
//
// The paper cites CH among the indexing techniques for road networks
// (Section II-B) but does not evaluate it; we include it as an extension
// g_phi engine and for the ablation benchmarks. Vertices are contracted in
// importance order, inserting shortcuts that preserve shortest-path
// distances among the remaining vertices; queries run a bidirectional
// Dijkstra restricted to upward edges.

#ifndef FANNR_SP_CH_CONTRACTION_HIERARCHY_H_
#define FANNR_SP_CH_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/column.h"
#include "common/flat_heap.h"
#include "common/timestamped.h"
#include "graph/graph.h"

namespace fannr {

/// Exact CH distance oracle. The index itself (the upward search graph)
/// is immutable after Build/Load and safe to share across threads; all
/// query scratch lives in Search objects. The convenience Distance()
/// method below uses one internal Search and is therefore NOT
/// thread-safe — concurrent readers must create one Search per thread.
class ContractionHierarchy {
 public:
  struct Options {
    /// Witness searches give up after settling this many vertices and
    /// conservatively insert the shortcut (extra shortcuts cost memory,
    /// never correctness).
    size_t witness_settle_limit = 60;
  };

  /// A reusable bidirectional upward search bound to one hierarchy.
  /// Owns the scratch arrays (the TimestampedArray amortization pattern of
  /// sp/dijkstra.h); create one per thread. The hierarchy must outlive
  /// every Search bound to it.
  class Search {
   public:
    explicit Search(const ContractionHierarchy& ch);

    /// Exact network distance (kInfWeight if disconnected).
    Weight Distance(VertexId u, VertexId v);

   private:
    const ContractionHierarchy* ch_;
    TimestampedArray<Weight> dist_forward_;
    TimestampedArray<Weight> dist_backward_;
    FlatHeap<std::pair<Weight, VertexId>> heap_forward_;
    FlatHeap<std::pair<Weight, VertexId>> heap_backward_;
  };

  static ContractionHierarchy Build(const Graph& graph) {
    return Build(graph, Options{});
  }
  static ContractionHierarchy Build(const Graph& graph,
                                    const Options& options);

  /// Exact network distance (kInfWeight if disconnected). Convenience
  /// wrapper around an internal Search: const but NOT thread-safe (the
  /// scratch is shared); concurrent callers use one Search per thread.
  Weight Distance(VertexId u, VertexId v) const;

  /// Number of shortcut edges inserted during preprocessing.
  size_t NumShortcuts() const { return num_shortcuts_; }

  /// Approximate heap bytes of the upward search graph.
  size_t MemoryBytes() const;

  /// Serializes the index (cache format; versioned header carrying the
  /// source graph's fingerprint — see graph/index_io.h). Returns false on
  /// I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads an index previously written by Save against the same graph.
  /// Returns nullopt on corrupt input, a stale format version, or a
  /// graph-fingerprint mismatch (a file saved against a different or
  /// since-updated network is rejected).
  static std::optional<ContractionHierarchy> Load(const Graph& graph,
                                                  std::istream& in);

  /// Writes the arena (format v3, graph/index_io.h) cache file with
  /// zeroed arc padding (bit-deterministic). Returns false on I/O
  /// failure.
  bool SaveV3(const std::string& path) const;

  /// Opens a SaveV3 file by mmap; the upward CSR points into the
  /// mapping. Same rejection contract as Load; the payload checksum is
  /// verified only under ArenaValidation::kFull.
  static std::optional<ContractionHierarchy> LoadMmap(
      const Graph& graph, const std::string& path,
      ArenaValidation validation = ArenaValidation::kHeaderOnly);

  /// The graph epoch the index was built (or loaded) at.
  GraphEpoch build_epoch() const { return build_epoch_; }

  /// Fingerprint of the graph the index was built against.
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

  /// True iff the index still answers for `graph` exactly (no weight
  /// update since Build/Load). O(1); consulted by fann/dispatch for the
  /// stale-index query fallback.
  bool FreshFor(const Graph& graph) const {
    return build_epoch_ == graph.epoch() && fingerprint_ == graph.Fingerprint();
  }

 private:
  explicit ContractionHierarchy(size_t n);

  // Upward graph in CSR form: arcs from each vertex to higher-ranked
  // vertices only (original edges and shortcuts).
  Column<size_t> up_offsets_;
  Column<Arc> up_arcs_;
  size_t num_shortcuts_ = 0;
  GraphFingerprint fingerprint_;
  GraphEpoch build_epoch_ = 0;
  std::shared_ptr<void> arena_;  // keeps an mmap-backed file alive

  // The bidirectional upward search shared by Search::Distance and the
  // convenience Distance(); the scratch arrays and frontiers are passed
  // in by the caller so repeat queries reuse their grown storage.
  static Weight BidirUpwardSearch(
      const ContractionHierarchy& ch, VertexId u, VertexId v,
      TimestampedArray<Weight>& forward, TimestampedArray<Weight>& backward,
      FlatHeap<std::pair<Weight, VertexId>>& forward_heap,
      FlatHeap<std::pair<Weight, VertexId>>& backward_heap);

  // Scratch of the convenience Distance(); the reason that method is not
  // thread-safe.
  mutable TimestampedArray<Weight> dist_forward_;
  mutable TimestampedArray<Weight> dist_backward_;
  mutable FlatHeap<std::pair<Weight, VertexId>> heap_forward_;
  mutable FlatHeap<std::pair<Weight, VertexId>> heap_backward_;
};

}  // namespace fannr

#endif  // FANNR_SP_CH_CONTRACTION_HIERARCHY_H_
