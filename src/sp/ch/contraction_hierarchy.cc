#include "sp/ch/contraction_hierarchy.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/flat_heap.h"
#include "graph/index_io.h"

namespace fannr {

namespace {

using HeapEntry = std::pair<Weight, VertexId>;
using MinHeap = FlatHeap<HeapEntry>;

// Mutable adjacency during contraction: per-vertex map neighbor -> weight
// (keeping the minimum weight per neighbor pair).
using DynamicAdjacency = std::vector<std::unordered_map<VertexId, Weight>>;

// Local witness search: is there a u->w path of length <= limit in the
// remaining graph avoiding `excluded`? Gives up (returns false) after
// `settle_limit` settles.
class WitnessSearch {
 public:
  WitnessSearch(const DynamicAdjacency& adj,
                const std::vector<bool>& contracted, size_t settle_limit)
      : adj_(adj),
        contracted_(contracted),
        settle_limit_(settle_limit),
        dist_(adj.size(), kInfWeight) {}

  // Runs one search from `source`, treating `excluded` as removed.
  // Returns the distances to `targets` capped at `limit` (kInfWeight if
  // not proven <= limit).
  void Run(VertexId source, VertexId excluded, Weight limit) {
    dist_.NewEpoch();
    heap_.clear();
    dist_.Set(source, 0.0);
    heap_.push({0.0, source});
    size_t settled = 0;
    while (!heap_.empty() && settled < settle_limit_) {
      auto [d, u] = heap_.top();
      heap_.pop();
      if (d > dist_.Get(u)) continue;
      if (d > limit) break;
      ++settled;
      for (const auto& [v, w] : adj_[u]) {
        if (v == excluded || contracted_[v]) continue;
        const Weight nd = d + w;
        if (nd < dist_.Get(v)) {
          dist_.Set(v, nd);
          heap_.push({nd, v});
        }
      }
    }
  }

  Weight DistanceTo(VertexId v) const { return dist_.Get(v); }

 private:
  const DynamicAdjacency& adj_;
  const std::vector<bool>& contracted_;
  size_t settle_limit_;
  TimestampedArray<Weight> dist_;
  MinHeap heap_;  // persists across the O(n) Run calls of one build
};

// Shortcuts needed to contract `v` right now.
struct Shortcut {
  VertexId from;
  VertexId to;
  Weight weight;
};

std::vector<Shortcut> SimulateContraction(const DynamicAdjacency& adj,
                                          const std::vector<bool>& contracted,
                                          WitnessSearch& witness,
                                          VertexId v) {
  std::vector<std::pair<VertexId, Weight>> neighbors;
  for (const auto& [u, w] : adj[v]) {
    if (!contracted[u]) neighbors.push_back({u, w});
  }
  std::vector<Shortcut> shortcuts;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const auto [u, wu] = neighbors[i];
    Weight max_via = 0.0;
    for (size_t j = 0; j < neighbors.size(); ++j) {
      if (j != i) max_via = std::max(max_via, wu + neighbors[j].second);
    }
    witness.Run(u, v, max_via);
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      const auto [w, ww] = neighbors[j];
      const Weight via = wu + ww;
      if (witness.DistanceTo(w) > via) {
        shortcuts.push_back({u, w, via});
      }
    }
  }
  return shortcuts;
}

}  // namespace

ContractionHierarchy::ContractionHierarchy(size_t n)
    : dist_forward_(n, kInfWeight), dist_backward_(n, kInfWeight) {}

ContractionHierarchy ContractionHierarchy::Build(const Graph& graph,
                                                 const Options& options) {
  const size_t n = graph.NumVertices();
  ContractionHierarchy ch(n);
  ch.fingerprint_ = graph.Fingerprint();
  ch.build_epoch_ = graph.epoch();

  DynamicAdjacency adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      auto [it, inserted] = adj[u].emplace(a.to, a.weight);
      if (!inserted) it->second = std::min(it->second, a.weight);
    }
  }

  std::vector<bool> contracted(n, false);
  std::vector<uint32_t> rank(n, 0);
  std::vector<uint32_t> deleted_neighbors(n, 0);
  WitnessSearch witness(adj, contracted, options.witness_settle_limit);

  auto priority = [&](VertexId v, size_t num_shortcuts) {
    const size_t degree = [&] {
      size_t d = 0;
      for (const auto& [u, w] : adj[v]) {
        (void)w;
        if (!contracted[u]) ++d;
      }
      return d;
    }();
    return static_cast<double>(num_shortcuts) - static_cast<double>(degree) +
           0.5 * static_cast<double>(deleted_neighbors[v]);
  };

  // Lazy priority queue of (priority, vertex).
  using PqEntry = std::pair<double, VertexId>;
  FlatHeap<PqEntry> pq;
  pq.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto shortcuts = SimulateContraction(adj, contracted, witness, v);
    pq.push({priority(v, shortcuts.size()), v});
  }

  // Collected edges of the upward graph: (lower-rank endpoint gets the arc
  // after ranks are final).
  std::vector<Shortcut> all_edges;
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      if (u < a.to) all_edges.push_back({u, a.to, a.weight});
    }
  }

  uint32_t next_rank = 0;
  while (!pq.empty()) {
    auto [prio, v] = pq.top();
    pq.pop();
    if (contracted[v]) continue;
    // Lazy update: recompute and requeue if the priority got stale.
    const auto shortcuts = SimulateContraction(adj, contracted, witness, v);
    const double current = priority(v, shortcuts.size());
    if (!pq.empty() && current > pq.top().first + 1e-12) {
      pq.push({current, v});
      continue;
    }
    // Contract v.
    contracted[v] = true;
    rank[v] = next_rank++;
    for (const auto& [u, w] : adj[v]) {
      (void)w;
      if (!contracted[u]) ++deleted_neighbors[u];
    }
    for (const Shortcut& s : shortcuts) {
      auto add = [&](VertexId a, VertexId b, Weight w) {
        auto [it, inserted] = adj[a].emplace(b, w);
        if (!inserted) it->second = std::min(it->second, w);
      };
      add(s.from, s.to, s.weight);
      add(s.to, s.from, s.weight);
      all_edges.push_back(s);
      ++ch.num_shortcuts_;
    }
  }

  // Build the upward CSR: each edge goes from its lower-ranked endpoint to
  // its higher-ranked endpoint.
  std::vector<std::vector<Arc>> up(n);
  for (const Shortcut& e : all_edges) {
    if (rank[e.from] < rank[e.to]) {
      up[e.from].push_back({e.to, e.weight});
    } else {
      up[e.to].push_back({e.from, e.weight});
    }
  }
  ch.up_offsets_.vec().resize(n + 1);
  size_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    ch.up_offsets_[v] = total;
    total += up[v].size();
  }
  ch.up_offsets_[n] = total;
  ch.up_arcs_.vec().reserve(total);
  for (VertexId v = 0; v < n; ++v) {
    ch.up_arcs_.vec().insert(ch.up_arcs_.vec().end(), up[v].begin(),
                             up[v].end());
  }
  return ch;
}

Weight ContractionHierarchy::Distance(VertexId u, VertexId v) const {
  return BidirUpwardSearch(*this, u, v, dist_forward_, dist_backward_,
                           heap_forward_, heap_backward_);
}

ContractionHierarchy::Search::Search(const ContractionHierarchy& ch)
    : ch_(&ch),
      dist_forward_(ch.up_offsets_.size() - 1, kInfWeight),
      dist_backward_(ch.up_offsets_.size() - 1, kInfWeight) {}

Weight ContractionHierarchy::Search::Distance(VertexId u, VertexId v) {
  return BidirUpwardSearch(*ch_, u, v, dist_forward_, dist_backward_,
                           heap_forward_, heap_backward_);
}

Weight ContractionHierarchy::BidirUpwardSearch(
    const ContractionHierarchy& ch, VertexId u, VertexId v,
    TimestampedArray<Weight>& forward, TimestampedArray<Weight>& backward,
    FlatHeap<std::pair<Weight, VertexId>>& forward_heap,
    FlatHeap<std::pair<Weight, VertexId>>& backward_heap) {
  FANNR_CHECK(u + 1 < ch.up_offsets_.size() &&
              v + 1 < ch.up_offsets_.size());
  if (u == v) return 0.0;
  forward.NewEpoch();
  backward.NewEpoch();

  auto arcs = [&](VertexId x) {
    return std::span<const Arc>(ch.up_arcs_.data() + ch.up_offsets_[x],
                                ch.up_offsets_[x + 1] - ch.up_offsets_[x]);
  };

  Weight best = kInfWeight;
  auto run = [&](VertexId source, TimestampedArray<Weight>& mine,
                 TimestampedArray<Weight>& other, MinHeap& heap) {
    heap.clear();
    mine.Set(source, 0.0);
    heap.push({0.0, source});
    while (!heap.empty()) {
      auto [d, x] = heap.top();
      heap.pop();
      if (d > mine.Get(x)) continue;
      if (d >= best) break;  // upward searches can stop at the best meet
      if (other.IsSet(x)) best = std::min(best, d + other.Get(x));
      for (const Arc& a : arcs(x)) {
        const Weight nd = d + a.weight;
        if (nd < mine.Get(a.to)) {
          mine.Set(a.to, nd);
          heap.push({nd, a.to});
        }
      }
    }
  };
  run(u, forward, backward, forward_heap);
  run(v, backward, forward, backward_heap);
  return best;
}

namespace {
constexpr uint64_t kChMagic = 0xFA22A81AC4000003ULL;

/// The upward CSR must be a monotone prefix array over valid targets —
/// BidirUpwardSearch follows it without bounds checks. Shared by both
/// load paths.
bool ValidUpwardCsr(uint64_t vertices, const Column<size_t>& offsets,
                    const Column<Arc>& arcs) {
  if (offsets.size() != vertices + 1) return false;
  if (offsets.front() != 0 || offsets.back() != arcs.size()) return false;
  for (size_t i = 0; i < vertices; ++i) {
    if (offsets[i] > offsets[i + 1]) return false;
  }
  for (const Arc& a : arcs) {
    if (a.to >= vertices || !(a.weight > 0.0)) return false;
  }
  return true;
}
}  // namespace

bool ContractionHierarchy::Save(std::ostream& out) const {
  BinaryWriter w(out);
  WriteIndexHeader(w, kChMagic, fingerprint_);
  w.Pod<uint64_t>(num_shortcuts_);
  w.Span(up_offsets_.data(), up_offsets_.size());
  w.Span(up_arcs_.data(), up_arcs_.size());
  return w.ok();
}

std::optional<ContractionHierarchy> ContractionHierarchy::Load(
    const Graph& graph, std::istream& in) {
  BinaryReader r(in);
  if (!ReadIndexHeader(r, kChMagic, graph.Fingerprint())) {
    return std::nullopt;
  }
  const uint64_t vertices = graph.NumVertices();
  uint64_t shortcuts = 0;
  ContractionHierarchy ch(vertices);
  ch.fingerprint_ = graph.Fingerprint();
  ch.build_epoch_ = graph.epoch();
  if (!r.Pod(shortcuts) || !r.Vec(ch.up_offsets_.vec()) ||
      !r.Vec(ch.up_arcs_.vec())) {
    return std::nullopt;
  }
  if (!ValidUpwardCsr(vertices, ch.up_offsets_, ch.up_arcs_)) {
    return std::nullopt;
  }
  ch.num_shortcuts_ = shortcuts;
  return ch;
}

bool ContractionHierarchy::SaveV3(const std::string& path) const {
  ArenaWriter writer;
  std::vector<Arc> clean_arcs(up_arcs_.size());
  std::memset(clean_arcs.data(), 0, clean_arcs.size() * sizeof(Arc));
  for (size_t i = 0; i < up_arcs_.size(); ++i) {
    clean_arcs[i].to = up_arcs_[i].to;
    clean_arcs[i].weight = up_arcs_[i].weight;
  }
  writer.AddScalar<uint64_t>(num_shortcuts_);
  writer.Add(up_offsets_);
  writer.Add(clean_arcs);
  return writer.Write(path, kChMagic, fingerprint_);
}

std::optional<ContractionHierarchy> ContractionHierarchy::LoadMmap(
    const Graph& graph, const std::string& path, ArenaValidation validation) {
  std::optional<ArenaFile> arena =
      ArenaFile::Open(path, kChMagic, validation);
  if (!arena.has_value() || arena->NumSections() != 3) return std::nullopt;
  if (arena->fingerprint() != graph.Fingerprint()) return std::nullopt;

  uint64_t shortcuts = 0;
  if (!arena->ReadScalar(0, shortcuts)) return std::nullopt;
  size_t num_offsets = 0, num_arcs = 0;
  size_t* offsets = arena->SectionArray<size_t>(1, num_offsets);
  Arc* arcs = arena->SectionArray<Arc>(2, num_arcs);
  if (offsets == nullptr || arcs == nullptr) return std::nullopt;

  const uint64_t vertices = graph.NumVertices();
  ContractionHierarchy ch(vertices);
  ch.fingerprint_ = graph.Fingerprint();
  ch.build_epoch_ = graph.epoch();
  ch.up_offsets_ = Column<size_t>::Borrow(offsets, num_offsets);
  ch.up_arcs_ = Column<Arc>::Borrow(arcs, num_arcs);
  if (!ValidUpwardCsr(vertices, ch.up_offsets_, ch.up_arcs_)) {
    return std::nullopt;
  }
  ch.num_shortcuts_ = shortcuts;
  ch.arena_ = std::make_shared<ArenaFile>(std::move(*arena));
  return ch;
}

size_t ContractionHierarchy::MemoryBytes() const {
  return up_offsets_.memory_bytes() + up_arcs_.memory_bytes();
}

}  // namespace fannr
