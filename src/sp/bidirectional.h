// Bidirectional Dijkstra point-to-point queries.
//
// Settles roughly half the vertices of a unidirectional search on road
// networks; used as an additional distance oracle and in benchmarks.

#ifndef FANNR_SP_BIDIRECTIONAL_H_
#define FANNR_SP_BIDIRECTIONAL_H_

#include <utility>

#include "common/flat_heap.h"
#include "common/timestamped.h"
#include "graph/graph.h"

namespace fannr {

/// Reusable bidirectional Dijkstra engine. Not thread-safe.
class BidirectionalSearch {
 public:
  explicit BidirectionalSearch(const Graph& graph);

  /// Network distance from `source` to `target` (kInfWeight if
  /// unreachable).
  Weight Distance(VertexId source, VertexId target);

 private:
  const Graph& graph_;
  TimestampedArray<Weight> dist_forward_;
  TimestampedArray<Weight> dist_backward_;
  FlatHeap<std::pair<Weight, VertexId>> forward_heap_;
  FlatHeap<std::pair<Weight, VertexId>> backward_heap_;
};

}  // namespace fannr

#endif  // FANNR_SP_BIDIRECTIONAL_H_
