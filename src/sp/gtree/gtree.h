// G-tree: a hierarchical index for shortest-path distance and kNN queries
// on road networks (Zhong et al., CIKM'13 / TKDE'15).
//
// The road network is recursively partitioned into a balanced tree of
// subgraphs. Each leaf stores the within-leaf distances between its
// vertices and its borders; each internal node stores a distance matrix
// over the union of its children's borders ("occupants"). Matrices are
// assembled bottom-up over a border super-graph and then refined top-down
// with shortcut edges from the parent so that every internal matrix holds
// exact *global* network distances — this makes the distance query a
// simple min-plus sweep along the tree path between the two leaves (no
// detour cases to special-handle) and the kNN engine's bounds exact.
//
// Correctness sketch (see DESIGN.md): any shortest path from u to a border
// set decomposes at its first exit border, whose prefix lies entirely
// within the node — so within-leaf leaf matrices plus global internal
// matrices make the dynamic program exact in both directions.

#ifndef FANNR_SP_GTREE_GTREE_H_
#define FANNR_SP_GTREE_GTREE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/column.h"
#include "graph/graph.h"

namespace fannr {

class ThreadPool;

/// Hierarchical road-network index; see file comment.
///
/// Thread-safety: the index is immutable after Build/Load. Distance,
/// WithinLeafDistances and the structure accessors keep all search state
/// in locals, so concurrent readers need no synchronization; SourceOracle
/// and GTreeKnn::Search carry their own per-instance state and should be
/// created one per thread.
class GTree {
 public:
  struct Options {
    /// Children per internal node (the paper's f = 4). Power of two.
    size_t fanout = 4;
    /// Maximum vertices per leaf (the paper's tau; 64-512 depending on
    /// graph size).
    size_t leaf_capacity = 64;
  };

  /// Tree node. Exposed (read-only) for the kNN engine and tests. The
  /// per-node arrays are Columns: owned vectors after Build/Load, views
  /// into the mapped file after LoadMmap (graph/index_io.h format v3).
  struct Node {
    int32_t parent = -1;
    uint32_t depth = 0;
    bool is_leaf = true;
    Column<int32_t> children;
    /// Leaf only: the vertices in this leaf.
    Column<VertexId> vertices;
    /// Border vertices: members with an edge leaving this node's subgraph.
    Column<VertexId> borders;
    /// Internal only: concatenation of children's border lists.
    Column<VertexId> occupants;
    /// Internal only: position of borders[i] within occupants.
    Column<uint32_t> border_occ_pos;
    /// Offset of this node's borders inside the parent's occupants.
    uint32_t occ_offset = 0;
    /// Leaf: |borders| x |vertices| within-leaf distances.
    /// Internal: |occupants| x |occupants| global network distances.
    Column<Weight> matrix;
    /// Leaves covered by this subtree: DFS leaf-order interval
    /// [leaf_begin, leaf_end).
    uint32_t leaf_begin = 0;
    uint32_t leaf_end = 0;

    size_t MatrixCols() const {
      return is_leaf ? vertices.size() : occupants.size();
    }
    Weight MatrixAt(size_t row, size_t col) const {
      return matrix[row * MatrixCols() + col];
    }
  };

  /// Builds the index. The graph must outlive the tree and must not be
  /// moved or destroyed while the tree exists (the tree stores a pointer
  /// into it). With a non-null `pool`, the expensive matrix phases (leaf
  /// matrices, per-depth-level bottom-up assembly and top-down
  /// refinement) fan over the pool's workers; each node's matrix is a
  /// pure function of already-complete inputs, so the result is bitwise
  /// identical to the sequential build.
  static GTree Build(const Graph& graph) { return Build(graph, Options{}); }
  static GTree Build(const Graph& graph, const Options& options,
                     ThreadPool* pool = nullptr);

  /// Exact network distance (kInfWeight if disconnected). Thread-safe.
  Weight Distance(VertexId u, VertexId v) const;

  // --- structure ----------------------------------------------------------

  const Graph& graph() const { return *graph_; }
  size_t NumTreeNodes() const { return nodes_.size(); }
  size_t NumLeaves() const { return num_leaves_; }
  int32_t root() const { return 0; }
  const Node& node(int32_t id) const { return nodes_[id]; }

  /// Leaf containing `v`.
  int32_t LeafOf(VertexId v) const { return leaf_of_[v]; }

  /// Index of `v` within its leaf's vertex list.
  uint32_t LeafPos(VertexId v) const { return leaf_pos_[v]; }

  /// Dijkstra restricted to the induced subgraph of `leaf`, from `source`
  /// (which must be in the leaf). Result is aligned with
  /// node(leaf).vertices; kInfWeight when unreachable within the leaf.
  std::vector<Weight> WithinLeafDistances(int32_t leaf,
                                          VertexId source) const;

  /// Approximate heap bytes held by the index (the paper's Fig. 9 metric).
  size_t MemoryBytes() const;

  /// One-to-many distance queries from a fixed source: the source-side
  /// sweep (distances from the source to the borders of every ancestor
  /// node) is computed once at construction, so each DistanceTo only pays
  /// for the target-side sweep and the LCA combine. Used by the IER-GTree
  /// g_phi engine, which verifies many targets against one candidate.
  class SourceOracle {
   public:
    SourceOracle(const GTree& tree, VertexId source);

    /// Exact network distance from the source to `target`.
    Weight DistanceTo(VertexId target) const;

    VertexId source() const { return source_; }

   private:
    const GTree& tree_;
    VertexId source_;
    int32_t source_leaf_;
    uint32_t leaf_depth_;
    std::vector<int32_t> path_;             // leaf, ..., root
    std::vector<std::vector<Weight>> du_;   // du_[i]: to borders of path_[i]
    std::vector<Weight> within_;            // within-leaf from source
  };

  /// Serializes the index (cache format; versioned header carrying the
  /// source graph's fingerprint — see graph/index_io.h). Returns false on
  /// I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads an index previously written by Save against the same graph.
  /// Returns nullopt on corrupt input, a stale format version, or a
  /// graph-fingerprint mismatch (a file saved against a different or
  /// since-updated network is rejected).
  static std::optional<GTree> Load(const Graph& graph, std::istream& in);

  /// Writes the arena (format v3, graph/index_io.h) cache file: the
  /// per-node arrays are flattened into per-field (prefix offsets,
  /// concatenated payload) section pairs, so LoadMmap can point every
  /// node's Columns into the mapping without copying. Returns false on
  /// I/O failure.
  bool SaveV3(const std::string& path) const;

  /// Opens a SaveV3 file by mmap. Same rejection contract as Load, plus
  /// O(nodes) structural checks (prefix arrays monotone, matrix sizes
  /// consistent with border/occupant counts) so queries on the views
  /// stay memory-safe; the payload checksum is verified only under
  /// ArenaValidation::kFull.
  static std::optional<GTree> LoadMmap(
      const Graph& graph, const std::string& path,
      ArenaValidation validation = ArenaValidation::kHeaderOnly);

  /// The graph epoch the index was built (or loaded) at.
  GraphEpoch build_epoch() const { return build_epoch_; }

  /// Fingerprint of the graph the index was built against.
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

  /// True iff the index still answers for `graph` exactly (no weight
  /// update since Build/Load). O(1); consulted by fann/dispatch for the
  /// stale-index query fallback.
  bool FreshFor(const Graph& graph) const {
    return build_epoch_ == graph.epoch() && fingerprint_ == graph.Fingerprint();
  }

 private:
  GTree() = default;

  void ComputeLeafMatrix(Node& leaf);
  void AssembleInternalMatrix(Node& node, bool refine);
  std::vector<Weight> WithinLeafDistancesImpl(const Node& leaf,
                                              VertexId source) const;

  const Graph* graph_ = nullptr;
  Options options_;
  std::vector<Node> nodes_;
  Column<int32_t> leaf_of_;    // per graph vertex
  Column<uint32_t> leaf_pos_;  // per graph vertex
  size_t num_leaves_ = 0;
  GraphFingerprint fingerprint_;
  GraphEpoch build_epoch_ = 0;
  std::shared_ptr<void> arena_;  // keeps an mmap-backed file alive
};

}  // namespace fannr

#endif  // FANNR_SP_GTREE_GTREE_H_
