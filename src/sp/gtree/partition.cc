#include "sp/gtree/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace fannr {

namespace {

// Orders `indices` (positions into `vertices`) by projection onto the
// principal axis of the vertex coordinates.
void SortByPrincipalAxis(const Graph& graph,
                         const std::vector<VertexId>& vertices,
                         std::vector<uint32_t>& indices) {
  double mean_x = 0.0, mean_y = 0.0;
  for (uint32_t i : indices) {
    mean_x += graph.Coord(vertices[i]).x;
    mean_y += graph.Coord(vertices[i]).y;
  }
  mean_x /= static_cast<double>(indices.size());
  mean_y /= static_cast<double>(indices.size());

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (uint32_t i : indices) {
    const double dx = graph.Coord(vertices[i]).x - mean_x;
    const double dy = graph.Coord(vertices[i]).y - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  // Principal eigenvector direction of [[sxx, sxy], [sxy, syy]].
  const double theta = 0.5 * std::atan2(2.0 * sxy, sxx - syy);
  const double ax = std::cos(theta);
  const double ay = std::sin(theta);
  std::sort(indices.begin(), indices.end(), [&](uint32_t a, uint32_t b) {
    const Point& pa = graph.Coord(vertices[a]);
    const Point& pb = graph.Coord(vertices[b]);
    return pa.x * ax + pa.y * ay < pb.x * ax + pb.y * ay;
  });
}

// Orders `indices` by BFS discovery from a pseudo-peripheral vertex of the
// induced subgraph (coordinate-free fallback). Vertices unreachable within
// the subset are appended at the end.
void SortByBfsLayering(const Graph& graph,
                       const std::vector<VertexId>& vertices,
                       std::vector<uint32_t>& indices) {
  std::unordered_map<VertexId, uint32_t> position;
  position.reserve(indices.size());
  for (uint32_t i : indices) position.emplace(vertices[i], i);

  auto bfs_order = [&](uint32_t start_index) {
    std::vector<uint32_t> order;
    order.reserve(indices.size());
    std::unordered_set<VertexId> visited;
    std::queue<VertexId> queue;
    queue.push(vertices[start_index]);
    visited.insert(vertices[start_index]);
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      order.push_back(position.at(u));
      for (const Arc& a : graph.Neighbors(u)) {
        auto it = position.find(a.to);
        if (it != position.end() && visited.insert(a.to).second) {
          queue.push(a.to);
        }
      }
    }
    return order;
  };

  // Two BFS passes approximate a diameter endpoint.
  std::vector<uint32_t> first = bfs_order(indices.front());
  std::vector<uint32_t> order = bfs_order(first.back());
  // Append subset-unreachable vertices.
  if (order.size() < indices.size()) {
    std::unordered_set<uint32_t> seen(order.begin(), order.end());
    for (uint32_t i : indices) {
      if (!seen.count(i)) order.push_back(i);
    }
  }
  indices = std::move(order);
}

// Recursively halves `indices` into `parts` contiguous balanced groups,
// re-sorting each half along its own principal axis (or BFS layering).
void Bisect(const Graph& graph, const std::vector<VertexId>& vertices,
            std::vector<uint32_t>& indices, size_t begin, size_t end,
            size_t parts, uint32_t first_part_id,
            std::vector<uint32_t>& assignment) {
  if (parts == 1) {
    for (size_t i = begin; i < end; ++i) {
      assignment[indices[i]] = first_part_id;
    }
    return;
  }
  std::vector<uint32_t> slice(indices.begin() + begin,
                              indices.begin() + end);
  if (graph.HasCoordinates()) {
    SortByPrincipalAxis(graph, vertices, slice);
  } else {
    SortByBfsLayering(graph, vertices, slice);
  }
  std::copy(slice.begin(), slice.end(), indices.begin() + begin);
  const size_t mid = begin + (end - begin) / 2;
  Bisect(graph, vertices, indices, begin, mid, parts / 2, first_part_id,
         assignment);
  Bisect(graph, vertices, indices, mid, end, parts / 2,
         first_part_id + static_cast<uint32_t>(parts / 2), assignment);
}

}  // namespace

std::vector<uint32_t> MultiwayPartition(const Graph& graph,
                                        const std::vector<VertexId>& vertices,
                                        size_t fanout) {
  FANNR_CHECK(fanout >= 2 && (fanout & (fanout - 1)) == 0);
  FANNR_CHECK(vertices.size() >= fanout);
  std::vector<uint32_t> indices(vertices.size());
  std::iota(indices.begin(), indices.end(), 0u);
  std::vector<uint32_t> assignment(vertices.size(), 0);
  Bisect(graph, vertices, indices, 0, indices.size(), fanout, 0, assignment);
  return assignment;
}

}  // namespace fannr
