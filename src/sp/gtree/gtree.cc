#include "sp/gtree/gtree.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/flat_heap.h"
#include "engine/thread_pool.h"
#include "graph/index_io.h"
#include "sp/gtree/partition.h"

namespace fannr {

namespace {

using HeapEntry = std::pair<Weight, uint32_t>;
using MinHeap = FlatHeap<HeapEntry>;

}  // namespace

GTree GTree::Build(const Graph& graph, const Options& options,
                   ThreadPool* pool) {
  FANNR_CHECK(options.fanout >= 2 &&
              (options.fanout & (options.fanout - 1)) == 0);
  FANNR_CHECK(options.leaf_capacity >= options.fanout);

  GTree tree;
  tree.graph_ = &graph;
  tree.options_ = options;
  tree.fingerprint_ = graph.Fingerprint();
  tree.build_epoch_ = graph.epoch();
  const size_t n = graph.NumVertices();
  tree.leaf_of_.vec().assign(n, 0);
  tree.leaf_pos_.vec().assign(n, 0);

  // Phase 1: recursive partitioning into the tree structure.
  tree.nodes_.emplace_back();  // root
  struct Frame {
    int32_t node;
    std::vector<VertexId> verts;
  };
  std::vector<Frame> stack;
  {
    std::vector<VertexId> all(n);
    std::iota(all.begin(), all.end(), VertexId{0});
    stack.push_back({0, std::move(all)});
  }
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.verts.size() <= options.leaf_capacity) {
      Node& leaf = tree.nodes_[frame.node];
      leaf.is_leaf = true;
      leaf.vertices = std::move(frame.verts);
      for (size_t pos = 0; pos < leaf.vertices.size(); ++pos) {
        tree.leaf_of_[leaf.vertices[pos]] = frame.node;
        tree.leaf_pos_[leaf.vertices[pos]] = static_cast<uint32_t>(pos);
      }
      continue;
    }
    const std::vector<uint32_t> part =
        MultiwayPartition(graph, frame.verts, options.fanout);
    std::vector<std::vector<VertexId>> parts(options.fanout);
    for (size_t i = 0; i < frame.verts.size(); ++i) {
      parts[part[i]].push_back(frame.verts[i]);
    }
    tree.nodes_[frame.node].is_leaf = false;
    const uint32_t child_depth = tree.nodes_[frame.node].depth + 1;
    for (auto& child_verts : parts) {
      const int32_t child_id = static_cast<int32_t>(tree.nodes_.size());
      tree.nodes_.emplace_back();
      tree.nodes_[child_id].parent = frame.node;
      tree.nodes_[child_id].depth = child_depth;
      tree.nodes_[frame.node].children.vec().push_back(child_id);
      stack.push_back({child_id, std::move(child_verts)});
    }
  }

  // Phase 2: DFS leaf intervals (so "w in subtree of node" is an interval
  // test on the leaf order).
  uint32_t next_leaf = 0;
  std::function<void(int32_t)> assign_intervals = [&](int32_t id) {
    Node& nd = tree.nodes_[id];
    nd.leaf_begin = next_leaf;
    if (nd.is_leaf) {
      ++next_leaf;
    } else {
      for (int32_t c : nd.children) assign_intervals(c);
    }
    nd.leaf_end = next_leaf;
  };
  assign_intervals(0);
  tree.num_leaves_ = next_leaf;

  auto leaf_order_of = [&](VertexId v) {
    return tree.nodes_[tree.leaf_of_[v]].leaf_begin;
  };
  auto in_node = [&](const Node& nd, VertexId w) {
    const uint32_t lo = leaf_order_of(w);
    return lo >= nd.leaf_begin && lo < nd.leaf_end;
  };

  // Phase 3: borders, bottom-up (deepest nodes first). Node ids are
  // created parent-before-child, so reverse id order visits children
  // before parents.
  for (int32_t id = static_cast<int32_t>(tree.nodes_.size()) - 1; id >= 0;
       --id) {
    Node& nd = tree.nodes_[id];
    if (nd.is_leaf) {
      for (VertexId v : nd.vertices) {
        for (const Arc& a : graph.Neighbors(v)) {
          if (!in_node(nd, a.to)) {
            nd.borders.vec().push_back(v);
            break;
          }
        }
      }
    } else {
      // occupants = concat of children borders; node borders are those
      // occupants that still have an edge leaving this node.
      for (int32_t cid : nd.children) {
        Node& child = tree.nodes_[cid];
        child.occ_offset = static_cast<uint32_t>(nd.occupants.size());
        for (size_t bi = 0; bi < child.borders.size(); ++bi) {
          const VertexId v = child.borders[bi];
          const uint32_t occ_pos = static_cast<uint32_t>(
              nd.occupants.size());
          nd.occupants.vec().push_back(v);
          for (const Arc& a : graph.Neighbors(v)) {
            if (!in_node(nd, a.to)) {
              nd.borders.vec().push_back(v);
              nd.border_occ_pos.vec().push_back(occ_pos);
              break;
            }
          }
        }
      }
    }
  }

  // Phases 4-6 do all the matrix work. Each node's matrix is a pure
  // function of already-complete inputs (the graph, its children's
  // matrices, its parent's refined matrix), so nodes of one kind/depth
  // level are independent and may run in any order — including fanned
  // over a pool — with bitwise-identical results.
  std::vector<int32_t> leaf_ids;
  uint32_t max_depth = 0;
  for (const Node& nd : tree.nodes_) max_depth = std::max(max_depth, nd.depth);
  std::vector<std::vector<int32_t>> internal_by_depth(max_depth + 1);
  for (int32_t id = 0; id < static_cast<int32_t>(tree.nodes_.size()); ++id) {
    const Node& nd = tree.nodes_[id];
    if (nd.is_leaf) {
      leaf_ids.push_back(id);
    } else {
      internal_by_depth[nd.depth].push_back(id);
    }
  }
  auto run = [&](const std::vector<int32_t>& ids, auto&& fn) {
    if (pool == nullptr) {
      for (int32_t id : ids) fn(id);
    } else {
      pool->ParallelFor(ids.size(),
                        [&](size_t i, size_t /*worker*/) { fn(ids[i]); });
    }
  };

  // Phase 4: leaf matrices (within-leaf border-to-vertex distances);
  // every leaf independent.
  run(leaf_ids, [&](int32_t id) { tree.ComputeLeafMatrix(tree.nodes_[id]); });

  // Phase 5: bottom-up assembly (within-subgraph distances), one depth
  // level at a time from the deepest up — a node only reads its
  // children's (one level deeper, already complete) matrices.
  for (size_t d = internal_by_depth.size(); d-- > 0;) {
    run(internal_by_depth[d], [&](int32_t id) {
      tree.AssembleInternalMatrix(tree.nodes_[id], /*refine=*/false);
    });
  }

  // Phase 6: top-down refinement (global distances) by increasing
  // depth. A node reads its parent's refined matrix (previous level,
  // complete) and its children's matrices (still the bottom-up
  // within-child versions until the NEXT level runs — exactly what the
  // correctness argument requires), so each level is internally
  // independent. The root's bottom-up matrix is already global.
  for (size_t d = 1; d < internal_by_depth.size(); ++d) {
    run(internal_by_depth[d], [&](int32_t id) {
      tree.AssembleInternalMatrix(tree.nodes_[id], /*refine=*/true);
    });
  }
  return tree;
}

void GTree::ComputeLeafMatrix(Node& leaf) {
  const size_t cols = leaf.vertices.size();
  leaf.matrix.vec().assign(leaf.borders.size() * cols, kInfWeight);
  for (size_t row = 0; row < leaf.borders.size(); ++row) {
    std::vector<Weight> dist =
        WithinLeafDistancesImpl(leaf, leaf.borders[row]);
    std::copy(dist.begin(), dist.end(), leaf.matrix.data() + row * cols);
  }
}

std::vector<Weight> GTree::WithinLeafDistances(int32_t leaf,
                                               VertexId source) const {
  FANNR_CHECK(leaf_of_[source] == leaf);
  return WithinLeafDistancesImpl(nodes_[leaf], source);
}

std::vector<Weight> GTree::WithinLeafDistancesImpl(const Node& leaf,
                                                   VertexId source) const {
  const int32_t leaf_id = leaf_of_[source];
  std::vector<Weight> dist(leaf.vertices.size(), kInfWeight);
  MinHeap heap;
  dist[leaf_pos_[source]] = 0.0;
  heap.push({0.0, leaf_pos_[source]});
  while (!heap.empty()) {
    auto [d, pos] = heap.top();
    heap.pop();
    if (d > dist[pos]) continue;
    const VertexId u = leaf.vertices[pos];
    for (const Arc& a : graph_->Neighbors(u)) {
      if (leaf_of_[a.to] != leaf_id) continue;  // stay inside the leaf
      const uint32_t npos = leaf_pos_[a.to];
      const Weight nd = d + a.weight;
      if (nd < dist[npos]) {
        dist[npos] = nd;
        heap.push({nd, npos});
      }
    }
  }
  return dist;
}

void GTree::AssembleInternalMatrix(Node& nd, bool refine) {
  const size_t m = nd.occupants.size();
  nd.matrix.vec().assign(m * m, kInfWeight);
  if (m == 0) return;

  std::unordered_map<VertexId, uint32_t> occ_index;
  occ_index.reserve(m * 2);
  for (uint32_t i = 0; i < m; ++i) occ_index.emplace(nd.occupants[i], i);

  // Super-graph over occupants.
  std::vector<std::vector<std::pair<uint32_t, Weight>>> adj(m);
  auto add_edge = [&](uint32_t a, uint32_t b, Weight w) {
    if (w == kInfWeight || a == b) return;
    adj[a].push_back({b, w});
    adj[b].push_back({a, w});
  };

  // (i) Within-child cliques from children's matrices.
  for (int32_t cid : nd.children) {
    const Node& child = nodes_[cid];
    const size_t nb = child.borders.size();
    for (size_t i = 0; i < nb; ++i) {
      for (size_t j = i + 1; j < nb; ++j) {
        const Weight w =
            child.is_leaf
                ? child.MatrixAt(i, leaf_pos_[child.borders[j]])
                : child.MatrixAt(child.border_occ_pos[i],
                                 child.border_occ_pos[j]);
        add_edge(child.occ_offset + static_cast<uint32_t>(i),
                 child.occ_offset + static_cast<uint32_t>(j), w);
      }
    }
  }

  // (ii) Original edges between occupants (covers all child-to-child
  // connections inside this node; same-child duplicates are harmless).
  for (uint32_t i = 0; i < m; ++i) {
    for (const Arc& a : graph_->Neighbors(nd.occupants[i])) {
      auto it = occ_index.find(a.to);
      if (it != occ_index.end() && it->second > i) {
        add_edge(i, it->second, a.weight);
      }
    }
  }

  // (iii) Refinement: global shortcuts among this node's borders from the
  // parent's (already refined) matrix, covering paths that leave this
  // node's subgraph and come back.
  if (refine && nd.parent >= 0) {
    const Node& parent = nodes_[nd.parent];
    const size_t nb = nd.borders.size();
    for (size_t i = 0; i < nb; ++i) {
      for (size_t j = i + 1; j < nb; ++j) {
        const Weight w = parent.MatrixAt(nd.occ_offset + i,
                                         nd.occ_offset + j);
        add_edge(nd.border_occ_pos[i], nd.border_occ_pos[j], w);
      }
    }
  }

  // All-pairs over the super-graph: one Dijkstra per occupant.
  std::vector<Weight> dist(m);
  for (uint32_t src = 0; src < m; ++src) {
    std::fill(dist.begin(), dist.end(), kInfWeight);
    MinHeap heap;
    dist[src] = 0.0;
    heap.push({0.0, src});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        if (d + w < dist[v]) {
          dist[v] = d + w;
          heap.push({d + w, v});
        }
      }
    }
    std::copy(dist.begin(), dist.end(), nd.matrix.data() + src * m);
  }
}

Weight GTree::Distance(VertexId u, VertexId v) const {
  FANNR_CHECK(u < graph_->NumVertices() && v < graph_->NumVertices());
  if (u == v) return 0.0;
  const int32_t lu = leaf_of_[u];
  const int32_t lv = leaf_of_[v];

  if (lu == lv) {
    // Same leaf: best of a pure within-leaf path and a path that exits
    // through border b1 and re-enters through border b2 (the global
    // border-to-border distance comes from the parent's refined matrix).
    const Node& leaf = nodes_[lu];
    const std::vector<Weight> within = WithinLeafDistancesImpl(leaf, u);
    Weight best = within[leaf_pos_[v]];
    if (leaf.parent >= 0 && !leaf.borders.empty()) {
      const Node& parent = nodes_[leaf.parent];
      const size_t nb = leaf.borders.size();
      for (size_t j = 0; j < nb; ++j) {
        // Exact global distance from u to border j.
        Weight dj = kInfWeight;
        for (size_t i = 0; i < nb; ++i) {
          const Weight wi = within[leaf_pos_[leaf.borders[i]]];
          if (wi == kInfWeight) continue;
          const Weight mid = parent.MatrixAt(leaf.occ_offset + i,
                                             leaf.occ_offset + j);
          if (mid == kInfWeight) continue;
          dj = std::min(dj, wi + mid);
        }
        const Weight back = leaf.MatrixAt(j, leaf_pos_[v]);
        if (dj != kInfWeight && back != kInfWeight) {
          best = std::min(best, dj + back);
        }
      }
    }
    return best;
  }

  // Find the lowest common ancestor.
  int32_t a = lu, b = lv;
  while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
  while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  const int32_t lca = a;

  // Sweep from a leaf up to the child of the LCA, maintaining exact
  // distances from the endpoint to the current node's borders.
  auto sweep = [&](int32_t leaf_id, VertexId endpoint)
      -> std::pair<int32_t, std::vector<Weight>> {
    const Node& leaf = nodes_[leaf_id];
    std::vector<Weight> d(leaf.borders.size(), kInfWeight);
    for (size_t i = 0; i < leaf.borders.size(); ++i) {
      d[i] = leaf.MatrixAt(i, leaf_pos_[endpoint]);
    }
    int32_t cur = leaf_id;
    while (nodes_[cur].parent != lca) {
      const int32_t parent_id = nodes_[cur].parent;
      const Node& cur_node = nodes_[cur];
      const Node& parent = nodes_[parent_id];
      std::vector<Weight> nd(parent.borders.size(), kInfWeight);
      for (size_t j = 0; j < parent.borders.size(); ++j) {
        for (size_t i = 0; i < cur_node.borders.size(); ++i) {
          if (d[i] == kInfWeight) continue;
          const Weight mid = parent.MatrixAt(cur_node.occ_offset + i,
                                             parent.border_occ_pos[j]);
          if (mid == kInfWeight) continue;
          nd[j] = std::min(nd[j], d[i] + mid);
        }
      }
      d = std::move(nd);
      cur = parent_id;
    }
    return {cur, std::move(d)};
  };

  const auto [cu, du] = sweep(lu, u);
  const auto [cv, dv] = sweep(lv, v);
  const Node& top = nodes_[lca];
  const Node& child_u = nodes_[cu];
  const Node& child_v = nodes_[cv];
  Weight best = kInfWeight;
  for (size_t i = 0; i < du.size(); ++i) {
    if (du[i] == kInfWeight) continue;
    for (size_t j = 0; j < dv.size(); ++j) {
      if (dv[j] == kInfWeight) continue;
      const Weight mid = top.MatrixAt(child_u.occ_offset + i,
                                      child_v.occ_offset + j);
      if (mid == kInfWeight) continue;
      best = std::min(best, du[i] + mid + dv[j]);
    }
  }
  return best;
}

GTree::SourceOracle::SourceOracle(const GTree& tree, VertexId source)
    : tree_(tree), source_(source) {
  FANNR_CHECK(source < tree.graph().NumVertices());
  source_leaf_ = tree.leaf_of_[source];
  leaf_depth_ = tree.nodes_[source_leaf_].depth;
  within_ = tree.WithinLeafDistancesImpl(tree.nodes_[source_leaf_], source);

  // Precompute the source-side sweep for every ancestor level.
  int32_t cur = source_leaf_;
  const Node& leaf = tree.nodes_[source_leaf_];
  std::vector<Weight> d(leaf.borders.size(), kInfWeight);
  for (size_t i = 0; i < leaf.borders.size(); ++i) {
    d[i] = leaf.MatrixAt(i, tree.leaf_pos_[source]);
  }
  path_.push_back(cur);
  du_.push_back(d);
  while (tree.nodes_[cur].parent >= 0) {
    const int32_t parent_id = tree.nodes_[cur].parent;
    const Node& cur_node = tree.nodes_[cur];
    const Node& parent = tree.nodes_[parent_id];
    std::vector<Weight> nd(parent.borders.size(), kInfWeight);
    for (size_t j = 0; j < parent.borders.size(); ++j) {
      for (size_t i = 0; i < cur_node.borders.size(); ++i) {
        if (d[i] == kInfWeight) continue;
        const Weight mid = parent.MatrixAt(cur_node.occ_offset + i,
                                           parent.border_occ_pos[j]);
        if (mid == kInfWeight) continue;
        nd[j] = std::min(nd[j], d[i] + mid);
      }
    }
    d = nd;
    cur = parent_id;
    path_.push_back(cur);
    du_.push_back(d);
  }
}

Weight GTree::SourceOracle::DistanceTo(VertexId target) const {
  const GTree& tree = tree_;
  if (target == source_) return 0.0;
  const int32_t lv = tree.leaf_of_[target];

  if (lv == source_leaf_) {
    // Same leaf: reuse the precomputed within-leaf distances.
    const Node& leaf = tree.nodes_[source_leaf_];
    Weight best = within_[tree.leaf_pos_[target]];
    if (leaf.parent >= 0 && !leaf.borders.empty()) {
      const Node& parent = tree.nodes_[leaf.parent];
      const size_t nb = leaf.borders.size();
      for (size_t j = 0; j < nb; ++j) {
        Weight dj = kInfWeight;
        for (size_t i = 0; i < nb; ++i) {
          const Weight wi = within_[tree.leaf_pos_[leaf.borders[i]]];
          if (wi == kInfWeight) continue;
          const Weight mid = parent.MatrixAt(leaf.occ_offset + i,
                                             leaf.occ_offset + j);
          if (mid == kInfWeight) continue;
          dj = std::min(dj, wi + mid);
        }
        const Weight back = leaf.MatrixAt(j, tree.leaf_pos_[target]);
        if (dj != kInfWeight && back != kInfWeight) {
          best = std::min(best, dj + back);
        }
      }
    }
    return best;
  }

  // LCA of the two leaves.
  int32_t a = source_leaf_, b = lv;
  while (tree.nodes_[a].depth > tree.nodes_[b].depth) {
    a = tree.nodes_[a].parent;
  }
  while (tree.nodes_[b].depth > tree.nodes_[a].depth) {
    b = tree.nodes_[b].parent;
  }
  while (a != b) {
    a = tree.nodes_[a].parent;
    b = tree.nodes_[b].parent;
  }
  const int32_t lca = a;
  const uint32_t lca_depth = tree.nodes_[lca].depth;
  // Source-side child of the LCA sits at index (leaf_depth - lca_depth -
  // 1) on the precomputed path (path depths decrease by one per step).
  const size_t si = leaf_depth_ - lca_depth - 1;
  FANNR_DCHECK(si < path_.size() &&
               tree.nodes_[path_[si]].parent == lca);

  // Target-side sweep up to the child of the LCA.
  const Node& target_leaf = tree.nodes_[lv];
  std::vector<Weight> dv(target_leaf.borders.size(), kInfWeight);
  for (size_t i = 0; i < target_leaf.borders.size(); ++i) {
    dv[i] = target_leaf.MatrixAt(i, tree.leaf_pos_[target]);
  }
  int32_t cur = lv;
  while (tree.nodes_[cur].parent != lca) {
    const int32_t parent_id = tree.nodes_[cur].parent;
    const Node& cur_node = tree.nodes_[cur];
    const Node& parent = tree.nodes_[parent_id];
    std::vector<Weight> nd(parent.borders.size(), kInfWeight);
    for (size_t j = 0; j < parent.borders.size(); ++j) {
      for (size_t i = 0; i < cur_node.borders.size(); ++i) {
        if (dv[i] == kInfWeight) continue;
        const Weight mid = parent.MatrixAt(cur_node.occ_offset + i,
                                           parent.border_occ_pos[j]);
        if (mid == kInfWeight) continue;
        nd[j] = std::min(nd[j], dv[i] + mid);
      }
    }
    dv = std::move(nd);
    cur = parent_id;
  }

  const Node& top = tree.nodes_[lca];
  const Node& child_u = tree.nodes_[path_[si]];
  const Node& child_v = tree.nodes_[cur];
  const std::vector<Weight>& du = du_[si];
  Weight best = kInfWeight;
  for (size_t i = 0; i < du.size(); ++i) {
    if (du[i] == kInfWeight) continue;
    for (size_t j = 0; j < dv.size(); ++j) {
      if (dv[j] == kInfWeight) continue;
      const Weight mid = top.MatrixAt(child_u.occ_offset + i,
                                      child_v.occ_offset + j);
      if (mid == kInfWeight) continue;
      best = std::min(best, du[i] + mid + dv[j]);
    }
  }
  return best;
}

namespace {

constexpr uint64_t kGTreeMagic = 0xFA22A81A67BEE002ULL;

// POD mirrors of the v3 scalar/meta sections (see SaveV3 below).
struct GTreeParamsPod {
  uint64_t fanout;
  uint64_t leaf_capacity;
  uint64_t num_leaves;
  uint64_t num_nodes;
};
static_assert(sizeof(GTreeParamsPod) == 32);

struct GTreeNodePod {
  int32_t parent;
  uint32_t depth;
  uint32_t is_leaf;
  uint32_t occ_offset;
  uint32_t leaf_begin;
  uint32_t leaf_end;
};
static_assert(sizeof(GTreeNodePod) == 24);

// Structural checks shared by Load and LoadMmap: every array reference
// that Distance(), SourceOracle and the kNN engine follow without
// bounds checks must be internally consistent, so a corrupt payload can
// never cause an out-of-range read or a non-terminating parent walk.
bool ValidTreeStructure(size_t vertices,
                        const std::vector<GTree::Node>& nodes,
                        const Column<int32_t>& leaf_of,
                        const Column<uint32_t>& leaf_pos) {
  if (leaf_of.size() != vertices || leaf_pos.size() != vertices) return false;
  const size_t n = nodes.size();
  if (n == 0) return vertices == 0;
  for (size_t id = 0; id < n; ++id) {
    const GTree::Node& nd = nodes[id];
    if (id == 0) {
      if (nd.parent != -1 || nd.depth != 0) return false;
    } else {
      // Parents precede their children and sit one level up, so every
      // upward walk strictly decreases depth and terminates at node 0.
      if (nd.parent < 0 || static_cast<size_t>(nd.parent) >= id) return false;
      if (nd.depth != nodes[nd.parent].depth + 1) return false;
      // The node's border rows live at [occ_offset, occ_offset + |B|)
      // inside the parent's occupant-indexed matrix.
      if (uint64_t{nd.occ_offset} + nd.borders.size() >
          nodes[nd.parent].occupants.size()) {
        return false;
      }
    }
    for (VertexId b : nd.borders) {
      if (b >= vertices) return false;
    }
    if (nd.is_leaf) {
      if (!nd.children.empty()) return false;
      for (VertexId v : nd.vertices) {
        if (v >= vertices) return false;
      }
      // Leaf border rows index within[] arrays sized by the leaf's own
      // vertex list, so each border must be a member of this leaf.
      for (VertexId b : nd.borders) {
        if (static_cast<size_t>(leaf_of[b]) != id) return false;
      }
      const uint64_t rows = nd.borders.size();
      const uint64_t cols = nd.vertices.size();
      if (rows != 0 && cols != 0) {
        if (nd.matrix.size() % rows != 0 || nd.matrix.size() / rows != cols) {
          return false;
        }
      } else if (!nd.matrix.empty()) {
        return false;
      }
    } else {
      const uint64_t m = nd.occupants.size();
      if (m == 0) {
        if (!nd.matrix.empty()) return false;
      } else if (nd.matrix.size() % m != 0 || nd.matrix.size() / m != m) {
        return false;
      }
      if (nd.border_occ_pos.size() != nd.borders.size()) return false;
      for (uint32_t pos : nd.border_occ_pos) {
        if (pos >= m) return false;
      }
      for (int32_t cid : nd.children) {
        if (cid <= 0 || static_cast<size_t>(cid) >= n) return false;
      }
    }
  }
  // Per-vertex leaf references must land on a real leaf at a valid
  // position — queries follow them without bounds checks.
  for (size_t v = 0; v < vertices; ++v) {
    const int32_t leaf = leaf_of[v];
    if (leaf < 0 || static_cast<size_t>(leaf) >= n) return false;
    const GTree::Node& nd = nodes[leaf];
    if (!nd.is_leaf || leaf_pos[v] >= nd.vertices.size()) return false;
  }
  return true;
}

}  // namespace

bool GTree::Save(std::ostream& out) const {
  BinaryWriter w(out);
  WriteIndexHeader(w, kGTreeMagic, fingerprint_);
  w.Pod<uint64_t>(options_.fanout);
  w.Pod<uint64_t>(options_.leaf_capacity);
  w.Pod<uint64_t>(num_leaves_);
  w.Span(leaf_of_.data(), leaf_of_.size());
  w.Span(leaf_pos_.data(), leaf_pos_.size());
  w.Pod<uint64_t>(nodes_.size());
  for (const Node& nd : nodes_) {
    w.Pod(nd.parent);
    w.Pod(nd.depth);
    w.Pod<uint8_t>(nd.is_leaf ? 1 : 0);
    w.Pod(nd.occ_offset);
    w.Pod(nd.leaf_begin);
    w.Pod(nd.leaf_end);
    w.Span(nd.children.data(), nd.children.size());
    w.Span(nd.vertices.data(), nd.vertices.size());
    w.Span(nd.borders.data(), nd.borders.size());
    w.Span(nd.occupants.data(), nd.occupants.size());
    w.Span(nd.border_occ_pos.data(), nd.border_occ_pos.size());
    w.Span(nd.matrix.data(), nd.matrix.size());
  }
  return w.ok();
}

std::optional<GTree> GTree::Load(const Graph& graph, std::istream& in) {
  BinaryReader r(in);
  uint64_t fanout = 0, leaf_capacity = 0, num_leaves = 0, num_nodes = 0;
  if (!ReadIndexHeader(r, kGTreeMagic, graph.Fingerprint())) {
    return std::nullopt;
  }
  const uint64_t vertices = graph.NumVertices();
  GTree tree;
  tree.graph_ = &graph;
  tree.fingerprint_ = graph.Fingerprint();
  tree.build_epoch_ = graph.epoch();
  if (!r.Pod(fanout) || !r.Pod(leaf_capacity) || !r.Pod(num_leaves)) {
    return std::nullopt;
  }
  tree.options_.fanout = fanout;
  tree.options_.leaf_capacity = leaf_capacity;
  tree.num_leaves_ = num_leaves;
  if (!r.Vec(tree.leaf_of_.vec()) || !r.Vec(tree.leaf_pos_.vec()) ||
      !r.Pod(num_nodes)) {
    return std::nullopt;
  }
  tree.nodes_.resize(num_nodes);
  for (Node& nd : tree.nodes_) {
    uint8_t is_leaf = 0;
    if (!r.Pod(nd.parent) || !r.Pod(nd.depth) || !r.Pod(is_leaf) ||
        !r.Pod(nd.occ_offset) || !r.Pod(nd.leaf_begin) ||
        !r.Pod(nd.leaf_end) || !r.Vec(nd.children.vec()) ||
        !r.Vec(nd.vertices.vec()) || !r.Vec(nd.borders.vec()) ||
        !r.Vec(nd.occupants.vec()) || !r.Vec(nd.border_occ_pos.vec()) ||
        !r.Vec(nd.matrix.vec())) {
      return std::nullopt;
    }
    nd.is_leaf = is_leaf != 0;
  }
  if (!ValidTreeStructure(vertices, tree.nodes_, tree.leaf_of_,
                          tree.leaf_pos_)) {
    return std::nullopt;
  }
  return tree;
}

bool GTree::SaveV3(const std::string& path) const {
  // Sixteen sections: params, leaf_of, leaf_pos, node metas, then a
  // (u64 prefix-offset array of length num_nodes + 1, concatenated
  // payload) pair per ragged per-node field. LoadMmap borrows node i's
  // slice as payload[offs[i], offs[i + 1]).
  const size_t n = nodes_.size();
  std::vector<GTreeNodePod> metas;
  metas.reserve(n);
  std::vector<uint64_t> children_off(1, 0), vertices_off(1, 0),
      borders_off(1, 0), occupants_off(1, 0), bop_off(1, 0), matrix_off(1, 0);
  std::vector<int32_t> children_all;
  std::vector<VertexId> vertices_all, borders_all, occupants_all;
  std::vector<uint32_t> bop_all;
  std::vector<Weight> matrix_all;
  for (const Node& nd : nodes_) {
    metas.push_back({nd.parent, nd.depth, nd.is_leaf ? 1u : 0u,
                     nd.occ_offset, nd.leaf_begin, nd.leaf_end});
    children_all.insert(children_all.end(), nd.children.begin(),
                        nd.children.end());
    vertices_all.insert(vertices_all.end(), nd.vertices.begin(),
                        nd.vertices.end());
    borders_all.insert(borders_all.end(), nd.borders.begin(),
                       nd.borders.end());
    occupants_all.insert(occupants_all.end(), nd.occupants.begin(),
                         nd.occupants.end());
    bop_all.insert(bop_all.end(), nd.border_occ_pos.begin(),
                   nd.border_occ_pos.end());
    matrix_all.insert(matrix_all.end(), nd.matrix.begin(), nd.matrix.end());
    children_off.push_back(children_all.size());
    vertices_off.push_back(vertices_all.size());
    borders_off.push_back(borders_all.size());
    occupants_off.push_back(occupants_all.size());
    bop_off.push_back(bop_all.size());
    matrix_off.push_back(matrix_all.size());
  }
  ArenaWriter w;
  w.AddScalar(GTreeParamsPod{options_.fanout, options_.leaf_capacity,
                             num_leaves_, n});
  w.Add(leaf_of_);
  w.Add(leaf_pos_);
  w.Add(metas);
  w.Add(children_off);
  w.Add(children_all);
  w.Add(vertices_off);
  w.Add(vertices_all);
  w.Add(borders_off);
  w.Add(borders_all);
  w.Add(occupants_off);
  w.Add(occupants_all);
  w.Add(bop_off);
  w.Add(bop_all);
  w.Add(matrix_off);
  w.Add(matrix_all);
  return w.Write(path, kGTreeMagic, fingerprint_);
}

std::optional<GTree> GTree::LoadMmap(const Graph& graph,
                                     const std::string& path,
                                     ArenaValidation validation) {
  auto arena = ArenaFile::Open(path, kGTreeMagic, validation);
  if (!arena || arena->fingerprint() != graph.Fingerprint() ||
      arena->NumSections() != 16) {
    return std::nullopt;
  }
  GTreeParamsPod params{};
  if (!arena->ReadScalar(0, params)) return std::nullopt;
  const size_t n = params.num_nodes;

  GTree tree;
  tree.graph_ = &graph;
  tree.options_.fanout = params.fanout;
  tree.options_.leaf_capacity = params.leaf_capacity;
  tree.num_leaves_ = params.num_leaves;
  tree.fingerprint_ = graph.Fingerprint();
  tree.build_epoch_ = graph.epoch();

  size_t count = 0;
  int32_t* leaf_of = arena->SectionArray<int32_t>(1, count);
  if (leaf_of == nullptr) return std::nullopt;
  tree.leaf_of_ = Column<int32_t>::Borrow(leaf_of, count);
  uint32_t* leaf_pos = arena->SectionArray<uint32_t>(2, count);
  if (leaf_pos == nullptr) return std::nullopt;
  tree.leaf_pos_ = Column<uint32_t>::Borrow(leaf_pos, count);
  GTreeNodePod* metas = arena->SectionArray<GTreeNodePod>(3, count);
  if (metas == nullptr || count != n) return std::nullopt;

  // Each ragged field: the prefix array must have num_nodes + 1 entries,
  // start at zero, grow monotonically, and end exactly at the payload
  // count — then every per-node slice is a valid in-bounds view.
  tree.nodes_.resize(n);
  auto borrow_field = [&](size_t off_section, auto tag,
                          auto member) -> bool {
    using Elem = decltype(tag);
    size_t off_count = 0;
    const uint64_t* offs =
        arena->SectionArray<uint64_t>(off_section, off_count);
    if (offs == nullptr || off_count != n + 1) return false;
    size_t payload_count = 0;
    Elem* payload = arena->SectionArray<Elem>(off_section + 1, payload_count);
    if (payload == nullptr) return false;
    if (offs[0] != 0 || offs[n] != payload_count) return false;
    for (size_t i = 0; i < n; ++i) {
      if (offs[i] > offs[i + 1]) return false;
      tree.nodes_[i].*member = Column<Elem>::Borrow(
          payload + offs[i], static_cast<size_t>(offs[i + 1] - offs[i]));
    }
    return true;
  };
  if (!borrow_field(4, int32_t{}, &Node::children) ||
      !borrow_field(6, VertexId{}, &Node::vertices) ||
      !borrow_field(8, VertexId{}, &Node::borders) ||
      !borrow_field(10, VertexId{}, &Node::occupants) ||
      !borrow_field(12, uint32_t{}, &Node::border_occ_pos) ||
      !borrow_field(14, Weight{}, &Node::matrix)) {
    return std::nullopt;
  }
  for (size_t i = 0; i < n; ++i) {
    Node& nd = tree.nodes_[i];
    nd.parent = metas[i].parent;
    nd.depth = metas[i].depth;
    nd.is_leaf = metas[i].is_leaf != 0;
    nd.occ_offset = metas[i].occ_offset;
    nd.leaf_begin = metas[i].leaf_begin;
    nd.leaf_end = metas[i].leaf_end;
  }
  if (!ValidTreeStructure(graph.NumVertices(), tree.nodes_, tree.leaf_of_,
                          tree.leaf_pos_)) {
    return std::nullopt;
  }
  tree.arena_ = std::make_shared<ArenaFile>(std::move(*arena));
  return tree;
}

size_t GTree::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node) + leaf_of_.memory_bytes() +
                 leaf_pos_.memory_bytes();
  for (const Node& nd : nodes_) {
    bytes += nd.children.memory_bytes() + nd.vertices.memory_bytes() +
             nd.borders.memory_bytes() + nd.occupants.memory_bytes() +
             nd.border_occ_pos.memory_bytes() + nd.matrix.memory_bytes();
  }
  return bytes;
}

}  // namespace fannr
