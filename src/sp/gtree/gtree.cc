#include "sp/gtree/gtree.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/flat_heap.h"
#include "graph/index_io.h"
#include "sp/gtree/partition.h"

namespace fannr {

namespace {

using HeapEntry = std::pair<Weight, uint32_t>;
using MinHeap = FlatHeap<HeapEntry>;

}  // namespace

GTree GTree::Build(const Graph& graph, const Options& options) {
  FANNR_CHECK(options.fanout >= 2 &&
              (options.fanout & (options.fanout - 1)) == 0);
  FANNR_CHECK(options.leaf_capacity >= options.fanout);

  GTree tree;
  tree.graph_ = &graph;
  tree.options_ = options;
  tree.fingerprint_ = graph.Fingerprint();
  tree.build_epoch_ = graph.epoch();
  const size_t n = graph.NumVertices();
  tree.leaf_of_.assign(n, 0);
  tree.leaf_pos_.assign(n, 0);

  // Phase 1: recursive partitioning into the tree structure.
  tree.nodes_.emplace_back();  // root
  struct Frame {
    int32_t node;
    std::vector<VertexId> verts;
  };
  std::vector<Frame> stack;
  {
    std::vector<VertexId> all(n);
    std::iota(all.begin(), all.end(), VertexId{0});
    stack.push_back({0, std::move(all)});
  }
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.verts.size() <= options.leaf_capacity) {
      Node& leaf = tree.nodes_[frame.node];
      leaf.is_leaf = true;
      leaf.vertices = std::move(frame.verts);
      for (size_t pos = 0; pos < leaf.vertices.size(); ++pos) {
        tree.leaf_of_[leaf.vertices[pos]] = frame.node;
        tree.leaf_pos_[leaf.vertices[pos]] = static_cast<uint32_t>(pos);
      }
      continue;
    }
    const std::vector<uint32_t> part =
        MultiwayPartition(graph, frame.verts, options.fanout);
    std::vector<std::vector<VertexId>> parts(options.fanout);
    for (size_t i = 0; i < frame.verts.size(); ++i) {
      parts[part[i]].push_back(frame.verts[i]);
    }
    tree.nodes_[frame.node].is_leaf = false;
    const uint32_t child_depth = tree.nodes_[frame.node].depth + 1;
    for (auto& child_verts : parts) {
      const int32_t child_id = static_cast<int32_t>(tree.nodes_.size());
      tree.nodes_.emplace_back();
      tree.nodes_[child_id].parent = frame.node;
      tree.nodes_[child_id].depth = child_depth;
      tree.nodes_[frame.node].children.push_back(child_id);
      stack.push_back({child_id, std::move(child_verts)});
    }
  }

  // Phase 2: DFS leaf intervals (so "w in subtree of node" is an interval
  // test on the leaf order).
  uint32_t next_leaf = 0;
  std::function<void(int32_t)> assign_intervals = [&](int32_t id) {
    Node& nd = tree.nodes_[id];
    nd.leaf_begin = next_leaf;
    if (nd.is_leaf) {
      ++next_leaf;
    } else {
      for (int32_t c : nd.children) assign_intervals(c);
    }
    nd.leaf_end = next_leaf;
  };
  assign_intervals(0);
  tree.num_leaves_ = next_leaf;

  auto leaf_order_of = [&](VertexId v) {
    return tree.nodes_[tree.leaf_of_[v]].leaf_begin;
  };
  auto in_node = [&](const Node& nd, VertexId w) {
    const uint32_t lo = leaf_order_of(w);
    return lo >= nd.leaf_begin && lo < nd.leaf_end;
  };

  // Phase 3: borders, bottom-up (deepest nodes first). Node ids are
  // created parent-before-child, so reverse id order visits children
  // before parents.
  for (int32_t id = static_cast<int32_t>(tree.nodes_.size()) - 1; id >= 0;
       --id) {
    Node& nd = tree.nodes_[id];
    if (nd.is_leaf) {
      for (VertexId v : nd.vertices) {
        for (const Arc& a : graph.Neighbors(v)) {
          if (!in_node(nd, a.to)) {
            nd.borders.push_back(v);
            break;
          }
        }
      }
    } else {
      // occupants = concat of children borders; node borders are those
      // occupants that still have an edge leaving this node.
      for (int32_t cid : nd.children) {
        Node& child = tree.nodes_[cid];
        child.occ_offset = static_cast<uint32_t>(nd.occupants.size());
        for (size_t bi = 0; bi < child.borders.size(); ++bi) {
          const VertexId v = child.borders[bi];
          const uint32_t occ_pos = static_cast<uint32_t>(
              nd.occupants.size());
          nd.occupants.push_back(v);
          for (const Arc& a : graph.Neighbors(v)) {
            if (!in_node(nd, a.to)) {
              nd.borders.push_back(v);
              nd.border_occ_pos.push_back(occ_pos);
              break;
            }
          }
        }
      }
    }
  }

  // Phase 4: leaf matrices (within-leaf border-to-vertex distances).
  for (Node& nd : tree.nodes_) {
    if (nd.is_leaf) tree.ComputeLeafMatrix(nd);
  }

  // Phase 5: bottom-up assembly (within-subgraph distances).
  for (int32_t id = static_cast<int32_t>(tree.nodes_.size()) - 1; id >= 0;
       --id) {
    if (!tree.nodes_[id].is_leaf) {
      tree.AssembleInternalMatrix(tree.nodes_[id], /*refine=*/false);
    }
  }

  // Phase 6: top-down refinement (global distances). Parents are refined
  // before their children; children's matrices read during a node's
  // refinement are still the bottom-up within-child versions, as the
  // correctness argument requires.
  std::vector<int32_t> by_depth(tree.nodes_.size());
  std::iota(by_depth.begin(), by_depth.end(), 0);
  std::stable_sort(by_depth.begin(), by_depth.end(),
                   [&](int32_t a, int32_t b) {
                     return tree.nodes_[a].depth < tree.nodes_[b].depth;
                   });
  for (int32_t id : by_depth) {
    Node& nd = tree.nodes_[id];
    if (!nd.is_leaf && nd.parent >= 0) {
      tree.AssembleInternalMatrix(nd, /*refine=*/true);
    }
  }
  return tree;
}

void GTree::ComputeLeafMatrix(Node& leaf) {
  const size_t cols = leaf.vertices.size();
  leaf.matrix.assign(leaf.borders.size() * cols, kInfWeight);
  for (size_t row = 0; row < leaf.borders.size(); ++row) {
    std::vector<Weight> dist =
        WithinLeafDistancesImpl(leaf, leaf.borders[row]);
    std::copy(dist.begin(), dist.end(), leaf.matrix.begin() + row * cols);
  }
}

std::vector<Weight> GTree::WithinLeafDistances(int32_t leaf,
                                               VertexId source) const {
  FANNR_CHECK(leaf_of_[source] == leaf);
  return WithinLeafDistancesImpl(nodes_[leaf], source);
}

std::vector<Weight> GTree::WithinLeafDistancesImpl(const Node& leaf,
                                                   VertexId source) const {
  const int32_t leaf_id = leaf_of_[source];
  std::vector<Weight> dist(leaf.vertices.size(), kInfWeight);
  MinHeap heap;
  dist[leaf_pos_[source]] = 0.0;
  heap.push({0.0, leaf_pos_[source]});
  while (!heap.empty()) {
    auto [d, pos] = heap.top();
    heap.pop();
    if (d > dist[pos]) continue;
    const VertexId u = leaf.vertices[pos];
    for (const Arc& a : graph_->Neighbors(u)) {
      if (leaf_of_[a.to] != leaf_id) continue;  // stay inside the leaf
      const uint32_t npos = leaf_pos_[a.to];
      const Weight nd = d + a.weight;
      if (nd < dist[npos]) {
        dist[npos] = nd;
        heap.push({nd, npos});
      }
    }
  }
  return dist;
}

void GTree::AssembleInternalMatrix(Node& nd, bool refine) {
  const size_t m = nd.occupants.size();
  nd.matrix.assign(m * m, kInfWeight);
  if (m == 0) return;

  std::unordered_map<VertexId, uint32_t> occ_index;
  occ_index.reserve(m * 2);
  for (uint32_t i = 0; i < m; ++i) occ_index.emplace(nd.occupants[i], i);

  // Super-graph over occupants.
  std::vector<std::vector<std::pair<uint32_t, Weight>>> adj(m);
  auto add_edge = [&](uint32_t a, uint32_t b, Weight w) {
    if (w == kInfWeight || a == b) return;
    adj[a].push_back({b, w});
    adj[b].push_back({a, w});
  };

  // (i) Within-child cliques from children's matrices.
  for (int32_t cid : nd.children) {
    const Node& child = nodes_[cid];
    const size_t nb = child.borders.size();
    for (size_t i = 0; i < nb; ++i) {
      for (size_t j = i + 1; j < nb; ++j) {
        const Weight w =
            child.is_leaf
                ? child.MatrixAt(i, leaf_pos_[child.borders[j]])
                : child.MatrixAt(child.border_occ_pos[i],
                                 child.border_occ_pos[j]);
        add_edge(child.occ_offset + static_cast<uint32_t>(i),
                 child.occ_offset + static_cast<uint32_t>(j), w);
      }
    }
  }

  // (ii) Original edges between occupants (covers all child-to-child
  // connections inside this node; same-child duplicates are harmless).
  for (uint32_t i = 0; i < m; ++i) {
    for (const Arc& a : graph_->Neighbors(nd.occupants[i])) {
      auto it = occ_index.find(a.to);
      if (it != occ_index.end() && it->second > i) {
        add_edge(i, it->second, a.weight);
      }
    }
  }

  // (iii) Refinement: global shortcuts among this node's borders from the
  // parent's (already refined) matrix, covering paths that leave this
  // node's subgraph and come back.
  if (refine && nd.parent >= 0) {
    const Node& parent = nodes_[nd.parent];
    const size_t nb = nd.borders.size();
    for (size_t i = 0; i < nb; ++i) {
      for (size_t j = i + 1; j < nb; ++j) {
        const Weight w = parent.MatrixAt(nd.occ_offset + i,
                                         nd.occ_offset + j);
        add_edge(nd.border_occ_pos[i], nd.border_occ_pos[j], w);
      }
    }
  }

  // All-pairs over the super-graph: one Dijkstra per occupant.
  std::vector<Weight> dist(m);
  for (uint32_t src = 0; src < m; ++src) {
    std::fill(dist.begin(), dist.end(), kInfWeight);
    MinHeap heap;
    dist[src] = 0.0;
    heap.push({0.0, src});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        if (d + w < dist[v]) {
          dist[v] = d + w;
          heap.push({d + w, v});
        }
      }
    }
    std::copy(dist.begin(), dist.end(), nd.matrix.begin() + src * m);
  }
}

Weight GTree::Distance(VertexId u, VertexId v) const {
  FANNR_CHECK(u < graph_->NumVertices() && v < graph_->NumVertices());
  if (u == v) return 0.0;
  const int32_t lu = leaf_of_[u];
  const int32_t lv = leaf_of_[v];

  if (lu == lv) {
    // Same leaf: best of a pure within-leaf path and a path that exits
    // through border b1 and re-enters through border b2 (the global
    // border-to-border distance comes from the parent's refined matrix).
    const Node& leaf = nodes_[lu];
    const std::vector<Weight> within = WithinLeafDistancesImpl(leaf, u);
    Weight best = within[leaf_pos_[v]];
    if (leaf.parent >= 0 && !leaf.borders.empty()) {
      const Node& parent = nodes_[leaf.parent];
      const size_t nb = leaf.borders.size();
      for (size_t j = 0; j < nb; ++j) {
        // Exact global distance from u to border j.
        Weight dj = kInfWeight;
        for (size_t i = 0; i < nb; ++i) {
          const Weight wi = within[leaf_pos_[leaf.borders[i]]];
          if (wi == kInfWeight) continue;
          const Weight mid = parent.MatrixAt(leaf.occ_offset + i,
                                             leaf.occ_offset + j);
          if (mid == kInfWeight) continue;
          dj = std::min(dj, wi + mid);
        }
        const Weight back = leaf.MatrixAt(j, leaf_pos_[v]);
        if (dj != kInfWeight && back != kInfWeight) {
          best = std::min(best, dj + back);
        }
      }
    }
    return best;
  }

  // Find the lowest common ancestor.
  int32_t a = lu, b = lv;
  while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
  while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  const int32_t lca = a;

  // Sweep from a leaf up to the child of the LCA, maintaining exact
  // distances from the endpoint to the current node's borders.
  auto sweep = [&](int32_t leaf_id, VertexId endpoint)
      -> std::pair<int32_t, std::vector<Weight>> {
    const Node& leaf = nodes_[leaf_id];
    std::vector<Weight> d(leaf.borders.size(), kInfWeight);
    for (size_t i = 0; i < leaf.borders.size(); ++i) {
      d[i] = leaf.MatrixAt(i, leaf_pos_[endpoint]);
    }
    int32_t cur = leaf_id;
    while (nodes_[cur].parent != lca) {
      const int32_t parent_id = nodes_[cur].parent;
      const Node& cur_node = nodes_[cur];
      const Node& parent = nodes_[parent_id];
      std::vector<Weight> nd(parent.borders.size(), kInfWeight);
      for (size_t j = 0; j < parent.borders.size(); ++j) {
        for (size_t i = 0; i < cur_node.borders.size(); ++i) {
          if (d[i] == kInfWeight) continue;
          const Weight mid = parent.MatrixAt(cur_node.occ_offset + i,
                                             parent.border_occ_pos[j]);
          if (mid == kInfWeight) continue;
          nd[j] = std::min(nd[j], d[i] + mid);
        }
      }
      d = std::move(nd);
      cur = parent_id;
    }
    return {cur, std::move(d)};
  };

  const auto [cu, du] = sweep(lu, u);
  const auto [cv, dv] = sweep(lv, v);
  const Node& top = nodes_[lca];
  const Node& child_u = nodes_[cu];
  const Node& child_v = nodes_[cv];
  Weight best = kInfWeight;
  for (size_t i = 0; i < du.size(); ++i) {
    if (du[i] == kInfWeight) continue;
    for (size_t j = 0; j < dv.size(); ++j) {
      if (dv[j] == kInfWeight) continue;
      const Weight mid = top.MatrixAt(child_u.occ_offset + i,
                                      child_v.occ_offset + j);
      if (mid == kInfWeight) continue;
      best = std::min(best, du[i] + mid + dv[j]);
    }
  }
  return best;
}

GTree::SourceOracle::SourceOracle(const GTree& tree, VertexId source)
    : tree_(tree), source_(source) {
  FANNR_CHECK(source < tree.graph().NumVertices());
  source_leaf_ = tree.leaf_of_[source];
  leaf_depth_ = tree.nodes_[source_leaf_].depth;
  within_ = tree.WithinLeafDistancesImpl(tree.nodes_[source_leaf_], source);

  // Precompute the source-side sweep for every ancestor level.
  int32_t cur = source_leaf_;
  const Node& leaf = tree.nodes_[source_leaf_];
  std::vector<Weight> d(leaf.borders.size(), kInfWeight);
  for (size_t i = 0; i < leaf.borders.size(); ++i) {
    d[i] = leaf.MatrixAt(i, tree.leaf_pos_[source]);
  }
  path_.push_back(cur);
  du_.push_back(d);
  while (tree.nodes_[cur].parent >= 0) {
    const int32_t parent_id = tree.nodes_[cur].parent;
    const Node& cur_node = tree.nodes_[cur];
    const Node& parent = tree.nodes_[parent_id];
    std::vector<Weight> nd(parent.borders.size(), kInfWeight);
    for (size_t j = 0; j < parent.borders.size(); ++j) {
      for (size_t i = 0; i < cur_node.borders.size(); ++i) {
        if (d[i] == kInfWeight) continue;
        const Weight mid = parent.MatrixAt(cur_node.occ_offset + i,
                                           parent.border_occ_pos[j]);
        if (mid == kInfWeight) continue;
        nd[j] = std::min(nd[j], d[i] + mid);
      }
    }
    d = nd;
    cur = parent_id;
    path_.push_back(cur);
    du_.push_back(d);
  }
}

Weight GTree::SourceOracle::DistanceTo(VertexId target) const {
  const GTree& tree = tree_;
  if (target == source_) return 0.0;
  const int32_t lv = tree.leaf_of_[target];

  if (lv == source_leaf_) {
    // Same leaf: reuse the precomputed within-leaf distances.
    const Node& leaf = tree.nodes_[source_leaf_];
    Weight best = within_[tree.leaf_pos_[target]];
    if (leaf.parent >= 0 && !leaf.borders.empty()) {
      const Node& parent = tree.nodes_[leaf.parent];
      const size_t nb = leaf.borders.size();
      for (size_t j = 0; j < nb; ++j) {
        Weight dj = kInfWeight;
        for (size_t i = 0; i < nb; ++i) {
          const Weight wi = within_[tree.leaf_pos_[leaf.borders[i]]];
          if (wi == kInfWeight) continue;
          const Weight mid = parent.MatrixAt(leaf.occ_offset + i,
                                             leaf.occ_offset + j);
          if (mid == kInfWeight) continue;
          dj = std::min(dj, wi + mid);
        }
        const Weight back = leaf.MatrixAt(j, tree.leaf_pos_[target]);
        if (dj != kInfWeight && back != kInfWeight) {
          best = std::min(best, dj + back);
        }
      }
    }
    return best;
  }

  // LCA of the two leaves.
  int32_t a = source_leaf_, b = lv;
  while (tree.nodes_[a].depth > tree.nodes_[b].depth) {
    a = tree.nodes_[a].parent;
  }
  while (tree.nodes_[b].depth > tree.nodes_[a].depth) {
    b = tree.nodes_[b].parent;
  }
  while (a != b) {
    a = tree.nodes_[a].parent;
    b = tree.nodes_[b].parent;
  }
  const int32_t lca = a;
  const uint32_t lca_depth = tree.nodes_[lca].depth;
  // Source-side child of the LCA sits at index (leaf_depth - lca_depth -
  // 1) on the precomputed path (path depths decrease by one per step).
  const size_t si = leaf_depth_ - lca_depth - 1;
  FANNR_DCHECK(si < path_.size() &&
               tree.nodes_[path_[si]].parent == lca);

  // Target-side sweep up to the child of the LCA.
  const Node& target_leaf = tree.nodes_[lv];
  std::vector<Weight> dv(target_leaf.borders.size(), kInfWeight);
  for (size_t i = 0; i < target_leaf.borders.size(); ++i) {
    dv[i] = target_leaf.MatrixAt(i, tree.leaf_pos_[target]);
  }
  int32_t cur = lv;
  while (tree.nodes_[cur].parent != lca) {
    const int32_t parent_id = tree.nodes_[cur].parent;
    const Node& cur_node = tree.nodes_[cur];
    const Node& parent = tree.nodes_[parent_id];
    std::vector<Weight> nd(parent.borders.size(), kInfWeight);
    for (size_t j = 0; j < parent.borders.size(); ++j) {
      for (size_t i = 0; i < cur_node.borders.size(); ++i) {
        if (dv[i] == kInfWeight) continue;
        const Weight mid = parent.MatrixAt(cur_node.occ_offset + i,
                                           parent.border_occ_pos[j]);
        if (mid == kInfWeight) continue;
        nd[j] = std::min(nd[j], dv[i] + mid);
      }
    }
    dv = std::move(nd);
    cur = parent_id;
  }

  const Node& top = tree.nodes_[lca];
  const Node& child_u = tree.nodes_[path_[si]];
  const Node& child_v = tree.nodes_[cur];
  const std::vector<Weight>& du = du_[si];
  Weight best = kInfWeight;
  for (size_t i = 0; i < du.size(); ++i) {
    if (du[i] == kInfWeight) continue;
    for (size_t j = 0; j < dv.size(); ++j) {
      if (dv[j] == kInfWeight) continue;
      const Weight mid = top.MatrixAt(child_u.occ_offset + i,
                                      child_v.occ_offset + j);
      if (mid == kInfWeight) continue;
      best = std::min(best, du[i] + mid + dv[j]);
    }
  }
  return best;
}

namespace {
constexpr uint64_t kGTreeMagic = 0xFA22A81A67BEE002ULL;
}  // namespace

bool GTree::Save(std::ostream& out) const {
  BinaryWriter w(out);
  WriteIndexHeader(w, kGTreeMagic, fingerprint_);
  w.Pod<uint64_t>(options_.fanout);
  w.Pod<uint64_t>(options_.leaf_capacity);
  w.Pod<uint64_t>(num_leaves_);
  w.Vec(leaf_of_);
  w.Vec(leaf_pos_);
  w.Pod<uint64_t>(nodes_.size());
  for (const Node& nd : nodes_) {
    w.Pod(nd.parent);
    w.Pod(nd.depth);
    w.Pod<uint8_t>(nd.is_leaf ? 1 : 0);
    w.Pod(nd.occ_offset);
    w.Pod(nd.leaf_begin);
    w.Pod(nd.leaf_end);
    w.Vec(nd.children);
    w.Vec(nd.vertices);
    w.Vec(nd.borders);
    w.Vec(nd.occupants);
    w.Vec(nd.border_occ_pos);
    w.Vec(nd.matrix);
  }
  return w.ok();
}

std::optional<GTree> GTree::Load(const Graph& graph, std::istream& in) {
  BinaryReader r(in);
  uint64_t fanout = 0, leaf_capacity = 0, num_leaves = 0, num_nodes = 0;
  if (!ReadIndexHeader(r, kGTreeMagic, graph.Fingerprint())) {
    return std::nullopt;
  }
  const uint64_t vertices = graph.NumVertices();
  GTree tree;
  tree.graph_ = &graph;
  tree.fingerprint_ = graph.Fingerprint();
  tree.build_epoch_ = graph.epoch();
  if (!r.Pod(fanout) || !r.Pod(leaf_capacity) || !r.Pod(num_leaves)) {
    return std::nullopt;
  }
  tree.options_.fanout = fanout;
  tree.options_.leaf_capacity = leaf_capacity;
  tree.num_leaves_ = num_leaves;
  if (!r.Vec(tree.leaf_of_) || !r.Vec(tree.leaf_pos_) ||
      !r.Pod(num_nodes)) {
    return std::nullopt;
  }
  if (tree.leaf_of_.size() != vertices ||
      tree.leaf_pos_.size() != vertices) {
    return std::nullopt;
  }
  tree.nodes_.resize(num_nodes);
  for (Node& nd : tree.nodes_) {
    uint8_t is_leaf = 0;
    if (!r.Pod(nd.parent) || !r.Pod(nd.depth) || !r.Pod(is_leaf) ||
        !r.Pod(nd.occ_offset) || !r.Pod(nd.leaf_begin) ||
        !r.Pod(nd.leaf_end) || !r.Vec(nd.children) || !r.Vec(nd.vertices) ||
        !r.Vec(nd.borders) || !r.Vec(nd.occupants) ||
        !r.Vec(nd.border_occ_pos) || !r.Vec(nd.matrix)) {
      return std::nullopt;
    }
    nd.is_leaf = is_leaf != 0;
  }
  // Per-vertex leaf references must land on a real leaf at a valid
  // position — Distance() follows them without bounds checks.
  for (uint64_t v = 0; v < vertices; ++v) {
    const int32_t leaf = tree.leaf_of_[v];
    if (leaf < 0 || static_cast<uint64_t>(leaf) >= num_nodes) {
      return std::nullopt;
    }
    const Node& nd = tree.nodes_[leaf];
    if (!nd.is_leaf || tree.leaf_pos_[v] >= nd.vertices.size()) {
      return std::nullopt;
    }
  }
  return tree;
}

size_t GTree::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node) +
                 leaf_of_.capacity() * sizeof(int32_t) +
                 leaf_pos_.capacity() * sizeof(uint32_t);
  for (const Node& nd : nodes_) {
    bytes += nd.children.capacity() * sizeof(int32_t) +
             nd.vertices.capacity() * sizeof(VertexId) +
             nd.borders.capacity() * sizeof(VertexId) +
             nd.occupants.capacity() * sizeof(VertexId) +
             nd.border_occ_pos.capacity() * sizeof(uint32_t) +
             nd.matrix.capacity() * sizeof(Weight);
  }
  return bytes;
}

}  // namespace fannr
