// Occurrence-list kNN search over a G-tree (the paper's "GTree" g_phi
// engine, Table I).
//
// Given a fixed object set (Q in an FANN_R query), occurrence lists record
// which tree nodes contain objects so the best-first search skips empty
// subtrees. A search from a source vertex reports objects from-near-to-far
// with exact global distances, derived from the G-tree's refined matrices.

#ifndef FANNR_SP_GTREE_GTREE_KNN_H_
#define FANNR_SP_GTREE_GTREE_KNN_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/flat_heap.h"
#include "graph/vertex_set.h"
#include "sp/gtree/gtree.h"

namespace fannr {

/// kNN engine over a G-tree for one fixed object set.
class GTreeKnn {
 public:
  /// Builds occurrence lists; O(|objects| * tree depth). Both referents
  /// must outlive this object.
  GTreeKnn(const GTree& tree, const IndexedVertexSet& objects);

  /// A reported object with its exact network distance from the source.
  struct Hit {
    VertexId vertex;
    Weight distance;
  };

  /// One incremental search; objects are reported in nondecreasing
  /// distance order. Unreachable objects are never reported.
  class Search {
   public:
    /// Next nearest unreported object, or nullopt when exhausted.
    std::optional<Hit> Next();

   private:
    friend class GTreeKnn;
    Search(const GTreeKnn& owner, VertexId source);

    void PushLeafObjects(int32_t leaf_id,
                         const std::vector<Weight>& parent_occ_dist);
    void EnterInternal(int32_t node_id,
                       const std::vector<Weight>& parent_occ_dist);
    void PushChildren(int32_t node_id, int32_t skip_child,
                      const std::vector<Weight>& occ_dist);

    struct Entry {
      Weight key;
      bool is_object;
      VertexId vertex;  // valid when is_object
      int32_t node;     // valid when !is_object
    };
    struct KeyLess {
      bool operator()(const Entry& a, const Entry& b) const {
        return a.key < b.key;
      }
    };

    const GTreeKnn& owner_;
    FlatHeap<Entry, KeyLess> heap_;
    // Exact distances from the source to each entered node's occupants.
    std::unordered_map<int32_t, std::vector<Weight>> occ_dist_;
  };

  /// Starts a search from `source`.
  Search From(VertexId source) const { return Search(*this, source); }

  /// Approximate heap bytes of the occurrence lists (the "Occ" index cost
  /// of the paper's Appendix A).
  size_t OccMemoryBytes() const;

 private:
  const GTree& tree_;
  const IndexedVertexSet& objects_;
  std::vector<uint32_t> occ_count_;  // per tree node
  std::unordered_map<int32_t, std::vector<VertexId>> leaf_objects_;
};

}  // namespace fannr

#endif  // FANNR_SP_GTREE_GTREE_KNN_H_
