#include "sp/gtree/gtree_knn.h"

#include <algorithm>

namespace fannr {

GTreeKnn::GTreeKnn(const GTree& tree, const IndexedVertexSet& objects)
    : tree_(tree), objects_(objects), occ_count_(tree.NumTreeNodes(), 0) {
  for (VertexId o : objects.members()) {
    const int32_t leaf = tree_.LeafOf(o);
    leaf_objects_[leaf].push_back(o);
    for (int32_t node = leaf; node >= 0; node = tree_.node(node).parent) {
      ++occ_count_[node];
    }
  }
}

size_t GTreeKnn::OccMemoryBytes() const {
  size_t bytes = occ_count_.capacity() * sizeof(uint32_t);
  for (const auto& [leaf, objs] : leaf_objects_) {
    bytes += sizeof(leaf) + objs.capacity() * sizeof(VertexId);
  }
  return bytes;
}

GTreeKnn::Search::Search(const GTreeKnn& owner, VertexId source)
    : owner_(owner) {
  const GTree& tree = owner_.tree_;
  const int32_t source_leaf = tree.LeafOf(source);
  const GTree::Node& leaf = tree.node(source_leaf);

  // Within-leaf distances from the source.
  const std::vector<Weight> within =
      tree.WithinLeafDistances(source_leaf, source);

  // Exact global distances from the source to the leaf's borders:
  // best of the within-leaf path and an exit-reenter detour through the
  // parent's (global) matrix.
  const size_t nb = leaf.borders.size();
  std::vector<Weight> border_dist(nb, kInfWeight);
  for (size_t i = 0; i < nb; ++i) {
    border_dist[i] = within[tree.LeafPos(leaf.borders[i])];
  }
  if (leaf.parent >= 0 && nb > 0) {
    const GTree::Node& parent = tree.node(leaf.parent);
    std::vector<Weight> exact(nb, kInfWeight);
    for (size_t j = 0; j < nb; ++j) {
      for (size_t i = 0; i < nb; ++i) {
        if (border_dist[i] == kInfWeight) continue;
        const Weight mid =
            parent.MatrixAt(leaf.occ_offset + i, leaf.occ_offset + j);
        if (mid == kInfWeight) continue;
        exact[j] = std::min(exact[j], border_dist[i] + mid);
      }
    }
    border_dist = std::move(exact);
  }

  // Objects in the source leaf: exact = min(within-leaf, re-entry through
  // a border).
  auto leaf_objs = owner_.leaf_objects_.find(source_leaf);
  if (leaf_objs != owner_.leaf_objects_.end()) {
    for (VertexId o : leaf_objs->second) {
      Weight d = within[tree.LeafPos(o)];
      for (size_t j = 0; j < nb; ++j) {
        if (border_dist[j] == kInfWeight) continue;
        const Weight back = leaf.MatrixAt(j, tree.LeafPos(o));
        if (back == kInfWeight) continue;
        d = std::min(d, border_dist[j] + back);
      }
      if (d != kInfWeight) heap_.push({d, true, o, -1});
    }
  }

  // Ancestor sweep: exact distances to every ancestor's occupants; push
  // the off-path children that contain objects.
  int32_t prev = source_leaf;
  std::vector<Weight> prev_border_dist = std::move(border_dist);
  for (int32_t anc = leaf.parent; anc >= 0;
       anc = tree.node(anc).parent) {
    const GTree::Node& anode = tree.node(anc);
    const GTree::Node& pnode = tree.node(prev);
    // Distances from source to anc's occupants via prev's borders. For
    // the first ancestor, prev is the source leaf and prev_border_dist is
    // already globally exact, so the min-plus step stays exact.
    std::vector<Weight> occ_dist(anode.occupants.size(), kInfWeight);
    for (size_t x = 0; x < anode.occupants.size(); ++x) {
      for (size_t i = 0; i < pnode.borders.size(); ++i) {
        if (prev_border_dist[i] == kInfWeight) continue;
        const Weight mid = anode.MatrixAt(pnode.occ_offset + i, x);
        if (mid == kInfWeight) continue;
        occ_dist[x] = std::min(occ_dist[x], prev_border_dist[i] + mid);
      }
    }
    PushChildren(anc, prev, occ_dist);
    // Prepare the next level: exact distances to anc's borders.
    std::vector<Weight> next(anode.borders.size(), kInfWeight);
    for (size_t j = 0; j < anode.borders.size(); ++j) {
      next[j] = occ_dist[anode.border_occ_pos[j]];
    }
    occ_dist_.emplace(anc, std::move(occ_dist));
    prev_border_dist = std::move(next);
    prev = anc;
  }
}

void GTreeKnn::Search::PushChildren(int32_t node_id, int32_t skip_child,
                                    const std::vector<Weight>& occ_dist) {
  const GTree& tree = owner_.tree_;
  const GTree::Node& nd = tree.node(node_id);
  for (int32_t cid : nd.children) {
    if (cid == skip_child || owner_.occ_count_[cid] == 0) continue;
    const GTree::Node& child = tree.node(cid);
    Weight bound = kInfWeight;
    for (size_t i = 0; i < child.borders.size(); ++i) {
      bound = std::min(bound, occ_dist[child.occ_offset + i]);
    }
    if (bound != kInfWeight) heap_.push({bound, false, 0, cid});
  }
}

void GTreeKnn::Search::PushLeafObjects(
    int32_t leaf_id, const std::vector<Weight>& parent_occ_dist) {
  const GTree& tree = owner_.tree_;
  const GTree::Node& leaf = tree.node(leaf_id);
  auto it = owner_.leaf_objects_.find(leaf_id);
  if (it == owner_.leaf_objects_.end()) return;
  for (VertexId o : it->second) {
    Weight d = kInfWeight;
    for (size_t i = 0; i < leaf.borders.size(); ++i) {
      const Weight to_border = parent_occ_dist[leaf.occ_offset + i];
      if (to_border == kInfWeight) continue;
      const Weight back = leaf.MatrixAt(i, tree.LeafPos(o));
      if (back == kInfWeight) continue;
      d = std::min(d, to_border + back);
    }
    if (d != kInfWeight) heap_.push({d, true, o, -1});
  }
}

void GTreeKnn::Search::EnterInternal(
    int32_t node_id, const std::vector<Weight>& parent_occ_dist) {
  const GTree& tree = owner_.tree_;
  const GTree::Node& nd = tree.node(node_id);
  std::vector<Weight> occ_dist(nd.occupants.size(), kInfWeight);
  for (size_t x = 0; x < nd.occupants.size(); ++x) {
    for (size_t i = 0; i < nd.borders.size(); ++i) {
      const Weight to_border = parent_occ_dist[nd.occ_offset + i];
      if (to_border == kInfWeight) continue;
      const Weight mid = nd.MatrixAt(nd.border_occ_pos[i], x);
      if (mid == kInfWeight) continue;
      occ_dist[x] = std::min(occ_dist[x], to_border + mid);
    }
  }
  PushChildren(node_id, /*skip_child=*/-1, occ_dist);
  occ_dist_.emplace(node_id, std::move(occ_dist));
}

std::optional<GTreeKnn::Hit> GTreeKnn::Search::Next() {
  const GTree& tree = owner_.tree_;
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (top.is_object) return Hit{top.vertex, top.key};
    const GTree::Node& nd = tree.node(top.node);
    const std::vector<Weight>& parent_occ = occ_dist_.at(nd.parent);
    if (nd.is_leaf) {
      PushLeafObjects(top.node, parent_occ);
    } else {
      EnterInternal(top.node, parent_occ);
    }
  }
  return std::nullopt;
}

}  // namespace fannr
