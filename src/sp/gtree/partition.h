// Balanced multiway graph partitioning for G-tree construction.
//
// G-tree (Zhong et al. CIKM'13 / TKDE'15) recursively partitions the road
// network into `fanout` balanced parts with small edge cut. The original
// uses METIS; we implement inertial bisection (split along the principal
// geometric axis) when coordinates are available — which produces good
// cuts on road networks — with a BFS-layering bisection fallback for
// graphs without coordinates.

#ifndef FANNR_SP_GTREE_PARTITION_H_
#define FANNR_SP_GTREE_PARTITION_H_

#include <vector>

#include "graph/graph.h"

namespace fannr {

/// Splits `vertices` (a subset of the graph's vertices) into `fanout`
/// balanced parts. Returns one part id in [0, fanout) per input vertex
/// (aligned with `vertices`). `fanout` must be a power of two >= 2. Part
/// sizes differ by at most `fanout`.
std::vector<uint32_t> MultiwayPartition(const Graph& graph,
                                        const std::vector<VertexId>& vertices,
                                        size_t fanout);

}  // namespace fannr

#endif  // FANNR_SP_GTREE_PARTITION_H_
