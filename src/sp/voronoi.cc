#include "sp/voronoi.h"

#include <utility>

#include "common/check.h"
#include "common/flat_heap.h"

namespace fannr {

NetworkVoronoi::NetworkVoronoi(const Graph& graph,
                               const IndexedVertexSet& sites) {
  FANNR_CHECK(!sites.empty());
  const size_t n = graph.NumVertices();
  site_.assign(n, kInvalidVertex);
  dist_.assign(n, kInfWeight);

  using HeapEntry = std::pair<Weight, VertexId>;
  FlatHeap<HeapEntry> heap;
  heap.reserve(sites.size());
  for (VertexId s : sites.members()) {
    dist_[s] = 0.0;
    site_[s] = s;
    heap.push({0.0, s});
  }
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist_[u]) continue;
    for (const Arc& a : graph.Neighbors(u)) {
      const Weight nd = d + a.weight;
      if (nd < dist_[a.to]) {
        dist_[a.to] = nd;
        site_[a.to] = site_[u];
        heap.push({nd, a.to});
      }
    }
  }
}

std::vector<size_t> NetworkVoronoi::CellSizes(
    const IndexedVertexSet& sites) const {
  std::vector<size_t> sizes(sites.size(), 0);
  for (VertexId owner : site_) {
    if (owner == kInvalidVertex) continue;
    const uint32_t idx = sites.IndexOf(owner);
    FANNR_DCHECK(idx != IndexedVertexSet::kNotMember);
    ++sizes[idx];
  }
  return sizes;
}

}  // namespace fannr
