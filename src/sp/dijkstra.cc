#include "sp/dijkstra.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/flat_heap.h"

namespace fannr {

namespace {

// Min-heap entry: (distance, vertex), ordered by distance with vertex id
// as the tiebreaker (lexicographic pair comparison).
using HeapEntry = std::pair<Weight, VertexId>;
using MinHeap = FlatHeap<HeapEntry>;

}  // namespace

std::vector<Weight> DijkstraSssp(const Graph& graph, VertexId source) {
  FANNR_CHECK(source < graph.NumVertices());
  std::vector<Weight> dist(graph.NumVertices(), kInfWeight);
  MinHeap heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Arc& a : graph.Neighbors(u)) {
      const Weight nd = d + a.weight;
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        heap.push({nd, a.to});
      }
    }
  }
  return dist;
}

SsspTree DijkstraSsspTree(const Graph& graph, VertexId source) {
  FANNR_CHECK(source < graph.NumVertices());
  SsspTree result;
  result.dist.assign(graph.NumVertices(), kInfWeight);
  result.parent.assign(graph.NumVertices(), kInvalidVertex);
  MinHeap heap;
  result.dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > result.dist[u]) continue;
    for (const Arc& a : graph.Neighbors(u)) {
      const Weight nd = d + a.weight;
      if (nd < result.dist[a.to]) {
        result.dist[a.to] = nd;
        result.parent[a.to] = u;
        heap.push({nd, a.to});
      }
    }
  }
  return result;
}

std::vector<VertexId> ShortestPath(const Graph& graph, VertexId source,
                                   VertexId target) {
  FANNR_CHECK(source < graph.NumVertices() &&
              target < graph.NumVertices());
  if (source == target) return {source};
  std::unordered_map<VertexId, Weight> dist;
  std::unordered_map<VertexId, VertexId> parent;
  MinHeap heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    auto it = dist.find(u);
    if (it == dist.end() || d > it->second) continue;
    if (u == target) {
      std::vector<VertexId> path;
      for (VertexId v = target;; v = parent.at(v)) {
        path.push_back(v);
        if (v == source) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Arc& a : graph.Neighbors(u)) {
      const Weight nd = d + a.weight;
      auto [nit, inserted] = dist.try_emplace(a.to, nd);
      if (inserted || nd < nit->second) {
        nit->second = nd;
        parent[a.to] = u;
        heap.push({nd, a.to});
      }
    }
  }
  return {};
}

DijkstraSearch::DijkstraSearch(const Graph& graph)
    : graph_(graph),
      dist_(graph.NumVertices(), kInfWeight),
      settled_(graph.NumVertices(), 0) {}

void DijkstraSearch::ReserveFullSearch() {
  // One initial push plus at most one push per strict distance
  // improvement, of which there are at most NumArcs().
  heap_.reserve(graph_.NumArcs() + 1);
}

Weight DijkstraSearch::Distance(VertexId source, VertexId target) {
  FANNR_CHECK(source < graph_.NumVertices() &&
              target < graph_.NumVertices());
  if (source == target) return 0.0;
  dist_.NewEpoch();
  heap_.clear();
  dist_.Set(source, 0.0);
  heap_.push({0.0, source});
  while (!heap_.empty()) {
    auto [d, u] = heap_.top();
    heap_.pop();
    if (d > dist_.Get(u)) continue;
    if (u == target) return d;
    for (const Arc& a : graph_.Neighbors(u)) {
      const Weight nd = d + a.weight;
      if (nd < dist_.Get(a.to)) {
        dist_.Set(a.to, nd);
        heap_.push({nd, a.to});
      }
    }
  }
  return kInfWeight;
}

void DijkstraSearch::SsspInto(VertexId source, std::vector<Weight>& out) {
  FANNR_CHECK(source < graph_.NumVertices());
  // A full SSSP writes every vertex, so `out` itself serves as the
  // distance array — no TimestampedArray indirection and no copy-out
  // pass. assign() on an already-|V|-sized vector reuses its storage.
  out.assign(graph_.NumVertices(), kInfWeight);
  heap_.clear();
  out[source] = 0.0;
  heap_.push({0.0, source});
  while (!heap_.empty()) {
    auto [d, u] = heap_.top();
    heap_.pop();
    if (d > out[u]) continue;
    for (const Arc& a : graph_.Neighbors(u)) {
      const Weight nd = d + a.weight;
      if (nd < out[a.to]) {
        out[a.to] = nd;
        heap_.push({nd, a.to});
      }
    }
  }
}

std::vector<Weight> DijkstraSearch::Distances(
    VertexId source, const std::vector<VertexId>& targets) {
  dist_.NewEpoch();
  settled_.NewEpoch();
  // Count how many distinct target vertices remain unsettled; a vertex
  // listed twice only needs settling once.
  size_t remaining = 0;
  for (VertexId t : targets) {
    FANNR_CHECK(t < graph_.NumVertices());
    if (settled_.Get(t) == 0) {
      settled_.Set(t, 1);  // 1 = "is an unsettled target"
      ++remaining;
    }
  }
  heap_.clear();
  dist_.Set(source, 0.0);
  heap_.push({0.0, source});
  while (!heap_.empty() && remaining > 0) {
    auto [d, u] = heap_.top();
    heap_.pop();
    if (d > dist_.Get(u)) continue;
    if (settled_.Get(u) == 1) {
      settled_.Set(u, 2);  // 2 = "settled target"
      --remaining;
    }
    for (const Arc& a : graph_.Neighbors(u)) {
      const Weight nd = d + a.weight;
      if (nd < dist_.Get(a.to)) {
        dist_.Set(a.to, nd);
        heap_.push({nd, a.to});
      }
    }
  }
  std::vector<Weight> result;
  result.reserve(targets.size());
  for (VertexId t : targets) {
    result.push_back(settled_.Get(t) == 2 ? dist_.Get(t) : kInfWeight);
  }
  return result;
}

}  // namespace fannr
