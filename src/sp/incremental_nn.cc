#include "sp/incremental_nn.h"

namespace fannr {

IncrementalNnSearch::IncrementalNnSearch(const Graph& graph,
                                         VertexId source,
                                         const IndexedVertexSet& targets)
    : graph_(graph), targets_(targets), source_(source) {
  FANNR_CHECK(source < graph.NumVertices());
  dist_[source] = 0.0;
  frontier_.push({0.0, source});
}

std::optional<IncrementalNnSearch::Hit>
IncrementalNnSearch::FindNextTarget() {
  while (!frontier_.empty()) {
    const HeapEntry top = frontier_.top();
    frontier_.pop();
    auto it = dist_.find(top.vertex);
    // Stale entry: a shorter path was found after this was pushed. A
    // negative stored distance marks an already-settled vertex.
    if (it == dist_.end() || top.dist > it->second || it->second < 0.0) {
      continue;
    }
    // Settle.
    it->second = -top.dist - 1.0;  // mark settled, preserve value
    ++settled_count_;
    for (const Arc& a : graph_.Neighbors(top.vertex)) {
      const Weight nd = top.dist + a.weight;
      auto [nit, inserted] = dist_.try_emplace(a.to, nd);
      if (inserted || (nit->second >= 0.0 && nd < nit->second)) {
        nit->second = nd;
        frontier_.push({nd, a.to});
      }
    }
    if (targets_.Contains(top.vertex)) {
      return Hit{top.vertex, top.dist};
    }
  }
  exhausted_ = true;
  return std::nullopt;
}

std::optional<IncrementalNnSearch::Hit> IncrementalNnSearch::Next() {
  if (buffered_.has_value()) {
    std::optional<Hit> hit = buffered_;
    buffered_.reset();
    return hit;
  }
  if (exhausted_) return std::nullopt;
  return FindNextTarget();
}

const IncrementalNnSearch::Hit* IncrementalNnSearch::Peek() {
  if (!buffered_.has_value()) {
    if (exhausted_) return nullptr;
    buffered_ = FindNextTarget();
    if (!buffered_.has_value()) return nullptr;
  }
  return &*buffered_;
}

}  // namespace fannr
