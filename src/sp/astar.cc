#include "sp/astar.h"

#include <queue>
#include <utility>

namespace fannr {

AStarSearch::AStarSearch(const Graph& graph)
    : graph_(graph), dist_(graph.NumVertices(), kInfWeight) {
  FANNR_CHECK(graph.HasCoordinates());
  FANNR_CHECK(graph.EuclideanConsistent());
}

Weight AStarSearch::Distance(VertexId source, VertexId target) {
  FANNR_CHECK(source < graph_.NumVertices() &&
              target < graph_.NumVertices());
  last_settled_count_ = 0;
  if (source == target) return 0.0;
  dist_.NewEpoch();

  const Point& goal = graph_.Coord(target);
  auto heuristic = [&](VertexId v) {
    return EuclideanDistance(graph_.Coord(v), goal);
  };

  // Min-heap over f = g + h; g rides along to detect stale entries.
  struct HeapEntry {
    Weight f;
    Weight g;
    VertexId vertex;
    bool operator>(const HeapEntry& o) const { return f > o.f; }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap;
  dist_.Set(source, 0.0);
  heap.push({heuristic(source), 0.0, source});
  while (!heap.empty()) {
    auto [f, g, u] = heap.top();
    heap.pop();
    if (g > dist_.Get(u)) continue;  // stale
    ++last_settled_count_;
    if (u == target) return g;
    for (const Arc& a : graph_.Neighbors(u)) {
      const Weight ng = g + a.weight;
      if (ng < dist_.Get(a.to)) {
        dist_.Set(a.to, ng);
        heap.push({ng + heuristic(a.to), ng, a.to});
      }
    }
  }
  return kInfWeight;
}

}  // namespace fannr
