#include "sp/astar.h"

#include <utility>

namespace fannr {

AStarSearch::AStarSearch(const Graph& graph)
    : graph_(graph), dist_(graph.NumVertices(), kInfWeight) {
  FANNR_CHECK(graph.HasCoordinates());
  FANNR_CHECK(graph.EuclideanConsistent());
}

Weight AStarSearch::Distance(VertexId source, VertexId target) {
  FANNR_CHECK(source < graph_.NumVertices() &&
              target < graph_.NumVertices());
  last_settled_count_ = 0;
  if (source == target) return 0.0;
  dist_.NewEpoch();

  const Point& goal = graph_.Coord(target);
  auto heuristic = [&](VertexId v) {
    return EuclideanDistance(graph_.Coord(v), goal);
  };

  heap_.clear();
  dist_.Set(source, 0.0);
  heap_.push({heuristic(source), 0.0, source});
  while (!heap_.empty()) {
    auto [f, g, u] = heap_.top();
    heap_.pop();
    if (g > dist_.Get(u)) continue;  // stale
    ++last_settled_count_;
    if (u == target) return g;
    for (const Arc& a : graph_.Neighbors(u)) {
      const Weight ng = g + a.weight;
      if (ng < dist_.Get(a.to)) {
        dist_.Set(a.to, ng);
        heap_.push({ng + heuristic(a.to), ng, a.to});
      }
    }
  }
  return kInfWeight;
}

}  // namespace fannr
