// A* point-to-point shortest paths with the Euclidean lower bound.
//
// Requires a Euclidean-consistent graph (Graph::EuclideanConsistent()):
// the straight-line distance to the target then never overestimates the
// remaining network distance, so A* is exact.

#ifndef FANNR_SP_ASTAR_H_
#define FANNR_SP_ASTAR_H_

#include <vector>

#include "common/flat_heap.h"
#include "common/timestamped.h"
#include "graph/graph.h"

namespace fannr {

/// Reusable A* engine bound to one graph. Not thread-safe.
class AStarSearch {
 public:
  /// Requires graph.HasCoordinates(). Correctness additionally requires
  /// Euclidean consistency, which is checked once here.
  explicit AStarSearch(const Graph& graph);

  /// Network distance from `source` to `target` (kInfWeight if
  /// unreachable).
  Weight Distance(VertexId source, VertexId target);

  /// Number of vertices settled by the last Distance() call (exposition /
  /// benchmarking aid).
  size_t last_settled_count() const { return last_settled_count_; }

 private:
  // Min-heap over f = g + h; g rides along to detect stale entries.
  struct HeapEntry {
    Weight f;
    Weight g;
    VertexId vertex;
  };
  struct FLess {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.f < b.f;
    }
  };

  const Graph& graph_;
  TimestampedArray<Weight> dist_;
  FlatHeap<HeapEntry, FLess> heap_;
  size_t last_settled_count_ = 0;
};

}  // namespace fannr

#endif  // FANNR_SP_ASTAR_H_
