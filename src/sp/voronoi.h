// Network Voronoi diagram (NVD): every vertex labeled with its nearest
// site and the distance to it.
//
// The paper's related work (Section II-B) discusses Voronoi-based ANN
// processing in road networks [6], [7]; here the NVD serves two roles:
// an O(1)-per-lookup nearest-data-point oracle that accelerates APX-sum's
// candidate generation when many queries share one P (see
// SolveApxSumWithVoronoi), and a reusable substrate for spatial analyses.
//
// Construction is one multi-source Dijkstra: O(|E| + |V| log |V|).

#ifndef FANNR_SP_VORONOI_H_
#define FANNR_SP_VORONOI_H_

#include <vector>

#include "graph/graph.h"
#include "graph/vertex_set.h"

namespace fannr {

/// Network Voronoi diagram over a non-empty site set.
class NetworkVoronoi {
 public:
  /// Builds the diagram (one multi-source Dijkstra).
  NetworkVoronoi(const Graph& graph, const IndexedVertexSet& sites);

  /// Nearest site of `v` (kInvalidVertex if unreachable from all sites).
  VertexId NearestSite(VertexId v) const {
    FANNR_DCHECK(v < site_.size());
    return site_[v];
  }

  /// Network distance from `v` to its nearest site (kInfWeight if
  /// unreachable).
  Weight DistanceToSite(VertexId v) const {
    FANNR_DCHECK(v < dist_.size());
    return dist_[v];
  }

  /// Number of vertices assigned to each site (aligned with the site
  /// set's member order).
  std::vector<size_t> CellSizes(const IndexedVertexSet& sites) const;

  /// Approximate heap bytes.
  size_t MemoryBytes() const {
    return site_.capacity() * sizeof(VertexId) +
           dist_.capacity() * sizeof(Weight);
  }

 private:
  std::vector<VertexId> site_;
  std::vector<Weight> dist_;
};

}  // namespace fannr

#endif  // FANNR_SP_VORONOI_H_
