// k-FANN_R: the top-k extension (paper Section V, Definition 3).
//
// GD keeps a bounded result heap while enumerating; R-List and IER-kNN
// compare their termination bounds against the k-th best candidate
// instead of the best; Exact-max expands until k distinct counters reach
// phi|Q|. APX-sum is deliberately not adapted (the paper adapts "most"
// algorithms, excluding APX-sum).
//
// Shared result contract (checked by the differential fuzzing harness,
// src/testing/differential.h): every solver returns
// min(k_results, #data points with finite g_phi) entries in ascending
// (distance, vertex id) order, exact ties broken by the smaller vertex
// id, with each subset nearest first. Asking for more results than there
// are qualifying data points is valid and simply returns fewer entries.
// The lists are therefore bitwise-identical across solvers for the same
// query, and a solver's top-k list is always a prefix of its top-k'
// list for k' > k.

#ifndef FANNR_FANN_KFANN_H_
#define FANNR_FANN_KFANN_H_

#include <vector>

#include "fann/gphi.h"
#include "fann/query.h"
#include "spatial/rtree.h"

namespace fannr {

/// k-FANN_R by exhaustive enumeration (GD). Returns at most `k_results`
/// entries sorted by flexible aggregate distance.
std::vector<KFannEntry> SolveKGd(const FannQuery& query, size_t k_results,
                                 GphiEngine& engine);

/// k-FANN_R with the R-List threshold against the k-th best candidate.
std::vector<KFannEntry> SolveKRList(const FannQuery& query,
                                    size_t k_results, GphiEngine& engine);

/// k-FANN_R with the IER-kNN framework.
std::vector<KFannEntry> SolveKIer(const FannQuery& query, size_t k_results,
                                  GphiEngine& engine, const RTree& p_tree);

/// k-FANN_R with Exact-max (query.aggregate must be kMax).
std::vector<KFannEntry> SolveKExactMax(const FannQuery& query,
                                       size_t k_results);

}  // namespace fannr

#endif  // FANNR_FANN_KFANN_H_
