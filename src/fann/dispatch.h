// Uniform dispatch over the FANN_R solving algorithms.
//
// Every solver in src/fann/ exposes its own entry point with a slightly
// different signature (IER-kNN needs an R-tree over P, Exact-max and
// APX-sum are aggregate-specific, naive needs no engine). Batch execution
// wants one switchable entry point with an injected g_phi distance oracle,
// so the engine subsystem (src/engine/) — and anything else that routes
// queries dynamically — does not hard-code per-algorithm call sites.
//
// Dispatch is also where index freshness is decided under live weight
// updates (dynamic/update.h): a g_phi kind backed by a prebuilt index
// (G-tree, PHL, CH) silently returns wrong distances once the graph's
// weights move past the index's build epoch. StaleIndexReason() detects
// that in O(1) via the indexes' FreshFor() checks, and kFallbackGphiKind
// names the index-free kind (INE) routing falls back to — exact on the
// live weights, always constructible, never wrong.

#ifndef FANNR_FANN_DISPATCH_H_
#define FANNR_FANN_DISPATCH_H_

#include <string_view>

#include "fann/gphi.h"
#include "fann/query.h"
#include "spatial/rtree.h"

namespace fannr {

/// The FANN_R solving algorithms (paper Sections II-C through IV-B).
enum class FannAlgorithm {
  kNaive,     // subset enumeration (toy instances only)
  kGd,        // generalized Dijkstra-based: exhaustive over P
  kRList,     // R-List threshold algorithm
  kIer,       // IER-kNN best-first over an R-tree on P
  kExactMax,  // Exact-max multi-source expansion (max only)
  kApxSum,    // APX-sum candidate reduction (sum only)
};

/// All algorithms, paper order.
inline constexpr FannAlgorithm kAllFannAlgorithms[] = {
    FannAlgorithm::kNaive,    FannAlgorithm::kGd,
    FannAlgorithm::kRList,    FannAlgorithm::kIer,
    FannAlgorithm::kExactMax, FannAlgorithm::kApxSum,
};

/// Display name ("Naive", "GD", "R-List", "IER-kNN", "Exact-max",
/// "APX-sum").
std::string_view FannAlgorithmName(FannAlgorithm algorithm);

/// True if `algorithm` can answer `aggregate` (Exact-max is max-only,
/// APX-sum is sum-only, the rest are universal).
bool FannAlgorithmSupports(FannAlgorithm algorithm, Aggregate aggregate);

/// True if `algorithm` can answer weighted queries (FannQuery::weights).
/// Naive enumerates subsets outright, and GD / R-List delegate distance
/// ranking to a weight-bound engine; IER-kNN's Euclidean lower bound and
/// the Exact-max / APX-sum expansions prune by RAW network distance, so
/// they reject weighted jobs rather than answer wrong.
bool FannAlgorithmSupportsWeights(FannAlgorithm algorithm);

/// True if engines of `kind` accept a non-empty BindWeights: the
/// point-to-point family (A*, PHL, CH) computes all |Q| distances before
/// selection, so weighting is a fold-time multiply. The early-terminating
/// kNN engines (INE, G-tree, IER-*) stop at the k-th raw-distance hit and
/// would miss weighted-near points.
bool GphiKindSupportsWeights(GphiKind kind);

/// Solves `query` with `algorithm`, evaluating g_phi through `engine`
/// (the injected distance oracle). `p_tree` is required for kIer — an
/// R-tree over exactly query.data_points (see BuildDataPointRTree) — and
/// ignored by every other algorithm. Aborts if the algorithm does not
/// support the query's aggregate or a required resource is missing.
FannResult SolveWith(FannAlgorithm algorithm, const FannQuery& query,
                     GphiEngine& engine, const RTree* p_tree = nullptr);

/// True if `kind` answers from a prebuilt index whose distances go stale
/// when edge weights change (G-tree, PHL, CH — including their IER
/// variants). Index-free kinds (INE, A*, IER-A*) always track the live
/// graph.
bool GphiKindUsesIndex(GphiKind kind);

/// The index-free g_phi kind stale-index routing falls back to. INE:
/// exact on the live weights, needs nothing but the graph.
inline constexpr GphiKind kFallbackGphiKind = GphiKind::kIne;

/// Explains why `kind` cannot safely answer against resources.graph right
/// now (its index was built/loaded under a different graph epoch or
/// fingerprint), or returns an empty string when `kind` is index-free,
/// its index is fresh, or the index pointer is null (construction-time
/// checks own that case). O(1) — safe to call per batch.
std::string StaleIndexReason(GphiKind kind, const GphiResources& resources);

}  // namespace fannr

#endif  // FANNR_FANN_DISPATCH_H_
