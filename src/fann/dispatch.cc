#include "fann/dispatch.h"

#include "fann/apx_sum.h"
#include "fann/exact_max.h"
#include "fann/gd.h"
#include "fann/ier.h"
#include "fann/naive.h"
#include "fann/rlist.h"

namespace fannr {

std::string_view FannAlgorithmName(FannAlgorithm algorithm) {
  switch (algorithm) {
    case FannAlgorithm::kNaive:
      return "Naive";
    case FannAlgorithm::kGd:
      return "GD";
    case FannAlgorithm::kRList:
      return "R-List";
    case FannAlgorithm::kIer:
      return "IER-kNN";
    case FannAlgorithm::kExactMax:
      return "Exact-max";
    case FannAlgorithm::kApxSum:
      return "APX-sum";
  }
  return "?";
}

bool FannAlgorithmSupports(FannAlgorithm algorithm, Aggregate aggregate) {
  switch (algorithm) {
    case FannAlgorithm::kExactMax:
      return aggregate == Aggregate::kMax;
    case FannAlgorithm::kApxSum:
      return aggregate == Aggregate::kSum;
    default:
      return true;
  }
}

FannResult SolveWith(FannAlgorithm algorithm, const FannQuery& query,
                     GphiEngine& engine, const RTree* p_tree) {
  FANNR_CHECK(FannAlgorithmSupports(algorithm, query.aggregate));
  switch (algorithm) {
    case FannAlgorithm::kNaive:
      return SolveNaive(query);
    case FannAlgorithm::kGd:
      return SolveGd(query, engine);
    case FannAlgorithm::kRList:
      return SolveRList(query, engine);
    case FannAlgorithm::kIer:
      FANNR_CHECK(p_tree != nullptr && "IER-kNN needs the R-tree over P");
      return SolveIer(query, engine, *p_tree);
    case FannAlgorithm::kExactMax:
      return SolveExactMax(query);
    case FannAlgorithm::kApxSum:
      return SolveApxSum(query, engine);
  }
  FANNR_CHECK(false && "unknown FannAlgorithm");
}

}  // namespace fannr
