#include "fann/dispatch.h"

#include <string>

#include "fann/apx_sum.h"
#include "fann/exact_max.h"
#include "fann/gd.h"
#include "fann/ier.h"
#include "fann/naive.h"
#include "fann/rlist.h"

namespace fannr {

std::string_view FannAlgorithmName(FannAlgorithm algorithm) {
  switch (algorithm) {
    case FannAlgorithm::kNaive:
      return "Naive";
    case FannAlgorithm::kGd:
      return "GD";
    case FannAlgorithm::kRList:
      return "R-List";
    case FannAlgorithm::kIer:
      return "IER-kNN";
    case FannAlgorithm::kExactMax:
      return "Exact-max";
    case FannAlgorithm::kApxSum:
      return "APX-sum";
  }
  return "?";
}

bool FannAlgorithmSupports(FannAlgorithm algorithm, Aggregate aggregate) {
  switch (algorithm) {
    case FannAlgorithm::kExactMax:
      return aggregate == Aggregate::kMax;
    case FannAlgorithm::kApxSum:
      return aggregate == Aggregate::kSum;
    default:
      return true;
  }
}

bool FannAlgorithmSupportsWeights(FannAlgorithm algorithm) {
  switch (algorithm) {
    case FannAlgorithm::kNaive:
    case FannAlgorithm::kGd:
    case FannAlgorithm::kRList:
      return true;
    case FannAlgorithm::kIer:
    case FannAlgorithm::kExactMax:
    case FannAlgorithm::kApxSum:
      return false;
  }
  return false;
}

bool GphiKindSupportsWeights(GphiKind kind) {
  switch (kind) {
    case GphiKind::kAStar:
    case GphiKind::kPhl:
    case GphiKind::kCh:
      return true;
    case GphiKind::kIne:
    case GphiKind::kGTree:
    case GphiKind::kIerAStar:
    case GphiKind::kIerGTree:
    case GphiKind::kIerPhl:
      return false;
  }
  return false;
}

bool GphiKindUsesIndex(GphiKind kind) {
  switch (kind) {
    case GphiKind::kGTree:
    case GphiKind::kPhl:
    case GphiKind::kIerGTree:
    case GphiKind::kIerPhl:
    case GphiKind::kCh:
      return true;
    case GphiKind::kIne:
    case GphiKind::kAStar:
    case GphiKind::kIerAStar:
      return false;
  }
  return false;
}

std::string StaleIndexReason(GphiKind kind, const GphiResources& resources) {
  if (!GphiKindUsesIndex(kind)) return std::string();
  FANNR_CHECK(resources.graph != nullptr);
  const Graph& graph = *resources.graph;
  auto reason = [&](std::string_view index_name, GraphEpoch build_epoch) {
    return std::string(GphiKindName(kind)) + ": " + std::string(index_name) +
           " index built at graph epoch " + std::to_string(build_epoch) +
           ", graph is at epoch " + std::to_string(graph.epoch()) +
           " — rebuild the index or use an index-free engine";
  };
  switch (kind) {
    case GphiKind::kGTree:
    case GphiKind::kIerGTree:
      if (resources.gtree != nullptr && !resources.gtree->FreshFor(graph)) {
        return reason("G-tree", resources.gtree->build_epoch());
      }
      break;
    case GphiKind::kPhl:
    case GphiKind::kIerPhl:
      if (resources.labels != nullptr && !resources.labels->FreshFor(graph)) {
        return reason("PHL", resources.labels->build_epoch());
      }
      break;
    case GphiKind::kCh:
      if (resources.ch != nullptr && !resources.ch->FreshFor(graph)) {
        return reason("CH", resources.ch->build_epoch());
      }
      break;
    default:
      break;
  }
  return std::string();
}

FannResult SolveWith(FannAlgorithm algorithm, const FannQuery& query,
                     GphiEngine& engine, const RTree* p_tree) {
  FANNR_CHECK(FannAlgorithmSupports(algorithm, query.aggregate));
  FANNR_CHECK(!query.Weighted() || FannAlgorithmSupportsWeights(algorithm));
  switch (algorithm) {
    case FannAlgorithm::kNaive:
      return SolveNaive(query);
    case FannAlgorithm::kGd:
      return SolveGd(query, engine);
    case FannAlgorithm::kRList:
      return SolveRList(query, engine);
    case FannAlgorithm::kIer:
      FANNR_CHECK(p_tree != nullptr && "IER-kNN needs the R-tree over P");
      return SolveIer(query, engine, *p_tree);
    case FannAlgorithm::kExactMax:
      return SolveExactMax(query);
    case FannAlgorithm::kApxSum:
      return SolveApxSum(query, engine);
  }
  FANNR_CHECK(false && "unknown FannAlgorithm");
}

}  // namespace fannr
