// IER-* g_phi engines: Incremental Euclidean Restriction over an R-tree
// built on Q, verified by an exact network-distance oracle.
//
// Since the graph is Euclidean-consistent, the Euclidean distance
// lower-bounds the network distance, so query points can be examined in
// increasing Euclidean order and the scan stops as soon as the next
// Euclidean distance reaches the current k-th best verified network
// distance — the classic IER argument, applied here to kNN over Q.
//
// Verification is factory-based: one Evaluate() fixes the candidate p, so
// oracles that can amortize per-source work (G-tree's SourceOracle
// precomputes the source-side sweep) construct that state once per
// candidate.

#include <algorithm>
#include <optional>

#include "common/flat_heap.h"
#include "fann/gphi.h"
#include "sp/astar.h"
#include "spatial/rtree.h"

namespace fannr {

namespace {

// Max-heap entry holding one verified candidate. The heap orders by the
// canonical (distance, vertex id) total order, inverted so top() is the
// worst kept candidate — the same convention as kfann.cc's TopK.
struct Verified {
  Weight network_distance;
  VertexId vertex;
};
struct VerifiedInverted {
  bool operator()(const Verified& a, const Verified& b) const {
    if (a.network_distance != b.network_distance) {
      return a.network_distance > b.network_distance;
    }
    return a.vertex > b.vertex;
  }
};

// VerifierFactory(p) returns a callable (q) -> network distance p<->q.
template <typename VerifierFactory>
class IerEngine : public GphiEngine {
 public:
  IerEngine(const Graph& graph, VerifierFactory factory,
            std::string_view engine_name)
      : graph_(graph), factory_(std::move(factory)), name_(engine_name) {
    FANNR_CHECK(graph.HasCoordinates());
    FANNR_CHECK(graph.EuclideanConsistent());
  }

  void Prepare(const IndexedVertexSet& query_points) override {
    query_points_ = &query_points;
    std::vector<RTree::Item> items;
    items.reserve(query_points.size());
    for (VertexId q : query_points.members()) {
      items.push_back({graph_.Coord(q), q});
    }
    q_tree_ = RTree::BulkLoad(std::move(items));
  }

  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override {
    FANNR_CHECK(query_points_ != nullptr);
    auto verifier = factory_(p);
    auto nn = q_tree_.NearestNeighbors(graph_.Coord(p));
    // Max-heap of the k best verified network distances so far; persists
    // across Evaluate calls so repeat candidates run allocation-free.
    FlatHeap<Verified, VerifiedInverted>& best = best_;
    best.clear();
    while (true) {
      const double next_euclid = nn.PeekDistance();
      if (best.size() == k &&
          next_euclid >= best.top().network_distance) {
        break;  // no unexamined point can improve the k nearest
      }
      auto hit = nn.Next();
      if (!hit.has_value()) break;
      const Weight network = verifier(hit->item.id);
      if (network == kInfWeight) continue;
      if (best.size() < k) {
        best.push({network, hit->item.id});
      } else if (network < best.top().network_distance) {
        best.pop();
        best.push({network, hit->item.id});
      }
    }

    GphiResult result;
    if (best.size() < k) return result;  // fewer than k reachable
    std::vector<Verified> sorted;
    sorted.reserve(k);
    while (!best.empty()) {
      sorted.push_back(best.top());
      best.pop();
    }
    std::reverse(sorted.begin(), sorted.end());  // nearest first
    std::vector<Weight> nearest;
    nearest.reserve(k);
    for (const Verified& v : sorted) {
      nearest.push_back(v.network_distance);
      result.subset.push_back(v.vertex);
    }
    result.distance = FoldSorted(nearest.data(), k, aggregate);
    return result;
  }

  std::string_view name() const override { return name_; }

 private:
  const Graph& graph_;
  VerifierFactory factory_;
  std::string_view name_;
  const IndexedVertexSet* query_points_ = nullptr;
  RTree q_tree_;
  FlatHeap<Verified, VerifiedInverted> best_;
};

template <typename VerifierFactory>
std::unique_ptr<GphiEngine> MakeIerEngine(const Graph& graph,
                                          VerifierFactory factory,
                                          std::string_view engine_name) {
  return std::make_unique<IerEngine<VerifierFactory>>(
      graph, std::move(factory), engine_name);
}

}  // namespace

std::unique_ptr<GphiEngine> MakeIerGphiEngine(GphiKind kind,
                                              const GphiResources& resources);

std::unique_ptr<GphiEngine> MakeIerGphiEngine(GphiKind kind,
                                              const GphiResources& resources) {
  const Graph& graph = *resources.graph;
  switch (kind) {
    case GphiKind::kIerAStar: {
      auto astar = std::make_shared<AStarSearch>(graph);
      return MakeIerEngine(
          graph,
          [astar](VertexId p) {
            return [astar, p](VertexId q) { return astar->Distance(q, p); };
          },
          "IER-A*");
    }
    case GphiKind::kIerGTree: {
      const GTree* gtree = resources.gtree;
      FANNR_CHECK(gtree != nullptr);
      return MakeIerEngine(
          graph,
          [gtree](VertexId p) {
            // Source-side sweep amortized across all verifications of
            // this candidate.
            auto oracle = std::make_shared<GTree::SourceOracle>(*gtree, p);
            return [oracle](VertexId q) { return oracle->DistanceTo(q); };
          },
          "IER-GTree");
    }
    case GphiKind::kIerPhl: {
      const HubLabels* labels = resources.labels;
      FANNR_CHECK(labels != nullptr);
      return MakeIerEngine(
          graph,
          [labels](VertexId p) {
            return [labels, p](VertexId q) {
              return labels->Distance(q, p);
            };
          },
          "IER-PHL");
    }
    default:
      FANNR_CHECK(false && "not an IER kind");
  }
}

}  // namespace fannr
