#include "fann/gd.h"

namespace fannr {

void ValidateQuery(const FannQuery& query) {
  FANNR_CHECK(query.graph != nullptr);
  FANNR_CHECK(query.data_points != nullptr && !query.data_points->empty());
  FANNR_CHECK(query.query_points != nullptr &&
              !query.query_points->empty());
  FANNR_CHECK(query.phi > 0.0 && query.phi <= 1.0);
}

FannResult SolveGd(const FannQuery& query, GphiEngine& engine) {
  ValidateQuery(query);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);

  FannResult best;
  for (VertexId p : query.data_points->members()) {
    GphiResult r = engine.Evaluate(p, k, query.aggregate);
    ++best.gphi_evaluations;
    if (r.distance == kInfWeight) continue;
    // Canonical (distance, vertex id) order: exact-distance ties go to
    // the smaller vertex id, independent of P's iteration order.
    if (r.distance < best.distance ||
        (r.distance == best.distance && p < best.best)) {
      best.best = p;
      best.distance = r.distance;
      best.subset = std::move(r.subset);
    }
  }
  return best;
}

}  // namespace fannr
