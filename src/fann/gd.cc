#include "fann/gd.h"

namespace fannr {

FannResult SolveGd(const FannQuery& query, GphiEngine& engine) {
  ValidateQuery(query);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);
  FANNR_CHECK(engine.BindWeights(query.WeightsSpan()) &&
              "engine cannot honor per-query-point weights");

  FannResult best;
  for (VertexId p : query.data_points->members()) {
    GphiResult r = engine.Evaluate(p, k, query.aggregate);
    ++best.gphi_evaluations;
    if (r.distance == kInfWeight) continue;
    // Canonical (distance, vertex id) order: exact-distance ties go to
    // the smaller vertex id, independent of P's iteration order.
    if (r.distance < best.distance ||
        (r.distance == best.distance && p < best.best)) {
      best.best = p;
      best.distance = r.distance;
      best.subset = std::move(r.subset);
    }
  }
  return best;
}

}  // namespace fannr
