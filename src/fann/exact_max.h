// The Exact-max algorithm (paper Section IV-A, Algorithm 2): an exact,
// index-free solver specific to max-FANN_R.
//
// All |Q| query points expand simultaneously (switchable multi-source
// Dijkstra over P, from-near-to-far); a counter per data point counts
// arrivals. Because global arrivals occur in nondecreasing distance
// order, the first data point whose counter reaches phi|Q| is the exact
// max-FANN_R answer, its k-th arrival distance is d*, and the arriving
// sources are Q*_phi — so no separate g_phi call is needed at all (the
// paper notes g_phi runs exactly once; recording arrivals makes even that
// call implicit, which is why the choice of g_phi implementation barely
// matters for Exact-max, Table V).

#ifndef FANNR_FANN_EXACT_MAX_H_
#define FANNR_FANN_EXACT_MAX_H_

#include "fann/gphi.h"
#include "fann/query.h"

namespace fannr {

/// Solves a max-FANN_R query exactly. Requires query.aggregate == kMax.
/// This variant records arrivals, so the answer triple is assembled with
/// no g_phi call at all.
FannResult SolveExactMax(const FannQuery& query);

/// Paper-literal variant (Algorithm 2 line 8): once the winning counter
/// saturates, the subset and distance come from a single g_phi evaluation
/// with `engine`. Used by the Table V experiment, which shows the engine
/// choice barely matters because it runs exactly once.
FannResult SolveExactMax(const FannQuery& query, GphiEngine& engine);

}  // namespace fannr

#endif  // FANNR_FANN_EXACT_MAX_H_
