#include "fann/gphi.h"

#include <algorithm>

namespace fannr {

std::string_view GphiKindName(GphiKind kind) {
  switch (kind) {
    case GphiKind::kIne:
      return "INE";
    case GphiKind::kAStar:
      return "A*";
    case GphiKind::kGTree:
      return "GTree";
    case GphiKind::kPhl:
      return "PHL";
    case GphiKind::kIerAStar:
      return "IER-A*";
    case GphiKind::kIerGTree:
      return "IER-GTree";
    case GphiKind::kIerPhl:
      return "IER-PHL";
    case GphiKind::kCh:
      return "CH";
  }
  return "?";
}

namespace internal_gphi {

GphiResult SelectAndFold(const IndexedVertexSet& query_points,
                         const std::vector<Weight>& distances, size_t k,
                         Aggregate aggregate, SelectScratch* scratch,
                         std::span<const double> weights) {
  FANNR_CHECK(distances.size() == query_points.size());
  FANNR_CHECK(weights.empty() || weights.size() == distances.size());
  GphiResult result;
  SelectScratch local;
  SelectScratch& s = scratch != nullptr ? *scratch : local;

  // Pack (distance, id) records contiguously; the selection below then
  // works on one flat array instead of permuting indexes into two. A
  // weighted query scales here, once, so selection, tie-breaking, and
  // the fold all see w_i * d_i (validation guarantees w_i finite > 0,
  // which keeps +inf distances +inf).
  s.entries.resize(distances.size());
  if (weights.empty()) {
    for (size_t i = 0; i < distances.size(); ++i) {
      s.entries[i] = {distances[i], query_points[i]};
    }
  } else {
    for (size_t i = 0; i < distances.size(); ++i) {
      s.entries[i] = {distances[i] * weights[i], query_points[i]};
    }
  }
  // Canonical order: (distance, query point id). The id tie-break makes
  // the selected subset — and thus every solver built on top of this
  // fold — independent of Q's iteration order.
  auto canonical = [](const SelectScratch::Entry& a,
                      const SelectScratch::Entry& b) {
    return a.distance != b.distance ? a.distance < b.distance
                                    : a.vertex < b.vertex;
  };
  const size_t take = std::min(k, s.entries.size());
  if (take < s.entries.size()) {
    std::nth_element(s.entries.begin(), s.entries.begin() + take,
                     s.entries.end(), canonical);
  }
  std::sort(s.entries.begin(), s.entries.begin() + take, canonical);

  // Branchless count of the reachable prefix (kInfWeight sorts last, so
  // the finite entries are exactly a prefix of the sorted range).
  size_t finite = 0;
  for (size_t i = 0; i < take; ++i) {
    finite += s.entries[i].distance < kInfWeight ? 1 : 0;
  }
  s.nearest.resize(finite);
  result.subset.resize(finite);
  for (size_t i = 0; i < finite; ++i) {
    s.nearest[i] = s.entries[i].distance;
    result.subset[i] = s.entries[i].vertex;
  }
  if (finite < k) {
    result.distance = kInfWeight;  // fewer than k reachable
    return result;
  }
  result.distance = FoldSorted(s.nearest.data(), finite, aggregate);
  return result;
}

}  // namespace internal_gphi

}  // namespace fannr
