#include "fann/gphi.h"

#include <algorithm>
#include <numeric>

namespace fannr {

std::string_view GphiKindName(GphiKind kind) {
  switch (kind) {
    case GphiKind::kIne:
      return "INE";
    case GphiKind::kAStar:
      return "A*";
    case GphiKind::kGTree:
      return "GTree";
    case GphiKind::kPhl:
      return "PHL";
    case GphiKind::kIerAStar:
      return "IER-A*";
    case GphiKind::kIerGTree:
      return "IER-GTree";
    case GphiKind::kIerPhl:
      return "IER-PHL";
    case GphiKind::kCh:
      return "CH";
  }
  return "?";
}

namespace internal_gphi {

GphiResult SelectAndFold(const IndexedVertexSet& query_points,
                         const std::vector<Weight>& distances, size_t k,
                         Aggregate aggregate) {
  FANNR_CHECK(distances.size() == query_points.size());
  GphiResult result;
  // Canonical order: (distance, query point id). The id tie-break makes
  // the selected subset — and thus every solver built on top of this
  // fold — independent of Q's iteration order.
  auto canonical = [&](uint32_t a, uint32_t b) {
    return distances[a] != distances[b] ? distances[a] < distances[b]
                                        : query_points[a] < query_points[b];
  };
  std::vector<uint32_t> order(distances.size());
  std::iota(order.begin(), order.end(), 0u);
  if (k < order.size()) {
    std::nth_element(order.begin(), order.begin() + k, order.end(),
                     canonical);
    order.resize(k);
  }
  std::sort(order.begin(), order.end(), canonical);

  std::vector<Weight> nearest;
  nearest.reserve(order.size());
  for (uint32_t idx : order) {
    if (distances[idx] == kInfWeight) break;
    nearest.push_back(distances[idx]);
    result.subset.push_back(query_points[idx]);
  }
  if (nearest.size() < k) {
    result.distance = kInfWeight;  // fewer than k reachable
    return result;
  }
  result.distance = FoldSorted(nearest.data(), nearest.size(), aggregate);
  return result;
}

}  // namespace internal_gphi

}  // namespace fannr
