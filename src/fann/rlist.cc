#include "fann/rlist.h"

#include <algorithm>
#include <span>
#include <vector>

#include "sp/incremental_nn.h"

namespace fannr {

FannResult SolveRList(const FannQuery& query, GphiEngine& engine) {
  return SolveRList(query, engine, RListOptions{});
}

FannResult SolveRList(const FannQuery& query, GphiEngine& engine,
                      const RListOptions& options) {
  ValidateQuery(query);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);
  FANNR_CHECK(engine.BindWeights(query.WeightsSpan()) &&
              "engine cannot honor per-query-point weights");
  const std::span<const double> weights = query.WeightsSpan();

  // One list (switchable Dijkstra expansion over P) per query point.
  std::vector<IncrementalNnSearch> lists;
  lists.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    lists.emplace_back(*query.graph, q, *query.data_points);
  }

  std::vector<bool> evaluated(query.data_points->size(), false);
  std::vector<Weight> heads(lists.size());
  std::vector<Weight> scratch(lists.size());
  FannResult best;

  while (true) {
    // Gather heads; the threshold is the aggregate of the k smallest
    // (exhausted lists contribute +inf, which is still a valid lower
    // bound for unseen points: such points are unreachable from that
    // query point).
    size_t min_list = lists.size();
    Weight min_head = kInfWeight;
    for (size_t i = 0; i < lists.size(); ++i) {
      const auto* head = lists[i].Peek();
      heads[i] = head == nullptr ? kInfWeight : head->distance;
      // Weighted queries bound by w_i * head_i: for any unseen point p,
      // w_i * d(q_i, p) >= w_i * head_i (w_i > 0 by validation), so the
      // fold of the k smallest weighted heads still lower-bounds every
      // unevaluated g_phi. An exhausted list's +inf head stays +inf.
      if (!weights.empty() && heads[i] != kInfWeight) {
        heads[i] *= weights[i];
      }
      if (heads[i] < min_head) {
        min_head = heads[i];
        min_list = i;
      }
    }
    if (min_list == lists.size()) break;  // all lists exhausted

    if (options.use_threshold) {
      scratch = heads;
      std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                       scratch.end());
      Weight threshold;
      if (query.aggregate == Aggregate::kMax) {
        threshold = scratch[k - 1];
      } else {
        threshold = 0.0;
        for (size_t i = 0; i < k; ++i) threshold += scratch[i];
      }
      // threshold = +inf means fewer than k lists still have finite
      // heads, so no unevaluated point has finite g_phi: stopping is
      // exact (covers Q spanning several connected components).
      if (threshold == kInfWeight) break;
      // Margined and strict: an unevaluated point at (or within FP noise
      // of) best.distance can still win the vertex-id tie-break, and the
      // q-side threshold can overshoot the engine's p-side value by a
      // few ulps (see PruneBoundExceeds).
      if (PruneBoundExceeds(threshold, best.distance)) break;
    }

    const auto hit = lists[min_list].Next();
    const uint32_t p_index = query.data_points->IndexOf(hit->vertex);
    if (!evaluated[p_index]) {
      evaluated[p_index] = true;
      GphiResult r = engine.Evaluate(hit->vertex, k, query.aggregate);
      ++best.gphi_evaluations;
      if (r.distance < best.distance ||
          (r.distance != kInfWeight && r.distance == best.distance &&
           hit->vertex < best.best)) {
        best.best = hit->vertex;
        best.distance = r.distance;
        best.subset = std::move(r.subset);
      }
    }
  }
  return best;
}

}  // namespace fannr
