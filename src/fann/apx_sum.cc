#include "fann/apx_sum.h"

#include <algorithm>
#include <vector>

#include "fann/gd.h"
#include "sp/incremental_nn.h"

namespace fannr {

FannResult SolveApxSum(const FannQuery& query, GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(query.aggregate == Aggregate::kSum &&
              "APX-sum's approximation guarantee holds for sum-FANN_R");

  // Candidate set: the network 1-NN in P of each query point (Algorithm 3
  // lines 2-4). Different query points often share a nearest data point,
  // so the candidate set is usually smaller than |Q|.
  std::vector<VertexId> candidates;
  candidates.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    IncrementalNnSearch nn(*query.graph, q, *query.data_points);
    auto hit = nn.Next();
    if (!hit.has_value()) continue;  // q reaches no data point
    if (std::find(candidates.begin(), candidates.end(), hit->vertex) ==
        candidates.end()) {
      candidates.push_back(hit->vertex);
    }
  }
  if (candidates.empty()) return FannResult{};

  // Exact FANN_R over the reduced candidate set (Algorithm 3 line 5).
  IndexedVertexSet candidate_set(query.graph->NumVertices(),
                                 std::move(candidates));
  FannQuery reduced = query;
  reduced.data_points = &candidate_set;
  return SolveGd(reduced, engine);
}

}  // namespace fannr
