#include "fann/apx_sum.h"

#include <unordered_set>
#include <vector>

#include "fann/gd.h"
#include "sp/incremental_nn.h"

namespace fannr {

FannResult SolveApxSum(const FannQuery& query, GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(!query.Weighted() &&
              "APX-sum's bound proof folds raw distances and cannot honor "
              "per-query-point weights");
  FANNR_CHECK(query.aggregate == Aggregate::kSum &&
              "APX-sum's approximation guarantee holds for sum-FANN_R");

  // Candidate set: the network 1-NN in P of each query point (Algorithm 3
  // lines 2-4). Different query points often share a nearest data point,
  // so the candidate set is usually smaller than |Q|. Dedup through a
  // hash set — the linear scan it replaces made this loop O(|Q|^2) on
  // queries where most 1-NNs are distinct.
  std::vector<VertexId> candidates;
  std::unordered_set<VertexId> seen;
  candidates.reserve(query.query_points->size());
  seen.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    IncrementalNnSearch nn(*query.graph, q, *query.data_points);
    auto hit = nn.Next();
    if (!hit.has_value()) continue;  // q reaches no data point
    if (seen.insert(hit->vertex).second) candidates.push_back(hit->vertex);
  }
  if (candidates.empty()) return FannResult{};

  // Exact FANN_R over the reduced candidate set (Algorithm 3 line 5).
  IndexedVertexSet candidate_set(query.graph->NumVertices(),
                                 std::move(candidates));
  FannQuery reduced = query;
  reduced.data_points = &candidate_set;
  return SolveGd(reduced, engine);
}

}  // namespace fannr
