// Aggregate functions for FANN_R queries (paper Section II-A).
//
// g is either max or sum. The structural fact every algorithm relies on:
// for both aggregates, the optimal flexible subset Q^p_phi of a fixed
// candidate p is the set of the k = ceil(phi * |Q|) query points nearest
// to p in network distance, so evaluating g_phi reduces to a kNN query
// over Q followed by a fold.

#ifndef FANNR_FANN_AGGREGATE_H_
#define FANNR_FANN_AGGREGATE_H_

#include <cstddef>
#include <string_view>

#include "graph/graph.h"

namespace fannr {

/// The aggregate g of an FANN_R query.
enum class Aggregate {
  kMax,
  kSum,
};

/// Human-readable name ("max" / "sum").
std::string_view AggregateName(Aggregate aggregate);

/// The flexible subset size k = phi * |Q|, i.e. max(1, ceil(phi * |Q|)).
/// Requires 0 < phi <= 1.
size_t FlexK(double phi, size_t q_size);

/// Folds `count` nondecreasing distances (the k nearest, sorted) into the
/// aggregate value: the last one for max, their sum for sum. Returns
/// kInfWeight when count == 0.
Weight FoldSorted(const Weight* distances, size_t count,
                  Aggregate aggregate);

/// Robust pruning comparison for solver termination: true when `bound`
/// clearly exceeds `best`, with a relative margin absorbing accumulated
/// floating-point noise. Pruning bounds (R-List heads, Euclidean lower
/// bounds) and g_phi evaluations may sum the same shortest path in
/// different orders, so a bound can land a few ulps ABOVE the engine's
/// value for the very candidate it is supposed to lower-bound; pruning
/// on a bare `>` would then skip a candidate another solver keeps. The
/// margin keeps every candidate within FP noise of the incumbent alive,
/// and the shared (distance, vertex id) tie-break decides among them —
/// which is what makes solver answers bitwise comparable. Exact values
/// (including 0 and +-inf) are unaffected by the multiplicative margin.
inline bool PruneBoundExceeds(Weight bound, Weight best) {
  return bound > best * (1.0 + 1e-12);
}

}  // namespace fannr

#endif  // FANNR_FANN_AGGREGATE_H_
