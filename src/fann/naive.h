// The naive FANN_R method (paper Section II-C): enumerate all
// C(|Q|, phi|Q|) subsets of Q and answer an ANN query per subset.
//
// Exponential in |Q| — the paper introduces it only to motivate the real
// algorithms ("always infeasible in practice"); we implement it as a
// correctness oracle for small instances and for the documentation
// examples. It also directly validates the k-nearest-subset equivalence
// used everywhere else, because it optimizes over subsets literally as in
// Definition 1.

#ifndef FANNR_FANN_NAIVE_H_
#define FANNR_FANN_NAIVE_H_

#include "fann/query.h"

namespace fannr {

/// Exhaustive subset-enumeration solve. Aborts if C(|Q|, phi|Q|) exceeds
/// ~10^7 (use only on toy instances).
FannResult SolveNaive(const FannQuery& query);

}  // namespace fannr

#endif  // FANNR_FANN_NAIVE_H_
