// The generalized Dijkstra-based algorithm (GD), paper Section III-A.
//
// Enumerates every data point p in P, evaluates g_phi(p, Q) with the
// supplied engine, and keeps the minimum. With the INE engine this is the
// paper's "Baseline"; with other engines it is the GD family of Fig. 3(a).

#ifndef FANNR_FANN_GD_H_
#define FANNR_FANN_GD_H_

#include "fann/gphi.h"
#include "fann/query.h"

namespace fannr {

/// Solves an FANN_R query by exhaustive enumeration of P. Exact for both
/// aggregates. Calls engine.Prepare() itself.
FannResult SolveGd(const FannQuery& query, GphiEngine& engine);

}  // namespace fannr

#endif  // FANNR_FANN_GD_H_
