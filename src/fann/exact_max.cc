#include "fann/exact_max.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_heap.h"
#include "sp/incremental_nn.h"

namespace fannr {

namespace {

// Core of Algorithm 2: multi-source expansion with counters. Returns the
// first data point whose counter reaches k together with its arrivals
// (sorted by (distance, query id), nearest first) and the saturating
// distance; best stays kInvalidVertex when no counter saturates. When
// several counters saturate at the same distance, the smallest vertex id
// wins — the canonical (distance, id) order shared with the other
// solvers.
struct Saturation {
  VertexId best = kInvalidVertex;
  Weight distance = kInfWeight;
  std::vector<VertexId> arrivals;
};

Saturation RunCounters(const FannQuery& query, size_t k) {
  std::vector<IncrementalNnSearch> lists;
  lists.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    lists.emplace_back(*query.graph, q, *query.data_points);
  }

  // Global queue over list heads: pops occur in nondecreasing distance.
  using Head = std::pair<Weight, uint32_t>;  // (head distance, list index)
  FlatHeap<Head> heads;
  heads.reserve(lists.size());
  for (uint32_t i = 0; i < lists.size(); ++i) {
    const auto* head = lists[i].Peek();
    if (head != nullptr) heads.push({head->distance, i});
  }

  // arrival = (distance from its query point, query point id).
  using Arrival = std::pair<Weight, VertexId>;
  std::unordered_map<VertexId, std::vector<Arrival>> arrivals;
  while (!heads.empty()) {
    // Drain the whole plateau at distance d before deciding: equal-
    // distance pops arrive in an order that depends on Q's iteration
    // order, so the first counter to saturate within the plateau is not
    // deterministic — but the *set* of saturations at distance d is.
    const Weight d = heads.top().first;
    VertexId best = kInvalidVertex;
    while (!heads.empty() && heads.top().first == d) {
      const uint32_t i = heads.top().second;
      heads.pop();
      const auto hit = lists[i].Next();
      FANNR_DCHECK(hit.has_value());
      auto& arrived = arrivals[hit->vertex];
      arrived.push_back({hit->distance, lists[i].source()});
      if (arrived.size() >= k && hit->vertex < best) best = hit->vertex;
      const auto* next = lists[i].Peek();
      if (next != nullptr) heads.push({next->distance, i});
    }
    if (best != kInvalidVertex) {
      // k-th arrival: exact answer (max over the k nearest sources = the
      // plateau distance d).
      std::vector<Arrival>& arrived = arrivals[best];
      std::sort(arrived.begin(), arrived.end());
      Saturation sat;
      sat.best = best;
      sat.distance = d;
      sat.arrivals.reserve(k);
      for (size_t i = 0; i < k; ++i) sat.arrivals.push_back(arrived[i].second);
      return sat;
    }
  }
  return {};  // fewer than k query points reach any data point
}

}  // namespace

FannResult SolveExactMax(const FannQuery& query) {
  ValidateQuery(query);
  FANNR_CHECK(!query.Weighted() &&
              "Exact-max's saturation counters pop by raw distance and "
              "cannot honor per-query-point weights");
  FANNR_CHECK(query.aggregate == Aggregate::kMax &&
              "Exact-max answers max-FANN_R only (see the paper's sum "
              "counterexample, Table II)");
  Saturation sat = RunCounters(query, query.FlexSubsetSize());
  FannResult result;
  if (sat.best == kInvalidVertex) return result;
  result.best = sat.best;
  result.distance = sat.distance;
  result.subset = std::move(sat.arrivals);
  result.gphi_evaluations = 0;  // implicit in the arrival bookkeeping
  return result;
}

FannResult SolveExactMax(const FannQuery& query, GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(!query.Weighted());
  FANNR_CHECK(query.aggregate == Aggregate::kMax);
  const size_t k = query.FlexSubsetSize();
  Saturation sat = RunCounters(query, k);
  FannResult result;
  if (sat.best == kInvalidVertex) return result;
  engine.Prepare(*query.query_points);
  GphiResult r = engine.Evaluate(sat.best, k, Aggregate::kMax);
  result.best = sat.best;
  result.distance = r.distance;
  result.subset = std::move(r.subset);
  result.gphi_evaluations = 1;  // Algorithm 2 line 8
  return result;
}

}  // namespace fannr
