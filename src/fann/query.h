// FANN_R query and result types (paper Definition 2).

#ifndef FANNR_FANN_QUERY_H_
#define FANNR_FANN_QUERY_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fann/aggregate.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"

namespace fannr {

/// One FANN_R query: the quintuple (G, P, Q, phi, g). All pointers are
/// non-owning and must outlive the solve call.
struct FannQuery {
  const Graph* graph = nullptr;
  const IndexedVertexSet* data_points = nullptr;   // P
  const IndexedVertexSet* query_points = nullptr;  // Q
  double phi = 0.5;
  Aggregate aggregate = Aggregate::kSum;
  /// Optional per-query-point weights w_i, aligned with Q's members
  /// (Wang & Zhang's weighted generalization): every distance d(p, q_i)
  /// is replaced by w_i * d(p, q_i) before subset selection and folding.
  /// Both sum and max are monotone in each term, so the optimal flexible
  /// subset is still the k smallest weighted distances — the existing
  /// SelectAndFold structure carries over unchanged. Null or empty means
  /// unweighted; otherwise size must equal |Q| with every weight finite
  /// and positive (validated like the other invariants).
  const std::vector<double>* weights = nullptr;

  /// The flexible subset size k = phi * |Q|.
  size_t FlexSubsetSize() const {
    return FlexK(phi, query_points->size());
  }

  /// True when the query carries per-query-point weights.
  bool Weighted() const { return weights != nullptr && !weights->empty(); }

  /// The weights as a span (empty when unweighted) — the shape
  /// GphiEngine::BindWeights takes.
  std::span<const double> WeightsSpan() const {
    return Weighted() ? std::span<const double>(*weights)
                      : std::span<const double>();
  }
};

/// Outcome of answering one query. Solvers always return kOk (they
/// FANNR_CHECK their preconditions and abort on API misuse); batch
/// execution, which receives externally-assembled jobs, validates each
/// job and reports violations as kRejected results instead of undefined
/// behavior (see BatchQueryEngine::Run). kTimedOut marks a job whose
/// wall-clock deadline (BatchOptions::deadline_ms or the per-job
/// override) expired before a result could be returned.
enum class QueryStatus {
  kOk,
  kRejected,
  kTimedOut,
};

/// Short lowercase name ("ok" / "rejected" / "timed_out") for logs and
/// wire encodings.
std::string_view QueryStatusName(QueryStatus status);

/// The answer triple (p*, Q*_phi, d*), plus work counters for the
/// experiments. best == kInvalidVertex (and distance == kInfWeight) when
/// no data point can reach phi|Q| query points.
struct FannResult {
  VertexId best = kInvalidVertex;
  std::vector<VertexId> subset;  // Q*_phi, nearest first
  Weight distance = kInfWeight;
  /// Number of full g_phi evaluations performed (the quantity R-List and
  /// IER-kNN are designed to minimize).
  size_t gphi_evaluations = 0;
  /// kRejected only for batch jobs that failed validation; such results
  /// carry the reason in `error` and hold the no-answer sentinels above.
  QueryStatus status = QueryStatus::kOk;
  std::string error;
};

/// One entry of a k-FANN_R answer (Definition 3).
///
/// Contract shared by every k-FANN_R solver (see fann/kfann.h):
///  - a result list holds min(k_results, #data points with finite g_phi)
///    entries — points that cannot reach phi|Q| query points are never
///    reported;
///  - entries are sorted ascending by (distance, vertex id): exact
///    distance ties are broken by the smaller vertex id, so all solvers
///    return bitwise-identical lists for the same query;
///  - subset lists the phi|Q| supporting query points nearest first,
///    with equal-distance query points in ascending id order.
struct KFannEntry {
  VertexId vertex = kInvalidVertex;
  Weight distance = kInfWeight;
  std::vector<VertexId> subset;
};

/// Explains the first violated query invariant (null members, empty
/// sets, phi outside (0, 1]), or returns an empty string when the query
/// is well-formed. Safe on any bit pattern — it never dereferences a
/// null member — so batch execution can screen untrusted jobs with it.
std::string QueryValidationError(const FannQuery& query);

/// Validates query invariants (non-null members, non-empty sets, phi in
/// (0, 1]). Aborts on violation; called by every solver.
void ValidateQuery(const FannQuery& query);

}  // namespace fannr

#endif  // FANNR_FANN_QUERY_H_
