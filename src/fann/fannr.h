// fannr — Flexible Aggregate Nearest Neighbor queries in road networks.
//
// Umbrella header for the public API. A minimal end-to-end use:
//
//   fannr::Graph graph = fannr::BuildPreset("DE");
//   fannr::Rng rng(42);
//   fannr::IndexedVertexSet p(graph.NumVertices(),
//                             fannr::GenerateDataPoints(graph, 0.001, rng));
//   fannr::IndexedVertexSet q(graph.NumVertices(),
//       fannr::GenerateUniformQueryPoints(graph, 0.10, 128, rng));
//   fannr::FannQuery query{&graph, &p, &q, 0.5, fannr::Aggregate::kSum};
//   auto engine = fannr::MakeGphiEngine(fannr::GphiKind::kIne, {&graph});
//   fannr::FannResult answer = fannr::SolveGd(query, *engine);
//
// See README.md for the full tour and DESIGN.md for the architecture.

#ifndef FANNR_FANN_FANNR_H_
#define FANNR_FANN_FANNR_H_

#include "engine/batch_engine.h" // IWYU pragma: export
#include "fann/aggregate.h"      // IWYU pragma: export
#include "fann/apx_sum.h"        // IWYU pragma: export
#include "fann/dispatch.h"       // IWYU pragma: export
#include "fann/exact_max.h"      // IWYU pragma: export
#include "fann/extensions.h"     // IWYU pragma: export
#include "fann/gd.h"             // IWYU pragma: export
#include "fann/gphi.h"           // IWYU pragma: export
#include "fann/ier.h"            // IWYU pragma: export
#include "fann/kfann.h"          // IWYU pragma: export
#include "fann/naive.h"          // IWYU pragma: export
#include "fann/query.h"          // IWYU pragma: export
#include "fann/rlist.h"          // IWYU pragma: export
#include "graph/builder.h"       // IWYU pragma: export
#include "graph/components.h"    // IWYU pragma: export
#include "graph/generator.h"     // IWYU pragma: export
#include "graph/io.h"            // IWYU pragma: export
#include "graph/presets.h"       // IWYU pragma: export
#include "graph/vertex_set.h"    // IWYU pragma: export
#include "workload/poi.h"        // IWYU pragma: export
#include "workload/workload.h"   // IWYU pragma: export

#endif  // FANNR_FANN_FANNR_H_
