#include "fann/kfann.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/flat_heap.h"
#include "fann/ier.h"
#include "sp/incremental_nn.h"

namespace fannr {

namespace {

// Bounded collector of the k best candidates (max-heap by (distance,
// vertex id)). All ordering is by the canonical total order — distance
// first, vertex id as the tie-break — so the collected set and its
// Sorted() order are independent of offer order and identical across
// solvers (tests/corpus_replay_test.cc and the differential harness rely
// on this).
class TopK {
 public:
  explicit TopK(size_t capacity) : capacity_(capacity) {}

  /// Distance a new candidate must beat (the k-th best so far). A
  /// candidate AT this distance may still enter on the vertex-id
  /// tie-break, so termination tests against this bound must be strict
  /// (prune only when a lower bound exceeds it).
  Weight WorstBound() const {
    return heap_.size() < capacity_ ? kInfWeight : heap_.top().distance;
  }

  void Offer(KFannEntry entry) {
    if (heap_.size() < capacity_) {
      heap_.push(std::move(entry));
      return;
    }
    if (!Less(entry, heap_.top())) return;
    heap_.pop();
    heap_.push(std::move(entry));
  }

  /// Extracts the entries sorted ascending by (distance, vertex id).
  std::vector<KFannEntry> Sorted() && {
    std::vector<KFannEntry> result;
    result.reserve(heap_.size());
    while (!heap_.empty()) {
      result.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(result.begin(), result.end());
    return result;
  }

 private:
  static bool Less(const KFannEntry& a, const KFannEntry& b) {
    return a.distance != b.distance ? a.distance < b.distance
                                    : a.vertex < b.vertex;
  }
  // FlatHeap is a min-heap on its comparator; inverting the canonical
  // order puts the WORST collected entry at top(), i.e. a max-heap.
  struct ByDistanceThenIdInverted {
    bool operator()(const KFannEntry& a, const KFannEntry& b) const {
      return Less(b, a);
    }
  };
  size_t capacity_;
  FlatHeap<KFannEntry, ByDistanceThenIdInverted> heap_;
};

}  // namespace

std::vector<KFannEntry> SolveKGd(const FannQuery& query, size_t k_results,
                                 GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);
  FANNR_CHECK(engine.BindWeights(query.WeightsSpan()) &&
              "engine cannot honor per-query-point weights");
  TopK top(k_results);
  for (VertexId p : query.data_points->members()) {
    GphiResult r = engine.Evaluate(p, k, query.aggregate);
    if (r.distance == kInfWeight) continue;
    top.Offer({p, r.distance, std::move(r.subset)});
  }
  return std::move(top).Sorted();
}

std::vector<KFannEntry> SolveKRList(const FannQuery& query,
                                    size_t k_results, GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);
  FANNR_CHECK(engine.BindWeights(query.WeightsSpan()) &&
              "engine cannot honor per-query-point weights");
  const std::span<const double> weights = query.WeightsSpan();

  std::vector<IncrementalNnSearch> lists;
  lists.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    lists.emplace_back(*query.graph, q, *query.data_points);
  }

  std::vector<bool> evaluated(query.data_points->size(), false);
  std::vector<Weight> heads(lists.size());
  std::vector<Weight> scratch(lists.size());
  TopK top(k_results);

  while (true) {
    size_t min_list = lists.size();
    Weight min_head = kInfWeight;
    for (size_t i = 0; i < lists.size(); ++i) {
      const auto* head = lists[i].Peek();
      heads[i] = head == nullptr ? kInfWeight : head->distance;
      // Weighted heads bound weighted g_phi terms exactly as in
      // SolveRList: w_i * d(q_i, p) >= w_i * head_i for unseen p.
      if (!weights.empty() && heads[i] != kInfWeight) {
        heads[i] *= weights[i];
      }
      if (heads[i] < min_head) {
        min_head = heads[i];
        min_list = i;
      }
    }
    if (min_list == lists.size()) break;

    // Threshold vs the k-th best candidate (Section V). The fold of the
    // k smallest heads lower-bounds g_phi of every point not yet popped
    // from any list: an exhausted list (head = +inf) cannot reach any
    // unpopped point, so folding +inf is sound. In particular, when
    // fewer than k lists still have finite heads — e.g. Q spans several
    // connected components — the threshold is +inf and no unevaluated
    // point can have finite g_phi: stopping is exact, not a heuristic.
    scratch = heads;
    std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                     scratch.end());
    Weight threshold;
    if (query.aggregate == Aggregate::kMax) {
      threshold = scratch[k - 1];
    } else {
      threshold = 0.0;
      for (size_t i = 0; i < k; ++i) threshold += scratch[i];
    }
    if (threshold == kInfWeight) break;
    // Margined and strict: a candidate at (or within FP noise of)
    // WorstBound() can still displace the current k-th best on the
    // vertex-id tie-break (see PruneBoundExceeds).
    if (PruneBoundExceeds(threshold, top.WorstBound())) break;

    const auto hit = lists[min_list].Next();
    const uint32_t p_index = query.data_points->IndexOf(hit->vertex);
    if (!evaluated[p_index]) {
      evaluated[p_index] = true;
      GphiResult r = engine.Evaluate(hit->vertex, k, query.aggregate);
      if (r.distance != kInfWeight) {
        top.Offer({hit->vertex, r.distance, std::move(r.subset)});
      }
    }
  }
  return std::move(top).Sorted();
}

std::vector<KFannEntry> SolveKIer(const FannQuery& query, size_t k_results,
                                  GphiEngine& engine, const RTree& p_tree) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  FANNR_CHECK(!query.Weighted() &&
              "IER-kNN prunes by raw Euclidean bounds and cannot honor "
              "per-query-point weights");
  FANNR_CHECK(query.graph->HasCoordinates() &&
              query.graph->EuclideanConsistent());
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);

  std::vector<Point> q_points;
  q_points.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    q_points.push_back(query.graph->Coord(q));
  }

  struct Entry {
    Weight bound;
    bool is_point;
    RTree::NodeId node;
    VertexId vertex;
  };
  struct BoundLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.bound < b.bound;
    }
  };
  FlatHeap<Entry, BoundLess> heap;
  heap.push({EuclidGphiBound(q_points, p_tree.NodeMbr(p_tree.Root()), k,
                             query.aggregate),
             false, p_tree.Root(), kInvalidVertex});
  TopK top(k_results);

  while (!heap.empty()) {
    const Entry e = heap.top();
    // Margined and strict: a subtree whose lower bound equals (or sits
    // within FP noise of) WorstBound() may hold an equal-distance
    // candidate that wins the vertex-id tie-break.
    if (PruneBoundExceeds(e.bound, top.WorstBound())) break;
    heap.pop();
    if (e.is_point) {
      GphiResult r = engine.Evaluate(e.vertex, k, query.aggregate);
      if (r.distance != kInfWeight) {
        top.Offer({e.vertex, r.distance, std::move(r.subset)});
      }
    } else if (p_tree.IsLeaf(e.node)) {
      for (const RTree::Item& item : p_tree.Items(e.node)) {
        heap.push({EuclidGphiPoint(q_points, item.point, k,
                                   query.aggregate),
                   true, 0, item.id});
      }
    } else {
      for (const RTree::Child& child : p_tree.Children(e.node)) {
        heap.push({EuclidGphiBound(q_points, child.mbr, k, query.aggregate),
                   false, child.node, kInvalidVertex});
      }
    }
  }
  return std::move(top).Sorted();
}

std::vector<KFannEntry> SolveKExactMax(const FannQuery& query,
                                       size_t k_results) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  FANNR_CHECK(!query.Weighted() &&
              "Exact-max's saturation counters pop by raw distance and "
              "cannot honor per-query-point weights");
  FANNR_CHECK(query.aggregate == Aggregate::kMax);
  const size_t k = query.FlexSubsetSize();

  std::vector<IncrementalNnSearch> lists;
  lists.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    lists.emplace_back(*query.graph, q, *query.data_points);
  }

  using Head = std::pair<Weight, uint32_t>;
  FlatHeap<Head> heads;
  heads.reserve(lists.size());
  for (uint32_t i = 0; i < lists.size(); ++i) {
    const auto* head = lists[i].Peek();
    if (head != nullptr) heads.push({head->distance, i});
  }

  // arrival = (distance from its query point, query point id); kept so
  // the reported subset can be sorted nearest-first with id tie-breaks,
  // matching the other solvers' SelectAndFold order.
  using Arrival = std::pair<Weight, VertexId>;
  std::unordered_map<VertexId, std::vector<Arrival>> arrivals;
  std::unordered_set<VertexId> saturated;
  std::vector<KFannEntry> result;

  // Pops arrive in nondecreasing distance, but the order of equal-
  // distance pops depends on Q's iteration order. Process one distance
  // plateau at a time: collect every data point whose counter reaches k
  // at exactly distance d, then emit them in vertex-id order — the same
  // (distance, id) total order the other k-FANN solvers use.
  while (!heads.empty() && result.size() < k_results) {
    const Weight d = heads.top().first;
    std::vector<VertexId> pending;
    while (!heads.empty() && heads.top().first == d) {
      const uint32_t i = heads.top().second;
      heads.pop();
      const auto hit = lists[i].Next();
      if (!saturated.count(hit->vertex)) {
        auto& arrived = arrivals[hit->vertex];
        arrived.push_back({hit->distance, lists[i].source()});
        if (arrived.size() >= k) {
          saturated.insert(hit->vertex);
          pending.push_back(hit->vertex);
        }
      }
      const auto* next = lists[i].Peek();
      if (next != nullptr) heads.push({next->distance, i});
    }
    std::sort(pending.begin(), pending.end());
    for (VertexId vertex : pending) {
      if (result.size() >= k_results) break;
      auto node = arrivals.extract(vertex);
      std::vector<Arrival>& arrived = node.mapped();
      std::sort(arrived.begin(), arrived.end());
      KFannEntry entry;
      entry.vertex = vertex;
      entry.distance = arrived[k - 1].first;  // == d
      entry.subset.reserve(k);
      for (size_t i = 0; i < k; ++i) entry.subset.push_back(arrived[i].second);
      result.push_back(std::move(entry));
    }
  }
  return result;  // (distance, vertex id) order by construction
}

}  // namespace fannr
