#include "fann/kfann.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "fann/ier.h"
#include "sp/incremental_nn.h"

namespace fannr {

namespace {

// Bounded collector of the k best candidates (max-heap by distance).
class TopK {
 public:
  explicit TopK(size_t capacity) : capacity_(capacity) {}

  /// Distance a new candidate must beat (the k-th best so far).
  Weight WorstBound() const {
    return heap_.size() < capacity_ ? kInfWeight : heap_.top().distance;
  }

  void Offer(KFannEntry entry) {
    if (entry.distance >= WorstBound()) return;
    heap_.push(std::move(entry));
    if (heap_.size() > capacity_) heap_.pop();
  }

  /// Extracts the entries sorted by distance (ascending).
  std::vector<KFannEntry> Sorted() && {
    std::vector<KFannEntry> result;
    result.reserve(heap_.size());
    while (!heap_.empty()) {
      result.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(result.begin(), result.end());
    return result;
  }

 private:
  struct ByDistance {
    bool operator()(const KFannEntry& a, const KFannEntry& b) const {
      return a.distance < b.distance;
    }
  };
  size_t capacity_;
  std::priority_queue<KFannEntry, std::vector<KFannEntry>, ByDistance>
      heap_;
};

}  // namespace

std::vector<KFannEntry> SolveKGd(const FannQuery& query, size_t k_results,
                                 GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);
  TopK top(k_results);
  for (VertexId p : query.data_points->members()) {
    GphiResult r = engine.Evaluate(p, k, query.aggregate);
    if (r.distance == kInfWeight) continue;
    top.Offer({p, r.distance, std::move(r.subset)});
  }
  return std::move(top).Sorted();
}

std::vector<KFannEntry> SolveKRList(const FannQuery& query,
                                    size_t k_results, GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);

  std::vector<IncrementalNnSearch> lists;
  lists.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    lists.emplace_back(*query.graph, q, *query.data_points);
  }

  std::vector<bool> evaluated(query.data_points->size(), false);
  std::vector<Weight> heads(lists.size());
  std::vector<Weight> scratch(lists.size());
  TopK top(k_results);

  while (true) {
    size_t min_list = lists.size();
    Weight min_head = kInfWeight;
    for (size_t i = 0; i < lists.size(); ++i) {
      const auto* head = lists[i].Peek();
      heads[i] = head == nullptr ? kInfWeight : head->distance;
      if (heads[i] < min_head) {
        min_head = heads[i];
        min_list = i;
      }
    }
    if (min_list == lists.size()) break;

    // Threshold vs the k-th best candidate (Section V).
    scratch = heads;
    std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                     scratch.end());
    Weight threshold;
    if (query.aggregate == Aggregate::kMax) {
      threshold = scratch[k - 1];
    } else {
      threshold = 0.0;
      for (size_t i = 0; i < k; ++i) threshold += scratch[i];
    }
    if (threshold >= top.WorstBound()) break;

    const auto hit = lists[min_list].Next();
    const uint32_t p_index = query.data_points->IndexOf(hit->vertex);
    if (!evaluated[p_index]) {
      evaluated[p_index] = true;
      GphiResult r = engine.Evaluate(hit->vertex, k, query.aggregate);
      if (r.distance != kInfWeight) {
        top.Offer({hit->vertex, r.distance, std::move(r.subset)});
      }
    }
  }
  return std::move(top).Sorted();
}

std::vector<KFannEntry> SolveKIer(const FannQuery& query, size_t k_results,
                                  GphiEngine& engine, const RTree& p_tree) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  FANNR_CHECK(query.graph->HasCoordinates() &&
              query.graph->EuclideanConsistent());
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);

  std::vector<Point> q_points;
  q_points.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    q_points.push_back(query.graph->Coord(q));
  }

  struct Entry {
    Weight bound;
    bool is_point;
    RTree::NodeId node;
    VertexId vertex;
    bool operator>(const Entry& o) const { return bound > o.bound; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({EuclidGphiBound(q_points, p_tree.NodeMbr(p_tree.Root()), k,
                             query.aggregate),
             false, p_tree.Root(), kInvalidVertex});
  TopK top(k_results);

  while (!heap.empty()) {
    const Entry e = heap.top();
    if (e.bound >= top.WorstBound()) break;
    heap.pop();
    if (e.is_point) {
      GphiResult r = engine.Evaluate(e.vertex, k, query.aggregate);
      if (r.distance != kInfWeight) {
        top.Offer({e.vertex, r.distance, std::move(r.subset)});
      }
    } else if (p_tree.IsLeaf(e.node)) {
      for (const RTree::Item& item : p_tree.Items(e.node)) {
        heap.push({EuclidGphiPoint(q_points, item.point, k,
                                   query.aggregate),
                   true, 0, item.id});
      }
    } else {
      for (const RTree::Child& child : p_tree.Children(e.node)) {
        heap.push({EuclidGphiBound(q_points, child.mbr, k, query.aggregate),
                   false, child.node, kInvalidVertex});
      }
    }
  }
  return std::move(top).Sorted();
}

std::vector<KFannEntry> SolveKExactMax(const FannQuery& query,
                                       size_t k_results) {
  ValidateQuery(query);
  FANNR_CHECK(k_results > 0);
  FANNR_CHECK(query.aggregate == Aggregate::kMax);
  const size_t k = query.FlexSubsetSize();

  std::vector<IncrementalNnSearch> lists;
  lists.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    lists.emplace_back(*query.graph, q, *query.data_points);
  }

  using Head = std::pair<Weight, uint32_t>;
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heads;
  for (uint32_t i = 0; i < lists.size(); ++i) {
    const auto* head = lists[i].Peek();
    if (head != nullptr) heads.push({head->distance, i});
  }

  std::unordered_map<VertexId, std::vector<VertexId>> arrivals;
  std::unordered_set<VertexId> saturated;
  std::vector<KFannEntry> result;

  while (!heads.empty() && result.size() < k_results) {
    auto [d, i] = heads.top();
    heads.pop();
    const auto hit = lists[i].Next();
    if (!saturated.count(hit->vertex)) {
      auto& arrived = arrivals[hit->vertex];
      arrived.push_back(lists[i].source());
      if (arrived.size() >= k) {
        saturated.insert(hit->vertex);
        result.push_back({hit->vertex, d, std::move(arrived)});
        arrivals.erase(hit->vertex);
      }
    }
    const auto* next = lists[i].Peek();
    if (next != nullptr) heads.push({next->distance, i});
  }
  return result;  // already in nondecreasing distance order
}

}  // namespace fannr
