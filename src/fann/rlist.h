// The R-List algorithm (paper Section III-B): the List threshold
// algorithm of Li et al. adapted to road networks.
//
// One switchable incremental Dijkstra expansion per query point
// enumerates the data points from-near-to-far; the expansion whose head
// is nearest advances. Each newly seen data point is evaluated exactly
// (one g_phi call, never repeated), and the search stops once the
// threshold — the aggregate of the phi|Q| smallest list heads, a lower
// bound on g_phi of every unseen data point — reaches the best candidate.

#ifndef FANNR_FANN_RLIST_H_
#define FANNR_FANN_RLIST_H_

#include "fann/gphi.h"
#include "fann/query.h"

namespace fannr {

struct RListOptions {
  /// Disable the early-termination threshold (ablation only: the
  /// algorithm then evaluates every data point, like GD but in
  /// from-near-to-far order).
  bool use_threshold = true;
};

/// Solves an FANN_R query with R-List. Exact for both aggregates.
FannResult SolveRList(const FannQuery& query, GphiEngine& engine);
FannResult SolveRList(const FannQuery& query, GphiEngine& engine,
                      const RListOptions& options);

}  // namespace fannr

#endif  // FANNR_FANN_RLIST_H_
