// The APX-sum algorithm (paper Section IV-B, Algorithm 3): a
// constant-factor approximation specific to sum-FANN_R.
//
// The candidate set is reduced from P to the network nearest neighbors of
// the query points (at most |Q| candidates, usually fewer), and the exact
// FANN_R routine runs on the candidates only. Theorem 1: the result is a
// 3-approximation; Theorem 2: a 2-approximation when Q is a subset of P.
// In practice the observed ratio stays below 1.2 (paper Fig. 11).

#ifndef FANNR_FANN_APX_SUM_H_
#define FANNR_FANN_APX_SUM_H_

#include "fann/gphi.h"
#include "fann/query.h"

namespace fannr {

/// Solves a sum-FANN_R query approximately (factor <= 3, or <= 2 when
/// Q is a subset of P). Requires query.aggregate == kSum. The engine is
/// used for the exact FANN_R pass over the reduced candidate set; the
/// nearest-neighbor lookups are index-free incremental expansions, so the
/// whole algorithm works without any road-network index when combined
/// with the INE engine.
FannResult SolveApxSum(const FannQuery& query, GphiEngine& engine);

}  // namespace fannr

#endif  // FANNR_FANN_APX_SUM_H_
