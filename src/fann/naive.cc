#include "fann/naive.h"

#include <algorithm>
#include <vector>

#include "sp/dijkstra.h"

namespace fannr {

namespace {

// C(n, k) capped at a large sentinel to avoid overflow.
size_t BinomialCapped(size_t n, size_t k, size_t cap) {
  k = std::min(k, n - k);
  size_t result = 1;
  for (size_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > cap) return cap + 1;
  }
  return result;
}

}  // namespace

FannResult SolveNaive(const FannQuery& query) {
  ValidateQuery(query);
  const size_t m = query.query_points->size();
  const size_t k = query.FlexSubsetSize();
  FANNR_CHECK(BinomialCapped(m, k, 10'000'000) <= 10'000'000 &&
              "naive solver is for toy instances only");

  // Distance matrix D[p index][q index] via one SSSP per query point
  // (|Q| << |P| in the toy instances this is used on).
  const auto& p_members = query.data_points->members();
  std::vector<std::vector<Weight>> dist_to_p(m);
  DijkstraSearch search(*query.graph);
  std::vector<VertexId> p_list(p_members.begin(), p_members.end());
  for (size_t qi = 0; qi < m; ++qi) {
    dist_to_p[qi] = search.Distances((*query.query_points)[qi], p_list);
  }

  // Enumerate subsets of size k in lexicographic order; for each subset
  // answer the ANN query over P.
  std::vector<size_t> subset(k);
  for (size_t i = 0; i < k; ++i) subset[i] = i;

  FannResult best;
  std::vector<Weight> fold_scratch(k);
  auto consider = [&] {
    for (size_t pi = 0; pi < p_list.size(); ++pi) {
      bool reachable = true;
      fold_scratch.clear();
      for (size_t qi : subset) {
        Weight d = dist_to_p[qi][pi];
        if (d == kInfWeight) {
          reachable = false;
          break;
        }
        // Weighted queries aggregate w_i * d(p, q_i) (the same transform
        // SelectAndFold applies), keeping this enumeration a valid
        // second oracle for the weighted solvers.
        if (query.Weighted()) d *= (*query.weights)[qi];
        fold_scratch.push_back(d);
      }
      if (!reachable) continue;
      // Fold in ascending order — the canonical accumulation order every
      // g_phi implementation uses (FoldSorted over sorted distances) —
      // so sums are bitwise comparable across solvers and the oracle.
      std::sort(fold_scratch.begin(), fold_scratch.end());
      Weight agg = 0.0;
      for (const Weight d : fold_scratch) {
        if (query.aggregate == Aggregate::kSum) {
          agg += d;
        } else {
          agg = std::max(agg, d);
        }
      }
      ++best.gphi_evaluations;
      // Canonical (distance, vertex id) order: exact-distance ties go to
      // the smaller data point id so the oracle agrees with the solvers.
      if (agg < best.distance ||
          (agg == best.distance && p_list[pi] < best.best)) {
        best.distance = agg;
        best.best = p_list[pi];
        best.subset.clear();
        for (size_t qi : subset) {
          best.subset.push_back((*query.query_points)[qi]);
        }
      }
    }
  };

  while (true) {
    consider();
    // Advance to the next k-combination of {0..m-1}; stop after the last.
    ptrdiff_t i = static_cast<ptrdiff_t>(k) - 1;
    while (i >= 0 && subset[i] == static_cast<size_t>(i) + m - k) --i;
    if (i < 0) break;
    ++subset[i];
    for (size_t j = static_cast<size_t>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
  return best;
}

}  // namespace fannr
