#include "fann/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fannr {

std::string_view AggregateName(Aggregate aggregate) {
  switch (aggregate) {
    case Aggregate::kMax:
      return "max";
    case Aggregate::kSum:
      return "sum";
  }
  return "?";
}

size_t FlexK(double phi, size_t q_size) {
  FANNR_CHECK(phi > 0.0 && phi <= 1.0);
  const size_t k = static_cast<size_t>(
      std::ceil(phi * static_cast<double>(q_size) - 1e-9));
  return std::max<size_t>(1, std::min(k, q_size));
}

Weight FoldSorted(const Weight* distances, size_t count,
                  Aggregate aggregate) {
  if (count == 0) return kInfWeight;
  if (aggregate == Aggregate::kMax) return distances[count - 1];
  Weight total = 0.0;
  for (size_t i = 0; i < count; ++i) total += distances[i];
  return total;
}

}  // namespace fannr
