// Non-IER g_phi engines: INE, A*, PHL, GTree, CH — plus the factory.

#include <algorithm>
#include <optional>

#include "fann/gphi.h"
#include "sp/astar.h"
#include "sp/gtree/gtree_knn.h"
#include "sp/incremental_nn.h"

namespace fannr {

namespace {

// INE: a single incremental Dijkstra expansion from p reports the members
// of Q from-near-to-far; the first k hits are exactly Q^p_phi.
class IneEngine : public GphiEngine {
 public:
  explicit IneEngine(const Graph& graph) : graph_(graph) {}

  void Prepare(const IndexedVertexSet& query_points) override {
    query_points_ = &query_points;
  }

  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override {
    FANNR_CHECK(query_points_ != nullptr);
    IncrementalNnSearch search(graph_, p, *query_points_);
    GphiResult result;
    std::vector<Weight> nearest;
    nearest.reserve(k);
    while (nearest.size() < k) {
      auto hit = search.Next();
      if (!hit.has_value()) break;
      nearest.push_back(hit->distance);
      result.subset.push_back(hit->vertex);
    }
    if (nearest.size() == k) {
      result.distance = FoldSorted(nearest.data(), k, aggregate);
    }
    return result;
  }

  std::string_view name() const override { return "INE"; }

 private:
  const Graph& graph_;
  const IndexedVertexSet* query_points_ = nullptr;
};

// Evaluates the distance from p to every member of Q with a point-to-point
// oracle, then selects the k nearest. Shared by the A*, PHL and CH
// engines, which differ only in the oracle.
template <typename Oracle>
class PointToPointEngine : public GphiEngine {
 public:
  PointToPointEngine(Oracle oracle, std::string_view engine_name)
      : oracle_(std::move(oracle)), name_(engine_name) {}

  void Prepare(const IndexedVertexSet& query_points) override {
    query_points_ = &query_points;
    distances_.resize(query_points.size());
    weights_ = {};
  }

  bool BindWeights(std::span<const double> weights) override {
    // All |Q| distances are computed before selection, so weighting is
    // one multiply inside SelectAndFold — no pruning to invalidate.
    weights_ = weights;
    return true;
  }

  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override {
    FANNR_CHECK(query_points_ != nullptr);
    for (size_t i = 0; i < query_points_->size(); ++i) {
      distances_[i] = oracle_((*query_points_)[i], p);
    }
    return internal_gphi::SelectAndFold(*query_points_, distances_, k,
                                        aggregate, &select_scratch_, weights_);
  }

  std::string_view name() const override { return name_; }

 private:
  Oracle oracle_;
  std::string_view name_;
  const IndexedVertexSet* query_points_ = nullptr;
  std::vector<Weight> distances_;
  std::span<const double> weights_;
  internal_gphi::SelectScratch select_scratch_;
};

template <typename Oracle>
std::unique_ptr<GphiEngine> MakePointToPointEngine(
    Oracle oracle, std::string_view engine_name) {
  return std::make_unique<PointToPointEngine<Oracle>>(std::move(oracle),
                                                      engine_name);
}

// GTree: occurrence-list kNN over Q (the occurrence lists are rebuilt once
// per Prepare, i.e. once per FANN_R query).
class GTreeEngine : public GphiEngine {
 public:
  explicit GTreeEngine(const GTree& tree) : tree_(tree) {}

  void Prepare(const IndexedVertexSet& query_points) override {
    knn_.emplace(tree_, query_points);
  }

  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override {
    FANNR_CHECK(knn_.has_value());
    auto search = knn_->From(p);
    GphiResult result;
    std::vector<Weight> nearest;
    nearest.reserve(k);
    while (nearest.size() < k) {
      auto hit = search.Next();
      if (!hit.has_value()) break;
      nearest.push_back(hit->distance);
      result.subset.push_back(hit->vertex);
    }
    if (nearest.size() == k) {
      result.distance = FoldSorted(nearest.data(), k, aggregate);
    }
    return result;
  }

  std::string_view name() const override { return "GTree"; }

 private:
  const GTree& tree_;
  std::optional<GTreeKnn> knn_;
};

}  // namespace

std::unique_ptr<GphiEngine> MakeGphiEngine(GphiKind kind,
                                           const GphiResources& resources);

// Defined in gphi_ier.cc.
std::unique_ptr<GphiEngine> MakeIerGphiEngine(GphiKind kind,
                                              const GphiResources& resources);

std::unique_ptr<GphiEngine> MakeGphiEngine(GphiKind kind,
                                           const GphiResources& resources) {
  FANNR_CHECK(resources.graph != nullptr);
  switch (kind) {
    case GphiKind::kIne:
      return std::make_unique<IneEngine>(*resources.graph);
    case GphiKind::kAStar: {
      // One AStarSearch shared across evaluations.
      auto astar = std::make_shared<AStarSearch>(*resources.graph);
      return MakePointToPointEngine(
          [astar](VertexId q, VertexId p) { return astar->Distance(q, p); },
          "A*");
    }
    case GphiKind::kGTree:
      FANNR_CHECK(resources.gtree != nullptr);
      return std::make_unique<GTreeEngine>(*resources.gtree);
    case GphiKind::kPhl: {
      const HubLabels* labels = resources.labels;
      FANNR_CHECK(labels != nullptr);
      return MakePointToPointEngine(
          [labels](VertexId q, VertexId p) {
            return labels->Distance(q, p);
          },
          "PHL");
    }
    case GphiKind::kCh: {
      const ContractionHierarchy* ch = resources.ch;
      FANNR_CHECK(ch != nullptr);
      // Each engine instance owns its search scratch, so engines built
      // from the same hierarchy can run on different threads.
      auto search = std::make_shared<ContractionHierarchy::Search>(*ch);
      return MakePointToPointEngine(
          [search](VertexId q, VertexId p) { return search->Distance(q, p); },
          "CH");
    }
    case GphiKind::kIerAStar:
    case GphiKind::kIerGTree:
    case GphiKind::kIerPhl:
      return MakeIerGphiEngine(kind, resources);
  }
  FANNR_CHECK(false && "unknown GphiKind");
}

}  // namespace fannr
