// The IER-kNN framework (paper Section III-C, Algorithm 1).
//
// An R-tree over the data points P is traversed best-first, keyed by the
// flexible *Euclidean* aggregate g^eps_phi(e, Q) of each entry — a lower
// bound on g_phi of every data point under the entry (Lemma 1). Leaf
// points are evaluated exactly with a pluggable g_phi engine; the search
// stops when the head bound reaches the best candidate.

#ifndef FANNR_FANN_IER_H_
#define FANNR_FANN_IER_H_

#include "fann/gphi.h"
#include "fann/query.h"
#include "spatial/rtree.h"

namespace fannr {

/// Which lower bound keys the priority queue (Section III-C discusses
/// both; the cheap bound is looser but costs O(1) per entry instead of
/// O(|Q|)).
enum class IerBound {
  /// g^eps_phi(e, Q): k smallest mdist(mbr, q_i) folded by g.
  kFlexibleEuclid,
  /// mdist(mbr(Q), e) for max; phi|Q| * mdist(mbr(Q), e) for sum.
  kQMbrCheap,
};

struct IerOptions {
  IerBound bound = IerBound::kFlexibleEuclid;
};

/// Solves an FANN_R query with Algorithm 1. Exact for both aggregates.
/// `p_tree` must index exactly the members of query.data_points (item id
/// = vertex id); build it once per P with BuildDataPointRTree.
FannResult SolveIer(const FannQuery& query, GphiEngine& engine,
                    const RTree& p_tree);
FannResult SolveIer(const FannQuery& query, GphiEngine& engine,
                    const RTree& p_tree, const IerOptions& options);

/// Bulk-loads the R-tree over P used by SolveIer.
RTree BuildDataPointRTree(const Graph& graph,
                          const IndexedVertexSet& data_points);

/// The flexible Euclidean aggregate lower bound g^eps_phi(e, Q) of an MBR
/// (Lemma 1): fold of the k smallest mdist(box, q_i). Exposed for tests
/// and benches.
Weight EuclidGphiBound(const std::vector<Point>& q_points, const Mbr& box,
                       size_t k, Aggregate aggregate);

/// g^eps_phi(p, Q) for a point: fold of the k smallest Euclidean
/// distances.
Weight EuclidGphiPoint(const std::vector<Point>& q_points, const Point& p,
                       size_t k, Aggregate aggregate);

}  // namespace fannr

#endif  // FANNR_FANN_IER_H_
