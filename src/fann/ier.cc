#include "fann/ier.h"

#include <algorithm>

#include "common/flat_heap.h"

namespace fannr {

namespace {

Weight FoldKSmallest(std::vector<Weight>& scratch, size_t k,
                     Aggregate aggregate) {
  FANNR_DCHECK(k > 0 && k <= scratch.size());
  std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                   scratch.end());
  if (aggregate == Aggregate::kMax) return scratch[k - 1];
  Weight total = 0.0;
  for (size_t i = 0; i < k; ++i) total += scratch[i];
  return total;
}

}  // namespace

Weight EuclidGphiBound(const std::vector<Point>& q_points, const Mbr& box,
                       size_t k, Aggregate aggregate) {
  std::vector<Weight> dists;
  dists.reserve(q_points.size());
  for (const Point& q : q_points) dists.push_back(MinDist(box, q));
  return FoldKSmallest(dists, k, aggregate);
}

Weight EuclidGphiPoint(const std::vector<Point>& q_points, const Point& p,
                       size_t k, Aggregate aggregate) {
  std::vector<Weight> dists;
  dists.reserve(q_points.size());
  for (const Point& q : q_points) dists.push_back(EuclideanDistance(p, q));
  return FoldKSmallest(dists, k, aggregate);
}

RTree BuildDataPointRTree(const Graph& graph,
                          const IndexedVertexSet& data_points) {
  FANNR_CHECK(graph.HasCoordinates());
  std::vector<RTree::Item> items;
  items.reserve(data_points.size());
  for (VertexId p : data_points.members()) {
    items.push_back({graph.Coord(p), p});
  }
  return RTree::BulkLoad(std::move(items));
}

FannResult SolveIer(const FannQuery& query, GphiEngine& engine,
                    const RTree& p_tree) {
  return SolveIer(query, engine, p_tree, IerOptions{});
}

FannResult SolveIer(const FannQuery& query, GphiEngine& engine,
                    const RTree& p_tree, const IerOptions& options) {
  ValidateQuery(query);
  FANNR_CHECK(!query.Weighted() &&
              "IER-kNN prunes by raw Euclidean bounds and cannot honor "
              "per-query-point weights");
  FANNR_CHECK(query.graph->HasCoordinates());
  FANNR_CHECK(query.graph->EuclideanConsistent());
  FANNR_CHECK(p_tree.size() == query.data_points->size());
  const size_t k = query.FlexSubsetSize();
  engine.Prepare(*query.query_points);

  std::vector<Point> q_points;
  q_points.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    q_points.push_back(query.graph->Coord(q));
  }
  Mbr q_mbr;
  for (const Point& q : q_points) q_mbr.Extend(q);

  const double sum_factor =
      query.aggregate == Aggregate::kSum ? static_cast<double>(k) : 1.0;
  auto bound_of_mbr = [&](const Mbr& box) {
    if (options.bound == IerBound::kFlexibleEuclid) {
      return EuclidGphiBound(q_points, box, k, query.aggregate);
    }
    return sum_factor * MinDist(q_mbr, box);
  };
  auto bound_of_point = [&](const Point& p) {
    if (options.bound == IerBound::kFlexibleEuclid) {
      return EuclidGphiPoint(q_points, p, k, query.aggregate);
    }
    return sum_factor * MinDist(q_mbr, p);
  };

  struct Entry {
    Weight bound;
    bool is_point;
    RTree::NodeId node;
    VertexId vertex;
  };
  struct BoundLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.bound < b.bound;
    }
  };
  FlatHeap<Entry, BoundLess> heap;
  heap.push({bound_of_mbr(p_tree.NodeMbr(p_tree.Root())), false,
             p_tree.Root(), kInvalidVertex});

  FannResult best;
  while (!heap.empty()) {
    const Entry top = heap.top();
    // Lemma 1 termination, margined and strict: an entry whose lower
    // bound equals (or sits within FP noise of) best.distance may hold
    // an equal-distance candidate that wins the vertex-id tie-break.
    if (PruneBoundExceeds(top.bound, best.distance)) break;
    heap.pop();
    if (top.is_point) {
      GphiResult r = engine.Evaluate(top.vertex, k, query.aggregate);
      ++best.gphi_evaluations;
      if (r.distance < best.distance ||
          (r.distance != kInfWeight && r.distance == best.distance &&
           top.vertex < best.best)) {
        best.best = top.vertex;
        best.distance = r.distance;
        best.subset = std::move(r.subset);
      }
    } else if (p_tree.IsLeaf(top.node)) {
      for (const RTree::Item& item : p_tree.Items(top.node)) {
        heap.push({bound_of_point(item.point), true, 0, item.id});
      }
    } else {
      for (const RTree::Child& child : p_tree.Children(top.node)) {
        heap.push({bound_of_mbr(child.mbr), false, child.node,
                   kInvalidVertex});
      }
    }
  }
  return best;
}

}  // namespace fannr
