#include "fann/query.h"

#include <cmath>

#include "common/check.h"

namespace fannr {

std::string_view QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kRejected:
      return "rejected";
    case QueryStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

std::string QueryValidationError(const FannQuery& query) {
  if (query.graph == nullptr) return "query.graph is null";
  if (query.data_points == nullptr) return "query.data_points (P) is null";
  if (query.query_points == nullptr) return "query.query_points (Q) is null";
  if (query.data_points->empty()) return "data point set P is empty";
  if (query.query_points->empty()) return "query point set Q is empty";
  // Written so NaN phi fails (NaN compares false to everything).
  if (!(query.phi > 0.0 && query.phi <= 1.0)) {
    return "phi must be in (0, 1], got " + std::to_string(query.phi);
  }
  return std::string();
}

void ValidateQuery(const FannQuery& query) {
  const std::string error = QueryValidationError(query);
  if (!error.empty()) {
    std::fprintf(stderr, "invalid FannQuery: %s\n", error.c_str());
  }
  FANNR_CHECK(error.empty() && "invalid FannQuery");
}

}  // namespace fannr
