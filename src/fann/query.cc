#include "fann/query.h"

#include <cmath>

#include "common/check.h"

namespace fannr {

std::string_view QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kRejected:
      return "rejected";
    case QueryStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

std::string QueryValidationError(const FannQuery& query) {
  if (query.graph == nullptr) return "query.graph is null";
  if (query.data_points == nullptr) return "query.data_points (P) is null";
  if (query.query_points == nullptr) return "query.query_points (Q) is null";
  if (query.data_points->empty()) return "data point set P is empty";
  if (query.query_points->empty()) return "query point set Q is empty";
  // Written so NaN phi fails (NaN compares false to everything).
  if (!(query.phi > 0.0 && query.phi <= 1.0)) {
    return "phi must be in (0, 1], got " + std::to_string(query.phi);
  }
  if (query.Weighted()) {
    if (query.weights->size() != query.query_points->size()) {
      return "weights size " + std::to_string(query.weights->size()) +
             " != |Q| = " + std::to_string(query.query_points->size());
    }
    for (size_t i = 0; i < query.weights->size(); ++i) {
      const double w = (*query.weights)[i];
      // Finite and strictly positive: w <= 0 breaks the k-smallest
      // structural fact, and w * kInfWeight must stay +inf (0 * inf is
      // NaN). Written so NaN fails.
      if (!(w > 0.0) || !std::isfinite(w)) {
        return "weights[" + std::to_string(i) + "] must be finite and > 0, "
               "got " + std::to_string(w);
      }
    }
  }
  return std::string();
}

void ValidateQuery(const FannQuery& query) {
  const std::string error = QueryValidationError(query);
  if (!error.empty()) {
    std::fprintf(stderr, "invalid FannQuery: %s\n", error.c_str());
  }
  FANNR_CHECK(error.empty() && "invalid FannQuery");
}

}  // namespace fannr
