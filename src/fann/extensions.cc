#include "fann/extensions.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "fann/exact_max.h"
#include "fann/gd.h"
#include "fann/rlist.h"
#include "sp/dijkstra.h"

namespace fannr {

FannResult SolveAnn(const Graph& graph, const IndexedVertexSet& data_points,
                    const IndexedVertexSet& query_points,
                    Aggregate aggregate, GphiEngine& engine) {
  FannQuery query{&graph, &data_points, &query_points, 1.0, aggregate};
  return SolveRList(query, engine);
}

FannResult SolveOmp(const Graph& graph,
                    const IndexedVertexSet& query_points, double phi,
                    Aggregate aggregate) {
  return SolveOmp(graph, query_points, phi, aggregate, OmpOptions{});
}

FannResult SolveOmp(const Graph& graph,
                    const IndexedVertexSet& query_points, double phi,
                    Aggregate aggregate, const OmpOptions& options) {
  FANNR_CHECK(!query_points.empty());
  FANNR_CHECK(phi > 0.0 && phi <= 1.0);
  const size_t n = graph.NumVertices();
  const size_t m = query_points.size();
  const size_t k = FlexK(phi, m);

  if (aggregate == Aggregate::kMax) {
    // P = V is Exact-max's best case: dense targets saturate counters
    // almost immediately.
    std::vector<VertexId> all(n);
    std::iota(all.begin(), all.end(), VertexId{0});
    IndexedVertexSet everything(n, std::move(all));
    FannQuery query{&graph, &everything, &query_points, phi, aggregate};
    return SolveExactMax(query);
  }

  // One reusable search runs every per-query-point SSSP below: the heap
  // and distance scratch are allocated once, not once per |Q|.
  DijkstraSearch search(graph);
  std::vector<Weight> sssp;

  FannResult best;
  if (k == m) {
    // Classic sum-OMP: accumulate distance sums over |Q| SSSPs; O(|V|)
    // extra memory.
    std::vector<Weight> total(n, 0.0);
    std::vector<uint32_t> reached(n, 0);
    for (VertexId q : query_points.members()) {
      search.SsspInto(q, sssp);
      for (VertexId v = 0; v < n; ++v) {
        if (sssp[v] == kInfWeight) continue;
        total[v] += sssp[v];
        ++reached[v];
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (reached[v] == m && total[v] < best.distance) {
        best.distance = total[v];
        best.best = v;
      }
    }
    if (best.best != kInvalidVertex) {
      best.subset.assign(query_points.members().begin(),
                         query_points.members().end());
    }
    return best;
  }

  // Flexible sum-OMP: per-vertex k smallest of the |Q| distances. Dense
  // |Q| x |V| matrix, budget-checked.
  FANNR_CHECK(m * n * sizeof(Weight) <= options.max_dense_bytes &&
              "flexible sum-OMP needs |Q|*|V| distance storage; shrink Q "
              "or raise OmpOptions::max_dense_bytes");
  std::vector<std::vector<Weight>> dist;
  dist.reserve(m);
  for (VertexId q : query_points.members()) {
    search.SsspInto(q, sssp);
    dist.push_back(sssp);
  }
  std::vector<Weight> scratch(m);
  for (VertexId v = 0; v < n; ++v) {
    for (size_t i = 0; i < m; ++i) scratch[i] = dist[i][v];
    std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                     scratch.end());
    if (scratch[k - 1] == kInfWeight) continue;
    Weight sum = 0.0;
    for (size_t i = 0; i < k; ++i) sum += scratch[i];
    if (sum < best.distance) {
      best.distance = sum;
      best.best = v;
    }
  }
  if (best.best != kInvalidVertex) {
    // Recover the optimal flexible subset for the winning vertex.
    std::vector<std::pair<Weight, VertexId>> pairs;
    pairs.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      pairs.push_back({dist[i][best.best], query_points[i]});
    }
    std::sort(pairs.begin(), pairs.end());
    for (size_t i = 0; i < k; ++i) best.subset.push_back(pairs[i].second);
  }
  return best;
}

FannResult SolveApxSumWithVoronoi(const FannQuery& query,
                                  const NetworkVoronoi& p_voronoi,
                                  GphiEngine& engine) {
  ValidateQuery(query);
  FANNR_CHECK(query.aggregate == Aggregate::kSum);

  std::vector<VertexId> candidates;
  candidates.reserve(query.query_points->size());
  for (VertexId q : query.query_points->members()) {
    const VertexId nearest = p_voronoi.NearestSite(q);
    if (nearest == kInvalidVertex) continue;
    FANNR_DCHECK(query.data_points->Contains(nearest));
    if (std::find(candidates.begin(), candidates.end(), nearest) ==
        candidates.end()) {
      candidates.push_back(nearest);
    }
  }
  if (candidates.empty()) return FannResult{};

  IndexedVertexSet candidate_set(query.graph->NumVertices(),
                                 std::move(candidates));
  FannQuery reduced = query;
  reduced.data_points = &candidate_set;
  return SolveGd(reduced, engine);
}

}  // namespace fannr
