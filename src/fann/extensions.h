// Convenience queries the paper identifies as FANN_R special cases:
//
//   * ANN (phi = 1): the classic aggregate nearest neighbor query.
//   * OMP (optimal meeting point, Yan et al. [5]): the set P is implicit —
//     the paper notes V (together with Q) always contains an OMP, so OMP
//     is the FANN_R query with P = V; we also support the flexible OMP
//     (phi < 1) that the FANN_R semantics make natural.
//
// Plus a Voronoi-accelerated APX-sum: when many sum-FANN_R queries share
// one data set P, a network Voronoi diagram over P answers each query
// point's nearest-data-point lookup in O(1), removing APX-sum's
// per-query expansions entirely.

#ifndef FANNR_FANN_EXTENSIONS_H_
#define FANNR_FANN_EXTENSIONS_H_

#include "fann/gphi.h"
#include "fann/query.h"
#include "sp/voronoi.h"

namespace fannr {

/// Classic ANN: FANN_R with phi = 1. Exact, both aggregates; solved with
/// R-List (index-free) using the supplied engine for g_phi.
FannResult SolveAnn(const Graph& graph, const IndexedVertexSet& data_points,
                    const IndexedVertexSet& query_points,
                    Aggregate aggregate, GphiEngine& engine);

/// Optimal meeting point: the vertex of G minimizing the flexible
/// aggregate distance to Q (P = V). phi = 1 gives the classic OMP.
/// Exact. max uses Exact-max (P = V is its best case); sum accumulates
/// per-vertex distance sums over |Q| single-source searches, or the k
/// smallest per vertex when phi < 1 (memory O(|Q| * |V|) in that case —
/// checked against `max_dense_bytes`).
struct OmpOptions {
  /// Budget for the dense phi < 1 sum path (default 2 GB).
  size_t max_dense_bytes = size_t{2} * 1024 * 1024 * 1024;
};
FannResult SolveOmp(const Graph& graph, const IndexedVertexSet& query_points,
                    double phi, Aggregate aggregate);
FannResult SolveOmp(const Graph& graph, const IndexedVertexSet& query_points,
                    double phi, Aggregate aggregate,
                    const OmpOptions& options);

/// APX-sum with a prebuilt network Voronoi diagram over P (the diagram
/// must have been built with exactly query.data_points as sites). Same
/// answer and guarantees as SolveApxSum; candidate generation becomes
/// O(|Q|) lookups.
FannResult SolveApxSumWithVoronoi(const FannQuery& query,
                                  const NetworkVoronoi& p_voronoi,
                                  GphiEngine& engine);

}  // namespace fannr

#endif  // FANNR_FANN_EXTENSIONS_H_
