// The flexible aggregate function g_phi(p, Q) and its pluggable engines.
//
// g_phi takes a candidate data point p and returns the optimal flexible
// subset Q^p_phi (the k = phi|Q| query points nearest to p) together with
// the aggregate distance (Definition 1). The paper implements g_phi seven
// ways (Table I):
//
//   INE        incremental network expansion (Dijkstra-based kNN)
//   A*         one A* point-to-point search per query point
//   GTree      occurrence-list kNN over the G-tree index
//   PHL        one hub-label scan per query point
//   IER-A*     R-tree over Q: incremental Euclidean NN verified by A*
//   IER-GTree  same, verified by G-tree distances
//   IER-PHL    same, verified by hub-label distances
//
// plus our CH extension (one contraction-hierarchy query per query
// point). An engine is prepared once per FANN_R query (so it can build
// per-Q state such as the occurrence lists or the R-tree over Q) and then
// evaluated for many candidate points.

#ifndef FANNR_FANN_GPHI_H_
#define FANNR_FANN_GPHI_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "fann/aggregate.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"

namespace fannr {

/// Result of one g_phi evaluation: the flexible aggregate distance and
/// the optimal flexible subset (k query points, nearest first). When
/// fewer than k query points are reachable from p, distance is kInfWeight
/// and subset holds the reachable prefix.
struct GphiResult {
  Weight distance = kInfWeight;
  std::vector<VertexId> subset;
};

/// Pluggable implementation of g_phi. Prepare() is called once per FANN_R
/// query before any Evaluate(). Engines are not thread-safe (they own
/// per-query state and search scratch), but they only read their shared
/// substrate indexes — concurrent execution uses one engine per thread
/// over one GphiResources (see src/engine/).
class GphiEngine {
 public:
  virtual ~GphiEngine() = default;

  /// Binds the engine to the query set Q (builds per-Q structures such as
  /// occurrence lists or an R-tree over Q). `query_points` must stay alive
  /// until the next Prepare().
  virtual void Prepare(const IndexedVertexSet& query_points) = 0;

  /// Computes g_phi(p, Q) with subset size k. Requires a prior Prepare().
  virtual GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) = 0;

  /// Binds per-query-point weights (aligned with the Prepare()d Q) so
  /// subsequent Evaluate() calls select and fold w_i * d(p, q_i) instead
  /// of raw distances. Call after Prepare() (which clears any previous
  /// binding); an empty span means unweighted. Returns false when the
  /// engine cannot honor a non-empty binding — the early-terminating
  /// kNN engines (INE, G-tree occurrence lists, the IER family) prune by
  /// raw network distance and would silently drop weighted-near points,
  /// so they refuse instead of answering wrong. `weights` must outlive
  /// the binding.
  virtual bool BindWeights(std::span<const double> weights) {
    return weights.empty();
  }

  /// Grows the engine's search scratch (heaps, distance arrays) to its
  /// worst-case size up front, trading memory for an allocation-free
  /// solve phase from the very first query. Optional: the default does
  /// nothing, and engines stay correct either way — they grow lazily on
  /// demand. Never affects results.
  virtual void PrewarmScratch() {}

  /// Display name matching the paper's legends (e.g. "IER-PHL").
  virtual std::string_view name() const = 0;
};

/// The g_phi implementations of Table I (+ the CH extension).
enum class GphiKind {
  kIne,
  kAStar,
  kGTree,
  kPhl,
  kIerAStar,
  kIerGTree,
  kIerPhl,
  kCh,
};

/// All kinds in Table I order (CH last).
inline constexpr GphiKind kAllGphiKinds[] = {
    GphiKind::kIne,      GphiKind::kAStar,    GphiKind::kGTree,
    GphiKind::kPhl,      GphiKind::kIerAStar, GphiKind::kIerGTree,
    GphiKind::kIerPhl,   GphiKind::kCh,
};

/// Paper legend name of a kind.
std::string_view GphiKindName(GphiKind kind);

/// Substrate indexes an engine may need. `graph` is always required; the
/// index pointers are only required for the kinds that use them (Table I)
/// and may be null otherwise. All pointees are read-only shared state:
/// engines never mutate them, and one GphiResources value may back any
/// number of concurrently-running engines (each engine owns its own
/// search scratch).
struct GphiResources {
  const Graph* graph = nullptr;
  const GTree* gtree = nullptr;                 // GTree / IER-GTree
  const HubLabels* labels = nullptr;            // PHL / IER-PHL
  const ContractionHierarchy* ch = nullptr;     // CH
};

/// Creates an engine. Aborts if a required resource is missing.
std::unique_ptr<GphiEngine> MakeGphiEngine(GphiKind kind,
                                           const GphiResources& resources);

namespace internal_gphi {

/// Reusable scratch for SelectAndFold. Engines that evaluate many
/// candidates hold one of these so the per-candidate selection runs
/// allocation-free after the first call.
struct SelectScratch {
  /// Contiguous (distance, id) records: the selection sorts these
  /// directly instead of permuting an index array, so the comparator
  /// touches one flat array instead of gathering from two.
  struct Entry {
    Weight distance;
    VertexId vertex;
  };
  std::vector<Entry> entries;
  std::vector<Weight> nearest;  // the k selected distances, contiguous
};

/// Shared helper: given the distances from p to every member of Q
/// (aligned with query_points.members()), selects the k nearest and
/// folds. `scratch` may be null (a local scratch is used); passing an
/// engine-owned scratch makes repeat calls allocation-free. A non-empty
/// `weights` (aligned with Q) scales each distance to w_i * d_i before
/// selection, so both the chosen subset and the fold are weighted.
GphiResult SelectAndFold(const IndexedVertexSet& query_points,
                         const std::vector<Weight>& distances, size_t k,
                         Aggregate aggregate,
                         SelectScratch* scratch = nullptr,
                         std::span<const double> weights = {});

}  // namespace internal_gphi

}  // namespace fannr

#endif  // FANNR_FANN_GPHI_H_
