// Continuous FANN_R query subscriptions.
//
// A subscription is a standing FANN_R query registered over a server
// connection (wire opcode kSubscribe): the server answers it once at
// registration, then re-evaluates it after every applied weight update
// and pushes the new answer (opcode kPushAnswer) to the owning
// connection — unless the answer is unchanged since the last delivery,
// in which case the push is suppressed (delta semantics; force_push
// opts a subscription out of suppression).
//
// SubscriptionTable is the registry behind that: the set of live
// subscriptions keyed by (owning connection, subscription id), with the
// per-delivery state suppression needs (the last answer the client saw
// and the epoch it was solved at) and per-subscription accounting.
//
// Threading: the table is owned and touched by exactly one thread — the
// server's executor — which is also the only thread that applies weight
// updates and runs the engine. That single-threaded discipline is what
// makes re-evaluation coherent (a push is always solved at the exact
// epoch it is stamped with) and lets the table go lock-free. The table
// holds connections as opaque shared_ptr<void> owners so this subsystem
// does not depend on the server's connection type; the server casts
// them back when pushing.
//
// Bounds: registrations are capped per connection and globally
// (Add() reports which limit tripped; the server answers OVERLOADED),
// so a subscriber cannot grow executor-side state without limit — the
// same explicit-shedding stance the admission queue takes.

#ifndef FANNR_CONT_SUBSCRIPTION_H_
#define FANNR_CONT_SUBSCRIPTION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/protocol.h"

namespace fannr::cont {

/// One standing query and its delivery state.
struct Subscription {
  /// The SUBSCRIBE frame's request_id; unique among the owning
  /// connection's live subscriptions and echoed in every PUSH_ANSWER's
  /// header.request_id.
  uint64_t id = 0;

  /// Opaque handle on the owning connection, kept alive by the table so
  /// a pushed frame never targets freed connection state. The server
  /// decides liveness (Reap) and casts the handle back for pushing.
  std::shared_ptr<void> owner;

  /// The standing query, exactly as registered (weights included). The
  /// vectors inside are stable for the subscription's lifetime, so
  /// re-evaluation jobs may point into them.
  net::WireQuery query;

  /// True = push every re-evaluation; false = suppress pushes whose
  /// visible answer (net::SameVisibleAnswer) equals the last delivery.
  bool force_push = false;

  /// Delta state: the last answer delivered to the client (the initial
  /// SUBSCRIBE_RESULT counts as a delivery) and the graph epoch it was
  /// solved under. Not advanced by suppressed or backpressure-dropped
  /// pushes, so a drop is retried by the next re-evaluation.
  bool has_last = false;
  net::WireResult last;
  uint64_t last_epoch = 0;

  /// Accounting, reported in UNSUBSCRIBE_RESULT and the stats snapshot.
  uint64_t pushes_sent = 0;
  uint64_t pushes_suppressed = 0;
  uint64_t pushes_dropped_backpressure = 0;
};

/// Why an Add() was refused (kOk = it was not).
enum class SubscribeOutcome {
  kOk,
  /// The owning connection already has a live subscription under this
  /// id. Client bug; the registration is refused, the existing
  /// subscription is untouched.
  kDuplicateId,
  kPerConnectionLimit,
  kGlobalLimit,
};

/// The live-subscription registry. Single-threaded (see header comment);
/// iteration order is registration order, which keeps re-evaluation
/// batch composition deterministic for a given subscribe history.
class SubscriptionTable {
 public:
  /// Either limit == 0 means "no limit of that kind".
  SubscriptionTable(size_t max_per_connection, size_t max_total)
      : max_per_connection_(max_per_connection), max_total_(max_total) {}

  /// Registers `sub` (moved from on success). Capacity checks happen
  /// before the duplicate check so an over-limit client gets the
  /// retryable OVERLOADED outcome even when it also reused an id.
  SubscribeOutcome Add(Subscription sub) {
    if (max_total_ != 0 && subs_.size() >= max_total_) {
      return SubscribeOutcome::kGlobalLimit;
    }
    if (max_per_connection_ != 0 &&
        OwnerCount(sub.owner.get()) >= max_per_connection_) {
      return SubscribeOutcome::kPerConnectionLimit;
    }
    if (Find(sub.owner.get(), sub.id) != nullptr) {
      return SubscribeOutcome::kDuplicateId;
    }
    subs_.push_back(std::move(sub));
    return SubscribeOutcome::kOk;
  }

  /// Removes the subscription `id` owned by `owner`; false if there is
  /// no such subscription. `*removed` (optional) receives the final
  /// state for unsubscribe accounting.
  bool Remove(const void* owner, uint64_t id,
              Subscription* removed = nullptr) {
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (subs_[i].owner.get() == owner && subs_[i].id == id) {
        retired_pushes_sent_ += subs_[i].pushes_sent;
        if (removed != nullptr) *removed = std::move(subs_[i]);
        subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  /// Drops every subscription whose owner fails `alive` (a closed
  /// connection takes its subscriptions with it). Returns how many died.
  size_t Reap(const std::function<bool(const std::shared_ptr<void>&)>& alive) {
    const size_t before = subs_.size();
    std::erase_if(subs_, [&](const Subscription& s) {
      if (alive(s.owner)) return false;
      retired_pushes_sent_ += s.pushes_sent;
      return true;
    });
    return before - subs_.size();
  }

  /// Live subscriptions owned by `owner`.
  size_t OwnerCount(const void* owner) const {
    size_t n = 0;
    for (const Subscription& s : subs_) {
      if (s.owner.get() == owner) ++n;
    }
    return n;
  }

  size_t size() const { return subs_.size(); }
  bool empty() const { return subs_.empty(); }

  /// Registration-ordered access for the re-evaluation pass (mutable:
  /// the pass updates delivery state in place).
  std::vector<Subscription>& subscriptions() { return subs_; }
  const std::vector<Subscription>& subscriptions() const { return subs_; }

  /// Lookup by (owner, id); nullptr if absent.
  Subscription* Find(const void* owner, uint64_t id) {
    for (Subscription& s : subs_) {
      if (s.owner.get() == owner && s.id == id) return &s;
    }
    return nullptr;
  }

  /// Sum of pushes_sent over live subscriptions plus those of removed
  /// ones — kept so totals in stats do not shrink when clients leave.
  uint64_t total_pushes_sent() const {
    uint64_t n = retired_pushes_sent_;
    for (const Subscription& s : subs_) n += s.pushes_sent;
    return n;
  }

 private:
  size_t max_per_connection_;
  size_t max_total_;
  // Linear storage: both limits are small (hundreds to a few thousand),
  // every operation is executor-thread-only, and the hot path — the
  // re-evaluation sweep — wants exactly this flat registration-ordered
  // walk. No map earns its keep at these sizes.
  std::vector<Subscription> subs_;
  uint64_t retired_pushes_sent_ = 0;
};

}  // namespace fannr::cont

#endif  // FANNR_CONT_SUBSCRIPTION_H_
