#include "net/shard_plan.h"

#include <numeric>

#include "graph/index_io.h"
#include "sp/gtree/partition.h"

namespace fannr::net {

namespace {

/// Arena magic for shard plan files (same 0xFA22A81A family as the
/// index caches, distinct low word).
constexpr uint64_t kShardPlanMagic = 0xFA22A81A54A2D005ULL;

bool IsPowerOfTwoShardCount(uint32_t n) {
  return n >= 2 && (n & (n - 1)) == 0;
}

}  // namespace

ShardPlan ShardPlan::Build(const Graph& graph, uint32_t num_shards) {
  FANNR_CHECK(IsPowerOfTwoShardCount(num_shards));
  FANNR_CHECK(graph.NumVertices() >= num_shards);
  std::vector<VertexId> vertices(graph.NumVertices());
  std::iota(vertices.begin(), vertices.end(), VertexId{0});

  ShardPlan plan;
  plan.num_shards_ = num_shards;
  plan.fingerprint_ = graph.Fingerprint();
  plan.owner_ = MultiwayPartition(graph, vertices, num_shards);
  return plan;
}

bool ShardPlan::Save(const std::string& path, std::string* error) const {
  ArenaWriter writer;
  writer.AddScalar(num_shards_);
  writer.Add(owner_);
  if (!writer.Write(path, kShardPlanMagic, fingerprint_)) {
    if (error != nullptr) *error = "could not write shard plan to " + path;
    return false;
  }
  return true;
}

std::optional<ShardPlan> ShardPlan::Load(const std::string& path,
                                         std::string* error) {
  auto fail = [&](const std::string& reason) -> std::optional<ShardPlan> {
    if (error != nullptr) *error = reason;
    return std::nullopt;
  };
  // Full validation: plan files are small and corruption here silently
  // mis-routes queries, so the payload checksum is always verified.
  std::optional<ArenaFile> file =
      ArenaFile::Open(path, kShardPlanMagic, ArenaValidation::kFull);
  if (!file.has_value()) {
    return fail("could not open shard plan " + path +
                " (missing, not a shard plan file, or corrupt)");
  }
  if (file->NumSections() != 2) {
    return fail("shard plan " + path + " has a malformed section table");
  }

  ShardPlan plan;
  plan.fingerprint_ = file->fingerprint();
  if (!file->ReadScalar(0, plan.num_shards_) ||
      !IsPowerOfTwoShardCount(plan.num_shards_)) {
    return fail("shard plan " + path + " has an invalid shard count");
  }
  size_t count = 0;
  const uint32_t* owner = file->SectionArray<const uint32_t>(1, count);
  if (owner == nullptr || count != plan.fingerprint_.vertices) {
    return fail("shard plan " + path +
                " owner table does not match its fingerprint's vertex count");
  }
  plan.owner_.assign(owner, owner + count);
  for (uint32_t shard : plan.owner_) {
    if (shard >= plan.num_shards_) {
      return fail("shard plan " + path +
                  " assigns a vertex to a nonexistent shard");
    }
  }
  return plan;
}

std::vector<std::vector<uint32_t>> ShardPlan::SplitByShard(
    const std::vector<uint32_t>& p) const {
  std::vector<std::vector<uint32_t>> split(num_shards_);
  for (uint32_t v : p) {
    if (v < owner_.size()) split[owner_[v]].push_back(v);
  }
  return split;
}

std::vector<size_t> ShardPlan::ShardSizes() const {
  std::vector<size_t> sizes(num_shards_, 0);
  for (uint32_t shard : owner_) ++sizes[shard];
  return sizes;
}

}  // namespace fannr::net
