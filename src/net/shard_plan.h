// ShardPlan: the static assignment of vertices to shards that the
// router and every shard server agree on.
//
// Sharding in this codebase partitions the *object space*: every shard
// holds the full road network (queries need arbitrary shortest-path
// distances), but each shard answers a FANN query only over the data
// points (P) it owns. The router splits an incoming query's P by
// ownership, fans the pieces out, and merges per-shard answers with the
// canonical (distance, vertex id) total order — so the merged top
// answer is bitwise-identical to a single-node evaluation over the full
// P. The assignment reuses the G-tree partitioner (sp/gtree/
// partition.h): shards get spatially coherent vertex sets, which keeps
// each shard's candidate pruning as effective as the single-node
// index's.
//
// A plan is persisted in the v3 arena format with the fingerprint of
// the epoch-0 graph it was derived from. Router and shards each load
// the plan file and check the fingerprint against their own graph
// before serving, so a router can never split queries with one plan
// while a shard owns vertices under another. The fingerprint includes
// the weight checksum, so the check is made against the freshly loaded
// graph — before any update WAL is replayed on top.

#ifndef FANNR_NET_SHARD_PLAN_H_
#define FANNR_NET_SHARD_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/fingerprint.h"
#include "graph/graph.h"

namespace fannr::net {

class ShardPlan {
 public:
  /// Derives a plan for `num_shards` shards (power of two >= 2) by
  /// running the G-tree multiway partitioner over every vertex.
  /// Deterministic for a given graph: router and shards may each call
  /// Build instead of sharing a file and still agree.
  static ShardPlan Build(const Graph& graph, uint32_t num_shards);

  /// Writes the plan to `path` in the v3 arena format, stamped with
  /// the fingerprint captured at Build time.
  bool Save(const std::string& path, std::string* error) const;

  /// Loads and structurally validates a plan file (full payload
  /// checksum; owner table sized to the fingerprint's vertex count and
  /// every entry < num_shards). The caller must still check
  /// fingerprint() against its own epoch-0 graph.
  static std::optional<ShardPlan> Load(const std::string& path,
                                       std::string* error);

  uint32_t num_shards() const { return num_shards_; }
  size_t num_vertices() const { return owner_.size(); }

  /// Fingerprint of the graph the plan was built against (epoch 0).
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

  /// The shard owning vertex `v` (v < num_vertices()).
  uint32_t OwnerOf(uint32_t v) const { return owner_[v]; }

  /// Splits a data-point set by ownership: result[s] holds the members
  /// of `p` owned by shard s, in their original order. Vertices >=
  /// num_vertices() are dropped (the shard rejects them as out of
  /// range anyway; the router relays that rejection via the shard that
  /// sees them — callers should screen ids first).
  std::vector<std::vector<uint32_t>> SplitByShard(
      const std::vector<uint32_t>& p) const;

  /// Vertices owned per shard (diagnostics; the partitioner's balance
  /// contract bounds the spread).
  std::vector<size_t> ShardSizes() const;

 private:
  uint32_t num_shards_ = 0;
  GraphFingerprint fingerprint_;
  std::vector<uint32_t> owner_;  ///< Per-vertex shard id.
};

}  // namespace fannr::net

#endif  // FANNR_NET_SHARD_PLAN_H_
