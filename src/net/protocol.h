// The FANN_R binary wire protocol: framing, opcodes, and typed
// request/response payloads.
//
// The protocol puts the batch query engine behind a socket (see
// net/server.h) while staying algorithm-agnostic: frames carry vertex
// ids, phi, and an algorithm selector — nothing about how the answer is
// computed — so future index hierarchies slot in behind the same wire
// format. Framing follows the iproto school (Tarantool): every message
// is one length-prefixed frame with a fixed self-describing header
// (magic + version + request id + opcode), so a reader can validate the
// envelope before trusting a single payload byte, and a client can
// match responses to requests by id.
//
// The byte-for-byte layout (endianness, limits, error codes, version
// rules) is specified in DESIGN.md §2.9; this header is its one
// implementation. Decoders are total: any byte sequence either decodes
// into a validated struct or yields a false return — never undefined
// behavior (tests/net_protocol_test.cc flips bytes to enforce this).

#ifndef FANNR_NET_PROTOCOL_H_
#define FANNR_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fann/dispatch.h"
#include "fann/query.h"
#include "net/wire.h"

namespace fannr::net {

/// First four bytes of every frame: 'F' 'N' 'R' 'P' on the wire (read
/// as a little-endian u32).
inline constexpr uint32_t kMagic = 0x50524E46;  // "FNRP"

/// Protocol version this build speaks. A server answers a frame whose
/// version it does not speak with kUnsupportedVersion and keeps the
/// connection (framing is version-independent). Version 2 added
/// per-query-point weights to WireQuery and the subscription opcodes
/// (SUBSCRIBE / UNSUBSCRIBE / PUSH_ANSWER).
inline constexpr uint16_t kProtocolVersion = 2;

/// Hard ceiling on a frame's payload length. A header declaring more is
/// unframeable corruption: the receiver closes the connection instead
/// of buffering an attacker-chosen allocation.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;  // 64 MiB

/// Frame header: 24 bytes on the wire, fields little-endian.
///   offset 0  u32 magic          = kMagic
///   offset 4  u16 version        = kProtocolVersion
///   offset 6  u16 opcode         (Opcode)
///   offset 8  u64 request_id     (echoed verbatim in the response)
///   offset 16 u32 payload_length (bytes following the header)
///   offset 20 u32 reserved       (must be zero)
struct FrameHeader {
  uint32_t magic = kMagic;
  uint16_t version = kProtocolVersion;
  uint16_t opcode = 0;
  uint64_t request_id = 0;
  uint32_t payload_length = 0;
  uint32_t reserved = 0;
};

inline constexpr size_t kFrameHeaderBytes = 24;

/// Request and response opcodes. Responses set the high bit of the
/// request opcode they answer; kError answers any request.
enum class Opcode : uint16_t {
  // Requests.
  kQuery = 1,
  kBatch = 2,
  kUpdateWeights = 3,
  kStats = 4,
  kPing = 5,
  kShutdown = 6,
  /// Replication: apply an update batch at an exact graph epoch. Sent
  /// by the router to shard replicas so every replica walks the same
  /// epoch sequence; a replica whose epoch != position answers status 2
  /// with its current epoch instead of applying out of order.
  kReplApply = 7,
  /// Registers a standing query (src/cont/): the server re-solves it on
  /// every graph-epoch bump and pushes changed answers. The request id
  /// doubles as the subscription id for the connection's lifetime.
  kSubscribe = 8,
  /// Cancels a standing query by subscription id.
  kUnsubscribe = 9,
  // Responses.
  kQueryResult = 0x81,
  kBatchResult = 0x82,
  kUpdateResult = 0x83,
  kStatsResult = 0x84,
  kPong = 0x85,
  kShutdownAck = 0x86,
  kReplApplyResult = 0x87,
  kSubscribeResult = 0x88,
  kUnsubscribeResult = 0x89,
  /// Unsolicited server→client frame: a subscription's re-evaluated
  /// answer. header.request_id carries the subscription id; it answers
  /// no request, so IsRequestOpcode() is false for it.
  kPushAnswer = 0x8A,
  kError = 0xFF,
};

/// True for the opcodes a client may send.
bool IsRequestOpcode(uint16_t opcode);

/// Display name ("QUERY", "QUERY_RESULT", ...) or "?" when unknown.
std::string_view OpcodeName(uint16_t opcode);

/// Error codes carried by kError frames.
enum class ErrorCode : uint16_t {
  kNone = 0,
  kMalformedPayload = 1,    ///< Header fine, payload failed to decode.
  kUnsupportedVersion = 2,  ///< Header version != kProtocolVersion.
  kUnknownOpcode = 3,       ///< Opcode is not a request opcode.
  kOverloaded = 4,          ///< Admission queue full — retry later.
  kShuttingDown = 5,        ///< Server is draining; no new work.
  kInternal = 6,
};

std::string_view ErrorCodeName(ErrorCode code);

// --- typed payloads -------------------------------------------------------

/// One query as it travels the wire. Vertex ids are validated against
/// the server's graph at decode time by the server (out-of-range or
/// duplicate ids reject the job, mirroring in-process screening).
struct WireQuery {
  uint8_t algorithm = 0;  ///< FannAlgorithm enumerator value.
  uint8_t aggregate = 0;  ///< Aggregate enumerator value.
  double phi = 0.5;
  /// Per-job deadline in milliseconds; <= 0 or non-finite = none.
  double deadline_ms = 0.0;
  std::vector<uint32_t> p;  ///< Data point vertex ids.
  std::vector<uint32_t> q;  ///< Query point vertex ids.
  /// Optional per-query-point weights, aligned with `q`. Empty means
  /// unweighted; otherwise the size must equal |q| (the decoder rejects
  /// any other size) and each weight must be finite and positive (the
  /// server screens values at admission, mirroring in-process
  /// validation).
  std::vector<double> weights;
};

struct QueryRequest {
  WireQuery query;
};

struct BatchRequest {
  /// Batch-wide default deadline; <= 0 or non-finite = none. A job's own
  /// deadline_ms, when positive, overrides it.
  double deadline_ms = 0.0;
  std::vector<WireQuery> jobs;
};

struct UpdateWeightsRequest {
  struct Entry {
    uint32_t u = 0;
    uint32_t v = 0;
    double weight = 0.0;
  };
  std::vector<Entry> entries;
};

/// Positioned replication of one update batch: "apply these entries to
/// a graph currently at epoch `position`". Entries are absolute weight
/// sets (idempotent), so a batch may be re-sent safely — the position
/// check is what prevents double-application and reordering. An empty
/// entry list is a pure position probe: it never applies anything and
/// never bumps the epoch, but still reports mismatches.
struct ReplApplyRequest {
  uint64_t position = 0;  ///< Graph epoch the entries apply on top of.
  std::vector<UpdateWeightsRequest::Entry> entries;
};

/// Registers a standing query. The frame's request_id becomes the
/// subscription id: it must be unique among the connection's live
/// subscriptions, and every PUSH_ANSWER for this subscription echoes it
/// in header.request_id.
struct SubscribeRequest {
  WireQuery query;
  /// 0 = delta semantics (a re-evaluation whose answer is unchanged
  /// since the last push is suppressed); 1 = push every re-evaluation.
  uint8_t force_push = 0;
};

struct UnsubscribeRequest {
  uint64_t subscription_id = 0;
};

/// One query's answer on the wire.
struct WireResult {
  uint8_t status = 0;  ///< QueryStatus enumerator value.
  // status == kOk:
  uint32_t best = 0xFFFFFFFFu;  ///< kInvalidVertex when no feasible answer.
  double distance = 0.0;
  uint64_t gphi_evaluations = 0;
  std::vector<uint32_t> subset;
  // status != kOk:
  std::string error;
};

struct QueryResponse {
  /// Graph epoch the answer was computed under (see dynamic/update.h).
  uint64_t graph_epoch = 0;
  WireResult result;
};

struct BatchResponse {
  uint64_t graph_epoch = 0;
  std::vector<WireResult> results;
};

/// Answers kSubscribe with the subscription's initial answer, solved at
/// registration time — the client has a consistent baseline before the
/// first push.
struct SubscribeResponse {
  uint64_t graph_epoch = 0;
  WireResult result;
};

struct UnsubscribeResponse {
  uint8_t status = 0;      ///< 0 = removed, 1 = no such subscription.
  uint64_t pushes_sent = 0;  ///< PUSH_ANSWER frames this subscription got.
};

/// One pushed re-evaluation (opcode kPushAnswer, subscription id in
/// header.request_id), stamped with the graph epoch it was solved at.
struct PushAnswer {
  uint64_t graph_epoch = 0;
  WireResult result;
};

/// Answers both kUpdateWeights and kReplApply (same shape, different
/// opcode). Status 2 is only ever produced for kReplApply.
struct UpdateWeightsResponse {
  /// 0 = applied, 1 = rejected (reason in error), 2 = replication
  /// position mismatch (new_epoch = the replica's current epoch, error
  /// explains; nothing was applied).
  uint8_t status = 0;
  uint64_t applied = 0;
  uint64_t missing = 0;
  uint64_t old_epoch = 0;
  uint64_t new_epoch = 0;
  std::string error;
};

struct StatsResponse {
  std::string json;  ///< Server + engine observability snapshot.
};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

// --- encode / decode ------------------------------------------------------

/// Appends the 24 header bytes to `out`.
void EncodeFrameHeader(const FrameHeader& header, WireWriter& out);

/// Decodes a header from exactly kFrameHeaderBytes. Pure framing — does
/// not judge magic/version/opcode; returns false only on short input.
bool DecodeFrameHeader(std::span<const uint8_t> bytes, FrameHeader& header);

/// Validates the envelope of a decoded header. Returns empty when the
/// frame may be read further; otherwise a reason. A bad magic or a
/// payload_length above kMaxPayloadBytes poisons the stream (the
/// connection must close); version/opcode problems are answerable
/// in-band — the caller distinguishes via `fatal`.
std::string FrameEnvelopeError(const FrameHeader& header, bool* fatal);

/// One complete frame: header + payload, ready to write to a socket.
std::vector<uint8_t> EncodeFrame(uint16_t opcode, uint64_t request_id,
                                 std::span<const uint8_t> payload);

// Payload encoders (payload bytes only; wrap with EncodeFrame).
std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request);
std::vector<uint8_t> EncodeBatchRequest(const BatchRequest& request);
std::vector<uint8_t> EncodeUpdateWeightsRequest(
    const UpdateWeightsRequest& request);
std::vector<uint8_t> EncodeReplApplyRequest(const ReplApplyRequest& request);
std::vector<uint8_t> EncodeSubscribeRequest(const SubscribeRequest& request);
std::vector<uint8_t> EncodeUnsubscribeRequest(
    const UnsubscribeRequest& request);
std::vector<uint8_t> EncodeSubscribeResponse(const SubscribeResponse& response);
std::vector<uint8_t> EncodeUnsubscribeResponse(
    const UnsubscribeResponse& response);
std::vector<uint8_t> EncodePushAnswer(const PushAnswer& push);
std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response);
std::vector<uint8_t> EncodeBatchResponse(const BatchResponse& response);
std::vector<uint8_t> EncodeUpdateWeightsResponse(
    const UpdateWeightsResponse& response);
std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& response);
std::vector<uint8_t> EncodeErrorResponse(const ErrorResponse& response);

// Payload decoders. Return false on any malformed input (short buffer,
// lying length headers, trailing junk).
bool DecodeQueryRequest(std::span<const uint8_t> payload,
                        QueryRequest& request);
bool DecodeBatchRequest(std::span<const uint8_t> payload,
                        BatchRequest& request);
bool DecodeUpdateWeightsRequest(std::span<const uint8_t> payload,
                                UpdateWeightsRequest& request);
bool DecodeReplApplyRequest(std::span<const uint8_t> payload,
                            ReplApplyRequest& request);
bool DecodeSubscribeRequest(std::span<const uint8_t> payload,
                            SubscribeRequest& request);
bool DecodeUnsubscribeRequest(std::span<const uint8_t> payload,
                              UnsubscribeRequest& request);
bool DecodeSubscribeResponse(std::span<const uint8_t> payload,
                             SubscribeResponse& response);
bool DecodeUnsubscribeResponse(std::span<const uint8_t> payload,
                               UnsubscribeResponse& response);
bool DecodePushAnswer(std::span<const uint8_t> payload, PushAnswer& push);
bool DecodeQueryResponse(std::span<const uint8_t> payload,
                         QueryResponse& response);
bool DecodeBatchResponse(std::span<const uint8_t> payload,
                         BatchResponse& response);
bool DecodeUpdateWeightsResponse(std::span<const uint8_t> payload,
                                 UpdateWeightsResponse& response);
bool DecodeStatsResponse(std::span<const uint8_t> payload,
                         StatsResponse& response);
bool DecodeErrorResponse(std::span<const uint8_t> payload,
                         ErrorResponse& response);

/// Converts a solved FannResult to its wire form (and back). The mapping
/// is lossless for everything the protocol carries, which is exactly
/// what the loopback differential test compares bitwise.
WireResult ToWire(const FannResult& result);
FannResult FromWire(const WireResult& wire);

/// True when two results carry the same visible answer: status, best,
/// bitwise distance, subset, and error — but NOT gphi_evaluations (a
/// work counter: two epochs can produce the identical answer with
/// different amounts of search). Delta-push suppression keys off this.
bool SameVisibleAnswer(const WireResult& a, const WireResult& b);

}  // namespace fannr::net

#endif  // FANNR_NET_PROTOCOL_H_
