#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "cont/subscription.h"
#include "dynamic/update.h"
#include "dynamic/wal.h"
#include "obs/trace.h"

namespace fannr::net {

namespace {

/// Effective deadline of one wire job: its own value when positive and
/// finite, else the batch default, else the server default; 0 = none.
double EffectiveDeadlineMs(double job_ms, double batch_ms,
                          double server_default_ms) {
  auto usable = [](double v) { return std::isfinite(v) && v > 0.0; };
  if (usable(job_ms)) return job_ms;
  if (usable(batch_ms)) return batch_ms;
  if (usable(server_default_ms)) return server_default_ms;
  return 0.0;
}

WireResult RejectedWire(std::string error) {
  WireResult r;
  r.status = static_cast<uint8_t>(QueryStatus::kRejected);
  r.error = std::move(error);
  return r;
}

WireResult TimedOutWire(std::string error) {
  WireResult r;
  r.status = static_cast<uint8_t>(QueryStatus::kTimedOut);
  r.error = std::move(error);
  return r;
}

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string HistogramStatsJson(const obs::HistogramSnapshot& h) {
  return "{\"count\": " + std::to_string(h.count) +
         ", \"mean\": " + Num(h.Mean()) + ", \"p50\": " + Num(h.Percentile(50)) +
         ", \"p95\": " + Num(h.Percentile(95)) +
         ", \"p99\": " + Num(h.Percentile(99)) + ", \"max\": " + Num(h.max) +
         "}";
}

/// epoll user-data tags for the two non-connection descriptors each
/// loop watches. Real heap Connection pointers can never collide with
/// these values.
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kListenerTag = 2;

/// Cap on the post-io_stop_ flush of remaining transmit queues. Only a
/// peer that stops reading mid-drain can make us wait this long.
constexpr double kDrainFlushCapMs = 2'000.0;

/// Backoff after an accept failure that does not clear the listener's
/// readability (EMFILE/ENFILE/ENOBUFS/...): the listener is deregistered
/// for this long, then re-armed. Bounds the accept loop to ~20 wakeups/s
/// while the fd table stays exhausted instead of a 100% CPU spin.
constexpr double kAcceptBackoffMs = 50.0;

}  // namespace

/// One accepted client connection, owned by exactly one event loop.
/// Receive-side state (`in`, read_paused, registered, want_write) is
/// touched only by that loop's thread; the transmit queue is shared
/// with the executor under out_mu (appended anywhere, flushed only by
/// the loop thread so socket writes never interleave).
struct FannServer::Connection {
  Socket sock;
  size_t loop_index = 0;
  std::atomic<bool> open{true};

  // Loop-thread-only.
  ByteQueue in;
  bool read_paused = false;   ///< Backpressure: EPOLLIN disarmed.
  bool registered = false;    ///< In the loop's epoll set and conns map.
  bool want_write = false;    ///< EPOLLOUT armed (transmit queue nonempty).

  // Shared with response writers.
  std::mutex out_mu;
  ByteQueue out;
};

/// One epoll event loop. `conns` is keyed by raw pointer so a stale
/// data.ptr from an event batch that already closed the connection is
/// detected by lookup instead of dereferenced. The mailbox
/// (pending_add/dirty) is how other threads hand this loop work.
struct FannServer::IoLoop {
  int epoll_fd = -1;
  int wake_fd = -1;  ///< Nonblocking eventfd; readable until drained.
  std::thread thread;
  std::atomic<std::thread::id> thread_id{};
  bool accepting = false;  ///< Loop 0 watches the listener until drain.
  /// Listener temporarily deregistered after EMFILE-class accept
  /// failures; re-armed once accept_backoff passes kAcceptBackoffMs.
  bool accept_paused = false;
  Timer accept_backoff;
  std::unordered_map<Connection*, std::shared_ptr<Connection>> conns;

  std::mutex mail_mu;
  std::vector<std::shared_ptr<Connection>> pending_add;
  std::vector<std::shared_ptr<Connection>> dirty;

  ~IoLoop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }
};

/// One admitted unit of work, queued FIFO for the executor.
struct FannServer::WorkItem {
  std::shared_ptr<Connection> conn;
  Opcode opcode = Opcode::kPing;
  uint64_t request_id = 0;
  QueryRequest query;
  BatchRequest batch;
  UpdateWeightsRequest update;
  ReplApplyRequest repl;
  SubscribeRequest subscribe;
  UnsubscribeRequest unsubscribe;
  /// Graph epoch at admission; QUERY/BATCH items are rejected at
  /// execution if the epoch has moved (an update was processed in
  /// between), mirroring the engine's mid-batch contract.
  GraphEpoch admission_epoch = 0;
  Timer e2e_timer;  ///< Started at admission; measures queue wait + solve.
};

FannServer::FannServer(Graph* graph, const GphiResources& resources,
                       ServerConfig config)
    : graph_(graph), resources_(resources), config_(std::move(config)) {
  FANNR_CHECK(graph_ != nullptr && resources_.graph == graph_);
  // STATS, the slow-query log, and drain reporting all read the engine's
  // observation state; the server runs with it on unconditionally.
  config_.engine_options.enable_metrics = true;
  engine_ = std::make_unique<BatchQueryEngine>(resources_,
                                               config_.engine_options);
  subs_ = std::make_unique<cont::SubscriptionTable>(
      config_.max_subscriptions_per_connection,
      config_.max_subscriptions_total);

  m_req_query_ = metrics_.RegisterCounter("server.requests.query");
  m_req_batch_ = metrics_.RegisterCounter("server.requests.batch");
  m_req_update_ = metrics_.RegisterCounter("server.requests.update_weights");
  m_req_stats_ = metrics_.RegisterCounter("server.requests.stats");
  m_req_ping_ = metrics_.RegisterCounter("server.requests.ping");
  m_req_shutdown_ = metrics_.RegisterCounter("server.requests.shutdown");
  m_req_repl_ = metrics_.RegisterCounter("server.requests.repl_apply");
  m_errors_ = metrics_.RegisterCounter("server.responses.error");
  m_overloaded_ = metrics_.RegisterCounter("server.overloaded");
  m_bad_frames_ = metrics_.RegisterCounter("server.bad_frames");
  m_connections_ = metrics_.RegisterCounter("server.connections");
  m_accept_errors_ = metrics_.RegisterCounter("server.accept_errors");
  m_stale_admission_ =
      metrics_.RegisterCounter("server.rejected_stale_admission");
  m_req_subscribe_ = metrics_.RegisterCounter("server.requests.subscribe");
  m_req_unsubscribe_ =
      metrics_.RegisterCounter("server.requests.unsubscribe");
  m_pushes_sent_ = metrics_.RegisterCounter("server.pushes.sent");
  m_pushes_suppressed_ =
      metrics_.RegisterCounter("server.pushes.suppressed");
  m_pushes_dropped_ =
      metrics_.RegisterCounter("server.pushes.dropped_backpressure");
  m_queue_depth_ = metrics_.RegisterGauge("server.queue_depth");
  m_subs_active_ = metrics_.RegisterGauge("server.subscriptions.active");
  m_e2e_query_ms_ = metrics_.RegisterHistogram(
      "server.e2e_ms.query", obs::DefaultLatencyBucketsMs());
  m_e2e_batch_ms_ = metrics_.RegisterHistogram(
      "server.e2e_ms.batch", obs::DefaultLatencyBucketsMs());
  m_e2e_update_ms_ = metrics_.RegisterHistogram(
      "server.e2e_ms.update", obs::DefaultLatencyBucketsMs());
  m_queue_wait_ms_ = metrics_.RegisterHistogram(
      "server.queue_wait_ms", obs::DefaultLatencyBucketsMs());
  m_push_latency_ms_ = metrics_.RegisterHistogram(
      "server.push_latency_ms", obs::DefaultLatencyBucketsMs());
}

FannServer::~FannServer() {
  if (started_.load(std::memory_order_relaxed)) {
    RequestShutdown();
    if (executor_thread_.joinable()) Wait();
  }
  if (drain_wake_fd_ >= 0) ::close(drain_wake_fd_);
}

bool FannServer::Start(std::string* error) {
  FANNR_CHECK(!started_.load(std::memory_order_relaxed));
  // Blocking mode: Wait() parks in read(2) on it until RequestShutdown.
  drain_wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (drain_wake_fd_ < 0) {
    if (error != nullptr) *error = "eventfd failed";
    return false;
  }
  listener_ = TcpListen(config_.host, config_.port, &port_, error);
  if (!listener_.valid()) return false;
  if (!listener_.SetNonBlocking()) {
    if (error != nullptr) *error = "could not set listener nonblocking";
    return false;
  }

  const size_t num_loops = std::max<size_t>(config_.num_io_threads, 1);
  io_loops_.clear();
  for (size_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      if (error != nullptr) *error = "epoll/eventfd setup failed";
      io_loops_.clear();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    if (i == 0) {
      ev.data.u64 = kListenerTag;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &ev);
      loop->accepting = true;
    }
    io_loops_.push_back(std::move(loop));
  }

  started_.store(true, std::memory_order_relaxed);
  io_stop_.store(false, std::memory_order_relaxed);
  for (size_t i = 0; i < io_loops_.size(); ++i) {
    io_loops_[i]->thread = std::thread(&FannServer::IoLoopMain, this, i);
  }
  executor_thread_ = std::thread(&FannServer::ExecutorMain, this);
  return true;
}

void FannServer::RequestShutdown() {
  draining_.store(true, std::memory_order_relaxed);
  // Everything below is async-signal-safe (write(2) on eventfds over an
  // immutable vector), so this whole method may run in a SIGTERM
  // handler. An eventfd counter stays level-triggered readable until
  // consumed: however many callers race here, the wake cannot be
  // silently dropped the way a full pipe drops writes. (EAGAIN is only
  // possible at counter overflow, which still leaves it readable.)
  const uint64_t one = 1;
  if (drain_wake_fd_ >= 0) {
    [[maybe_unused]] ssize_t n = ::write(drain_wake_fd_, &one, sizeof(one));
  }
  for (const std::unique_ptr<IoLoop>& loop : io_loops_) {
    [[maybe_unused]] ssize_t n = ::write(loop->wake_fd, &one, sizeof(one));
  }
}

size_t FannServer::tracked_connection_threads() const {
  return io_loops_.size();
}

void FannServer::WakeLoop(IoLoop& loop) {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
}

void FannServer::IoLoopMain(size_t index) {
  IoLoop& loop = *io_loops_[index];
  loop.thread_id.store(std::this_thread::get_id(), std::memory_order_relaxed);
  std::vector<epoll_event> events(128);
  while (!io_stop_.load(std::memory_order_acquire)) {
    int timeout = -1;
    if (loop.accepting && loop.accept_paused) {
      const double remaining = kAcceptBackoffMs - loop.accept_backoff.Millis();
      timeout = remaining <= 0.0 ? 0 : static_cast<int>(remaining) + 1;
    }
    const int n = ::epoll_wait(loop.epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kWakeTag) {
        uint64_t counter = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &counter, sizeof(counter));
        continue;
      }
      if (ev.data.u64 == kListenerTag) {
        if (!draining()) AcceptReady(loop);
        continue;
      }
      // An earlier event in this same batch may have closed the
      // connection; the map lookup catches the stale pointer.
      auto it = loop.conns.find(static_cast<Connection*>(ev.data.ptr));
      if (it == loop.conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((ev.events & EPOLLERR) != 0) {
        CloseConnection(loop, *conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) FlushConnection(loop, conn);
      if (conn->registered && (ev.events & (EPOLLIN | EPOLLHUP)) != 0) {
        ReadConnection(loop, conn);
      }
    }
    if (loop.accepting && draining()) {
      // Drain: stop accepting, but keep serving existing connections
      // (their in-flight work still gets answered). A paused listener
      // is already out of the epoll set.
      if (!loop.accept_paused) {
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      }
      loop.accept_paused = false;
      loop.accepting = false;
    }
    if (loop.accepting && loop.accept_paused &&
        loop.accept_backoff.Millis() >= kAcceptBackoffMs) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kListenerTag;
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &ev);
      loop.accept_paused = false;
    }
    ProcessMail(loop);
  }
  DrainLoopAndClose(loop);
}

void FannServer::AcceptReady(IoLoop& loop) {
  while (true) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // accepted everything pending
      }
      if (errno == ECONNABORTED || errno == EPROTO) {
        // That one pending connection died before we got to it; the
        // rest of the backlog is still fine.
        metrics_.Add(m_accept_errors_, 1);
        continue;
      }
      // EMFILE/ENFILE/ENOBUFS/ENOMEM: the failure does not consume the
      // pending connection, so the level-triggered listener stays
      // readable and returning here would re-fire epoll_wait
      // immediately — a 100% CPU spin for as long as the fd table is
      // exhausted. Park the listener and re-arm it after a backoff.
      metrics_.Add(m_accept_errors_, 1);
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      loop.accept_paused = true;
      loop.accept_backoff.Reset();
      return;
    }
    Socket sock(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    metrics_.Add(m_connections_, 1);

    if (live_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      metrics_.Add(m_overloaded_, 1);
      ErrorResponse err;
      err.code = ErrorCode::kOverloaded;
      err.message = "connection limit reached — retry later";
      const std::vector<uint8_t> frame =
          EncodeFrame(static_cast<uint16_t>(Opcode::kError), 0,
                      EncodeErrorResponse(err));
      // Best effort on the fresh nonblocking socket: a tiny frame fits
      // the empty send buffer; if it somehow doesn't, the close below
      // still sheds the connection.
      (void)sock.SendSome(frame.data(), frame.size());
      continue;  // sock dies here
    }

    live_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(sock);
    conn->loop_index = next_loop_.fetch_add(1, std::memory_order_relaxed) %
                       io_loops_.size();
    IoLoop& dest = *io_loops_[conn->loop_index];
    if (&dest == &loop) {
      RegisterConnection(dest, conn);
    } else {
      {
        std::lock_guard<std::mutex> lock(dest.mail_mu);
        dest.pending_add.push_back(std::move(conn));
      }
      WakeLoop(dest);
    }
  }
}

void FannServer::RegisterConnection(IoLoop& loop,
                                    const std::shared_ptr<Connection>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
    conn->open.store(false, std::memory_order_relaxed);
    live_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;  // conn dies with the caller's reference
  }
  conn->registered = true;
  loop.conns.emplace(conn.get(), conn);
}

void FannServer::ReadConnection(IoLoop& loop,
                                const std::shared_ptr<Connection>& conn) {
  if (!conn->registered || conn->read_paused) return;
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = conn->sock.RecvSome(buf, sizeof(buf));
    if (n > 0) {
      conn->in.Append(buf, static_cast<size_t>(n));
      if (!ParseAndDispatch(loop, conn)) return;  // closed or paused
      if (static_cast<size_t>(n) < sizeof(buf)) return;  // likely drained
      continue;
    }
    if (n == 0) {  // peer EOF
      CloseConnection(loop, *conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(loop, *conn);
    return;
  }
}

bool FannServer::ParseAndDispatch(IoLoop& loop,
                                  const std::shared_ptr<Connection>& conn) {
  while (conn->registered) {
    // Write-side backpressure: a connection that has stopped reading
    // its responses stops being read itself, before its next frame is
    // even cut — the transmit backlog, not the kernel's buffers, is
    // the bound.
    size_t backlog = 0;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      backlog = conn->out.size();
    }
    if (backlog > config_.max_outbound_bytes) {
      conn->read_paused = true;
      UpdateInterest(loop, *conn);
      return false;
    }

    FrameCut cut = CutFrame(conn->in);
    if (cut.kind == FrameCut::Kind::kNeedMore) return true;
    if (cut.kind == FrameCut::Kind::kPoisoned) {
      // Bad magic / oversized payload / nonzero reserved: the stream
      // has no trustworthy frame boundary left. Close, never crash.
      metrics_.Add(m_bad_frames_, 1);
      CloseConnection(loop, *conn);
      return false;
    }
    DispatchFrame(conn, cut);
  }
  return false;
}

void FannServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                               FrameCut& cut) {
  const FrameHeader& header = cut.header;
  if (header.version != kProtocolVersion) {
    metrics_.Add(m_errors_, 1);
    EnqueueError(conn, header.request_id, ErrorCode::kUnsupportedVersion,
                 cut.envelope_error);
    return;
  }
  if (!IsRequestOpcode(header.opcode)) {
    metrics_.Add(m_errors_, 1);
    EnqueueError(conn, header.request_id, ErrorCode::kUnknownOpcode,
                 "opcode " + std::to_string(header.opcode) +
                     " is not a request opcode");
    return;
  }

  const Opcode opcode = static_cast<Opcode>(header.opcode);
  if (opcode == Opcode::kPing) {
    metrics_.Add(m_req_ping_, 1);
    EnqueueFrame(conn, Opcode::kPong, header.request_id, {});
    return;
  }
  if (opcode == Opcode::kShutdown) {
    metrics_.Add(m_req_shutdown_, 1);
    EnqueueFrame(conn, Opcode::kShutdownAck, header.request_id, {});
    RequestShutdown();
    return;
  }

  // Work frame: decode, then admit (or shed).
  WorkItem item;
  item.conn = conn;
  item.opcode = opcode;
  item.request_id = header.request_id;
  bool decoded = false;
  switch (opcode) {
    case Opcode::kQuery:
      metrics_.Add(m_req_query_, 1);
      decoded = DecodeQueryRequest(cut.payload, item.query);
      break;
    case Opcode::kBatch:
      metrics_.Add(m_req_batch_, 1);
      decoded = DecodeBatchRequest(cut.payload, item.batch);
      break;
    case Opcode::kUpdateWeights:
      metrics_.Add(m_req_update_, 1);
      decoded = DecodeUpdateWeightsRequest(cut.payload, item.update);
      break;
    case Opcode::kReplApply:
      metrics_.Add(m_req_repl_, 1);
      decoded = DecodeReplApplyRequest(cut.payload, item.repl);
      break;
    case Opcode::kStats:
      metrics_.Add(m_req_stats_, 1);
      decoded = cut.payload.empty();
      break;
    case Opcode::kSubscribe:
      metrics_.Add(m_req_subscribe_, 1);
      decoded = DecodeSubscribeRequest(cut.payload, item.subscribe);
      break;
    case Opcode::kUnsubscribe:
      metrics_.Add(m_req_unsubscribe_, 1);
      decoded = DecodeUnsubscribeRequest(cut.payload, item.unsubscribe);
      break;
    default:
      break;
  }
  if (!decoded) {
    metrics_.Add(m_errors_, 1);
    EnqueueError(conn, header.request_id, ErrorCode::kMalformedPayload,
                 std::string(OpcodeName(header.opcode)) +
                     " payload failed to decode");
    return;
  }
  if (draining()) {
    metrics_.Add(m_errors_, 1);
    EnqueueError(conn, header.request_id, ErrorCode::kShuttingDown,
                 "server is draining — no new work accepted");
    return;
  }

  item.admission_epoch = graph_->epoch();
  item.e2e_timer.Reset();
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < config_.max_queue_depth) {
      queue_.push_back(std::move(item));
      metrics_.Set(m_queue_depth_, static_cast<double>(queue_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    queue_cv_.notify_one();
  } else {
    // Bounded admission: shed the request explicitly instead of
    // buffering without limit. The client retries with backoff.
    metrics_.Add(m_overloaded_, 1);
    EnqueueError(conn, header.request_id, ErrorCode::kOverloaded,
                 "admission queue full (" +
                     std::to_string(config_.max_queue_depth) +
                     " pending) — retry later");
  }
}

void FannServer::EnqueueFrame(const std::shared_ptr<Connection>& conn,
                              Opcode opcode, uint64_t request_id,
                              std::span<const uint8_t> payload) {
  if (!conn->open.load(std::memory_order_relaxed)) return;
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(opcode), request_id, payload);
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->out.Append(frame.data(), frame.size());
  }
  IoLoop& loop = *io_loops_[conn->loop_index];
  {
    std::lock_guard<std::mutex> lock(loop.mail_mu);
    loop.dirty.push_back(conn);
  }
  // The loop flushes its dirty list before re-entering epoll_wait, so
  // when already on the loop thread (inline PING/error replies) no wake
  // is needed; anyone else must interrupt the wait.
  if (std::this_thread::get_id() !=
      loop.thread_id.load(std::memory_order_relaxed)) {
    WakeLoop(loop);
  }
}

void FannServer::EnqueueError(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, ErrorCode code,
                              std::string message) {
  ErrorResponse response;
  response.code = code;
  response.message = std::move(message);
  EnqueueFrame(conn, Opcode::kError, request_id,
               EncodeErrorResponse(response));
}

void FannServer::FlushConnection(IoLoop& loop,
                                 const std::shared_ptr<Connection>& conn) {
  if (!conn->registered) return;
  bool failed = false;
  size_t remaining = 0;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    while (!conn->out.empty()) {
      const ssize_t n = conn->sock.SendSome(conn->out.data(),
                                            conn->out.size());
      if (n > 0) {
        conn->out.Consume(static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      failed = true;  // peer closed mid-response or hard error
      break;
    }
    remaining = conn->out.size();
  }
  if (failed) {
    CloseConnection(loop, *conn);
    return;
  }

  bool interest_changed = false;
  const bool want_write = remaining > 0;
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    interest_changed = true;
  }
  const bool resume =
      conn->read_paused && remaining <= config_.max_outbound_bytes / 2;
  if (resume) {
    conn->read_paused = false;
    interest_changed = true;
  }
  if (interest_changed) UpdateInterest(loop, *conn);
  if (resume) {
    // Frames already buffered while paused parse now; anything still in
    // the kernel re-fires the (level-triggered) EPOLLIN we just armed.
    ParseAndDispatch(loop, conn);
  }
}

void FannServer::UpdateInterest(IoLoop& loop, Connection& conn) {
  if (!conn.registered) return;
  epoll_event ev{};
  ev.events = (conn.read_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.ptr = &conn;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
}

void FannServer::CloseConnection(IoLoop& loop, Connection& conn) {
  if (!conn.registered) return;  // idempotent
  conn.registered = false;
  conn.open.store(false, std::memory_order_relaxed);
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn.sock.fd(), nullptr);
  // A peer may be parked in read(2) waiting for a reply that will never
  // come (e.g. its frame was fatally malformed); shutdown(2) hands it a
  // clean EOF before the descriptor goes away.
  conn.sock.ShutdownBoth();
  conn.sock.Close();
  live_connections_.fetch_sub(1, std::memory_order_relaxed);
  loop.conns.erase(&conn);  // may free conn — must be the last touch
}

void FannServer::ProcessMail(IoLoop& loop) {
  std::vector<std::shared_ptr<Connection>> add;
  std::vector<std::shared_ptr<Connection>> dirty;
  {
    std::lock_guard<std::mutex> lock(loop.mail_mu);
    add.swap(loop.pending_add);
    dirty.swap(loop.dirty);
  }
  for (const std::shared_ptr<Connection>& conn : add) {
    RegisterConnection(loop, conn);
  }
  for (const std::shared_ptr<Connection>& conn : dirty) {
    FlushConnection(loop, conn);
  }
}

void FannServer::DrainLoopAndClose(IoLoop& loop) {
  // The executor is already gone, so the transmit queues hold the final
  // bytes of every drained/aborted response. Flush them (bounded — only
  // a peer that stopped reading can hold us up), then close everything.
  Timer cap;
  while (cap.Millis() < kDrainFlushCapMs) {
    ProcessMail(loop);
    std::vector<std::shared_ptr<Connection>> conns;
    conns.reserve(loop.conns.size());
    for (const auto& [ptr, sp] : loop.conns) conns.push_back(sp);
    bool pending = false;
    for (const std::shared_ptr<Connection>& conn : conns) {
      FlushConnection(loop, conn);
      if (!conn->registered) continue;
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (!conn->out.empty()) pending = true;
    }
    if (!pending) break;
    epoll_event ev;
    ::epoll_wait(loop.epoll_fd, &ev, 1, 10);
  }
  std::vector<std::shared_ptr<Connection>> conns;
  conns.reserve(loop.conns.size());
  for (const auto& [ptr, sp] : loop.conns) conns.push_back(sp);
  for (const std::shared_ptr<Connection>& conn : conns) {
    CloseConnection(loop, *conn);
  }
}

void FannServer::ExecutorMain() {
  while (true) {
    WorkItem first;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return !queue_.empty() || executor_stop_; });
      if (queue_.empty()) break;  // executor_stop_ with a drained queue
      first = std::move(queue_.front());
      queue_.pop_front();
      metrics_.Set(m_queue_depth_, static_cast<double>(queue_.size()));
    }
    if (config_.test_execution_gate) config_.test_execution_gate();

    // Pipelining amortization: run consecutive QUERY items admitted
    // under the same epoch (possibly from different connections)
    // through one engine Run. Only the queue front is ever taken, so
    // FIFO order — and therefore the epoch/update interleaving
    // semantics — is untouched. Per-job answers are bitwise-independent
    // of batch composition by the engine's determinism contract.
    std::vector<WorkItem> burst;
    burst.push_back(std::move(first));
    if (burst[0].opcode == Opcode::kQuery) {
      const size_t budget = std::max<size_t>(config_.merge_budget, 1);
      while (burst.size() < budget) {
        WorkItem extra;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          if (queue_.empty() || queue_.front().opcode != Opcode::kQuery ||
              queue_.front().admission_epoch != burst[0].admission_epoch) {
            break;
          }
          extra = std::move(queue_.front());
          queue_.pop_front();
          metrics_.Set(m_queue_depth_, static_cast<double>(queue_.size()));
        }
        // The gate contract — one entry per dequeued item — holds for
        // merged items too.
        if (config_.test_execution_gate) config_.test_execution_gate();
        burst.push_back(std::move(extra));
      }
    }

    // Read the stop flag after the gate(s), not at dequeue: Wait() arms
    // the drain timer before setting it, so when `stopping` is observed
    // the deadline check below is measuring the actual drain —
    // including for an item that was dequeued before the drain began.
    bool stopping = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping = executor_stop_;
    }
    std::vector<WorkItem*> live;
    live.reserve(burst.size());
    for (WorkItem& item : burst) {
      if (stopping && drain_timer_.Millis() > config_.drain_deadline_ms) {
        // Past the drain budget: answer, don't compute.
        aborted_items_.fetch_add(1, std::memory_order_relaxed);
        metrics_.Add(m_errors_, 1);
        EnqueueError(item.conn, item.request_id, ErrorCode::kShuttingDown,
                     "drain deadline exceeded — request aborted");
        continue;
      }
      live.push_back(&item);
    }
    if (!live.empty()) {
      if (burst[0].opcode == Opcode::kQuery) {
        ExecuteQueryBurst(live);
      } else {
        Execute(*live[0]);
      }
      if (stopping) {
        drained_items_.fetch_add(live.size(), std::memory_order_relaxed);
      }
    }
  }
}

void FannServer::Execute(WorkItem& item) {
  metrics_.Record(m_queue_wait_ms_, item.e2e_timer.Millis());
  switch (item.opcode) {
    case Opcode::kBatch:
      ExecuteBatch(item);
      metrics_.Record(m_e2e_batch_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kUpdateWeights:
      ExecuteUpdate(item);
      metrics_.Record(m_e2e_update_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kReplApply:
      ExecuteReplApply(item);
      metrics_.Record(m_e2e_update_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kStats:
      ExecuteStats(item);
      break;
    case Opcode::kSubscribe:
      ExecuteSubscribe(item);
      metrics_.Record(m_e2e_query_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kUnsubscribe:
      ExecuteUnsubscribe(item);
      break;
    default:
      break;
  }
}

std::string FannServer::MaterializeSets(
    const WireQuery& wire, std::unique_ptr<IndexedVertexSet>& p,
    std::unique_ptr<IndexedVertexSet>& q) const {
  const size_t num_vertices = graph_->NumVertices();
  auto screen = [&](const std::vector<uint32_t>& ids, const char* which)
      -> std::string {
    for (uint32_t id : ids) {
      if (id >= num_vertices) {
        return std::string(which) + " vertex id " + std::to_string(id) +
               " out of range (graph has " + std::to_string(num_vertices) +
               " vertices)";
      }
    }
    std::vector<uint32_t> sorted(ids);
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return std::string(which) + " contains a duplicate vertex id";
    }
    return std::string();
  };
  std::string error = screen(wire.p, "data point set P");
  if (error.empty()) error = screen(wire.q, "query point set Q");
  if (!error.empty()) return error;
  p = std::make_unique<IndexedVertexSet>(
      num_vertices, std::vector<VertexId>(wire.p.begin(), wire.p.end()));
  q = std::make_unique<IndexedVertexSet>(
      num_vertices, std::vector<VertexId>(wire.q.begin(), wire.q.end()));
  return std::string();
}

bool FannServer::ScreenJob(const WireQuery& wire, double batch_deadline_ms,
                           const Timer& e2e_timer,
                           std::vector<std::unique_ptr<IndexedVertexSet>>& sets,
                           std::vector<FannrQuery>& runnable,
                           WireResult* rejected) {
  if (wire.algorithm > static_cast<uint8_t>(FannAlgorithm::kApxSum)) {
    *rejected = RejectedWire("unknown algorithm enumerator " +
                             std::to_string(wire.algorithm));
    return false;
  }
  if (wire.aggregate > static_cast<uint8_t>(Aggregate::kSum)) {
    *rejected = RejectedWire("unknown aggregate enumerator " +
                             std::to_string(wire.aggregate));
    return false;
  }
  std::unique_ptr<IndexedVertexSet> p;
  std::unique_ptr<IndexedVertexSet> q;
  std::string error = MaterializeSets(wire, p, q);
  if (!error.empty()) {
    *rejected = RejectedWire(std::move(error));
    return false;
  }
  const double deadline_ms = EffectiveDeadlineMs(
      wire.deadline_ms, batch_deadline_ms, config_.default_deadline_ms);
  std::optional<double> engine_deadline;
  if (deadline_ms > 0.0) {
    // End-to-end: the time already spent queued counts against the
    // deadline; the engine measures the rest from Run() entry.
    const double remaining = deadline_ms - e2e_timer.Millis();
    if (remaining <= 0.0) {
      *rejected = TimedOutWire("deadline of " + std::to_string(deadline_ms) +
                               " ms exceeded in the admission queue");
      return false;
    }
    engine_deadline = remaining;
  }

  FannrQuery job;
  job.query.graph = graph_;
  job.query.data_points = p.get();
  job.query.query_points = q.get();
  job.query.phi = wire.phi;
  job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
  // Weights point into the wire request, which outlives the engine Run
  // at every call site (the WorkItem for one-shot work, the
  // subscription table entry for re-evaluations). Value validation
  // (finite, > 0, |Q|-sized) is the engine's screening, so weighted
  // wire jobs reject with the same reasons in-process callers see.
  if (!wire.weights.empty()) job.query.weights = &wire.weights;
  job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
  job.deadline_ms = engine_deadline;
  sets.push_back(std::move(p));
  sets.push_back(std::move(q));
  runnable.push_back(job);
  return true;
}

void FannServer::ExecuteQueryBurst(const std::vector<WorkItem*>& items) {
  for (const WorkItem* item : items) {
    metrics_.Record(m_queue_wait_ms_, item->e2e_timer.Millis());
  }

  const GraphEpoch now = graph_->epoch();
  std::vector<WireResult> results(items.size());
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> runnable;
  std::vector<size_t> runnable_slot;
  for (size_t i = 0; i < items.size(); ++i) {
    WorkItem& item = *items[i];
    if (now != item.admission_epoch) {
      metrics_.Add(m_stale_admission_, 1);
      results[i] = RejectedWire(MidBatchEpochError(item.admission_epoch, now));
      continue;
    }
    WireResult rejected;
    if (ScreenJob(item.query.query, /*batch_deadline_ms=*/0.0, item.e2e_timer,
                  sets, runnable, &rejected)) {
      runnable_slot.push_back(i);
    } else {
      results[i] = std::move(rejected);
    }
  }

  if (!runnable.empty()) {
    const std::vector<FannResult> solved = engine_->Run(runnable);
    for (size_t j = 0; j < solved.size(); ++j) {
      results[runnable_slot[j]] = ToWire(solved[j]);
    }
  }

  for (size_t i = 0; i < items.size(); ++i) {
    WorkItem& item = *items[i];
    QueryResponse response;
    response.graph_epoch = now;
    response.result = std::move(results[i]);
    EnqueueFrame(item.conn, Opcode::kQueryResult, item.request_id,
                 EncodeQueryResponse(response));
    metrics_.Record(m_e2e_query_ms_, item.e2e_timer.Millis());
  }
}

void FannServer::ExecuteBatch(WorkItem& item) {
  const GraphEpoch now = graph_->epoch();
  if (now != item.admission_epoch) {
    metrics_.Add(m_stale_admission_, 1);
    BatchResponse response;
    response.graph_epoch = now;
    response.results.assign(
        item.batch.jobs.size(),
        RejectedWire(MidBatchEpochError(item.admission_epoch, now)));
    EnqueueFrame(item.conn, Opcode::kBatchResult, item.request_id,
                 EncodeBatchResponse(response));
    return;
  }
  BatchResponse response = RunJobs(item);
  EnqueueFrame(item.conn, Opcode::kBatchResult, item.request_id,
               EncodeBatchResponse(response));
}

BatchResponse FannServer::RunJobs(WorkItem& item) {
  const std::vector<WireQuery>& jobs = item.batch.jobs;
  BatchResponse response;
  response.graph_epoch = graph_->epoch();
  response.results.resize(jobs.size());

  // Net-level screening (id validity, enum ranges, expired deadlines)
  // fills result slots directly; everything else goes to the engine in
  // one Run so in-process semantics — validation reasons, epoch checks,
  // fallbacks, tracing — apply verbatim.
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> runnable;
  std::vector<size_t> runnable_slot;
  for (size_t i = 0; i < jobs.size(); ++i) {
    WireResult rejected;
    if (ScreenJob(jobs[i], item.batch.deadline_ms, item.e2e_timer, sets,
                  runnable, &rejected)) {
      runnable_slot.push_back(i);
    } else {
      response.results[i] = std::move(rejected);
    }
  }

  if (!runnable.empty()) {
    const std::vector<FannResult> results = engine_->Run(runnable);
    for (size_t j = 0; j < results.size(); ++j) {
      response.results[runnable_slot[j]] = ToWire(results[j]);
    }
  }
  return response;
}

void FannServer::ExecuteUpdate(WorkItem& item) {
  UpdateWeightsResponse response;
  dynamic::UpdateBatch batch;
  for (const UpdateWeightsRequest::Entry& e : item.update.entries) {
    batch.SetWeight(e.u, e.v, e.weight);
  }
  // Screen before Apply — Apply aborts on invalid entries by contract,
  // and frames are untrusted input.
  const std::string error = batch.ValidationError(*graph_);
  if (!error.empty()) {
    response.status = 1;
    response.error = error;
  } else {
    // Safe to mutate: the executor is the only thread running queries,
    // so no reader can race this apply (Graph's contract).
    const dynamic::ApplyResult applied = batch.Apply(*graph_);
    response.status = 0;
    response.applied = applied.applied;
    response.missing = applied.missing;
    response.old_epoch = applied.old_epoch;
    response.new_epoch = applied.new_epoch;
    LogToWal(item.update.entries, applied);
  }
  EnqueueFrame(item.conn, Opcode::kUpdateResult, item.request_id,
               EncodeUpdateWeightsResponse(response));
  // Standing queries re-solve against the new epoch after the updater's
  // ACK is already on its way out.
  if (response.status == 0 && response.new_epoch != response.old_epoch) {
    ReevaluateSubscriptions();
  }
}

void FannServer::LogToWal(
    const std::vector<UpdateWeightsRequest::Entry>& entries,
    const dynamic::ApplyResult& applied) {
  if (config_.wal == nullptr) return;
  dynamic::WalRecord record;
  record.position = applied.old_epoch;
  record.new_epoch = applied.new_epoch;
  record.entries.reserve(entries.size());
  for (const UpdateWeightsRequest::Entry& e : entries) {
    record.entries.push_back({e.u, e.v, e.weight});
  }
  // Durability failure is not an answer-path failure: the batch IS
  // applied; a lost record only costs replay depth after a crash.
  (void)config_.wal->Append(record);
}

void FannServer::ExecuteReplApply(WorkItem& item) {
  UpdateWeightsResponse response;
  const GraphEpoch now = graph_->epoch();
  if (now != item.repl.position) {
    // Out-of-position batch: applying it would fork this replica's
    // weight history from the others'. Refuse and report where we are;
    // the sender decides whether to rewind or catch us up.
    response.status = 2;
    response.new_epoch = now;
    response.error = "replication position " +
                     std::to_string(item.repl.position) +
                     " does not match graph epoch " + std::to_string(now);
  } else if (item.repl.entries.empty()) {
    // Pure position probe: confirm without touching the graph.
    response.status = 0;
    response.old_epoch = now;
    response.new_epoch = now;
  } else {
    dynamic::UpdateBatch batch;
    for (const UpdateWeightsRequest::Entry& e : item.repl.entries) {
      batch.SetWeight(e.u, e.v, e.weight);
    }
    const std::string error = batch.ValidationError(*graph_);
    if (!error.empty()) {
      response.status = 1;
      response.error = error;
    } else {
      const dynamic::ApplyResult applied = batch.Apply(*graph_);
      response.status = 0;
      response.applied = applied.applied;
      response.missing = applied.missing;
      response.old_epoch = applied.old_epoch;
      response.new_epoch = applied.new_epoch;
      LogToWal(item.repl.entries, applied);
    }
  }
  EnqueueFrame(item.conn, Opcode::kReplApplyResult, item.request_id,
               EncodeUpdateWeightsResponse(response));
  // Replicated updates drive subscriptions exactly like direct ones.
  if (response.status == 0 && response.new_epoch != response.old_epoch) {
    ReevaluateSubscriptions();
  }
}

void FannServer::ExecuteSubscribe(WorkItem& item) {
  // Judge limits against live connections only: a subscriber that
  // reconnects should not be blocked by its dead predecessor's slots.
  subs_->Reap([](const std::shared_ptr<void>& owner) {
    return static_cast<Connection*>(owner.get())
        ->open.load(std::memory_order_relaxed);
  });
  if ((config_.max_subscriptions_total != 0 &&
       subs_->size() >= config_.max_subscriptions_total) ||
      (config_.max_subscriptions_per_connection != 0 &&
       subs_->OwnerCount(item.conn.get()) >=
           config_.max_subscriptions_per_connection)) {
    metrics_.Add(m_overloaded_, 1);
    metrics_.Set(m_subs_active_, static_cast<double>(subs_->size()));
    EnqueueError(item.conn, item.request_id, ErrorCode::kOverloaded,
                 "subscription limit reached — unsubscribe or retry later");
    return;
  }
  if (subs_->Find(item.conn.get(), item.request_id) != nullptr) {
    metrics_.Add(m_errors_, 1);
    EnqueueError(item.conn, item.request_id, ErrorCode::kMalformedPayload,
                 "subscription id " + std::to_string(item.request_id) +
                     " is already live on this connection");
    return;
  }

  // Initial answer, solved at the current epoch (a standing query has
  // no stale-admission contract — its whole point is to track epochs).
  SubscribeResponse response;
  response.graph_epoch = graph_->epoch();
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> runnable;
  WireResult rejected;
  if (!ScreenJob(item.subscribe.query, /*batch_deadline_ms=*/0.0,
                 item.e2e_timer, sets, runnable, &rejected)) {
    response.result = std::move(rejected);
  } else {
    const std::vector<FannResult> solved =
        engine_->Run(runnable, "subscription-initial");
    response.result = ToWire(solved[0]);
  }

  // Registration succeeds iff the initial answer is kOk, so the client
  // reads the outcome off the SUBSCRIBE_RESULT status alone: a rejected
  // or timed-out initial solve refuses the subscription outright rather
  // than standing up a query that can never push.
  if (response.result.status == static_cast<uint8_t>(QueryStatus::kOk)) {
    cont::Subscription sub;
    sub.id = item.request_id;
    sub.owner = item.conn;
    sub.query = std::move(item.subscribe.query);
    sub.force_push = item.subscribe.force_push != 0;
    sub.has_last = true;  // the initial answer counts as a delivery
    sub.last = response.result;
    sub.last_epoch = response.graph_epoch;
    const cont::SubscribeOutcome outcome = subs_->Add(std::move(sub));
    FANNR_CHECK(outcome == cont::SubscribeOutcome::kOk);
    metrics_.Set(m_subs_active_, static_cast<double>(subs_->size()));
  }
  EnqueueFrame(item.conn, Opcode::kSubscribeResult, item.request_id,
               EncodeSubscribeResponse(response));
}

void FannServer::ExecuteUnsubscribe(WorkItem& item) {
  cont::Subscription removed;
  UnsubscribeResponse response;
  if (subs_->Remove(item.conn.get(), item.unsubscribe.subscription_id,
                    &removed)) {
    response.status = 0;
    response.pushes_sent = removed.pushes_sent;
  } else {
    response.status = 1;
  }
  metrics_.Set(m_subs_active_, static_cast<double>(subs_->size()));
  EnqueueFrame(item.conn, Opcode::kUnsubscribeResult, item.request_id,
               EncodeUnsubscribeResponse(response));
}

void FannServer::ReevaluateSubscriptions() {
  // Connections close on their loops at any time; their subscriptions
  // die here, before the batch is assembled.
  subs_->Reap([](const std::shared_ptr<void>& owner) {
    return static_cast<Connection*>(owner.get())
        ->open.load(std::memory_order_relaxed);
  });
  metrics_.Set(m_subs_active_, static_cast<double>(subs_->size()));
  if (subs_->empty()) return;

  Timer push_timer;  // epoch bump (just happened) -> push enqueue
  const GraphEpoch now = graph_->epoch();
  std::vector<cont::Subscription>& all = subs_->subscriptions();

  // One merged engine Run over every live subscription: burst merging
  // and the shared distance cache amortize across subscribers exactly
  // as they do across pipelined one-shot queries. Composition cannot
  // change any answer (the engine's determinism contract), so a pushed
  // answer is bitwise what a lone solve at this epoch would produce.
  std::vector<WireResult> results(all.size());
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> runnable;
  std::vector<size_t> runnable_slot;
  const Timer reeval_timer;  // deadlines (if configured) start here
  for (size_t i = 0; i < all.size(); ++i) {
    WireResult rejected;
    if (ScreenJob(all[i].query, /*batch_deadline_ms=*/0.0, reeval_timer,
                  sets, runnable, &rejected)) {
      runnable_slot.push_back(i);
    } else {
      results[i] = std::move(rejected);
    }
  }
  if (!runnable.empty()) {
    const std::vector<FannResult> solved =
        engine_->Run(runnable, "subscription-reeval");
    for (size_t j = 0; j < solved.size(); ++j) {
      results[runnable_slot[j]] = ToWire(solved[j]);
    }
  }

  for (size_t i = 0; i < all.size(); ++i) {
    cont::Subscription& sub = all[i];
    WireResult& result = results[i];
    // Delta semantics: an answer the client already has is not pushed
    // (work counters excluded from the comparison — identical answers
    // can cost different work at different epochs).
    if (!sub.force_push && sub.has_last &&
        SameVisibleAnswer(result, sub.last)) {
      ++sub.pushes_suppressed;
      metrics_.Add(m_pushes_suppressed_, 1);
      continue;
    }
    PushAnswer push;
    push.graph_epoch = now;
    push.result = result;
    const auto conn = std::static_pointer_cast<Connection>(sub.owner);
    if (!TryEnqueuePush(conn, sub.id, EncodePushAnswer(push))) {
      // Conflated, not lost: delivery state stays put, so the next
      // re-evaluation sees the answer as still-undelivered and retries
      // once the backlog drains.
      ++sub.pushes_dropped_backpressure;
      metrics_.Add(m_pushes_dropped_, 1);
      continue;
    }
    ++sub.pushes_sent;
    metrics_.Add(m_pushes_sent_, 1);
    metrics_.Record(m_push_latency_ms_, push_timer.Millis());
    sub.has_last = true;
    sub.last = std::move(result);
    sub.last_epoch = now;
  }
}

bool FannServer::TryEnqueuePush(const std::shared_ptr<Connection>& conn,
                                uint64_t subscription_id,
                                std::span<const uint8_t> payload) {
  if (!conn->open.load(std::memory_order_relaxed)) return false;
  {
    // Same bound the read path enforces: a subscriber that stopped
    // reading gets its pushes conflated instead of an unbounded queue.
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->out.size() > config_.max_outbound_bytes) return false;
  }
  EnqueueFrame(conn, Opcode::kPushAnswer, subscription_id, payload);
  return true;
}

void FannServer::ExecuteStats(WorkItem& item) {
  StatsResponse response;
  response.json = StatsJson();
  EnqueueFrame(item.conn, Opcode::kStatsResult, item.request_id,
               EncodeStatsResponse(response));
}

std::string FannServer::StatsJson() const {
  const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  const SourceDistanceCache::Stats cache = engine_->cache_stats();
  std::string out = "{\n  \"server\": {\n    \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.counters[i].first) +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += "},\n    \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.gauges[i].first) +
           "\": " + Num(snapshot.gauges[i].second);
  }
  out += "},\n    \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.histograms[i].first) +
           "\": " + HistogramStatsJson(snapshot.histograms[i].second);
  }
  out += "}\n  },\n";
  out += "  \"graph_epoch\": " + std::to_string(graph_->epoch()) + ",\n";
  out += "  \"draining\": " + std::string(draining() ? "true" : "false") +
         ",\n";
  out += "  \"cache\": {\"hits\": " + std::to_string(cache.hits) +
         ", \"misses\": " + std::to_string(cache.misses) +
         ", \"evictions\": " + std::to_string(cache.evictions) +
         ", \"epoch_evictions\": " + std::to_string(cache.epoch_evictions) +
         "}\n}";
  return out;
}

DrainStats FannServer::Wait() {
  FANNR_CHECK(started_.load(std::memory_order_relaxed));
  // Park until a shutdown is requested. The eventfd is in blocking
  // mode and its counter survives until read, so a RequestShutdown
  // from before this call (or from a signal handler mid-read) is never
  // missed.
  uint64_t counter = 0;
  while (::read(drain_wake_fd_, &counter, sizeof(counter)) < 0 &&
         errno == EINTR) {
  }
  drain_timer_.Reset();

  // Drain order: finish (or abort) queued work first — every response
  // lands in a transmit queue — then tell the loops to flush those
  // queues and close. The loops keep serving reads during the drain;
  // new work frames are refused with SHUTTING_DOWN (DispatchFrame), so
  // the admission queue only shrinks.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    executor_stop_ = true;
  }
  queue_cv_.notify_all();
  executor_thread_.join();
  const double drain_ms = drain_timer_.Millis();

  io_stop_.store(true, std::memory_order_release);
  for (const std::unique_ptr<IoLoop>& loop : io_loops_) WakeLoop(*loop);
  for (const std::unique_ptr<IoLoop>& loop : io_loops_) {
    loop->thread.join();
  }
  listener_.Close();
  started_.store(false, std::memory_order_relaxed);

  DrainStats stats;
  stats.drain_ms = drain_ms;
  stats.drained_items = drained_items_.load(std::memory_order_relaxed);
  stats.aborted_items = aborted_items_.load(std::memory_order_relaxed);
  stats.within_deadline = drain_ms <= config_.drain_deadline_ms;
  stats.final_stats_json = StatsJson();
  return stats;
}

}  // namespace fannr::net
